package htc_test

import (
	"fmt"
	"os"
	"path/filepath"

	htc "github.com/htc-align/htc"
)

// Example demonstrates the core workflow: align an attributed graph with a
// relabelled copy of itself and read back the hidden permutation.
func Example() {
	// Two triangles joined by a bridge; attributes distinguish the sides.
	b := htc.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		b.AddEdge(e[0], e[1])
	}
	attrs := htc.NewMatrix(6, 2)
	for i := 0; i < 6; i++ {
		attrs.Set(i, 0, float64(i)/6)
		attrs.Set(i, 1, float64(i%2))
	}
	gs := b.Build().WithAttrs(attrs)

	perm := htc.Permutation(6, 3)
	gt := htc.Relabel(gs, perm)

	res, err := htc.Align(gs, gt, htc.Config{K: 4, Hidden: 8, Embed: 4, Epochs: 40, M: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	correct := 0
	for s, t := range res.Predict() {
		if t == perm[s] {
			correct++
		}
	}
	fmt.Printf("recovered %d/6 hidden anchors\n", correct)
	// Output: recovered 6/6 hidden anchors
}

// ExamplePrepared demonstrates the staged API: prepare a pair once, then
// align several configurations over it. The expensive config-independent
// stages (orbit counting, Laplacian construction) run once and every
// result is bit-identical to its one-shot equivalent; a progress observer
// watches the stages as they run.
func ExamplePrepared() {
	b := htc.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		b.AddEdge(e[0], e[1])
	}
	attrs := htc.NewMatrix(6, 2)
	for i := 0; i < 6; i++ {
		attrs.Set(i, 0, float64(i)/6)
		attrs.Set(i, 1, float64(i%2))
	}
	gs := b.Build().WithAttrs(attrs)
	gt := htc.Relabel(gs, htc.Permutation(6, 3))

	base := htc.Config{K: 4, Hidden: 8, Embed: 4, Epochs: 40, M: 2, Seed: 1}

	// Observe which stages actually run (in adjacent-deduplicated order).
	var stages []string
	observed := base
	observed.Progress = func(ev htc.Progress) {
		if len(stages) == 0 || stages[len(stages)-1] != ev.Stage {
			stages = append(stages, ev.Stage)
		}
	}

	p, err := htc.Prepare(gs, gt, observed)
	if err != nil {
		panic(err)
	}
	// Sweep two variants over the shared artifacts; HTC-H reuses the
	// orbit counts and Laplacians HTC already built, so the observer sees
	// no further build stages.
	staged, err := p.Align(observed)
	if err != nil {
		panic(err)
	}
	high := base
	high.Variant = htc.VariantHighOrder
	if _, err := p.Align(high); err != nil {
		panic(err)
	}

	oneShot, err := htc.Align(gs, gt, base)
	if err != nil {
		panic(err)
	}
	identical := len(staged.M.Data) == len(oneShot.M.Data)
	for i := range staged.M.Data {
		identical = identical && staged.M.Data[i] == oneShot.M.Data[i]
	}
	stats := p.Stats()
	fmt.Println("stages observed:", stages)
	fmt.Printf("orbit-count runs across the sweep: %d\n", stats.OrbitCountRuns)
	fmt.Println("staged result identical to one-shot:", identical)
	// Output:
	// stages observed: [orbit_counts laplacians train fine_tune integrate]
	// orbit-count runs across the sweep: 1
	// staged result identical to one-shot: true
}

// ExampleAlign_topK demonstrates the top-k similarity backend for large
// graphs: Config.Similarity = SimilarityTopK bounds every similarity
// stage to CandidateK candidates per node (O(n·k) memory instead of the
// dense O(n²)), and the Result carries a sparse candidate structure
// instead of a dense matrix. With k ≥ the pair size the backend is
// bit-identical to dense, which this example verifies.
func ExampleAlign_topK() {
	b := htc.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		b.AddEdge(e[0], e[1])
	}
	attrs := htc.NewMatrix(6, 2)
	for i := 0; i < 6; i++ {
		attrs.Set(i, 0, float64(i)/6)
		attrs.Set(i, 1, float64(i%2))
	}
	gs := b.Build().WithAttrs(attrs)
	perm := htc.Permutation(6, 3)
	gt := htc.Relabel(gs, perm)

	cfg := htc.Config{K: 4, Hidden: 8, Embed: 4, Epochs: 40, M: 2, Seed: 1}
	denseRes, err := htc.Align(gs, gt, cfg)
	if err != nil {
		panic(err)
	}

	cfg.Similarity = htc.SimilarityTopK
	cfg.CandidateK = 6 // k = n: exact; smaller k bounds memory instead
	topkRes, err := htc.Align(gs, gt, cfg)
	if err != nil {
		panic(err)
	}

	identical := true
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			got, ok := topkRes.Sim.At(i, j)
			identical = identical && ok && got == denseRes.M.At(i, j)
		}
	}
	correct := 0
	for s, t := range topkRes.Predict() {
		if t == perm[s] {
			correct++
		}
	}
	fmt.Println("backend:", topkRes.SimBackend)
	fmt.Println("dense matrix materialised:", topkRes.M != nil)
	fmt.Println("scores identical to dense at k = n:", identical)
	fmt.Printf("recovered %d/6 hidden anchors\n", correct)
	// Output:
	// backend: topk
	// dense matrix materialised: false
	// scores identical to dense at k = n: true
	// recovered 6/6 hidden anchors
}

// ExampleAlign_ann demonstrates the approximate candidate backend:
// Config.Similarity = SimilarityANN generates each node's candidate list
// through an LSH index instead of the exact O(ns·nt) scan, so candidate
// generation scales sub-quadratically with graph size. AnnBits sizes the
// hash table and AnnProbes its per-query search effort; with AnnProbes ≥
// 2^AnnBits every bucket is probed and the run is bit-identical to the
// exact top-k backend — the escape hatch this example verifies.
func ExampleAlign_ann() {
	b := htc.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		b.AddEdge(e[0], e[1])
	}
	attrs := htc.NewMatrix(6, 2)
	for i := 0; i < 6; i++ {
		attrs.Set(i, 0, float64(i)/6)
		attrs.Set(i, 1, float64(i%2))
	}
	gs := b.Build().WithAttrs(attrs)
	perm := htc.Permutation(6, 3)
	gt := htc.Relabel(gs, perm)

	cfg := htc.Config{K: 4, Hidden: 8, Embed: 4, Epochs: 40, M: 2, Seed: 1}
	cfg.Similarity = htc.SimilarityTopK
	cfg.CandidateK = 4
	topkRes, err := htc.Align(gs, gt, cfg)
	if err != nil {
		panic(err)
	}

	cfg.Similarity = htc.SimilarityANN
	cfg.AnnBits = 3
	cfg.AnnProbes = 8 // 2^3: probe every bucket — exact
	annRes, err := htc.Align(gs, gt, cfg)
	if err != nil {
		panic(err)
	}

	identical := true
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want, wok := topkRes.Sim.At(i, j)
			got, gok := annRes.Sim.At(i, j)
			identical = identical && wok == gok && got == want
		}
	}
	correct := 0
	for s, t := range annRes.Predict() {
		if t == perm[s] {
			correct++
		}
	}
	fmt.Println("backend:", annRes.SimBackend)
	fmt.Printf("resolved LSH index: %d bits, %d probes\n", annRes.AnnBits, annRes.AnnProbes)
	fmt.Println("scores identical to exact top-k at full probes:", identical)
	fmt.Printf("recovered %d/6 hidden anchors\n", correct)
	// Output:
	// backend: ann
	// resolved LSH index: 3 bits, 8 probes
	// scores identical to exact top-k at full probes: true
	// recovered 6/6 hidden anchors
}

// ExampleAlign_f32 demonstrates the float32 compute tier:
// Config.Precision = PrecisionF32 runs the candidate-generation kernels
// of the fine-tune loop on half-width embedding copies (float64
// accumulators keep rankings stable), roughly halving similarity memory
// traffic. Training always stays float64, and the tier requires a
// candidate backend — the dense path has no float32 tier. Left on
// PrecisionAuto, the tier flips to f32 automatically on pairs large
// enough to select the ANN backend.
func ExampleAlign_f32() {
	b := htc.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		b.AddEdge(e[0], e[1])
	}
	attrs := htc.NewMatrix(6, 2)
	for i := 0; i < 6; i++ {
		attrs.Set(i, 0, float64(i)/6)
		attrs.Set(i, 1, float64(i%2))
	}
	gs := b.Build().WithAttrs(attrs)
	perm := htc.Permutation(6, 3)
	gt := htc.Relabel(gs, perm)

	cfg := htc.Config{K: 4, Hidden: 8, Embed: 4, Epochs: 40, M: 2, Seed: 1}
	cfg.Similarity = htc.SimilarityTopK
	cfg.CandidateK = 4
	cfg.Precision = htc.PrecisionF32
	res, err := htc.Align(gs, gt, cfg)
	if err != nil {
		panic(err)
	}

	correct := 0
	for s, t := range res.Predict() {
		if t == perm[s] {
			correct++
		}
	}
	fmt.Println("backend:", res.SimBackend)
	fmt.Println("precision:", res.Precision)
	fmt.Printf("recovered %d/6 hidden anchors\n", correct)
	// Output:
	// backend: topk
	// precision: f32
	// recovered 6/6 hidden anchors
}

// ExampleCountEdgeOrbits shows the raw higher-order signal HTC builds on:
// the two edges of the paper's Fig. 5 example are indistinguishable by
// plain adjacency (orbit 0) but differ on orbits 1 and 4.
// ExampleLoadPair aligns a SNAP-style edge-list pair end to end: load
// both files (format sniffed by content), resolve ID-keyed ground truth
// through the returned NodeMaps, align, and read predictions back by
// node name.
func ExampleLoadPair() {
	dir, err := os.MkdirTemp("", "htc-loadpair")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	// Two copies of the same 10-node network, keyed by different ids.
	write := func(name, data string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			panic(err)
		}
		return path
	}
	src := write("source.edges",
		"a b\na c\nb c\nc d\nd e\ne f\nf g\ng h\nh i\ni j\nd g\nb e\n")
	tgt := write("target.edges",
		"x2 x1\nx1 x3\nx2 x3\nx3 x4\nx4 x5\nx5 x6\nx6 x7\nx7 x8\nx8 x9\nx9 x10\nx4 x7\nx2 x5\n")
	anchors := write("truth.tsv",
		"a x1\nb x2\nc x3\nd x4\ne x5\nf x6\ng x7\nh x8\ni x9\nj x10\n")

	pair, err := htc.LoadPair(src, tgt, htc.LoadOptions{})
	if err != nil {
		panic(err)
	}
	truth, err := htc.LoadTruthFile(anchors, pair.SourceIDs, pair.TargetIDs)
	if err != nil {
		panic(err)
	}
	res, err := htc.Align(pair.Source, pair.Target, htc.Config{K: 4, Hidden: 8, Embed: 4, Epochs: 20, M: 5, Seed: 1})
	if err != nil {
		panic(err)
	}
	rep := htc.EvaluateSim(res.Sim, truth, 1)
	fmt.Printf("source format: %s, %d anchors, hits@1 %.2f\n",
		pair.SourceFormat, rep.Anchors, rep.PrecisionAt[1])
	for _, p := range res.PredictNames(pair.SourceIDs, pair.TargetIDs)[:3] {
		fmt.Printf("%s -> %s\n", p[0], p[1])
	}
	// Output:
	// source format: edgelist, 10 anchors, hits@1 1.00
	// a -> x1
	// b -> x2
	// c -> x3
}

func ExampleCountEdgeOrbits() {
	b := htc.NewBuilder(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 4}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	counts := htc.CountEdgeOrbits(g)
	idx := map[[2]int32]int{}
	for i, e := range g.Edges() {
		idx[e] = i
	}
	ab := counts[idx[[2]int32{0, 1}]]
	bc := counts[idx[[2]int32{1, 2}]]
	fmt.Println("edge (a,b) first five orbits:", ab[:5])
	fmt.Println("edge (b,c) first five orbits:", bc[:5])
	// Output:
	// edge (a,b) first five orbits: [1 1 1 0 0]
	// edge (b,c) first five orbits: [1 2 1 0 1]
}

// ExampleRefine demonstrates RefiNA refinement of an externally computed
// matching. Two nodes of a ten-node network — a degree-3 hub and the
// degree-1 tail — are swapped in an otherwise perfect matching; the swap
// is structurally inconsistent, so a few refinement iterations repair it
// without any training. The same stage runs inside the pipeline when
// Config.RefineIters > 0.
func ExampleRefine() {
	b := htc.NewBuilder(10)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}, {3, 6}, {1, 4}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()

	match := []int{0, 1, 2, 3, 4, 5, 9, 7, 8, 6} // nodes 6 and 9 swapped
	fmt.Printf("input mnc %.2f\n", htc.MNC(match, g, g, 1))

	sim, err := htc.MatchingSim(match, g.N(), 8)
	if err != nil {
		panic(err)
	}
	res, err := htc.Refine(sim, g, g, htc.RefineOptions{Iters: 5, Workers: 1})
	if err != nil {
		panic(err)
	}
	correct := 0
	for i, t := range htc.GreedyMatchSim(res.Sim) {
		if t == i {
			correct++
		}
	}
	fmt.Printf("refined mnc %.2f, %d/10 correct\n", res.MNC[len(res.MNC)-1], correct)
	// Output:
	// input mnc 0.55
	// refined mnc 1.00, 10/10 correct
}

// ExampleHungarianMatch extracts a one-to-one assignment where greedy
// matching fails.
func ExampleHungarianMatch() {
	scores := htc.MatrixFromRows([][]float64{
		{10, 9},
		{9, 1},
	})
	fmt.Println(htc.HungarianMatch(scores)) // optimal 9+9, not greedy 10+1
	// Output: [1 0]
}
