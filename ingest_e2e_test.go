package htc_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	htc "github.com/htc-align/htc"
	"github.com/htc-align/htc/internal/server"
)

// The shared real-data fixture of the consistency test: a SNAP-style
// edge-list pair keyed by unrelated string ids plus ID-keyed truth.
const (
	e2eSource = "a b\na c\nb c\nc d\nd e\ne f\nf g\ng h\nh i\ni j\nd g\nb e\n"
	e2eTarget = "x2 x1\nx1 x3\nx2 x3\nx3 x4\nx4 x5\nx5 x6\nx6 x7\nx7 x8\nx8 x9\nx9 x10\nx4 x7\nx2 x5\n"
	e2eTruth  = "a x1\nb x2\nc x3\nd x4\ne x5\nf x6\ng x7\nh x8\ni x9\nj x10\n"
)

func e2eConfig() htc.Config {
	return htc.Config{Variant: htc.VariantLowOrder, Epochs: 3, Hidden: 8, Embed: 4, M: 5}
}

// TestRealDataThreeWayConsistency locks the acceptance criterion of the
// ingestion API: the same SNAP-style pair with ID-keyed truth aligned
// three ways — the one-shot Go API (htc.LoadPair + Align), the staged
// path the htc-align CLI runs (Prepare + Align + LoadTruthFile), and a
// server dataset upload followed by a {"dataset": id} align — must
// report identical Hits@1.
func TestRealDataThreeWayConsistency(t *testing.T) {
	dir := t.TempDir()
	write := func(name, data string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	srcPath := write("s.edges", e2eSource)
	tgtPath := write("t.edges", e2eTarget)
	truthPath := write("truth.tsv", e2eTruth)

	// Way 1: one-shot Go API.
	pair, err := htc.LoadPair(srcPath, tgtPath, htc.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := htc.LoadTruthFile(truthPath, pair.SourceIDs, pair.TargetIDs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := htc.Align(pair.Source, pair.Target, e2eConfig())
	if err != nil {
		t.Fatal(err)
	}
	apiHits := htc.EvaluateSim(res.Sim, truth, 1).PrecisionAt[1]

	// The predictions must come back under the files' own ids.
	names := res.PredictNames(pair.SourceIDs, pair.TargetIDs)
	if len(names) != pair.Source.N() {
		t.Fatalf("PredictNames returned %d pairs for %d nodes", len(names), pair.Source.N())
	}
	for _, p := range names {
		if _, ok := pair.SourceIDs.Index(p[0]); !ok {
			t.Fatalf("prediction %v names an unknown source id", p)
		}
		if _, ok := pair.TargetIDs.Index(p[1]); !ok {
			t.Fatalf("prediction %v names an unknown target id", p)
		}
	}

	// Way 2: the staged path htc-align runs (Prepare once, Align per
	// variant).
	prep, err := htc.Prepare(pair.Source, pair.Target, e2eConfig())
	if err != nil {
		t.Fatal(err)
	}
	stagedRes, err := prep.Align(e2eConfig())
	if err != nil {
		t.Fatal(err)
	}
	stagedHits := htc.EvaluateSim(stagedRes.Sim, truth, 1).PrecisionAt[1]

	// Way 3: dataset upload + {"dataset": id} align on the server.
	s := server.New(server.Options{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	upload, _ := json.Marshal(map[string]any{
		"format": "edgelist", "source": e2eSource, "target": e2eTarget, "truth": e2eTruth,
	})
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/e2e", strings.NewReader(string(upload)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("dataset upload: %d", resp.StatusCode)
	}

	body := `{"dataset":"e2e","config":{"variant":"HTC-L","epochs":3,"hidden":8,"embed":4,"m":5}}`
	resp, err = http.Post(ts.URL+"/v1/align", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info server.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(60 * time.Second)
	for info.Status != server.StatusDone {
		if time.Now().After(deadline) || info.Status == server.StatusFailed {
			t.Fatalf("server job %s: %s (%s)", info.ID, info.Status, info.Error)
		}
		time.Sleep(20 * time.Millisecond)
		resp, err = http.Get(ts.URL + "/v1/jobs/" + info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if info.Result == nil || info.Result.Eval == nil {
		t.Fatalf("server result lacks evaluation: %+v", info.Result)
	}
	serverHits := info.Result.Eval.PrecisionAt[1]

	if apiHits != stagedHits || apiHits != serverHits {
		t.Fatalf("Hits@1 disagrees across the three ways: api=%v staged=%v server=%v",
			apiHits, stagedHits, serverHits)
	}
	if len(info.Result.PairsNamed) == 0 {
		t.Fatal("server result lacks named pairs")
	}
	// Spot-check that the server's named matching speaks the uploaded ids.
	for _, p := range info.Result.PairsNamed {
		if !strings.HasPrefix(p[1], "x") {
			t.Fatalf("server named pair %v does not use the uploaded target ids", p)
		}
	}
	t.Logf("hits@1 = %v across API, staged CLI path and server", apiHits)
}

// TestLoadPairFormatsAgree loads the same graph through all four formats
// and checks the built structures agree (the format layer must be pure
// representation).
func TestLoadPairFormatsAgree(t *testing.T) {
	b := htc.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	for _, format := range []string{"htc-graph", "json", "adjlist", "edgelist"} {
		var buf strings.Builder
		if err := htc.WriteGraphAs(&buf, g, nil, format); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		loaded, err := htc.Load(strings.NewReader(buf.String()), htc.LoadOptions{})
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if loaded.Format != format {
			t.Errorf("%s sniffed as %s", format, loaded.Format)
		}
		if loaded.Graph.N() != g.N() || loaded.Graph.NumEdges() != g.NumEdges() {
			t.Errorf("%s drifted: %v vs %v", format, loaded.Graph, g)
		}
		if fmt.Sprint(htc.CountEdgeOrbits(loaded.Graph)) != fmt.Sprint(htc.CountEdgeOrbits(g)) {
			t.Errorf("%s orbit signatures drifted", format)
		}
	}
}
