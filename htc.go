// Package htc is the public API of the HTC network-alignment library, a
// from-scratch Go reproduction of "Towards Higher-order Topological
// Consistency for Unsupervised Network Alignment" (Sun et al., ICDE 2023).
//
// HTC aligns two attributed networks without any labelled anchor links.
// Its central idea is to replace the usual edge-indiscriminative
// ("low-order") topological consistency assumption with a higher-order one
// defined on the 13 edge orbits of 2–4-node graphlets, injected into the
// aggregation of a shared-weight GCN autoencoder, refined with
// trusted-pair fine-tuning and integrated across orbits by posterior
// importance weights.
//
// Quick start:
//
//	b := htc.NewBuilder(4)
//	b.AddEdge(0, 1)
//	// ... add edges, Build() both graphs ...
//	res, err := htc.Align(gs, gt, htc.Config{})
//	pred := res.Predict() // pred[i] = most likely anchor of source node i
//
// The package re-exports the supporting machinery a downstream user needs:
// graph construction and IO, the dataset simulators used in the paper's
// evaluation, the six baseline aligners, the evaluation metrics, and the
// raw edge-orbit counter.
package htc

import (
	"io"
	"math/rand"

	"github.com/htc-align/htc/internal/align"
	"github.com/htc-align/htc/internal/baselines"
	"github.com/htc-align/htc/internal/core"
	"github.com/htc-align/htc/internal/datasets"
	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/ingest"
	"github.com/htc-align/htc/internal/metrics"
	"github.com/htc-align/htc/internal/orbit"
	"github.com/htc-align/htc/internal/refine"
)

// Graph is an immutable undirected attributed network.
type Graph = graph.Graph

// Builder incrementally constructs a Graph.
type Builder = graph.Builder

// Matrix is the dense matrix type used for attributes and alignment
// scores.
type Matrix = dense.Matrix

// Config holds the HTC pipeline hyperparameters; the zero value selects
// the paper's defaults.
type Config = core.Config

// Result is the outcome of an alignment run.
type Result = core.Result

// AnnStats is the skew-observability block of an ANN-backed Result:
// hash balance, per-query pool work and incremental-refit reuse.
type AnnStats = core.AnnStats

// Variant selects an ablation of the pipeline (Table III).
type Variant = core.Variant

// StageTimings decomposes a run's wall-clock cost (Fig. 8).
type StageTimings = core.StageTimings

// Sim is the similarity-representation abstraction: the final alignment
// scores of a Result, either a full dense matrix or a memory-bounded
// per-node candidate list (see Config.Similarity).
type Sim = align.Sim

// DenseSim adapts a dense score matrix to the Sim interface.
type DenseSim = align.DenseSim

// TopKSim is the sparse Sim: per source node, its top candidate targets
// with scores, O(n·k) memory instead of O(n²).
type TopKSim = align.TopKSim

// Candidates is the underlying per-node candidate structure of a TopKSim.
type Candidates = align.Candidates

// SimBackend selects the similarity representation of a run.
type SimBackend = core.SimBackend

// The similarity backends of Config.Similarity.
const (
	// SimilarityAuto (the default) uses dense matrices on small pairs
	// and the top-k candidate backend beyond ~4096×4096 score cells.
	SimilarityAuto = core.SimAuto
	// SimilarityDense always materialises full ns×nt score matrices.
	SimilarityDense = core.SimDense
	// SimilarityTopK bounds every similarity stage to Config.CandidateK
	// candidates per node; bit-identical to dense when k ≥ max(ns, nt).
	SimilarityTopK = core.SimTopK
	// SimilarityANN keeps the top-k representation but generates the
	// candidate lists through an LSH index (sub-quadratic compute) —
	// tuned by Config.AnnBits/AnnProbes, and bit-identical to
	// SimilarityTopK when AnnProbes ≥ 2^AnnBits.
	SimilarityANN = core.SimANN
)

// ParseSimBackend resolves a backend name ("auto", "dense", "topk",
// "ann", case-insensitive) into a SimBackend.
func ParseSimBackend(s string) (SimBackend, error) { return core.ParseSimBackend(s) }

// Precision selects the compute tier of the fine-tune similarity stage
// (Config.Precision). Training always runs float64.
type Precision = core.Precision

// The compute tiers of Config.Precision.
const (
	// PrecisionAuto (the default) keeps float64 on small pairs and flips
	// to float32 past the same size threshold that selects the ANN
	// backend, where memory traffic dominates.
	PrecisionAuto = core.PrecisionAuto
	// PrecisionF64 forces the exact float64 tier everywhere.
	PrecisionF64 = core.PrecisionF64
	// PrecisionF32 runs the candidate-generation kernels on float32
	// storage with float64 accumulators — roughly half the similarity
	// memory traffic. Requires a candidate backend (topk or ann): the
	// dense backend has no float32 tier.
	PrecisionF32 = core.PrecisionF32
)

// ParsePrecision resolves a precision name ("auto", "f64", "f32" and
// common synonyms, case-insensitive) into a Precision.
func ParsePrecision(s string) (Precision, error) { return core.ParsePrecision(s) }

// OrbitOutcome reports one orbit's trusted pairs and importance weight.
type OrbitOutcome = core.OrbitOutcome

// The pipeline variants of the paper's ablation study.
const (
	// VariantFull is HTC: all orbits with trusted-pair fine-tuning.
	VariantFull = core.Full
	// VariantLowOrder is HTC-L: orbit 0 only, no fine-tuning.
	VariantLowOrder = core.LowOrder
	// VariantHighOrder is HTC-H: all orbits, no fine-tuning.
	VariantHighOrder = core.HighOrder
	// VariantLowOrderFT is HTC-LT: orbit 0 with fine-tuning.
	VariantLowOrderFT = core.LowOrderFT
	// VariantDiffusion is HTC-DT: diffusion matrices replace GOMs.
	VariantDiffusion = core.DiffusionFT
)

// ParseVariant resolves a paper name ("HTC", "HTC-L", "HTC-H", "HTC-LT",
// "HTC-DT", case-insensitive) into a Variant.
func ParseVariant(s string) (Variant, error) { return core.ParseVariant(s) }

// Truth is the (possibly partial) ground-truth anchor map used for
// evaluation: Truth[s] = target node, or −1.
type Truth = metrics.Truth

// Report holds precision@q and MRR scores.
type Report = metrics.Report

// Pair is a ready-to-align dataset with ground truth.
type Pair = datasets.Pair

// Stats is a Table-I style summary of one network.
type Stats = datasets.Stats

// Aligner is the interface every alignment method implements.
type Aligner = baselines.Aligner

// Anchor is one known source→target correspondence (supervision for the
// supervised baselines).
type Anchor = baselines.Anchor

// NumOrbits is the number of edge orbits on 2–4-node graphlets.
const NumOrbits = orbit.NumOrbits

// OrbitNames labels each orbit for reports.
var OrbitNames = orbit.Names

// ErrAttrMismatch reports incompatible attribute spaces between the two
// graphs passed to Align.
var ErrAttrMismatch = core.ErrAttrMismatch

// NewBuilder returns a builder for a graph on n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// NewMatrix returns a zeroed r×c matrix (for node attributes).
func NewMatrix(r, c int) *Matrix { return dense.New(r, c) }

// MatrixFromRows builds a matrix from a slice of equal-length rows.
func MatrixFromRows(rows [][]float64) *Matrix { return dense.FromRows(rows) }

// Permutation returns a random permutation of 0..n−1 — handy for building
// synthetic alignment problems with hidden identities.
func Permutation(n int, seed int64) []int {
	return graph.Permutation(n, rand.New(rand.NewSource(seed)))
}

// Relabel returns a copy of g whose node i has been renamed perm[i], with
// attributes moved along.
func Relabel(g *Graph, perm []int) *Graph { return graph.Relabel(g, perm) }

// Components labels the connected components of g and returns the
// per-node component ids plus the component count.
func Components(g *Graph) ([]int, int) { return graph.Components(g) }

// LargestComponent returns the node ids of g's largest connected
// component in increasing order.
func LargestComponent(g *Graph) []int { return graph.LargestComponent(g) }

// InducedSubgraph returns the subgraph induced on the given nodes and the
// mapping from new ids to original ids. Attributes are carried over.
func InducedSubgraph(g *Graph, nodes []int) (*Graph, []int) {
	return graph.InducedSubgraph(g, nodes)
}

// BFSDistances returns hop distances from start (−1 for unreachable).
func BFSDistances(g *Graph, start int) []int { return graph.BFSDistances(g, start) }

// Triangles counts the triangles of g, each once.
func Triangles(g *Graph) int { return graph.Triangles(g) }

// ReadGraph parses a graph from the library's text format.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph serialises a graph in the library's text format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// NodeMap is the bidirectional dictionary between a real dataset's
// external node IDs and the contiguous indices the pipeline runs on.
// Every Load returns one; LoadTruth and Result.PredictNames consume them.
type NodeMap = ingest.NodeMap

// LoadOptions tunes dataset loading: format selection (empty = sniff by
// content), allocation limits for untrusted inputs, and strict edge
// validation.
type LoadOptions = ingest.Options

// LoadedGraph is one ingested network: the graph, its ID dictionary and
// the format that produced it.
type LoadedGraph = ingest.Loaded

// LoadedPair is a ready-to-align pair of ingested networks.
type LoadedPair = ingest.Pair

// NodeNamer maps node indices back to external IDs (satisfied by
// *NodeMap); Result.PredictNames takes two.
type NodeNamer = core.NodeNamer

// Load reads one network in any registered format ("htc-graph", "json",
// "adjlist", "edgelist"), sniffing the format when opts.Format is empty,
// and returns the graph together with its ID↔index NodeMap.
func Load(r io.Reader, opts LoadOptions) (*LoadedGraph, error) { return ingest.Load(r, opts) }

// LoadFile is Load over a file path.
func LoadFile(path string, opts LoadOptions) (*LoadedGraph, error) {
	return ingest.LoadFile(path, opts)
}

// LoadPair loads a source and target network — the entry point for
// aligning real datasets:
//
//	pair, _ := htc.LoadPair("douban-online.edges", "douban-offline.edges", htc.LoadOptions{})
//	truth, _ := htc.LoadTruthFile("anchors.tsv", pair.SourceIDs, pair.TargetIDs)
//	res, _ := htc.Align(pair.Source, pair.Target, htc.Config{})
//	names := res.PredictNames(pair.SourceIDs, pair.TargetIDs)
func LoadPair(sourcePath, targetPath string, opts LoadOptions) (*LoadedPair, error) {
	return ingest.LoadPair(sourcePath, targetPath, opts)
}

// LoadTruth parses ID-keyed ground truth ("sourceID targetID" lines)
// through the pair's node maps into the index-keyed Truth the evaluator
// consumes.
func LoadTruth(r io.Reader, src, tgt *NodeMap) (Truth, error) { return ingest.ReadTruth(r, src, tgt) }

// LoadTruthFile is LoadTruth over a file path.
func LoadTruthFile(path string, src, tgt *NodeMap) (Truth, error) {
	return ingest.ReadTruthFile(path, src, tgt)
}

// WriteGraphAs serialises a graph (with its ID dictionary) in any
// registered format that supports writing.
func WriteGraphAs(w io.Writer, g *Graph, nodes *NodeMap, format string) error {
	return ingest.Write(w, g, nodes, format)
}

// Formats lists the registered graph file formats in sniff order.
func Formats() []string { return ingest.Formats() }

// TruthFromPairs builds an index-keyed Truth map from ID-keyed anchor
// pairs resolved through two node maps.
func TruthFromPairs(pairs [][2]string, src, tgt *NodeMap) (Truth, error) {
	return metrics.TruthFromPairs(pairs, src, tgt)
}

// Align runs the HTC pipeline (or the configured ablation variant) on a
// source and target graph and returns the alignment result. It is the
// one-shot form of the staged API: exactly Prepare followed by
// Prepared.Align.
func Align(gs, gt *Graph, cfg Config) (*Result, error) { return core.Align(gs, gt, cfg) }

// Prepared holds a graph pair's config-independent pipeline artifacts —
// validated graphs, input features, edge-orbit counts and aggregation
// Laplacians — so several configs can be aligned over one pair while the
// expensive stages 1–2 run at most once. It is safe for concurrent use.
type Prepared = core.Prepared

// PreparedStats reports how much artifact work a Prepared has absorbed.
type PreparedStats = core.PreparedStats

// Progress is one observation of a running pipeline, delivered to
// Config.Progress: stage boundaries, training epochs, fine-tuning
// iterations.
type Progress = core.Progress

// Observer receives Progress events; install one via Config.Progress.
type Observer = core.Observer

// The pipeline stages a Progress event can report, in execution order.
const (
	StageOrbitCounts = core.StageOrbitCounts
	StageLaplacians  = core.StageLaplacians
	StageTrain       = core.StageTrain
	StageFineTune    = core.StageFineTune
	StageIntegrate   = core.StageIntegrate
	StageRefine      = core.StageRefine
)

// Prepare validates a graph pair and builds the stage-1/2 artifacts the
// given config needs; further Prepared.Align calls — under this or any
// other config — reuse them, so variant and hyperparameter sweeps skip
// the dominant per-run cost entirely.
func Prepare(gs, gt *Graph, cfg Config) (*Prepared, error) { return core.Prepare(gs, gt, cfg) }

// PairHash returns the content hash identifying a graph pair: equal
// hashes mean interchangeable prepared artifacts (the alignment server
// keys its artifact cache on it).
func PairHash(gs, gt *Graph) string { return core.PairHash(gs, gt) }

// Evaluate scores an alignment matrix against ground truth at the given
// precision cutoffs.
func Evaluate(m *Matrix, truth Truth, qs ...int) Report { return metrics.Evaluate(m, truth, qs...) }

// EvaluateSim scores any alignment representation — dense or top-k —
// against ground truth. On a top-k representation an anchor missing from
// its row's candidate list counts as a miss, so pruning never inflates
// the numbers.
func EvaluateSim(s Sim, truth Truth, qs ...int) Report { return metrics.EvaluateSim(s, truth, qs...) }

// CountEdgeOrbits returns, for every edge of g (in g.Edges() order), how
// many times it occurs on each of the 13 edge orbits.
func CountEdgeOrbits(g *Graph) [][NumOrbits]int64 { return orbit.Count(g).PerEdge }

// NumNodeOrbits is the number of node orbits on 2–4-node graphlets.
const NumNodeOrbits = orbit.NumNodeOrbits

// NodeOrbitNames labels each node orbit.
var NodeOrbitNames = orbit.NodeNames

// CountNodeOrbits returns every node's graphlet degree vector: how many
// times the node occurs on each of the 15 node orbits of 2–4-node
// graphlets.
func CountNodeOrbits(g *Graph) [][NumNodeOrbits]int64 { return orbit.CountNodes(g).PerNode }

// HTC adapts the pipeline to the Aligner interface so it can be compared
// uniformly with the baselines. By default it is fully unsupervised and
// ignores seeds; with UseSeeds set it runs the semi-supervised HTC-S mode,
// reinforcing known anchors before fine-tuning (Proposition 2 covers
// "trusted (or known)" anchor nodes uniformly).
type HTC struct {
	// Config holds the pipeline hyperparameters (zero value = defaults).
	Config Config
	// UseSeeds feeds the seeds argument of Align into the fine-tuning
	// reinforcement (HTC-S).
	UseSeeds bool
}

// Name implements Aligner.
func (h HTC) Name() string {
	if h.UseSeeds {
		return h.Config.Variant.String() + "-S"
	}
	return h.Config.Variant.String()
}

// Align implements Aligner.
//
// Under the top-k backend the returned matrix is a materialisation with
// non-candidate pairs floored just below every candidate score — fine
// for matching, but evaluating it with Evaluate would grant pruned
// anchors a finite rank. Evaluation of top-k runs should go through
// AlignSim + EvaluateSim, which scores pruned anchors as misses (the
// experiment drivers do).
func (h HTC) Align(gs, gt *Graph, seeds []Anchor) (*Matrix, error) {
	res, err := h.run(gs, gt, seeds)
	if err != nil {
		return nil, err
	}
	if res.M != nil {
		return res.M, nil
	}
	// A top-k run never builds the dense matrix; the Aligner interface
	// demands one, so materialise it (baseline comparisons run at sizes
	// where that is affordable).
	return res.Sim.Dense(), nil
}

// AlignSim is Align returning the backend's native representation
// instead of forcing a dense matrix, so consumers can evaluate top-k
// runs without the materialisation floor distorting ranks.
func (h HTC) AlignSim(gs, gt *Graph, seeds []Anchor) (Sim, error) {
	res, err := h.run(gs, gt, seeds)
	if err != nil {
		return nil, err
	}
	return res.Sim, nil
}

func (h HTC) run(gs, gt *Graph, seeds []Anchor) (*Result, error) {
	cfg := h.Config
	if h.UseSeeds {
		cfg.Seeds = make([][2]int, 0, len(seeds))
		for _, s := range seeds {
			cfg.Seeds = append(cfg.Seeds, [2]int{s.S, s.T})
		}
	}
	return core.Align(gs, gt, cfg)
}

// The six baseline aligners of the paper's evaluation, re-exported for
// downstream comparison studies. See internal/baselines for fidelity
// notes.
type (
	// IsoRank is topology-only fixed-point similarity propagation.
	IsoRank = baselines.IsoRank
	// FINAL is attributed alignment via compatibility-gated propagation.
	FINAL = baselines.FINAL
	// REGAL is unsupervised xNetMF embedding alignment.
	REGAL = baselines.REGAL
	// PALE embeds each network independently and learns a seed-supervised
	// mapping.
	PALE = baselines.PALE
	// CENALP iteratively grows anchors and re-embeds the coupled graphs.
	CENALP = baselines.CENALP
	// GAlign is the unsupervised multi-order GCN aligner.
	GAlign = baselines.GAlign
	// GREAT aligns by raw graphlet-edge-signature similarity (no
	// learning) — the higher-order, embedding-free strawman.
	GREAT = baselines.GREAT
)

// SampleSeeds draws a fraction of ground truth as supervision for the
// supervised baselines (the paper grants them 10%).
func SampleSeeds(truth Truth, frac float64, seed int64) []Anchor {
	return baselines.SampleSeeds(truth, frac, seed)
}

// GreedyMatch extracts an injective assignment from an alignment matrix
// by repeatedly taking the best unmatched pair (1/2-approximation).
func GreedyMatch(m *Matrix) []int { return align.GreedyMatch(m) }

// RefineOptions configures an explicit RefiNA refinement run — the
// library face of the pipeline's Config.RefineIters stage, for refining
// similarities (or matchings, via MatchingSim) produced elsewhere.
type RefineOptions = refine.Options

// Refined is the outcome of a Refine call: the refined similarity, the
// per-iteration matched-neighborhood-consistency trajectory and the
// resolved token budget.
type Refined = refine.Result

// Refine runs RefiNA iterative refinement over any similarity
// representation: dense inputs update the full matrix, sparse top-k
// inputs refine candidate lists in O(n·k·deg) without materialising n×n.
// Iters = 0 returns the input unchanged.
func Refine(s Sim, gs, gt *Graph, opts RefineOptions) (*Refined, error) {
	return refine.Refine(s, gs, gt, opts)
}

// MatchingSim lifts a one-to-one matching (match[i] = target of source
// node i, -1 = unmatched) into a sparse similarity whose rows may grow
// to k candidates during refinement — the bridge from an externally
// computed matching to Refine.
func MatchingSim(match []int, cols, k int) (*TopKSim, error) {
	return refine.FromMatching(match, cols, k)
}

// MNC scores a matching's matched-neighborhood consistency: the mean
// Jaccard overlap between each source node's matched neighbourhood and
// its counterpart's neighbourhood. workers ≤ 0 uses every CPU.
func MNC(match []int, gs, gt *Graph, workers int) float64 {
	return refine.MNC(match, gs, gt, workers)
}

// GreedyMatchSim is GreedyMatch over any alignment representation; on a
// top-k representation it sorts only the O(n·k) candidate pairs.
func GreedyMatchSim(s Sim) []int { return align.GreedyMatchSim(s) }

// HungarianMatch computes the exact maximum-weight one-to-one assignment
// of an alignment matrix (O(n³)).
func HungarianMatch(m *Matrix) []int { return align.HungarianMatch(m) }

// Dataset simulators reproducing the statistical regimes of the paper's
// five evaluation pairs; see internal/datasets for the substitution notes.
var (
	// AllmovieImdb builds the dense, clustered movie-network pair.
	AllmovieImdb = datasets.AllmovieImdb
	// Douban builds the sparse, partially-aligned social pair.
	Douban = datasets.Douban
	// FlickrMyspace builds the consistency-violating hard pair.
	FlickrMyspace = datasets.FlickrMyspace
	// Econ builds the core–periphery economic network.
	Econ = datasets.Econ
	// BN builds the geometric brain network.
	BN = datasets.BN
	// PPI builds a duplication–divergence protein interaction network.
	PPI = datasets.PPI
	// MakeTarget derives a noisy, relabelled target from any source.
	MakeTarget = datasets.MakeTarget
)
