package metrics

import (
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/align"
	"github.com/htc-align/htc/internal/dense"
)

// fullCandidates converts a dense score matrix into the k = cols
// candidate form (every pair represented, rows sorted best-first).
func fullCandidates(m *dense.Matrix) *align.TopKSim {
	c := &align.Candidates{K: m.Cols, Idx: make([][]int32, m.Rows), Score: make([][]float64, m.Rows)}
	for i := 0; i < m.Rows; i++ {
		type cand struct {
			j int32
			v float64
		}
		cands := make([]cand, m.Cols)
		for j := 0; j < m.Cols; j++ {
			cands[j] = cand{int32(j), m.At(i, j)}
		}
		for a := 1; a < len(cands); a++ { // insertion sort: desc score, asc index
			for b := a; b > 0 && (cands[b].v > cands[b-1].v || (cands[b].v == cands[b-1].v && cands[b].j < cands[b-1].j)); b-- {
				cands[b], cands[b-1] = cands[b-1], cands[b]
			}
		}
		idx := make([]int32, m.Cols)
		score := make([]float64, m.Cols)
		for p, c := range cands {
			idx[p], score[p] = c.j, c.v
		}
		c.Idx[i], c.Score[i] = idx, score
	}
	return &align.TopKSim{C: c, Cols: m.Cols}
}

// TestEvaluateSimDenseAgrees: EvaluateSim over a DenseSim must equal the
// classic dense Evaluate exactly.
func TestEvaluateSimDenseAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := dense.New(20, 25)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	truth := make(Truth, 20)
	for i := range truth {
		truth[i] = rng.Intn(25)
	}
	truth[3] = -1 // partial alignment

	d := Evaluate(m, truth, 1, 5, 10)
	s := EvaluateSim(align.DenseSim{M: m}, truth, 1, 5, 10)
	f := EvaluateSim(fullCandidates(m), truth, 1, 5, 10)
	for _, got := range []Report{s, f} {
		if got.MRR != d.MRR || got.Anchors != d.Anchors {
			t.Fatalf("report %v differs from dense %v", got, d)
		}
		for _, q := range []int{1, 5, 10} {
			if got.PrecisionAt[q] != d.PrecisionAt[q] {
				t.Fatalf("p@%d: %v vs %v", q, got.PrecisionAt[q], d.PrecisionAt[q])
			}
		}
	}
}

// TestEvaluateSimPrunedAnchorIsMiss: an anchor outside its row's
// candidate list scores as a miss — no hit at any cutoff, no MRR mass —
// so pruning can only lower the report.
func TestEvaluateSimPrunedAnchorIsMiss(t *testing.T) {
	c := &align.Candidates{
		K:     1,
		Idx:   [][]int32{{1}, {0}},
		Score: [][]float64{{0.9}, {0.8}},
	}
	sim := &align.TopKSim{C: c, Cols: 3}
	// Row 0's anchor (1) is its candidate: a hit. Row 1's anchor (2) was
	// pruned: a miss.
	rep := EvaluateSim(sim, Truth{1, 2}, 1, 10)
	if rep.Anchors != 2 {
		t.Fatalf("anchors = %d", rep.Anchors)
	}
	if rep.PrecisionAt[1] != 0.5 || rep.PrecisionAt[10] != 0.5 {
		t.Fatalf("precision %v, want 0.5 at every cutoff", rep.PrecisionAt)
	}
	if rep.MRR != 0.5 {
		t.Fatalf("MRR = %v, want 0.5", rep.MRR)
	}
}
