package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/htc-align/htc/internal/dense"
)

// TestMetricProperties checks the structural invariants every evaluation
// must satisfy, on random alignment matrices and random partial truths.
func TestMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ns := 2 + rng.Intn(12)
		nt := 2 + rng.Intn(12)
		m := dense.New(ns, nt)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		truth := make(Truth, ns)
		for i := range truth {
			if rng.Float64() < 0.7 {
				truth[i] = rng.Intn(nt)
			} else {
				truth[i] = -1
			}
		}
		rep := Evaluate(m, truth, 1, 5, 10)

		// Bounds.
		for _, q := range []int{1, 5, 10} {
			if rep.PrecisionAt[q] < 0 || rep.PrecisionAt[q] > 1 {
				return false
			}
		}
		if rep.MRR < 0 || rep.MRR > 1 {
			return false
		}
		// Monotone in q.
		if rep.PrecisionAt[1] > rep.PrecisionAt[5] || rep.PrecisionAt[5] > rep.PrecisionAt[10] {
			return false
		}
		// MRR is sandwiched: p@1 ≤ MRR (reciprocal rank 1 per hit, less
		// per miss but non-negative) and MRR ≤ p@n for n ≥ nt (every
		// anchor ranks within nt).
		if rep.PrecisionAt[1] > rep.MRR+1e-12 {
			return false
		}
		// q ≥ nt means every anchor hits.
		full := Evaluate(m, truth, nt)
		if truth.NumAnchors() > 0 && full.PrecisionAt[nt] != 1 {
			return false
		}
		return rep.Anchors == truth.NumAnchors()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestEvaluateScaleInvariance: multiplying the alignment matrix by a
// positive constant must not change any metric (ranking-based).
func TestEvaluateScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		m := dense.New(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		truth := FromPerm(rng.Perm(n))
		a := Evaluate(m, truth, 1, 10)
		scaled := m.Clone()
		scaled.Scale(3.7)
		b := Evaluate(scaled, truth, 1, 10)
		return a.MRR == b.MRR && a.PrecisionAt[1] == b.PrecisionAt[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestEvaluatePermutedColumnsConsistency: permuting target columns along
// with the truth map leaves all metrics unchanged.
func TestEvaluatePermutedColumnsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 9
	m := dense.New(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	truth := FromPerm(rng.Perm(n))
	before := Evaluate(m, truth, 1, 10)

	perm := rng.Perm(n)
	permuted := dense.New(n, n)
	permTruth := make(Truth, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			permuted.Set(i, perm[j], m.At(i, j))
		}
		permTruth[i] = perm[truth[i]]
	}
	after := Evaluate(permuted, permTruth, 1, 10)
	if before.MRR != after.MRR || before.PrecisionAt[1] != after.PrecisionAt[1] {
		t.Fatalf("metrics not permutation-consistent: %+v vs %+v", before, after)
	}
}
