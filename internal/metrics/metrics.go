// Package metrics implements the evaluation measures of the paper's §V-A:
// precision@q (Eq. 16) and mean reciprocal rank (Eq. 17), computed against
// a (possibly partial) ground-truth anchor map.
package metrics

import (
	"fmt"

	"github.com/htc-align/htc/internal/align"
	"github.com/htc-align/htc/internal/dense"
)

// Truth maps each source node to its anchor in the target graph; −1 marks
// source nodes without a ground-truth anchor (they are excluded from all
// metrics, matching partial-alignment datasets such as Douban).
type Truth []int

// FromPerm converts a full permutation (source i ↔ target perm[i]) into a
// Truth map.
func FromPerm(perm []int) Truth {
	t := make(Truth, len(perm))
	copy(t, perm)
	return t
}

// NodeIndexer resolves external node IDs to contiguous indices —
// *ingest.NodeMap is the canonical implementation. It lives here as an
// interface so evaluation can be name-keyed without this package
// depending on the ingestion layer.
type NodeIndexer interface {
	// Index returns the index of id and whether it exists.
	Index(id string) (int, bool)
	// Len is the number of mapped nodes.
	Len() int
}

// TruthFromPairs builds an index-keyed Truth map from ID-keyed anchor
// pairs (sourceID, targetID), resolved through the two node maps.
// Unknown ids are errors, as is a source appearing twice with different
// targets; an exact repeat is tolerated. Sources never mentioned stay at
// −1.
func TruthFromPairs(pairs [][2]string, src, tgt NodeIndexer) (Truth, error) {
	truth := make(Truth, src.Len())
	for i := range truth {
		truth[i] = -1
	}
	for _, p := range pairs {
		s, ok := src.Index(p[0])
		if !ok {
			return nil, fmt.Errorf("metrics: unknown source node %q in ground truth", p[0])
		}
		t, ok := tgt.Index(p[1])
		if !ok {
			return nil, fmt.Errorf("metrics: unknown target node %q in ground truth", p[1])
		}
		if truth[s] >= 0 && truth[s] != t {
			return nil, fmt.Errorf("metrics: source node %q has conflicting anchors in ground truth", p[0])
		}
		truth[s] = t
	}
	return truth, nil
}

// NumAnchors returns the number of ground-truth anchor links.
func (t Truth) NumAnchors() int {
	n := 0
	for _, v := range t {
		if v >= 0 {
			n++
		}
	}
	return n
}

// Report holds the evaluation of one alignment matrix.
type Report struct {
	// PrecisionAt maps q to precision@q.
	PrecisionAt map[int]float64
	// MRR is the mean reciprocal rank over all anchors.
	MRR float64
	// Anchors is the number of ground-truth pairs evaluated.
	Anchors int
}

// Evaluate scores an alignment matrix against ground truth for the given
// precision cutoffs. The rank of the true anchor within a row is
// 1 + (number of strictly larger scores); ties therefore resolve
// optimistically, the convention the benchmark literature uses.
func Evaluate(m *dense.Matrix, truth Truth, qs ...int) Report {
	if len(truth) != m.Rows {
		panic(fmt.Sprintf("metrics: truth has %d entries for %d source nodes", len(truth), m.Rows))
	}
	rep := Report{PrecisionAt: make(map[int]float64, len(qs))}
	hits := make(map[int]int, len(qs))
	var mrr float64
	for s, tgt := range truth {
		if tgt < 0 {
			continue
		}
		if tgt >= m.Cols {
			panic(fmt.Sprintf("metrics: anchor %d→%d outside %d target nodes", s, tgt, m.Cols))
		}
		rep.Anchors++
		row := m.Row(s)
		score := row[tgt]
		rank := 1
		for _, v := range row {
			if v > score {
				rank++
			}
		}
		mrr += 1 / float64(rank)
		for _, q := range qs {
			if rank <= q {
				hits[q]++
			}
		}
	}
	return rep.finish(hits, mrr, qs)
}

// EvaluateSim is Evaluate over any similarity representation, the
// backend-generic form consumed by the pipeline, the server and the
// CLIs. On a dense representation it is exactly Evaluate. On a top-k
// representation the rank of the true anchor is computed among the
// row's candidates — 1 + (number of strictly larger candidate scores) —
// and an anchor missing from its row's candidate list counts as a miss
// at every cutoff (Hits@q) and contributes nothing to MRR, so pruning
// can only ever lower the reported numbers, never inflate them. With
// k ≥ nt every pair is a candidate and the two forms agree exactly.
func EvaluateSim(sim align.Sim, truth Truth, qs ...int) Report {
	if d, ok := sim.(align.DenseSim); ok {
		// The generic path would pay DenseSim.Scan's per-row sort just to
		// count strictly-larger scores; the dense evaluator's single pass
		// computes the same ranks.
		return Evaluate(d.M, truth, qs...)
	}
	rows, cols := sim.Dims()
	if len(truth) != rows {
		panic(fmt.Sprintf("metrics: truth has %d entries for %d source nodes", len(truth), rows))
	}
	rep := Report{PrecisionAt: make(map[int]float64, len(qs))}
	hits := make(map[int]int, len(qs))
	var mrr float64
	for s, tgt := range truth {
		if tgt < 0 {
			continue
		}
		if tgt >= cols {
			panic(fmt.Sprintf("metrics: anchor %d→%d outside %d target nodes", s, tgt, cols))
		}
		rep.Anchors++
		score, ok := sim.At(s, tgt)
		if !ok {
			continue // anchor pruned from the candidate list: a miss
		}
		rank := 1
		sim.Scan(s, func(_ int, v float64) {
			if v > score {
				rank++
			}
		})
		mrr += 1 / float64(rank)
		for _, q := range qs {
			if rank <= q {
				hits[q]++
			}
		}
	}
	return rep.finish(hits, mrr, qs)
}

// finish folds the accumulated hit counts and reciprocal-rank sum into
// the report.
func (r Report) finish(hits map[int]int, mrr float64, qs []int) Report {
	if r.Anchors == 0 {
		for _, q := range qs {
			r.PrecisionAt[q] = 0
		}
		return r
	}
	r.MRR = mrr / float64(r.Anchors)
	for _, q := range qs {
		r.PrecisionAt[q] = float64(hits[q]) / float64(r.Anchors)
	}
	return r
}

// String renders the standard p@1/p@10/MRR triple.
func (r Report) String() string {
	return fmt.Sprintf("p@1=%.4f p@10=%.4f MRR=%.4f (n=%d)",
		r.PrecisionAt[1], r.PrecisionAt[10], r.MRR, r.Anchors)
}
