package metrics

import (
	"math"
	"testing"

	"github.com/htc-align/htc/internal/dense"
)

func TestEvaluatePerfectAlignment(t *testing.T) {
	m := dense.FromRows([][]float64{
		{0.9, 0.1, 0.0},
		{0.0, 0.8, 0.1},
		{0.2, 0.1, 0.7},
	})
	rep := Evaluate(m, Truth{0, 1, 2}, 1, 10)
	if rep.PrecisionAt[1] != 1 || rep.PrecisionAt[10] != 1 || rep.MRR != 1 {
		t.Fatalf("perfect alignment: %+v", rep)
	}
	if rep.Anchors != 3 {
		t.Fatalf("anchors = %d", rep.Anchors)
	}
}

func TestEvaluateRanks(t *testing.T) {
	// True anchor of source 0 is target 2, which ranks 3rd in its row.
	m := dense.FromRows([][]float64{{0.9, 0.5, 0.1}})
	rep := Evaluate(m, Truth{2}, 1, 2, 3)
	if rep.PrecisionAt[1] != 0 || rep.PrecisionAt[2] != 0 || rep.PrecisionAt[3] != 1 {
		t.Fatalf("rank cutoffs: %+v", rep.PrecisionAt)
	}
	if math.Abs(rep.MRR-1.0/3.0) > 1e-12 {
		t.Fatalf("MRR = %v, want 1/3", rep.MRR)
	}
}

func TestEvaluatePartialTruth(t *testing.T) {
	m := dense.FromRows([][]float64{
		{0.9, 0.1},
		{0.9, 0.1},
		{0.1, 0.9},
	})
	// Only source nodes 0 and 2 have anchors.
	rep := Evaluate(m, Truth{0, -1, 1}, 1)
	if rep.Anchors != 2 {
		t.Fatalf("anchors = %d, want 2", rep.Anchors)
	}
	if rep.PrecisionAt[1] != 1 {
		t.Fatalf("p@1 = %v", rep.PrecisionAt[1])
	}
}

func TestEvaluateMixedRanks(t *testing.T) {
	m := dense.FromRows([][]float64{
		{0.9, 0.5}, // anchor 0 → rank 1
		{0.9, 0.5}, // anchor 1 → rank 2
	})
	rep := Evaluate(m, Truth{0, 1}, 1)
	if rep.PrecisionAt[1] != 0.5 {
		t.Fatalf("p@1 = %v, want 0.5", rep.PrecisionAt[1])
	}
	if math.Abs(rep.MRR-0.75) > 1e-12 {
		t.Fatalf("MRR = %v, want 0.75", rep.MRR)
	}
}

func TestEvaluateTieOptimistic(t *testing.T) {
	// Tied scores do not push the anchor's rank down.
	m := dense.FromRows([][]float64{{0.5, 0.5}})
	rep := Evaluate(m, Truth{1}, 1)
	if rep.PrecisionAt[1] != 1 {
		t.Fatalf("tie handling: %+v", rep)
	}
}

func TestEvaluateNoAnchors(t *testing.T) {
	m := dense.FromRows([][]float64{{0.5}})
	rep := Evaluate(m, Truth{-1}, 1)
	if rep.Anchors != 0 || rep.MRR != 0 || rep.PrecisionAt[1] != 0 {
		t.Fatalf("no-anchor report: %+v", rep)
	}
}

func TestEvaluateLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Evaluate(dense.New(2, 2), Truth{0}, 1)
}

func TestEvaluateAnchorOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Evaluate(dense.New(1, 2), Truth{5}, 1)
}

func TestFromPermAndNumAnchors(t *testing.T) {
	tr := FromPerm([]int{2, 0, 1})
	if tr.NumAnchors() != 3 {
		t.Fatalf("NumAnchors = %d", tr.NumAnchors())
	}
	tr[1] = -1
	if tr.NumAnchors() != 2 {
		t.Fatalf("NumAnchors after removal = %d", tr.NumAnchors())
	}
}

func TestReportString(t *testing.T) {
	rep := Report{PrecisionAt: map[int]float64{1: 0.5, 10: 0.75}, MRR: 0.6, Anchors: 4}
	s := rep.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
