package nn

import (
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/sparse"
)

// trainFixture builds a small two-graph, multi-Laplacian training problem.
func trainFixture(t *testing.T, seed int64) (src, tgt *GraphData, dims []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mk := func(n int) *GraphData {
		g := graph.ErdosRenyi(n, 0.25, rng)
		laps := make([]*sparse.CSR, 3)
		for k := range laps {
			adj := g.Adjacency()
			scale := make([]float64, n)
			for i := range scale {
				scale[i] = 1 / float64(k+2)
			}
			laps[k] = adj.DiagScale(scale, scale)
		}
		x := dense.New(n, 5)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		return &GraphData{Laps: laps, X: x}
	}
	return mk(24), mk(20), []int{5, 8, 4}
}

// TestTrainEmptyLaps pins the zero-orbit degenerate case: the epoch loop
// must run (recording zero losses) instead of dividing by a zero task
// count.
func TestTrainEmptyLaps(t *testing.T) {
	enc := NewEncoder([]int{3, 4, 2}, []Activation{Tanh{}, Tanh{}}, rand.New(rand.NewSource(1)))
	x := dense.New(5, 3)
	hist := Train(enc, &GraphData{X: x}, &GraphData{X: x}, TrainConfig{Epochs: 3, LR: 0.01, Workers: 4})
	if len(hist) != 3 {
		t.Fatalf("history length %d, want 3", len(hist))
	}
	for i, l := range hist {
		if l != 0 {
			t.Fatalf("loss[%d] = %v with no orbits", i, l)
		}
	}
}

// TestTrainWorkersEquivalence asserts that the parallel epoch fan-out is a
// pure performance knob: the loss history and the trained weights must be
// bit-identical for every worker count, because per-task gradients are
// reduced in a fixed order.
func TestTrainWorkersEquivalence(t *testing.T) {
	src, tgt, dims := trainFixture(t, 42)
	run := func(workers int) (*Encoder, []float64) {
		enc := NewEncoder(dims, []Activation{Tanh{}, Tanh{}}, rand.New(rand.NewSource(7)))
		hist := Train(enc, src, tgt, TrainConfig{Epochs: 15, LR: 0.01, Workers: workers})
		return enc, hist
	}
	refEnc, refHist := run(1)
	for _, w := range []int{2, 3, 8, 0} {
		enc, hist := run(w)
		if len(hist) != len(refHist) {
			t.Fatalf("workers=%d: %d epochs vs %d", w, len(hist), len(refHist))
		}
		for i := range hist {
			if hist[i] != refHist[i] {
				t.Fatalf("workers=%d: loss[%d] = %v, serial %v", w, i, hist[i], refHist[i])
			}
		}
		for l := range enc.W {
			if !enc.W[l].Equal(refEnc.W[l], 0) {
				t.Fatalf("workers=%d: weights of layer %d diverged", w, l)
			}
		}
	}
}
