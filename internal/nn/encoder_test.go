package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/gom"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/orbit"
	"github.com/htc-align/htc/internal/sparse"
)

func smallLaplacian(seed int64, n int) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	g := graph.ErdosRenyi(n, 0.4, rng)
	return gom.LowOrder(g).Laplacians[0]
}

func randomFeatures(n, d int, seed int64) *dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	x := dense.New(n, d)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

func TestActivations(t *testing.T) {
	z := []float64{-1, 0, 2}
	relu := ReLU{}
	relu.Forward(z)
	if z[0] != 0 || z[1] != 0 || z[2] != 2 {
		t.Fatalf("relu forward = %v", z)
	}
	grad := []float64{1, 1, 1}
	relu.Backward(grad, z)
	if grad[0] != 0 || grad[2] != 1 {
		t.Fatalf("relu backward = %v", grad)
	}

	z = []float64{0.5}
	th := Tanh{}
	th.Forward(z)
	if math.Abs(z[0]-math.Tanh(0.5)) > 1e-15 {
		t.Fatalf("tanh forward = %v", z)
	}
	grad = []float64{1}
	th.Backward(grad, z)
	if math.Abs(grad[0]-(1-z[0]*z[0])) > 1e-15 {
		t.Fatalf("tanh backward = %v", grad)
	}

	lin := Linear{}
	z = []float64{3}
	lin.Forward(z)
	grad = []float64{2}
	lin.Backward(grad, z)
	if z[0] != 3 || grad[0] != 2 {
		t.Fatal("linear must be identity")
	}
}

func TestNewEncoderShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := NewEncoder([]int{5, 8, 3}, []Activation{Tanh{}, Tanh{}}, rng)
	if e.Layers() != 2 {
		t.Fatalf("Layers = %d", e.Layers())
	}
	if e.W[0].Rows != 5 || e.W[0].Cols != 8 || e.W[1].Rows != 8 || e.W[1].Cols != 3 {
		t.Fatal("weight shapes wrong")
	}
}

func TestEncoderValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		dims []int
		acts []Activation
	}{
		{[]int{3}, nil},
		{[]int{3, 4}, []Activation{Tanh{}, Tanh{}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("dims %v acts %d: expected panic", tc.dims, len(tc.acts))
				}
			}()
			NewEncoder(tc.dims, tc.acts, rng)
		}()
	}
}

func TestForwardShapesAndDeterminism(t *testing.T) {
	lap := smallLaplacian(2, 10)
	x := randomFeatures(10, 4, 3)
	e := NewEncoder([]int{4, 6, 2}, []Activation{Tanh{}, Tanh{}}, rand.New(rand.NewSource(4)))
	h1 := e.Embed(lap, x)
	h2 := e.Embed(lap, x)
	if h1.Rows != 10 || h1.Cols != 2 {
		t.Fatalf("embedding shape %dx%d", h1.Rows, h1.Cols)
	}
	if !h1.Equal(h2, 0) {
		t.Fatal("forward pass is not deterministic")
	}
}

func TestReconLossAgainstDense(t *testing.T) {
	lap := smallLaplacian(5, 8)
	h := randomFeatures(8, 3, 6)
	loss, _ := ReconLoss(lap, h)

	// Reference: materialise E = L̃ − HHᵀ densely.
	e := lap.ToDense()
	e.Sub(dense.MulBT(h, h))
	want := e.SumSquares()
	if math.Abs(loss-want) > 1e-9*(1+want) {
		t.Fatalf("ReconLoss = %v, want %v", loss, want)
	}
}

func TestReconLossGradientNumerically(t *testing.T) {
	lap := smallLaplacian(7, 6)
	h := randomFeatures(6, 2, 8)
	_, grad := ReconLoss(lap, h)

	const eps = 1e-6
	for _, idx := range []int{0, 3, 7, 11} {
		orig := h.Data[idx]
		h.Data[idx] = orig + eps
		lp, _ := ReconLoss(lap, h)
		h.Data[idx] = orig - eps
		lm, _ := ReconLoss(lap, h)
		h.Data[idx] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[idx]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("grad[%d] = %v, numeric %v", idx, grad.Data[idx], num)
		}
	}
}

// TestBackwardGradientNumerically is the keystone test of the manual
// backprop: every weight gradient must match central finite differences of
// the full forward+loss computation.
func TestBackwardGradientNumerically(t *testing.T) {
	lap := smallLaplacian(9, 7)
	x := randomFeatures(7, 3, 10)
	e := NewEncoder([]int{3, 5, 2}, []Activation{Tanh{}, Tanh{}}, rand.New(rand.NewSource(11)))

	lossAt := func() float64 {
		l, _ := ReconLoss(lap, e.Embed(lap, x))
		return l
	}
	cache := e.Forward(lap, x)
	_, dH := ReconLoss(lap, cache.Output())
	grads := e.ZeroGrads()
	e.Backward(cache, dH, grads)

	const eps = 1e-6
	for l := 0; l < e.Layers(); l++ {
		w := e.W[l]
		for _, idx := range []int{0, 1, len(w.Data) / 2, len(w.Data) - 1} {
			orig := w.Data[idx]
			w.Data[idx] = orig + eps
			lp := lossAt()
			w.Data[idx] = orig - eps
			lm := lossAt()
			w.Data[idx] = orig
			num := (lp - lm) / (2 * eps)
			got := grads[l].Data[idx]
			if math.Abs(num-got) > 1e-3*(1+math.Abs(num)) {
				t.Fatalf("layer %d grad[%d] = %v, numeric %v", l, idx, got, num)
			}
		}
	}
}

func TestBackwardGradientNumericallyReLU(t *testing.T) {
	lap := smallLaplacian(13, 6)
	x := randomFeatures(6, 3, 14)
	e := NewEncoder([]int{3, 4, 2}, []Activation{ReLU{}, Linear{}}, rand.New(rand.NewSource(15)))

	cache := e.Forward(lap, x)
	_, dH := ReconLoss(lap, cache.Output())
	grads := e.ZeroGrads()
	e.Backward(cache, dH, grads)

	const eps = 1e-6
	w := e.W[0]
	for _, idx := range []int{0, 5, len(w.Data) - 1} {
		orig := w.Data[idx]
		w.Data[idx] = orig + eps
		lp, _ := ReconLoss(lap, e.Embed(lap, x))
		w.Data[idx] = orig - eps
		lm, _ := ReconLoss(lap, e.Embed(lap, x))
		w.Data[idx] = orig
		num := (lp - lm) / (2 * eps)
		got := grads[0].Data[idx]
		if math.Abs(num-got) > 1e-3*(1+math.Abs(num)) {
			t.Fatalf("relu grad[%d] = %v, numeric %v", idx, got, num)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	e := NewEncoder([]int{2, 2}, []Activation{Tanh{}}, rand.New(rand.NewSource(16)))
	c := e.Clone()
	c.W[0].Set(0, 0, 99)
	if e.W[0].At(0, 0) == 99 {
		t.Fatal("Clone shares weights")
	}
}

// TestSharedEncoderEquivariance checks the mechanism behind Proposition 1:
// encoding an isomorphic copy of a graph (with permuted features) through
// the same shared encoder yields exactly permuted embeddings, so perfectly
// consistent anchor nodes embed identically.
func TestSharedEncoderEquivariance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.ErdosRenyi(12, 0.35, rng)
	x := randomFeatures(12, 4, 18)
	perm := graph.Permutation(12, rng)
	h := graph.Relabel(g.WithAttrs(x), perm)

	gs := gom.Build(g, orbit.Count(g), 5, false)
	ht := gom.Build(h, orbit.Count(h), 5, false)
	e := NewEncoder([]int{4, 6, 3}, []Activation{Tanh{}, Tanh{}}, rand.New(rand.NewSource(19)))

	for k := 0; k < 5; k++ {
		hs := e.Embed(gs.Laplacians[k], x)
		htEmb := e.Embed(ht.Laplacians[k], h.Attrs())
		for i := 0; i < 12; i++ {
			for j := 0; j < 3; j++ {
				if math.Abs(hs.At(i, j)-htEmb.At(perm[i], j)) > 1e-9 {
					t.Fatalf("orbit %d: node %d embedding differs from its anchor", k, i)
				}
			}
		}
	}
}

func TestAdamMinimisesQuadratic(t *testing.T) {
	// Minimise f(w) = Σ (w − 3)² with Adam; w must approach 3.
	w := dense.New(2, 2)
	opt := NewAdam([]*dense.Matrix{w}, 0.1)
	for i := 0; i < 500; i++ {
		g := w.Clone()
		g.Apply(func(v float64) float64 { return 2 * (v - 3) })
		opt.Step([]*dense.Matrix{g})
	}
	for _, v := range w.Data {
		if math.Abs(v-3) > 1e-3 {
			t.Fatalf("Adam did not converge: %v", w)
		}
	}
}

func TestAdamStepCountMismatchPanics(t *testing.T) {
	opt := NewAdam([]*dense.Matrix{dense.New(1, 1)}, 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	opt.Step(nil)
}

func TestTrainLossDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	gs := graph.ErdosRenyi(25, 0.25, rng)
	gt := graph.ErdosRenyi(25, 0.25, rng)
	xs := randomFeatures(25, 5, 21)
	xt := randomFeatures(25, 5, 22)
	src := &GraphData{Laps: gom.Build(gs, orbit.Count(gs), 4, false).Laplacians, X: xs}
	tgt := &GraphData{Laps: gom.Build(gt, orbit.Count(gt), 4, false).Laplacians, X: xt}

	e := NewEncoder([]int{5, 8, 4}, []Activation{Tanh{}, Tanh{}}, rand.New(rand.NewSource(23)))
	hist := Train(e, src, tgt, TrainConfig{Epochs: 60, LR: 0.02})
	if len(hist) != 60 {
		t.Fatalf("history length %d", len(hist))
	}
	if hist[len(hist)-1] >= hist[0] {
		t.Fatalf("loss did not decrease: first %v last %v", hist[0], hist[len(hist)-1])
	}
}

func TestTrainPatienceStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := graph.ErdosRenyi(15, 0.4, rng)
	x := randomFeatures(15, 3, 30)
	gd := &GraphData{Laps: gom.LowOrder(g).Laplacians, X: x}
	e := NewEncoder([]int{3, 4, 2}, []Activation{Tanh{}, Tanh{}}, rand.New(rand.NewSource(31)))
	hist := Train(e, gd, gd, TrainConfig{Epochs: 500, LR: 0.05, Patience: 5})
	if len(hist) >= 500 {
		t.Fatalf("patience did not trigger in %d epochs", len(hist))
	}
	if len(hist) < 6 {
		t.Fatalf("stopped suspiciously early: %d epochs", len(hist))
	}
}

func TestTrainNoPatienceRunsFullBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := graph.ErdosRenyi(12, 0.4, rng)
	x := randomFeatures(12, 3, 33)
	gd := &GraphData{Laps: gom.LowOrder(g).Laplacians, X: x}
	e := NewEncoder([]int{3, 4, 2}, []Activation{Tanh{}, Tanh{}}, rand.New(rand.NewSource(34)))
	hist := Train(e, gd, gd, TrainConfig{Epochs: 30, LR: 0.05})
	if len(hist) != 30 {
		t.Fatalf("ran %d epochs, want the full 30", len(hist))
	}
}

func TestTrainZeroEpochs(t *testing.T) {
	e := NewEncoder([]int{2, 2}, []Activation{Tanh{}}, rand.New(rand.NewSource(24)))
	if hist := Train(e, &GraphData{}, &GraphData{}, TrainConfig{Epochs: 0, LR: 0.01}); hist != nil {
		t.Fatal("zero epochs must return nil history")
	}
}

func TestTrainOrbitMismatchPanics(t *testing.T) {
	e := NewEncoder([]int{2, 2}, []Activation{Tanh{}}, rand.New(rand.NewSource(25)))
	src := &GraphData{Laps: make([]*sparse.CSR, 2)}
	tgt := &GraphData{Laps: make([]*sparse.CSR, 3)}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Train(e, src, tgt, TrainConfig{Epochs: 1, LR: 0.01})
}

func TestEmbedAll(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	g := graph.ErdosRenyi(10, 0.4, rng)
	x := randomFeatures(10, 3, 27)
	gd := &GraphData{Laps: gom.Build(g, orbit.Count(g), 3, false).Laplacians, X: x}
	e := NewEncoder([]int{3, 4, 2}, []Activation{Tanh{}, Tanh{}}, rand.New(rand.NewSource(28)))
	hs := EmbedAll(e, gd)
	if len(hs) != 3 {
		t.Fatalf("EmbedAll returned %d matrices", len(hs))
	}
	for _, h := range hs {
		if h.Rows != 10 || h.Cols != 2 {
			t.Fatalf("bad shape %dx%d", h.Rows, h.Cols)
		}
	}
}
