package nn

import (
	"context"
	"fmt"
	"math"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/sparse"
)

// GraphData bundles one graph's training inputs: the per-orbit normalised
// Laplacians and the node feature matrix.
type GraphData struct {
	Laps []*sparse.CSR
	X    *dense.Matrix
}

// TrainConfig controls the multi-orbit-aware training loop.
type TrainConfig struct {
	// Epochs is the number of full passes over all orbits of both graphs.
	Epochs int
	// LR is the Adam learning rate.
	LR float64
	// Patience, when positive, stops training early once the loss has
	// not improved for that many consecutive epochs — useful on easy
	// instances where the paper's fixed epoch budget overshoots.
	Patience int
	// OnEpoch, when non-nil, observes the summed reconstruction loss
	// after each epoch (used for logging and convergence tests).
	OnEpoch func(epoch int, loss float64)
	// Ctx, when non-nil, is checked between epochs; once cancelled,
	// Train stops and returns the history accumulated so far. Long-lived
	// callers (the alignment server) use it to reclaim workers from
	// abandoned jobs.
	Ctx context.Context
}

// Train runs Algorithm 1 (multi-orbit-aware embedding): for every epoch it
// accumulates the reconstruction gradient of every orbit of both graphs
// into one shared update, so the encoder is forced to capture all orders
// of topological consistency at once. It returns the per-epoch loss Γ.
func Train(enc *Encoder, src, tgt *GraphData, cfg TrainConfig) []float64 {
	if len(src.Laps) != len(tgt.Laps) {
		panic(fmt.Sprintf("nn: source has %d orbits, target %d", len(src.Laps), len(tgt.Laps)))
	}
	if cfg.Epochs <= 0 {
		return nil
	}
	opt := NewAdam(enc.W, cfg.LR)
	history := make([]float64, 0, cfg.Epochs)
	best := math.Inf(1)
	sinceImprovement := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			return history
		}
		grads := enc.ZeroGrads()
		var total float64
		for k := range src.Laps {
			for _, gd := range [2]*GraphData{src, tgt} {
				cache := enc.Forward(gd.Laps[k], gd.X)
				loss, dH := ReconLoss(gd.Laps[k], cache.Output())
				enc.Backward(cache, dH, grads)
				total += loss
			}
		}
		opt.Step(grads)
		history = append(history, total)
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, total)
		}
		if cfg.Patience > 0 {
			if total < best*(1-1e-9) {
				best = total
				sinceImprovement = 0
			} else if sinceImprovement++; sinceImprovement >= cfg.Patience {
				break
			}
		}
	}
	return history
}

// EmbedAll generates the per-orbit embeddings H = {H₀ … H_K} of one graph
// with the trained encoder (Algorithm 1, line 12).
func EmbedAll(enc *Encoder, gd *GraphData) []*dense.Matrix {
	out := make([]*dense.Matrix, len(gd.Laps))
	for k, lap := range gd.Laps {
		out[k] = enc.Embed(lap, gd.X)
	}
	return out
}
