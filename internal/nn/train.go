package nn

import (
	"context"
	"fmt"
	"math"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/par"
	"github.com/htc-align/htc/internal/sparse"
)

// GraphData bundles one graph's training inputs: the per-orbit normalised
// Laplacians and the node feature matrix.
type GraphData struct {
	Laps []*sparse.CSR
	X    *dense.Matrix
}

// TrainConfig controls the multi-orbit-aware training loop.
type TrainConfig struct {
	// Epochs is the number of full passes over all orbits of both graphs.
	Epochs int
	// LR is the Adam learning rate.
	LR float64
	// Patience, when positive, stops training early once the loss has
	// not improved for that many consecutive epochs — useful on easy
	// instances where the paper's fixed epoch budget overshoots.
	Patience int
	// Workers bounds the goroutines used per epoch (≤ 0 = GOMAXPROCS).
	// The 2·K forward/backward passes of one epoch are independent — the
	// encoder weights are read-only until the shared Adam step — so they
	// fan out across workers; gradients land in per-pass buffers that are
	// reduced in a fixed order, which keeps the loss history and the
	// learned weights bit-identical for every worker count.
	Workers int
	// OnEpoch, when non-nil, observes the summed reconstruction loss
	// after each epoch (used for logging and convergence tests).
	OnEpoch func(epoch int, loss float64)
	// Ctx, when non-nil, is checked between epochs; once cancelled,
	// Train stops and returns the history accumulated so far. Long-lived
	// callers (the alignment server) use it to reclaim workers from
	// abandoned jobs.
	Ctx context.Context
}

// trainTask is one (orbit, graph) reconstruction pass of an epoch. Tasks
// are ordered orbit-major with the source graph first, matching the
// serial loop of Algorithm 1, so reducing per-task results in task order
// reproduces the serial arithmetic exactly.
type trainTask struct {
	lap *sparse.CSR
	x   *dense.Matrix
	// side is 0 for the source graph, 1 for the target: workers keep one
	// workspace per side so buffer shapes stay stable across their tasks.
	side int
	// grads accumulates this task's weight gradient within an epoch.
	grads []*dense.Matrix
}

// Train runs Algorithm 1 (multi-orbit-aware embedding): for every epoch it
// accumulates the reconstruction gradient of every orbit of both graphs
// into one shared update, so the encoder is forced to capture all orders
// of topological consistency at once. It returns the per-epoch loss Γ.
func Train(enc *Encoder, src, tgt *GraphData, cfg TrainConfig) []float64 {
	if len(src.Laps) != len(tgt.Laps) {
		panic(fmt.Sprintf("nn: source has %d orbits, target %d", len(src.Laps), len(tgt.Laps)))
	}
	if cfg.Epochs <= 0 {
		return nil
	}

	tasks := make([]*trainTask, 0, 2*len(src.Laps))
	for k := range src.Laps {
		for side, gd := range [2]*GraphData{src, tgt} {
			tasks = append(tasks, &trainTask{
				lap: gd.Laps[k], x: gd.X, side: side,
				grads: enc.ZeroGrads(),
			})
		}
	}

	// Divide the budget: fan tasks across up to `outer` goroutines; when
	// fewer tasks than workers exist (the low-order variants), the spare
	// budget parallelises the dense kernels inside each pass instead.
	// Zero orbits degenerate to epochs of zero loss and zero gradient,
	// matching the old serial loop.
	outer, inner := par.SplitOuterInner(cfg.Workers, len(tasks))

	// One workspace per (worker, graph side): a worker's stride-W task
	// sequence alternates sides, and per-side buffers keep every reuse a
	// shape hit.
	workspaces := make([][2]workspace, outer)

	opt := NewAdam(enc.W, cfg.LR)
	grads := enc.ZeroGrads()
	losses := make([]float64, len(tasks))
	history := make([]float64, 0, cfg.Epochs)
	best := math.Inf(1)
	sinceImprovement := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			return history
		}
		par.Sharded(outer, len(tasks), func(worker, t int) {
			task := tasks[t]
			ws := &workspaces[worker][task.side]
			for _, g := range task.grads {
				g.Zero()
			}
			enc.ForwardReuse(&ws.cache, task.lap, task.x, inner)
			loss, dH := reconLossReuse(task.lap, ws.cache.Output(), ws, inner)
			enc.backwardReuse(&ws.cache, dH, task.grads, ws, inner)
			losses[t] = loss
		})

		// Reduce in task order: the additions happen in exactly the
		// sequence the serial loop used, so the result is independent of
		// how tasks were scheduled.
		for _, g := range grads {
			g.Zero()
		}
		var total float64
		for t, task := range tasks {
			total += losses[t]
			for l, g := range grads {
				g.Add(task.grads[l])
			}
		}
		opt.Step(grads)
		history = append(history, total)
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, total)
		}
		if cfg.Patience > 0 {
			if total < best*(1-1e-9) {
				best = total
				sinceImprovement = 0
			} else if sinceImprovement++; sinceImprovement >= cfg.Patience {
				break
			}
		}
	}
	return history
}

// EmbedAll generates the per-orbit embeddings H = {H₀ … H_K} of one graph
// with the trained encoder (Algorithm 1, line 12).
func EmbedAll(enc *Encoder, gd *GraphData) []*dense.Matrix {
	out := make([]*dense.Matrix, len(gd.Laps))
	for k, lap := range gd.Laps {
		out[k] = enc.Embed(lap, gd.X)
	}
	return out
}
