package nn

import (
	"math"

	"github.com/htc-align/htc/internal/dense"
)

// Adam is the Adam optimiser (Kingma & Ba, 2014) over a fixed parameter
// list, with the standard bias-corrected first and second moments.
type Adam struct {
	// LR is the learning rate η (the paper uses 0.01).
	LR float64
	// Beta1, Beta2 are the moment decay rates; Eps avoids division by 0.
	Beta1, Beta2, Eps float64

	params []*dense.Matrix
	m, v   []*dense.Matrix
	t      int
}

// NewAdam returns an optimiser over params with the given learning rate
// and default decay rates β1 = 0.9, β2 = 0.999, ε = 1e−8.
func NewAdam(params []*dense.Matrix, lr float64) *Adam {
	a := &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		params: params,
		m:      make([]*dense.Matrix, len(params)),
		v:      make([]*dense.Matrix, len(params)),
	}
	for i, p := range params {
		a.m[i] = dense.New(p.Rows, p.Cols)
		a.v[i] = dense.New(p.Rows, p.Cols)
	}
	return a
}

// Step applies one Adam update using grads, which must be shaped like the
// parameter list passed to NewAdam.
func (a *Adam) Step(grads []*dense.Matrix) {
	if len(grads) != len(a.params) {
		panic("nn: Adam.Step gradient count mismatch")
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		g := grads[i]
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			gj := g.Data[j]
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*gj
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*gj*gj
			mHat := m.Data[j] / c1
			vHat := v.Data[j] / c2
			p.Data[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}
