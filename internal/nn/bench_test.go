package nn

import (
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/sparse"
)

// benchGraphData builds one graph's training inputs with k Laplacian-like
// aggregation matrices.
func benchGraphData(n, k, d int, seed int64) *GraphData {
	rng := rand.New(rand.NewSource(seed))
	g := graph.ErdosRenyi(n, 0.05, rng)
	laps := make([]*sparse.CSR, k)
	scale := make([]float64, n)
	for o := range laps {
		for i := range scale {
			scale[i] = 1 / float64(o+2)
		}
		laps[o] = g.Adjacency().DiagScale(scale, scale)
	}
	x := dense.New(n, d)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return &GraphData{Laps: laps, X: x}
}

// BenchmarkTrainWorkers measures the stage-3 epoch loop: 2·K independent
// forward/backward passes per epoch fanned across the worker budget, with
// per-task gradient buffers and per-worker reusable workspaces.
func BenchmarkTrainWorkers(b *testing.B) {
	src := benchGraphData(300, 8, 6, 1)
	tgt := benchGraphData(280, 8, 6, 2)
	for _, w := range []struct {
		label   string
		workers int
	}{{"1", 1}, {"max", 0}} {
		b.Run("workers="+w.label, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				enc := NewEncoder([]int{6, 32, 16}, []Activation{Tanh{}, Tanh{}}, rand.New(rand.NewSource(3)))
				Train(enc, src, tgt, TrainConfig{Epochs: 10, LR: 0.01, Workers: w.workers})
			}
		})
	}
}
