package nn

import (
	"fmt"
	"math/rand"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/sparse"
)

// Encoder is an L-layer graph convolutional encoder with weights shared
// across graphs and orbits (the property Proposition 1 of the paper relies
// on). Layer l computes Hˡ = fˡ(L̃·Hˡ⁻¹·Wˡ) per Eq. (4)–(5); the Laplacian
// L̃ is supplied per forward call so the same weights serve every orbit of
// both the source and target graph.
type Encoder struct {
	// Dims holds the layer widths: Dims[0] is the input feature
	// dimension, Dims[len(Dims)-1] the embedding dimension.
	Dims []int
	// Acts holds one activation per layer.
	Acts []Activation
	// W holds the trainable weights, W[l] of shape Dims[l]×Dims[l+1].
	W []*dense.Matrix
}

// NewEncoder creates an encoder with Xavier-initialised weights drawn from
// rng. dims must contain at least two entries and acts exactly
// len(dims)−1.
func NewEncoder(dims []int, acts []Activation, rng *rand.Rand) *Encoder {
	if len(dims) < 2 {
		panic(fmt.Sprintf("nn: encoder needs ≥2 dims, got %v", dims))
	}
	if len(acts) != len(dims)-1 {
		panic(fmt.Sprintf("nn: %d activations for %d layers", len(acts), len(dims)-1))
	}
	e := &Encoder{Dims: dims, Acts: acts, W: make([]*dense.Matrix, len(dims)-1)}
	for l := range e.W {
		e.W[l] = dense.Xavier(dims[l], dims[l+1], rng)
	}
	return e
}

// Layers returns the number of hidden layers L.
func (e *Encoder) Layers() int { return len(e.W) }

// Clone returns a deep copy of the encoder (weights included).
func (e *Encoder) Clone() *Encoder {
	cp := &Encoder{
		Dims: append([]int(nil), e.Dims...),
		Acts: append([]Activation(nil), e.Acts...),
		W:    make([]*dense.Matrix, len(e.W)),
	}
	for l, w := range e.W {
		cp.W[l] = w.Clone()
	}
	return cp
}

// Cache stores the intermediate activations of one forward pass, needed to
// run the corresponding backward pass.
type Cache struct {
	// Lap is the aggregation matrix used by the pass.
	Lap *sparse.CSR
	// X is the input feature matrix.
	X *dense.Matrix
	// P[l] = Lap·Hˡ⁻¹ (pre-weight aggregate), A[l] = fˡ(P[l]·Wˡ).
	P, A []*dense.Matrix
}

// Output returns the final-layer embeddings of the pass.
func (c *Cache) Output() *dense.Matrix { return c.A[len(c.A)-1] }

// Forward runs the encoder over one graph: lap is the (possibly
// reinforced) normalised orbit Laplacian, x the node features. It returns
// the cache holding every layer's activations.
func (e *Encoder) Forward(lap *sparse.CSR, x *dense.Matrix) *Cache {
	if x.Cols != e.Dims[0] {
		panic(fmt.Sprintf("nn: input has %d features, encoder expects %d", x.Cols, e.Dims[0]))
	}
	c := &Cache{Lap: lap, X: x, P: make([]*dense.Matrix, e.Layers()), A: make([]*dense.Matrix, e.Layers())}
	h := x
	for l := 0; l < e.Layers(); l++ {
		p := lap.MulDense(h)
		z := dense.Mul(p, e.W[l])
		e.Acts[l].Forward(z.Data)
		c.P[l], c.A[l] = p, z
		h = z
	}
	return c
}

// Embed is a convenience wrapper returning only the final embeddings.
func (e *Encoder) Embed(lap *sparse.CSR, x *dense.Matrix) *dense.Matrix {
	return e.Forward(lap, x).Output()
}

// Backward accumulates ∂loss/∂W into grads given ∂loss/∂output. The cache
// must come from a Forward call on this encoder; grads must hold one
// matrix per layer, shaped like the weights. dOut is consumed
// (overwritten) during the pass.
//
// Derivation per layer (symmetric L̃): with Zˡ = L̃·Aˡ⁻¹·Wˡ and
// Aˡ = fˡ(Zˡ):
//
//	dZˡ = dAˡ ⊙ fˡ′,  dWˡ = (L̃·Aˡ⁻¹)ᵀ·dZˡ = Pˡᵀ·dZˡ,
//	dAˡ⁻¹ = L̃ᵀ·(dZˡ·Wˡᵀ) = L̃·(dZˡ·Wˡᵀ).
func (e *Encoder) Backward(c *Cache, dOut *dense.Matrix, grads []*dense.Matrix) {
	if len(grads) != e.Layers() {
		panic(fmt.Sprintf("nn: %d gradient buffers for %d layers", len(grads), e.Layers()))
	}
	dA := dOut
	for l := e.Layers() - 1; l >= 0; l-- {
		e.Acts[l].Backward(dA.Data, c.A[l].Data) // dA becomes dZ in place
		grads[l].Add(dense.MulAT(c.P[l], dA))
		if l > 0 {
			dP := dense.MulBT(dA, e.W[l])
			dA = c.Lap.MulDense(dP) // L̃ is symmetric: L̃ᵀ·dP = L̃·dP
		}
	}
}

// ZeroGrads returns zeroed gradient buffers shaped like the encoder's
// weights.
func (e *Encoder) ZeroGrads() []*dense.Matrix {
	grads := make([]*dense.Matrix, e.Layers())
	for l, w := range e.W {
		grads[l] = dense.New(w.Rows, w.Cols)
	}
	return grads
}

// ReconLoss evaluates the graph-autoencoder reconstruction objective for
// one orbit and one graph: loss = ‖L̃ − H·Hᵀ‖²_F (squared Frobenius form
// of Eq. (7); same minimiser, smooth gradient), returning the loss value
// and ∂loss/∂H.
//
// Neither the loss nor the gradient materialises the n×n reconstruction:
//
//	loss = ‖L̃‖²_F − 2·Σ(H ⊙ (L̃·H)) + ‖HᵀH‖²_F
//	grad = −4·(L̃·H − H·(HᵀH))
func ReconLoss(lap *sparse.CSR, h *dense.Matrix) (float64, *dense.Matrix) {
	lh := lap.MulDense(h)     // n×d
	gram := dense.MulAT(h, h) // d×d
	loss := lap.SumSquares() - 2*h.Dot(lh) + gram.SumSquares()
	grad := dense.Mul(h, gram) // H·(HᵀH)
	grad.Sub(lh)
	grad.Scale(4) // −4(L̃H − H·Gram) = 4(H·Gram − L̃H)
	return loss, grad
}
