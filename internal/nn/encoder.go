package nn

import (
	"fmt"
	"math/rand"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/sparse"
)

// Encoder is an L-layer graph convolutional encoder with weights shared
// across graphs and orbits (the property Proposition 1 of the paper relies
// on). Layer l computes Hˡ = fˡ(L̃·Hˡ⁻¹·Wˡ) per Eq. (4)–(5); the Laplacian
// L̃ is supplied per forward call so the same weights serve every orbit of
// both the source and target graph.
type Encoder struct {
	// Dims holds the layer widths: Dims[0] is the input feature
	// dimension, Dims[len(Dims)-1] the embedding dimension.
	Dims []int
	// Acts holds one activation per layer.
	Acts []Activation
	// W holds the trainable weights, W[l] of shape Dims[l]×Dims[l+1].
	W []*dense.Matrix
}

// NewEncoder creates an encoder with Xavier-initialised weights drawn from
// rng. dims must contain at least two entries and acts exactly
// len(dims)−1.
func NewEncoder(dims []int, acts []Activation, rng *rand.Rand) *Encoder {
	if len(dims) < 2 {
		panic(fmt.Sprintf("nn: encoder needs ≥2 dims, got %v", dims))
	}
	if len(acts) != len(dims)-1 {
		panic(fmt.Sprintf("nn: %d activations for %d layers", len(acts), len(dims)-1))
	}
	e := &Encoder{Dims: dims, Acts: acts, W: make([]*dense.Matrix, len(dims)-1)}
	for l := range e.W {
		e.W[l] = dense.Xavier(dims[l], dims[l+1], rng)
	}
	return e
}

// Layers returns the number of hidden layers L.
func (e *Encoder) Layers() int { return len(e.W) }

// Clone returns a deep copy of the encoder (weights included).
func (e *Encoder) Clone() *Encoder {
	cp := &Encoder{
		Dims: append([]int(nil), e.Dims...),
		Acts: append([]Activation(nil), e.Acts...),
		W:    make([]*dense.Matrix, len(e.W)),
	}
	for l, w := range e.W {
		cp.W[l] = w.Clone()
	}
	return cp
}

// Cache stores the intermediate activations of one forward pass, needed to
// run the corresponding backward pass.
type Cache struct {
	// Lap is the aggregation matrix used by the pass.
	Lap *sparse.CSR
	// X is the input feature matrix.
	X *dense.Matrix
	// P[l] = Lap·Hˡ⁻¹ (pre-weight aggregate), A[l] = fˡ(P[l]·Wˡ).
	P, A []*dense.Matrix
}

// Output returns the final-layer embeddings of the pass.
func (c *Cache) Output() *dense.Matrix { return c.A[len(c.A)-1] }

// Forward runs the encoder over one graph: lap is the (possibly
// reinforced) normalised orbit Laplacian, x the node features. It returns
// the cache holding every layer's activations.
func (e *Encoder) Forward(lap *sparse.CSR, x *dense.Matrix) *Cache {
	c := &Cache{}
	e.ForwardReuse(c, lap, x, 0)
	return c
}

// ForwardReuse is Forward writing into a caller-owned cache: when c's
// buffers already have the right shapes they are overwritten in place, so
// a training or fine-tuning loop allocates its activations once instead of
// every pass. workers bounds the kernel fan-out (≤ 0 = GOMAXPROCS).
func (e *Encoder) ForwardReuse(c *Cache, lap *sparse.CSR, x *dense.Matrix, workers int) {
	if x.Cols != e.Dims[0] {
		panic(fmt.Sprintf("nn: input has %d features, encoder expects %d", x.Cols, e.Dims[0]))
	}
	if len(c.P) != e.Layers() {
		c.P = make([]*dense.Matrix, e.Layers())
		c.A = make([]*dense.Matrix, e.Layers())
	}
	c.Lap, c.X = lap, x
	h := x
	for l := 0; l < e.Layers(); l++ {
		p := dense.Ensure(c.P[l], x.Rows, h.Cols)
		lap.MulDenseInto(p, h, workers)
		z := dense.Ensure(c.A[l], x.Rows, e.Dims[l+1])
		dense.MulInto(z, p, e.W[l], workers)
		e.Acts[l].Forward(z.Data)
		c.P[l], c.A[l] = p, z
		h = z
	}
}

// Embed is a convenience wrapper returning only the final embeddings.
func (e *Encoder) Embed(lap *sparse.CSR, x *dense.Matrix) *dense.Matrix {
	return e.Forward(lap, x).Output()
}

// Backward accumulates ∂loss/∂W into grads given ∂loss/∂output. The cache
// must come from a Forward call on this encoder; grads must hold one
// matrix per layer, shaped like the weights. dOut is consumed
// (overwritten) during the pass.
//
// Derivation per layer (symmetric L̃): with Zˡ = L̃·Aˡ⁻¹·Wˡ and
// Aˡ = fˡ(Zˡ):
//
//	dZˡ = dAˡ ⊙ fˡ′,  dWˡ = (L̃·Aˡ⁻¹)ᵀ·dZˡ = Pˡᵀ·dZˡ,
//	dAˡ⁻¹ = L̃ᵀ·(dZˡ·Wˡᵀ) = L̃·(dZˡ·Wˡᵀ).
func (e *Encoder) Backward(c *Cache, dOut *dense.Matrix, grads []*dense.Matrix) {
	e.backwardReuse(c, dOut, grads, &workspace{}, 0)
}

// backwardReuse is Backward with a caller-owned workspace for the
// intermediate dP/dA matrices, so repeated passes stop allocating them.
func (e *Encoder) backwardReuse(c *Cache, dOut *dense.Matrix, grads []*dense.Matrix, ws *workspace, workers int) {
	if len(grads) != e.Layers() {
		panic(fmt.Sprintf("nn: %d gradient buffers for %d layers", len(grads), e.Layers()))
	}
	if len(ws.dP) != e.Layers() {
		ws.dP = make([]*dense.Matrix, e.Layers())
		ws.dA = make([]*dense.Matrix, e.Layers())
	}
	n := c.X.Rows
	dA := dOut
	for l := e.Layers() - 1; l >= 0; l-- {
		e.Acts[l].Backward(dA.Data, c.A[l].Data) // dA becomes dZ in place
		dense.MulATAccum(grads[l], c.P[l], dA, workers)
		if l > 0 {
			dP := dense.Ensure(ws.dP[l], n, e.Dims[l])
			dense.MulBTInto(dP, dA, e.W[l], workers)
			ws.dP[l] = dP
			next := dense.Ensure(ws.dA[l], n, e.Dims[l])
			c.Lap.MulDenseInto(next, dP, workers) // L̃ is symmetric: L̃ᵀ·dP = L̃·dP
			ws.dA[l] = next
			dA = next
		}
	}
}

// workspace bundles the per-goroutine scratch of one training task stream:
// the forward cache, the backward intermediates and the reconstruction-
// loss buffers. One worker reuses its workspace across every orbit and
// epoch it processes, which removes the per-pass allocation churn that
// used to dominate the training loop's GC time.
type workspace struct {
	cache          Cache
	dP, dA         []*dense.Matrix
	lh, grad, gram *dense.Matrix
}

// ZeroGrads returns zeroed gradient buffers shaped like the encoder's
// weights.
func (e *Encoder) ZeroGrads() []*dense.Matrix {
	grads := make([]*dense.Matrix, e.Layers())
	for l, w := range e.W {
		grads[l] = dense.New(w.Rows, w.Cols)
	}
	return grads
}

// ReconLoss evaluates the graph-autoencoder reconstruction objective for
// one orbit and one graph: loss = ‖L̃ − H·Hᵀ‖²_F (squared Frobenius form
// of Eq. (7); same minimiser, smooth gradient), returning the loss value
// and ∂loss/∂H.
//
// Neither the loss nor the gradient materialises the n×n reconstruction:
//
//	loss = ‖L̃‖²_F − 2·Σ(H ⊙ (L̃·H)) + ‖HᵀH‖²_F
//	grad = −4·(L̃·H − H·(HᵀH))
func ReconLoss(lap *sparse.CSR, h *dense.Matrix) (float64, *dense.Matrix) {
	return reconLossReuse(lap, h, &workspace{}, 0)
}

// reconLossReuse is ReconLoss writing its intermediates (and the returned
// gradient) into the workspace, so an epoch loop reuses three buffers
// instead of allocating them per orbit per epoch. The returned gradient
// aliases ws.grad and is valid until the next call on the same workspace.
func reconLossReuse(lap *sparse.CSR, h *dense.Matrix, ws *workspace, workers int) (float64, *dense.Matrix) {
	ws.lh = dense.Ensure(ws.lh, h.Rows, h.Cols)
	lap.MulDenseInto(ws.lh, h, workers) // n×d
	ws.gram = dense.Ensure(ws.gram, h.Cols, h.Cols)
	dense.MulATInto(ws.gram, h, h, workers) // d×d
	loss := lap.SumSquares() - 2*h.Dot(ws.lh) + ws.gram.SumSquares()
	ws.grad = dense.Ensure(ws.grad, h.Rows, h.Cols)
	dense.MulInto(ws.grad, h, ws.gram, workers) // H·(HᵀH)
	ws.grad.Sub(ws.lh)
	ws.grad.Scale(4) // −4(L̃H − H·Gram) = 4(H·Gram − L̃H)
	return loss, ws.grad
}
