// Package nn implements the neural substrate of HTC: a shared-weight
// L-layer GCN encoder with exact manual backpropagation, the graph
// autoencoder reconstruction loss of Eq. (6)–(8), the Adam optimiser, and
// the multi-orbit-aware training loop of Algorithm 1. Everything is built
// on the dense/sparse kernels; no autodiff framework is involved — the
// model is small enough that its gradient has a closed form.
package nn

import "math"

// Activation is a pointwise nonlinearity that can run forward in place and
// push gradients backward given the layer's *output* (every activation
// used here has a derivative expressible through its output, which avoids
// caching pre-activations).
type Activation interface {
	// Name identifies the activation in logs and tests.
	Name() string
	// Forward applies the activation to every entry of z in place.
	Forward(z []float64)
	// Backward multiplies grad by f′(z) computed from the activation
	// output act, entry by entry, in place.
	Backward(grad, act []float64)
}

// Tanh is the hyperbolic tangent activation; f′(z) = 1 − f(z)².
type Tanh struct{}

// Name implements Activation.
func (Tanh) Name() string { return "tanh" }

// Forward implements Activation.
func (Tanh) Forward(z []float64) {
	for i, v := range z {
		z[i] = math.Tanh(v)
	}
}

// Backward implements Activation.
func (Tanh) Backward(grad, act []float64) {
	for i, a := range act {
		grad[i] *= 1 - a*a
	}
}

// ReLU is the rectified linear unit; f′(z) = 1 for positive outputs.
type ReLU struct{}

// Name implements Activation.
func (ReLU) Name() string { return "relu" }

// Forward implements Activation.
func (ReLU) Forward(z []float64) {
	for i, v := range z {
		if v < 0 {
			z[i] = 0
		}
	}
}

// Backward implements Activation.
func (ReLU) Backward(grad, act []float64) {
	for i, a := range act {
		if a <= 0 {
			grad[i] = 0
		}
	}
}

// Linear is the identity activation.
type Linear struct{}

// Name implements Activation.
func (Linear) Name() string { return "linear" }

// Forward implements Activation.
func (Linear) Forward([]float64) {}

// Backward implements Activation.
func (Linear) Backward([]float64, []float64) {}
