package diffusion

import (
	"math"
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
)

func TestMatricesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyi(20, 0.3, rng)
	ms := Matrices(g, 4, 0.15, 1e-4)
	if len(ms) != 4 {
		t.Fatalf("got %d matrices, want 4", len(ms))
	}
	for i, m := range ms {
		if m.Rows != 20 || m.Cols != 20 {
			t.Fatalf("matrix %d has shape %dx%d", i, m.Rows, m.Cols)
		}
	}
}

func TestMatricesOrderGrowsSupport(t *testing.T) {
	// Higher truncation order reaches more node pairs, so (with no
	// thresholding) the support must be non-decreasing. This is the
	// "densification" property the ablation discussion relies on.
	b := graph.NewBuilder(6)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, i+1) // path graph: powers reach farther each step
	}
	g := b.Build()
	ms := Matrices(g, 4, 0.15, 0)
	for i := 1; i < len(ms); i++ {
		if ms[i].NNZ() < ms[i-1].NNZ() {
			t.Fatalf("support shrank from order %d (%d) to %d (%d)",
				i, ms[i-1].NNZ(), i+1, ms[i].NNZ())
		}
	}
	// On a path, order 2 must connect nodes at distance 2.
	if ms[1].At(0, 2) == 0 {
		t.Fatal("order-2 diffusion missing distance-2 pair")
	}
}

func TestMatricesDiagonalKept(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.ErdosRenyi(15, 0.2, rng)
	for _, m := range Matrices(g, 3, 0.15, 0.5) { // aggressive threshold
		for i := 0; i < m.Rows; i++ {
			if m.At(i, i) == 0 {
				t.Fatalf("diagonal entry (%d,%d) was dropped", i, i)
			}
		}
	}
}

func TestMatricesSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.ErdosRenyi(12, 0.4, rng)
	for k, m := range Matrices(g, 3, 0.2, 0) {
		d := m.ToDense()
		if !d.Equal(d.T(), 1e-12) {
			t.Fatalf("order-%d diffusion not symmetric", k+1)
		}
	}
}

func TestMatricesThresholdSparsifies(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.ErdosRenyi(30, 0.3, rng)
	loose := Matrices(g, 3, 0.15, 0)
	tight := Matrices(g, 3, 0.15, 1e-2)
	if tight[2].NNZ() >= loose[2].NNZ() {
		t.Fatalf("threshold did not sparsify: %d vs %d", tight[2].NNZ(), loose[2].NNZ())
	}
}

func TestMatricesMassBound(t *testing.T) {
	// Row sums of the untruncated PPR matrix are ≤ 1 for the symmetric
	// kernel (equality only in the regular case); the truncated sums
	// must stay below 1 + tolerance.
	rng := rand.New(rand.NewSource(5))
	g := graph.ErdosRenyi(25, 0.3, rng)
	ms := Matrices(g, 5, 0.15, 0)
	last := ms[len(ms)-1]
	for i, s := range last.RowSums() {
		if s > 1+1e-9 {
			t.Fatalf("row %d sum %v exceeds 1", i, s)
		}
		if s < 0 {
			t.Fatalf("row %d sum negative: %v", i, s)
		}
	}
	_ = math.Pi // keep math imported for future tolerance tweaks
}

func TestMatricesValidation(t *testing.T) {
	g := graph.NewBuilder(2).Build()
	for _, fn := range []func(){
		func() { Matrices(g, 0, 0.15, 0) },
		func() { Matrices(g, 2, 0, 0) },
		func() { Matrices(g, 2, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestMatricesMatchDenseReference checks the sparse power recurrence
// against a naive dense computation of Σ α(1−α)ʲ·Tʲ. With eps = 0 the two
// must agree to arithmetic round-off.
func TestMatricesMatchDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.ErdosRenyi(18, 0.3, rng)
	alpha := 0.15
	ms := Matrices(g, 4, alpha, 0)

	tr := transition(g).ToDense()
	power := dense.Identity(g.N())
	acc := dense.Identity(g.N())
	acc.Scale(alpha)
	coeff := alpha
	for i := 0; i < 4; i++ {
		power = dense.Mul(tr, power)
		coeff *= 1 - alpha
		acc.AddScaled(power, coeff)
		if got := ms[i].ToDense(); !got.Equal(acc, 1e-12) {
			t.Fatalf("order %d: sparse recurrence diverged from dense reference", i+1)
		}
	}
}

// TestMatricesPruneDriftBounded bounds the approximation the per-order
// power pruning introduces at a realistic threshold: every entry of the
// emitted matrices must stay within eps of the exact (unpruned)
// recurrence, so the compounding of dropped entries across orders never
// exceeds the error the emission threshold already accepts.
func TestMatricesPruneDriftBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.ErdosRenyi(200, 0.03, rng)
	eps := 1e-4
	pruned := Matrices(g, 5, 0.15, eps)
	exact := Matrices(g, 5, 0.15, 0)
	for i := range exact {
		diff := exact[i].ToDense()
		diff.Sub(pruned[i].ToDense())
		if drift := diff.MaxAbs(); drift > eps {
			t.Fatalf("order %d: pruning drifted %v from the exact recurrence (eps %v)", i+1, drift, eps)
		}
	}
}

// TestMatricesPrunedStaysSparse is the point of the SpGEMM rewrite: on a
// large sparse graph with a realistic threshold, the emitted matrices must
// keep far fewer than n² entries.
func TestMatricesPrunedStaysSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.ErdosRenyi(400, 0.01, rng)
	ms := Matrices(g, 5, 0.15, 1e-3)
	n2 := g.N() * g.N()
	for i, m := range ms {
		if m.NNZ() >= n2/4 {
			t.Fatalf("order %d filled to %d of %d entries despite pruning", i+1, m.NNZ(), n2)
		}
	}
}

func TestIsolatedNodeRow(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	ms := Matrices(g, 2, 0.15, 0)
	// Node 2 is isolated: its diffusion row is α on the diagonal.
	if math.Abs(ms[1].At(2, 2)-0.15) > 1e-12 {
		t.Fatalf("isolated diagonal = %v, want α", ms[1].At(2, 2))
	}
	if ms[1].At(2, 0) != 0 {
		t.Fatal("isolated node leaked mass")
	}
}
