package diffusion

import (
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/graph"
)

// BenchmarkMatrices measures the stage-2 HTC-DT path: sparse power
// accumulation with per-order eps-pruning. Before the SpGEMM rewrite this
// workload carried two dense n×n matrices through every order.
func BenchmarkMatrices(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyi(3000, 0.001, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Matrices(g, 5, 0.15, 1e-4)
	}
}
