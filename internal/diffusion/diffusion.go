// Package diffusion builds truncated personalised-PageRank diffusion
// matrices (Klicpera et al., "Diffusion Improves Graph Learning", NeurIPS
// 2019). HTC's ablation variant HTC-DT swaps the graphlet orbit matrices
// for these diffusion matrices of increasing order, to test whether
// "a larger neighbourhood" can substitute for genuine higher-order
// consistency — the paper (Table III) shows it cannot.
package diffusion

import (
	"fmt"
	"math"

	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/sparse"
)

// Matrices returns k diffusion matrices S₁ … S_k of increasing truncation
// order: S_i = Σ_{j=0..i} α(1−α)ʲ·Tʲ with the symmetric transition matrix
// T = D^(−1/2)·A·D^(−1/2). Entries smaller than eps are dropped so that
// the matrices stay sparse enough to aggregate with; the diagonal is
// always kept.
//
// The powers are accumulated sparsely: Tʲ is carried as a CSR matrix and
// advanced with Gustavson SpGEMM, with sub-eps entries pruned after every
// multiplication. On sparse graphs this keeps the cost proportional to the
// (pruned) fill of Tʲ instead of the O(n²) memory and O(n³) time the old
// dense power loop paid regardless of sparsity. With eps = 0 nothing is
// pruned and the recurrence is exact.
func Matrices(g *graph.Graph, k int, alpha, eps float64) []*sparse.CSR {
	if k < 1 {
		panic(fmt.Sprintf("diffusion: k = %d < 1", k))
	}
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("diffusion: alpha = %v outside (0,1)", alpha))
	}
	n := g.N()
	t := transition(g)

	// Power accumulation: power = Tʲ (sparse, eps-pruned),
	// acc = Σ_{j≤i} α(1−α)ʲTʲ.
	power := sparse.Identity(n)
	acc := sparse.Identity(n)
	for p := range acc.Val {
		acc.Val[p] = alpha
	}

	out := make([]*sparse.CSR, 0, k)
	coeff := alpha
	for i := 1; i <= k; i++ {
		power = sparse.Mul(t, power)
		if eps > 0 {
			// Bound the fill of the carried power without visibly moving
			// the emitted matrices: pruning is an approximation whose
			// per-entry error compounds across the remaining orders
			// (every dropped entry is missing from all later products),
			// so the working threshold sits well below the emission eps.
			// TestMatricesPruneDriftBounded pins the resulting deviation
			// from the exact recurrence to a fraction of eps.
			power = power.Prune(eps/16, false)
		}
		coeff *= 1 - alpha
		acc = sparse.Add(acc, power, 1, coeff)
		out = append(out, sparsify(acc, eps))
	}
	return out
}

// transition returns T = D^(−1/2)·A·D^(−1/2) as a sparse matrix. Isolated
// nodes produce all-zero rows.
func transition(g *graph.Graph) *sparse.CSR {
	inv := make([]float64, g.N())
	for i, d := range g.DegreeVector() {
		if d > 0 {
			inv[i] = 1 / math.Sqrt(d)
		}
	}
	return g.Adjacency().DiagScale(inv, inv)
}

// sparsify drops entries below eps, always keeping the diagonal so every
// node stays self-connected. The result is exactly sized (survivors are
// counted before copying), so no append-doubling garbage is produced.
func sparsify(m *sparse.CSR, eps float64) *sparse.CSR {
	if eps <= 0 {
		return m.Clone()
	}
	return m.Prune(eps, true)
}
