// Package diffusion builds truncated personalised-PageRank diffusion
// matrices (Klicpera et al., "Diffusion Improves Graph Learning", NeurIPS
// 2019). HTC's ablation variant HTC-DT swaps the graphlet orbit matrices
// for these diffusion matrices of increasing order, to test whether
// "a larger neighbourhood" can substitute for genuine higher-order
// consistency — the paper (Table III) shows it cannot.
package diffusion

import (
	"fmt"
	"math"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/sparse"
)

// Matrices returns k diffusion matrices S₁ … S_k of increasing truncation
// order: S_i = Σ_{j=0..i} α(1−α)ʲ·Tʲ with the symmetric transition matrix
// T = D^(−1/2)·A·D^(−1/2). Entries smaller than eps are dropped so that
// the matrices stay sparse enough to aggregate with; the diagonal is
// always kept.
func Matrices(g *graph.Graph, k int, alpha, eps float64) []*sparse.CSR {
	if k < 1 {
		panic(fmt.Sprintf("diffusion: k = %d < 1", k))
	}
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("diffusion: alpha = %v outside (0,1)", alpha))
	}
	n := g.N()
	t := transition(g)

	// Power accumulation: power = Tʲ (dense), acc = Σ_{j≤i} α(1−α)ʲTʲ.
	power := dense.Identity(n)
	acc := dense.Identity(n)
	acc.Scale(alpha)

	out := make([]*sparse.CSR, 0, k)
	coeff := alpha
	for i := 1; i <= k; i++ {
		power = t.MulDense(power)
		coeff *= 1 - alpha
		acc.AddScaled(power, coeff)
		out = append(out, sparsify(acc, eps))
	}
	return out
}

// transition returns T = D^(−1/2)·A·D^(−1/2) as a sparse matrix. Isolated
// nodes produce all-zero rows.
func transition(g *graph.Graph) *sparse.CSR {
	inv := make([]float64, g.N())
	for i, d := range g.DegreeVector() {
		if d > 0 {
			inv[i] = 1 / math.Sqrt(d)
		}
	}
	return g.Adjacency().DiagScale(inv, inv)
}

// sparsify drops entries below eps, always keeping the diagonal so every
// node stays self-connected.
func sparsify(m *dense.Matrix, eps float64) *sparse.CSR {
	var entries []sparse.Entry
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if i == j || math.Abs(v) >= eps {
				if v != 0 {
					entries = append(entries, sparse.Entry{Row: int32(i), Col: int32(j), Val: v})
				}
			}
		}
	}
	return sparse.FromEntries(m.Rows, m.Cols, entries)
}
