package datasets

import (
	"math/rand"

	"github.com/htc-align/htc/internal/graph"
)

// Douban simulates the Douban Online–Offline pair: a sparse
// preferential-attachment social network (avg degree ≈ 4 online) whose
// offline counterpart is the induced subgraph on roughly 30% of the users
// — biased towards well-connected ones, since offline activity correlates
// with online centrality — further thinned to offline sparsity (avg degree
// ≈ 2.7 in Table I). Ground truth is partial: only users present in both
// networks are anchored, and the two networks have different sizes, which
// exercises the rectangular-alignment code path. Attributes are 64
// Zipf-popular interest tags (scaled down from the paper's 538 to keep the
// first GCN layer laptop-sized; documented in DESIGN.md). n ≤ 0 selects
// the default of 900 online users.
func Douban(n int, seed int64) *Pair {
	if n <= 0 {
		n = 900
	}
	rng := rand.New(rand.NewSource(seed))
	src := graph.PreferentialAttachment(n, 2, rng)
	attrs := zipfTags(n, 64, 3, 8, rng)
	src = src.WithAttrs(attrs)

	// Offline membership: sample ~30% of users, degree-biased. The mild
	// 10% extra edge drop lands the offline average degree near Table
	// I's 2.7 (offline ties are a subset of online ones).
	keepN := n * 3 / 10
	keep := degreeBiasedSample(src, keepN, rng)
	tgtAttrs := subsetRows(noisyClone(attrs, 0.02, rng), keep)
	return subsetInducedPair("Douban On/Off", src, keep, 0.10, tgtAttrs, rng)
}

// FlickrMyspace simulates the Flickr–Myspace pair, the hardest benchmark
// in the paper: extremely sparse topology (avg degree ≈ 2), only 3
// attributes, and — crucially — ground truth that *violates* the usual
// consistency assumptions. The generator reproduces that regime: the
// target keeps the source's nodes but drops 35% of edges AND adds the same
// number of random edges (structure-breaking rewiring), attributes carry
// heavy noise, and only ~4% of nodes have known anchors, mirroring the 267
// ground-truth links among 6714 Flickr users. All methods are expected to
// score near zero here; the experiment checks relative ordering, not
// absolute quality. n ≤ 0 selects the default of 1000 nodes.
func FlickrMyspace(n int, seed int64) *Pair {
	if n <= 0 {
		n = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	src := graph.PreferentialAttachment(n, 1, rng)
	// A touch of extra randomness lifts avg degree to ≈ 2.2.
	b := graph.NewBuilder(n)
	for _, e := range src.Edges() {
		b.AddEdge(int(e[0]), int(e[1]))
	}
	for i := 0; i < n/10; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	src = b.Build()
	attrs := zipfTags(n, 3, 1, 2, rng)
	src = src.WithAttrs(attrs)

	// Target: same user base plus 25% extra users (Myspace is larger),
	// rewired structure, heavily noised attributes.
	nt := n * 5 / 4
	tb := graph.NewBuilder(nt)
	removed := 0
	for _, e := range src.Edges() {
		if rng.Float64() < 0.25 {
			removed++
			continue
		}
		tb.AddEdge(int(e[0]), int(e[1]))
	}
	for i := 0; i < removed; i++ { // consistency-violating rewiring
		tb.AddEdge(rng.Intn(nt), rng.Intn(nt))
	}
	for v := n; v < nt; v++ { // extra Myspace-only users
		tb.AddEdge(v, rng.Intn(v))
	}
	gt := tb.Build()

	tgtAttrs := noisyClone(attrs, 0.45, rng)
	full := zipfTags(nt, 3, 1, 2, rng)
	for i := 0; i < n; i++ {
		copy(full.Row(i), tgtAttrs.Row(i))
	}
	gt = gt.WithAttrs(full)

	perm := graph.Permutation(nt, rng)
	gt = graph.Relabel(gt, perm)

	// Known ground truth: a 4% random subset of the shared users.
	truth := make([]int, n)
	for i := range truth {
		truth[i] = -1
	}
	for _, s := range rng.Perm(n)[:n*4/100] {
		truth[s] = perm[s]
	}
	return &Pair{Name: "Flickr&Myspace", Source: src, Target: gt, Truth: truth}
}

// degreeBiasedSample draws k distinct nodes with probability proportional
// to degree+1.
func degreeBiasedSample(g *graph.Graph, k int, rng *rand.Rand) []int {
	var pool []int32
	for v := 0; v < g.N(); v++ {
		for i := 0; i <= g.Degree(v); i++ {
			pool = append(pool, int32(v))
		}
	}
	chosen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k && len(chosen) < g.N() {
		v := int(pool[rng.Intn(len(pool))])
		if !chosen[v] {
			chosen[v] = true
			out = append(out, v)
		}
	}
	return out
}
