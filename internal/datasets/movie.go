package datasets

import (
	"math/rand"

	"github.com/htc-align/htc/internal/graph"
)

// AllmovieImdb simulates the Allmovie–Imdb pair: two movie networks where
// an edge means "shares at least one actor". The generator builds a
// bipartite movie–actor incidence with Zipf-distributed actor popularity
// and projects it onto movies, which reproduces the pair's distinguishing
// statistics: high density (avg degree ≈ 40 at paper scale), strong
// clustering (every cast is a clique) and 14 genre attributes. The target
// network is the source minus a small fraction of edges and nodes (the two
// sites catalogue slightly different movie sets), with noisy attributes
// and hidden node identities. n ≤ 0 selects the default scale of 800
// movies.
func AllmovieImdb(n int, seed int64) *Pair {
	if n <= 0 {
		n = 800
	}
	rng := rand.New(rand.NewSource(seed))

	// Movie–actor incidence: casts of 5–12 drawn from a Zipf popularity
	// law over 1.5·n actors, with per-actor filmography capped so that
	// no projected clique dominates the graph.
	nActors := n * 3 / 2
	const maxFilmography = 12
	filmography := make([][]int32, nActors)
	z := rand.NewZipf(rng, 1.3, 3, uint64(nActors-1))
	for movie := 0; movie < n; movie++ {
		cast := 5 + rng.Intn(8)
		for c := 0; c < cast; c++ {
			actor := int(z.Uint64())
			if len(filmography[actor]) < maxFilmography {
				filmography[actor] = append(filmography[actor], int32(movie))
			}
		}
	}
	b := graph.NewBuilder(n)
	for _, movies := range filmography {
		for i := 0; i < len(movies); i++ {
			for j := i + 1; j < len(movies); j++ {
				b.AddEdge(int(movies[i]), int(movies[j]))
			}
		}
	}
	src := b.Build()

	// 14 genre attributes, 1–3 genres per movie (Table I: #Attrs = 14).
	attrs := zipfTags(n, 14, 1, 3, rng)
	src = src.WithAttrs(attrs)

	// Target: drop 5% of the movies and 4% of the remaining edges;
	// attributes survive with small noise (genre labels agree across
	// sites but not perfectly).
	keepN := n * 95 / 100
	keep := rng.Perm(n)[:keepN]
	tgtAttrs := subsetRows(noisyClone(attrs, 0.05, rng), keep)
	return subsetInducedPair("Allmovie&Imdb", src, keep, 0.04, tgtAttrs, rng)
}
