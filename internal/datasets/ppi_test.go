package datasets

import (
	"testing"
)

func TestPPIBasics(t *testing.T) {
	g := PPI(500, 1)
	if g.N() != 500 {
		t.Fatalf("n = %d", g.N())
	}
	if g.Attrs() == nil || g.Attrs().Cols != 16 {
		t.Fatal("missing 16-dim sequence profiles")
	}
	// Duplication–divergence yields sparse graphs with heavy-tailed
	// degrees.
	if d := g.AvgDegree(); d < 1 || d > 12 {
		t.Fatalf("avg degree = %.2f, implausible for PPI", d)
	}
	if float64(g.MaxDegree()) < 3*g.AvgDegree() {
		t.Fatalf("no hub proteins: max %d avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestPPINoIsolatedProteins(t *testing.T) {
	g := PPI(300, 2)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			t.Fatalf("protein %d has no interactions", v)
		}
	}
}

func TestPPIDeterministic(t *testing.T) {
	a, b := PPI(200, 7), PPI(200, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("PPI not deterministic")
	}
	if !a.Attrs().Equal(b.Attrs(), 0) {
		t.Fatal("PPI attrs not deterministic")
	}
}

func TestPPIClustered(t *testing.T) {
	// Duplication creates shared neighbourhoods → triangles.
	g := PPI(400, 3)
	if tri := countTriangles(g); tri < 20 {
		t.Fatalf("only %d triangles; duplication–divergence should cluster", tri)
	}
}

func TestPPIDefaultSize(t *testing.T) {
	if g := PPI(0, 4); g.N() != 1000 {
		t.Fatalf("default n = %d, want 1000", g.N())
	}
}
