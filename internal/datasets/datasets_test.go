package datasets

import (
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/graph"
)

func TestAllmovieImdbRegime(t *testing.T) {
	p := AllmovieImdb(400, 1)
	if p.Source.N() != 400 {
		t.Fatalf("source n = %d", p.Source.N())
	}
	if p.Target.N() != 380 { // 95% of the movies
		t.Fatalf("target n = %d, want 380", p.Target.N())
	}
	// Dense, clustered regime: average degree well above the social
	// datasets.
	if d := p.Source.AvgDegree(); d < 15 || d > 70 {
		t.Fatalf("Allmovie avg degree = %.1f, want dense (15–70)", d)
	}
	if p.Source.Attrs().Cols != 14 {
		t.Fatalf("attrs = %d, want 14 genres", p.Source.Attrs().Cols)
	}
	checkTruthValid(t, p)
}

func TestDoubanRegime(t *testing.T) {
	p := Douban(600, 2)
	if p.Source.N() != 600 || p.Target.N() != 180 {
		t.Fatalf("sizes %d/%d, want 600/180", p.Source.N(), p.Target.N())
	}
	if d := p.Source.AvgDegree(); d < 2.5 || d > 6.5 {
		t.Fatalf("Douban online avg degree = %.1f, want ≈ 4", d)
	}
	if d := p.Target.AvgDegree(); d >= p.Source.AvgDegree() {
		t.Fatalf("offline (%.1f) must be sparser than online (%.1f)", d, p.Source.AvgDegree())
	}
	// Partial ground truth: every offline user has an online anchor.
	if got := p.Truth.NumAnchors(); got != 180 {
		t.Fatalf("anchors = %d, want 180", got)
	}
	checkTruthValid(t, p)
}

func TestFlickrMyspaceRegime(t *testing.T) {
	p := FlickrMyspace(800, 3)
	if p.Target.N() != 1000 { // Myspace is larger
		t.Fatalf("target n = %d, want 1000", p.Target.N())
	}
	if d := p.Source.AvgDegree(); d < 1.5 || d > 3.5 {
		t.Fatalf("Flickr avg degree = %.1f, want ≈ 2", d)
	}
	if p.Source.Attrs().Cols != 3 {
		t.Fatalf("attrs = %d, want 3", p.Source.Attrs().Cols)
	}
	// Scarce ground truth, mirroring 267/6714.
	if got := p.Truth.NumAnchors(); got != 800*4/100 {
		t.Fatalf("anchors = %d, want %d", got, 800*4/100)
	}
	checkTruthValid(t, p)
}

func TestEconRegime(t *testing.T) {
	g := Econ(0, 4)
	if g.N() != 1258 {
		t.Fatalf("n = %d, want 1258 (paper scale)", g.N())
	}
	if d := g.AvgDegree(); d < 8 || d > 16 {
		t.Fatalf("avg degree = %.1f, want ≈ 12", d)
	}
	if g.Attrs().Cols != 20 {
		t.Fatalf("attrs = %d, want 20", g.Attrs().Cols)
	}
	// Core–periphery: the max degree (a bank) must dwarf the average.
	if float64(g.MaxDegree()) < 3*g.AvgDegree() {
		t.Fatalf("no bank hubs: max %d avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestBNRegime(t *testing.T) {
	g := BN(0, 5)
	if g.N() != 1781 {
		t.Fatalf("n = %d, want 1781 (paper scale)", g.N())
	}
	if d := g.AvgDegree(); d < 5 || d > 15 {
		t.Fatalf("avg degree = %.1f, want ≈ 10", d)
	}
	if g.Attrs().Cols != 20 {
		t.Fatalf("attrs = %d, want 20", g.Attrs().Cols)
	}
	// Geometric graphs are strongly clustered; require a healthy
	// triangle presence (far above an ER graph of equal density).
	tri := countTriangles(g)
	if tri < g.N()/2 {
		t.Fatalf("only %d triangles in a geometric graph of %d nodes", tri, g.N())
	}
}

func TestMakeTargetRemovesEdges(t *testing.T) {
	g := Econ(400, 6)
	gt, truth := MakeTarget(g, 0.3, 7)
	if gt.N() != g.N() {
		t.Fatalf("node count changed: %d vs %d", gt.N(), g.N())
	}
	ratio := float64(gt.NumEdges()) / float64(g.NumEdges())
	if ratio < 0.6 || ratio > 0.8 {
		t.Fatalf("kept %.2f of edges, want ≈ 0.7", ratio)
	}
	if truth.NumAnchors() != g.N() {
		t.Fatalf("anchors = %d, want all %d", truth.NumAnchors(), g.N())
	}
	// Every surviving target edge must be the image of a source edge.
	inv := make([]int, g.N())
	for s, tt := range truth {
		inv[tt] = s
	}
	for _, e := range gt.Edges() {
		if !g.HasEdge(inv[e[0]], inv[e[1]]) {
			t.Fatalf("target edge %v has no source pre-image", e)
		}
	}
}

func TestMakeTargetZeroRatioIsIsomorphic(t *testing.T) {
	g := BN(300, 8)
	gt, truth := MakeTarget(g, 0, 9)
	if gt.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d vs %d", gt.NumEdges(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if !gt.HasEdge(truth[e[0]], truth[e[1]]) {
			t.Fatalf("edge %v lost under relabelling", e)
		}
	}
	// Attributes must follow their nodes.
	for s, tt := range truth {
		srcRow := g.Attrs().Row(s)
		tgtRow := gt.Attrs().Row(tt)
		for j := range srcRow {
			if srcRow[j] != tgtRow[j] {
				t.Fatalf("attrs not moved with node %d", s)
			}
		}
	}
}

func TestMakeTargetNoiseAddsEdges(t *testing.T) {
	g := Econ(300, 12)
	gt, truth := MakeTargetNoise(g, 0.2, 0.2, 13)
	if truth.NumAnchors() != g.N() {
		t.Fatalf("anchors = %d", truth.NumAnchors())
	}
	// Roughly 0.8·|E| survivors + 0.2·|E| additions ≈ |E|.
	ratio := float64(gt.NumEdges()) / float64(g.NumEdges())
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("edge ratio %.2f, want ≈ 1.0", ratio)
	}
	// Some target edges must have no source pre-image (added noise).
	inv := make([]int, g.N())
	for s, tt := range truth {
		inv[tt] = s
	}
	spurious := 0
	for _, e := range gt.Edges() {
		if !g.HasEdge(inv[e[0]], inv[e[1]]) {
			spurious++
		}
	}
	if spurious == 0 {
		t.Fatal("no consistency-violating edges were added")
	}
}

func TestMakeTargetNoiseZeroAddEqualsMakeTarget(t *testing.T) {
	g := Econ(200, 14)
	a, truthA := MakeTargetNoise(g, 0.3, 0, 15)
	b, truthB := MakeTarget(g, 0.3, 15)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i := range truthA {
		if truthA[i] != truthB[i] {
			t.Fatal("truth maps differ for identical seeds")
		}
	}
}

func TestMakeTargetNoiseBadRatiosPanics(t *testing.T) {
	g := Econ(100, 16)
	for _, bad := range [][2]float64{{1.0, 0}, {-0.1, 0}, {0.1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ratios %v: expected panic", bad)
				}
			}()
			MakeTargetNoise(g, bad[0], bad[1], 1)
		}()
	}
}

func TestMakeTargetBadRatioPanics(t *testing.T) {
	g := Econ(100, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MakeTarget(g, 1.0, 11)
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Douban(300, 42)
	b := Douban(300, 42)
	if a.Source.NumEdges() != b.Source.NumEdges() || a.Target.NumEdges() != b.Target.NumEdges() {
		t.Fatal("Douban not deterministic")
	}
	for i := range a.Truth {
		if a.Truth[i] != b.Truth[i] {
			t.Fatal("Douban truth not deterministic")
		}
	}
	c := Econ(300, 1)
	d := Econ(300, 1)
	if c.NumEdges() != d.NumEdges() {
		t.Fatal("Econ not deterministic")
	}
}

func TestTable1Rows(t *testing.T) {
	// Full-size Table 1 is exercised by the experiment harness; here we
	// only check row assembly on the default scales via the cheap parts.
	rows := []Stats{
		StatsOf("Econ", Econ(200, 1)),
		StatsOf("BN", BN(200, 2)),
	}
	for _, r := range rows {
		if r.Nodes != 200 || r.Edges <= 0 || r.String() == "" {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestZipfTagsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := zipfTags(50, 10, 2, 4, rng)
	for i := 0; i < 50; i++ {
		var nz int
		for _, v := range x.Row(i) {
			if v != 0 {
				nz++
			}
		}
		if nz < 1 || nz > 4 {
			t.Fatalf("row %d has %d tags, want 1–4", i, nz)
		}
	}
}

func checkTruthValid(t *testing.T, p *Pair) {
	t.Helper()
	if len(p.Truth) != p.Source.N() {
		t.Fatalf("truth length %d for %d source nodes", len(p.Truth), p.Source.N())
	}
	seen := make(map[int]bool)
	for s, tt := range p.Truth {
		if tt < -1 || tt >= p.Target.N() {
			t.Fatalf("truth[%d] = %d outside target range", s, tt)
		}
		if tt >= 0 {
			if seen[tt] {
				t.Fatalf("target node %d anchored twice", tt)
			}
			seen[tt] = true
		}
	}
}

// countTriangles counts each triangle u<v<w exactly once, at its (u,v)
// edge with the constraint w > v.
func countTriangles(g *graph.Graph) int {
	tri := 0
	for _, e := range g.Edges() {
		u, v := int(e[0]), int(e[1])
		for _, w := range g.Neighbors(u) {
			if int(w) > v && g.HasEdge(int(w), v) {
				tri++
			}
		}
	}
	return tri
}
