package datasets

import (
	"math/rand"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
)

// PPI generates a protein–protein interaction style network with the
// duplication–divergence model (Vázquez et al. 2003), the standard
// generative model for interactomes: a new protein duplicates a random
// existing one, inherits each of its interactions with probability
// 1−delta, and gains a link to its parent with probability pParent.
// Protein-network alignment is the founding application of the network
// alignment literature (IsoRank, the GRAAL family), which the paper's
// introduction cites as a motivating domain; this generator backs the
// proteins example and cross-domain tests. Attributes are 16 noisy
// "sequence profile" channels inherited from the parent with mutation.
// n ≤ 0 selects 1000 proteins.
func PPI(n int, seed int64) *graph.Graph {
	if n <= 0 {
		n = 1000
	}
	// delta must stay above the model's densification threshold of 0.5
	// (retention < 0.5) or the edge count grows super-linearly.
	const (
		delta   = 0.62 // divergence: probability of losing an inherited edge
		pParent = 0.3
		attrDim = 16
	)
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int32, n)
	addEdge := func(u, v int) {
		adj[u] = append(adj[u], int32(v))
		adj[v] = append(adj[v], int32(u))
	}
	// Seed graph: a triangle.
	addEdge(0, 1)
	addEdge(1, 2)
	addEdge(0, 2)

	attrs := dense.New(n, attrDim)
	for j := 0; j < attrDim; j++ {
		attrs.Set(0, j, rng.NormFloat64())
		attrs.Set(1, j, rng.NormFloat64())
		attrs.Set(2, j, rng.NormFloat64())
	}

	for v := 3; v < n; v++ {
		parent := rng.Intn(v)
		// Inherit interactions with divergence.
		inherited := false
		for _, w := range adj[parent] {
			if rng.Float64() >= delta {
				addEdge(v, int(w))
				inherited = true
			}
		}
		if rng.Float64() < pParent || !inherited {
			addEdge(v, parent)
		}
		// Sequence profile: parent's with mutations.
		src := attrs.Row(parent)
		dst := attrs.Row(v)
		for j := range dst {
			dst[j] = src[j] + rng.NormFloat64()*0.3
		}
	}

	b := graph.NewBuilder(n)
	for u, nbrs := range adj {
		for _, w := range nbrs {
			if u < int(w) {
				b.AddEdge(u, int(w))
			}
		}
	}
	return b.Build().WithAttrs(attrs)
}
