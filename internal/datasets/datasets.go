// Package datasets synthesises stand-ins for the five network pairs of the
// paper's §V-A. The original datasets are crawled/Kaggle dumps that cannot
// be redistributed, so each generator reproduces the *statistical regime*
// that drives the corresponding experimental result — density, degree
// distribution, clustering, attribute dimensionality, partial ground
// truth, and (for Flickr–Myspace) deliberate consistency violation. The
// mapping from real dataset to generator is documented per function and in
// DESIGN.md.
//
// Every generator takes an explicit size (n ≤ 0 selects a laptop-scaled
// default) and a seed; equal inputs produce identical pairs.
package datasets

import (
	"fmt"
	"math/rand"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/ingest"
	"github.com/htc-align/htc/internal/metrics"
)

// Pair is a ready-to-align dataset: source and target networks plus the
// ground-truth anchor map (source node → target node, −1 when unknown).
type Pair struct {
	Name           string
	Source, Target *graph.Graph
	Truth          metrics.Truth
	// SourceIDs/TargetIDs carry the external-ID dictionaries of an
	// ingested real dataset (nil for the synthetic generators, whose
	// nodes are their indices).
	SourceIDs, TargetIDs *ingest.NodeMap
}

// Stats summarises one network as in the paper's Table I.
type Stats struct {
	Name   string
	Nodes  int
	Edges  int
	Attrs  int
	AvgDeg float64
}

// StatsOf computes the Table I row of a network.
func StatsOf(name string, g *graph.Graph) Stats {
	attrs := 0
	if g.Attrs() != nil {
		attrs = g.Attrs().Cols
	}
	return Stats{Name: name, Nodes: g.N(), Edges: g.NumEdges(), Attrs: attrs, AvgDeg: g.AvgDegree()}
}

// String renders the row.
func (s Stats) String() string {
	return fmt.Sprintf("%-16s edges=%-7d nodes=%-6d attrs=%-4d avgdeg=%.1f",
		s.Name, s.Edges, s.Nodes, s.Attrs, s.AvgDeg)
}

// MakeTarget derives a target network from a source by removing a fraction
// of edges uniformly at random and relabelling the nodes with a hidden
// permutation — the synthetic-dataset construction of §V-A (Econ and BN
// robustness tests). It returns the target and the ground truth.
func MakeTarget(src *graph.Graph, removeRatio float64, seed int64) (*graph.Graph, metrics.Truth) {
	if removeRatio < 0 || removeRatio >= 1 {
		panic(fmt.Sprintf("datasets: removeRatio %v outside [0,1)", removeRatio))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(src.N())
	for _, e := range src.Edges() {
		if rng.Float64() >= removeRatio {
			b.AddEdge(int(e[0]), int(e[1]))
		}
	}
	gt := b.Build()
	if src.Attrs() != nil {
		gt = gt.WithAttrs(src.Attrs().Clone())
	}
	perm := graph.Permutation(src.N(), rng)
	return graph.Relabel(gt, perm), metrics.FromPerm(perm)
}

// MakeTargetNoise generalises MakeTarget with both edge removal and edge
// *addition* noise: a removeRatio fraction of edges is dropped and
// addRatio·|E| spurious random edges are inserted before relabelling.
// Added edges violate topological consistency outright (there is no
// source counterpart), the harsher noise model used by the GAlign paper's
// augmentations and by our Flickr–Myspace simulator.
func MakeTargetNoise(src *graph.Graph, removeRatio, addRatio float64, seed int64) (*graph.Graph, metrics.Truth) {
	if removeRatio < 0 || removeRatio >= 1 || addRatio < 0 {
		panic(fmt.Sprintf("datasets: bad noise ratios remove=%v add=%v", removeRatio, addRatio))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(src.N())
	for _, e := range src.Edges() {
		if rng.Float64() >= removeRatio {
			b.AddEdge(int(e[0]), int(e[1]))
		}
	}
	toAdd := int(addRatio * float64(src.NumEdges()))
	for added := 0; added < toAdd && src.N() >= 2; {
		u, v := rng.Intn(src.N()), rng.Intn(src.N())
		if u != v && b.AddEdge(u, v) {
			added++
		}
	}
	gt := b.Build()
	if src.Attrs() != nil {
		gt = gt.WithAttrs(src.Attrs().Clone())
	}
	perm := graph.Permutation(src.N(), rng)
	return graph.Relabel(gt, perm), metrics.FromPerm(perm)
}

// zipfTags assigns each row a few one-hot tags drawn from a Zipf-skewed
// catalogue, the shape of real profile attributes (few popular interests,
// long tail).
func zipfTags(n, dims, minTags, maxTags int, rng *rand.Rand) *dense.Matrix {
	x := dense.New(n, dims)
	z := rand.NewZipf(rng, 1.4, 2, uint64(dims-1))
	for i := 0; i < n; i++ {
		tags := minTags + rng.Intn(maxTags-minTags+1)
		for t := 0; t < tags; t++ {
			x.Set(i, int(z.Uint64()), 1)
		}
	}
	return x
}

// noisyClone copies an attribute matrix and adds Gaussian noise — the
// imperfection of attribute consistency across two real networks.
func noisyClone(x *dense.Matrix, sigma float64, rng *rand.Rand) *dense.Matrix {
	c := x.Clone()
	if sigma > 0 {
		for i := range c.Data {
			c.Data[i] += rng.NormFloat64() * sigma
		}
	}
	return c
}

// subsetRows extracts the attribute rows of the kept source nodes, in keep
// order (which is the target's pre-permutation node order).
func subsetRows(x *dense.Matrix, keep []int) *dense.Matrix {
	out := dense.New(len(keep), x.Cols)
	for tgtID, srcID := range keep {
		copy(out.Row(tgtID), x.Row(srcID))
	}
	return out
}

// subsetInducedPair builds a partially-aligned pair: the target is the
// induced subgraph of src on `keep` selected nodes, with a further
// edgeDrop fraction of edges removed, then permuted. Nodes outside the
// subset have truth −1.
func subsetInducedPair(name string, src *graph.Graph, keep []int, edgeDrop float64, tgtAttrs *dense.Matrix, rng *rand.Rand) *Pair {
	inSubset := make([]int, src.N()) // src id → target id before permutation, or −1
	for i := range inSubset {
		inSubset[i] = -1
	}
	for tgtID, srcID := range keep {
		inSubset[srcID] = tgtID
	}
	b := graph.NewBuilder(len(keep))
	for _, e := range src.Edges() {
		u, v := inSubset[e[0]], inSubset[e[1]]
		if u >= 0 && v >= 0 && rng.Float64() >= edgeDrop {
			b.AddEdge(u, v)
		}
	}
	gt := b.Build()
	if tgtAttrs != nil {
		gt = gt.WithAttrs(tgtAttrs)
	}
	perm := graph.Permutation(len(keep), rng)
	gt = graph.Relabel(gt, perm)

	truth := make(metrics.Truth, src.N())
	for s := range truth {
		if inSubset[s] >= 0 {
			truth[s] = perm[inSubset[s]]
		} else {
			truth[s] = -1
		}
	}
	return &Pair{Name: name, Source: src, Target: gt, Truth: truth}
}
