package datasets

import (
	"math"
	"math/rand"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
)

// Econ simulates the Victoria-1880 economic network of the paper's
// robustness study: a core–periphery contract network in which a small
// core of banks is densely interconnected and the firm periphery attaches
// to a few banks plus other firms. Matches Table I's regime (n = 1258,
// avg degree ≈ 12, 20 attributes: a 10-sector one-hot plus balance-sheet
// style numeric channels). The robustness experiment derives targets from
// it with MakeTarget. n ≤ 0 selects the paper's 1258 nodes.
func Econ(n int, seed int64) *graph.Graph {
	if n <= 0 {
		n = 1258
	}
	rng := rand.New(rand.NewSource(seed))
	nBanks := n / 30
	if nBanks < 4 {
		nBanks = 4
	}
	b := graph.NewBuilder(n)
	// Dense interbank core.
	for i := 0; i < nBanks; i++ {
		for j := i + 1; j < nBanks; j++ {
			if rng.Float64() < 0.5 {
				b.AddEdge(i, j)
			}
		}
	}
	// Firms: contracts with 1–3 banks, Zipf-biased towards big banks.
	z := rand.NewZipf(rng, 1.2, 2, uint64(nBanks-1))
	for f := nBanks; f < n; f++ {
		banks := 1 + rng.Intn(3)
		for i := 0; i < banks; i++ {
			b.AddEdge(f, int(z.Uint64()))
		}
	}
	// Firm–firm contracts tuned so the total average degree lands ≈ 12.
	nFirms := n - nBanks
	wantFirmEdges := 6*n - b.NumEdges() // avg deg 12 ⇒ ~6n edges total
	p := float64(wantFirmEdges) / (float64(nFirms) * float64(nFirms-1) / 2)
	for i := nBanks; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	g := b.Build()

	attrs := dense.New(n, 20)
	for i := 0; i < n; i++ {
		row := attrs.Row(i)
		sector := rng.Intn(10)
		if i < nBanks {
			sector = 0 // banks share the finance sector
		}
		row[sector] = 1
		for j := 10; j < 20; j++ {
			row[j] = rng.NormFloat64()
		}
	}
	return g.WithAttrs(attrs)
}

// BN simulates the BigBrain voxel-fibre network: nodes are jittered grid
// points in the unit cube, edges connect spatially close voxels with a
// distance-decaying probability. This produces the spatially clustered,
// triangle- and quadrangle-rich topology (avg degree ≈ 10) that makes
// orbit weighting informative on the real BN dataset. Attributes are 20
// channels: an 8-octant one-hot, the 3 coordinates, and 9 noisy intensity
// channels. n ≤ 0 selects the paper's 1781 nodes.
func BN(n int, seed int64) *graph.Graph {
	if n <= 0 {
		n = 1781
	}
	rng := rand.New(rand.NewSource(seed))
	side := int(math.Ceil(math.Cbrt(float64(n))))
	pos := make([][3]float64, n)
	v := 0
	for x := 0; x < side && v < n; x++ {
		for y := 0; y < side && v < n; y++ {
			for z := 0; z < side && v < n; z++ {
				jitter := 0.3 / float64(side)
				pos[v] = [3]float64{
					(float64(x) + 0.5) / float64(side) * (1 + jitter*rng.NormFloat64()),
					(float64(y) + 0.5) / float64(side) * (1 + jitter*rng.NormFloat64()),
					(float64(z) + 0.5) / float64(side) * (1 + jitter*rng.NormFloat64()),
				}
				v++
			}
		}
	}
	// Connection radius for an expected degree of ≈ 10:
	// deg ≈ n·(4/3)πr³·acceptance.
	const accept = 0.7
	r := math.Cbrt(10 * 3 / (4 * math.Pi * float64(n) * accept))
	r2 := r * r
	b := graph.NewBuilder(n)
	// Grid bucketing keeps neighbour search near-linear.
	cells := make(map[[3]int][]int32)
	cellOf := func(p [3]float64) [3]int {
		return [3]int{int(p[0] / r), int(p[1] / r), int(p[2] / r)}
	}
	for i := 0; i < n; i++ {
		cells[cellOf(pos[i])] = append(cells[cellOf(pos[i])], int32(i))
	}
	for i := 0; i < n; i++ {
		c := cellOf(pos[i])
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					for _, j := range cells[[3]int{c[0] + dx, c[1] + dy, c[2] + dz}] {
						if int(j) <= i {
							continue
						}
						d2 := sq(pos[i][0]-pos[j][0]) + sq(pos[i][1]-pos[j][1]) + sq(pos[i][2]-pos[j][2])
						if d2 < r2 && rng.Float64() < accept {
							b.AddEdge(i, int(j))
						}
					}
				}
			}
		}
	}
	g := b.Build()

	attrs := dense.New(n, 20)
	for i := 0; i < n; i++ {
		row := attrs.Row(i)
		oct := 0
		if pos[i][0] > 0.5 {
			oct |= 1
		}
		if pos[i][1] > 0.5 {
			oct |= 2
		}
		if pos[i][2] > 0.5 {
			oct |= 4
		}
		row[oct] = 1
		row[8], row[9], row[10] = pos[i][0], pos[i][1], pos[i][2]
		for j := 11; j < 20; j++ {
			row[j] = rng.NormFloat64() * 0.3
		}
	}
	return g.WithAttrs(attrs)
}

func sq(x float64) float64 { return x * x }

// Table1 generates all eight networks of the paper's Table I at their
// default scales and returns their statistics rows.
func Table1(seed int64) []Stats {
	movie := AllmovieImdb(0, seed)
	douban := Douban(0, seed+1)
	flickr := FlickrMyspace(0, seed+2)
	econ := Econ(0, seed+3)
	bn := BN(0, seed+4)
	return []Stats{
		StatsOf("Allmovie", movie.Source),
		StatsOf("Imdb", movie.Target),
		StatsOf("Douban Online", douban.Source),
		StatsOf("Douban Offline", douban.Target),
		StatsOf("Flickr", flickr.Source),
		StatsOf("Myspace", flickr.Target),
		StatsOf("Econ", econ),
		StatsOf("BN", bn),
	}
}
