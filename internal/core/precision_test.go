package core

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/htc-align/htc/internal/metrics"
)

// TestParsePrecision covers the accepted spellings and the round trip
// through the textual JSON form.
func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
	}{
		{"", PrecisionAuto}, {"auto", PrecisionAuto}, {"AUTO", PrecisionAuto},
		{"f64", PrecisionF64}, {"float64", PrecisionF64}, {"double", PrecisionF64},
		{"f32", PrecisionF32}, {"Float32", PrecisionF32}, {"single", PrecisionF32},
	} {
		got, err := ParsePrecision(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Error("ParsePrecision accepted f16")
	}
	var p Precision
	if err := json.Unmarshal([]byte(`"f32"`), &p); err != nil || p != PrecisionF32 {
		t.Errorf("json round trip: %v, %v", p, err)
	}
	b, err := json.Marshal(PrecisionF64)
	if err != nil || string(b) != `"f64"` {
		t.Errorf("marshal: %s, %v", b, err)
	}
}

// TestResolvePrecision pins the tier choice: explicit settings win, auto
// follows the backend — float64 wherever the dense backend runs, float32
// only past the cell threshold that also selects ANN.
func TestResolvePrecision(t *testing.T) {
	big := 40000 // 40000² > autoAnnCells
	for _, tc := range []struct {
		name   string
		cfg    Config
		ns, nt int
		want   Precision
	}{
		{"auto small pair", Config{}, 100, 100, PrecisionF64},
		{"auto huge pair", Config{}, big, big, PrecisionF32},
		{"auto huge but forced dense", Config{Similarity: SimDense}, big, big, PrecisionF64},
		{"auto topk small", Config{Similarity: SimTopK}, 100, 100, PrecisionF64},
		{"auto ann huge", Config{Similarity: SimANN}, big, big, PrecisionF32},
		{"explicit f64 huge", Config{Precision: PrecisionF64}, big, big, PrecisionF64},
		{"explicit f32 small topk", Config{Similarity: SimTopK, Precision: PrecisionF32}, 100, 100, PrecisionF32},
	} {
		if got := tc.cfg.ResolvePrecision(tc.ns, tc.nt); got != tc.want {
			t.Errorf("%s: ResolvePrecision = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestValidatePrecision pins the admission rules of the precision knob.
func TestValidatePrecision(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		ns, nt  int
		wantErr error
	}{
		{"auto ok", Config{}, 100, 100, nil},
		{"f64 ok everywhere", Config{Precision: PrecisionF64}, 100, 100, nil},
		{"f32 with topk", Config{Similarity: SimTopK, Precision: PrecisionF32}, 100, 100, nil},
		{"f32 with ann", Config{Similarity: SimANN, Precision: PrecisionF32}, 100, 100, nil},
		{"out-of-range value", Config{Precision: Precision(9)}, 100, 100, ErrBadPrecision},
		{"negative value", Config{Precision: Precision(-1)}, 100, 100, ErrBadPrecision},
		{"f32 under forced dense", Config{Similarity: SimDense, Precision: PrecisionF32}, 100, 100, ErrBadPrecision},
		{"f32 under forced dense sizeless", Config{Similarity: SimDense, Precision: PrecisionF32}, 0, 0, ErrBadPrecision},
		{"f32 under auto-resolved dense", Config{Precision: PrecisionF32}, 100, 100, ErrBadPrecision},
		{"auto sizeless tolerates f32", Config{Precision: PrecisionF32}, 0, 0, nil},
	}
	for _, tc := range cases {
		err := tc.cfg.ValidateSimilarity(tc.ns, tc.nt)
		if tc.wantErr == nil && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.wantErr)
		}
	}
}

// TestAlignPrecisionDefaultBitIdentity: leaving the knob unset and
// forcing f64 are the same run, bit for bit — the default path must be
// untouched by the precision tier's existence.
func TestAlignPrecisionDefaultBitIdentity(t *testing.T) {
	gs, gt, _ := noisyPair(40, 0.1, 3)
	cfg := quickConfig(Full)
	cfg.Similarity = SimTopK
	cfg.CandidateK = 10
	unset, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	forced := cfg
	forced.Precision = PrecisionF64
	f64, err := Align(gs, gt, forced)
	if err != nil {
		t.Fatal(err)
	}
	if unset.Precision != "f64" || f64.Precision != "f64" {
		t.Fatalf("reported precisions %q / %q, want f64", unset.Precision, f64.Precision)
	}
	if !reflect.DeepEqual(unset.PerOrbit, f64.PerOrbit) {
		t.Fatal("per-orbit outcomes differ between unset and explicit f64")
	}
	us, fs := unset.Sim.(interface {
		At(int, int) (float64, bool)
	}), f64.Sim
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			a, aok := us.At(i, j)
			b, bok := fs.At(i, j)
			if a != b || aok != bok {
				t.Fatalf("score (%d,%d) differs: %v (ok=%v) vs %v (ok=%v)", i, j, a, aok, b, bok)
			}
		}
	}
}

// TestAlignPrecisionParity is the cross-tier accuracy property: across
// sizes and seeds, the f32 run's Hits@1 and MRR stay within ±0.01 of the
// f64 run on both candidate backends.
func TestAlignPrecisionParity(t *testing.T) {
	for _, n := range []int{40, 80} {
		for seed := int64(1); seed <= 3; seed++ {
			gs, gt, truth := noisyPair(n, 0.05, seed)
			for _, backend := range []SimBackend{SimTopK, SimANN} {
				cfg := quickConfig(Full)
				cfg.Similarity = backend
				cfg.CandidateK = 10
				if backend == SimANN {
					cfg.AnnBits = 4
					cfg.AnnProbes = 1 << 4
				}
				f64Res, err := Align(gs, gt, cfg)
				if err != nil {
					t.Fatal(err)
				}
				f32Cfg := cfg
				f32Cfg.Precision = PrecisionF32
				f32Res, err := Align(gs, gt, f32Cfg)
				if err != nil {
					t.Fatal(err)
				}
				if f64Res.Precision != "f64" || f32Res.Precision != "f32" {
					t.Fatalf("reported precisions %q / %q", f64Res.Precision, f32Res.Precision)
				}
				a := metrics.EvaluateSim(f64Res.Sim, truth, 1)
				b := metrics.EvaluateSim(f32Res.Sim, truth, 1)
				if d := math.Abs(a.PrecisionAt[1] - b.PrecisionAt[1]); d > 0.01 {
					t.Errorf("n=%d seed=%d %v: Hits@1 gap %.4f > 0.01 (f64 %.4f, f32 %.4f)",
						n, seed, backend, d, a.PrecisionAt[1], b.PrecisionAt[1])
				}
				if d := math.Abs(a.MRR - b.MRR); d > 0.01 {
					t.Errorf("n=%d seed=%d %v: MRR gap %.4f > 0.01 (f64 %.4f, f32 %.4f)",
						n, seed, backend, d, a.MRR, b.MRR)
				}
			}
		}
	}
}

// TestAlignRejectsF32Dense: the contradiction surfaces from Align itself.
func TestAlignRejectsF32Dense(t *testing.T) {
	gs, gt, _ := noisyPair(12, 0, 1)
	cfg := quickConfig(LowOrder)
	cfg.Similarity = SimDense
	cfg.Precision = PrecisionF32
	if _, err := Align(gs, gt, cfg); !errors.Is(err, ErrBadPrecision) {
		t.Fatalf("dense+f32: err = %v, want ErrBadPrecision", err)
	}
	// Auto backend on a small pair resolves dense, so f32 is equally
	// contradictory once the sizes are known.
	cfg = quickConfig(LowOrder)
	cfg.Precision = PrecisionF32
	if _, err := Align(gs, gt, cfg); !errors.Is(err, ErrBadPrecision) {
		t.Fatalf("auto-dense+f32: err = %v, want ErrBadPrecision", err)
	}
}

// TestStageTimingsBytes: the per-stage allocation deltas are recorded and
// surface in the timings line.
func TestStageTimingsBytes(t *testing.T) {
	gs, gt, _ := noisyPair(30, 0.1, 2)
	res, err := Align(gs, gt, quickConfig(Full))
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timings
	if tm.TotalBytes == 0 {
		t.Fatal("TotalBytes not recorded")
	}
	if tm.TrainingBytes == 0 || tm.FineTuningBytes == 0 {
		t.Fatalf("stage bytes missing: train=%d finetune=%d", tm.TrainingBytes, tm.FineTuningBytes)
	}
	sum := tm.OrbitCountingBytes + tm.LaplaciansBytes + tm.TrainingBytes +
		tm.FineTuningBytes + tm.IntegrationBytes
	if sum > tm.TotalBytes {
		t.Fatalf("stage bytes %d exceed total %d", sum, tm.TotalBytes)
	}
	s := tm.String()
	for _, sub := range []string{"alloc[", "train=", "total="} {
		if !strings.Contains(s, sub) {
			t.Fatalf("timings string missing %q: %q", sub, s)
		}
	}
}
