// Package core orchestrates the full HTC pipeline (paper Fig. 3): graphlet
// orbit matrix construction → multi-orbit-aware training of a shared GCN
// autoencoder → trusted-pair based fine-tuning per orbit → posterior
// importance integration into the final alignment matrix. The ablation
// variants of Table III (HTC-L/H/LT/DT) are configurations of the same
// pipeline.
package core

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/htc-align/htc/internal/ann"
	"github.com/htc-align/htc/internal/orbit"
)

// Variant selects which ablation of the pipeline runs.
type Variant int

// The pipeline variants of the paper's Table III.
const (
	// Full is HTC(-HT): all orbits, trusted-pair fine-tuning.
	Full Variant = iota
	// LowOrder is HTC-L: orbit 0 only, no fine-tuning.
	LowOrder
	// HighOrder is HTC-H: all orbits, no fine-tuning.
	HighOrder
	// LowOrderFT is HTC-LT: orbit 0 only, with fine-tuning.
	LowOrderFT
	// DiffusionFT is HTC-DT: diffusion matrices replace GOMs, with
	// fine-tuning.
	DiffusionFT
)

// String names the variant as in the paper.
func (v Variant) String() string {
	switch v {
	case Full:
		return "HTC"
	case LowOrder:
		return "HTC-L"
	case HighOrder:
		return "HTC-H"
	case LowOrderFT:
		return "HTC-LT"
	case DiffusionFT:
		return "HTC-DT"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

func (v Variant) usesOrbits() bool   { return v == Full || v == HighOrder }
func (v Variant) usesFineTune() bool { return v == Full || v == LowOrderFT || v == DiffusionFT }

// Variants lists every pipeline variant in definition order.
func Variants() []Variant { return []Variant{Full, LowOrder, HighOrder, LowOrderFT, DiffusionFT} }

// ParseVariant resolves a paper name ("HTC", "HTC-L", "HTC-H", "HTC-LT",
// "HTC-DT", case-insensitive, the "HTC-" prefix optional for the
// ablations) into a Variant.
func ParseVariant(s string) (Variant, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "", "HTC", "FULL":
		return Full, nil
	case "HTC-L", "L":
		return LowOrder, nil
	case "HTC-H", "H":
		return HighOrder, nil
	case "HTC-LT", "LT":
		return LowOrderFT, nil
	case "HTC-DT", "DT":
		return DiffusionFT, nil
	}
	return Full, fmt.Errorf("core: unknown variant %q (want HTC, HTC-L, HTC-H, HTC-LT or HTC-DT)", s)
}

// MarshalText encodes the variant as its paper name, so JSON configs say
// "HTC-DT" rather than an opaque enum number.
func (v Variant) MarshalText() ([]byte, error) {
	switch v {
	case Full, LowOrder, HighOrder, LowOrderFT, DiffusionFT:
		return []byte(v.String()), nil
	}
	return nil, fmt.Errorf("core: cannot marshal unknown variant %d", int(v))
}

// UnmarshalText decodes a paper name via ParseVariant.
func (v *Variant) UnmarshalText(text []byte) error {
	parsed, err := ParseVariant(string(text))
	if err != nil {
		return err
	}
	*v = parsed
	return nil
}

// SimBackend selects how the pipeline represents similarity/alignment
// scores: the full dense ns×nt matrix, the blocked top-k candidate
// structure (O(n·k) memory), the LSH-accelerated approximate candidate
// generator, or an automatic choice by pair size.
type SimBackend int

// The similarity backends.
const (
	// SimAuto picks the backend from the pair size: dense while the
	// score matrices stay comfortably in memory, top-k beyond (see
	// autoDenseCells), and the approximate ANN generator once even the
	// exact blocked scan turns quadratic-infeasible (autoAnnCells).
	SimAuto SimBackend = iota
	// SimDense always materialises full ns×nt score matrices — exact,
	// and the right choice for small pairs.
	SimDense
	// SimTopK restricts every similarity stage to each node's top
	// CandidateK counterparts. Memory drops from O(n²) to O(n·k); with
	// k ≥ max(ns, nt) it is bit-identical to dense.
	SimTopK
	// SimANN keeps the top-k representation but generates the candidate
	// lists through a signed-random-projection LSH index instead of the
	// exact blocked scan: compute drops from O(ns·nt) score cells to
	// hashing plus an exact re-rank of each node's probed pool. Recall
	// against the exact lists is tunable via AnnBits/AnnProbes, and with
	// AnnProbes ≥ 2^AnnBits the run is bit-identical to SimTopK.
	SimANN
)

// String names the backend as it appears in configs and results.
func (s SimBackend) String() string {
	switch s {
	case SimAuto:
		return "auto"
	case SimDense:
		return "dense"
	case SimTopK:
		return "topk"
	case SimANN:
		return "ann"
	}
	return fmt.Sprintf("SimBackend(%d)", int(s))
}

// ParseSimBackend resolves a backend name ("auto", "dense", "topk",
// "ann", case-insensitive, empty = auto).
func ParseSimBackend(s string) (SimBackend, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return SimAuto, nil
	case "dense", "full":
		return SimDense, nil
	case "topk", "top-k", "sparse":
		return SimTopK, nil
	case "ann", "lsh":
		return SimANN, nil
	}
	return SimAuto, fmt.Errorf("core: unknown similarity backend %q (want auto, dense, topk or ann)", s)
}

// SimBackends lists every similarity backend in definition order — the
// roster the server's capabilities endpoint advertises.
func SimBackends() []SimBackend { return []SimBackend{SimAuto, SimDense, SimTopK, SimANN} }

// MarshalText encodes the backend by name, so JSON configs say "topk"
// rather than an opaque enum number.
func (s SimBackend) MarshalText() ([]byte, error) {
	switch s {
	case SimAuto, SimDense, SimTopK, SimANN:
		return []byte(s.String()), nil
	}
	return nil, fmt.Errorf("core: cannot marshal unknown similarity backend %d", int(s))
}

// UnmarshalText decodes a backend name via ParseSimBackend.
func (s *SimBackend) UnmarshalText(text []byte) error {
	parsed, err := ParseSimBackend(string(text))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// Precision selects the numeric width of the post-training compute
// tier. Stage-3 training is always float64 — the Adam updates and their
// bit-identity guarantees are untouched — but the fine-tuning stages
// (similarity projection, candidate generation, ANN hashing and
// re-rank) are memory-bandwidth-bound and can run on float32 values
// with float64 accumulators, halving their traffic and footprint.
type Precision int

// The precision tiers.
const (
	// PrecisionAuto picks the tier from the pair size: float64 while the
	// pair is small enough that bandwidth isn't the bottleneck, float32
	// past the same cell threshold that switches SimAuto to the ANN
	// backend (autoAnnCells). The dense backend always resolves to
	// float64 — it has no reduced-precision tier.
	PrecisionAuto Precision = iota
	// PrecisionF64 forces full float64 throughout — bit-identical to the
	// pipeline before the precision tier existed.
	PrecisionF64
	// PrecisionF32 forces the float32 tier for the top-k and ANN
	// candidate backends. Scores keep float64 accumulators, so rankings
	// are stable; Hits@1 moves by well under the run-to-run seed noise
	// (property-tested at ±0.01 against f64).
	PrecisionF32
)

// String names the tier as it appears in configs and results.
func (p Precision) String() string {
	switch p {
	case PrecisionAuto:
		return "auto"
	case PrecisionF64:
		return "f64"
	case PrecisionF32:
		return "f32"
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

// ParsePrecision resolves a tier name ("auto", "f64", "f32",
// case-insensitive, empty = auto).
func ParsePrecision(s string) (Precision, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return PrecisionAuto, nil
	case "f64", "float64", "double":
		return PrecisionF64, nil
	case "f32", "float32", "single":
		return PrecisionF32, nil
	}
	return PrecisionAuto, fmt.Errorf("core: unknown precision %q (want auto, f64 or f32)", s)
}

// Precisions lists every precision tier in definition order — the roster
// the server's capabilities endpoint advertises.
func Precisions() []Precision { return []Precision{PrecisionAuto, PrecisionF64, PrecisionF32} }

// MarshalText encodes the tier by name, so JSON configs say "f32" rather
// than an opaque enum number.
func (p Precision) MarshalText() ([]byte, error) {
	switch p {
	case PrecisionAuto, PrecisionF64, PrecisionF32:
		return []byte(p.String()), nil
	}
	return nil, fmt.Errorf("core: cannot marshal unknown precision %d", int(p))
}

// UnmarshalText decodes a tier name via ParsePrecision.
func (p *Precision) UnmarshalText(text []byte) error {
	parsed, err := ParsePrecision(string(text))
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// Config holds the pipeline hyperparameters. The zero value is completed
// by withDefaults to the paper's settings (§V-A), except that the default
// embedding width is scaled to laptop-sized graphs.
//
// Config (de)serialises with encoding/json — the variant travels as its
// paper name ("HTC-DT"), omitted fields select the defaults — so an HTTP
// request body or a config file can carry a full pipeline configuration.
type Config struct {
	// Variant selects the ablation (default Full).
	Variant Variant `json:"variant,omitempty"`
	// K is the number of orbits (default and maximum 13; ignored by
	// LowOrder* variants, reused as diffusion order count by
	// DiffusionFT).
	K int `json:"k,omitempty"`
	// Hidden and Embed are the GCN widths: dims = [d, Hidden, Embed].
	// Defaults 128 and 64.
	Hidden int `json:"hidden,omitempty"`
	Embed  int `json:"embed,omitempty"`
	// Layers is the number of GCN layers, 2 or 3 (default 2, the paper's
	// best setting).
	Layers int `json:"layers,omitempty"`
	// Epochs is the number of training epochs (default 60).
	Epochs int `json:"epochs,omitempty"`
	// Patience, when positive, stops training early once the loss stops
	// improving for that many epochs (0 = train the full budget, as in
	// the paper).
	Patience int `json:"patience,omitempty"`
	// LR is the Adam learning rate (default 0.01, as in the paper).
	LR float64 `json:"lr,omitempty"`
	// M is the LISI neighbourhood size (default 20).
	M int `json:"m,omitempty"`
	// Beta is the trusted-pair reinforcement rate (default 1.1).
	Beta float64 `json:"beta,omitempty"`
	// Binary switches the GOMs to their weaker binary form.
	Binary bool `json:"binary,omitempty"`
	// MaxFineTuneIters caps Algorithm 2's loop (default 30).
	MaxFineTuneIters int `json:"max_fine_tune_iters,omitempty"`
	// DiffusionAlpha is the PPR teleport probability of HTC-DT
	// (default 0.15, the paper's best).
	DiffusionAlpha float64 `json:"diffusion_alpha,omitempty"`
	// Similarity selects the similarity representation: SimAuto (the
	// default) uses dense matrices up to autoDenseCells score cells and
	// the top-k candidate backend beyond; SimDense and SimTopK force a
	// backend. The top-k backend bounds similarity memory at O(n·k)
	// instead of O(n²), at the cost of restricting matching, trusted
	// pairs and evaluation to each node's candidate list (exact when
	// CandidateK ≥ max(ns, nt)).
	Similarity SimBackend `json:"similarity,omitempty"`
	// CandidateK is the per-node candidate count of the top-k and ANN
	// backends (0 = automatic: max(32, 2·M), clamped to the pair size).
	// It must not be negative, and setting it alongside a resolved dense
	// backend is rejected rather than silently ignored (ErrIgnoredSimKnob).
	CandidateK int `json:"candidate_k,omitempty"`
	// AnnBits is the LSH code width of the ANN backend: 2^AnnBits hash
	// buckets (0 = automatic, sized from the pair: see ann.AutoBits; max
	// ann.MaxBits). Only meaningful when the run resolves to SimANN —
	// setting it under another backend is rejected (ErrIgnoredSimKnob).
	AnnBits int `json:"ann_bits,omitempty"`
	// AnnProbes is the number of hash buckets the ANN backend scans per
	// query, in the margin-ordered multi-probe sequence (0 = automatic:
	// see ann.AutoProbes). AnnProbes ≥ 2^AnnBits is the exactness escape
	// hatch: every bucket is scanned and the run is bit-identical to
	// SimTopK. Like AnnBits, it is rejected under other backends.
	AnnProbes int `json:"ann_probes,omitempty"`
	// AnnPoolCap, when positive, bounds the candidate pool the ANN
	// backend re-ranks per query: the probe sequence stops once that many
	// rows are gathered (never below CandidateK). It hard-caps per-query
	// latency on skewed inputs at a measurable recall cost; 0 (the
	// default) leaves the pool bounded only by the probe budget. Like the
	// other ann_* knobs it is rejected under other backends.
	AnnPoolCap int `json:"ann_pool_cap,omitempty"`
	// Precision selects the numeric width of the fine-tuning stages:
	// PrecisionAuto (the default) stays float64 until the pair passes the
	// ANN cell threshold, PrecisionF64 forces the full-width path
	// (bit-identical to leaving the knob unset on small pairs), and
	// PrecisionF32 runs candidate generation on the float32 tier —
	// top-k and ANN backends only; a resolved dense backend rejects it
	// (ErrBadPrecision) rather than silently ignoring it.
	Precision Precision `json:"precision,omitempty"`
	// RefineIters runs that many RefiNA iterations over the integrated
	// similarity as pipeline stage 6 (see internal/refine): each
	// iteration boosts pairs whose matched neighbors agree, injects a
	// bounded token-match mass, and renormalises rows then columns. The
	// default 0 skips the stage entirely — bit-identical to the pipeline
	// before refinement existed. Negative values are rejected
	// (ErrBadRefineParam).
	RefineIters int `json:"refine_iters,omitempty"`
	// RefineTokenK bounds the refinement token-match budget: per source
	// row, only the RefineTokenK strongest neighbor-supported columns
	// can enter the candidate support each iteration. 0 (the default)
	// resolves to the row budget — every column on the dense backend,
	// the candidate count on the top-k/ANN backends. Setting it without
	// RefineIters is rejected rather than silently ignored
	// (ErrBadRefineParam), as is a negative value.
	RefineTokenK int `json:"refine_token_k,omitempty"`
	// Seed drives every random choice (weight init); equal seeds give
	// bit-identical runs.
	//lint:allow knobcover every int64 is a valid seed, so there is nothing to default or reject
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds the CPU fan-out of the whole pipeline: orbit
	// counting, the per-epoch training passes, the per-orbit fine-tuning
	// loops and the dense kernels underneath all share this one budget.
	// 0 (the default) means GOMAXPROCS; the server lowers it per job so
	// concurrent alignments don't oversubscribe the machine. Workers is a
	// pure performance knob — results are bit-identical for every value —
	// so it does not participate in result caching.
	Workers int `json:"workers,omitempty"`
	// KeepEmbeddings retains the per-orbit embeddings of each orbit's
	// best fine-tuning iteration in the Result (memory-heavy; used by
	// the Fig. 11 visualisation).
	KeepEmbeddings bool `json:"keep_embeddings,omitempty"`
	// Progress, when non-nil, observes the run: stage boundaries, every
	// training epoch, every fine-tuning iteration. Calls are serialised
	// (the observer never races with itself) and carry no allocation, so
	// a server can mirror them into a job-status endpoint. Progress is a
	// pure observation channel — it never influences the result — so,
	// like Workers, it is excluded from JSON serialisation and result
	// caching.
	//lint:allow knobcover progress observers never influence the result, so cache identity may ignore them
	Progress Observer `json:"-"`
	// Seeds are known anchor links (source, target). HTC is fully
	// unsupervised, but Proposition 2 treats "trusted (or known)" anchor
	// nodes uniformly: when seeds are supplied they are reinforced
	// before the first fine-tuning iteration, giving the semi-supervised
	// HTC-S mode. Variants without fine-tuning ignore them.
	Seeds [][2]int `json:"anchor_seeds,omitempty"`
}

// WithDefaults returns the config with every unset field replaced by the
// paper's default, i.e. the exact configuration Align will run. Callers
// that key caches or logs on a Config should normalise through
// WithDefaults first so that equivalent configs compare equal.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.K <= 0 || c.K > orbit.NumOrbits {
		c.K = orbit.NumOrbits
	}
	if c.Hidden <= 0 {
		c.Hidden = 128
	}
	if c.Embed <= 0 {
		c.Embed = 64
	}
	if c.Layers != 3 {
		c.Layers = 2
	}
	if c.Epochs <= 0 {
		c.Epochs = 60
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	if c.M <= 0 {
		c.M = 20
	}
	if c.Beta <= 1 {
		c.Beta = 1.1
	}
	if c.MaxFineTuneIters <= 0 {
		c.MaxFineTuneIters = 30
	}
	if c.Patience < 0 {
		// Negative patience trains the full budget exactly like 0
		// (nn.Train only engages early stopping when positive);
		// normalising here makes the two spellings share one cache
		// identity.
		c.Patience = 0
	}
	if c.DiffusionAlpha <= 0 || c.DiffusionAlpha >= 1 {
		c.DiffusionAlpha = 0.15
	}
	if c.Workers < 0 {
		c.Workers = 0
	}
	return c
}

// autoDenseCells is the SimAuto crossover: pairs whose score matrices
// would exceed this many cells (≈ 134 MB per ns×nt float64 buffer, and
// the fine-tuning loop holds several) switch to the top-k backend. At
// 4096×4096 a dense run is still comfortable on a laptop; well beyond it
// the dense working set grows quadratically while top-k stays O(n·k).
const autoDenseCells = 1 << 24

// autoAnnCells is the second SimAuto crossover: past this many score
// cells (≈ 32k×32k) even the exact blocked top-k scan — O(ns·nt)
// compute, if not memory — dominates the run, so SimAuto switches to the
// ANN candidate generator. The auto probe budget keeps measured recall
// against the exact lists ≥ 0.95 (see internal/ann).
const autoAnnCells = 1 << 30

// ResolveSimilarity resolves the configured backend against a concrete
// pair size: SimAuto picks dense, top-k or ann by cell count, and the
// candidate count of the non-dense backends defaults to max(32, 2·M)
// clamped to the larger side. The returned backend is never SimAuto; k
// is 0 for the dense backend.
func (c Config) ResolveSimilarity(ns, nt int) (backend SimBackend, k int) {
	c = c.withDefaults()
	backend = c.Similarity
	if backend == SimAuto {
		switch cells := int64(ns) * int64(nt); {
		case cells > autoAnnCells:
			backend = SimANN
		case cells > autoDenseCells:
			backend = SimTopK
		default:
			backend = SimDense
		}
	}
	if backend != SimTopK && backend != SimANN {
		return SimDense, 0
	}
	k = c.CandidateK
	if k <= 0 {
		k = 2 * c.M
		if k < 32 {
			k = 32
		}
	}
	max := ns
	if nt > max {
		max = nt
	}
	if k > max {
		k = max
	}
	if k < 1 {
		k = 1
	}
	return backend, k
}

// ResolveAnn resolves the ANN index parameters against a concrete pair
// size: zero AnnBits sizes the code width from the larger side
// (ann.AutoBits — both directions of the fine-tuning loop index one of
// the two sides), zero AnnProbes picks the recall-calibrated default
// (ann.AutoProbes). Meaningful only when ResolveSimilarity returns
// SimANN.
func (c Config) ResolveAnn(ns, nt int) (bits, probes int) {
	bits = c.AnnBits
	if bits <= 0 {
		max := ns
		if nt > max {
			max = nt
		}
		bits = ann.AutoBits(max)
	}
	probes = c.AnnProbes
	if probes <= 0 {
		probes = ann.AutoProbes(bits)
	}
	return bits, probes
}

// ResolvePrecision resolves the configured precision tier against a
// concrete pair size. PrecisionAuto flips to float32 past the same cell
// threshold that flips SimAuto to the ANN backend — the sizes where the
// fine-tuning stages are bandwidth-bound — except under a resolved dense
// backend, which has no float32 tier and always runs float64. The
// returned tier is never PrecisionAuto.
func (c Config) ResolvePrecision(ns, nt int) Precision {
	if c.Precision != PrecisionAuto {
		return c.Precision
	}
	if backend, _ := c.ResolveSimilarity(ns, nt); backend == SimDense {
		return PrecisionF64
	}
	if int64(ns)*int64(nt) > autoAnnCells {
		return PrecisionF32
	}
	return PrecisionF64
}

// ValidateSimilarity checks the similarity knobs for contradictions —
// out-of-range values, and knobs that the resolved backend would
// silently ignore (a config bug better rejected than swallowed). With a
// concrete pair size the check runs against the backend the run would
// actually resolve to; with ns = nt = 0 (no pair at hand yet) only
// size-independent contradictions are reported, so a sizeless check
// never rejects a config a later sized check would accept.
func (c Config) ValidateSimilarity(ns, nt int) error {
	if c.CandidateK < 0 {
		return fmt.Errorf("%w: candidate_k = %d", ErrBadCandidateK, c.CandidateK)
	}
	if c.AnnBits < 0 || c.AnnBits > ann.MaxBits {
		return fmt.Errorf("%w: ann_bits = %d (want 0 for automatic, or 1..%d)", ErrBadAnnParam, c.AnnBits, ann.MaxBits)
	}
	if c.AnnProbes < 0 {
		return fmt.Errorf("%w: ann_probes = %d (want 0 for automatic, or ≥ 1)", ErrBadAnnParam, c.AnnProbes)
	}
	if c.AnnPoolCap < 0 {
		return fmt.Errorf("%w: ann_pool_cap = %d (want 0 for unbounded, or ≥ 1)", ErrBadAnnParam, c.AnnPoolCap)
	}
	if c.Precision < PrecisionAuto || c.Precision > PrecisionF32 {
		return fmt.Errorf("%w: precision = %d (want auto, f64 or f32)", ErrBadPrecision, int(c.Precision))
	}
	if c.RefineIters < 0 {
		return fmt.Errorf("%w: refine_iters = %d (want 0 for no refinement, or ≥ 1)", ErrBadRefineParam, c.RefineIters)
	}
	if c.RefineTokenK < 0 {
		return fmt.Errorf("%w: refine_token_k = %d (want 0 for the automatic budget, or ≥ 1)", ErrBadRefineParam, c.RefineTokenK)
	}
	if c.RefineTokenK > 0 && c.RefineIters == 0 {
		return fmt.Errorf("%w: refine_token_k = %d but refine_iters = 0 runs no refinement", ErrBadRefineParam, c.RefineTokenK)
	}
	backend := c.Similarity
	if backend == SimAuto {
		if ns == 0 && nt == 0 {
			// No pair size: auto could legitimately resolve to any
			// backend, so no ignored-knob conclusion can be drawn.
			return nil
		}
		backend, _ = c.ResolveSimilarity(ns, nt)
	}
	if backend == SimDense && c.CandidateK > 0 {
		return fmt.Errorf("%w: candidate_k = %d but the %s backend scores every pair", ErrIgnoredSimKnob, c.CandidateK, backend)
	}
	if backend != SimANN && (c.AnnBits > 0 || c.AnnProbes > 0 || c.AnnPoolCap > 0) {
		return fmt.Errorf("%w: ann_bits/ann_probes/ann_pool_cap set but the resolved backend is %s, not ann", ErrIgnoredSimKnob, backend)
	}
	if backend == SimDense && c.Precision == PrecisionF32 {
		return fmt.Errorf("%w: precision = f32 but the %s backend has no float32 tier (use topk or ann, or leave precision auto)", ErrBadPrecision, backend)
	}
	return nil
}

// StageTimings decomposes a run's wall-clock time into the stages of the
// paper's Fig. 8, alongside each stage's allocation traffic: the *Bytes
// fields are deltas of runtime.MemStats.TotalAlloc taken at the same
// boundaries as the durations. TotalAlloc is process-global and
// monotonic, so a delta counts every byte allocated while the stage ran
// — including concurrent stages of other jobs on a busy server — which
// makes the numbers an observability signal, not an exact attribution.
// On an otherwise-idle run (the CLIs, the benchmarks) they are the
// stage's own allocations.
type StageTimings struct {
	OrbitCounting time.Duration
	Laplacians    time.Duration
	Training      time.Duration
	FineTuning    time.Duration
	Integration   time.Duration
	Refinement    time.Duration
	Total         time.Duration

	OrbitCountingBytes uint64
	LaplaciansBytes    uint64
	TrainingBytes      uint64
	FineTuningBytes    uint64
	IntegrationBytes   uint64
	RefinementBytes    uint64
	TotalBytes         uint64
}

// Other returns the residual time not attributed to a named stage
// (feature preparation and bookkeeping).
func (s StageTimings) Other() time.Duration {
	o := s.Total - s.OrbitCounting - s.Laplacians - s.Training - s.FineTuning - s.Integration - s.Refinement
	if o < 0 {
		return 0
	}
	return o
}

// OtherBytes returns the allocation residual not attributed to a named
// stage.
func (s StageTimings) OtherBytes() uint64 {
	named := s.OrbitCountingBytes + s.LaplaciansBytes + s.TrainingBytes + s.FineTuningBytes + s.IntegrationBytes + s.RefinementBytes
	if named > s.TotalBytes {
		return 0
	}
	return s.TotalBytes - named
}

// String renders the decomposition in milliseconds plus the per-stage
// allocation deltas — the line the htc-align CLI prints after a run.
// The refinement column appears only when the stage ran, keeping the
// common no-refinement line unchanged.
func (s StageTimings) String() string {
	refine := ""
	refineAlloc := ""
	if s.Refinement > 0 || s.RefinementBytes > 0 {
		refine = fmt.Sprintf(" refine=%v", s.Refinement.Round(time.Millisecond))
		refineAlloc = fmt.Sprintf(" refine=%s", fmtBytes(s.RefinementBytes))
	}
	return fmt.Sprintf("orbit=%v laplacian=%v train=%v finetune=%v integrate=%v%s other=%v total=%v"+
		" alloc[orbit=%s laplacian=%s train=%s finetune=%s integrate=%s%s other=%s total=%s]",
		s.OrbitCounting.Round(time.Millisecond), s.Laplacians.Round(time.Millisecond),
		s.Training.Round(time.Millisecond), s.FineTuning.Round(time.Millisecond),
		s.Integration.Round(time.Millisecond), refine, s.Other().Round(time.Millisecond),
		s.Total.Round(time.Millisecond),
		fmtBytes(s.OrbitCountingBytes), fmtBytes(s.LaplaciansBytes),
		fmtBytes(s.TrainingBytes), fmtBytes(s.FineTuningBytes),
		fmtBytes(s.IntegrationBytes), refineAlloc, fmtBytes(s.OtherBytes()), fmtBytes(s.TotalBytes))
}

// allocBytes reads the process's cumulative allocation counter — the
// probe behind the per-stage *Bytes deltas. ReadMemStats costs a short
// stop-the-world; it runs a handful of times per align, at stage
// boundaries only.
func allocBytes() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// fmtBytes renders a byte count with one decimal in the largest binary
// unit that keeps the mantissa below 1024.
func fmtBytes(b uint64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%dB", b)
	}
	div, exp := uint64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%cB", float64(b)/float64(div), "KMGTPE"[exp])
}
