// Package core orchestrates the full HTC pipeline (paper Fig. 3): graphlet
// orbit matrix construction → multi-orbit-aware training of a shared GCN
// autoencoder → trusted-pair based fine-tuning per orbit → posterior
// importance integration into the final alignment matrix. The ablation
// variants of Table III (HTC-L/H/LT/DT) are configurations of the same
// pipeline.
package core

import (
	"fmt"
	"time"

	"github.com/htc-align/htc/internal/orbit"
)

// Variant selects which ablation of the pipeline runs.
type Variant int

// The pipeline variants of the paper's Table III.
const (
	// Full is HTC(-HT): all orbits, trusted-pair fine-tuning.
	Full Variant = iota
	// LowOrder is HTC-L: orbit 0 only, no fine-tuning.
	LowOrder
	// HighOrder is HTC-H: all orbits, no fine-tuning.
	HighOrder
	// LowOrderFT is HTC-LT: orbit 0 only, with fine-tuning.
	LowOrderFT
	// DiffusionFT is HTC-DT: diffusion matrices replace GOMs, with
	// fine-tuning.
	DiffusionFT
)

// String names the variant as in the paper.
func (v Variant) String() string {
	switch v {
	case Full:
		return "HTC"
	case LowOrder:
		return "HTC-L"
	case HighOrder:
		return "HTC-H"
	case LowOrderFT:
		return "HTC-LT"
	case DiffusionFT:
		return "HTC-DT"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

func (v Variant) usesOrbits() bool   { return v == Full || v == HighOrder }
func (v Variant) usesFineTune() bool { return v == Full || v == LowOrderFT || v == DiffusionFT }

// Config holds the pipeline hyperparameters. The zero value is completed
// by withDefaults to the paper's settings (§V-A), except that the default
// embedding width is scaled to laptop-sized graphs.
type Config struct {
	// Variant selects the ablation (default Full).
	Variant Variant
	// K is the number of orbits (default and maximum 13; ignored by
	// LowOrder* variants, reused as diffusion order count by
	// DiffusionFT).
	K int
	// Hidden and Embed are the GCN widths: dims = [d, Hidden, Embed].
	// Defaults 128 and 64.
	Hidden, Embed int
	// Layers is the number of GCN layers, 2 or 3 (default 2, the paper's
	// best setting).
	Layers int
	// Epochs is the number of training epochs (default 60).
	Epochs int
	// Patience, when positive, stops training early once the loss stops
	// improving for that many epochs (0 = train the full budget, as in
	// the paper).
	Patience int
	// LR is the Adam learning rate (default 0.01, as in the paper).
	LR float64
	// M is the LISI neighbourhood size (default 20).
	M int
	// Beta is the trusted-pair reinforcement rate (default 1.1).
	Beta float64
	// Binary switches the GOMs to their weaker binary form.
	Binary bool
	// MaxFineTuneIters caps Algorithm 2's loop (default 30).
	MaxFineTuneIters int
	// DiffusionAlpha is the PPR teleport probability of HTC-DT
	// (default 0.15, the paper's best).
	DiffusionAlpha float64
	// Seed drives every random choice (weight init); equal seeds give
	// bit-identical runs.
	Seed int64
	// KeepEmbeddings retains the per-orbit embeddings of each orbit's
	// best fine-tuning iteration in the Result (memory-heavy; used by
	// the Fig. 11 visualisation).
	KeepEmbeddings bool
	// Seeds are known anchor links (source, target). HTC is fully
	// unsupervised, but Proposition 2 treats "trusted (or known)" anchor
	// nodes uniformly: when seeds are supplied they are reinforced
	// before the first fine-tuning iteration, giving the semi-supervised
	// HTC-S mode. Variants without fine-tuning ignore them.
	Seeds [][2]int
}

func (c Config) withDefaults() Config {
	if c.K <= 0 || c.K > orbit.NumOrbits {
		c.K = orbit.NumOrbits
	}
	if c.Hidden <= 0 {
		c.Hidden = 128
	}
	if c.Embed <= 0 {
		c.Embed = 64
	}
	if c.Layers != 3 {
		c.Layers = 2
	}
	if c.Epochs <= 0 {
		c.Epochs = 60
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	if c.M <= 0 {
		c.M = 20
	}
	if c.Beta <= 1 {
		c.Beta = 1.1
	}
	if c.MaxFineTuneIters <= 0 {
		c.MaxFineTuneIters = 30
	}
	if c.DiffusionAlpha <= 0 || c.DiffusionAlpha >= 1 {
		c.DiffusionAlpha = 0.15
	}
	return c
}

// StageTimings decomposes a run's wall-clock time into the stages of the
// paper's Fig. 8.
type StageTimings struct {
	OrbitCounting time.Duration
	Laplacians    time.Duration
	Training      time.Duration
	FineTuning    time.Duration
	Integration   time.Duration
	Total         time.Duration
}

// Other returns the residual time not attributed to a named stage
// (feature preparation and bookkeeping).
func (s StageTimings) Other() time.Duration {
	o := s.Total - s.OrbitCounting - s.Laplacians - s.Training - s.FineTuning - s.Integration
	if o < 0 {
		return 0
	}
	return o
}

// String renders the decomposition in milliseconds.
func (s StageTimings) String() string {
	return fmt.Sprintf("orbit=%v laplacian=%v train=%v finetune=%v integrate=%v other=%v total=%v",
		s.OrbitCounting.Round(time.Millisecond), s.Laplacians.Round(time.Millisecond),
		s.Training.Round(time.Millisecond), s.FineTuning.Round(time.Millisecond),
		s.Integration.Round(time.Millisecond), s.Other().Round(time.Millisecond),
		s.Total.Round(time.Millisecond))
}
