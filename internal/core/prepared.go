package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"
	"time"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/diffusion"
	"github.com/htc-align/htc/internal/gom"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/orbit"
	"github.com/htc-align/htc/internal/par"
)

// aggMode distinguishes the three stage-2 artifact families a Config can
// select: orbit-based GOMs, diffusion matrices, or the low-order
// adjacency Laplacian.
type aggMode int

const (
	aggOrbits aggMode = iota
	aggDiffusion
	aggLowOrder
)

// aggKey identifies one stage-2 artifact set: the aggregation family plus
// every hyperparameter that shapes it. Configs that differ only in
// training/fine-tuning knobs (epochs, seed, M, β, workers, …) map to the
// same key and therefore share artifacts.
type aggKey struct {
	mode   aggMode
	k      int
	binary bool
	alpha  float64
}

// aggKeyOf derives the artifact key of a defaulted config, mirroring the
// stage-2 dispatch of the pipeline.
func aggKeyOf(cfg Config) aggKey {
	switch {
	case cfg.Variant.usesOrbits():
		return aggKey{mode: aggOrbits, k: cfg.K, binary: cfg.Binary}
	case cfg.Variant == DiffusionFT:
		order := cfg.K
		if order > 5 {
			order = 5 // the paper's best HTC-DT uses k = 5
		}
		return aggKey{mode: aggDiffusion, k: order, alpha: cfg.DiffusionAlpha}
	default: // LowOrder, LowOrderFT
		return aggKey{mode: aggLowOrder, k: 1}
	}
}

// setPair bundles one graph pair's stage-2 artifact sets.
type setPair struct {
	s, t *gom.Set
}

// setEntry is one (possibly in-flight) memoised artifact set. The builder
// publishes sp and closes done; waiters block on done with their own
// context, so a slow build never pins an unrelated caller uncancellably.
type setEntry struct {
	done chan struct{}
	sp   *setPair // nil after done only if the builder was cancelled
	use  uint64   // last-use tick for eviction
}

// countsEntry is the pair's (possibly in-flight) edge-orbit counts.
type countsEntry struct {
	done chan struct{}
	c    *orbitCounts
}

// maxMemoisedSets bounds how many stage-2 artifact families one Prepared
// retains. Distinct families are keyed by client-controllable
// hyperparameters (K, binary, diffusion order/α), so without a bound a
// long-lived server Prepared would accrete Laplacian sets forever; beyond
// the cap the least recently used completed set is dropped and simply
// rebuilt if ever needed again (a pure perf trade, never a result
// change). 16 covers every variant roster and hyperparameter grid in the
// repo with room to spare.
const maxMemoisedSets = 16

// Prepared holds everything about a graph pair that does not depend on
// the training/fine-tuning hyperparameters: the validated graphs, their
// input feature matrices, a content hash identifying the pair, and a memo
// of the expensive stage-1/2 artifacts (edge-orbit counts and the
// per-family aggregation Laplacians). Preparing once and calling Align
// repeatedly lets variant and hyperparameter sweeps skip the dominant
// per-run cost (paper Fig. 8) entirely: the 13-orbit counts are computed
// at most once per pair, and each distinct aggregation family (K, binary,
// diffusion order/α) builds its Laplacians at most once.
//
// A Prepared is safe for concurrent use: multiple goroutines may Align
// against it at the same time (the server's sweep endpoint and artifact
// cache do), and artifact construction is memoised under an internal
// lock, so concurrent first users of the same artifact serialise instead
// of duplicating work.
type Prepared struct {
	gs, gt *graph.Graph
	xs, xt *dense.Matrix
	hash   string

	// prep records the artifact build time spent inside Prepare itself,
	// so the one-shot Align wrapper can attribute it to the run's stage
	// timings (sweeps deliberately do not re-report it).
	prep StageTimings

	// mu guards the memo maps only — never a build: builders claim an
	// in-flight entry under mu, build outside it, and publish by closing
	// the entry's done channel, so concurrent Aligns on other (or the
	// same, already-built) families proceed and waiters stay cancellable.
	mu     sync.Mutex
	counts *countsEntry
	sets   map[aggKey]*setEntry
	useSeq uint64
	// countRuns and setBuilds count the actual artifact constructions —
	// the reuse proof used by tests and surfaced in Stats.
	countRuns, setBuilds int
}

// orbitCounts pairs the edge-orbit counts of both graphs.
type orbitCounts struct {
	s, t *orbit.Counts
}

// PreparedStats reports how much work a Prepared has absorbed so far.
type PreparedStats struct {
	// OrbitCountRuns is how many times the pair's edge orbits were
	// counted (at most 1 once any orbit-based config has run).
	OrbitCountRuns int
	// SetBuilds is how many distinct stage-2 artifact sets were built.
	SetBuilds int
	// Sets is the number of artifact sets currently memoised.
	Sets int
}

// Prepare validates a graph pair and builds the config-independent
// pipeline artifacts stages 3–5 will consume: input features, the
// pair's content hash, and — eagerly — the stage-1/2 artifacts the given
// config needs. Align calls with other configs lazily build (and memoise)
// whatever additional artifacts they require, so any Config is compatible
// with any Prepared of the same pair.
func Prepare(gs, gt *graph.Graph, cfg Config) (*Prepared, error) {
	return PrepareContext(context.Background(), gs, gt, cfg)
}

// PrepareContext is Prepare with cooperative cancellation, checked at the
// stage boundaries of the eager artifact build.
func PrepareContext(ctx context.Context, gs, gt *graph.Graph, cfg Config) (*Prepared, error) {
	cfg = cfg.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	xs, xt, err := featurePair(gs, gt)
	if err != nil {
		return nil, err
	}
	p := &Prepared{
		gs: gs, gt: gt, xs: xs, xt: xt,
		hash: PairHash(gs, gt),
		sets: make(map[aggKey]*setEntry),
	}
	// Eagerly build what cfg needs, so a caller that Prepares during an
	// idle moment pays the dominant cost there rather than inside its
	// first Align.
	var timings StageTimings
	if _, err := p.resolveSets(ctx, cfg, par.Resolve(cfg.Workers), &timings, newEmitter(cfg.Progress)); err != nil {
		return nil, err
	}
	p.prep = timings
	return p, nil
}

// Source and Target return the prepared pair's graphs.
func (p *Prepared) Source() *graph.Graph { return p.gs }
func (p *Prepared) Target() *graph.Graph { return p.gt }

// Hash returns the pair's content hash (see PairHash): equal hashes mean
// structurally identical graph pairs whose prepared artifacts are
// interchangeable. The alignment server keys its artifact cache on it.
func (p *Prepared) Hash() string { return p.hash }

// Stats snapshots the artifact-reuse counters.
func (p *Prepared) Stats() PreparedStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PreparedStats{OrbitCountRuns: p.countRuns, SetBuilds: p.setBuilds, Sets: len(p.sets)}
}

// PrepareTimings reports the stage-1/2 build time spent eagerly inside
// Prepare (zero when Prepare found nothing to build, e.g. for a
// low-order config).
func (p *Prepared) PrepareTimings() StageTimings { return p.prep }

// resolveSets returns the stage-2 artifact sets for cfg, building and
// memoising them (and, for orbit-based configs, the stage-1 edge-orbit
// counts) on first use. Build time is recorded into timings; progress
// events are emitted only for real builds, so sweeps observe the stages
// they actually pay for. The artifacts depend only on the graphs and the
// aggregation hyperparameters — never on the worker budget — so any
// concurrent caller may reuse them.
//
// Concurrency: the first caller of a family claims an in-flight entry
// and builds outside the lock; later callers of the same family wait on
// the entry under their own context (a cancelled waiter returns
// promptly, freeing its server worker even while the build runs), and
// callers of other families are never blocked at all.
func (p *Prepared) resolveSets(ctx context.Context, cfg Config, workers int, timings *StageTimings, obs *emitter) (*setPair, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := aggKeyOf(cfg)

	p.mu.Lock()
	e, ok := p.sets[key]
	if ok {
		e.use = p.nextUseLocked()
		p.mu.Unlock()
		select {
		case <-e.done:
			if e.sp != nil {
				return e.sp, nil
			}
			// The builder was cancelled before finishing and withdrew its
			// claim; take over (or wait on whoever already did).
			return p.resolveSets(ctx, cfg, workers, timings, obs)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e = &setEntry{done: make(chan struct{}), use: p.nextUseLocked()}
	p.sets[key] = e
	p.mu.Unlock()

	sp, err := p.buildSets(ctx, key, workers, timings, obs)
	if err != nil {
		// Cancelled between stages: withdraw the claim so a later caller
		// rebuilds, and wake any waiters (they retry under their own ctx).
		p.mu.Lock()
		delete(p.sets, key)
		p.mu.Unlock()
		close(e.done)
		return nil, err
	}
	p.mu.Lock()
	e.sp = sp
	p.setBuilds++
	p.evictSetsLocked(e)
	p.mu.Unlock()
	close(e.done)
	return sp, nil
}

// nextUseLocked ticks the recency clock (callers hold p.mu).
func (p *Prepared) nextUseLocked() uint64 {
	p.useSeq++
	return p.useSeq
}

// evictSetsLocked drops least-recently-used completed artifact sets
// beyond maxMemoisedSets, sparing in-flight builds and keep (the entry
// just produced). Evicted families rebuild on demand; results never
// change.
func (p *Prepared) evictSetsLocked(keep *setEntry) {
	for len(p.sets) > maxMemoisedSets {
		var oldestKey aggKey
		var oldest *setEntry
		for k, e := range p.sets {
			if e == keep || e.sp == nil {
				continue
			}
			if oldest == nil || e.use < oldest.use {
				oldestKey, oldest = k, e
			}
		}
		if oldest == nil {
			return
		}
		delete(p.sets, oldestKey)
	}
}

// resolveCounts returns the pair's edge-orbit counts, counting them on
// first use: once per pair, covering all 13 orbits so every K shares
// them. The two graphs count concurrently, each with a share of the
// budget proportional to its edge count. Counting is not interruptible
// mid-build, but waiters block under their own context.
func (p *Prepared) resolveCounts(ctx context.Context, workers int, timings *StageTimings, obs *emitter) (*orbitCounts, error) {
	p.mu.Lock()
	e := p.counts
	if e != nil {
		p.mu.Unlock()
		select {
		case <-e.done:
			return e.c, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e = &countsEntry{done: make(chan struct{})}
	p.counts = e
	p.mu.Unlock()

	obs.emit(Progress{Stage: StageOrbitCounts, Done: 0, Total: 2, Orbit: -1})
	t0 := time.Now()
	a0 := allocBytes()
	c := &orbitCounts{}
	if workers >= 2 {
		ws, wt := par.Split2(workers, len(p.gs.Edges()), len(p.gt.Edges()))
		par.Do(2,
			func() { c.s = orbit.CountN(p.gs, ws) },
			func() { c.t = orbit.CountN(p.gt, wt) })
	} else {
		c.s = orbit.CountN(p.gs, 1)
		c.t = orbit.CountN(p.gt, 1)
	}
	timings.OrbitCounting = time.Since(t0)
	timings.OrbitCountingBytes = allocBytes() - a0
	p.mu.Lock()
	e.c = c
	p.countRuns++
	p.mu.Unlock()
	close(e.done)
	obs.emit(Progress{Stage: StageOrbitCounts, Done: 2, Total: 2, Orbit: -1})
	return c, nil
}

// buildSets constructs one aggregation family's stage-2 artifacts
// (resolving the shared stage-1 counts first when the family needs
// them).
func (p *Prepared) buildSets(ctx context.Context, key aggKey, workers int, timings *StageTimings, obs *emitter) (*setPair, error) {
	var counts *orbitCounts
	if key.mode == aggOrbits {
		var err error
		if counts, err = p.resolveCounts(ctx, workers, timings, obs); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 2: aggregation matrices (GOM Laplacians or alternatives),
	// one independent build per graph.
	obs.emit(Progress{Stage: StageLaplacians, Done: 0, Total: 2, Orbit: -1})
	t0 := time.Now()
	a0 := allocBytes()
	sp := &setPair{}
	buildPair := func(buildS, buildT func() *gom.Set) {
		if workers >= 2 {
			par.Do(2,
				func() { sp.s = buildS() },
				func() { sp.t = buildT() })
		} else {
			sp.s, sp.t = buildS(), buildT()
		}
	}
	switch key.mode {
	case aggOrbits:
		buildPair(
			func() *gom.Set { return gom.Build(p.gs, counts.s, key.k, key.binary) },
			func() *gom.Set { return gom.Build(p.gt, counts.t, key.k, key.binary) })
	case aggDiffusion:
		diffuse := func(g *graph.Graph) *gom.Set {
			return gom.FromMatrices(diffusion.Matrices(g, key.k, key.alpha, 1e-4))
		}
		buildPair(
			func() *gom.Set { return diffuse(p.gs) },
			func() *gom.Set { return diffuse(p.gt) })
	default: // aggLowOrder
		buildPair(
			func() *gom.Set { return gom.LowOrder(p.gs) },
			func() *gom.Set { return gom.LowOrder(p.gt) })
	}
	timings.Laplacians = time.Since(t0)
	timings.LaplaciansBytes = allocBytes() - a0
	obs.emit(Progress{Stage: StageLaplacians, Done: 2, Total: 2, Orbit: -1})
	return sp, nil
}

// PairHash returns a content hash identifying a graph pair: node counts,
// edge lists and attribute matrices of both graphs, in order. Pairs with
// equal hashes produce interchangeable Prepared artifacts (and, for equal
// configs, bit-identical alignments). The hash ignores everything a
// Config carries.
func PairHash(gs, gt *graph.Graph) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeGraph := func(g *graph.Graph) {
		writeInt(int64(g.N()))
		edges := g.Edges()
		writeInt(int64(len(edges)))
		for _, e := range edges {
			writeInt(int64(e[0]))
			writeInt(int64(e[1]))
		}
		if x := g.Attrs(); x != nil {
			writeInt(int64(x.Rows))
			writeInt(int64(x.Cols))
			for _, v := range x.Data {
				writeInt(int64(math.Float64bits(v)))
			}
		} else {
			writeInt(-1)
		}
	}
	writeGraph(gs)
	writeGraph(gt)
	return hex.EncodeToString(h.Sum(nil))
}
