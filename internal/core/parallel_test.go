package core

import (
	"testing"
)

// TestAlignWorkersEquivalence is the contract behind Config.Workers: the
// parallel execution engine must be a pure performance knob. For every
// variant, a run with Workers=1 and runs with several fan-out budgets must
// produce bit-identical alignment matrices, per-orbit outcomes and loss
// histories on the same seed. Run under -race this also exercises every
// parallel stage for data races.
func TestAlignWorkersEquivalence(t *testing.T) {
	gs, gt, _ := noisyPair(30, 0.1, 99)
	for _, v := range []Variant{Full, LowOrder, HighOrder, LowOrderFT, DiffusionFT} {
		cfg := quickConfig(v)
		cfg.Epochs = 12
		cfg.Workers = 1
		serial, err := Align(gs, gt, cfg)
		if err != nil {
			t.Fatalf("%v serial: %v", v, err)
		}
		for _, w := range []int{2, 4, 0} {
			cfg.Workers = w
			parallel, err := Align(gs, gt, cfg)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", v, w, err)
			}
			if !parallel.M.Equal(serial.M, 0) {
				t.Fatalf("%v workers=%d: alignment matrix diverged from serial run", v, w)
			}
			if len(parallel.PerOrbit) != len(serial.PerOrbit) {
				t.Fatalf("%v workers=%d: %d orbits vs %d", v, w, len(parallel.PerOrbit), len(serial.PerOrbit))
			}
			for i := range serial.PerOrbit {
				if parallel.PerOrbit[i] != serial.PerOrbit[i] {
					t.Fatalf("%v workers=%d: orbit %d outcome %+v vs %+v",
						v, w, i, parallel.PerOrbit[i], serial.PerOrbit[i])
				}
			}
			if len(parallel.LossHistory) != len(serial.LossHistory) {
				t.Fatalf("%v workers=%d: loss history length %d vs %d",
					v, w, len(parallel.LossHistory), len(serial.LossHistory))
			}
			for i := range serial.LossHistory {
				if parallel.LossHistory[i] != serial.LossHistory[i] {
					t.Fatalf("%v workers=%d: loss[%d] = %v vs %v",
						v, w, i, parallel.LossHistory[i], serial.LossHistory[i])
				}
			}
		}
	}
}

// TestAlignWorkersEquivalenceKeepEmbeddings covers the embedding snapshot
// path, whose buffers are the ones most at risk of aliasing bugs under
// concurrent fine-tuning.
func TestAlignWorkersEquivalenceKeepEmbeddings(t *testing.T) {
	gs, gt, _ := noisyPair(24, 0.1, 100)
	cfg := quickConfig(Full)
	cfg.Epochs = 10
	cfg.KeepEmbeddings = true
	cfg.Workers = 1
	serial, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.SourceEmbeddings {
		if !parallel.SourceEmbeddings[i].Equal(serial.SourceEmbeddings[i], 0) ||
			!parallel.TargetEmbeddings[i].Equal(serial.TargetEmbeddings[i], 0) {
			t.Fatalf("orbit %d embeddings diverged between worker counts", i)
		}
	}
}

// TestResultReportsWorkers pins the effective-budget reporting the server
// relies on.
func TestResultReportsWorkers(t *testing.T) {
	gs, gt, _ := noisyPair(20, 0.1, 101)
	cfg := quickConfig(LowOrder)
	cfg.Epochs = 4
	cfg.Workers = 3
	res, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 3 {
		t.Fatalf("Result.Workers = %d, want 3", res.Workers)
	}
}
