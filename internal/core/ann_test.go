package core

import (
	"errors"
	"reflect"
	"testing"

	"github.com/htc-align/htc/internal/ann"
	"github.com/htc-align/htc/internal/metrics"
)

// TestAlignANNExactEquivalence is the pipeline-level proof of the
// exactness escape hatch: a full run under the ANN backend with
// AnnProbes = 2^AnnBits must be bit-identical to the exact top-k run —
// same per-orbit trusted counts and weights, same scores on every
// represented pair, same predictions, matching and evaluation.
func TestAlignANNExactEquivalence(t *testing.T) {
	n := 40
	gs, gt, truth := noisyPair(n, 0.1, 3)

	cfg := quickConfig(Full)
	cfg.Similarity = SimTopK
	cfg.CandidateK = 10
	topkRes, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}

	annCfg := cfg
	annCfg.Similarity = SimANN
	annCfg.AnnBits = 4
	annCfg.AnnProbes = 1 << 4
	annRes, err := Align(gs, gt, annCfg)
	if err != nil {
		t.Fatal(err)
	}

	if topkRes.SimBackend != "topk" || annRes.SimBackend != "ann" {
		t.Fatalf("backends %q / %q", topkRes.SimBackend, annRes.SimBackend)
	}
	if annRes.CandidateK != 10 || annRes.AnnBits != 4 || annRes.AnnProbes != 16 {
		t.Fatalf("ann run resolved k=%d bits=%d probes=%d", annRes.CandidateK, annRes.AnnBits, annRes.AnnProbes)
	}
	if topkRes.AnnBits != 0 || topkRes.AnnProbes != 0 {
		t.Fatalf("topk run reports ann params %d/%d", topkRes.AnnBits, topkRes.AnnProbes)
	}
	if annRes.M != nil {
		t.Fatal("ann run must not materialise the dense alignment matrix")
	}

	if !reflect.DeepEqual(topkRes.PerOrbit, annRes.PerOrbit) {
		t.Fatalf("per-orbit outcomes differ:\ntopk %+v\nann  %+v", topkRes.PerOrbit, annRes.PerOrbit)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want, wok := topkRes.Sim.At(i, j)
			got, gok := annRes.Sim.At(i, j)
			if wok != gok || got != want {
				t.Fatalf("score (%d,%d): topk %v (ok=%v), ann %v (ok=%v)", i, j, want, wok, got, gok)
			}
		}
	}
	tp, ap := topkRes.Predict(), annRes.Predict()
	if !reflect.DeepEqual(tp, ap) {
		t.Fatal("predictions differ between exact top-k and full-probe ann")
	}
	if !reflect.DeepEqual(topkRes.MatchOneToOne(), annRes.MatchOneToOne()) {
		t.Fatal("matchings differ between exact top-k and full-probe ann")
	}
	tRep := metrics.EvaluateSim(topkRes.Sim, truth, 1, 5, 10)
	aRep := metrics.EvaluateSim(annRes.Sim, truth, 1, 5, 10)
	if tRep.MRR != aRep.MRR || tRep.PrecisionAt[1] != aRep.PrecisionAt[1] {
		t.Fatalf("evaluation: topk %v vs ann %v", tRep, aRep)
	}
}

// TestAlignANNApproximate runs the genuinely approximate regime on an
// easy pair and checks the run stays functional end to end.
func TestAlignANNApproximate(t *testing.T) {
	n := 60
	gs, gt, truth := noisyPair(n, 0.05, 5)
	cfg := quickConfig(Full)
	cfg.Similarity = SimANN
	cfg.CandidateK = 8
	cfg.AnnBits = 5
	cfg.AnnProbes = 12 // 12 of 32 buckets
	res, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimBackend != "ann" || res.CandidateK != 8 || res.AnnBits != 5 || res.AnnProbes != 12 {
		t.Fatalf("resolved backend %q k=%d bits=%d probes=%d", res.SimBackend, res.CandidateK, res.AnnBits, res.AnnProbes)
	}
	rows, cols := res.Sim.Dims()
	if rows != n || cols != n {
		t.Fatalf("sim dims %dx%d", rows, cols)
	}
	for i := 0; i < rows; i++ {
		count := 0
		res.Sim.Scan(i, func(int, float64) { count++ })
		if count == 0 || count > len(res.PerOrbit)*8 {
			t.Fatalf("row %d has %d candidates", i, count)
		}
	}
	rep := metrics.EvaluateSim(res.Sim, truth, 1)
	if rep.PrecisionAt[1] < 0.5 {
		t.Fatalf("p@1 = %.3f under ann on an easy pair", rep.PrecisionAt[1])
	}
}

// TestAlignANNStats: an ann run reports its skew-observability block —
// fits, hashed rows, query pool work — and echoes the configured pool
// cap; other backends report neither.
func TestAlignANNStats(t *testing.T) {
	n := 60
	gs, gt, _ := noisyPair(n, 0.05, 5)
	cfg := quickConfig(Full)
	cfg.Similarity = SimANN
	cfg.CandidateK = 8
	cfg.AnnBits = 5
	cfg.AnnProbes = 12
	cfg.AnnPoolCap = 40
	res, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AnnPoolCap != 40 {
		t.Fatalf("AnnPoolCap = %d, want 40", res.AnnPoolCap)
	}
	st := res.Ann
	if st == nil {
		t.Fatal("ann run returned no stats block")
	}
	if st.Fits <= 0 || st.RowsHashed <= 0 {
		t.Fatalf("no hashing recorded: fits=%d rows=%d", st.Fits, st.RowsHashed)
	}
	if st.Buckets != 1<<5 {
		t.Fatalf("Buckets = %d, want %d", st.Buckets, 1<<5)
	}
	if st.Queries <= 0 || st.PoolRows <= 0 || st.PoolRowsMean <= 0 {
		t.Fatalf("no query work recorded: %+v", st)
	}
	if st.PoolRowsMax > 40 && st.PoolRowsMax > cfg.CandidateK {
		t.Fatalf("pool cap not honoured: max pool %d > cap 40", st.PoolRowsMax)
	}
	if st.RowsReused+st.RowsRecoded != st.RowsHashed {
		t.Fatalf("reuse partition broken: reused %d + recoded %d != hashed %d",
			st.RowsReused, st.RowsRecoded, st.RowsHashed)
	}
	if got := st.RefitReuseRatio; got < 0 || got > 1 {
		t.Fatalf("refit reuse ratio %v out of [0,1]", got)
	}

	topkCfg := quickConfig(Full)
	topkCfg.Similarity = SimTopK
	topkRes, err := Align(gs, gt, topkCfg)
	if err != nil {
		t.Fatal(err)
	}
	if topkRes.Ann != nil || topkRes.AnnPoolCap != 0 {
		t.Fatalf("topk run reports ann stats: %+v cap=%d", topkRes.Ann, topkRes.AnnPoolCap)
	}
}

// TestResolveAnn covers the parameter auto-sizing against the pair.
func TestResolveAnn(t *testing.T) {
	var cfg Config
	bits, probes := cfg.ResolveAnn(100000, 90000)
	if bits != ann.AutoBits(100000) || probes != ann.AutoProbes(bits) {
		t.Fatalf("auto resolution gave bits=%d probes=%d", bits, probes)
	}
	cfg = Config{AnnBits: 10, AnnProbes: 3}
	if b, p := cfg.ResolveAnn(100000, 90000); b != 10 || p != 3 {
		t.Fatalf("explicit knobs overridden: bits=%d probes=%d", b, p)
	}
	cfg = Config{AnnBits: 6}
	if b, p := cfg.ResolveAnn(50, 50); b != 6 || p != ann.AutoProbes(6) {
		t.Fatalf("mixed resolution gave bits=%d probes=%d", b, p)
	}
}

// TestValidateSimilarity pins the contradiction rules: out-of-range
// knobs and knobs the resolved backend would silently ignore.
func TestValidateSimilarity(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		ns, nt  int
		wantErr error
	}{
		{"clean default", Config{}, 100, 100, nil},
		{"topk with k", Config{Similarity: SimTopK, CandidateK: 8}, 100, 100, nil},
		{"ann with all knobs", Config{Similarity: SimANN, CandidateK: 8, AnnBits: 6, AnnProbes: 12}, 100, 100, nil},
		{"negative k", Config{CandidateK: -1}, 100, 100, ErrBadCandidateK},
		{"negative bits", Config{Similarity: SimANN, AnnBits: -2}, 100, 100, ErrBadAnnParam},
		{"bits beyond max", Config{Similarity: SimANN, AnnBits: ann.MaxBits + 1}, 100, 100, ErrBadAnnParam},
		{"negative probes", Config{Similarity: SimANN, AnnProbes: -1}, 100, 100, ErrBadAnnParam},
		{"negative pool cap", Config{Similarity: SimANN, AnnPoolCap: -1}, 100, 100, ErrBadAnnParam},
		{"ann with pool cap", Config{Similarity: SimANN, AnnPoolCap: 64}, 100, 100, nil},
		{"k under forced dense", Config{Similarity: SimDense, CandidateK: 8}, 100, 100, ErrIgnoredSimKnob},
		{"k under auto-resolved dense", Config{CandidateK: 8}, 100, 100, ErrIgnoredSimKnob},
		{"ann knobs under forced topk", Config{Similarity: SimTopK, AnnBits: 6}, 100, 100, ErrIgnoredSimKnob},
		{"ann probes under forced dense", Config{Similarity: SimDense, AnnProbes: 4}, 100, 100, ErrIgnoredSimKnob},
		{"pool cap under forced topk", Config{Similarity: SimTopK, AnnPoolCap: 64}, 100, 100, ErrIgnoredSimKnob},
		{"auto sizeless tolerates pool cap", Config{AnnPoolCap: 64}, 0, 0, nil},
		{"auto sizeless tolerates k", Config{CandidateK: 8}, 0, 0, nil},
		{"auto sizeless tolerates ann knobs", Config{AnnBits: 6}, 0, 0, nil},
		{"forced dense sizeless still rejects k", Config{Similarity: SimDense, CandidateK: 8}, 0, 0, ErrIgnoredSimKnob},
		{"sizeless still range-checks", Config{AnnBits: -1}, 0, 0, ErrBadAnnParam},
	}
	for _, tc := range cases {
		err := tc.cfg.ValidateSimilarity(tc.ns, tc.nt)
		if tc.wantErr == nil && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.wantErr)
		}
	}
}

// TestAlignRejectsIgnoredKnobs: the contradictions surface from Align
// itself, not just the helper.
func TestAlignRejectsIgnoredKnobs(t *testing.T) {
	gs, gt, _ := noisyPair(12, 0, 1)
	cfg := quickConfig(LowOrder)
	cfg.Similarity = SimDense
	cfg.CandidateK = 8
	if _, err := Align(gs, gt, cfg); !errors.Is(err, ErrIgnoredSimKnob) {
		t.Fatalf("dense+candidate_k: err = %v, want ErrIgnoredSimKnob", err)
	}
	cfg = quickConfig(LowOrder)
	cfg.Similarity = SimTopK
	cfg.AnnBits = 6
	if _, err := Align(gs, gt, cfg); !errors.Is(err, ErrIgnoredSimKnob) {
		t.Fatalf("topk+ann_bits: err = %v, want ErrIgnoredSimKnob", err)
	}
	cfg = quickConfig(LowOrder)
	cfg.Similarity = SimANN
	cfg.AnnBits = 99
	if _, err := Align(gs, gt, cfg); !errors.Is(err, ErrBadAnnParam) {
		t.Fatalf("ann_bits out of range: err = %v, want ErrBadAnnParam", err)
	}
}
