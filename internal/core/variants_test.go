package core

import (
	"errors"
	"math"
	"testing"

	"github.com/htc-align/htc/internal/metrics"
)

func TestAlignThreeLayerEncoder(t *testing.T) {
	gs, gt, truth := noisyPair(30, 0.05, 20)
	cfg := quickConfig(Full)
	cfg.Layers = 3
	res, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := metrics.Evaluate(res.M, truth, 1)
	if rep.PrecisionAt[1] < 0.3 {
		t.Fatalf("3-layer p@1 = %v, implausibly low", rep.PrecisionAt[1])
	}
}

func TestAlignBinaryGOMs(t *testing.T) {
	gs, gt, truth := noisyPair(30, 0.05, 21)
	cfg := quickConfig(Full)
	cfg.Binary = true
	res, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := metrics.Evaluate(res.M, truth, 1)
	t.Logf("binary GOM p@1 = %.3f", rep.PrecisionAt[1])
	if rep.PrecisionAt[1] < 0.2 {
		t.Fatalf("binary GOM p@1 = %v, implausibly low", rep.PrecisionAt[1])
	}
	// Binary and weighted runs must actually differ (the flag is wired
	// through).
	weighted, err := Align(gs, gt, quickConfig(Full))
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Equal(weighted.M, 0) {
		t.Fatal("binary flag had no effect")
	}
}

func TestAlignPatienceStopsEarly(t *testing.T) {
	gs, gt, _ := noisyPair(25, 0.05, 22)
	cfg := quickConfig(Full)
	cfg.Epochs = 200
	cfg.Patience = 3
	res, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LossHistory) >= 200 {
		t.Fatalf("patience did not stop training (%d epochs)", len(res.LossHistory))
	}
}

func TestAlignKeepEmbeddings(t *testing.T) {
	gs, gt, _ := noisyPair(25, 0.05, 23)
	cfg := quickConfig(Full)
	cfg.KeepEmbeddings = true
	res, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SourceEmbeddings) != cfg.K || len(res.TargetEmbeddings) != cfg.K {
		t.Fatalf("embeddings per orbit: %d/%d, want %d",
			len(res.SourceEmbeddings), len(res.TargetEmbeddings), cfg.K)
	}
	for k, h := range res.SourceEmbeddings {
		if h == nil || h.Rows != gs.N() || h.Cols != cfg.Embed {
			t.Fatalf("orbit %d source embeddings malformed", k)
		}
	}
	// Default runs must not pay the memory cost.
	lean, err := Align(gs, gt, quickConfig(Full))
	if err != nil {
		t.Fatal(err)
	}
	if lean.SourceEmbeddings != nil {
		t.Fatal("embeddings kept without KeepEmbeddings")
	}
}

func TestMatchOneToOneInjective(t *testing.T) {
	gs, gt, truth := noisyPair(30, 0.05, 24)
	res, err := Align(gs, gt, quickConfig(Full))
	if err != nil {
		t.Fatal(err)
	}
	match := res.MatchOneToOne()
	seen := map[int]bool{}
	correct := 0
	for s, tt := range match {
		if tt < 0 {
			continue
		}
		if seen[tt] {
			t.Fatal("one-to-one matching reused a target node")
		}
		seen[tt] = true
		if truth[s] == tt {
			correct++
		}
	}
	// One-to-one on a near-perfect instance should be at least as good
	// as chance by a huge margin.
	if correct < 20 {
		t.Fatalf("one-to-one matched %d/30 correctly", correct)
	}
}

func TestAlignSeedsHelpOnNoisyPair(t *testing.T) {
	// HTC-S: seeding known anchors into the reinforcement must not hurt,
	// and changes the result.
	gs, gt, truth := noisyPair(35, 0.25, 28)
	cfg := quickConfig(Full)
	plain, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seeded := cfg
	for s := 0; s < 12; s++ {
		seeded.Seeds = append(seeded.Seeds, [2]int{s, truth[s]})
	}
	withSeeds, err := Align(gs, gt, seeded)
	if err != nil {
		t.Fatal(err)
	}
	if plain.M.Equal(withSeeds.M, 0) {
		t.Fatal("seeds had no effect on the alignment matrix")
	}
	pPlain := metrics.Evaluate(plain.M, truth, 1).PrecisionAt[1]
	pSeeded := metrics.Evaluate(withSeeds.M, truth, 1).PrecisionAt[1]
	t.Logf("unsupervised %.3f vs seeded %.3f", pPlain, pSeeded)
	if pSeeded+0.1 < pPlain {
		t.Fatalf("seeds hurt badly: %.3f vs %.3f", pSeeded, pPlain)
	}
}

func TestAlignSeedsIgnoredWithoutFineTune(t *testing.T) {
	gs, gt, truth := noisyPair(25, 0.1, 29)
	cfg := quickConfig(HighOrder)
	plain, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seeds = [][2]int{{0, truth[0]}, {1, truth[1]}}
	seeded, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.M.Equal(seeded.M, 0) {
		t.Fatal("no-fine-tune variant must ignore seeds")
	}
}

func TestAlignSeedsOutOfRangeIgnored(t *testing.T) {
	gs, gt, _ := noisyPair(20, 0.1, 30)
	cfg := quickConfig(Full)
	cfg.Seeds = [][2]int{{-1, 5}, {3, 999}, {2, 2}}
	if _, err := Align(gs, gt, cfg); err != nil {
		t.Fatalf("out-of-range seeds must be skipped, got %v", err)
	}
}

func TestAlignRejectsNaNAttrs(t *testing.T) {
	gs, gt, _ := noisyPair(15, 0.05, 27)
	bad := gs.Attrs().Clone()
	bad.Set(3, 2, math.NaN())
	gsBad := gs.WithAttrs(bad)
	if _, err := Align(gsBad, gt, quickConfig(Full)); !errors.Is(err, ErrBadAttrs) {
		t.Fatalf("err = %v, want ErrBadAttrs", err)
	}
	inf := gt.Attrs().Clone()
	inf.Set(0, 0, math.Inf(1))
	gtBad := gt.WithAttrs(inf)
	if _, err := Align(gs, gtBad, quickConfig(Full)); !errors.Is(err, ErrBadAttrs) {
		t.Fatalf("err = %v, want ErrBadAttrs", err)
	}
}

func TestAlignRectangularVariants(t *testing.T) {
	// ns ≠ nt must work for every variant (Douban regime).
	gs, _, _ := noisyPair(28, 0.1, 25)
	gtSmall, _, _ := noisyPair(19, 0.1, 26)
	for _, v := range []Variant{Full, LowOrder, HighOrder, LowOrderFT, DiffusionFT} {
		res, err := Align(gs, gtSmall, quickConfig(v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.M.Rows != 28 || res.M.Cols != 19 {
			t.Fatalf("%v: shape %dx%d", v, res.M.Rows, res.M.Cols)
		}
	}
}
