package core

import (
	"fmt"
	"testing"
)

// benchConfig is the end-to-end benchmark workload: large enough that
// every stage (orbit counting, training, fine-tuning, integration) shows
// up, small enough that -benchtime=1x stays CI-sized.
func benchConfig(v Variant, workers int) Config {
	return Config{
		Variant: v, K: 8, Hidden: 32, Embed: 16,
		Epochs: 15, M: 10, Seed: 1, Workers: workers,
	}
}

// BenchmarkAlign measures the whole pipeline per variant, once with a
// single worker (the serial baseline) and once with the full machine
// (workers=max, i.e. Config.Workers = 0). The workers=1 / workers=max
// ratio is the headline speedup of the parallel execution engine;
// scripts/bench_snapshot.sh records both series in BENCH_pipeline.json.
func BenchmarkAlign(b *testing.B) {
	gs, gt, _ := noisyPair(130, 0.1, 7)
	for _, v := range Variants() {
		for _, w := range []struct {
			label   string
			workers int
		}{{"1", 1}, {"max", 0}} {
			b.Run(fmt.Sprintf("%s/workers=%s", v, w.label), func(b *testing.B) {
				cfg := benchConfig(v, w.workers)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Align(gs, gt, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAlignLarge is the scaling probe: one heavier orbit-variant run
// per worker setting, for eyeballing how the fan-out behaves beyond toy
// sizes. Excluded from the snapshot's regression gate (it is noisier).
func BenchmarkAlignLarge(b *testing.B) {
	gs, gt, _ := noisyPair(300, 0.1, 8)
	for _, w := range []struct {
		label   string
		workers int
	}{{"1", 1}, {"max", 0}} {
		b.Run("HTC/workers="+w.label, func(b *testing.B) {
			cfg := benchConfig(Full, w.workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Align(gs, gt, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
