package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/htc-align/htc/internal/align"
	"github.com/htc-align/htc/internal/ann"
	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/ingest"
	"github.com/htc-align/htc/internal/refine"
)

// benchConfig is the end-to-end benchmark workload: large enough that
// every stage (orbit counting, training, fine-tuning, integration) shows
// up, small enough that -benchtime=1x stays CI-sized.
func benchConfig(v Variant, workers int) Config {
	return Config{
		Variant: v, K: 8, Hidden: 32, Embed: 16,
		Epochs: 15, M: 10, Seed: 1, Workers: workers,
	}
}

// BenchmarkAlign measures the whole pipeline per variant, once with a
// single worker (the serial baseline) and once with the full machine
// (workers=max, i.e. Config.Workers = 0). The workers=1 / workers=max
// ratio is the headline speedup of the parallel execution engine;
// scripts/bench_snapshot.sh records both series in BENCH_pipeline.json.
func BenchmarkAlign(b *testing.B) {
	gs, gt, _ := noisyPair(130, 0.1, 7)
	for _, v := range Variants() {
		for _, w := range []struct {
			label   string
			workers int
		}{{"1", 1}, {"max", 0}} {
			b.Run(fmt.Sprintf("%s/workers=%s", v, w.label), func(b *testing.B) {
				cfg := benchConfig(v, w.workers)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Align(gs, gt, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// densePair builds a denser benchmark pair than noisyPair: on dense
// graphs the orbit-counting stage dominates end-to-end cost, matching the
// regime of the paper's Fig. 8 — exactly where the staged API's artifact
// reuse pays.
func densePair(n int, seed int64) (*graph.Graph, *graph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	gs := graph.ErdosRenyi(n, 0.3, rng)
	x := dense.New(n, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	gs = gs.WithAttrs(x)
	b := graph.NewBuilder(n)
	for _, e := range gs.Edges() {
		if rng.Float64() >= 0.1 {
			b.AddEdge(int(e[0]), int(e[1]))
		}
	}
	return gs, b.Build().WithAttrs(x.Clone())
}

// sweepConfigs is a Table-III style 5-config roster over the orbit-based
// family: every entry shares the single orbit-counting pass, and all but
// the binary ablation share one set of Laplacians.
func sweepConfigs() []Config {
	base := Config{Variant: Full, K: 8, Hidden: 24, Embed: 12, Epochs: 8, M: 10, Seed: 1}
	high := base
	high.Variant = HighOrder
	binary := base
	binary.Binary = true
	reseeded := base
	reseeded.Seed = 2
	narrow := base
	narrow.M = 5
	return []Config{base, high, binary, reseeded, narrow}
}

// BenchmarkPrepareReuse measures the staged API's headline win: a
// 5-config sweep over one pair, run cold (5 one-shot Aligns, each paying
// stages 1–2) vs staged (1 Prepare + 5 Prepared.Aligns over shared
// artifacts). The reuse series must undercut cold by well over 2× — the
// snapshot in BENCH_pipeline.json and scripts/bench_check.sh gate it.
func BenchmarkPrepareReuse(b *testing.B) {
	gs, gt := densePair(200, 9)
	cfgs := sweepConfigs()
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, cfg := range cfgs {
				if _, err := Align(gs, gt, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("reuse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := Prepare(gs, gt, cfgs[0])
			if err != nil {
				b.Fatal(err)
			}
			for _, cfg := range cfgs {
				if _, err := p.Align(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// sparsePair builds a large, realistically sparse benchmark pair (mean
// degree ≈ 8): the regime where the dense ns×nt similarity stages — not
// orbit counting — are the scaling wall the top-k backend removes.
func sparsePair(n int, seed int64) (*graph.Graph, *graph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	gs := graph.ErdosRenyi(n, 8/float64(n), rng)
	x := dense.New(n, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	gs = gs.WithAttrs(x)
	b := graph.NewBuilder(n)
	for _, e := range gs.Edges() {
		if rng.Float64() >= 0.05 {
			b.AddEdge(int(e[0]), int(e[1]))
		}
	}
	return gs, b.Build().WithAttrs(x.Clone())
}

// topkBenchConfig is the end-to-end workload of the memory benchmark:
// the fine-tuning ablation (orbit 0 only, so similarity work dominates
// instead of orbit counting) with a small candidate budget. Workers is
// pinned to 1 because this benchmark's B/op series is CI-gated: the
// top-k block scratch is allocated per worker, so a GOMAXPROCS-sized
// fan-out would make the measurement grow with the host's core count
// and trip the allocated-bytes gate against a baseline from another
// machine.
func topkBenchConfig(n int) Config {
	cfg := Config{
		Variant: LowOrderFT, Hidden: 16, Embed: 8,
		Epochs: 6, M: 10, MaxFineTuneIters: 3, Seed: 1, Workers: 1,
	}
	if n > 0 {
		cfg.Similarity = SimTopK
		cfg.CandidateK = 16
	} else {
		cfg.Similarity = SimDense
	}
	return cfg
}

// BenchmarkAlignTopKLarge is the memory proof of the top-k similarity
// backend: an end-to-end align of a 5000×5000 pair — 5× beyond the
// dense/n=1000 reference series, and past the point where the dense
// path's working set (≥ 4 buffers × n² × 8 B ≈ 800 MB at n = 5000,
// reallocated per fine-tune iteration) stops being CI-viable — completes
// with allocations bounded by O(n·k) candidate structures instead of
// O(n²) matrices. scripts/bench_snapshot.sh records B/op and allocs/op
// into BENCH_pipeline.json and scripts/bench_check.sh gates both, so a
// reintroduced dense materialisation on this path fails CI as an
// allocated-bytes regression.
func BenchmarkAlignTopKLarge(b *testing.B) {
	for _, bench := range []struct {
		name string
		n    int
		cfg  Config
	}{
		{"dense/n=1000", 1000, topkBenchConfig(0)},
		{"topk/n=5000", 5000, topkBenchConfig(5000)},
	} {
		gs, gt := sparsePair(bench.n, 11)
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Align(gs, gt, bench.cfg)
				if err != nil {
					b.Fatal(err)
				}
				if want := bench.cfg.Similarity.String(); res.SimBackend != want {
					b.Fatalf("ran %s, want %s", res.SimBackend, want)
				}
			}
		})
	}
}

// skewedEmbeddingPair fabricates the adversarial input of the skew
// benchmark: GCN-collapse-shaped embeddings where every row is
// ±√(1−ρ²)·v along one shared dominant direction v plus a ρ-scaled unit
// residual from a rank-r subspace orthogonal to v. Raw SRP hashing of
// such rows degenerates — the sign pattern of v pins most code bits, so
// rows pile into a handful of hot buckets — while the ranking signal
// lives entirely in the residuals.
func skewedEmbeddingPair(n, d, r int, rho float64, seed int64) (*dense.Matrix, *dense.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	basis := make([][]float64, r+1)
	for bi := range basis {
		u := make([]float64, d)
		for j := range u {
			u[j] = rng.NormFloat64()
		}
		for _, prev := range basis[:bi] {
			var p float64
			for j := range u {
				p += u[j] * prev[j]
			}
			for j := range u {
				u[j] -= p * prev[j]
			}
		}
		var nrm float64
		for _, x := range u {
			nrm += x * x
		}
		nrm = 1 / math.Sqrt(nrm)
		for j := range u {
			u[j] *= nrm
		}
		basis[bi] = u
	}
	v := basis[0]
	a := math.Sqrt(1 - rho*rho)
	w := make([]float64, r)
	gen := func(rows int) *dense.Matrix {
		m := dense.New(rows, d)
		for i := 0; i < rows; i++ {
			c := a
			if rng.Intn(2) == 1 {
				c = -a
			}
			var nw float64
			for l := range w {
				w[l] = rng.NormFloat64()
				nw += w[l] * w[l]
			}
			nw = 1 / math.Sqrt(nw)
			row := m.Row(i)
			for j := range row {
				row[j] = c * v[j]
				for l, u := range basis[1:] {
					row[j] += rho * w[l] * nw * u[j]
				}
			}
		}
		return m
	}
	return gen(n), gen(n)
}

// BenchmarkAnnSkewAdversarial is the skew gate: candidate generation
// over collapse-skewed embeddings, once with the data-aware balanced
// hash (whitened projections, hot-bucket re-hash) and once with it
// disabled, at equal bits/probes. The mean re-rank pool per query —
// reported as pool-rows/op and snapshotted into BENCH_pipeline.json —
// is the series scripts/bench_check.sh gates: the balanced index must
// keep it ≥ 5× below the unbalanced one (see the ann and align skew
// tests for the in-tree assertion of the same property, plus recall).
func BenchmarkAnnSkewAdversarial(b *testing.B) {
	hs, ht := skewedEmbeddingPair(10_000, 16, 4, 0.2, 17)
	for _, bench := range []struct {
		name       string
		unbalanced bool
	}{
		{"balanced", false},
		{"unbalanced", true},
	} {
		p := ann.Params{Bits: 12, Probes: 48, Seed: 19, Unbalanced: bench.unbalanced}
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			var pool float64
			for i := 0; i < b.N; i++ {
				_, st := align.ANNCandidatesStats(hs, ht, 16, p, 1)
				pool = st.PoolRowsMean()
			}
			b.ReportMetric(pool, "pool-rows/op")
		})
	}
}

// edgeListText generates a SNAP-style edge-list pair as in-memory text:
// n named nodes with ≈ 4 random neighbours each for the source, the same
// network with 5% of edges dropped for the target. The text round-trips
// through the ingestion layer so the benchmark covers the real entry
// path for huge graphs — parse, intern string ids, build — not just the
// numeric pipeline.
func edgeListText(n int, seed int64) (src, tgt string) {
	rng := rand.New(rand.NewSource(seed))
	var sb, tb strings.Builder
	sb.Grow(n * 48)
	tb.Grow(n * 48)
	// Preferential attachment: each new node links 4 times to endpoints
	// of existing edges (probability ∝ degree), yielding the heavy-tailed
	// degree distribution of real networks. That matters beyond realism —
	// on degree-uniform random graphs GCN embeddings collapse towards one
	// dominant direction and any bucketing of them degenerates, which
	// would make this benchmark measure a pathology instead of the
	// intended workload.
	ends := make([]int32, 0, 8*n)
	ends = append(ends, 0)
	for i := 1; i < n; i++ {
		for d := 0; d < 4; d++ {
			j := int(ends[rng.Intn(len(ends))])
			if j == i {
				continue
			}
			fmt.Fprintf(&sb, "v%d v%d\n", i, j)
			ends = append(ends, int32(i), int32(j))
			if rng.Float64() >= 0.05 {
				fmt.Fprintf(&tb, "v%d v%d\n", i, j)
			}
		}
	}
	return sb.String(), tb.String()
}

// idAttrs joins d-dimensional node features onto an ingested graph by
// node id — the standard shape of real pipelines: edge lists never carry
// features, so attributes arrive keyed by name from a second source.
// Deriving them deterministically from the id hash gives both sides of a
// pair consistent features without shipping a second artefact. The
// gaussians come from an allocation-free splitmix64 + Box–Muller stream
// rather than a per-node math/rand source: the latter's ~5 KB state
// array, times 2·100k nodes, used to put ≈ 1 GB of fixture noise into
// the 100K benchmark's allocated-bytes series and drown the signal the
// gate watches.
func idAttrs(nodes *ingest.NodeMap, d int) *dense.Matrix {
	x := dense.New(nodes.Len(), d)
	for i := 0; i < nodes.Len(); i++ {
		id := nodes.ID(i)
		s := uint64(fnvOffset)
		for j := 0; j < len(id); j++ {
			s = (s ^ uint64(id[j])) * fnvPrime
		}
		next := func() float64 {
			s += 0x9e3779b97f4a7c15
			z := s
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return (float64((z^(z>>31))>>11) + 0.5) / (1 << 53)
		}
		for c := 0; c < d; c += 2 {
			r := math.Sqrt(-2 * math.Log(next()))
			theta := 2 * math.Pi * next()
			x.Data[i*d+c] = r * math.Cos(theta)
			if c+1 < d {
				x.Data[i*d+c+1] = r * math.Sin(theta)
			}
		}
	}
	return x
}

// FNV-1a parameters, inlined so the hot loop hashes without a heap
// handle per node.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// BenchmarkAlignAnnIngested100K is the scale proof of the ANN similarity
// backend: ingest a 100 000-node edge-list pair, join id-keyed node
// features, and align end to end with Similarity = ann. At this size the
// dense backend is out of the question (one ns×nt float64 buffer is
// 80 GB) and the exact top-k scan pays 10¹⁰ dot products per fine-tune
// direction; the LSH index (13 bits, 208 probes, auto-resolved) is the
// only backend that completes in CI time. Ingestion runs in the setup
// (the entry path is still exercised end to end, and has its own gated
// benchmarks in BENCH_io.json); the measured region is the alignment,
// so the time and allocated-bytes series attribute to the pipeline
// instead of to parsing fixtures. The workload runs once per precision
// tier — auto would resolve f32 at this size, so both tiers are pinned
// explicitly and the f64 series is the reference the f32 series is
// gated against within the same snapshot (see bench_check.sh: the f32
// tier must allocate ≤ 0.97× of f64 in the fine-tune stage and never
// more than f64 overall; wall-clock is not gated across tiers — at
// this embedding width the conversion cost and the bandwidth saving
// are close, and the measured ratio swings with host load). Workers is
// pinned to 1 for the same B/op-gate reason as topkBenchConfig; the
// snapshot in BENCH_pipeline.json gates time and allocated bytes, so a
// regression to quadratic candidate generation fails CI on both series.
func BenchmarkAlignAnnIngested100K(b *testing.B) {
	src, tgt := edgeListText(100_000, 13)
	ls, err := ingest.Load(strings.NewReader(src), ingest.Options{})
	if err != nil {
		b.Fatal(err)
	}
	lt, err := ingest.Load(strings.NewReader(tgt), ingest.Options{})
	if err != nil {
		b.Fatal(err)
	}
	gs := ls.Graph.WithAttrs(idAttrs(ls.Nodes, 6))
	gt := lt.Graph.WithAttrs(idAttrs(lt.Nodes, 6))
	for _, tier := range []struct {
		name string
		prec Precision
	}{{"f64", PrecisionF64}, {"f32", PrecisionF32}} {
		cfg := Config{
			Variant: LowOrderFT, Hidden: 16, Embed: 8,
			Epochs: 4, M: 10, MaxFineTuneIters: 2, Seed: 1, Workers: 1,
			Similarity: SimANN, Precision: tier.prec,
		}
		b.Run(tier.name, func(b *testing.B) {
			b.ReportAllocs()
			var st AnnStats
			var ft uint64
			for i := 0; i < b.N; i++ {
				res, err := Align(gs, gt, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.SimBackend != "ann" || res.Precision != tier.name {
					b.Fatalf("ran %s/%s, want ann/%s", res.SimBackend, res.Precision, tier.name)
				}
				st = *res.Ann
				ft = res.Timings.FineTuningBytes
			}
			// The mean re-rank pool is the work-per-query series the
			// snapshot gates; the refit reuse ratio proves the incremental
			// path engaged across the two fine-tune iterations (rows that
			// barely moved kept their codes instead of being re-projected);
			// the fine-tune stage's allocated-bytes delta is the span the
			// precision tier owns, recorded so the snapshot trajectory
			// shows where the f32 tier moves memory.
			b.ReportMetric(st.PoolRowsMean, "pool-rows/op")
			b.ReportMetric(st.RefitReuseRatio, "refit-reuse/op")
			b.ReportMetric(float64(ft), "finetune-bytes/op")
		})
	}
}

// BenchmarkRefine measures the RefiNA refinement stage on both Sim
// families: a dense 1000×1000 matrix (the full-matrix update) and the
// candidate lists of an ingested 100 000-node pair (the sparse path — a
// dense representation at that size would be an 80 GB buffer, so the
// gated B/op series doubles as the no-materialisation proof: refinement
// must stay O(n·k·deg)). Setup builds the input similarity synthetically
// — a noisy score matrix for the dense case, a name-keyed matching
// lifted through refine.FromMatching for the ingested case — so the
// measured region is refinement alone, not a pipeline run. Workers is
// pinned to 1 for the same B/op-gate reason as topkBenchConfig; the
// snapshot in BENCH_pipeline.json gates time and allocated bytes on
// both series.
func BenchmarkRefine(b *testing.B) {
	b.Run("dense/n=1000", func(b *testing.B) {
		const n = 1000
		gs, gt := sparsePair(n, 11)
		rng := rand.New(rand.NewSource(3))
		m := dense.New(n, n)
		for i := range m.Data {
			m.Data[i] = rng.Float64()
		}
		for i := 0; i < n; i++ {
			m.Set(i, i, 1.5) // true match on the diagonal, noise elsewhere
		}
		opts := refine.Options{Iters: 3, Workers: 1}
		b.ReportAllocs()
		var mnc float64
		for i := 0; i < b.N; i++ {
			res, err := refine.Refine(align.DenseSim{M: m}, gs, gt, opts)
			if err != nil {
				b.Fatal(err)
			}
			mnc = res.MNC[len(res.MNC)-1]
		}
		b.ReportMetric(mnc, "mnc/op")
	})
	b.Run("candidates/n=100000", func(b *testing.B) {
		src, tgt := edgeListText(100_000, 13)
		ls, err := ingest.Load(strings.NewReader(src), ingest.Options{})
		if err != nil {
			b.Fatal(err)
		}
		lt, err := ingest.Load(strings.NewReader(tgt), ingest.Options{})
		if err != nil {
			b.Fatal(err)
		}
		match := make([]int, ls.Graph.N())
		for i := range match {
			t, ok := lt.Nodes.Index(ls.Nodes.ID(i))
			if !ok {
				t = -1
			}
			match[i] = t
		}
		sim, err := refine.FromMatching(match, lt.Graph.N(), 16)
		if err != nil {
			b.Fatal(err)
		}
		opts := refine.Options{Iters: 2, Workers: 1}
		b.ReportAllocs()
		var mnc float64
		for i := 0; i < b.N; i++ {
			res, err := refine.Refine(sim, ls.Graph, lt.Graph, opts)
			if err != nil {
				b.Fatal(err)
			}
			mnc = res.MNC[len(res.MNC)-1]
		}
		b.ReportMetric(mnc, "mnc/op")
	})
}

// BenchmarkAlignLarge is the scaling probe: one heavier orbit-variant run
// per worker setting, for eyeballing how the fan-out behaves beyond toy
// sizes. Excluded from the snapshot's regression gate (it is noisier).
func BenchmarkAlignLarge(b *testing.B) {
	gs, gt, _ := noisyPair(300, 0.1, 8)
	for _, w := range []struct {
		label   string
		workers int
	}{{"1", 1}, {"max", 0}} {
		b.Run("HTC/workers="+w.label, func(b *testing.B) {
			cfg := benchConfig(Full, w.workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Align(gs, gt, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
