package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
)

// benchConfig is the end-to-end benchmark workload: large enough that
// every stage (orbit counting, training, fine-tuning, integration) shows
// up, small enough that -benchtime=1x stays CI-sized.
func benchConfig(v Variant, workers int) Config {
	return Config{
		Variant: v, K: 8, Hidden: 32, Embed: 16,
		Epochs: 15, M: 10, Seed: 1, Workers: workers,
	}
}

// BenchmarkAlign measures the whole pipeline per variant, once with a
// single worker (the serial baseline) and once with the full machine
// (workers=max, i.e. Config.Workers = 0). The workers=1 / workers=max
// ratio is the headline speedup of the parallel execution engine;
// scripts/bench_snapshot.sh records both series in BENCH_pipeline.json.
func BenchmarkAlign(b *testing.B) {
	gs, gt, _ := noisyPair(130, 0.1, 7)
	for _, v := range Variants() {
		for _, w := range []struct {
			label   string
			workers int
		}{{"1", 1}, {"max", 0}} {
			b.Run(fmt.Sprintf("%s/workers=%s", v, w.label), func(b *testing.B) {
				cfg := benchConfig(v, w.workers)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Align(gs, gt, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// densePair builds a denser benchmark pair than noisyPair: on dense
// graphs the orbit-counting stage dominates end-to-end cost, matching the
// regime of the paper's Fig. 8 — exactly where the staged API's artifact
// reuse pays.
func densePair(n int, seed int64) (*graph.Graph, *graph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	gs := graph.ErdosRenyi(n, 0.3, rng)
	x := dense.New(n, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	gs = gs.WithAttrs(x)
	b := graph.NewBuilder(n)
	for _, e := range gs.Edges() {
		if rng.Float64() >= 0.1 {
			b.AddEdge(int(e[0]), int(e[1]))
		}
	}
	return gs, b.Build().WithAttrs(x.Clone())
}

// sweepConfigs is a Table-III style 5-config roster over the orbit-based
// family: every entry shares the single orbit-counting pass, and all but
// the binary ablation share one set of Laplacians.
func sweepConfigs() []Config {
	base := Config{Variant: Full, K: 8, Hidden: 24, Embed: 12, Epochs: 8, M: 10, Seed: 1}
	high := base
	high.Variant = HighOrder
	binary := base
	binary.Binary = true
	reseeded := base
	reseeded.Seed = 2
	narrow := base
	narrow.M = 5
	return []Config{base, high, binary, reseeded, narrow}
}

// BenchmarkPrepareReuse measures the staged API's headline win: a
// 5-config sweep over one pair, run cold (5 one-shot Aligns, each paying
// stages 1–2) vs staged (1 Prepare + 5 Prepared.Aligns over shared
// artifacts). The reuse series must undercut cold by well over 2× — the
// snapshot in BENCH_pipeline.json and scripts/bench_check.sh gate it.
func BenchmarkPrepareReuse(b *testing.B) {
	gs, gt := densePair(200, 9)
	cfgs := sweepConfigs()
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, cfg := range cfgs {
				if _, err := Align(gs, gt, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("reuse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := Prepare(gs, gt, cfgs[0])
			if err != nil {
				b.Fatal(err)
			}
			for _, cfg := range cfgs {
				if _, err := p.Align(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAlignLarge is the scaling probe: one heavier orbit-variant run
// per worker setting, for eyeballing how the fan-out behaves beyond toy
// sizes. Excluded from the snapshot's regression gate (it is noisier).
func BenchmarkAlignLarge(b *testing.B) {
	gs, gt, _ := noisyPair(300, 0.1, 8)
	for _, w := range []struct {
		label   string
		workers int
	}{{"1", 1}, {"max", 0}} {
		b.Run("HTC/workers="+w.label, func(b *testing.B) {
			cfg := benchConfig(Full, w.workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Align(gs, gt, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
