package core

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestVariantTextRoundTrip(t *testing.T) {
	for _, v := range Variants() {
		text, err := v.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		var back Variant
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if back != v {
			t.Errorf("round trip %v → %q → %v", v, text, back)
		}
	}
	if _, err := Variant(99).MarshalText(); err == nil {
		t.Error("marshalling an unknown variant should fail")
	}
}

func TestParseVariant(t *testing.T) {
	cases := map[string]Variant{
		"HTC": Full, "htc": Full, "": Full, "full": Full,
		"HTC-L": LowOrder, "l": LowOrder,
		"htc-h":  HighOrder,
		"HTC-LT": LowOrderFT, " lt ": LowOrderFT,
		"htc-dt": DiffusionFT, "DT": DiffusionFT,
	}
	for in, want := range cases {
		got, err := ParseVariant(in)
		if err != nil || got != want {
			t.Errorf("ParseVariant(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseVariant("HTC-XL"); err == nil {
		t.Error("ParseVariant should reject unknown names")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := Config{
		Variant: DiffusionFT, K: 5, Hidden: 32, Embed: 16, Layers: 3,
		Epochs: 10, Patience: 3, LR: 0.02, M: 7, Beta: 1.2, Binary: true,
		MaxFineTuneIters: 9, DiffusionAlpha: 0.3, Seed: 42, Workers: 4,
		Seeds: [][2]int{{0, 1}, {2, 3}},
	}
	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"variant":"HTC-DT"`) {
		t.Errorf("variant should marshal by paper name, got %s", blob)
	}
	var back Config
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, back) {
		t.Errorf("round trip mismatch:\n in  %+v\n out %+v", cfg, back)
	}
}

// TestConfigJSONIgnoresObservers pins that the progress observer — a
// function value — stays out of the wire format: a Config carrying one
// still marshals (the server hashes configs with encoding/json, which
// would otherwise fail on a func field), emits no "progress" key, and
// the callback is irrelevant to equality of the serialisable fields.
func TestConfigJSONIgnoresObservers(t *testing.T) {
	cfg := Config{Epochs: 5, Seed: 9, Progress: func(Progress) {}}
	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshalling a Config with a Progress observer: %v", err)
	}
	if strings.Contains(string(blob), "progress") {
		t.Errorf("progress observer leaked into JSON: %s", blob)
	}
	var back Config
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	cfg.Progress = nil
	if !reflect.DeepEqual(cfg, back) {
		t.Errorf("round trip mismatch:\n in  %+v\n out %+v", cfg, back)
	}
}

func TestConfigJSONDefaults(t *testing.T) {
	// An empty body selects the paper's defaults, and unknown variants
	// are rejected at decode time.
	var cfg Config
	if err := json.Unmarshal([]byte(`{}`), &cfg); err != nil {
		t.Fatal(err)
	}
	def := cfg.WithDefaults()
	if def.Epochs != 60 || def.Hidden != 128 || def.K != 13 {
		t.Errorf("unexpected defaults: %+v", def)
	}
	if err := json.Unmarshal([]byte(`{"variant":"HTC-XXL"}`), &cfg); err == nil {
		t.Error("decoding an unknown variant should fail")
	}
}

func TestAlignContextCancelled(t *testing.T) {
	gs, gt, _ := noisyPair(40, 0.1, 3)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AlignContext(ctx, gs, gt, quickConfig(Full)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: got %v, want context.Canceled", err)
	}

	// Cancel mid-training (via the epoch callback path: cancel after a
	// short delay while the pipeline is running) and require a prompt,
	// clean abort.
	ctx, cancel = context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	cfg := quickConfig(Full)
	cfg.Epochs = 100000 // would run for minutes without cancellation
	start := time.Now()
	_, err := AlignContext(ctx, gs, gt, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-run cancel: got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
}
