package core

import (
	"errors"
	"testing"

	"github.com/htc-align/htc/internal/align"
	"github.com/htc-align/htc/internal/metrics"
)

// TestAlignTopKEquivalence is the pipeline-level proof of the backend
// abstraction: a full run under the top-k backend with k = n must be
// bit-identical to the dense run — same per-orbit trusted counts and
// weights, same final scores on every pair, same predictions, matching
// and evaluation.
func TestAlignTopKEquivalence(t *testing.T) {
	n := 40
	gs, gt, truth := noisyPair(n, 0.1, 3)

	cfg := quickConfig(Full)
	denseRes, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}

	topkCfg := cfg
	topkCfg.Similarity = SimTopK
	topkCfg.CandidateK = n
	topkRes, err := Align(gs, gt, topkCfg)
	if err != nil {
		t.Fatal(err)
	}

	if denseRes.SimBackend != "dense" || topkRes.SimBackend != "topk" {
		t.Fatalf("backends %q / %q", denseRes.SimBackend, topkRes.SimBackend)
	}
	if topkRes.CandidateK != n {
		t.Fatalf("candidate k = %d, want %d", topkRes.CandidateK, n)
	}
	if topkRes.M != nil {
		t.Fatal("top-k run must not materialise the dense alignment matrix")
	}
	if denseRes.M == nil || denseRes.Sim == nil || topkRes.Sim == nil {
		t.Fatal("result representations missing")
	}

	for i := range denseRes.PerOrbit {
		d, s := denseRes.PerOrbit[i], topkRes.PerOrbit[i]
		if d.Trusted != s.Trusted || d.Gamma != s.Gamma || d.Iters != s.Iters {
			t.Fatalf("orbit %d: dense %+v vs topk %+v", i, d, s)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := denseRes.M.At(i, j)
			got, ok := topkRes.Sim.At(i, j)
			if !ok || got != want {
				t.Fatalf("score (%d,%d): dense %v, topk %v (ok=%v)", i, j, want, got, ok)
			}
		}
	}
	dp, tp := denseRes.Predict(), topkRes.Predict()
	for i := range dp {
		if dp[i] != tp[i] {
			t.Fatalf("predict[%d]: dense %d, topk %d", i, dp[i], tp[i])
		}
	}
	dm := align.GreedyMatch(denseRes.M)
	tm := topkRes.MatchOneToOne()
	for i := range dm {
		if dm[i] != tm[i] {
			t.Fatalf("match[%d]: dense-greedy %d, topk %d", i, dm[i], tm[i])
		}
	}
	dRep := metrics.Evaluate(denseRes.M, truth, 1, 5, 10)
	tRep := metrics.EvaluateSim(topkRes.Sim, truth, 1, 5, 10)
	if dRep.MRR != tRep.MRR || dRep.PrecisionAt[1] != tRep.PrecisionAt[1] || dRep.PrecisionAt[10] != tRep.PrecisionAt[10] {
		t.Fatalf("evaluation: dense %v vs topk %v", dRep, tRep)
	}
}

// TestAlignTopKBounded runs the top-k backend with a small k on a pair
// where it genuinely prunes, and checks the run stays functional: sparse
// result shape, candidate budget respected, decent accuracy on an easy
// pair.
func TestAlignTopKBounded(t *testing.T) {
	n := 60
	gs, gt, truth := noisyPair(n, 0.05, 5)
	cfg := quickConfig(Full)
	cfg.Similarity = SimTopK
	cfg.CandidateK = 8
	res, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimBackend != "topk" || res.CandidateK != 8 {
		t.Fatalf("backend %q k=%d", res.SimBackend, res.CandidateK)
	}
	rows, cols := res.Sim.Dims()
	if rows != n || cols != n {
		t.Fatalf("sim dims %dx%d", rows, cols)
	}
	// The integrated candidate union across K orbits is bounded by K·k.
	maxUnion := len(res.PerOrbit) * 8
	for i := 0; i < rows; i++ {
		count := 0
		res.Sim.Scan(i, func(int, float64) { count++ })
		if count == 0 || count > maxUnion {
			t.Fatalf("row %d has %d candidates (bound %d)", i, count, maxUnion)
		}
	}
	rep := metrics.EvaluateSim(res.Sim, truth, 1)
	if rep.PrecisionAt[1] < 0.5 {
		t.Fatalf("p@1 = %.3f under top-k on an easy pair", rep.PrecisionAt[1])
	}
}

// TestAlignNegativeCandidateK: a negative candidate count is a caller
// bug, reported as ErrBadCandidateK rather than silently defaulted.
func TestAlignNegativeCandidateK(t *testing.T) {
	gs, gt, _ := noisyPair(12, 0, 1)
	cfg := quickConfig(LowOrder)
	cfg.CandidateK = -1
	if _, err := Align(gs, gt, cfg); !errors.Is(err, ErrBadCandidateK) {
		t.Fatalf("err = %v, want ErrBadCandidateK", err)
	}
}

// TestResolveSimilarity covers the auto crossover and the candidate-count
// defaulting.
func TestResolveSimilarity(t *testing.T) {
	cases := []struct {
		name        string
		cfg         Config
		ns, nt      int
		wantBackend SimBackend
		wantK       int
	}{
		{"auto small stays dense", Config{}, 1000, 1000, SimDense, 0},
		{"auto large flips to topk", Config{}, 5000, 5000, SimTopK, 40},
		{"forced dense stays dense even huge", Config{Similarity: SimDense}, 9000, 9000, SimDense, 0},
		{"forced topk on small pair", Config{Similarity: SimTopK}, 100, 80, SimTopK, 40},
		{"explicit k wins", Config{Similarity: SimTopK, CandidateK: 7}, 100, 80, SimTopK, 7},
		{"k clamped to pair size", Config{Similarity: SimTopK, CandidateK: 500}, 100, 80, SimTopK, 100},
		{"default k floors at 32", Config{Similarity: SimTopK, M: 5}, 5000, 5000, SimTopK, 32},
		{"forced ann on small pair", Config{Similarity: SimANN}, 100, 80, SimANN, 40},
		{"auto huge flips to ann", Config{}, 40000, 40000, SimANN, 40},
		{"auto mid-size stays topk", Config{}, 30000, 30000, SimTopK, 40},
		{"explicit k wins on ann", Config{Similarity: SimANN, CandidateK: 7}, 100, 80, SimANN, 7},
	}
	for _, tc := range cases {
		b, k := tc.cfg.ResolveSimilarity(tc.ns, tc.nt)
		if b != tc.wantBackend || k != tc.wantK {
			t.Errorf("%s: got (%v, %d), want (%v, %d)", tc.name, b, k, tc.wantBackend, tc.wantK)
		}
	}
}

// TestSimBackendJSON locks the config wire format: backends travel by
// name, unknown names fail, and the zero value (auto) is omitted.
func TestSimBackendJSON(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SimBackend
	}{{"auto", SimAuto}, {"dense", SimDense}, {"topk", SimTopK}, {"TOP-K", SimTopK}, {"ann", SimANN}, {"LSH", SimANN}} {
		got, err := ParseSimBackend(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSimBackend(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSimBackend("cosine"); err == nil {
		t.Error("unknown backend accepted")
	}
	var s SimBackend
	if err := s.UnmarshalText([]byte("topk")); err != nil || s != SimTopK {
		t.Errorf("UnmarshalText: %v, %v", s, err)
	}
	blob, err := SimTopK.MarshalText()
	if err != nil || string(blob) != "topk" {
		t.Errorf("MarshalText: %q, %v", blob, err)
	}
}
