package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/htc-align/htc/internal/align"
	"github.com/htc-align/htc/internal/ann"
	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/nn"
	"github.com/htc-align/htc/internal/par"
	"github.com/htc-align/htc/internal/refine"
)

// ErrAttrMismatch reports incompatible attribute spaces between the two
// input graphs.
var ErrAttrMismatch = errors.New("core: source and target attribute dimensions differ")

// ErrBadAttrs reports non-finite (NaN/Inf) attribute values, which would
// silently poison training.
var ErrBadAttrs = errors.New("core: attributes contain non-finite values")

// ErrBadCandidateK reports a negative top-k candidate count (0 selects
// the automatic default; anything below is a caller bug).
var ErrBadCandidateK = errors.New("core: candidate_k must be ≥ 1 (or 0 for the automatic default)")

// ErrBadAnnParam reports an out-of-range ANN knob (negative, or a code
// width beyond ann.MaxBits).
var ErrBadAnnParam = errors.New("core: invalid ann parameter")

// ErrIgnoredSimKnob reports a similarity knob that the resolved backend
// would silently ignore — candidate_k under dense, ann_bits/ann_probes
// under dense or topk. Rejecting the contradiction beats pretending the
// knob took effect.
var ErrIgnoredSimKnob = errors.New("core: similarity knob ignored by the resolved backend")

// ErrBadPrecision reports an invalid precision tier: an unknown enum
// value, or the float32 tier under a resolved dense backend (which has
// no reduced-precision path — the contradiction is rejected rather than
// silently run in float64).
var ErrBadPrecision = errors.New("core: invalid precision")

// ErrBadRefineParam reports an out-of-range refinement knob: a negative
// iteration count or token budget, or a token budget configured on a run
// with zero refinement iterations (which would silently ignore it).
var ErrBadRefineParam = errors.New("core: invalid refine parameter")

// OrbitOutcome summarises one orbit's contribution to the final alignment.
type OrbitOutcome struct {
	// Orbit is the orbit index (or diffusion order for HTC-DT).
	Orbit int
	// Trusted is the maximal trusted-pair count Tmax of Algorithm 2.
	Trusted int
	// Gamma is the posterior importance weight γk of Eq. 15.
	Gamma float64
	// Iters is the number of fine-tuning iterations run (1 when
	// fine-tuning is disabled).
	Iters int
}

// Result is the output of one pipeline run.
type Result struct {
	// M is the final ns×nt alignment matrix (higher scores mean more
	// likely anchors). It is populated only by the dense similarity
	// backend; under the top-k backend the scores live in Sim — never
	// materialising this matrix is that backend's whole point.
	M *dense.Matrix
	// Sim is the final alignment representation, whatever the backend:
	// a dense matrix wrapper or a per-node candidate list. All score
	// consumers (Predict, matching, evaluation) go through it.
	Sim align.Sim
	// SimBackend names the similarity backend the run resolved to
	// ("dense", "topk" or "ann") — SimAuto configs report their concrete
	// choice.
	SimBackend string
	// CandidateK is the per-node candidate count of a top-k or ann run
	// (0 on dense runs).
	CandidateK int
	// AnnBits and AnnProbes are the resolved LSH parameters of an ann
	// run — the code width and multi-probe budget actually used, whether
	// configured or auto-sized (0 on dense and topk runs).
	AnnBits, AnnProbes int
	// AnnPoolCap echoes the configured per-query pool bound of an ann run
	// (0 when unbounded, and on dense and topk runs).
	AnnPoolCap int
	// Precision names the numeric tier the fine-tuning stages ran in
	// ("f64" or "f32") — PrecisionAuto configs report their concrete
	// choice, like SimBackend does.
	Precision string
	// Ann is the merged skew-observability block of an ann run's LSH
	// indices — both directions of every orbit's fine-tuning loop,
	// accumulated over all iterations. Nil on dense and topk runs.
	Ann *AnnStats
	// PreRefineSim preserves the stage-5 integrated representation when
	// refinement ran (Config.RefineIters > 0), so callers can report
	// refined versus unrefined quality side by side. Nil when refinement
	// was skipped — Sim then is the stage-5 output itself.
	PreRefineSim align.Sim
	// RefineMNC traces matched-neighborhood consistency across refinement
	// iterations: RefineMNC[0] is the pre-refinement value, RefineMNC[i]
	// the value after iteration i. Nil when refinement was skipped.
	RefineMNC []float64
	// RefineTokenK is the token-match budget refinement resolved to — the
	// configured value, or the row candidate budget when the config left
	// it automatic. Zero when refinement was skipped.
	RefineTokenK int
	// PerOrbit reports each orbit's trusted-pair count and weight,
	// ordered by orbit index — the data behind the paper's Fig. 6.
	PerOrbit []OrbitOutcome
	// Timings decomposes the run's wall-clock cost (Fig. 8).
	Timings StageTimings
	// LossHistory is the training loss Γ per epoch.
	LossHistory []float64
	// Workers is the CPU budget the run actually used (Config.Workers
	// resolved against GOMAXPROCS). It never affects the numbers above —
	// parallelism is a pure performance knob.
	Workers int
	// SourceEmbeddings and TargetEmbeddings hold the per-orbit node
	// embeddings of each orbit's best fine-tuning iteration. They are
	// populated only when Config.KeepEmbeddings is set (the Fig. 11
	// visualisation uses them) to keep normal runs lean.
	SourceEmbeddings, TargetEmbeddings []*dense.Matrix
}

// AnnStats is the JSON-facing summary of an ann run's index statistics
// (internal/ann.Stats plus the derived ratios): hash balance, query-side
// pool work and incremental-refit reuse. The server embeds it in align
// results; the CLIs print it.
type AnnStats struct {
	// Fits and RowsHashed count index (re)builds across the run and the
	// rows hashed by them.
	Fits       int64 `json:"fits"`
	RowsHashed int64 `json:"rows_hashed"`
	// Buckets, MaxBucket and RehashedBuckets describe hash balance: the
	// first-level table size, the largest first-level bucket seen, and
	// how many oversized buckets received a second-level table.
	Buckets         int   `json:"buckets"`
	MaxBucket       int   `json:"max_bucket"`
	RehashedBuckets int64 `json:"rehashed_buckets"`
	// OccupancyLog2[i] counts non-empty buckets holding [2^(i-1), 2^i)
	// rows on the last fit (bin 1 = exactly 1 row).
	OccupancyLog2 []int64 `json:"occupancy_log2,omitempty"`
	// Queries, PoolRows, PoolRowsMean and PoolRowsMax describe query-side
	// work: re-rank pool totals, mean and worst case per query.
	Queries      int64   `json:"queries"`
	PoolRows     int64   `json:"pool_rows"`
	PoolRowsMean float64 `json:"pool_rows_mean"`
	PoolRowsMax  int     `json:"pool_rows_max"`
	// RowsReused, RowsRecoded and RefitReuseRatio report incremental
	// refit: how many row codes survived fine-tune iterations unchanged
	// versus recomputed, and the reused fraction.
	RowsReused      int64   `json:"rows_reused"`
	RowsRecoded     int64   `json:"rows_recoded"`
	RefitReuseRatio float64 `json:"refit_reuse_ratio"`
}

// annStatsFrom converts the internal counter block into the JSON form,
// materialising the derived ratios.
func annStatsFrom(s ann.Stats) *AnnStats {
	return &AnnStats{
		Fits:            s.Fits,
		RowsHashed:      s.Rows,
		Buckets:         s.Buckets,
		MaxBucket:       s.MaxBucket,
		RehashedBuckets: s.Rehashed,
		OccupancyLog2:   s.Occupancy,
		Queries:         s.Queries,
		PoolRows:        s.PoolRows,
		PoolRowsMean:    s.PoolRowsMean(),
		PoolRowsMax:     s.PoolRowsMax,
		RowsReused:      s.Reused,
		RowsRecoded:     s.Recoded,
		RefitReuseRatio: s.ReuseRatio(),
	}
}

// Predict returns, for every source node, the target node with the highest
// alignment score (−1 for nodes without candidates under the top-k
// backend). Different source nodes may map to the same target; use
// MatchOneToOne for an injective assignment.
func (r *Result) Predict() []int {
	if r.Sim != nil {
		return r.Sim.Predict()
	}
	return r.M.ArgmaxRows()
}

// NodeNamer maps contiguous node indices back to the external IDs a real
// dataset keys its nodes by; *ingest.NodeMap is the canonical
// implementation. It lives here as an interface so results can speak
// names without the core depending on the ingestion layer.
type NodeNamer interface {
	// ID returns the external id of node index i.
	ID(i int) string
}

// PredictNames renders Predict through the pair's identity dictionaries:
// one (source id, target id) pair per source node with a prediction.
// Source nodes without candidates (possible under the top-k backend) are
// omitted.
func (r *Result) PredictNames(src, tgt NodeNamer) [][2]string {
	pred := r.Predict()
	out := make([][2]string, 0, len(pred))
	for s, t := range pred {
		if t < 0 {
			continue
		}
		out = append(out, [2]string{src.ID(s), tgt.ID(t)})
	}
	return out
}

// MatchOneToOne extracts an injective assignment from the alignment
// scores. Dense runs use the exact Hungarian optimum up to 1500×1500
// scores and the greedy 1/2-approximation beyond (the O(n³) exact solve
// stops being worth it); top-k runs use the candidate-aware greedy
// matcher, which only ever touches the O(n·k) represented pairs.
func (r *Result) MatchOneToOne() []int {
	if r.Sim != nil && r.Sim.Backend() == align.BackendTopK {
		return align.GreedyMatchSim(r.Sim)
	}
	m := r.M
	if m == nil {
		m = r.Sim.Dense()
	}
	if m.Rows*m.Cols > 1500*1500 {
		return align.GreedyMatch(m)
	}
	return align.HungarianMatch(m)
}

// Align runs the configured HTC pipeline on a source and target graph.
// Graphs without attributes are given structural surrogate features; when
// only one side has attributes, or the dimensions differ, Align fails with
// ErrAttrMismatch (alignment assumes a shared attribute space).
//
// Align is the one-shot convenience wrapper over the staged API: it is
// exactly Prepare followed by Prepared.Align. Callers that run several
// configs over the same pair should Prepare once and Align repeatedly —
// the expensive stage-1/2 artifacts are then built once instead of per
// run.
func Align(gs, gt *graph.Graph, cfg Config) (*Result, error) {
	return AlignContext(context.Background(), gs, gt, cfg)
}

// AlignContext is Align with cooperative cancellation: the context is
// checked at every stage boundary, between training epochs and between
// fine-tuning iterations. When ctx is cancelled mid-run, AlignContext
// stops promptly and returns ctx's error, so a server can reclaim the
// worker goroutine of an abandoned job instead of burning CPU to the end.
func AlignContext(ctx context.Context, gs, gt *graph.Graph, cfg Config) (*Result, error) {
	start := time.Now()
	p, err := PrepareContext(ctx, gs, gt, cfg)
	if err != nil {
		return nil, err
	}
	res, err := p.AlignContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	// The eager artifact build happened inside Prepare; fold its cost back
	// into this run's decomposition so one-shot timings read as before.
	res.Timings.OrbitCounting += p.prep.OrbitCounting
	res.Timings.Laplacians += p.prep.Laplacians
	res.Timings.OrbitCountingBytes += p.prep.OrbitCountingBytes
	res.Timings.LaplaciansBytes += p.prep.LaplaciansBytes
	res.Timings.TotalBytes += p.prep.OrbitCountingBytes + p.prep.LaplaciansBytes
	res.Timings.Total = time.Since(start)
	return res, nil
}

// Align runs pipeline stages 3–5 (training, fine-tuning, integration)
// over the prepared pair under the given config, reusing the memoised
// stage-1/2 artifacts — any artifacts the config needs that were not
// built yet are built now and memoised for the next call. The result is
// bit-identical to the one-shot Align of the same graphs and config.
func (p *Prepared) Align(cfg Config) (*Result, error) {
	return p.AlignContext(context.Background(), cfg)
}

// AlignContext is Prepared.Align with cooperative cancellation, with the
// same promptness contract as the package-level AlignContext.
func (p *Prepared) AlignContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.ValidateSimilarity(p.gs.N(), p.gt.N()); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	start := time.Now()
	startAlloc := allocBytes()
	obs := newEmitter(cfg.Progress)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// One worker budget governs every stage: the fan-outs below divide it
	// so that concurrent subtasks never oversubscribe the cores the caller
	// granted (the server hands each job a slice of the machine).
	workers := par.Resolve(cfg.Workers)
	res := &Result{Workers: workers}

	// Stages 1–2: resolve the aggregation artifacts, building them only
	// if this is the first config to need them.
	sets, err := p.resolveSets(ctx, cfg, workers, &res.Timings, obs)
	if err != nil {
		return nil, err
	}
	setS, setT := sets.s, sets.t
	xs, xt := p.xs, p.xt
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 3: multi-orbit-aware training (Algorithm 1). Train fans the
	// per-orbit forward/backward passes of each epoch across the budget.
	t0 := time.Now()
	a0 := allocBytes()
	src := &nn.GraphData{Laps: setS.Laplacians, X: xs}
	tgt := &nn.GraphData{Laps: setT.Laplacians, X: xt}
	enc := newEncoder(cfg, xs.Cols)
	trainCfg := nn.TrainConfig{Epochs: cfg.Epochs, LR: cfg.LR, Patience: cfg.Patience, Workers: workers, Ctx: ctx}
	if obs != nil {
		epochs := cfg.Epochs
		trainCfg.OnEpoch = func(epoch int, loss float64) {
			obs.emit(Progress{Stage: StageTrain, Done: epoch + 1, Total: epochs, Orbit: -1, Loss: loss})
		}
	}
	res.LossHistory = nn.Train(enc, src, tgt, trainCfg)
	res.Timings.Training = time.Since(t0)
	res.Timings.TrainingBytes = allocBytes() - a0
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 4: per-orbit alignment matrices, fine-tuned when the variant
	// calls for it (Algorithm 2). The encoder is read-only here — only
	// per-orbit aggregation coefficients are tuned — so the orbits are
	// fully independent and fan out across the budget; any budget left
	// over (fewer orbits than workers) parallelises each orbit's kernels
	// instead.
	t0 = time.Now()
	a0 = allocBytes()
	k := setS.K()
	sims := make([]align.Sim, k)
	trusted := make([]int, k)
	res.PerOrbit = make([]OrbitOutcome, k)
	// Resolve the similarity backend against the concrete pair size
	// (SimAuto picks here) and record the choice in the result.
	backend, candidateK := cfg.ResolveSimilarity(p.gs.N(), p.gt.N())
	res.SimBackend = backend.String()
	res.CandidateK = candidateK
	var annParams ann.Params
	if backend == SimANN {
		bits, probes := cfg.ResolveAnn(p.gs.N(), p.gt.N())
		res.AnnBits, res.AnnProbes = bits, probes
		res.AnnPoolCap = cfg.AnnPoolCap
		annParams = ann.Params{Bits: bits, Probes: probes, PoolCap: cfg.AnnPoolCap, Seed: cfg.Seed}
	}
	// Resolve the precision tier the same way (PrecisionAuto picks here)
	// and record the concrete choice.
	prec := cfg.ResolvePrecision(p.gs.N(), p.gt.N())
	res.Precision = prec.String()
	// Each in-flight fine-tune holds its similarity working set — a few
	// ns×nt buffers on the dense backend, O((ns+nt)·k) candidate
	// structures on top-k — so on huge pairs the fan-out is additionally
	// capped by a scratch-memory budget: beyond it, concurrency would
	// multiply gigabyte-sized working sets, not speed; the unused share
	// of the budget flows into each orbit's kernels instead.
	slots := fineTuneConcurrencyCap(p.gs.N(), p.gt.N(), candidateK)
	if slots > k {
		slots = k
	}
	outer, inner := par.SplitOuterInner(workers, slots)
	ftCfg := align.FineTuneConfig{M: cfg.M, Beta: cfg.Beta, MaxIters: cfg.MaxFineTuneIters, KnownPairs: cfg.Seeds, Workers: inner, TopK: candidateK, Ann: annParams, F32: prec == PrecisionF32, KeepEmbeddings: cfg.KeepEmbeddings, Ctx: ctx}
	if !cfg.Variant.usesFineTune() {
		ftCfg.MaxIters = 1 // single pass: score + trusted count, no reinforcement rounds
		ftCfg.KnownPairs = nil
	}
	if cfg.KeepEmbeddings {
		res.SourceEmbeddings = make([]*dense.Matrix, k)
		res.TargetEmbeddings = make([]*dense.Matrix, k)
	}
	fts := make([]*align.FineTuneResult, k)
	var orbitsDone atomic.Int64
	par.Tasks(outer, k, func(i int) {
		if ctx.Err() != nil {
			return // cancelled: remaining orbits are skipped
		}
		taskCfg := ftCfg
		if obs != nil {
			taskCfg.OnIter = func(iter int) {
				obs.emit(Progress{Stage: StageFineTune, Done: int(orbitsDone.Load()), Total: k, Orbit: i, Iters: iter})
			}
		}
		fts[i] = align.FineTune(enc, setS.Laplacians[i], setT.Laplacians[i], xs, xt, taskCfg)
		obs.emit(Progress{Stage: StageFineTune, Done: int(orbitsDone.Add(1)), Total: k, Orbit: i, Iters: fts[i].Iters})
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var annTotals ann.Stats
	for i, ft := range fts {
		sims[i] = ft.Sim
		trusted[i] = ft.Trusted
		res.PerOrbit[i] = OrbitOutcome{Orbit: i, Trusted: ft.Trusted, Iters: ft.Iters}
		if ft.AnnStats != nil {
			annTotals.Merge(*ft.AnnStats)
		}
		if cfg.KeepEmbeddings {
			res.SourceEmbeddings[i] = ft.Hs
			res.TargetEmbeddings[i] = ft.Ht
		}
	}
	if backend == SimANN {
		res.Ann = annStatsFrom(annTotals)
	}
	res.Timings.FineTuning = time.Since(t0)
	res.Timings.FineTuningBytes = allocBytes() - a0
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 5: posterior importance integration (Eq. 15), backend-generic
	// — a weighted matrix sum on dense, a per-row candidate merge on
	// top-k.
	t0 = time.Now()
	a0 = allocBytes()
	sim, gammas := align.IntegrateSims(sims, trusted)
	for i := range res.PerOrbit {
		res.PerOrbit[i].Gamma = gammas[i]
	}
	res.Sim = sim
	if d, ok := sim.(align.DenseSim); ok {
		res.M = d.M
	}
	res.Timings.Integration = time.Since(t0)
	res.Timings.IntegrationBytes = allocBytes() - a0
	obs.emit(Progress{Stage: StageIntegrate, Done: 1, Total: 1, Orbit: -1})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 6: RefiNA iterative refinement — off by default (RefineIters
	// = 0 leaves the stage-5 output untouched, bit for bit). When enabled,
	// the pre-refinement representation is kept on the result so callers
	// can report refined versus unrefined quality side by side. Refine
	// never mutates its input, so no defensive clone is needed.
	if cfg.RefineIters > 0 {
		t0 = time.Now()
		a0 = allocBytes()
		ropts := refine.Options{Iters: cfg.RefineIters, TokenK: cfg.RefineTokenK, Workers: workers, Ctx: ctx}
		if obs != nil {
			total := cfg.RefineIters
			ropts.OnIter = func(iter int, mnc float64) {
				obs.emit(Progress{Stage: StageRefine, Done: iter, Total: total, Orbit: -1})
			}
		}
		rres, err := refine.Refine(res.Sim, p.gs, p.gt, ropts)
		if err != nil {
			return nil, err
		}
		res.PreRefineSim = res.Sim
		res.Sim = rres.Sim
		res.RefineMNC = rres.MNC
		res.RefineTokenK = rres.TokenK
		res.M = nil
		if d, ok := rres.Sim.(align.DenseSim); ok {
			res.M = d.M
		}
		res.Timings.Refinement = time.Since(t0)
		res.Timings.RefinementBytes = allocBytes() - a0
	}

	res.Timings.Total = time.Since(start)
	res.Timings.TotalBytes = allocBytes() - startAlloc
	return res, nil
}

// fineTuneConcurrencyCap bounds how many per-orbit fine-tuning loops may
// run at once, keeping their combined similarity scratch under ~2 GiB.
// On the dense backend each loop holds ~4 ns×nt float64 buffers
// (similarity, its transpose, LISI, best-M); 20k×20k pairs degrade to
// sequential orbits (each still using the full kernel budget) instead of
// multiplying gigabyte working sets. On the top-k backend (candidateK
// ≥ 1) the working set is the forward/backward candidate structures plus
// block scratch — O((ns+nt)·k) — so far larger pairs keep their orbit
// fan-out.
func fineTuneConcurrencyCap(ns, nt, candidateK int) int {
	const budgetBytes = 2 << 30
	var per int64
	if candidateK > 0 {
		// 12 bytes per candidate (id + score) in each direction, doubled
		// for the snapshot the result keeps, plus slack for block scratch.
		per = 48 * int64(ns+nt) * int64(candidateK)
	} else {
		per = 4 * 8 * int64(ns) * int64(nt)
	}
	if per <= 0 {
		return 1
	}
	cap := int(budgetBytes / per)
	if cap < 1 {
		return 1
	}
	return cap
}

func newEncoder(cfg Config, inDim int) *nn.Encoder {
	rng := rand.New(rand.NewSource(cfg.Seed))
	dims := []int{inDim, cfg.Hidden, cfg.Embed}
	acts := []nn.Activation{nn.Tanh{}, nn.Tanh{}}
	if cfg.Layers == 3 {
		dims = []int{inDim, cfg.Hidden, cfg.Hidden, cfg.Embed}
		acts = []nn.Activation{nn.Tanh{}, nn.Tanh{}, nn.Tanh{}}
	}
	return nn.NewEncoder(dims, acts, rng)
}

// featurePair resolves the attribute matrices of both graphs. When neither
// graph carries attributes, degree-based surrogate features are generated
// so that purely structural alignment still works.
func featurePair(gs, gt *graph.Graph) (*dense.Matrix, *dense.Matrix, error) {
	switch {
	case gs.Attrs() == nil && gt.Attrs() == nil:
		return structuralFeatures(gs), structuralFeatures(gt), nil
	case gs.Attrs() == nil || gt.Attrs() == nil:
		return nil, nil, fmt.Errorf("%w: one graph has attributes, the other does not", ErrAttrMismatch)
	case gs.Attrs().Cols != gt.Attrs().Cols:
		return nil, nil, fmt.Errorf("%w: %d vs %d", ErrAttrMismatch, gs.Attrs().Cols, gt.Attrs().Cols)
	}
	for _, x := range [2]*dense.Matrix{gs.Attrs(), gt.Attrs()} {
		for _, v := range x.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, nil, ErrBadAttrs
			}
		}
	}
	return gs.Attrs(), gt.Attrs(), nil
}

// structuralFeatures builds permutation-equivariant surrogate attributes:
// a constant channel, normalised degree and log-degree. Using only
// structural quantities keeps Proposition 1 applicable when no shared
// attribute space exists.
func structuralFeatures(g *graph.Graph) *dense.Matrix {
	x := dense.New(g.N(), 3)
	maxDeg := float64(g.MaxDegree())
	if maxDeg == 0 {
		maxDeg = 1
	}
	for i := 0; i < g.N(); i++ {
		d := float64(g.Degree(i))
		row := x.Row(i)
		row[0] = 1
		row[1] = d / maxDeg
		row[2] = math.Log1p(d) / math.Log1p(maxDeg)
	}
	return x
}
