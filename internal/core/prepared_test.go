package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"github.com/htc-align/htc/internal/graph"
)

// sweepVariants is the Table-III style roster the staged API exists for:
// every pipeline variant plus the binary-GOM ablation, all over one pair.
func sweepVariants() []Config {
	var cfgs []Config
	for _, v := range Variants() {
		cfgs = append(cfgs, quickConfig(v))
	}
	binary := quickConfig(Full)
	binary.Binary = true
	cfgs = append(cfgs, binary)
	return cfgs
}

// TestPreparedAlignEquivalence is the staged API's core contract: for
// every variant, Prepare + Prepared.Align must be bit-identical to the
// one-shot Align — same alignment matrix, same per-orbit outcomes, same
// loss history.
func TestPreparedAlignEquivalence(t *testing.T) {
	gs, gt, _ := noisyPair(40, 0.1, 5)
	p, err := Prepare(gs, gt, quickConfig(Full))
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range sweepVariants() {
		name := cfg.Variant.String()
		if cfg.Binary {
			name += "-B"
		}
		t.Run(name, func(t *testing.T) {
			oneShot, err := Align(gs, gt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			staged, err := p.Align(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(oneShot.M.Data, staged.M.Data) {
				t.Error("alignment matrices differ between one-shot and staged runs")
			}
			if !reflect.DeepEqual(oneShot.PerOrbit, staged.PerOrbit) {
				t.Errorf("per-orbit outcomes differ:\n one-shot %+v\n staged   %+v", oneShot.PerOrbit, staged.PerOrbit)
			}
			if !reflect.DeepEqual(oneShot.LossHistory, staged.LossHistory) {
				t.Error("loss histories differ between one-shot and staged runs")
			}
		})
	}
}

// TestPreparedArtifactReuse proves the sweep path skips stages 1–2: one
// Prepared absorbs a whole variant sweep with a single orbit-counting
// pass and one artifact build per distinct aggregation family.
func TestPreparedArtifactReuse(t *testing.T) {
	gs, gt, _ := noisyPair(40, 0.1, 6)
	p, err := Prepare(gs, gt, quickConfig(Full))
	if err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.OrbitCountRuns != 1 || s.SetBuilds != 1 {
		t.Fatalf("after Prepare(Full): %+v, want 1 count run and 1 set build", s)
	}
	for _, cfg := range sweepVariants() {
		if _, err := p.Align(cfg); err != nil {
			t.Fatalf("%v: %v", cfg.Variant, err)
		}
	}
	// Distinct artifact sets: orbits(K=5), orbits(K=5,binary),
	// diffusion(5), low-order — HighOrder shares Full's set, LowOrderFT
	// shares LowOrder's, and no config recounts orbits.
	s := p.Stats()
	if s.OrbitCountRuns != 1 {
		t.Errorf("orbit counting ran %d times across the sweep, want exactly 1", s.OrbitCountRuns)
	}
	if s.SetBuilds != 4 || s.Sets != 4 {
		t.Errorf("artifact sets: %+v, want 4 builds / 4 memoised", s)
	}
	// A second full sweep builds nothing at all.
	for _, cfg := range sweepVariants() {
		if _, err := p.Align(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if s2 := p.Stats(); s2 != s {
		t.Errorf("repeat sweep rebuilt artifacts: %+v -> %+v", s, s2)
	}
}

// TestPreparedConcurrentAligns runs the whole sweep concurrently over one
// Prepared (the server's artifact-sharing scenario) and requires every
// result to match its serial counterpart. Run under -race in CI.
func TestPreparedConcurrentAligns(t *testing.T) {
	gs, gt, _ := noisyPair(40, 0.1, 7)
	p, err := Prepare(gs, gt, quickConfig(LowOrder)) // eager build of the *wrong* family: everything else is lazy
	if err != nil {
		t.Fatal(err)
	}
	cfgs := sweepVariants()
	want := make([]*Result, len(cfgs))
	for i, cfg := range cfgs {
		if want[i], err = Align(gs, gt, cfg); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]*Result, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			r, err := p.Align(cfg)
			if err != nil {
				t.Errorf("concurrent align %d: %v", i, err)
				return
			}
			got[i] = r
		}(i, cfg)
	}
	wg.Wait()
	for i := range cfgs {
		if got[i] == nil {
			continue
		}
		if !reflect.DeepEqual(want[i].M.Data, got[i].M.Data) {
			t.Errorf("config %d: concurrent staged result differs from serial one-shot", i)
		}
	}
	if s := p.Stats(); s.OrbitCountRuns != 1 {
		t.Errorf("concurrent sweep counted orbits %d times, want 1", s.OrbitCountRuns)
	}
}

// TestPreparedSetEviction bounds per-pair artifact accretion: a stream
// of distinct aggregation families (client-controllable via diffusion α)
// must not grow the memo without limit, and evicted families must simply
// rebuild on demand with unchanged results.
func TestPreparedSetEviction(t *testing.T) {
	gs, gt, _ := noisyPair(30, 0.1, 11)
	cfg := quickConfig(DiffusionFT)
	cfg.Epochs = 2
	p, err := Prepare(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.Align(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxMemoisedSets+4; i++ {
		c := cfg
		c.DiffusionAlpha = 0.10 + float64(i+1)*0.01
		if _, err := p.Align(c); err != nil {
			t.Fatal(err)
		}
	}
	if s := p.Stats(); s.Sets > maxMemoisedSets {
		t.Errorf("memoised %d artifact sets, cap is %d", s.Sets, maxMemoisedSets)
	}
	// The original family was evicted long ago; re-aligning rebuilds it
	// with identical results.
	again, err := p.Align(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.M.Data, again.M.Data) {
		t.Error("post-eviction rebuild changed the result")
	}
}

// TestPairHash pins the content-hash contract: identical pairs collide,
// any structural or attribute change separates.
func TestPairHash(t *testing.T) {
	gs, gt, _ := noisyPair(30, 0.1, 8)
	h := PairHash(gs, gt)
	if h == "" || h != PairHash(gs, gt) {
		t.Fatal("PairHash must be deterministic and non-empty")
	}
	if PairHash(gt, gs) == h {
		t.Error("swapping source and target should change the hash")
	}

	// Rebuild gs identically: equal content, equal hash.
	b := graph.NewBuilder(gs.N())
	for _, e := range gs.Edges() {
		b.AddEdge(int(e[0]), int(e[1]))
	}
	clone := b.Build().WithAttrs(gs.Attrs().Clone())
	if PairHash(clone, gt) != h {
		t.Error("structurally identical pair should hash equally")
	}

	// One extra edge changes it.
	b2 := graph.NewBuilder(gs.N() + 1)
	for _, e := range gs.Edges() {
		b2.AddEdge(int(e[0]), int(e[1]))
	}
	b2.AddEdge(0, gs.N())
	if PairHash(b2.Build(), gt) == h {
		t.Error("different graphs should hash differently")
	}

	// One attribute bit changes it.
	x := gs.Attrs().Clone()
	x.Data[0] += 1e-12
	if PairHash(clone.WithAttrs(x), gt) == h {
		t.Error("attribute changes should change the hash")
	}

	p, err := Prepare(gs, gt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Hash() != h {
		t.Error("Prepared.Hash should equal PairHash of its inputs")
	}
}

// TestProgressObserver checks the observation contract: stages arrive in
// pipeline order, training reports every epoch, fine-tuning covers every
// orbit, and a staged re-run over warm artifacts skips the build stages.
func TestProgressObserver(t *testing.T) {
	gs, gt, _ := noisyPair(40, 0.1, 9)
	var mu sync.Mutex
	var events []Progress
	cfg := quickConfig(Full)
	cfg.Progress = func(ev Progress) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	res, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var stageOrder []string
	perStage := map[string]int{}
	for _, ev := range events {
		if len(stageOrder) == 0 || stageOrder[len(stageOrder)-1] != ev.Stage {
			stageOrder = append(stageOrder, ev.Stage)
		}
		perStage[ev.Stage]++
	}
	// Fine-tune events interleave across orbit goroutines but all carry
	// the same stage, so the first-occurrence order is deterministic.
	want := []string{StageOrbitCounts, StageLaplacians, StageTrain, StageFineTune, StageIntegrate}
	if !reflect.DeepEqual(stageOrder, want) {
		t.Errorf("stage order %v, want %v", stageOrder, want)
	}
	if perStage[StageTrain] != len(res.LossHistory) {
		t.Errorf("train events %d, want one per epoch (%d)", perStage[StageTrain], len(res.LossHistory))
	}
	orbitsDone := map[int]bool{}
	for _, ev := range events {
		if ev.Stage == StageFineTune {
			orbitsDone[ev.Orbit] = true
		}
	}
	if len(orbitsDone) != len(res.PerOrbit) {
		t.Errorf("fine-tune events cover %d orbits, want %d", len(orbitsDone), len(res.PerOrbit))
	}
	last := events[len(events)-1]
	if last.Stage != StageIntegrate || last.Done != 1 {
		t.Errorf("final event %+v, want integrate done", last)
	}

	// Warm re-run on a Prepared: no build-stage events.
	p, err := Prepare(gs, gt, quickConfig(Full))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Align(quickConfig(Full)); err != nil {
		t.Fatal(err)
	}
	events = nil
	warm := quickConfig(Full)
	warm.Progress = cfg.Progress
	if _, err := p.Align(warm); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Stage == StageOrbitCounts || ev.Stage == StageLaplacians {
			t.Errorf("warm staged run emitted build event %+v", ev)
		}
	}
}

// TestPreparedAlignCancelled mirrors the one-shot cancellation contract
// on the staged path.
func TestPreparedAlignCancelled(t *testing.T) {
	gs, gt, _ := noisyPair(40, 0.1, 3)
	p, err := Prepare(gs, gt, quickConfig(Full))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.AlignContext(ctx, quickConfig(Full)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled staged align: got %v, want context.Canceled", err)
	}
	if _, err := PrepareContext(ctx, gs, gt, quickConfig(Full)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled prepare: got %v, want context.Canceled", err)
	}
}
