package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/metrics"
)

// noisyPair builds a source graph and a target obtained by removing a
// fraction of edges and permuting node ids — the synthetic-dataset recipe
// of the paper's §V-A.
func noisyPair(n int, removeRatio float64, seed int64) (*graph.Graph, *graph.Graph, metrics.Truth) {
	rng := rand.New(rand.NewSource(seed))
	gs := graph.ErdosRenyi(n, 0.2, rng)
	x := dense.New(n, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	gs = gs.WithAttrs(x)

	b := graph.NewBuilder(n)
	for _, e := range gs.Edges() {
		if rng.Float64() >= removeRatio {
			b.AddEdge(int(e[0]), int(e[1]))
		}
	}
	gt := b.Build().WithAttrs(x.Clone())
	perm := graph.Permutation(n, rng)
	gt = graph.Relabel(gt, perm)
	return gs, gt, metrics.FromPerm(perm)
}

func quickConfig(v Variant) Config {
	return Config{
		Variant: v, K: 5, Hidden: 16, Embed: 8,
		Epochs: 40, M: 5, Seed: 1,
	}
}

func TestAlignPerfectPair(t *testing.T) {
	gs, gt, truth := noisyPair(40, 0, 2)
	res, err := Align(gs, gt, quickConfig(Full))
	if err != nil {
		t.Fatal(err)
	}
	rep := metrics.Evaluate(res.M, truth, 1)
	if rep.PrecisionAt[1] < 0.9 {
		t.Fatalf("p@1 = %v on a noise-free pair, want ≥ 0.9", rep.PrecisionAt[1])
	}
}

func TestAlignVariantsRun(t *testing.T) {
	gs, gt, truth := noisyPair(30, 0.1, 3)
	for _, v := range []Variant{Full, LowOrder, HighOrder, LowOrderFT, DiffusionFT} {
		res, err := Align(gs, gt, quickConfig(v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.M.Rows != 30 || res.M.Cols != 30 {
			t.Fatalf("%v: alignment shape %dx%d", v, res.M.Rows, res.M.Cols)
		}
		rep := metrics.Evaluate(res.M, truth, 1)
		t.Logf("%v: p@1=%.3f", v, rep.PrecisionAt[1])
	}
}

func TestAlignVariantOrbitCounts(t *testing.T) {
	gs, gt, _ := noisyPair(25, 0.1, 4)
	res, err := Align(gs, gt, quickConfig(LowOrder))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerOrbit) != 1 {
		t.Fatalf("HTC-L must use exactly 1 orbit, got %d", len(res.PerOrbit))
	}
	if res.Timings.OrbitCounting != 0 {
		t.Fatal("HTC-L must not pay for orbit counting")
	}

	res, err = Align(gs, gt, quickConfig(Full))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerOrbit) != 5 {
		t.Fatalf("K=5 run produced %d orbit outcomes", len(res.PerOrbit))
	}
}

func TestAlignGammasSumToOne(t *testing.T) {
	gs, gt, _ := noisyPair(30, 0.1, 5)
	res, err := Align(gs, gt, quickConfig(Full))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, o := range res.PerOrbit {
		if o.Gamma < 0 {
			t.Fatalf("negative gamma: %+v", o)
		}
		sum += o.Gamma
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("gammas sum to %v", sum)
	}
}

func TestAlignDeterministicForSeed(t *testing.T) {
	gs, gt, _ := noisyPair(25, 0.1, 6)
	r1, err := Align(gs, gt, quickConfig(Full))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Align(gs, gt, quickConfig(Full))
	if err != nil {
		t.Fatal(err)
	}
	if !r1.M.Equal(r2.M, 0) {
		t.Fatal("same seed must give bit-identical alignment")
	}
}

func TestAlignSeedChangesResult(t *testing.T) {
	gs, gt, _ := noisyPair(25, 0.1, 7)
	cfg := quickConfig(Full)
	r1, _ := Align(gs, gt, cfg)
	cfg.Seed = 999
	r2, _ := Align(gs, gt, cfg)
	if r1.M.Equal(r2.M, 0) {
		t.Fatal("different seeds should perturb the result")
	}
}

func TestAlignNoAttrsUsesStructuralFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	gs := graph.ErdosRenyi(20, 0.3, rng)
	perm := graph.Permutation(20, rng)
	gt := graph.Relabel(gs, perm)
	res, err := Align(gs, gt, quickConfig(Full))
	if err != nil {
		t.Fatal(err)
	}
	if res.M == nil {
		t.Fatal("no alignment produced")
	}
}

func TestAlignAttrMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	gs := graph.ErdosRenyi(10, 0.3, rng).WithAttrs(dense.New(10, 3))
	gt := graph.ErdosRenyi(10, 0.3, rng)
	if _, err := Align(gs, gt, quickConfig(Full)); !errors.Is(err, ErrAttrMismatch) {
		t.Fatalf("err = %v, want ErrAttrMismatch", err)
	}
	gt = gt.WithAttrs(dense.New(10, 5))
	if _, err := Align(gs, gt, quickConfig(Full)); !errors.Is(err, ErrAttrMismatch) {
		t.Fatalf("err = %v, want ErrAttrMismatch", err)
	}
}

func TestAlignTimingsPopulated(t *testing.T) {
	gs, gt, _ := noisyPair(25, 0.1, 10)
	res, err := Align(gs, gt, quickConfig(Full))
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timings
	if tm.Total <= 0 || tm.Training <= 0 || tm.FineTuning <= 0 || tm.OrbitCounting <= 0 {
		t.Fatalf("timings not populated: %v", tm)
	}
	if tm.Other() < 0 {
		t.Fatalf("Other() negative: %v", tm.Other())
	}
	if tm.String() == "" {
		t.Fatal("empty timing string")
	}
}

func TestAlignLossHistoryDecreases(t *testing.T) {
	gs, gt, _ := noisyPair(30, 0.1, 11)
	res, err := Align(gs, gt, quickConfig(Full))
	if err != nil {
		t.Fatal(err)
	}
	h := res.LossHistory
	if len(h) == 0 || h[len(h)-1] >= h[0] {
		t.Fatalf("loss history not decreasing: %v...%v", h[0], h[len(h)-1])
	}
}

func TestHigherOrderBeatsLowOrderOnClusteredGraph(t *testing.T) {
	// The headline claim (Table III): with structure-rich graphs, using
	// all orbits must not align worse than orbit 0 alone. We use a
	// clustered graph (many triangles) where higher-order information
	// actually exists, and attributes too weak to align on their own.
	rng := rand.New(rand.NewSource(12))
	gs := graph.PreferentialAttachment(60, 4, rng)
	x := dense.New(60, 2)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64() * 0.1
	}
	gs = gs.WithAttrs(x)
	perm := graph.Permutation(60, rng)
	gt := graph.Relabel(gs, perm)
	truth := metrics.FromPerm(perm)

	cfg := quickConfig(Full)
	cfg.K = 8
	full, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	low, err := Align(gs, gt, quickConfig(LowOrder))
	if err != nil {
		t.Fatal(err)
	}
	pFull := metrics.Evaluate(full.M, truth, 1).PrecisionAt[1]
	pLow := metrics.Evaluate(low.M, truth, 1).PrecisionAt[1]
	t.Logf("HTC p@1=%.3f, HTC-L p@1=%.3f", pFull, pLow)
	if pFull+0.05 < pLow {
		t.Fatalf("full HTC (%.3f) clearly worse than HTC-L (%.3f)", pFull, pLow)
	}
}

func TestVariantString(t *testing.T) {
	names := map[Variant]string{
		Full: "HTC", LowOrder: "HTC-L", HighOrder: "HTC-H",
		LowOrderFT: "HTC-LT", DiffusionFT: "HTC-DT", Variant(99): "Variant(99)",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.K != 13 || c.Hidden != 128 || c.Embed != 64 || c.Layers != 2 ||
		c.Epochs != 60 || c.LR != 0.01 || c.M != 20 || c.Beta != 1.1 {
		t.Fatalf("defaults = %+v", c)
	}
	c = Config{Layers: 3, K: 99}.withDefaults()
	if c.Layers != 3 {
		t.Fatal("Layers=3 must be honoured")
	}
	if c.K != 13 {
		t.Fatalf("K out of range must clamp to 13, got %d", c.K)
	}
}

func TestResultPredict(t *testing.T) {
	res := &Result{M: dense.FromRows([][]float64{{0.1, 0.9}, {0.8, 0.2}})}
	pred := res.Predict()
	if pred[0] != 1 || pred[1] != 0 {
		t.Fatalf("Predict = %v", pred)
	}
}
