package core

import (
	"errors"
	"testing"

	"github.com/htc-align/htc/internal/align"
	"github.com/htc-align/htc/internal/metrics"
)

// refineBackendConfigs enumerates one config per similarity backend for
// the same pair, so refinement properties can be asserted on all three.
func refineBackendConfigs(n int) map[string]Config {
	dense := quickConfig(Full)
	topk := dense
	topk.Similarity = SimTopK
	topk.CandidateK = 10
	ann := topk
	ann.Similarity = SimANN
	ann.AnnBits = 4
	ann.AnnProbes = 1 << 4
	return map[string]Config{"dense": dense, "topk": topk, "ann": ann}
}

// TestAlignRefineZeroItersBitIdentical is the stage-6 no-op contract:
// on every backend, RefineIters = 0 (the default) must leave the run bit
// for bit identical to one that never heard of refinement — same scores
// on every represented pair, no refinement artifacts on the result.
func TestAlignRefineZeroItersBitIdentical(t *testing.T) {
	n := 40
	gs, gt, _ := noisyPair(n, 0.1, 3)
	for name, cfg := range refineBackendConfigs(n) {
		base, err := Align(gs, gt, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		zcfg := cfg
		zcfg.RefineIters = 0
		zcfg.RefineTokenK = 0
		zero, err := Align(gs, gt, zcfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if zero.PreRefineSim != nil || zero.RefineMNC != nil || zero.RefineTokenK != 0 {
			t.Fatalf("%s: 0 iterations left refinement artifacts on the result", name)
		}
		if zero.Timings.Refinement != 0 || zero.Timings.RefinementBytes != 0 {
			t.Fatalf("%s: 0 iterations charged the refinement stage", name)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want, wok := base.Sim.At(i, j)
				got, gok := zero.Sim.At(i, j)
				if wok != gok || got != want {
					t.Fatalf("%s: score (%d,%d): base %v (ok=%v), refine_iters=0 %v (ok=%v)",
						name, i, j, want, wok, got, gok)
				}
			}
		}
	}
}

// TestAlignRefineImprovesHits runs the paper's synthetic-pair recipe with
// enough edge noise that stage 5 leaves mistakes, and checks stage 6
// repairs some of them: refined Hits@1 at least matches the unrefined
// score and the MNC trace ends above where it started.
func TestAlignRefineImprovesHits(t *testing.T) {
	n := 60
	gs, gt, truth := noisyPair(n, 0.15, 7)
	cfg := quickConfig(Full)
	cfg.RefineIters = 5
	res, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PreRefineSim == nil {
		t.Fatal("refined run did not keep the pre-refinement representation")
	}
	if len(res.RefineMNC) != cfg.RefineIters+1 {
		t.Fatalf("MNC trace has %d entries, want %d", len(res.RefineMNC), cfg.RefineIters+1)
	}
	if res.RefineTokenK <= 0 {
		t.Fatalf("resolved token budget = %d, want ≥ 1", res.RefineTokenK)
	}
	before := metrics.EvaluateSim(res.PreRefineSim, truth, 1)
	after := metrics.EvaluateSim(res.Sim, truth, 1)
	t.Logf("hits@1 %.4f -> %.4f, MNC %v", before.PrecisionAt[1], after.PrecisionAt[1], res.RefineMNC)
	if after.PrecisionAt[1] < before.PrecisionAt[1] {
		t.Errorf("refinement lowered Hits@1: %.4f -> %.4f", before.PrecisionAt[1], after.PrecisionAt[1])
	}
	last := res.RefineMNC[len(res.RefineMNC)-1]
	if last <= res.RefineMNC[0] {
		t.Errorf("refinement never raised MNC: %v", res.RefineMNC)
	}
	if res.Timings.Refinement <= 0 {
		t.Error("refinement stage not charged in the timing decomposition")
	}
}

// TestAlignRefineSparseStaysSparse checks the scale contract: refining a
// candidate-list run keeps the representation sparse — no dense ns×nt
// matrix on the result and every row within its candidate budget.
func TestAlignRefineSparseStaysSparse(t *testing.T) {
	n := 60
	gs, gt, _ := noisyPair(n, 0.05, 5)
	cfg := quickConfig(Full)
	cfg.Similarity = SimTopK
	cfg.CandidateK = 8
	cfg.RefineIters = 3
	cfg.RefineTokenK = 4
	res, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.M != nil {
		t.Fatal("refined top-k run materialised the dense alignment matrix")
	}
	if res.RefineTokenK != 4 {
		t.Fatalf("resolved token budget = %d, want the configured 4", res.RefineTokenK)
	}
	ts, ok := res.Sim.(*align.TopKSim)
	if !ok {
		t.Fatalf("refined sim backend = %q, want a candidate list", res.Sim.Backend())
	}
	pre, ok := res.PreRefineSim.(*align.TopKSim)
	if !ok {
		t.Fatalf("pre-refinement backend = %q, want a candidate list", res.PreRefineSim.Backend())
	}
	// The stage-5 integration merges per-orbit candidate lists, so its
	// budget (the longest merged row) can exceed CandidateK; refinement
	// must stay within that budget, never grow it.
	for i, row := range ts.C.Idx {
		if len(row) > pre.C.K {
			t.Fatalf("row %d holds %d candidates, budget %d", i, len(row), pre.C.K)
		}
	}
}

// TestAlignRefineDeterministicAcrossWorkers re-checks the determinism
// contract with stage 6 in the loop: worker count must never change a
// single refined score.
func TestAlignRefineDeterministicAcrossWorkers(t *testing.T) {
	n := 40
	gs, gt, _ := noisyPair(n, 0.1, 9)
	cfg := quickConfig(Full)
	cfg.RefineIters = 3
	cfg.Workers = 1
	base, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	got, err := Align(gs, gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if base.M.At(i, j) != got.M.At(i, j) {
				t.Fatalf("score (%d,%d) differs across worker counts", i, j)
			}
		}
	}
	for it := range base.RefineMNC {
		if base.RefineMNC[it] != got.RefineMNC[it] {
			t.Fatalf("MNC[%d] differs across worker counts", it)
		}
	}
}

func TestAlignRefineValidation(t *testing.T) {
	gs, gt, _ := noisyPair(20, 0.1, 11)
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"negative iters", func(c *Config) { c.RefineIters = -1 }},
		{"negative token budget", func(c *Config) { c.RefineIters = 2; c.RefineTokenK = -3 }},
		{"token budget without iterations", func(c *Config) { c.RefineTokenK = 4 }},
	}
	for _, tc := range cases {
		cfg := quickConfig(Full)
		tc.mod(&cfg)
		if _, err := Align(gs, gt, cfg); !errors.Is(err, ErrBadRefineParam) {
			t.Errorf("%s: error = %v, want ErrBadRefineParam", tc.name, err)
		}
	}
}
