package core

import "sync"

// The pipeline stages a Progress event can report, in execution order.
// OrbitCounting and Laplacian events are emitted only when the artifacts
// are actually built — a Prepared pair that already holds them (a variant
// sweep, a server artifact-cache hit) goes straight to training.
const (
	// StageOrbitCounts is stage 1: edge-orbit counting on both graphs.
	StageOrbitCounts = "orbit_counts"
	// StageLaplacians is stage 2: GOM/diffusion Laplacian construction.
	StageLaplacians = "laplacians"
	// StageTrain is stage 3: multi-orbit-aware training; one event per
	// epoch, carrying the epoch loss.
	StageTrain = "train"
	// StageFineTune is stage 4: per-orbit trusted-pair fine-tuning; one
	// event per refinement iteration and one per completed orbit.
	StageFineTune = "fine_tune"
	// StageIntegrate is stage 5: posterior importance integration.
	StageIntegrate = "integrate"
	// StageRefine is stage 6: RefiNA iterative refinement; one event per
	// refinement iteration. Emitted only when Config.RefineIters > 0.
	StageRefine = "refine"
)

// Progress is one observation of a running pipeline, delivered to the
// Config.Progress callback at stage boundaries, after every training
// epoch and around every fine-tuning iteration. Done/Total count the
// stage's units of work: graphs for the build stages, epochs for
// training, orbits for fine-tuning.
type Progress struct {
	// Stage names the pipeline stage (the Stage* constants).
	Stage string `json:"stage"`
	// Done and Total count the stage's completed and planned work units.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Orbit is the orbit a fine-tuning event concerns (−1 elsewhere).
	Orbit int `json:"orbit"`
	// Iters is the fine-tuning iteration count behind the event.
	Iters int `json:"iters,omitempty"`
	// Loss is the training loss Γ of the epoch just finished.
	Loss float64 `json:"loss,omitempty"`
}

// Observer receives Progress events. Events may originate from the
// pipeline's worker goroutines; the pipeline serialises the calls, so an
// Observer never runs concurrently with itself, but it must not block for
// long (it sits on the hot path) and must not call back into the pipeline.
type Observer func(Progress)

// emitter serialises Observer calls: fine-tuning events are produced by
// concurrent per-orbit goroutines, and the callback contract promises the
// observer never races with itself. A nil emitter (no observer installed)
// drops events for free.
type emitter struct {
	mu sync.Mutex
	fn Observer
}

func newEmitter(fn Observer) *emitter {
	if fn == nil {
		return nil
	}
	return &emitter{fn: fn}
}

func (e *emitter) emit(p Progress) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.fn(p)
	e.mu.Unlock()
}
