// Package tsne implements exact t-SNE (van der Maaten & Hinton, JMLR
// 2008) for the paper's Fig. 11 visualisation of anchor embeddings before
// and after alignment. The O(n²) exact formulation is the reference
// algorithm and is comfortably fast at the figure's scale (a few hundred
// points).
package tsne

import (
	"math"
	"math/rand"

	"github.com/htc-align/htc/internal/dense"
)

// Config controls the embedding.
type Config struct {
	// Perplexity is the effective neighbourhood size (default 30, capped
	// at (n−1)/3).
	Perplexity float64
	// Iters is the number of gradient steps (default 400).
	Iters int
	// LearningRate is the gradient step size (default 100).
	LearningRate float64
	// Seed drives the initial layout.
	Seed int64
}

func (c Config) withDefaults(n int) Config {
	if c.Perplexity <= 0 {
		c.Perplexity = 30
	}
	if maxPerp := float64(n-1) / 3; c.Perplexity > maxPerp && maxPerp > 1 {
		c.Perplexity = maxPerp
	}
	if c.Iters <= 0 {
		c.Iters = 400
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 100
	}
	return c
}

// Embed maps the rows of x (n×d) to 2-D coordinates.
func Embed(x *dense.Matrix, cfg Config) *dense.Matrix {
	n := x.Rows
	if n == 0 {
		return dense.New(0, 2)
	}
	if n == 1 {
		return dense.New(1, 2)
	}
	cfg = cfg.withDefaults(n)

	p := affinities(x, cfg.Perplexity)

	rng := rand.New(rand.NewSource(cfg.Seed))
	y := dense.New(n, 2)
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64() * 1e-4
	}
	vel := dense.New(n, 2)
	gains := dense.New(n, 2)
	gains.Fill(1)

	const exaggeration = 4.0
	const exaggerationIters = 100
	p.Scale(exaggeration)

	q := dense.New(n, n)
	grad := dense.New(n, 2)
	for iter := 0; iter < cfg.Iters; iter++ {
		if iter == exaggerationIters {
			p.Scale(1 / exaggeration)
		}
		momentum := 0.5
		if iter >= 250 {
			momentum = 0.8
		}
		// Student-t affinities in the embedding.
		var qSum float64
		for i := 0; i < n; i++ {
			yi := y.Row(i)
			qi := q.Row(i)
			for j := 0; j < n; j++ {
				if i == j {
					qi[j] = 0
					continue
				}
				yj := y.Row(j)
				d0 := yi[0] - yj[0]
				d1 := yi[1] - yj[1]
				qi[j] = 1 / (1 + d0*d0 + d1*d1)
				qSum += qi[j]
			}
		}
		grad.Zero()
		for i := 0; i < n; i++ {
			yi := y.Row(i)
			gi := grad.Row(i)
			pi := p.Row(i)
			qi := q.Row(i)
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				yj := y.Row(j)
				mult := 4 * (pi[j] - qi[j]/qSum) * qi[j]
				gi[0] += mult * (yi[0] - yj[0])
				gi[1] += mult * (yi[1] - yj[1])
			}
		}
		// Adaptive gains + momentum update (the standard implementation).
		for k := range y.Data {
			if (grad.Data[k] > 0) == (vel.Data[k] > 0) {
				gains.Data[k] *= 0.8
			} else {
				gains.Data[k] += 0.2
			}
			if gains.Data[k] < 0.01 {
				gains.Data[k] = 0.01
			}
			vel.Data[k] = momentum*vel.Data[k] - cfg.LearningRate*gains.Data[k]*grad.Data[k]
			y.Data[k] += vel.Data[k]
		}
		// Re-centre to remove drift.
		var m0, m1 float64
		for i := 0; i < n; i++ {
			m0 += y.At(i, 0)
			m1 += y.At(i, 1)
		}
		m0 /= float64(n)
		m1 /= float64(n)
		for i := 0; i < n; i++ {
			y.Set(i, 0, y.At(i, 0)-m0)
			y.Set(i, 1, y.At(i, 1)-m1)
		}
	}
	return y
}

// affinities builds the symmetrised high-dimensional affinity matrix with
// per-point bandwidths calibrated to the target perplexity by binary
// search.
func affinities(x *dense.Matrix, perplexity float64) *dense.Matrix {
	n := x.Rows
	d2 := pairwiseSq(x)
	target := math.Log(perplexity)
	p := dense.New(n, n)
	for i := 0; i < n; i++ {
		betaLo, betaHi := 0.0, math.Inf(1)
		beta := 1.0
		row := d2.Row(i)
		pi := p.Row(i)
		for step := 0; step < 64; step++ {
			var sum float64
			for j := 0; j < n; j++ {
				if j == i {
					pi[j] = 0
					continue
				}
				pi[j] = math.Exp(-row[j] * beta)
				sum += pi[j]
			}
			if sum == 0 {
				sum = 1e-12
			}
			// Shannon entropy of the conditional distribution.
			var h float64
			for j := 0; j < n; j++ {
				if j == i || pi[j] == 0 {
					continue
				}
				pj := pi[j] / sum
				h -= pj * math.Log(pj)
			}
			diff := h - target
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 { // entropy too high → sharpen
				betaLo = beta
				if math.IsInf(betaHi, 1) {
					beta *= 2
				} else {
					beta = (beta + betaHi) / 2
				}
			} else {
				betaHi = beta
				beta = (beta + betaLo) / 2
			}
		}
		var sum float64
		for j := 0; j < n; j++ {
			sum += pi[j]
		}
		if sum > 0 {
			for j := 0; j < n; j++ {
				pi[j] /= sum
			}
		}
	}
	// Symmetrise: P = (P + Pᵀ) / 2n, floored away from zero.
	pt := p.T()
	p.Add(pt)
	p.Scale(1 / (2 * float64(n)))
	p.Apply(func(v float64) float64 {
		if v < 1e-12 {
			return 1e-12
		}
		return v
	})
	return p
}

func pairwiseSq(x *dense.Matrix) *dense.Matrix {
	n := x.Rows
	d2 := dense.New(n, n)
	for i := 0; i < n; i++ {
		xi := x.Row(i)
		for j := i + 1; j < n; j++ {
			xj := x.Row(j)
			var s float64
			for k := range xi {
				diff := xi[k] - xj[k]
				s += diff * diff
			}
			d2.Set(i, j, s)
			d2.Set(j, i, s)
		}
	}
	return d2
}
