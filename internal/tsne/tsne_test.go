package tsne

import (
	"math"
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/dense"
)

// twoClusters builds n points in d dimensions split between two
// well-separated Gaussian blobs; the first half belongs to cluster 0.
func twoClusters(n, d int, seed int64) *dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	x := dense.New(n, d)
	for i := 0; i < n; i++ {
		offset := 0.0
		if i >= n/2 {
			offset = 10
		}
		row := x.Row(i)
		for j := range row {
			row[j] = offset + rng.NormFloat64()*0.5
		}
	}
	return x
}

func TestEmbedShapes(t *testing.T) {
	x := twoClusters(40, 8, 1)
	y := Embed(x, Config{Iters: 120, Seed: 2})
	if y.Rows != 40 || y.Cols != 2 {
		t.Fatalf("embedding shape %dx%d", y.Rows, y.Cols)
	}
	for _, v := range y.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite coordinate")
		}
	}
}

func TestEmbedSeparatesClusters(t *testing.T) {
	n := 60
	x := twoClusters(n, 10, 3)
	y := Embed(x, Config{Iters: 300, Perplexity: 10, Seed: 4})

	intra, inter := 0.0, 0.0
	var nIntra, nInter int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d0 := y.At(i, 0) - y.At(j, 0)
			d1 := y.At(i, 1) - y.At(j, 1)
			dist := math.Sqrt(d0*d0 + d1*d1)
			if (i < n/2) == (j < n/2) {
				intra += dist
				nIntra++
			} else {
				inter += dist
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if inter < 2*intra {
		t.Fatalf("clusters not separated: intra=%.3f inter=%.3f", intra, inter)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	x := twoClusters(30, 6, 5)
	a := Embed(x, Config{Iters: 100, Seed: 7})
	b := Embed(x, Config{Iters: 100, Seed: 7})
	if !a.Equal(b, 0) {
		t.Fatal("t-SNE not deterministic for equal seeds")
	}
}

func TestEmbedTinyInputs(t *testing.T) {
	if y := Embed(dense.New(0, 3), Config{}); y.Rows != 0 {
		t.Fatal("empty input must give empty output")
	}
	if y := Embed(dense.New(1, 3), Config{}); y.Rows != 1 || y.At(0, 0) != 0 {
		t.Fatal("single point must map to origin")
	}
	// Two identical points: must not NaN.
	x := dense.New(2, 3)
	y := Embed(x, Config{Iters: 50, Seed: 1})
	for _, v := range y.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN for degenerate input")
		}
	}
}

func TestEmbedCentered(t *testing.T) {
	x := twoClusters(24, 5, 8)
	y := Embed(x, Config{Iters: 150, Seed: 9})
	var m0, m1 float64
	for i := 0; i < y.Rows; i++ {
		m0 += y.At(i, 0)
		m1 += y.At(i, 1)
	}
	if math.Abs(m0) > 1e-6*float64(y.Rows) || math.Abs(m1) > 1e-6*float64(y.Rows) {
		t.Fatalf("embedding not centred: (%v, %v)", m0, m1)
	}
}

func TestConfigDefaultsAndPerplexityCap(t *testing.T) {
	c := Config{}.withDefaults(100)
	if c.Perplexity != 30 || c.Iters != 400 || c.LearningRate != 100 {
		t.Fatalf("defaults = %+v", c)
	}
	// With few points the perplexity must be capped below (n−1)/3.
	c = Config{Perplexity: 50}.withDefaults(10)
	if c.Perplexity != 3 {
		t.Fatalf("capped perplexity = %v, want 3", c.Perplexity)
	}
}
