package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"time"

	"github.com/htc-align/htc/internal/core"
	"github.com/htc-align/htc/internal/metrics"
)

// Options configures a Server. The zero value selects sane defaults.
type Options struct {
	// Workers is the alignment worker-pool size (default 2): how many
	// jobs run concurrently. Each running job is additionally granted a
	// per-job CPU budget of max(1, GOMAXPROCS/Workers) pipeline workers,
	// so the budgets of a full pool sum to at most GOMAXPROCS and
	// concurrent alignments never oversubscribe the machine. Requests may
	// ask for fewer pipeline workers via config.workers, never more.
	Workers int
	// QueueDepth bounds the submission backlog (default 2×Workers).
	QueueDepth int
	// CacheSize bounds the result cache in entries (default 128).
	CacheSize int
	// MaxNodes bounds per-graph size at admission (default 20000,
	// negative = unlimited).
	MaxNodes int
	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64
	// Log receives request/job lines; nil disables logging.
	Log *log.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 2
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 2 * o.Workers
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 128
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 20000
	}
	if o.MaxNodes < 0 {
		o.MaxNodes = 0 // unlimited
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	return o
}

// Server is the alignment service: an http.Handler wiring the job queue,
// the result cache and the metrics together.
type Server struct {
	opts    Options
	queue   *Queue
	cache   *resultCache
	metrics *Metrics
	mux     *http.ServeMux
	started time.Time
}

// New assembles a Server and starts its worker pool. Callers must Close
// it to stop the workers.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		cache:   newResultCache(opts.CacheSize),
		metrics: &Metrics{},
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	s.queue = NewQueue(opts.Workers, opts.QueueDepth, s.runJob, s.metrics)
	s.mux.HandleFunc("POST /v1/align", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels outstanding jobs and stops the worker pool.
func (s *Server) Close() { s.queue.Close() }

// Metrics exposes the counters (used by tests and the binary's shutdown
// summary).
func (s *Server) Metrics() *Metrics { return s.metrics }

// perJobWorkers is the per-job CPU budget of a pool with the given size:
// the machine's cores divided evenly among the jobs that can run at once,
// never below 1. With pool ≤ gomaxprocs the budgets of a saturated pool
// sum to at most gomaxprocs, so N in-flight alignments cannot
// oversubscribe the machine; beyond that each job is already down to its
// 1-worker floor.
func perJobWorkers(gomaxprocs, pool int) int {
	if pool < 1 {
		pool = 1
	}
	w := gomaxprocs / pool
	if w < 1 {
		w = 1
	}
	return w
}

// jobConfig resolves the pipeline config a job actually runs: the
// requested worker count capped at the server's per-job CPU budget (0 =
// "whatever the server grants").
func (s *Server) jobConfig(cfg core.Config) core.Config {
	budget := perJobWorkers(runtime.GOMAXPROCS(0), s.opts.Workers)
	if cfg.Workers <= 0 || cfg.Workers > budget {
		cfg.Workers = budget
	}
	return cfg
}

// runJob is the queue's Runner: materialise the pair, run the pipeline
// under the job's context, extract the matching, evaluate, cache.
func (s *Server) runJob(ctx context.Context, job *Job) (*AlignResult, error) {
	pair, err := resolvePair(job.Req, s.opts.MaxNodes)
	if err != nil {
		return nil, err
	}
	if s.opts.MaxNodes > 0 && (pair.Source.N() > s.opts.MaxNodes || pair.Target.N() > s.opts.MaxNodes) {
		return nil, fmt.Errorf("dataset exceeds server limit of %d nodes", s.opts.MaxNodes)
	}
	res, err := core.AlignContext(ctx, pair.Source, pair.Target, s.jobConfig(job.Req.Config))
	if err != nil {
		return nil, err
	}

	match := res.MatchOneToOne()
	out := &AlignResult{
		Pairs:         make([][2]int, 0, len(match)),
		PerOrbit:      make([]OrbitReport, len(res.PerOrbit)),
		TimingsMS:     stageMS(res.Timings),
		EpochsTrained: len(res.LossHistory),
		WorkersUsed:   res.Workers,
	}
	for src, tgt := range match {
		if tgt >= 0 {
			out.Pairs = append(out.Pairs, [2]int{src, tgt})
		}
	}
	for i, o := range res.PerOrbit {
		out.PerOrbit[i] = OrbitReport{Orbit: o.Orbit, Trusted: o.Trusted, Gamma: o.Gamma, Iters: o.Iters}
	}
	if truth := pair.Truth; truth.NumAnchors() > 0 {
		qs := job.Req.cutoffs()
		rep := metrics.Evaluate(res.M, truth, qs...)
		out.Eval = &EvalReport{PrecisionAt: rep.PrecisionAt, MRR: rep.MRR, Anchors: rep.Anchors}
	}
	s.cache.put(job.CacheKey, out)
	if s.opts.Log != nil {
		s.opts.Log.Printf("job %s done in %.0fms (%d pairs)", job.ID, out.TimingsMS.Total, len(out.Pairs))
	}
	return out, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req AlignRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after request body")
		return
	}
	if err := req.validate(s.opts.MaxNodes); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key, err := cacheKey(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	if cached := s.cache.get(key); cached != nil {
		s.metrics.CacheHits.Add(1)
		job := s.queue.Record(&req, key, cached)
		writeJSON(w, http.StatusOK, job.Info())
		return
	}
	s.metrics.CacheMisses.Add(1)

	job, err := s.queue.Submit(&req, key)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue is full, retry later")
		return
	case errors.Is(err, ErrQueueClosed):
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if s.opts.Log != nil {
		s.opts.Log.Printf("job %s queued (dataset=%q inline=%v)", job.ID, req.Dataset, req.Source != nil)
	}
	writeJSON(w, http.StatusAccepted, job.Info())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job.Info())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusAccepted, job.Info())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	depth, capacity := s.queue.Depth()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":          "ok",
		"uptime_seconds":  time.Since(s.started).Seconds(),
		"workers":         s.queue.Workers(),
		"workers_per_job": perJobWorkers(runtime.GOMAXPROCS(0), s.opts.Workers),
		"queue_depth":     depth,
		"queue_capacity":  capacity,
		"jobs_tracked":    s.queue.Len(),
		"cache_entries":   s.cache.len(),
		"datasets":        Datasets(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	depth, capacity := s.queue.Depth()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writePrometheus(w, map[string]float64{
		"htc_queue_depth":    float64(depth),
		"htc_queue_capacity": float64(capacity),
		"htc_workers":        float64(s.queue.Workers()),
		"htc_cache_entries":  float64(s.cache.len()),
		"htc_uptime_seconds": time.Since(s.started).Seconds(),
		"htc_jobs_tracked":   float64(s.queue.Len()),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing more to do than drop the conn.
		_ = err
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
