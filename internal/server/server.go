package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"time"

	"github.com/htc-align/htc/internal/core"
	"github.com/htc-align/htc/internal/datasets"
	"github.com/htc-align/htc/internal/ingest"
	"github.com/htc-align/htc/internal/metrics"
)

// Options configures a Server. The zero value selects sane defaults.
type Options struct {
	// Workers is the alignment worker-pool size (default 2): how many
	// jobs run concurrently. Each running job is additionally granted a
	// per-job CPU budget of max(1, GOMAXPROCS/Workers) pipeline workers,
	// so the budgets of a full pool sum to at most GOMAXPROCS and
	// concurrent alignments never oversubscribe the machine. Requests may
	// ask for fewer pipeline workers via config.workers, never more.
	Workers int
	// QueueDepth bounds the submission backlog (default 2×Workers).
	QueueDepth int
	// CacheSize bounds the result cache in entries (default 128).
	CacheSize int
	// PreparedCacheSize bounds the prepared-artifact cache in graph
	// pairs (default 8). Each entry pins a pair's graphs, orbit counts
	// and Laplacians, so it is kept far smaller than the result cache.
	PreparedCacheSize int
	// DatasetCacheSize bounds the uploaded-dataset store in entries
	// (default 16, LRU-evicted). Each entry pins two whole graphs plus
	// their id dictionaries; in-flight jobs memoise their pair at
	// admission, so eviction never strands a job.
	DatasetCacheSize int
	// MaxNodes bounds per-graph size at admission (default 20000,
	// negative = unlimited).
	MaxNodes int
	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64
	// Log receives request/job lines; nil disables logging.
	Log *log.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 2
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 2 * o.Workers
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 128
	}
	if o.PreparedCacheSize <= 0 {
		o.PreparedCacheSize = 8
	}
	if o.DatasetCacheSize <= 0 {
		o.DatasetCacheSize = 16
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 20000
	}
	if o.MaxNodes < 0 {
		o.MaxNodes = 0 // unlimited
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	return o
}

// Server is the alignment service: an http.Handler wiring the job queue,
// the result cache and the metrics together.
type Server struct {
	opts     Options
	queue    *Queue
	cache    *resultCache
	refines  *refineCache
	prepared *preparedCache
	datasets *datasetStore
	metrics  *Metrics
	mux      *http.ServeMux
	started  time.Time
}

// New assembles a Server and starts its worker pool. Callers must Close
// it to stop the workers.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		cache:    newResultCache(opts.CacheSize),
		refines:  newRefineCache(opts.CacheSize),
		prepared: newPreparedCache(opts.PreparedCacheSize),
		datasets: newDatasetStore(opts.DatasetCacheSize),
		metrics:  &Metrics{},
		mux:      http.NewServeMux(),
		started:  time.Now(),
	}
	s.queue = NewQueue(opts.Workers, opts.QueueDepth, s.runJob, s.metrics)
	s.mux.HandleFunc("POST /v1/align", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/refine", s.handleRefine)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("PUT /v1/datasets/{id}", s.handleDatasetPut)
	s.mux.HandleFunc("GET /v1/datasets/{id}", s.handleDatasetGet)
	s.mux.HandleFunc("DELETE /v1/datasets/{id}", s.handleDatasetDelete)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	s.mux.HandleFunc("GET /v1/capabilities", s.handleCapabilities)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels outstanding jobs and stops the worker pool.
func (s *Server) Close() { s.queue.Close() }

// Metrics exposes the counters (used by tests and the binary's shutdown
// summary).
func (s *Server) Metrics() *Metrics { return s.metrics }

// perJobWorkers is the per-job CPU budget of a pool with the given size:
// the machine's cores divided evenly among the jobs that can run at once,
// never below 1. With pool ≤ gomaxprocs the budgets of a saturated pool
// sum to at most gomaxprocs, so N in-flight alignments cannot
// oversubscribe the machine; beyond that each job is already down to its
// 1-worker floor.
func perJobWorkers(gomaxprocs, pool int) int {
	if pool < 1 {
		pool = 1
	}
	w := gomaxprocs / pool
	if w < 1 {
		w = 1
	}
	return w
}

// jobConfig resolves the pipeline config a job actually runs: the
// requested worker count capped at the server's per-job CPU budget (0 =
// "whatever the server grants").
func (s *Server) jobConfig(cfg core.Config) core.Config {
	budget := perJobWorkers(runtime.GOMAXPROCS(0), s.opts.Workers)
	if cfg.Workers <= 0 || cfg.Workers > budget {
		cfg.Workers = budget
	}
	return cfg
}

// runJob is the queue's Runner: materialise the pair, fetch or build its
// prepared artifacts, run the staged pipeline for one config (or a whole
// sweep of them) under the job's context, extract matchings, evaluate,
// cache.
func (s *Server) runJob(ctx context.Context, job *Job) (any, error) {
	pair, err := resolvePair(job.Req, s.opts.MaxNodes)
	if err != nil {
		return nil, err
	}
	if s.opts.MaxNodes > 0 && (pair.Source.N() > s.opts.MaxNodes || pair.Target.N() > s.opts.MaxNodes) {
		return nil, fmt.Errorf("dataset exceeds server limit of %d nodes", s.opts.MaxNodes)
	}
	if job.Req.upload != nil {
		s.metrics.DatasetAlignRuns.Add(1)
	}

	if len(job.Req.Configs) > 0 {
		return s.runSweep(ctx, job, pair)
	}

	cfg := s.jobConfig(job.Req.Config)
	cfg.Progress = jobObserver(job, 0, 0)
	prep, prepHit, err := s.preparedFor(ctx, pair, cfg)
	if err != nil {
		return nil, err
	}
	res, err := prep.AlignContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	s.metrics.recordBackend(res)
	if !prepHit {
		// This job paid the eager artifact build inside Prepare; fold it
		// into the run's stage decomposition like the one-shot API does.
		pt := prep.PrepareTimings()
		res.Timings.OrbitCounting += pt.OrbitCounting
		res.Timings.Laplacians += pt.Laplacians
		res.Timings.OrbitCountingBytes += pt.OrbitCountingBytes
		res.Timings.LaplaciansBytes += pt.LaplaciansBytes
		res.Timings.TotalBytes += pt.OrbitCountingBytes + pt.LaplaciansBytes
	}
	out := buildResult(res, pair, job.Req.cutoffs())
	out.PreparedCached = prepHit
	s.cache.put(job.CacheKey, out)
	if s.opts.Log != nil {
		s.opts.Log.Printf("job %s done in %.0fms (%d pairs)", job.ID, out.TimingsMS.Total, len(out.Pairs))
	}
	return out, nil
}

// runSweep executes every config of a sweep job over one shared Prepared
// pair: stages 1–2 run at most once per aggregation family for the whole
// sweep (and not at all on an artifact-cache hit). Each entry's result
// lands in the single-config result cache under the identity of the
// equivalent /v1/align request, so sweeps and individual submissions
// share cache entries both ways. Per-entry pipeline errors are recorded
// in the entry; only cancellation aborts the job.
func (s *Server) runSweep(ctx context.Context, job *Job, pair *datasets.Pair) (*SweepResult, error) {
	configs := job.Req.Configs
	s.metrics.SweepConfigs.Add(int64(len(configs)))
	sweep := &SweepResult{Results: make([]SweepEntry, len(configs))}

	// Resolve the per-config cache keys (precomputed by the submit
	// handler; recomputed only if this job arrived without them) and
	// probe the result cache for every entry up front — a sweep must
	// never pay an artifact build on behalf of entries it won't run.
	keys := make([]string, len(configs))
	pending := make([]int, 0, len(configs))
	for i, reqCfg := range configs {
		entry := &sweep.Results[i]
		entry.Config = canonicalConfig(reqCfg)
		if i < len(job.Req.sweepKeys) {
			keys[i] = job.Req.sweepKeys[i]
		} else {
			k, err := cacheKey(job.Req.singleRequest(reqCfg))
			if err != nil {
				entry.Error = err.Error()
				continue
			}
			keys[i] = k
		}
		if cached := s.cache.get(keys[i]); cached != nil {
			s.metrics.CacheHits.Add(1)
			entry.Result = cached
			continue
		}
		s.metrics.CacheMisses.Add(1)
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		// Every entry was served from the result cache (they must have
		// been cached after the submit-time check): nothing to prepare.
		sweep.PairHash = core.PairHash(pair.Source, pair.Target)
		sweep.PreparedCached = true
		return sweep, nil
	}

	// Prepare (or fetch) the shared artifacts, seeded by the first config
	// that actually runs.
	firstCfg := s.jobConfig(configs[pending[0]])
	firstCfg.Progress = jobObserver(job, pending[0]+1, len(configs))
	prep, prepHit, err := s.preparedFor(ctx, pair, firstCfg)
	if err != nil {
		return nil, err
	}
	sweep.PairHash = prep.Hash()
	sweep.PreparedCached = prepHit
	// The eager artifact build inside Prepare is paid once for the whole
	// sweep; attribute it to the first entry that actually runs, so the
	// per-entry stage decompositions sum to the job's true cost.
	foldPrep := !prepHit
	for _, i := range pending {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		entry := &sweep.Results[i]
		cfg := s.jobConfig(configs[i])
		cfg.Progress = jobObserver(job, i+1, len(configs))
		res, err := prep.AlignContext(ctx, cfg)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			entry.Error = err.Error()
			continue
		}
		s.metrics.recordBackend(res)
		if foldPrep {
			pt := prep.PrepareTimings()
			res.Timings.OrbitCounting += pt.OrbitCounting
			res.Timings.Laplacians += pt.Laplacians
			res.Timings.OrbitCountingBytes += pt.OrbitCountingBytes
			res.Timings.LaplaciansBytes += pt.LaplaciansBytes
			res.Timings.TotalBytes += pt.OrbitCountingBytes + pt.LaplaciansBytes
			foldPrep = false
		}
		out := buildResult(res, pair, job.Req.cutoffs())
		out.PreparedCached = prepHit || i != pending[0]
		s.cache.put(keys[i], out)
		entry.Result = out
	}
	if s.opts.Log != nil {
		s.opts.Log.Printf("job %s swept %d configs, %d run (pair %.12s…)", job.ID, len(sweep.Results), len(pending), sweep.PairHash)
	}
	return sweep, nil
}

// preparedFor returns the pair's prepared artifacts, reusing the
// cross-job artifact cache when the same graphs (by content hash) were
// prepared before, and preparing + caching them otherwise.
func (s *Server) preparedFor(ctx context.Context, pair *datasets.Pair, cfg core.Config) (*core.Prepared, bool, error) {
	key := core.PairHash(pair.Source, pair.Target)
	if prep := s.prepared.get(key); prep != nil {
		s.metrics.PreparedHits.Add(1)
		return prep, true, nil
	}
	s.metrics.PreparedMisses.Add(1)
	prep, err := core.PrepareContext(ctx, pair.Source, pair.Target, cfg)
	if err != nil {
		return nil, false, err
	}
	s.prepared.put(key, prep)
	return prep, false, nil
}

// jobObserver adapts the pipeline's progress events into the job's live
// progress block. cfgIdx/cfgTotal locate a sweep entry (0 for singles).
func jobObserver(job *Job, cfgIdx, cfgTotal int) core.Observer {
	return func(ev core.Progress) {
		job.SetProgress(ProgressInfo{
			Stage: ev.Stage, Done: ev.Done, Total: ev.Total,
			Config: cfgIdx, Configs: cfgTotal,
		})
	}
}

// buildResult converts a pipeline result into the API payload: one-to-one
// matching, per-orbit report, stage timings, optional evaluation. Every
// score consumer goes through the result's Sim, so top-k jobs never
// materialise a dense matrix inside the server either.
func buildResult(res *core.Result, pair *datasets.Pair, qs []int) *AlignResult {
	match := res.MatchOneToOne()
	out := &AlignResult{
		Pairs:         make([][2]int, 0, len(match)),
		PerOrbit:      make([]OrbitReport, len(res.PerOrbit)),
		TimingsMS:     stageMS(res.Timings),
		EpochsTrained: len(res.LossHistory),
		WorkersUsed:   res.Workers,
		SimBackend:    res.SimBackend,
		Precision:     res.Precision,
		CandidateK:    res.CandidateK,
		AnnBits:       res.AnnBits,
		AnnProbes:     res.AnnProbes,
		AnnPoolCap:    res.AnnPoolCap,
		Ann:           res.Ann,
	}
	for src, tgt := range match {
		if tgt >= 0 {
			out.Pairs = append(out.Pairs, [2]int{src, tgt})
		}
	}
	// Real datasets key their nodes by external ids; mirror the matching
	// through the pair's dictionaries so clients read predictions back by
	// name. Identity dictionaries (synthetic pairs, plain inline specs)
	// would only repeat the indices, so they stay index-only.
	if pair.SourceIDs != nil && pair.TargetIDs != nil &&
		!(pair.SourceIDs.IsIdentity() && pair.TargetIDs.IsIdentity()) {
		out.PairsNamed = make([][2]string, len(out.Pairs))
		for i, p := range out.Pairs {
			out.PairsNamed[i] = [2]string{pair.SourceIDs.ID(p[0]), pair.TargetIDs.ID(p[1])}
		}
	}
	for i, o := range res.PerOrbit {
		out.PerOrbit[i] = OrbitReport{Orbit: o.Orbit, Trusted: o.Trusted, Gamma: o.Gamma, Iters: o.Iters}
	}
	if truth := pair.Truth; truth.NumAnchors() > 0 {
		rep := metrics.EvaluateSim(res.Sim, truth, qs...)
		out.Eval = &EvalReport{PrecisionAt: rep.PrecisionAt, MRR: rep.MRR, Anchors: rep.Anchors}
	}
	if res.PreRefineSim != nil {
		out.RefineMNC = res.RefineMNC
		out.RefineTokenK = res.RefineTokenK
		if truth := pair.Truth; truth.NumAnchors() > 0 {
			rep := metrics.EvaluateSim(res.PreRefineSim, truth, qs...)
			out.EvalPreRefine = &EvalReport{PrecisionAt: rep.PrecisionAt, MRR: rep.MRR, Anchors: rep.Anchors}
		}
	}
	return out
}

// decodeRequest parses and validates a submission body; a nil return
// means the error response was already written.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) *AlignRequest {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req AlignRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit))
			return nil
		}
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return nil
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after request body")
		return nil
	}
	if err := req.validate(s.opts.MaxNodes, s.datasets); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil
	}
	return &req
}

// handleDatasetPut ingests a dataset upload: both graphs through the
// format registry, the ID-keyed truth through the resulting node maps.
// It answers 201 on first upload and 200 on replacement.
func (s *Server) handleDatasetPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := validDatasetID(id); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var up DatasetUpload
	if err := dec.Decode(&up); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	ds, err := buildDataset(id, &up, s.opts.MaxNodes, time.Now().UTC())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	replaced, evicted := s.datasets.put(ds)
	s.metrics.DatasetUploads.Add(1)
	s.metrics.DatasetEvictions.Add(int64(evicted))
	if s.opts.Log != nil {
		s.opts.Log.Printf("dataset %s uploaded (%d+%d nodes, %d anchors, pair %.12s…)",
			id, ds.info.Source.Nodes, ds.info.Target.Nodes, ds.info.Anchors, ds.info.PairHash)
	}
	code := http.StatusCreated
	if replaced {
		code = http.StatusOK
	}
	writeJSON(w, code, ds.info)
}

func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	ds := s.datasets.get(r.PathValue("id"))
	if ds == nil {
		writeError(w, http.StatusNotFound, "no such uploaded dataset")
		return
	}
	writeJSON(w, http.StatusOK, ds.info)
}

func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.datasets.delete(id) {
		writeError(w, http.StatusNotFound, "no such uploaded dataset")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "deleted": true})
}

// handleDatasetList reports the built-in generator names alongside the
// uploaded datasets' metadata (most recently used first).
func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"builtin":  Datasets(),
		"uploaded": s.datasets.list(),
	})
}

// enqueue submits a validated request and writes the job response.
func (s *Server) enqueue(w http.ResponseWriter, req *AlignRequest, cacheKey, kind string) {
	job, err := s.queue.Submit(req, cacheKey)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue is full, retry later")
		return
	case errors.Is(err, ErrQueueClosed):
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if s.opts.Log != nil {
		s.opts.Log.Printf("%s job %s queued (dataset=%q inline=%v)", kind, job.ID, req.Dataset, req.Source != nil)
	}
	info := job.Info()
	info.QueuePosition = s.queue.Position(job)
	writeJSON(w, http.StatusAccepted, info)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req := s.decodeRequest(w, r)
	if req == nil {
		return
	}
	if err := req.validateSingle(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key, err := cacheKey(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	if cached := s.cache.get(key); cached != nil {
		s.metrics.CacheHits.Add(1)
		job := s.queue.Record(req, key, cached)
		writeJSON(w, http.StatusOK, job.Info())
		return
	}
	s.metrics.CacheMisses.Add(1)
	s.enqueue(w, req, key, "align")
}

// handleSweep accepts a multi-config submission: the same pair coordinates
// as /v1/align plus a configs list. When every entry is already in the
// result cache the sweep is assembled and answered immediately (200);
// otherwise it queues as one job that shares a single prepared pair across
// all entries.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	req := s.decodeRequest(w, r)
	if req == nil {
		return
	}
	if err := req.validateSweep(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	keys := make([]string, len(req.Configs))
	for i, cfg := range req.Configs {
		key, err := cacheKey(req.singleRequest(cfg))
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		keys[i] = key
	}
	req.sweepKeys = keys

	// Serve entirely from cache when possible — the sweep analogue of the
	// single-submit cache-hit path.
	sweep := &SweepResult{PreparedCached: true, Results: make([]SweepEntry, len(req.Configs))}
	allCached := true
	for i, cfg := range req.Configs {
		cached := s.cache.get(keys[i])
		if cached == nil {
			allCached = false
			break
		}
		sweep.Results[i] = SweepEntry{Config: canonicalConfig(cfg), Result: cached}
	}
	if allCached {
		s.metrics.CacheHits.Add(int64(len(keys)))
		s.metrics.SweepConfigs.Add(int64(len(keys)))
		job := s.queue.Record(req, "", sweep)
		writeJSON(w, http.StatusOK, job.Info())
		return
	}

	s.enqueue(w, req, "", "sweep")
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	info := job.Info()
	if info.Status == StatusQueued {
		info.QueuePosition = s.queue.Position(job)
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusAccepted, job.Info())
}

// handleCapabilities reports what this server build can do — the
// similarity backend roster (with the ANN knobs each accepts), the
// registered ingest formats, the pipeline variants and the admission
// limits — so clients can discover features instead of probing for 400s.
func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	backends := make([]SimBackendInfo, 0, len(core.SimBackends()))
	for _, b := range core.SimBackends() {
		info := SimBackendInfo{Name: b.String()}
		switch b {
		case core.SimTopK:
			info.Knobs = []string{"candidate_k"}
		case core.SimANN:
			info.Knobs = []string{"candidate_k", "ann_bits", "ann_probes", "ann_pool_cap"}
		}
		backends = append(backends, info)
	}
	variants := make([]string, 0, len(core.Variants()))
	for _, v := range core.Variants() {
		variants = append(variants, v.String())
	}
	precisions := make([]string, 0, len(core.Precisions()))
	for _, p := range core.Precisions() {
		precisions = append(precisions, p.String())
	}
	writeJSON(w, http.StatusOK, Capabilities{
		SimilarityBackends: backends,
		Precisions:         precisions,
		IngestFormats:      ingest.Formats(),
		Variants:           variants,
		Datasets:           Datasets(),
		MaxNodes:           s.opts.MaxNodes,
		MaxSweepConfigs:    MaxSweepConfigs,
		Refine: RefineCaps{
			Knobs:        []string{"refine_iters", "refine_token_k"},
			DefaultIters: DefaultRefineIters,
			MaxIters:     MaxRefineIters,
		},
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	depth, capacity := s.queue.Depth()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":           "ok",
		"uptime_seconds":   time.Since(s.started).Seconds(),
		"workers":          s.queue.Workers(),
		"workers_per_job":  perJobWorkers(runtime.GOMAXPROCS(0), s.opts.Workers),
		"queue_depth":      depth,
		"queue_capacity":   capacity,
		"jobs_tracked":     s.queue.Len(),
		"cache_entries":    s.cache.len(),
		"prepared_entries": s.prepared.len(),
		"dataset_entries":  s.datasets.len(),
		"datasets":         Datasets(),
		"ingest_formats":   ingest.Formats(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	depth, capacity := s.queue.Depth()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writePrometheus(w, map[string]float64{
		"htc_queue_depth":      float64(depth),
		"htc_queue_capacity":   float64(capacity),
		"htc_workers":          float64(s.queue.Workers()),
		"htc_cache_entries":    float64(s.cache.len()),
		"htc_refine_entries":   float64(s.refines.len()),
		"htc_prepared_entries": float64(s.prepared.len()),
		"htc_dataset_entries":  float64(s.datasets.len()),
		"htc_uptime_seconds":   time.Since(s.started).Seconds(),
		"htc_jobs_tracked":     float64(s.queue.Len()),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing more to do than drop the conn.
		_ = err
	}
}

// ErrorBody is the uniform error envelope of every /v1 endpoint:
//
//	{"error": {"code": "bad_request", "message": "..."}}
//
// The code is a stable, machine-readable slug derived from the HTTP
// status; the message is human-readable detail. Clients should branch on
// the code (or the HTTP status), never on message text.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the inner object of the error envelope.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorCode maps an HTTP status to the envelope's stable slug.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusTooManyRequests:
		return "queue_full"
	case http.StatusServiceUnavailable:
		return "shutting_down"
	}
	return "internal"
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorBody{Error: ErrorDetail{Code: errorCode(code), Message: msg}})
}
