package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"github.com/htc-align/htc/internal/align"
	"github.com/htc-align/htc/internal/datasets"
	"github.com/htc-align/htc/internal/metrics"
	"github.com/htc-align/htc/internal/refine"
)

// The /v1/refine service limits: the endpoint runs synchronously inside
// the HTTP handler (a refinement over an already-computed matching is
// orders of magnitude cheaper than an alignment job), so the iteration
// count is defaulted and capped rather than unbounded.
const (
	// DefaultRefineIters is the iteration count a request with
	// refine_iters = 0 runs.
	DefaultRefineIters = 5
	// MaxRefineIters bounds refine_iters per request.
	MaxRefineIters = 64
	// defaultRefineBudget is the per-row candidate budget a refined
	// matching may grow to when the request leaves refine_token_k at 0.
	defaultRefineBudget = 16
)

// RefineRequest is the body of POST /v1/refine: RefiNA-refine an
// existing alignment against its graph pair. Exactly one input shape is
// accepted — a finished single-config alignment job (Job), or a
// name-keyed matching over an uploaded dataset (Dataset + Matching).
type RefineRequest struct {
	// Job names a finished POST /v1/align job whose one-to-one matching
	// is refined against the job's own graph pair.
	Job string `json:"job,omitempty"`
	// Dataset names an uploaded dataset (PUT /v1/datasets/{id}) the
	// matching below refers to.
	Dataset string `json:"dataset,omitempty"`
	// Matching lists (source id, target id) pairs keyed by the dataset's
	// external node ids — an alignment produced outside this server.
	Matching [][2]string `json:"matching,omitempty"`
	// RefineIters is the RefiNA iteration count (0 = DefaultRefineIters,
	// capped at MaxRefineIters).
	RefineIters int `json:"refine_iters,omitempty"`
	// RefineTokenK bounds the token-match budget per row (0 = the row
	// candidate budget; see internal/refine).
	RefineTokenK int `json:"refine_token_k,omitempty"`
	// HitsAt lists the precision@q cutoffs for the before/after
	// evaluation (default 1, 5, 10; used only when truth is available).
	HitsAt []int `json:"hits_at,omitempty"`
}

// validate performs the checks that don't require graphs; every failure
// maps to a 400.
func (r *RefineRequest) validate() error {
	hasJob, hasDataset := r.Job != "", r.Dataset != ""
	switch {
	case hasJob && hasDataset:
		return fmt.Errorf("refine takes a job id or a dataset+matching, not both")
	case !hasJob && !hasDataset:
		return fmt.Errorf("refine needs either a job id or a dataset+matching")
	case hasJob && len(r.Matching) > 0:
		return fmt.Errorf("a job id implies its own matching; the matching field applies to dataset requests")
	case hasDataset && len(r.Matching) == 0:
		return fmt.Errorf("dataset requests need a non-empty matching")
	}
	if r.RefineIters < 0 || r.RefineIters > MaxRefineIters {
		return fmt.Errorf("refine_iters = %d outside [0, %d] (0 runs the default %d)", r.RefineIters, MaxRefineIters, DefaultRefineIters)
	}
	if r.RefineTokenK < 0 {
		return fmt.Errorf("refine_token_k = %d (want 0 for the automatic budget, or ≥ 1)", r.RefineTokenK)
	}
	for _, q := range r.HitsAt {
		if q < 1 {
			return fmt.Errorf("hits_at cutoffs must be ≥ 1, got %d", q)
		}
	}
	if len(r.HitsAt) > 16 {
		return fmt.Errorf("at most 16 hits_at cutoffs, got %d", len(r.HitsAt))
	}
	return nil
}

// iters resolves the requested iteration count.
func (r *RefineRequest) iters() int {
	if r.RefineIters == 0 {
		return DefaultRefineIters
	}
	return r.RefineIters
}

// RefineResult is the payload of POST /v1/refine.
type RefineResult struct {
	// Input names the input shape the request used ("job" or "dataset").
	Input string `json:"input"`
	// Iters and TokenK echo the resolved refinement parameters.
	Iters  int `json:"iters"`
	TokenK int `json:"token_k"`
	// MNC traces matched-neighborhood consistency: entry 0 is the input
	// matching's score, entry i the score after iteration i.
	MNC []float64 `json:"mnc"`
	// Pairs is the refined one-to-one matching: (source node, target
	// node) indices.
	Pairs [][2]int `json:"pairs"`
	// PairsNamed mirrors Pairs through the pair's external node ids when
	// a non-trivial id dictionary exists.
	PairsNamed [][2]string `json:"pairs_named,omitempty"`
	// EvalBefore and EvalAfter score the input and refined matchings
	// against the pair's ground truth (absent without truth).
	EvalBefore *EvalReport `json:"eval_before,omitempty"`
	EvalAfter  *EvalReport `json:"eval_after,omitempty"`
	// RefineMS is the refinement wall-clock cost in milliseconds.
	RefineMS float64 `json:"refine_ms"`
	// WorkersUsed is the CPU budget the refinement ran with.
	WorkersUsed int `json:"workers_used,omitempty"`
	// Cached reports that the result was served from the refine cache.
	Cached bool `json:"cached"`
}

// handleRefine serves POST /v1/refine synchronously: resolve the input
// matching and its graph pair, run RefiNA, extract the refined matching
// and the before/after metrics.
func (s *Server) handleRefine(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req RefineRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after request body")
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	var (
		pair     *datasets.Pair
		match    []int
		identity string
		input    string
	)
	if req.Job != "" {
		job, ok := s.queue.Get(req.Job)
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("no such job %q", req.Job))
			return
		}
		info := job.Info()
		switch {
		case info.Status != StatusDone:
			writeError(w, http.StatusBadRequest, fmt.Sprintf("job %q is %s; only done jobs can be refined", req.Job, info.Status))
			return
		case info.Result == nil:
			writeError(w, http.StatusBadRequest, fmt.Sprintf("job %q is a sweep; refine takes single-config alignment jobs", req.Job))
			return
		}
		p, err := resolvePair(job.Req, s.opts.MaxNodes)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		pair = p
		match = make([]int, pair.Source.N())
		for i := range match {
			match[i] = -1
		}
		for _, pr := range info.Result.Pairs {
			match[pr[0]] = pr[1]
		}
		// The job's cache key is the content identity of its request, and
		// the matching is a deterministic function of it.
		identity = "job:" + job.CacheKey
		input = "job"
	} else {
		ds := s.datasets.get(req.Dataset)
		if ds == nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("no such uploaded dataset %q", req.Dataset))
			return
		}
		pair = ds.pair
		m, err := matchingFromPairs(req.Matching, pair)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		match = m
		identity = "dataset:" + ds.contentHash()
		input = "dataset"
	}

	iters := req.iters()
	qs := sortedCutoffs(req.HitsAt)
	key := refineKey(identity, match, iters, req.RefineTokenK, qs)
	if cached := s.refines.get(key); cached != nil {
		s.metrics.RefineCacheHits.Add(1)
		writeJSON(w, http.StatusOK, cached)
		return
	}

	budget := req.RefineTokenK
	if budget == 0 {
		budget = defaultRefineBudget
	}
	sim, err := refine.FromMatching(match, pair.Target.N(), budget)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	workers := perJobWorkers(runtime.GOMAXPROCS(0), s.opts.Workers)
	start := time.Now()
	res, err := refine.Refine(sim, pair.Source, pair.Target, refine.Options{
		Iters: iters, TokenK: req.RefineTokenK, Workers: workers, Ctx: r.Context(),
	})
	if err != nil {
		if r.Context().Err() != nil {
			return // client went away mid-refinement; nothing to answer
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.metrics.RefineRuns.Add(1)
	s.metrics.RefineIterations.Add(int64(iters))

	out := &RefineResult{
		Input: input, Iters: iters, TokenK: res.TokenK, MNC: res.MNC,
		RefineMS:    float64(time.Since(start)) / float64(time.Millisecond),
		WorkersUsed: workers,
	}
	refined := align.GreedyMatchSim(res.Sim)
	out.Pairs = make([][2]int, 0, len(refined))
	for src, tgt := range refined {
		if tgt >= 0 {
			out.Pairs = append(out.Pairs, [2]int{src, tgt})
		}
	}
	if pair.SourceIDs != nil && pair.TargetIDs != nil &&
		!(pair.SourceIDs.IsIdentity() && pair.TargetIDs.IsIdentity()) {
		out.PairsNamed = make([][2]string, len(out.Pairs))
		for i, p := range out.Pairs {
			out.PairsNamed[i] = [2]string{pair.SourceIDs.ID(p[0]), pair.TargetIDs.ID(p[1])}
		}
	}
	if truth := pair.Truth; truth.NumAnchors() > 0 {
		before := metrics.EvaluateSim(sim, truth, qs...)
		after := metrics.EvaluateSim(res.Sim, truth, qs...)
		out.EvalBefore = &EvalReport{PrecisionAt: before.PrecisionAt, MRR: before.MRR, Anchors: before.Anchors}
		out.EvalAfter = &EvalReport{PrecisionAt: after.PrecisionAt, MRR: after.MRR, Anchors: after.Anchors}
	}
	s.refines.put(key, out)
	if s.opts.Log != nil {
		s.opts.Log.Printf("refine (%s) ran %d iters in %.0fms (%d pairs)", input, iters, out.RefineMS, len(out.Pairs))
	}
	writeJSON(w, http.StatusOK, out)
}

// matchingFromPairs resolves a name-keyed matching through the pair's id
// dictionaries into the index-keyed form, rejecting unknown ids and
// conflicting duplicates.
func matchingFromPairs(pairs [][2]string, pair *datasets.Pair) ([]int, error) {
	match := make([]int, pair.Source.N())
	for i := range match {
		match[i] = -1
	}
	for _, p := range pairs {
		s, ok := pair.SourceIDs.Index(p[0])
		if !ok {
			return nil, fmt.Errorf("matching names unknown source node %q", p[0])
		}
		t, ok := pair.TargetIDs.Index(p[1])
		if !ok {
			return nil, fmt.Errorf("matching names unknown target node %q", p[1])
		}
		if match[s] >= 0 && match[s] != t {
			return nil, fmt.Errorf("matching sends source node %q to two different targets", p[0])
		}
		match[s] = t
	}
	return match, nil
}

// refineKey derives the refine cache identity: the input matching's
// content identity plus the resolved matching and every knob that shapes
// the response.
func refineKey(identity string, match []int, iters, tokenK int, hitsAt []int) string {
	blob, _ := json.Marshal(struct {
		Identity string `json:"identity"`
		Match    []int  `json:"match"`
		Iters    int    `json:"iters"`
		TokenK   int    `json:"token_k"`
		HitsAt   []int  `json:"hits_at"`
	}{identity, match, iters, tokenK, hitsAt})
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}
