package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// topkBody is fastBody forced onto the top-k similarity backend.
func topkBody(dataSeed int64, k int) string {
	return fmt.Sprintf(`{"dataset":"synthetic","n":60,"data_seed":%d,
		"config":{"variant":"HTC-L","epochs":3,"hidden":8,"embed":4,"m":5,
		"similarity":"topk","candidate_k":%d}}`, dataSeed, k)
}

// TestAlignTopKJob: a top-k job reports its backend and candidate count
// in the result, returns pairs, and evaluates through the candidate
// lists.
func TestAlignTopKJob(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	code, info := submit(t, ts, topkBody(31, 10))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	info = waitFor(t, ts, info.ID, StatusDone)
	res := info.Result
	if res == nil {
		t.Fatal("no result payload")
	}
	if res.SimBackend != "topk" || res.CandidateK != 10 {
		t.Fatalf("sim_backend=%q candidate_k=%d, want topk/10", res.SimBackend, res.CandidateK)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no matched pairs")
	}
	if res.Eval == nil || res.Eval.Anchors == 0 {
		t.Fatal("no evaluation against the dataset's ground truth")
	}
}

// TestDenseJobReportsBackend: the default dense path names itself too,
// with candidate_k omitted.
func TestDenseJobReportsBackend(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	_, info := submit(t, ts, fastBody(32))
	info = waitFor(t, ts, info.ID, StatusDone)
	if info.Result.SimBackend != "dense" || info.Result.CandidateK != 0 {
		t.Fatalf("sim_backend=%q candidate_k=%d, want dense/0", info.Result.SimBackend, info.Result.CandidateK)
	}
}

// TestRejectBadCandidateK: an unusable candidate count is a 400 at
// admission, on both endpoints.
func TestRejectBadCandidateK(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	code, _ := submit(t, ts, topkBody(33, -1))
	if code != http.StatusBadRequest {
		t.Fatalf("align submit with candidate_k=-1: %d, want 400", code)
	}

	sweep := `{"dataset":"synthetic","n":60,
		"configs":[{"variant":"HTC-L","epochs":3,"hidden":8,"embed":4,"m":5,
		"similarity":"topk","candidate_k":-2}]}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(sweep))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sweep with candidate_k=-2: %d (%s), want 400", resp.StatusCode, blob)
	}
	if !strings.Contains(string(blob), "candidate_k") {
		t.Fatalf("error does not name the offending field: %s", blob)
	}
}

// TestRejectUnknownSimilarity: an unknown backend name fails JSON
// decoding with a 400 rather than silently running dense.
func TestRejectUnknownSimilarity(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	body := `{"dataset":"synthetic","n":60,"config":{"similarity":"cosine"}}`
	code, _ := submit(t, ts, body)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown similarity backend: %d, want 400", code)
	}
}

// TestBackendCacheKeySeparation: the same pair under dense and top-k
// must occupy distinct result-cache entries — the representations (and
// scores, at pruning k) genuinely differ.
func TestBackendCacheKeySeparation(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	_, dense := submit(t, ts, fastBody(34))
	waitFor(t, ts, dense.ID, StatusDone)
	code, topk := submit(t, ts, topkBody(34, 10))
	if code != http.StatusAccepted {
		t.Fatalf("top-k submission served from the dense cache entry (code %d)", code)
	}
	info := waitFor(t, ts, topk.ID, StatusDone)
	if info.Result.Cached {
		t.Fatal("top-k result claims to be cached")
	}
	if info.Result.SimBackend != "topk" {
		t.Fatalf("backend %q", info.Result.SimBackend)
	}

	// Resubmitting the identical top-k request is a cache hit.
	code, again := submit(t, ts, topkBody(34, 10))
	if code != http.StatusOK || again.Result == nil || !again.Result.Cached {
		t.Fatalf("identical top-k resubmission not served from cache (code %d)", code)
	}
	if again.Result.SimBackend != "topk" || again.Result.CandidateK != 10 {
		t.Fatalf("cached result lost backend fields: %+v", again.Result)
	}
}

// TestBackendPrometheusCounters: completed runs are tallied per backend.
func TestBackendPrometheusCounters(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	_, a := submit(t, ts, fastBody(35))
	waitFor(t, ts, a.ID, StatusDone)
	_, b := submit(t, ts, topkBody(35, 10))
	waitFor(t, ts, b.ID, StatusDone)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	text := string(blob)
	for _, want := range []string{"htc_sim_dense_runs_total 1", "htc_sim_topk_runs_total 1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
