package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// f32Body is topkBody on the float32 compute tier.
func f32Body(dataSeed int64, k int) string {
	return fmt.Sprintf(`{"dataset":"synthetic","n":60,"data_seed":%d,
		"config":{"variant":"HTC-L","epochs":3,"hidden":8,"embed":4,"m":5,
		"similarity":"topk","candidate_k":%d,"precision":"f32"}}`, dataSeed, k)
}

// TestAlignF32Job: an f32 job reports its tier in the result, returns
// pairs, and is tallied by the f32 Prometheus counter.
func TestAlignF32Job(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	code, info := submit(t, ts, f32Body(41, 10))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	info = waitFor(t, ts, info.ID, StatusDone)
	res := info.Result
	if res == nil {
		t.Fatal("no result payload")
	}
	if res.SimBackend != "topk" || res.Precision != "f32" {
		t.Fatalf("sim_backend=%q precision=%q, want topk/f32", res.SimBackend, res.Precision)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no matched pairs")
	}
	if res.TimingsMS.TotalBytes == 0 {
		t.Fatal("timings carry no allocation decomposition")
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(blob), "htc_sim_f32_runs_total 1") {
		t.Fatalf("metrics missing htc_sim_f32_runs_total 1:\n%s", blob)
	}
}

// TestPrecisionCacheKeySeparation: the same request at f64 and f32 must
// occupy distinct result-cache entries — the scores genuinely differ.
func TestPrecisionCacheKeySeparation(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	_, f64 := submit(t, ts, topkBody(42, 10))
	waitFor(t, ts, f64.ID, StatusDone)
	code, f32 := submit(t, ts, f32Body(42, 10))
	if code != http.StatusAccepted {
		t.Fatalf("f32 submission served from the f64 cache entry (code %d)", code)
	}
	info := waitFor(t, ts, f32.ID, StatusDone)
	if info.Result.Cached || info.Result.Precision != "f32" {
		t.Fatalf("f32 run: cached=%v precision=%q", info.Result.Cached, info.Result.Precision)
	}

	code, again := submit(t, ts, f32Body(42, 10))
	if code != http.StatusOK || again.Result == nil || !again.Result.Cached {
		t.Fatalf("identical f32 resubmission not served from cache (code %d)", code)
	}
	if again.Result.Precision != "f32" {
		t.Fatalf("cached result lost its precision: %+v", again.Result)
	}
}

// TestRejectBadPrecision: contradictory or unknown precision settings are
// a 400 at admission.
func TestRejectBadPrecision(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	for _, tc := range []struct{ name, config string }{
		{"f32 under dense", `{"similarity":"dense","precision":"f32"}`},
		{"unknown tier", `{"precision":"f16"}`},
	} {
		body := fmt.Sprintf(`{"dataset":"synthetic","n":60,"config":%s}`, tc.config)
		resp, err := http.Post(ts.URL+"/v1/align", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d (%s), want 400", tc.name, resp.StatusCode, blob)
		}
		var envelope ErrorBody
		if err := json.Unmarshal(blob, &envelope); err != nil || envelope.Error.Code != "bad_request" {
			t.Fatalf("%s: not the error envelope: %v\n%s", tc.name, err, blob)
		}
	}
}

// TestCapabilitiesPrecisions: the tier roster is advertised.
func TestCapabilitiesPrecisions(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/capabilities")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var caps Capabilities
	if err := json.NewDecoder(resp.Body).Decode(&caps); err != nil {
		t.Fatal(err)
	}
	want := []string{"auto", "f64", "f32"}
	if len(caps.Precisions) != len(want) {
		t.Fatalf("precisions = %v, want %v", caps.Precisions, want)
	}
	for i, p := range want {
		if caps.Precisions[i] != p {
			t.Fatalf("precisions = %v, want %v", caps.Precisions, want)
		}
	}
}
