package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// doJSON issues a request with a JSON body and returns status + body.
func doJSON(t *testing.T, ts *httptest.Server, method, path, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, blob
}

// uploadBody is a minimal valid dataset upload used across tests.
func uploadBody() string {
	return `{"format":"edgelist",
		"source":"a b\nb c\nc a\nc d\n",
		"target":"p q\nq r\nr p\nr s\n",
		"truth":"a p\nb q\nc r\nd s\n"}`
}

func TestDatasetLifecycle(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})

	code, blob := doJSON(t, ts, http.MethodPut, "/v1/datasets/tiny", uploadBody())
	if code != http.StatusCreated {
		t.Fatalf("first PUT: %d\n%s", code, blob)
	}
	var info DatasetInfo
	if err := json.Unmarshal(blob, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != "tiny" || info.Source.Nodes != 4 || info.Source.Edges != 4 ||
		info.Target.Nodes != 4 || info.Anchors != 4 || info.Source.Format != "edgelist" {
		t.Fatalf("upload info: %+v", info)
	}
	if info.PairHash == "" || info.ContentHash == "" {
		t.Fatalf("hashes missing: %+v", info)
	}

	// Replacement answers 200 and refreshes the entry.
	if code, blob = doJSON(t, ts, http.MethodPut, "/v1/datasets/tiny", uploadBody()); code != http.StatusOK {
		t.Fatalf("replace PUT: %d\n%s", code, blob)
	}

	code, blob = doJSON(t, ts, http.MethodGet, "/v1/datasets/tiny", "")
	if code != http.StatusOK {
		t.Fatalf("GET: %d\n%s", code, blob)
	}

	code, blob = doJSON(t, ts, http.MethodGet, "/v1/datasets", "")
	if code != http.StatusOK || !bytes.Contains(blob, []byte(`"tiny"`)) || !bytes.Contains(blob, []byte(`"synthetic"`)) {
		t.Fatalf("list: %d\n%s", code, blob)
	}

	if code, _ = doJSON(t, ts, http.MethodDelete, "/v1/datasets/tiny", ""); code != http.StatusOK {
		t.Fatalf("DELETE: %d", code)
	}
	if code, _ = doJSON(t, ts, http.MethodGet, "/v1/datasets/tiny", ""); code != http.StatusNotFound {
		t.Fatalf("GET after delete: %d", code)
	}
	if code, _ = doJSON(t, ts, http.MethodDelete, "/v1/datasets/tiny", ""); code != http.StatusNotFound {
		t.Fatalf("second DELETE: %d", code)
	}
}

func TestDatasetUploadValidation(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, MaxNodes: 5})
	cases := []struct {
		name, id, body string
		wantCode       int
	}{
		{"shadows builtin", "douban", uploadBody(), http.StatusBadRequest},
		{"bad id chars", "bad*id", uploadBody(), http.StatusBadRequest},
		{"id too long", strings.Repeat("x", 65), uploadBody(), http.StatusBadRequest},
		{"missing target", "d1", `{"source":"a b\n"}`, http.StatusBadRequest},
		{"unknown format", "d1", `{"format":"parquet","source":"a b\n","target":"a b\n"}`, http.StatusBadRequest},
		{"bad truth id", "d1", `{"source":"a b\n","target":"p q\n","truth":"zz p\n"}`, http.StatusBadRequest},
		{"over max nodes", "d1", `{"source":"a b\nb c\nc d\nd e\ne f\nf g\n","target":"p q\n"}`, http.StatusBadRequest},
		{"strict self-loop", "d1", `{"strict":true,"source":"a a\n","target":"p q\n"}`, http.StatusBadRequest},
		{"malformed json", "d1", `{"source": `, http.StatusBadRequest},
		// A header-claimed attribute dimension must not commit memory:
		// the upload path caps MaxAttrDim before dense.New runs.
		{"huge attr claim", "d1", `{"format":"htc-graph","source":"htc-graph 3 0 100000000\n","target":"p q\n"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, blob := doJSON(t, ts, http.MethodPut, "/v1/datasets/"+c.id, c.body); code != c.wantCode {
			t.Errorf("%s: got %d, want %d\n%s", c.name, code, c.wantCode, blob)
		}
	}
}

// TestDatasetAlignEndToEnd uploads a named pair, aligns it by dataset id,
// and checks that evaluation ran against the uploaded truth and the
// matching is reported by node name.
func TestDatasetAlignEndToEnd(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	if code, blob := doJSON(t, ts, http.MethodPut, "/v1/datasets/tiny", uploadBody()); code != http.StatusCreated {
		t.Fatalf("PUT: %d\n%s", code, blob)
	}

	body := `{"dataset":"tiny","config":{"variant":"HTC-L","epochs":3,"hidden":8,"embed":4,"m":5}}`
	code, info := submit(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	done := waitFor(t, ts, info.ID, StatusDone)
	res := done.Result
	if res == nil {
		t.Fatal("no result")
	}
	if res.Eval == nil || res.Eval.Anchors != 4 {
		t.Fatalf("eval missing or wrong anchors: %+v", res.Eval)
	}
	if len(res.PairsNamed) != len(res.Pairs) || len(res.Pairs) == 0 {
		t.Fatalf("named pairs missing: %+v vs %+v", res.PairsNamed, res.Pairs)
	}
	for _, p := range res.PairsNamed {
		if !strings.ContainsAny(p[0], "abcd") || !strings.ContainsAny(p[1], "pqrs") {
			t.Fatalf("unexpected names in %v", p)
		}
	}

	// The same content under another id must hit the result cache: the
	// cache key is the upload's content hash, not its name.
	if code, blob := doJSON(t, ts, http.MethodPut, "/v1/datasets/other", uploadBody()); code != http.StatusCreated {
		t.Fatalf("PUT other: %d\n%s", code, blob)
	}
	code, info = submit(t, ts, `{"dataset":"other","config":{"variant":"HTC-L","epochs":3,"hidden":8,"embed":4,"m":5}}`)
	if code != http.StatusOK {
		t.Fatalf("resubmission under new id: %d, want cached 200", code)
	}
	if info.Result == nil || !info.Result.Cached {
		t.Fatalf("expected cached result, got %+v", info.Result)
	}

	// Generator knobs and request truth don't apply to uploads.
	for _, bad := range []string{
		`{"dataset":"tiny","n":50}`,
		`{"dataset":"tiny","remove":0.2}`,
		`{"dataset":"tiny","data_seed":7}`,
		`{"dataset":"tiny","truth":[0,1,2,3]}`,
	} {
		if code, _ := submit(t, ts, bad); code != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400", bad, code)
		}
	}
}

// TestDatasetContentHashCoversNames locks the result-cache identity of
// uploads: structurally identical graphs with different node names must
// NOT share a content hash, or one dataset's cached pairs_named would be
// served for the other.
func TestDatasetContentHashCoversNames(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	renamed := `{"format":"edgelist",
		"source":"n1 n2\nn2 n3\nn3 n1\nn3 n4\n",
		"target":"m1 m2\nm2 m3\nm3 m1\nm3 m4\n",
		"truth":"n1 m1\nn2 m2\nn3 m3\nn4 m4\n"}`
	var a, b DatasetInfo
	_, blob := doJSON(t, ts, http.MethodPut, "/v1/datasets/orig", uploadBody())
	if err := json.Unmarshal(blob, &a); err != nil {
		t.Fatal(err)
	}
	_, blob = doJSON(t, ts, http.MethodPut, "/v1/datasets/renamed", renamed)
	if err := json.Unmarshal(blob, &b); err != nil {
		t.Fatal(err)
	}
	if a.PairHash != b.PairHash {
		t.Fatalf("structural pair hashes should agree: %s vs %s", a.PairHash, b.PairHash)
	}
	if a.ContentHash == b.ContentHash {
		t.Fatal("content hashes collide across different node names")
	}
}

// TestDatasetSweepSharesStore runs a sweep against an uploaded dataset.
func TestDatasetSweepSharesStore(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	if code, blob := doJSON(t, ts, http.MethodPut, "/v1/datasets/tiny", uploadBody()); code != http.StatusCreated {
		t.Fatalf("PUT: %d\n%s", code, blob)
	}
	body := `{"dataset":"tiny","configs":[
		{"variant":"HTC-L","epochs":2,"hidden":8,"embed":4,"m":5},
		{"variant":"HTC-LT","epochs":2,"hidden":8,"embed":4,"m":5}]}`
	code, blob := doJSON(t, ts, http.MethodPost, "/v1/sweep", body)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit: %d\n%s", code, blob)
	}
	var info JobInfo
	if err := json.Unmarshal(blob, &info); err != nil {
		t.Fatal(err)
	}
	done := waitFor(t, ts, info.ID, StatusDone)
	if done.Sweep == nil || len(done.Sweep.Results) != 2 {
		t.Fatalf("sweep payload: %+v", done.Sweep)
	}
	for i, entry := range done.Sweep.Results {
		if entry.Error != "" || entry.Result == nil {
			t.Fatalf("entry %d: %+v", i, entry)
		}
		if entry.Result.Eval == nil || len(entry.Result.PairsNamed) == 0 {
			t.Fatalf("entry %d lacks eval/named pairs: %+v", i, entry.Result)
		}
	}
}

// TestDatasetEviction checks the LRU bound and that an align job keeps
// working on a dataset deleted after submission (the pair is memoised at
// admission).
func TestDatasetEviction(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, DatasetCacheSize: 2})
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("d%d", i)
		if code, blob := doJSON(t, ts, http.MethodPut, "/v1/datasets/"+id, uploadBody()); code != http.StatusCreated {
			t.Fatalf("PUT %s: %d\n%s", id, code, blob)
		}
	}
	if code, _ := doJSON(t, ts, http.MethodGet, "/v1/datasets/d0", ""); code != http.StatusNotFound {
		t.Fatalf("d0 survived eviction: %d", code)
	}
	if code, _ := doJSON(t, ts, http.MethodGet, "/v1/datasets/d2", ""); code != http.StatusOK {
		t.Fatalf("d2 evicted: %d", code)
	}
	// Submitting then deleting must not strand the job.
	code, info := submit(t, ts, `{"dataset":"d2","config":{"variant":"HTC-L","epochs":2,"hidden":8,"embed":4,"m":5}}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	doJSON(t, ts, http.MethodDelete, "/v1/datasets/d2", "")
	if code == http.StatusAccepted {
		waitFor(t, ts, info.ID, StatusDone)
	}
}

// TestInlineTruthPairs covers the name-keyed truth of inline requests
// whose specs carry ids.
func TestInlineTruthPairs(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	body := `{
		"source": {"nodes": 3, "edges": [[0,1],[1,2]], "ids": ["a","b","c"]},
		"target": {"nodes": 3, "edges": [[0,1],[1,2]], "ids": ["x","y","z"]},
		"truth_pairs": [["a","x"],["b","y"],["c","z"]],
		"config": {"variant":"HTC-L","epochs":2,"hidden":8,"embed":4,"m":5}}`
	code, info := submit(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	done := waitFor(t, ts, info.ID, StatusDone)
	if done.Result == nil || done.Result.Eval == nil || done.Result.Eval.Anchors != 3 {
		t.Fatalf("eval: %+v", done.Result)
	}
	if len(done.Result.PairsNamed) == 0 {
		t.Fatalf("named pairs missing: %+v", done.Result)
	}

	for _, bad := range []string{
		`{"source": {"nodes": 2, "edges": [[0,1]], "ids": ["a","b"]},
		  "target": {"nodes": 2, "edges": [[0,1]]},
		  "truth_pairs": [["a","nope"]], "config": {}}`,
		`{"source": {"nodes": 2, "edges": [[0,1]]},
		  "target": {"nodes": 2, "edges": [[0,1]]},
		  "truth": [0,1], "truth_pairs": [["0","0"]], "config": {}}`,
	} {
		if code, _ := submit(t, ts, bad); code != http.StatusBadRequest {
			t.Errorf("accepted bad truth_pairs request (%d): %s", code, bad)
		}
	}
}
