package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// postJSON submits a body to an arbitrary endpoint and decodes the
// JobInfo when the server accepted it.
func postJSON(t *testing.T, ts *httptest.Server, path, body string) (int, JobInfo) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	var info JobInfo
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(blob, &info); err != nil {
			t.Fatalf("decoding %s: %v", blob, err)
		}
	}
	return resp.StatusCode, info
}

// sweepBody is a 3-config sweep over a small synthetic pair: two
// orbit-based variants sharing one artifact build plus the low-order
// ablation.
func sweepBody(dataSeed int64) string {
	return fmt.Sprintf(`{"dataset":"synthetic","n":60,"data_seed":%d,
		"configs":[
			{"variant":"HTC","k":4,"epochs":3,"hidden":8,"embed":4,"m":5},
			{"variant":"HTC-H","k":4,"epochs":3,"hidden":8,"embed":4,"m":5},
			{"variant":"HTC-L","epochs":3,"hidden":8,"embed":4,"m":5}
		]}`, dataSeed)
}

func TestSweepEndToEnd(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})

	code, info := postJSON(t, ts, "/v1/sweep", sweepBody(41))
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit: %d, want 202", code)
	}
	done := waitFor(t, ts, info.ID, StatusDone)
	sweep := done.Sweep
	if sweep == nil {
		t.Fatal("done sweep job carries no sweep payload")
	}
	if done.Result != nil {
		t.Error("sweep jobs must not populate the single-config result field")
	}
	if len(sweep.Results) != 3 {
		t.Fatalf("sweep returned %d entries, want 3", len(sweep.Results))
	}
	if sweep.PairHash == "" {
		t.Error("sweep should report the shared pair hash")
	}
	if sweep.PreparedCached {
		t.Error("first job on a pair cannot hit the artifact cache")
	}
	for i, entry := range sweep.Results {
		if entry.Error != "" || entry.Result == nil {
			t.Fatalf("entry %d failed: %q", i, entry.Error)
		}
		if len(entry.Result.Pairs) == 0 {
			t.Errorf("entry %d has no matched pairs", i)
		}
		if entry.Result.Eval == nil {
			t.Errorf("entry %d missing evaluation against dataset truth", i)
		}
	}
	// Entries beyond the first share the sweep's prepared artifacts.
	if !sweep.Results[1].Result.PreparedCached {
		t.Error("second entry should report prepared-artifact reuse")
	}
	// The orbit-based entries must skip recounting: entry 1 (HTC-H shares
	// HTC's artifact family) reports (near-)zero build time.
	if ms := sweep.Results[1].Result.TimingsMS; ms.OrbitCounting > sweep.Results[0].Result.TimingsMS.OrbitCounting/2+1 {
		t.Errorf("HTC-H entry recounted orbits: %+v vs first entry %+v", ms, sweep.Results[0].Result.TimingsMS)
	}

	// Each entry landed in the single-config result cache: submitting one
	// of the configs to /v1/align is a cache hit (200).
	single := fmt.Sprintf(`{"dataset":"synthetic","n":60,"data_seed":%d,
		"config":{"variant":"HTC-H","k":4,"epochs":3,"hidden":8,"embed":4,"m":5}}`, 41)
	code, hit := submit(t, ts, single)
	if code != http.StatusOK {
		t.Fatalf("single submit after sweep: %d, want 200 cache hit", code)
	}
	if hit.Result == nil || !hit.Result.Cached {
		t.Fatalf("expected cached result, got %+v", hit)
	}

	// A repeat of the whole sweep is assembled from cache: immediate 200.
	code, again := postJSON(t, ts, "/v1/sweep", sweepBody(41))
	if code != http.StatusOK {
		t.Fatalf("repeat sweep: %d, want 200", code)
	}
	if again.Sweep == nil || len(again.Sweep.Results) != 3 {
		t.Fatalf("repeat sweep payload: %+v", again.Sweep)
	}
	for i, entry := range again.Sweep.Results {
		if entry.Result == nil || !entry.Result.Cached {
			t.Errorf("repeat sweep entry %d should be cache-served", i)
		}
	}

	// And a later single-config job on the same pair reuses the prepared
	// artifacts across jobs.
	other := fmt.Sprintf(`{"dataset":"synthetic","n":60,"data_seed":%d,
		"config":{"variant":"HTC","k":4,"epochs":5,"hidden":8,"embed":4,"m":5}}`, 41)
	code, info = submit(t, ts, other)
	if code != http.StatusAccepted {
		t.Fatalf("fresh config submit: %d, want 202", code)
	}
	fresh := waitFor(t, ts, info.ID, StatusDone)
	if fresh.Result == nil || !fresh.Result.PreparedCached {
		t.Error("job on a previously prepared pair should reuse its artifacts")
	}
}

func TestSweepValidation(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name, body string
	}{
		{"no configs", `{"dataset":"synthetic"}`},
		{"empty configs", `{"dataset":"synthetic","configs":[]}`},
		{"config and configs", `{"dataset":"synthetic","config":{"epochs":3},"configs":[{"epochs":3}]}`},
		{"bad variant inside configs", `{"dataset":"synthetic","configs":[{"variant":"HTC-XXL"}]}`},
		{"too many configs", fmt.Sprintf(`{"dataset":"synthetic","configs":[%s]}`,
			strings.TrimSuffix(strings.Repeat(`{"epochs":1},`, MaxSweepConfigs+1), ","))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _ := postJSON(t, ts, "/v1/sweep", tc.body)
			if code != http.StatusBadRequest {
				t.Errorf("%s: got %d, want 400", tc.name, code)
			}
		})
	}
}

// TestQueuePosition pins the "waiting behind N others" contract: queued
// jobs report their place in line, and cancellations move the line up.
func TestQueuePosition(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8})

	// Occupy the single worker indefinitely.
	slow := `{"dataset":"synthetic","n":150,
		"config":{"variant":"HTC-L","epochs":100000,"hidden":8,"embed":4}}`
	_, hog := submit(t, ts, slow)
	// Wait until the hog actually holds the worker, so the queue is empty
	// behind it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, info := getJob(t, ts, hog.ID); info.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hog job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var waiting []JobInfo
	for i := 0; i < 3; i++ {
		code, info := submit(t, ts, fastBody(int64(50+i)))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		if info.QueuePosition != i+1 {
			t.Errorf("submit response %d: queue_position = %d, want %d", i, info.QueuePosition, i+1)
		}
		waiting = append(waiting, info)
	}
	for i, info := range waiting {
		_, polled := getJob(t, ts, info.ID)
		if polled.Status != StatusQueued || polled.QueuePosition != i+1 {
			t.Errorf("job %d: status=%s position=%d, want queued at %d", i, polled.Status, polled.QueuePosition, i+1)
		}
	}

	// Cancelling the middle job promotes the one behind it.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+waiting[1].ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, polled := getJob(t, ts, waiting[2].ID); polled.QueuePosition != 2 {
		t.Errorf("after cancelling the middle job: position = %d, want 2", polled.QueuePosition)
	}

	// Unblock the worker and let everything drain.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+hog.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	done := waitFor(t, ts, waiting[2].ID, StatusDone)
	if done.QueuePosition != 0 {
		t.Errorf("finished job still reports queue_position %d", done.QueuePosition)
	}
}

// TestJobProgress verifies a running job exposes a live progress block
// and that it disappears once the job reaches a terminal state.
func TestJobProgress(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})

	slow := `{"dataset":"synthetic","n":150,
		"config":{"variant":"HTC-L","epochs":100000,"hidden":8,"embed":4}}`
	code, info := submit(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}

	var progress *ProgressInfo
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, polled := getJob(t, ts, info.ID)
		if polled.Progress != nil && polled.Progress.Stage == "train" {
			progress = polled.Progress
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if progress == nil {
		t.Fatal("running job never reported training progress")
	}
	if progress.Total != 100000 || progress.Done < 1 {
		t.Errorf("unexpected training progress %+v", progress)
	}
	if progress.Config != 0 || progress.Configs != 0 {
		t.Errorf("single-config job should not report sweep coordinates: %+v", progress)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := waitFor(t, ts, info.ID, StatusCancelled)
	if final.Progress != nil {
		t.Error("terminal job should not carry a progress block")
	}
}

// TestSweepProgressCoordinates checks that sweep jobs locate their
// progress within the config list.
func TestSweepProgressCoordinates(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})

	body := `{"dataset":"synthetic","n":120,
		"configs":[{"variant":"HTC-L","epochs":100000,"hidden":8,"embed":4}]}`
	code, info := postJSON(t, ts, "/v1/sweep", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	var progress *ProgressInfo
	for time.Now().Before(deadline) {
		_, polled := getJob(t, ts, info.ID)
		if polled.Progress != nil {
			progress = polled.Progress
			if progress.Config == 1 && progress.Configs == 1 {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if progress == nil || progress.Config != 1 || progress.Configs != 1 {
		t.Fatalf("sweep progress coordinates: %+v, want config 1/1", progress)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFor(t, ts, info.ID, StatusCancelled)
}
