package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// JobStatus is the lifecycle state of a queued alignment.
type JobStatus string

// The job lifecycle: queued → running → done | failed | cancelled.
// Cancellation can also strike while still queued.
const (
	StatusQueued    JobStatus = "queued"
	StatusRunning   JobStatus = "running"
	StatusDone      JobStatus = "done"
	StatusFailed    JobStatus = "failed"
	StatusCancelled JobStatus = "cancelled"
)

// ErrQueueFull reports that the submission backlog is at capacity; the
// HTTP layer maps it to 429.
var ErrQueueFull = errors.New("server: job queue is full")

// ErrQueueClosed reports a submission after shutdown began.
var ErrQueueClosed = errors.New("server: job queue is closed")

// Job is one alignment submission moving through the queue. All mutable
// state is guarded by mu; Info snapshots it for serialisation.
type Job struct {
	ID string
	// Req is the validated request; CacheKey its content hash (empty for
	// sweep jobs, whose results are cached per config instead).
	Req      *AlignRequest
	CacheKey string

	ctx    context.Context
	cancel context.CancelFunc

	// enqSeq orders jobs by submission for queue-position reporting.
	enqSeq uint64

	mu        sync.Mutex
	status    JobStatus
	err       error
	result    any // *AlignResult or *SweepResult
	progress  *ProgressInfo
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Cancel requests cooperative cancellation. A queued job is marked
// cancelled immediately (the worker that later pops it skips it); a
// running job's context is cancelled and the pipeline aborts at its next
// check. Finished jobs are unaffected.
func (j *Job) Cancel() {
	j.mu.Lock()
	if j.status == StatusQueued {
		j.status = StatusCancelled
		j.finished = time.Now()
	}
	j.mu.Unlock()
	j.cancel()
}

// SetProgress publishes a running job's live pipeline progress; poll
// responses mirror the latest value. Updates after the job left the
// running state are dropped (a cancelled pipeline may still emit a few
// trailing events).
func (j *Job) SetProgress(p ProgressInfo) {
	j.mu.Lock()
	if j.status == StatusRunning {
		j.progress = &p
	}
	j.mu.Unlock()
}

// Info snapshots the job for the API.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{ID: j.ID, Status: j.status, SubmittedAt: j.submitted}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		info.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		info.FinishedAt = &t
	}
	if j.status == StatusRunning && j.progress != nil {
		p := *j.progress
		info.Progress = &p
	}
	if j.status == StatusDone {
		switch r := j.result.(type) {
		case *AlignResult:
			info.Result = r
		case *SweepResult:
			info.Sweep = r
		}
	}
	return info
}

// Runner executes one job's alignment; the queue retains the returned
// result (an *AlignResult or *SweepResult) on success. A Runner must
// honour ctx promptly — that is what frees the worker when a client
// abandons its job.
type Runner func(ctx context.Context, job *Job) (any, error)

// Queue is a bounded in-process job queue drained by a fixed worker
// pool. Finished job records are retained (capped) so clients can poll
// results after completion.
type Queue struct {
	runner  Runner
	metrics *Metrics
	ch      chan *Job
	workers int

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	seq atomic.Uint64
	enq atomic.Uint64

	mu         sync.Mutex
	closed     bool
	jobs       map[string]*Job
	finished   []string // finish order, for record eviction
	maxRecords int
}

// NewQueue starts a queue with the given worker count and backlog depth.
// runner executes each job; metrics may be nil.
func NewQueue(workers, depth int, runner Runner, metrics *Metrics) *Queue {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 2 * workers
	}
	if metrics == nil {
		metrics = &Metrics{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		runner:  runner,
		metrics: metrics,
		ch:      make(chan *Job, depth),
		workers: workers,
		baseCtx: ctx, baseCancel: cancel,
		jobs:       make(map[string]*Job),
		maxRecords: 1024,
	}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.work()
	}
	return q
}

// Workers returns the size of the worker pool.
func (q *Queue) Workers() int { return q.workers }

// Depth returns (queued-but-unclaimed jobs, backlog capacity).
func (q *Queue) Depth() (int, int) { return len(q.ch), cap(q.ch) }

func (q *Queue) newID() string {
	var buf [4]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// Fall back to the sequence alone; IDs stay unique in-process.
		return fmt.Sprintf("job-%06d", q.seq.Add(1))
	}
	return fmt.Sprintf("job-%06d-%s", q.seq.Add(1), hex.EncodeToString(buf[:]))
}

// Submit enqueues a validated request. It never blocks: when the backlog
// is full it fails with ErrQueueFull.
func (q *Queue) Submit(req *AlignRequest, cacheKey string) (*Job, error) {
	ctx, cancel := context.WithCancel(q.baseCtx)
	job := &Job{
		ID: q.newID(), Req: req, CacheKey: cacheKey,
		ctx: ctx, cancel: cancel,
		enqSeq: q.enq.Add(1),
		status: StatusQueued, submitted: time.Now(),
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		cancel()
		return nil, ErrQueueClosed
	}
	q.jobs[job.ID] = job
	q.mu.Unlock()

	select {
	case q.ch <- job:
		q.metrics.JobsSubmitted.Add(1)
		return job, nil
	default:
		q.mu.Lock()
		delete(q.jobs, job.ID)
		q.mu.Unlock()
		cancel()
		q.metrics.JobsRejected.Add(1)
		return nil, ErrQueueFull
	}
}

// Record registers an already-finished job — the cache-hit path, so that
// polling works uniformly for cached submissions. res is an *AlignResult
// or *SweepResult.
func (q *Queue) Record(req *AlignRequest, cacheKey string, res any) *Job {
	ctx, cancel := context.WithCancel(q.baseCtx)
	cancel()
	now := time.Now()
	job := &Job{
		ID: q.newID(), Req: req, CacheKey: cacheKey,
		ctx: ctx, cancel: func() {},
		status: StatusDone, result: res,
		submitted: now, started: now, finished: now,
	}
	q.mu.Lock()
	if !q.closed {
		q.jobs[job.ID] = job
		q.finished = append(q.finished, job.ID)
		q.evictLocked()
	}
	q.mu.Unlock()
	return job
}

// Get returns the job with the given id.
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok := q.jobs[id]
	return job, ok
}

// Position reports a queued job's 1-based place in line: one more than
// the number of still-queued jobs submitted before it. Jobs cancelled
// while waiting drop out of everyone's count immediately (the worker
// that eventually pops them skips them in microseconds). Returns 0 for
// jobs that are no longer queued. The answer is a snapshot — by the time
// the client reads it the queue may have moved — which is exactly what a
// "waiting behind N others" poll wants.
func (q *Queue) Position(job *Job) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	job.mu.Lock()
	seq, queued := job.enqSeq, job.status == StatusQueued
	job.mu.Unlock()
	if !queued {
		return 0
	}
	pos := 1
	for _, other := range q.jobs {
		if other == job {
			continue
		}
		other.mu.Lock()
		if other.status == StatusQueued && other.enqSeq < seq {
			pos++
		}
		other.mu.Unlock()
	}
	return pos
}

// Len returns the number of retained job records.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.jobs)
}

// Close stops accepting submissions, cancels every outstanding job and
// waits for the workers to drain.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	q.mu.Unlock()
	q.baseCancel()
	q.wg.Wait()
}

func (q *Queue) work() {
	defer q.wg.Done()
	for {
		select {
		case <-q.baseCtx.Done():
			return
		case job := <-q.ch:
			q.run(job)
		}
	}
}

func (q *Queue) run(job *Job) {
	job.mu.Lock()
	if job.status != StatusQueued { // cancelled while waiting
		job.mu.Unlock()
		q.metrics.JobsCancelled.Add(1)
		q.recordFinished(job)
		return
	}
	job.status = StatusRunning
	job.started = time.Now()
	job.mu.Unlock()

	q.metrics.JobsRunning.Add(1)
	res, err := q.runner(job.ctx, job)
	q.metrics.JobsRunning.Add(-1)

	job.mu.Lock()
	job.finished = time.Now()
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || job.ctx.Err() != nil):
		job.status = StatusCancelled
		job.err = context.Canceled
		q.metrics.JobsCancelled.Add(1)
	case err != nil:
		job.status = StatusFailed
		job.err = err
		q.metrics.JobsFailed.Add(1)
	default:
		job.status = StatusDone
		job.result = res
		q.metrics.JobsCompleted.Add(1)
	}
	job.mu.Unlock()
	job.cancel() // release the context's resources
	q.recordFinished(job)
}

// recordFinished appends the job to the finish log and evicts the oldest
// finished records beyond the retention cap.
func (q *Queue) recordFinished(job *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, tracked := q.jobs[job.ID]; tracked {
		q.finished = append(q.finished, job.ID)
		q.evictLocked()
	}
}

func (q *Queue) evictLocked() {
	for len(q.finished) > q.maxRecords {
		delete(q.jobs, q.finished[0])
		q.finished = q.finished[1:]
	}
}
