package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// annBody is topkBody swapped onto the ANN backend with explicit LSH
// knobs.
func annBody(dataSeed int64, k, bits, probes int) string {
	return fmt.Sprintf(`{"dataset":"synthetic","n":60,"data_seed":%d,
		"config":{"variant":"HTC-L","epochs":3,"hidden":8,"embed":4,"m":5,
		"similarity":"ann","candidate_k":%d,"ann_bits":%d,"ann_probes":%d}}`,
		dataSeed, k, bits, probes)
}

// TestAlignAnnJob: an ann job reports its backend and resolved LSH
// parameters in the result and stays functional end to end.
func TestAlignAnnJob(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	code, info := submit(t, ts, annBody(41, 10, 5, 8))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	info = waitFor(t, ts, info.ID, StatusDone)
	res := info.Result
	if res == nil {
		t.Fatal("no result payload")
	}
	if res.SimBackend != "ann" || res.CandidateK != 10 || res.AnnBits != 5 || res.AnnProbes != 8 {
		t.Fatalf("got backend=%q k=%d bits=%d probes=%d, want ann/10/5/8",
			res.SimBackend, res.CandidateK, res.AnnBits, res.AnnProbes)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no matched pairs")
	}
	if res.Eval == nil || res.Eval.Anchors == 0 {
		t.Fatal("no evaluation against the dataset's ground truth")
	}
	if res.Ann == nil {
		t.Fatal("ann job carries no ann_stats block")
	}
	if res.Ann.Fits <= 0 || res.Ann.RowsHashed <= 0 || res.Ann.Queries <= 0 || res.Ann.PoolRowsMean <= 0 {
		t.Fatalf("empty ann_stats: %+v", res.Ann)
	}
	if res.Ann.Buckets != 1<<5 {
		t.Fatalf("ann_stats buckets = %d, want %d", res.Ann.Buckets, 1<<5)
	}
}

// TestAnnExactHatchMatchesTopK: a full-probe ann job and the equivalent
// topk job produce identical matchings and evaluations — the server-level
// view of the exactness escape hatch — while occupying distinct cache
// entries.
func TestAnnExactHatchMatchesTopK(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	_, tk := submit(t, ts, topkBody(42, 10))
	tkInfo := waitFor(t, ts, tk.ID, StatusDone)
	code, an := submit(t, ts, annBody(42, 10, 4, 16)) // 16 = 2^4: exact
	if code != http.StatusAccepted {
		t.Fatalf("ann submission served from the topk cache entry (code %d)", code)
	}
	anInfo := waitFor(t, ts, an.ID, StatusDone)

	tr, ar := tkInfo.Result, anInfo.Result
	if len(tr.Pairs) != len(ar.Pairs) {
		t.Fatalf("pair counts differ: topk %d, ann %d", len(tr.Pairs), len(ar.Pairs))
	}
	for i := range tr.Pairs {
		if tr.Pairs[i] != ar.Pairs[i] {
			t.Fatalf("pair %d differs: topk %v, ann %v", i, tr.Pairs[i], ar.Pairs[i])
		}
	}
	if tr.Eval.MRR != ar.Eval.MRR {
		t.Fatalf("MRR differs: topk %v, ann %v", tr.Eval.MRR, ar.Eval.MRR)
	}
}

// TestRejectIgnoredSimKnobs: knobs the resolved backend would ignore are
// a 400 at admission with the uniform error envelope.
func TestRejectIgnoredSimKnobs(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name, config string
	}{
		{"candidate_k under dense", `{"similarity":"dense","candidate_k":8}`},
		{"ann_bits under topk", `{"similarity":"topk","ann_bits":6}`},
		{"ann_probes under dense", `{"similarity":"dense","ann_probes":4}`},
		{"ann_bits out of range", `{"similarity":"ann","ann_bits":99}`},
		{"negative ann_probes", `{"similarity":"ann","ann_probes":-1}`},
		{"ann_pool_cap under topk", `{"similarity":"topk","ann_pool_cap":64}`},
		{"negative ann_pool_cap", `{"similarity":"ann","ann_pool_cap":-1}`},
	}
	for _, tc := range cases {
		body := fmt.Sprintf(`{"dataset":"synthetic","n":60,"config":%s}`, tc.config)
		resp, err := http.Post(ts.URL+"/v1/align", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d (%s), want 400", tc.name, resp.StatusCode, blob)
		}
		var envelope ErrorBody
		if err := json.Unmarshal(blob, &envelope); err != nil {
			t.Fatalf("%s: response is not the error envelope: %v\n%s", tc.name, err, blob)
		}
		if envelope.Error.Code != "bad_request" || envelope.Error.Message == "" {
			t.Fatalf("%s: envelope %+v", tc.name, envelope)
		}
	}
}

// TestAnnPrometheusCounters: ann runs are tallied, and full-probe runs
// additionally count as exact.
func TestAnnPrometheusCounters(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	_, a := submit(t, ts, annBody(43, 10, 5, 8))
	waitFor(t, ts, a.ID, StatusDone)
	_, b := submit(t, ts, annBody(43, 10, 4, 16))
	waitFor(t, ts, b.ID, StatusDone)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	text := string(blob)
	for _, want := range []string{"htc_sim_ann_runs_total 2", "htc_sim_ann_exact_runs_total 1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	// The skew/refit observability counters exist and accumulated work:
	// both runs re-ranked candidate pools, so the pool-rows counter must
	// be positive (its exact value depends on the probe sequence).
	for _, name := range []string{"htc_sim_ann_pool_rows", "htc_sim_ann_refit_reuse_total"} {
		if !strings.Contains(text, "# TYPE "+name+" counter") {
			t.Fatalf("metrics missing counter %s:\n%s", name, text)
		}
		if strings.Contains(text, name+" 0\n") && name == "htc_sim_ann_pool_rows" {
			t.Fatalf("%s never accumulated:\n%s", name, text)
		}
	}
}

// TestCapabilities: the discovery endpoint names every backend with its
// knobs, the ingest formats and the variant roster.
func TestCapabilities(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/capabilities")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capabilities: %d", resp.StatusCode)
	}
	var caps Capabilities
	if err := json.NewDecoder(resp.Body).Decode(&caps); err != nil {
		t.Fatal(err)
	}
	names := make(map[string][]string, len(caps.SimilarityBackends))
	for _, b := range caps.SimilarityBackends {
		names[b.Name] = b.Knobs
	}
	if _, ok := names["ann"]; !ok {
		t.Fatalf("ann backend missing from %v", caps.SimilarityBackends)
	}
	for _, knob := range []string{"candidate_k", "ann_bits", "ann_probes", "ann_pool_cap"} {
		if !contains(names["ann"], knob) {
			t.Fatalf("ann backend does not advertise %s: %v", knob, names["ann"])
		}
	}
	if len(names["dense"]) != 0 {
		t.Fatalf("dense backend advertises knobs %v", names["dense"])
	}
	if len(caps.IngestFormats) == 0 || len(caps.Variants) == 0 || len(caps.Datasets) == 0 {
		t.Fatalf("incomplete capabilities: %+v", caps)
	}
	if caps.MaxSweepConfigs != MaxSweepConfigs {
		t.Fatalf("max_sweep_configs = %d", caps.MaxSweepConfigs)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
