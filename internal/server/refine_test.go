package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// refineBody posts a /v1/refine request and decodes the 200 payload.
func refineBody(t *testing.T, url, body string) *RefineResult {
	t.Helper()
	resp, err := http.Post(url+"/v1/refine", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refine: %d\n%s", resp.StatusCode, blob)
	}
	var out RefineResult
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatalf("decoding refine result: %v\n%s", err, blob)
	}
	return &out
}

// TestRefineCacheAndMetrics exercises the refine result cache (a repeated
// request is served from cache, flagged Cached) and the htc_refine_*
// counters on /v1/metrics.
func TestRefineCacheAndMetrics(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	code, info := submit(t, ts, readFixture(t, "align_request.json"))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitFor(t, ts, info.ID, StatusDone)

	body := fmt.Sprintf(`{"job": %q, "refine_iters": 2}`, info.ID)
	first := refineBody(t, ts.URL, body)
	if first.Cached {
		t.Fatal("first refine flagged Cached")
	}
	if first.Iters != 2 || len(first.MNC) != 3 {
		t.Fatalf("iters = %d, MNC trace %v; want 2 iterations and a 3-entry trace", first.Iters, first.MNC)
	}
	if len(first.Pairs) == 0 {
		t.Fatal("refined matching is empty")
	}
	if first.EvalBefore == nil || first.EvalAfter == nil {
		t.Fatal("synthetic pair has full truth; expected before/after evaluations")
	}

	second := refineBody(t, ts.URL, body)
	if !second.Cached {
		t.Fatal("repeated refine was recomputed instead of cache-served")
	}
	if !jsonEqual(t, first.Pairs, second.Pairs) || !jsonEqual(t, first.MNC, second.MNC) {
		t.Fatal("cache-served refine differs from the original result")
	}

	// A different knob setting is a different cache identity.
	third := refineBody(t, ts.URL, fmt.Sprintf(`{"job": %q, "refine_iters": 3}`, info.ID))
	if third.Cached {
		t.Fatal("refine with a different iteration count hit the cache")
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := readAll(resp)
	text := string(blob)
	for _, want := range []string{
		"htc_refine_runs_total 2",
		"htc_refine_iters_total 5",
		"htc_refine_cache_hits_total 1",
		"htc_refine_entries 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestRefineAlignJobCountsMetric covers the pipeline-side counter: a job
// whose config enables stage-6 refinement bumps
// htc_refined_align_runs_total.
func TestRefineAlignJobCountsMetric(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	code, info := submit(t, ts, readFixture(t, "refine_align_request.json"))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	done := waitFor(t, ts, info.ID, StatusDone)
	if done.Result == nil {
		t.Fatal("no result")
	}
	if len(done.Result.RefineMNC) != 4 {
		t.Fatalf("refine_mnc %v; want initial score plus 3 iterations", done.Result.RefineMNC)
	}
	if done.Result.EvalPreRefine == nil {
		t.Fatal("refined job payload is missing the pre-refine evaluation")
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := readAll(resp)
	if !strings.Contains(string(blob), "htc_refined_align_runs_total 1") {
		t.Errorf("metrics output missing htc_refined_align_runs_total 1:\n%s", blob)
	}
}

// TestRefineRejectsRunningAndSweepJobs covers the job-shape 400s that the
// golden error suite doesn't: a sweep job has no single matching to
// refine.
func TestRefineRejectsSweepJobs(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(readFixture(t, "sweep_request.json")))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := readAll(resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: %d\n%s", resp.StatusCode, blob)
	}
	var info JobInfo
	if err := json.Unmarshal(blob, &info); err != nil {
		t.Fatal(err)
	}
	waitFor(t, ts, info.ID, StatusDone)

	resp, err = http.Post(ts.URL+"/v1/refine", "application/json",
		strings.NewReader(fmt.Sprintf(`{"job": %q}`, info.ID)))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ = readAll(resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("refining a sweep job: %d, want 400\n%s", resp.StatusCode, blob)
	}
	if !bytes.Contains(blob, []byte("sweep")) {
		t.Errorf("error message should name the sweep shape, got %s", blob)
	}
}

// jsonEqual compares two values through their canonical JSON encodings.
func jsonEqual(t *testing.T, a, b any) bool {
	t.Helper()
	ab, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ab, bb)
}
