package server

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"github.com/htc-align/htc/internal/core"
)

// Metrics holds the service counters, exposed in Prometheus text format
// by GET /v1/metrics. All fields are manipulated atomically; the zero
// value is ready to use.
type Metrics struct {
	JobsSubmitted atomic.Int64
	JobsRejected  atomic.Int64
	JobsCompleted atomic.Int64
	JobsFailed    atomic.Int64
	JobsCancelled atomic.Int64
	JobsRunning   atomic.Int64 // gauge: jobs currently holding a worker
	CacheHits     atomic.Int64
	CacheMisses   atomic.Int64
	// PreparedHits/Misses count artifact-cache lookups: a hit means a job
	// skipped the orbit-counting and Laplacian stages entirely because an
	// earlier job on the same graph pair already built them.
	PreparedHits   atomic.Int64
	PreparedMisses atomic.Int64
	// SweepConfigs counts individual configurations executed by sweep
	// jobs (cache-served entries included).
	SweepConfigs atomic.Int64
	// DatasetUploads counts PUT /v1/datasets admissions (replacements
	// included); DatasetEvictions counts LRU evictions from the store;
	// DatasetAlignRuns counts pipeline runs resolved from an uploaded
	// dataset.
	DatasetUploads   atomic.Int64
	DatasetEvictions atomic.Int64
	DatasetAlignRuns atomic.Int64
	// SimDenseRuns/SimTopKRuns/SimAnnRuns count completed pipeline runs
	// per similarity backend (auto configs count under the backend they
	// resolved to), so operators can see the backend mix their traffic
	// actually exercises. SimAnnExactRuns additionally counts the ann
	// runs whose probe budget covered every bucket — the exactness
	// escape hatch, where "approximate" traffic was in fact exact.
	SimDenseRuns    atomic.Int64
	SimTopKRuns     atomic.Int64
	SimAnnRuns      atomic.Int64
	SimAnnExactRuns atomic.Int64
	// SimAnnPoolRows accumulates the candidate rows ANN runs gathered for
	// exact re-ranking — the work-per-query series; divided by queries it
	// exposes skew (a balanced hash keeps the mean pool near k, hot
	// buckets inflate it). SimAnnRefitReuse accumulates the rows whose
	// hash codes survived a fine-tune refit unchanged — the incremental
	// refit win.
	SimAnnPoolRows   atomic.Int64
	SimAnnRefitReuse atomic.Int64
	// SimF32Runs counts completed pipeline runs whose fine-tune similarity
	// ran on the float32 compute tier (explicit precision=f32 and auto
	// configs that resolved there alike), so operators can see how much
	// traffic actually exercises the half-width path.
	SimF32Runs atomic.Int64
	// RefineRuns counts POST /v1/refine executions (cache hits excluded);
	// RefineIterations accumulates the RefiNA iterations they ran;
	// RefineCacheHits counts refine requests served from the refine
	// cache; RefinedAlignRuns counts pipeline runs whose config enabled
	// the stage-6 refinement.
	RefineRuns       atomic.Int64
	RefineIterations atomic.Int64
	RefineCacheHits  atomic.Int64
	RefinedAlignRuns atomic.Int64
}

// recordBackend tallies one completed pipeline run under its resolved
// similarity backend.
func (m *Metrics) recordBackend(res *core.Result) {
	switch res.SimBackend {
	case "ann":
		m.SimAnnRuns.Add(1)
		if res.AnnBits > 0 && res.AnnProbes >= 1<<res.AnnBits {
			m.SimAnnExactRuns.Add(1)
		}
		if res.Ann != nil {
			m.SimAnnPoolRows.Add(res.Ann.PoolRows)
			m.SimAnnRefitReuse.Add(res.Ann.RowsReused)
		}
	case "topk":
		m.SimTopKRuns.Add(1)
	default:
		m.SimDenseRuns.Add(1)
	}
	if res.Precision == "f32" {
		m.SimF32Runs.Add(1)
	}
	if len(res.RefineMNC) > 0 {
		m.RefinedAlignRuns.Add(1)
	}
}

// writePrometheus renders the counters in Prometheus exposition format.
// extras lets the caller append gauges it owns (queue depth, uptime).
func (m *Metrics) writePrometheus(w io.Writer, extras map[string]float64) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("htc_jobs_submitted_total", "Alignment jobs accepted into the queue.", m.JobsSubmitted.Load())
	counter("htc_jobs_rejected_total", "Submissions rejected because the queue was full.", m.JobsRejected.Load())
	counter("htc_jobs_completed_total", "Jobs that finished successfully.", m.JobsCompleted.Load())
	counter("htc_jobs_failed_total", "Jobs that finished with an error.", m.JobsFailed.Load())
	counter("htc_jobs_cancelled_total", "Jobs cancelled before completion.", m.JobsCancelled.Load())
	counter("htc_cache_hits_total", "Submissions served from the result cache.", m.CacheHits.Load())
	counter("htc_cache_misses_total", "Submissions that required a pipeline run.", m.CacheMisses.Load())
	counter("htc_prepared_hits_total", "Jobs that reused cached prepared artifacts for their graph pair.", m.PreparedHits.Load())
	counter("htc_prepared_misses_total", "Jobs that had to prepare their graph pair from scratch.", m.PreparedMisses.Load())
	counter("htc_sweep_configs_total", "Configurations executed on behalf of sweep jobs.", m.SweepConfigs.Load())
	counter("htc_dataset_uploads_total", "Dataset uploads admitted via PUT /v1/datasets.", m.DatasetUploads.Load())
	counter("htc_dataset_evictions_total", "Uploaded datasets evicted from the LRU store.", m.DatasetEvictions.Load())
	counter("htc_dataset_align_runs_total", "Pipeline runs resolved from an uploaded dataset.", m.DatasetAlignRuns.Load())
	counter("htc_sim_dense_runs_total", "Pipeline runs that used the dense similarity backend.", m.SimDenseRuns.Load())
	counter("htc_sim_topk_runs_total", "Pipeline runs that used the top-k similarity backend.", m.SimTopKRuns.Load())
	counter("htc_sim_ann_runs_total", "Pipeline runs that used the approximate (LSH) similarity backend.", m.SimAnnRuns.Load())
	counter("htc_sim_ann_exact_runs_total", "ANN runs whose probe budget covered every bucket (exactness escape hatch).", m.SimAnnExactRuns.Load())
	counter("htc_sim_ann_pool_rows", "Candidate rows gathered for exact re-ranking across ANN runs.", m.SimAnnPoolRows.Load())
	counter("htc_sim_ann_refit_reuse_total", "Rows whose hash codes were reused across fine-tune refits in ANN runs.", m.SimAnnRefitReuse.Load())
	counter("htc_sim_f32_runs_total", "Pipeline runs whose fine-tune similarity ran on the float32 tier.", m.SimF32Runs.Load())
	counter("htc_refine_runs_total", "POST /v1/refine executions (cache hits excluded).", m.RefineRuns.Load())
	counter("htc_refine_iters_total", "RefiNA iterations run on behalf of /v1/refine requests.", m.RefineIterations.Load())
	counter("htc_refine_cache_hits_total", "Refine requests served from the refine result cache.", m.RefineCacheHits.Load())
	counter("htc_refined_align_runs_total", "Pipeline runs whose config enabled stage-6 refinement.", m.RefinedAlignRuns.Load())
	fmt.Fprintf(w, "# HELP htc_jobs_running Jobs currently holding a worker.\n# TYPE htc_jobs_running gauge\nhtc_jobs_running %d\n", m.JobsRunning.Load())
	names := make([]string, 0, len(extras))
	for name := range extras {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, extras[name])
	}
}
