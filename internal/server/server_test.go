package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fastBody is a request that aligns in well under a second: a small
// synthetic pair under the cheapest ablation.
func fastBody(dataSeed int64) string {
	return fmt.Sprintf(`{"dataset":"synthetic","n":60,"data_seed":%d,
		"config":{"variant":"HTC-L","epochs":3,"hidden":8,"embed":4,"m":5}}`, dataSeed)
}

func newTestServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (int, JobInfo) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/align", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	var info JobInfo
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(blob, &info); err != nil {
			t.Fatalf("decoding %s: %v", blob, err)
		}
	}
	return resp.StatusCode, info
}

func getJob(t *testing.T, ts *httptest.Server, id string) (int, JobInfo) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info JobInfo
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, info
}

// waitFor polls the job until it reaches a terminal status, then asserts
// it is the wanted one.
func waitFor(t *testing.T, ts *httptest.Server, id string, want JobStatus) JobInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, info := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: %d", id, code)
		}
		switch info.Status {
		case StatusDone, StatusFailed, StatusCancelled:
			if info.Status != want {
				t.Fatalf("job %s finished %s (err=%q), want %s", id, info.Status, info.Error, want)
			}
			return info
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobInfo{}
}

func TestSubmitPollResultRoundtrip(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 2})

	code, info := submit(t, ts, fastBody(7))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d, want 202", code)
	}
	if info.ID == "" || info.Status != StatusQueued {
		t.Fatalf("unexpected submit response: %+v", info)
	}

	done := waitFor(t, ts, info.ID, StatusDone)
	res := done.Result
	if res == nil {
		t.Fatal("done job carries no result")
	}
	if len(res.Pairs) == 0 {
		t.Error("result has no matched pairs")
	}
	if res.Cached {
		t.Error("first run must not be served from cache")
	}
	if res.Eval == nil || res.Eval.Anchors == 0 {
		t.Errorf("built-in dataset should be evaluated against truth, got %+v", res.Eval)
	}
	if res.Eval != nil && res.Eval.PrecisionAt[10] == 0 {
		t.Logf("note: p@10 = 0 on this tiny instance (eval=%+v)", res.Eval)
	}
	if res.EpochsTrained != 3 {
		t.Errorf("epochs_trained = %d, want 3", res.EpochsTrained)
	}
	if res.TimingsMS.Total <= 0 {
		t.Error("timings missing")
	}
	if done.StartedAt == nil || done.FinishedAt == nil {
		t.Error("timestamps missing on finished job")
	}
}

func TestInlineGraphsWithTruth(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})

	// Two identical 8-node graphs: truth is the identity.
	var edges [][2]int
	for i := 0; i < 8; i++ {
		edges = append(edges, [2]int{i, (i + 1) % 8})
	}
	edges = append(edges, [2]int{0, 4}, [2]int{1, 5})
	spec := GraphSpec{Nodes: 8, Edges: edges}
	req := map[string]any{
		"source": spec, "target": spec,
		"truth":   []int{0, 1, 2, 3, 4, 5, 6, 7},
		"hits_at": []int{1, 3},
		"config":  map[string]any{"variant": "HTC-L", "epochs": 3, "hidden": 8, "embed": 4, "m": 3},
	}
	blob, _ := json.Marshal(req)

	code, info := submit(t, ts, string(blob))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d, want 202", code)
	}
	done := waitFor(t, ts, info.ID, StatusDone)
	if done.Result.Eval == nil || done.Result.Eval.Anchors != 8 {
		t.Fatalf("want eval over 8 anchors, got %+v", done.Result.Eval)
	}
	if _, ok := done.Result.Eval.PrecisionAt[3]; !ok {
		t.Errorf("custom hits_at cutoff missing: %+v", done.Result.Eval.PrecisionAt)
	}
}

func TestCacheHitServesFromMemory(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})

	code, info := submit(t, ts, fastBody(11))
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d, want 202", code)
	}
	first := waitFor(t, ts, info.ID, StatusDone)

	code, second := submit(t, ts, fastBody(11))
	if code != http.StatusOK {
		t.Fatalf("cache-hit submit: %d, want 200", code)
	}
	if second.Status != StatusDone || second.Result == nil || !second.Result.Cached {
		t.Fatalf("cache hit should return a done job with a cached result, got %+v", second)
	}
	if second.ID == first.ID {
		t.Error("cached submission should still mint a fresh job id")
	}
	if len(second.Result.Pairs) != len(first.Result.Pairs) {
		t.Errorf("cached pairs differ: %d vs %d", len(second.Result.Pairs), len(first.Result.Pairs))
	}
	// The cached job record must be pollable like any other.
	if codeGet, polled := getJob(t, ts, second.ID); codeGet != http.StatusOK || polled.Status != StatusDone {
		t.Errorf("polling cached job: %d %+v", codeGet, polled)
	}
	// A semantically different request must miss.
	code, _ = submit(t, ts, fastBody(12))
	if code != http.StatusAccepted {
		t.Errorf("different data_seed should miss the cache, got %d", code)
	}
}

func TestBadInputs(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, MaxNodes: 100})

	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed json", `{"dataset":`, http.StatusBadRequest},
		{"unknown field", `{"dataste":"econ"}`, http.StatusBadRequest},
		{"no graphs", `{}`, http.StatusBadRequest},
		{"unknown dataset", `{"dataset":"imaginary"}`, http.StatusBadRequest},
		{"dataset and inline", `{"dataset":"econ","source":{"nodes":2},"target":{"nodes":2}}`, http.StatusBadRequest},
		{"source only", `{"source":{"nodes":2,"edges":[[0,1]]}}`, http.StatusBadRequest},
		{"edge out of range", `{"source":{"nodes":3,"edges":[[0,9]]},"target":{"nodes":3}}`, http.StatusBadRequest},
		{"negative nodes", `{"source":{"nodes":-1},"target":{"nodes":3}}`, http.StatusBadRequest},
		{"over node limit", `{"source":{"nodes":500},"target":{"nodes":3}}`, http.StatusBadRequest},
		{"n over limit", `{"dataset":"econ","n":5000}`, http.StatusBadRequest},
		{"ragged attrs", `{"source":{"nodes":2,"attrs":[[1],[1,2]]},"target":{"nodes":2}}`, http.StatusBadRequest},
		{"truth wrong length", `{"source":{"nodes":2},"target":{"nodes":2},"truth":[0]}`, http.StatusBadRequest},
		{"truth out of range", `{"source":{"nodes":2},"target":{"nodes":2},"truth":[0,5]}`, http.StatusBadRequest},
		{"truth below -1", `{"source":{"nodes":2},"target":{"nodes":2},"truth":[0,-5]}`, http.StatusBadRequest},
		{"truth -1 ok", `{"source":{"nodes":2,"edges":[[0,1]]},"target":{"nodes":2,"edges":[[0,1]]},"truth":[-1,0],"config":{"variant":"HTC-L","epochs":1,"hidden":4,"embed":2}}`, http.StatusAccepted},
		{"configs on align", `{"dataset":"synthetic","configs":[{"variant":"HTC-L"}]}`, http.StatusBadRequest},
		{"truth with dataset", `{"dataset":"econ","truth":[0]}`, http.StatusBadRequest},
		{"bad remove", `{"dataset":"econ","remove":1.5}`, http.StatusBadRequest},
		{"bad hits_at", `{"dataset":"econ","hits_at":[0]}`, http.StatusBadRequest},
		{"bad variant", `{"dataset":"econ","config":{"variant":"HTC-XXL"}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _ := submit(t, ts, tc.body)
			if code != tc.want {
				t.Errorf("%s: got %d, want %d", tc.name, code, tc.want)
			}
		})
	}

	if code, _ := getJob(t, ts, "job-does-not-exist"); code != http.StatusNotFound {
		t.Errorf("unknown job: got %d, want 404", code)
	}
}

func TestCancelViaHTTP(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})

	// An effectively unbounded run: 100k epochs would take minutes.
	slow := `{"dataset":"synthetic","n":150,
		"config":{"variant":"HTC-L","epochs":100000,"hidden":8,"embed":4}}`
	code, info := submit(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d, want 202", resp.StatusCode)
	}
	waitFor(t, ts, info.ID, StatusCancelled)

	// The released worker must pick up new work.
	code, next := submit(t, ts, fastBody(21))
	if code != http.StatusAccepted {
		t.Fatalf("post-cancel submit: %d", code)
	}
	waitFor(t, ts, next.ID, StatusDone)
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 3})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var health struct {
		Status   string   `json:"status"`
		Workers  int      `json:"workers"`
		Datasets []string `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Workers != 3 || len(health.Datasets) == 0 {
		t.Errorf("unexpected health payload: %+v", health)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})

	code, info := submit(t, ts, fastBody(31))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitFor(t, ts, info.ID, StatusDone)
	if code, _ := submit(t, ts, fastBody(31)); code != http.StatusOK {
		t.Fatalf("cache hit expected, got %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"htc_jobs_submitted_total 1",
		"htc_jobs_completed_total 1",
		"htc_cache_hits_total 1",
		"htc_cache_misses_total 1",
		"htc_workers 1",
		"htc_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/align")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/align: %d, want 405", resp.StatusCode)
	}
}
