package server

import (
	"testing"

	"github.com/htc-align/htc/internal/core"
)

func TestCacheKeyNormalisation(t *testing.T) {
	// An empty config and the explicit paper defaults are the same run,
	// so they must share a key.
	a := &AlignRequest{Dataset: "econ", N: 100}
	b := &AlignRequest{Dataset: "econ", N: 100, Remove: 0.1,
		Config: core.Config{}.WithDefaults(), HitsAt: []int{10, 1, 5, 5}}
	ka, err := cacheKey(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := cacheKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("equivalent requests hash differently:\n%s\n%s", ka, kb)
	}

	// Datasets that ignore remove (two-network simulators) must hash
	// the same regardless of it; inline requests ignore it too.
	d1, err := cacheKey(&AlignRequest{Dataset: "douban"})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := cacheKey(&AlignRequest{Dataset: "douban", Remove: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("douban ignores remove, so the keys must match")
	}

	// Any semantic difference must change the key.
	for name, req := range map[string]*AlignRequest{
		"different n":       {Dataset: "econ", N: 101},
		"different seed":    {Dataset: "econ", N: 100, DataSeed: 9},
		"different variant": {Dataset: "econ", N: 100, Config: core.Config{Variant: core.DiffusionFT}},
		"different remove":  {Dataset: "econ", N: 100, Remove: 0.2},
		"different cutoffs": {Dataset: "econ", N: 100, HitsAt: []int{1}},
	} {
		k, err := cacheKey(req)
		if err != nil {
			t.Fatal(err)
		}
		if k == ka {
			t.Errorf("%s: key collision", name)
		}
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	r1, r2, r3 := &AlignResult{EpochsTrained: 1}, &AlignResult{EpochsTrained: 2}, &AlignResult{EpochsTrained: 3}
	c.put("a", r1)
	c.put("b", r2)
	if got := c.get("a"); got == nil || got.EpochsTrained != 1 {
		t.Fatalf("get(a) = %+v", got)
	}
	if !c.get("a").Cached {
		t.Error("cache hits must be flagged Cached")
	}
	if c.get("a") == r1 {
		t.Error("cache must return a copy, not the stored pointer")
	}
	c.put("c", r3) // evicts b, the least recently used
	if c.get("b") != nil {
		t.Error("b should have been evicted")
	}
	if c.get("a") == nil || c.get("c") == nil {
		t.Error("a and c should survive")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}
