package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/htc-align/htc/internal/core"
	"github.com/htc-align/htc/internal/datasets"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/ingest"
)

// datasetFn materialises a named dataset pair. n ≤ 0 selects the
// generator's default size; remove is the edge-removal ratio used by the
// single-network datasets to derive their target.
type datasetFn func(n int, seed int64, remove float64) *datasets.Pair

// pairFromGraph derives a (source, target, truth) pair from a single
// network by edge removal and hidden relabelling, the construction the
// paper's robustness study uses for Econ/BN.
func pairFromGraph(name string, g *graph.Graph, remove float64, seed int64) *datasets.Pair {
	tgt, truth := datasets.MakeTarget(g, remove, seed+1)
	return &datasets.Pair{Name: name, Source: g, Target: tgt, Truth: truth}
}

// builtin couples a dataset generator with whether the request's remove
// ratio actually drives it: the two-network simulators carry their own
// noise model and ignore remove, so the cache key must ignore it too.
type builtin struct {
	fn         datasetFn
	usesRemove bool
}

var builtinDatasets = map[string]builtin{
	"douban": {fn: func(n int, seed int64, _ float64) *datasets.Pair {
		return datasets.Douban(n, seed)
	}},
	"allmovie-imdb": {fn: func(n int, seed int64, _ float64) *datasets.Pair {
		return datasets.AllmovieImdb(n, seed)
	}},
	"flickr-myspace": {fn: func(n int, seed int64, _ float64) *datasets.Pair {
		return datasets.FlickrMyspace(n, seed)
	}},
	"econ": {usesRemove: true, fn: func(n int, seed int64, remove float64) *datasets.Pair {
		return pairFromGraph("econ", datasets.Econ(n, seed), remove, seed)
	}},
	"bn": {usesRemove: true, fn: func(n int, seed int64, remove float64) *datasets.Pair {
		return pairFromGraph("bn", datasets.BN(n, seed), remove, seed)
	}},
	"ppi": {usesRemove: true, fn: func(n int, seed int64, remove float64) *datasets.Pair {
		return pairFromGraph("ppi", datasets.PPI(n, seed), remove, seed)
	}},
	// synthetic is a small attribute-free Erdős–Rényi pair meant for
	// smoke tests and demos: fast to generate, fast to align.
	"synthetic": {usesRemove: true, fn: func(n int, seed int64, remove float64) *datasets.Pair {
		if n <= 0 {
			n = 200
		}
		rng := rand.New(rand.NewSource(seed))
		p := 8 / float64(n-1) // average degree ≈ 8
		g := graph.ErdosRenyi(n, p, rng)
		return pairFromGraph("synthetic", g, remove, seed)
	}},
}

// Datasets lists the built-in dataset names, sorted.
func Datasets() []string {
	names := make([]string, 0, len(builtinDatasets))
	for name := range builtinDatasets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func lookupDataset(name string) (builtin, error) {
	b, ok := builtinDatasets[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return builtin{}, fmt.Errorf("unknown dataset %q (built-ins: %s)", name, strings.Join(Datasets(), ", "))
	}
	return b, nil
}

// canonicalRemove returns the remove ratio that actually drives the run:
// the resolver default for single-network datasets, zero for datasets
// (and inline pairs) that ignore it — so requests differing only in an
// ignored field share a cache key.
func canonicalRemove(req *AlignRequest) float64 {
	if req.Dataset == "" {
		return 0
	}
	b, err := lookupDataset(req.Dataset)
	if err != nil || !b.usesRemove {
		return 0
	}
	if req.Remove == 0 {
		return 0.1
	}
	return req.Remove
}

// resolvePair materialises the graph pair of a validated request: the
// memoised upload or inline pair when validation already built one, the
// named built-in generator otherwise.
func resolvePair(req *AlignRequest, maxNodes int) (*datasets.Pair, error) {
	if req.builtPair != nil {
		return req.builtPair, nil
	}
	if req.Dataset != "" {
		b, err := lookupDataset(req.Dataset)
		if err != nil {
			return nil, err
		}
		remove := req.Remove
		if remove == 0 {
			remove = 0.1
		}
		return b.fn(req.N, req.DataSeed, remove), nil
	}
	// A request that arrived without validation (direct queue use in
	// tests): build the inline pair now.
	if err := req.buildInline(maxNodes); err != nil {
		return nil, err
	}
	return req.builtPair, nil
}

// maxDatasetIDLen bounds uploaded dataset ids.
const maxDatasetIDLen = 64

// validDatasetID enforces the id grammar of PUT /v1/datasets/{id}:
// filesystem- and URL-safe, no lookalike tricks.
func validDatasetID(id string) error {
	if id == "" || len(id) > maxDatasetIDLen {
		return fmt.Errorf("dataset id must be 1..%d characters", maxDatasetIDLen)
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("dataset id %q may only contain letters, digits, '.', '_' and '-'", id)
		}
	}
	if _, ok := builtinDatasets[strings.ToLower(id)]; ok {
		return fmt.Errorf("dataset id %q shadows a built-in dataset", id)
	}
	return nil
}

// DatasetUpload is the body of PUT /v1/datasets/{id}: the source and
// target networks as raw text in any registered format, plus optional
// ID-keyed ground truth ("sourceID targetID" lines).
type DatasetUpload struct {
	// Format names the graph format of both documents; empty sniffs
	// each by content.
	Format string `json:"format,omitempty"`
	// Source and Target are the raw graph documents.
	Source string `json:"source"`
	Target string `json:"target"`
	// Truth optionally carries ID-keyed anchor pairs, one per line.
	Truth string `json:"truth,omitempty"`
	// Strict rejects self-loops and duplicate edges instead of
	// skipping them.
	Strict bool `json:"strict,omitempty"`
}

// GraphSummary describes one uploaded network.
type GraphSummary struct {
	Nodes  int    `json:"nodes"`
	Edges  int    `json:"edges"`
	Attrs  int    `json:"attrs"`
	Format string `json:"format"`
}

// DatasetInfo is the metadata face of an uploaded dataset, returned by
// the PUT and GET endpoints.
type DatasetInfo struct {
	ID      string       `json:"id"`
	Source  GraphSummary `json:"source"`
	Target  GraphSummary `json:"target"`
	Anchors int          `json:"anchors"`
	// PairHash is the graphs' content hash — the key under which the
	// pair's prepared artifacts are cached across jobs.
	PairHash string `json:"pair_hash"`
	// ContentHash additionally covers the ground truth; it keys the
	// result cache, so re-uploading identical content under another id
	// still hits.
	ContentHash string    `json:"content_hash"`
	UploadedAt  time.Time `json:"uploaded_at"`
}

// storedDataset is one uploaded dataset pinned in the store.
type storedDataset struct {
	id   string
	pair *datasets.Pair
	info DatasetInfo
}

// contentHash is the dataset's result-cache identity: the graphs' pair
// hash extended with the resolved ground truth.
func (d *storedDataset) contentHash() string { return d.info.ContentHash }

// datasetStore is a bounded, thread-safe LRU of uploaded datasets. Each
// entry pins two whole graphs plus their id dictionaries, so the default
// capacity is modest; jobs memoise their pair at admission, making
// eviction (or deletion) mid-flight harmless.
type datasetStore struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type datasetEntry struct {
	id string
	ds *storedDataset
}

func newDatasetStore(capacity int) *datasetStore {
	if capacity <= 0 {
		capacity = 16
	}
	return &datasetStore{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the stored dataset, or nil. A nil store never resolves
// (so request validation can run storeless in tests).
func (s *datasetStore) get(id string) *storedDataset {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[id]
	if !ok {
		return nil
	}
	s.order.MoveToFront(el)
	return el.Value.(*datasetEntry).ds
}

// put stores (or replaces) a dataset and reports whether an entry with
// this id already existed, evicting the least recently used entry when
// over capacity.
func (s *datasetStore) put(ds *storedDataset) (replaced bool, evicted int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[ds.id]; ok {
		el.Value.(*datasetEntry).ds = ds
		s.order.MoveToFront(el)
		return true, 0
	}
	s.items[ds.id] = s.order.PushFront(&datasetEntry{id: ds.id, ds: ds})
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*datasetEntry).id)
		evicted++
	}
	return false, evicted
}

// delete removes a dataset, reporting whether it existed.
func (s *datasetStore) delete(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[id]
	if !ok {
		return false
	}
	s.order.Remove(el)
	delete(s.items, id)
	return true
}

// len reports the number of stored datasets.
func (s *datasetStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// list returns the stored datasets' metadata, most recently used first.
func (s *datasetStore) list() []DatasetInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DatasetInfo, 0, s.order.Len())
	for el := s.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*datasetEntry).ds.info)
	}
	return out
}

// maxUploadAttrDim bounds the attribute dimension of uploaded graphs:
// real attribute spaces are tens to hundreds wide, and without a cap an
// htc-graph header could claim a dimension that commits terabytes before
// a single attribute row is read.
const maxUploadAttrDim = 1024

// buildDataset ingests an upload body into a stored dataset: both graphs
// through the format registry (bounded by the server's admission limits),
// the truth through the pair's id dictionaries, and the content hashes.
func buildDataset(id string, up *DatasetUpload, maxNodes int, now time.Time) (*storedDataset, error) {
	if strings.TrimSpace(up.Source) == "" || strings.TrimSpace(up.Target) == "" {
		return nil, fmt.Errorf("upload needs both source and target graph documents")
	}
	opts := ingest.Options{Format: up.Format, MaxNodes: maxNodes, MaxAttrDim: maxUploadAttrDim, Strict: up.Strict}
	src, err := ingest.Load(strings.NewReader(up.Source), opts)
	if err != nil {
		return nil, fmt.Errorf("source: %w", err)
	}
	tgt, err := ingest.Load(strings.NewReader(up.Target), opts)
	if err != nil {
		return nil, fmt.Errorf("target: %w", err)
	}
	pair := &datasets.Pair{
		Name: id, Source: src.Graph, Target: tgt.Graph,
		SourceIDs: src.Nodes, TargetIDs: tgt.Nodes,
	}
	if strings.TrimSpace(up.Truth) != "" {
		truth, err := ingest.ReadTruth(strings.NewReader(up.Truth), src.Nodes, tgt.Nodes)
		if err != nil {
			return nil, err
		}
		pair.Truth = truth
	}
	// The content hash keys the result cache, whose entries carry
	// name-keyed matchings (pairs_named) and truth-dependent evaluation —
	// so it must cover the id dictionaries and the truth on top of the
	// structural pair hash, or a structurally identical upload with
	// different node names would be served another dataset's names.
	pairHash := core.PairHash(pair.Source, pair.Target)
	sum := sha256.New()
	io.WriteString(sum, pairHash)
	for _, ids := range []*ingest.NodeMap{src.Nodes, tgt.Nodes} {
		for i, n := 0, ids.Len(); i < n; i++ {
			fmt.Fprintf(sum, "\x00%s", ids.ID(i))
		}
		io.WriteString(sum, "\x01")
	}
	for _, t := range pair.Truth {
		fmt.Fprintf(sum, " %d", t)
	}
	ds := &storedDataset{
		id: id, pair: pair,
		info: DatasetInfo{
			ID:          id,
			Source:      summarise(src),
			Target:      summarise(tgt),
			Anchors:     pair.Truth.NumAnchors(),
			PairHash:    pairHash,
			ContentHash: hex.EncodeToString(sum.Sum(nil)),
			UploadedAt:  now,
		},
	}
	return ds, nil
}

func summarise(l *ingest.Loaded) GraphSummary {
	attrs := 0
	if l.Graph.Attrs() != nil {
		attrs = l.Graph.Attrs().Cols
	}
	return GraphSummary{Nodes: l.Graph.N(), Edges: l.Graph.NumEdges(), Attrs: attrs, Format: l.Format}
}
