package server

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/htc-align/htc/internal/datasets"
	"github.com/htc-align/htc/internal/graph"
)

// datasetFn materialises a named dataset pair. n ≤ 0 selects the
// generator's default size; remove is the edge-removal ratio used by the
// single-network datasets to derive their target.
type datasetFn func(n int, seed int64, remove float64) *datasets.Pair

// pairFromGraph derives a (source, target, truth) pair from a single
// network by edge removal and hidden relabelling, the construction the
// paper's robustness study uses for Econ/BN.
func pairFromGraph(name string, g *graph.Graph, remove float64, seed int64) *datasets.Pair {
	tgt, truth := datasets.MakeTarget(g, remove, seed+1)
	return &datasets.Pair{Name: name, Source: g, Target: tgt, Truth: truth}
}

// builtin couples a dataset generator with whether the request's remove
// ratio actually drives it: the two-network simulators carry their own
// noise model and ignore remove, so the cache key must ignore it too.
type builtin struct {
	fn         datasetFn
	usesRemove bool
}

var builtinDatasets = map[string]builtin{
	"douban": {fn: func(n int, seed int64, _ float64) *datasets.Pair {
		return datasets.Douban(n, seed)
	}},
	"allmovie-imdb": {fn: func(n int, seed int64, _ float64) *datasets.Pair {
		return datasets.AllmovieImdb(n, seed)
	}},
	"flickr-myspace": {fn: func(n int, seed int64, _ float64) *datasets.Pair {
		return datasets.FlickrMyspace(n, seed)
	}},
	"econ": {usesRemove: true, fn: func(n int, seed int64, remove float64) *datasets.Pair {
		return pairFromGraph("econ", datasets.Econ(n, seed), remove, seed)
	}},
	"bn": {usesRemove: true, fn: func(n int, seed int64, remove float64) *datasets.Pair {
		return pairFromGraph("bn", datasets.BN(n, seed), remove, seed)
	}},
	"ppi": {usesRemove: true, fn: func(n int, seed int64, remove float64) *datasets.Pair {
		return pairFromGraph("ppi", datasets.PPI(n, seed), remove, seed)
	}},
	// synthetic is a small attribute-free Erdős–Rényi pair meant for
	// smoke tests and demos: fast to generate, fast to align.
	"synthetic": {usesRemove: true, fn: func(n int, seed int64, remove float64) *datasets.Pair {
		if n <= 0 {
			n = 200
		}
		rng := rand.New(rand.NewSource(seed))
		p := 8 / float64(n-1) // average degree ≈ 8
		g := graph.ErdosRenyi(n, p, rng)
		return pairFromGraph("synthetic", g, remove, seed)
	}},
}

// Datasets lists the built-in dataset names, sorted.
func Datasets() []string {
	names := make([]string, 0, len(builtinDatasets))
	for name := range builtinDatasets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func lookupDataset(name string) (builtin, error) {
	b, ok := builtinDatasets[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return builtin{}, fmt.Errorf("unknown dataset %q (built-ins: %s)", name, strings.Join(Datasets(), ", "))
	}
	return b, nil
}

// canonicalRemove returns the remove ratio that actually drives the run:
// the resolver default for single-network datasets, zero for datasets
// (and inline pairs) that ignore it — so requests differing only in an
// ignored field share a cache key.
func canonicalRemove(req *AlignRequest) float64 {
	if req.Dataset == "" {
		return 0
	}
	b, err := lookupDataset(req.Dataset)
	if err != nil || !b.usesRemove {
		return 0
	}
	if req.Remove == 0 {
		return 0.1
	}
	return req.Remove
}

// resolvePair materialises the graph pair of a validated request: either
// the named built-in dataset or the inline specs.
func resolvePair(req *AlignRequest, maxNodes int) (*datasets.Pair, error) {
	if req.Dataset != "" {
		b, err := lookupDataset(req.Dataset)
		if err != nil {
			return nil, err
		}
		remove := req.Remove
		if remove == 0 {
			remove = 0.1
		}
		return b.fn(req.N, req.DataSeed, remove), nil
	}
	gs, gt := req.builtSource, req.builtTarget
	if gs == nil {
		var err error
		if gs, err = req.Source.Build(maxNodes); err != nil {
			return nil, fmt.Errorf("source: %w", err)
		}
	}
	if gt == nil {
		var err error
		if gt, err = req.Target.Build(maxNodes); err != nil {
			return nil, fmt.Errorf("target: %w", err)
		}
	}
	pair := &datasets.Pair{Name: "inline", Source: gs, Target: gt}
	if len(req.Truth) > 0 {
		pair.Truth = append(pair.Truth, req.Truth...)
	}
	return pair, nil
}
