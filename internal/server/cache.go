package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"github.com/htc-align/htc/internal/core"
)

// cacheKey derives the content hash that identifies an alignment: the
// resolved request — graphs (or dataset coordinates), normalised pipeline
// config and evaluation cutoffs — serialised canonically and hashed.
// Requests that differ only in fields the run ignores (an unset epoch
// count vs the explicit default) map to the same key. Workers is excluded:
// parallelism never changes the result, so requests differing only in
// their CPU budget share one cache entry.
func cacheKey(req *AlignRequest) (string, error) {
	canonical := struct {
		Dataset  string      `json:"dataset,omitempty"`
		Upload   string      `json:"upload,omitempty"`
		N        int         `json:"n,omitempty"`
		DataSeed int64       `json:"data_seed,omitempty"`
		Remove   float64     `json:"remove,omitempty"`
		Source   *GraphSpec  `json:"source,omitempty"`
		Target   *GraphSpec  `json:"target,omitempty"`
		Truth    []int       `json:"truth,omitempty"`
		Config   interface{} `json:"config"`
		HitsAt   []int       `json:"hits_at"`
	}{
		Dataset:  req.Dataset,
		N:        req.N,
		DataSeed: req.DataSeed,
		Remove:   canonicalRemove(req),
		Source:   req.Source,
		Target:   req.Target,
		Truth:    req.Truth,
		Config:   canonicalConfig(req.Config),
		HitsAt:   req.cutoffs(),
	}
	if req.upload != nil {
		// An uploaded dataset's cache identity is its content (graphs +
		// truth), not its mutable id: re-uploading the same data under
		// another name, or re-using an id for new data, both do the
		// right thing.
		canonical.Dataset = ""
		canonical.Upload = req.upload.contentHash()
	}
	blob, err := json.Marshal(canonical)
	if err != nil {
		return "", fmt.Errorf("hashing request: %w", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// canonicalConfig normalises a pipeline config for hashing and strips the
// fields that cannot influence the result (currently the worker budget).
func canonicalConfig(cfg core.Config) core.Config {
	cfg = cfg.WithDefaults()
	//lint:allow knobcover workers is a pure performance knob: results are bit-identical at every worker count
	cfg.Workers = 0
	return cfg
}

// resultCache is a bounded, thread-safe LRU from content hash to
// completed AlignResult. Alignment is deterministic given the request
// (every random choice is seed-driven), so cached results never go stale.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *AlignResult
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &resultCache{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns a copy of the cached result flagged Cached, or nil.
func (c *resultCache) get(key string) *AlignResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	cp := *el.Value.(*cacheEntry).res
	cp.Cached = true
	return &cp
}

// put stores a result, evicting the least recently used entry when full.
func (c *resultCache) put(key string, res *AlignResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// refineCache is a bounded, thread-safe LRU from a refine request's
// content identity (input matching + graphs + knobs) to its completed
// RefineResult. Refinement is deterministic given its input, so entries
// never go stale.
type refineCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type refineEntry struct {
	key string
	res *RefineResult
}

func newRefineCache(capacity int) *refineCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &refineCache{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns a copy of the cached result flagged Cached, or nil.
func (c *refineCache) get(key string) *RefineResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	cp := *el.Value.(*refineEntry).res
	cp.Cached = true
	return &cp
}

// put stores a result, evicting the least recently used entry when full.
func (c *refineCache) put(key string, res *RefineResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*refineEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&refineEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*refineEntry).key)
	}
}

// len reports the number of cached refine results.
func (c *refineCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// preparedCache is a bounded LRU from a graph pair's content hash
// (core.PairHash) to its prepared pipeline artifacts, so separate jobs on
// the same pair — a client re-submitting with new hyperparameters, a
// sweep following a single align — share one orbit-counting pass and one
// set of Laplacians. A core.Prepared is immutable input-wise and
// concurrency-safe, so handing the same instance to concurrent jobs is
// sound; it only ever accretes more memoised artifacts. The cache is
// kept much smaller than the result cache because each entry pins whole
// graphs plus per-orbit sparse matrices.
type preparedCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type preparedEntry struct {
	key  string
	prep *core.Prepared
}

func newPreparedCache(capacity int) *preparedCache {
	if capacity <= 0 {
		capacity = 8
	}
	return &preparedCache{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached prepared pair, or nil.
func (c *preparedCache) get(key string) *core.Prepared {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*preparedEntry).prep
}

// put stores a prepared pair, evicting the least recently used entry
// when full. A concurrent duplicate (two jobs preparing the same pair at
// once) keeps the first stored instance so later jobs converge on one.
func (c *preparedCache) put(key string, prep *core.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&preparedEntry{key: key, prep: prep})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*preparedEntry).key)
	}
}

// len reports the number of cached prepared pairs.
func (c *preparedCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
