// Package server turns the HTC pipeline into a long-running alignment
// service: an HTTP API (submit, poll, cancel) backed by an in-process job
// queue with a bounded worker pool, a content-addressed result cache, and
// Prometheus-style metrics. The heavy lifting stays in internal/core; this
// package contributes admission control, concurrency and serialisation.
//
// Endpoints:
//
//	POST   /v1/align         submit an alignment job (202; 200 on cache hit)
//	POST   /v1/sweep         run several configs over one shared prepared pair
//	POST   /v1/refine        RefiNA-refine a finished job's or an uploaded matching
//	GET    /v1/jobs/{id}     job status, queue position, live progress, result
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	PUT    /v1/datasets/{id} upload a real dataset (any registered format)
//	GET    /v1/datasets/{id} uploaded dataset metadata
//	DELETE /v1/datasets/{id} remove an uploaded dataset
//	GET    /v1/datasets      list built-in and uploaded datasets
//	GET    /v1/capabilities  feature roster: backends, formats, variants
//	GET    /v1/healthz       liveness + queue occupancy
//	GET    /v1/metrics       Prometheus text metrics
//
// The server runs the staged pipeline API: each job Prepares its graph
// pair (or reuses another job's Prepared via a content-hash artifact
// cache) and Aligns configs against it, so repeated work on one pair
// never re-pays the orbit-counting and Laplacian construction stages.
// Uploaded datasets are content-hashed into the same caches: re-uploading
// identical graphs under a new id still hits both.
package server

import (
	"fmt"
	"reflect"
	"sort"
	"time"

	"github.com/htc-align/htc/internal/core"
	"github.com/htc-align/htc/internal/datasets"
	"github.com/htc-align/htc/internal/ingest"
	"github.com/htc-align/htc/internal/metrics"
)

// GraphSpec carries one network inline in a request: an edge list over
// nodes 0..Nodes−1, an optional attribute matrix (one row per node) and
// an optional id list naming the nodes. Self-loops and duplicate edges
// are ignored and out-of-range endpoints rejected — graph.Builder's
// uniform validation policy, shared with every ingest format reader.
type GraphSpec = ingest.GraphSpec

// AlignRequest is the body of POST /v1/align. A request names either a
// built-in dataset (Dataset, with N/DataSeed/Remove tuning the generator)
// or carries both graphs inline (Source/Target, with an optional Truth
// map enabling evaluation). Config selects the pipeline hyperparameters;
// omitted fields mean the paper's defaults.
type AlignRequest struct {
	// Dataset names a built-in pair (see Datasets()) or a dataset
	// previously uploaded via PUT /v1/datasets/{id}; uploads win name
	// collisions never — upload ids may not shadow built-ins.
	Dataset string `json:"dataset,omitempty"`
	// N scales the built-in dataset (0 = the generator's default size).
	N int `json:"n,omitempty"`
	// DataSeed seeds the dataset generator (not the pipeline).
	DataSeed int64 `json:"data_seed,omitempty"`
	// Remove is the edge-removal ratio used to derive the target from
	// single-network datasets (econ, bn, ppi, synthetic); default 0.1.
	Remove float64 `json:"remove,omitempty"`

	// Source and Target carry an inline graph pair.
	Source *GraphSpec `json:"source,omitempty"`
	Target *GraphSpec `json:"target,omitempty"`
	// Truth optionally maps each source node to its true target anchor
	// (−1 = unknown) so the server can report precision/MRR.
	Truth []int `json:"truth,omitempty"`
	// TruthPairs is the name-keyed alternative to Truth for inline
	// pairs whose specs carry ids: (source id, target id) anchor pairs,
	// resolved through the specs' id lists at admission.
	TruthPairs [][2]string `json:"truth_pairs,omitempty"`

	// Config holds the pipeline hyperparameters (zero value = paper
	// defaults). Single-config requests (POST /v1/align) use it; sweep
	// requests must leave it empty and list Configs instead.
	Config core.Config `json:"config"`
	// Configs lists the pipeline configurations of a sweep (POST
	// /v1/sweep): every config runs over one shared prepared pair, so
	// the expensive config-independent stages are paid once for the
	// whole sweep. At most MaxSweepConfigs entries.
	Configs []core.Config `json:"configs,omitempty"`
	// HitsAt lists the precision@q cutoffs to evaluate (default 1, 5, 10).
	HitsAt []int `json:"hits_at,omitempty"`

	// builtPair memoises the pair materialised during validation —
	// inline graphs so the worker doesn't rebuild (and re-scan the
	// attrs of) large requests, uploaded datasets so a store eviction
	// or deletion between submit and run cannot strand the job.
	builtPair *datasets.Pair
	// upload is the stored dataset the request resolved to (nil for
	// built-ins and inline pairs); its content hash keys the result
	// cache instead of the mutable dataset id.
	upload *storedDataset
	// sweepKeys memoises the per-config result-cache keys the sweep
	// handler computed at submit time, so the worker doesn't re-serialise
	// a large inline pair once per config.
	sweepKeys []string
}

// validate performs the request checks that don't require running the
// pipeline; every failure maps to a 400. store resolves dataset names
// that refer to uploads (nil skips that lookup, for tests).
func (r *AlignRequest) validate(maxNodes int, store *datasetStore) error {
	inline := r.Source != nil || r.Target != nil
	switch {
	case r.Dataset != "" && inline:
		return fmt.Errorf("request must name a dataset or carry inline graphs, not both")
	case r.Dataset == "" && !inline:
		return fmt.Errorf("request needs either a dataset name or inline source+target graphs")
	case inline && (r.Source == nil || r.Target == nil):
		return fmt.Errorf("inline requests need both source and target graphs")
	}
	if r.Dataset != "" {
		if ds := store.get(r.Dataset); ds != nil {
			// An uploaded dataset is self-contained: the generator knobs
			// and truth of the other request shapes don't apply.
			switch {
			case r.N != 0:
				return fmt.Errorf("n applies to built-in generators, not uploaded dataset %q", r.Dataset)
			case r.DataSeed != 0:
				return fmt.Errorf("data_seed applies to built-in generators, not uploaded dataset %q", r.Dataset)
			case r.Remove != 0:
				return fmt.Errorf("remove applies to built-in generators, not uploaded dataset %q", r.Dataset)
			case len(r.Truth) > 0 || len(r.TruthPairs) > 0:
				return fmt.Errorf("uploaded dataset %q carries its own ground truth", r.Dataset)
			}
			r.upload = ds
			r.builtPair = ds.pair
		} else {
			if _, err := lookupDataset(r.Dataset); err != nil {
				return err
			}
			if maxNodes > 0 && r.N > maxNodes {
				return fmt.Errorf("n=%d exceeds server limit of %d nodes", r.N, maxNodes)
			}
			if len(r.Truth) > 0 || len(r.TruthPairs) > 0 {
				return fmt.Errorf("truth is implied by built-in datasets; only inline requests may carry it")
			}
		}
	}
	if r.Remove < 0 || r.Remove >= 1 {
		return fmt.Errorf("remove=%v outside [0,1)", r.Remove)
	}
	if inline {
		if err := r.buildInline(maxNodes); err != nil {
			return err
		}
	}
	for _, q := range r.HitsAt {
		if q < 1 {
			return fmt.Errorf("hits_at cutoffs must be ≥ 1, got %d", q)
		}
	}
	if len(r.HitsAt) > 16 {
		return fmt.Errorf("at most 16 hits_at cutoffs, got %d", len(r.HitsAt))
	}
	if err := validateSimilarity(r.Config, r.builtPair); err != nil {
		return err
	}
	for i, cfg := range r.Configs {
		if err := validateSimilarity(cfg, r.builtPair); err != nil {
			return fmt.Errorf("configs[%d]: %w", i, err)
		}
	}
	return nil
}

// buildInline materialises and validates an inline graph pair — specs,
// id lists, and whichever truth shape the request carries — memoising
// the result for the worker.
func (r *AlignRequest) buildInline(maxNodes int) error {
	gs, err := r.Source.Build(maxNodes)
	if err != nil {
		return fmt.Errorf("source: %w", err)
	}
	gt, err := r.Target.Build(maxNodes)
	if err != nil {
		return fmt.Errorf("target: %w", err)
	}
	srcIDs, err := r.Source.NodeMap()
	if err != nil {
		return fmt.Errorf("source: %w", err)
	}
	tgtIDs, err := r.Target.NodeMap()
	if err != nil {
		return fmt.Errorf("target: %w", err)
	}
	pair := &datasets.Pair{Name: "inline", Source: gs, Target: gt, SourceIDs: srcIDs, TargetIDs: tgtIDs}
	if len(r.Truth) > 0 && len(r.TruthPairs) > 0 {
		return fmt.Errorf("carry truth (index-keyed) or truth_pairs (id-keyed), not both")
	}
	if len(r.Truth) > 0 {
		if len(r.Truth) != r.Source.Nodes {
			return fmt.Errorf("truth has %d entries for %d source nodes", len(r.Truth), r.Source.Nodes)
		}
		for s, t := range r.Truth {
			// Valid entries are a target node or −1 ("unknown");
			// anything below −1 is a client bug that the metrics
			// layer would otherwise silently score as unknown.
			if t < -1 || t >= r.Target.Nodes {
				return fmt.Errorf("truth[%d]=%d outside %d target nodes (use -1 for unknown)", s, t, r.Target.Nodes)
			}
		}
		pair.Truth = append(metrics.Truth(nil), r.Truth...)
	}
	if len(r.TruthPairs) > 0 {
		truth, err := metrics.TruthFromPairs(r.TruthPairs, srcIDs, tgtIDs)
		if err != nil {
			return fmt.Errorf("truth_pairs: %w", err)
		}
		pair.Truth = truth
		// Canonicalise into the index-keyed form so equivalent
		// name-keyed and index-keyed requests share one cache identity.
		r.Truth = truth
		r.TruthPairs = nil
	}
	r.builtPair = pair
	return nil
}

// validateSimilarity rejects contradictory similarity settings at
// admission — out-of-range knobs, and knobs the resolved backend would
// silently ignore (candidate_k under dense, the ann_* knobs under
// dense or topk). Inline and uploaded pairs are already materialised at
// this point, so the check runs against the backend the run will
// actually resolve to; built-in generator requests check sizelessly (the
// worker's AlignContext re-checks against the concrete pair).
func validateSimilarity(cfg core.Config, pair *datasets.Pair) error {
	var ns, nt int
	if pair != nil {
		ns, nt = pair.Source.N(), pair.Target.N()
	}
	return cfg.ValidateSimilarity(ns, nt)
}

// MaxSweepConfigs bounds how many configurations one sweep may carry:
// enough for a full Table-III variant roster plus a hyperparameter grid,
// small enough that a single job cannot monopolise a worker forever.
const MaxSweepConfigs = 32

// validateSingle layers the /v1/align-only checks on top of validate.
func (r *AlignRequest) validateSingle() error {
	if len(r.Configs) > 0 {
		return fmt.Errorf("config lists belong to POST /v1/sweep; /v1/align takes a single config")
	}
	return nil
}

// validateSweep layers the /v1/sweep-only checks on top of validate.
func (r *AlignRequest) validateSweep() error {
	if len(r.Configs) == 0 {
		return fmt.Errorf("sweep requests need a non-empty configs list")
	}
	if len(r.Configs) > MaxSweepConfigs {
		return fmt.Errorf("at most %d configs per sweep, got %d", MaxSweepConfigs, len(r.Configs))
	}
	if !reflect.DeepEqual(r.Config, core.Config{}) {
		return fmt.Errorf("sweep requests list configurations under configs; the singular config field must be empty")
	}
	return nil
}

// singleRequest derives the equivalent single-config request of one sweep
// entry — the identity under which its result is cached, so sweeps and
// individual /v1/align submissions share cache entries both ways.
func (r *AlignRequest) singleRequest(cfg core.Config) *AlignRequest {
	single := *r
	single.Config = cfg
	single.Configs = nil
	return &single
}

// cutoffs returns the sorted, deduplicated precision@q cutoffs, applying
// the default when the request names none.
func (r *AlignRequest) cutoffs() []int { return sortedCutoffs(r.HitsAt) }

// sortedCutoffs normalises a hits_at list — sorted, deduplicated,
// defaulting to 1/5/10 — the one cutoff policy /v1/align and /v1/refine
// share.
func sortedCutoffs(hitsAt []int) []int {
	if len(hitsAt) == 0 {
		return []int{1, 5, 10}
	}
	qs := append([]int(nil), hitsAt...)
	sort.Ints(qs)
	out := qs[:0]
	for i, q := range qs {
		if i == 0 || q != qs[i-1] {
			out = append(out, q)
		}
	}
	return out
}

// OrbitReport mirrors core.OrbitOutcome with JSON tags.
type OrbitReport struct {
	Orbit   int     `json:"orbit"`
	Trusted int     `json:"trusted"`
	Gamma   float64 `json:"gamma"`
	Iters   int     `json:"iters"`
}

// EvalReport carries the accuracy of a run against ground truth.
type EvalReport struct {
	// PrecisionAt maps the cutoff q to precision@q (Hits@q / anchors).
	PrecisionAt map[int]float64 `json:"precision_at"`
	MRR         float64         `json:"mrr"`
	Anchors     int             `json:"anchors"`
}

// StageMS decomposes a run's wall-clock cost in milliseconds, the JSON
// face of core.StageTimings. The *_bytes fields mirror the per-stage
// heap-allocation deltas (process-global TotalAlloc sampled at the stage
// boundaries — an observability signal, not exact attribution).
type StageMS struct {
	OrbitCounting      float64 `json:"orbit_counting"`
	Laplacians         float64 `json:"laplacians"`
	Training           float64 `json:"training"`
	FineTuning         float64 `json:"fine_tuning"`
	Integration        float64 `json:"integration"`
	Refinement         float64 `json:"refinement,omitempty"`
	Total              float64 `json:"total"`
	OrbitCountingBytes uint64  `json:"orbit_counting_bytes"`
	LaplaciansBytes    uint64  `json:"laplacians_bytes"`
	TrainingBytes      uint64  `json:"training_bytes"`
	FineTuningBytes    uint64  `json:"fine_tuning_bytes"`
	IntegrationBytes   uint64  `json:"integration_bytes"`
	RefinementBytes    uint64  `json:"refinement_bytes,omitempty"`
	TotalBytes         uint64  `json:"total_bytes"`
}

func stageMS(t core.StageTimings) StageMS {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return StageMS{
		OrbitCounting: ms(t.OrbitCounting), Laplacians: ms(t.Laplacians),
		Training: ms(t.Training), FineTuning: ms(t.FineTuning),
		Integration: ms(t.Integration), Refinement: ms(t.Refinement), Total: ms(t.Total),
		OrbitCountingBytes: t.OrbitCountingBytes, LaplaciansBytes: t.LaplaciansBytes,
		TrainingBytes: t.TrainingBytes, FineTuningBytes: t.FineTuningBytes,
		IntegrationBytes: t.IntegrationBytes, RefinementBytes: t.RefinementBytes, TotalBytes: t.TotalBytes,
	}
}

// AlignResult is the payload of a completed job.
type AlignResult struct {
	// Pairs is the one-to-one matching: (source node, target node).
	Pairs [][2]int `json:"pairs"`
	// PairsNamed mirrors Pairs through the dataset's external node ids.
	// It is present when the pair carries a non-trivial id dictionary —
	// uploaded datasets and inline specs with ids.
	PairsNamed [][2]string `json:"pairs_named,omitempty"`
	// PerOrbit reports each orbit's trusted-pair count and posterior
	// weight.
	PerOrbit []OrbitReport `json:"per_orbit"`
	// Eval is present when ground truth was available. On refined runs
	// (config.refine_iters > 0) it scores the refined alignment;
	// EvalPreRefine then holds the stage-5 numbers for comparison.
	Eval *EvalReport `json:"eval,omitempty"`
	// EvalPreRefine scores the pre-refinement alignment of a refined run
	// against the same truth, so clients read refined and unrefined
	// quality side by side. Absent when refinement was off.
	EvalPreRefine *EvalReport `json:"eval_pre_refine,omitempty"`
	// RefineMNC traces matched-neighborhood consistency across refinement
	// iterations (entry 0 = before refinement). Absent when refinement
	// was off.
	RefineMNC []float64 `json:"refine_mnc,omitempty"`
	// RefineTokenK is the token-match budget refinement resolved to
	// (absent when refinement was off).
	RefineTokenK int `json:"refine_token_k,omitempty"`
	// TimingsMS decomposes the run's cost by pipeline stage.
	TimingsMS StageMS `json:"timings_ms"`
	// EpochsTrained is the number of training epochs actually run.
	EpochsTrained int `json:"epochs_trained"`
	// WorkersUsed is the pipeline CPU budget the job ran with: the
	// requested config.workers capped at the server's per-job share of
	// the machine (GOMAXPROCS divided by the worker-pool size).
	WorkersUsed int `json:"workers_used,omitempty"`
	// SimBackend is the similarity backend the run resolved to ("dense",
	// "topk" or "ann") — auto configs report their concrete choice.
	SimBackend string `json:"sim_backend"`
	// Precision is the compute tier the fine-tune similarity ran at
	// ("f64" or "f32") — auto configs report their concrete choice.
	Precision string `json:"precision"`
	// CandidateK is the per-node candidate count of a top-k or ann run
	// (absent on dense runs).
	CandidateK int `json:"candidate_k,omitempty"`
	// AnnBits and AnnProbes are the resolved LSH parameters of an ann
	// run — configured or auto-sized (absent on dense and topk runs).
	AnnBits   int `json:"ann_bits,omitempty"`
	AnnProbes int `json:"ann_probes,omitempty"`
	// AnnPoolCap echoes the configured per-query re-rank pool bound of an
	// ann run (absent when unbounded, and on dense and topk runs).
	AnnPoolCap int `json:"ann_pool_cap,omitempty"`
	// Ann is the skew-observability block of an ann run: hash balance
	// (bucket occupancy, re-hashed hot buckets), per-query pool work and
	// incremental-refit reuse. Absent on dense and topk runs.
	Ann *core.AnnStats `json:"ann_stats,omitempty"`
	// Cached reports that the result was served from the content-hash
	// cache rather than recomputed.
	Cached bool `json:"cached"`
	// PreparedCached reports that the run reused another job's prepared
	// artifacts (orbit counts, Laplacians) via the server's artifact
	// cache instead of building them itself.
	PreparedCached bool `json:"prepared_cached,omitempty"`
}

// SweepEntry is one configuration's outcome within a sweep job.
type SweepEntry struct {
	// Config is the normalised configuration the entry ran (defaults
	// applied, worker budget stripped).
	Config core.Config `json:"config"`
	// Result is the entry's alignment outcome; nil when Error is set.
	Result *AlignResult `json:"result,omitempty"`
	// Error carries a per-entry failure without failing the whole sweep.
	Error string `json:"error,omitempty"`
}

// SweepResult is the payload of a completed sweep job.
type SweepResult struct {
	// PairHash is the content hash of the shared graph pair — the key
	// under which its prepared artifacts are cached across jobs. Empty
	// when the whole sweep was assembled from the result cache without
	// ever materialising the graphs.
	PairHash string `json:"pair_hash,omitempty"`
	// PreparedCached reports that the sweep reused an earlier job's
	// prepared artifacts rather than building its own.
	PreparedCached bool `json:"prepared_cached"`
	// Results holds one entry per requested config, in request order.
	Results []SweepEntry `json:"results"`
}

// SimBackendInfo describes one similarity backend in the capabilities
// payload: its config name and the config knobs it accepts.
type SimBackendInfo struct {
	Name  string   `json:"name"`
	Knobs []string `json:"knobs,omitempty"`
}

// Capabilities is the payload of GET /v1/capabilities: the feature
// roster of this server build, so clients can discover what a config may
// say instead of probing for 400s.
type Capabilities struct {
	// SimilarityBackends lists the accepted config.similarity values and
	// the knobs each backend accepts.
	SimilarityBackends []SimBackendInfo `json:"similarity_backends"`
	// Precisions lists the accepted config.precision values.
	Precisions []string `json:"precisions"`
	// IngestFormats lists the registered dataset upload formats.
	IngestFormats []string `json:"ingest_formats"`
	// Variants lists the pipeline ablations by paper name.
	Variants []string `json:"variants"`
	// Datasets lists the built-in dataset generators.
	Datasets []string `json:"datasets"`
	// MaxNodes is the per-graph admission limit (0 = unlimited).
	MaxNodes int `json:"max_nodes"`
	// MaxSweepConfigs bounds the configs list of one sweep.
	MaxSweepConfigs int `json:"max_sweep_configs"`
	// Refine describes the POST /v1/refine primitive and the refinement
	// knobs the align config accepts.
	Refine RefineCaps `json:"refine"`
}

// RefineCaps is the refinement block of the capabilities payload.
type RefineCaps struct {
	// Knobs lists the refinement knobs accepted both by the align
	// config and by POST /v1/refine.
	Knobs []string `json:"knobs"`
	// DefaultIters is the iteration count /v1/refine runs when the
	// request leaves refine_iters at 0.
	DefaultIters int `json:"default_iters"`
	// MaxIters bounds refine_iters on /v1/refine (the endpoint runs
	// synchronously, so the work per request is capped).
	MaxIters int `json:"max_iters"`
}

// ProgressInfo is the live progress block of a running job, mirrored from
// the pipeline's progress events into GET /v1/jobs/{id}.
type ProgressInfo struct {
	// Stage is the pipeline stage currently running (core.Stage*).
	Stage string `json:"stage"`
	// Done and Total count the stage's completed and planned work units
	// (graphs for the build stages, epochs for training, orbits for
	// fine-tuning).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Config and Configs locate a sweep job within its configuration
	// list (1-based; absent on single-config jobs).
	Config  int `json:"config,omitempty"`
	Configs int `json:"configs,omitempty"`
}

// JobInfo is the job-facing view returned by the submit and poll
// endpoints.
type JobInfo struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	Error  string    `json:"error,omitempty"`
	// QueuePosition is the job's 1-based place among still-queued jobs
	// (present only while queued), so pollers can tell "waiting behind
	// N others" from "stuck".
	QueuePosition int `json:"queue_position,omitempty"`
	// Progress is the live pipeline progress of a running job.
	Progress    *ProgressInfo `json:"progress,omitempty"`
	SubmittedAt time.Time     `json:"submitted_at"`
	StartedAt   *time.Time    `json:"started_at,omitempty"`
	FinishedAt  *time.Time    `json:"finished_at,omitempty"`
	// Result carries a finished single-config job's payload.
	Result *AlignResult `json:"result,omitempty"`
	// Sweep carries a finished sweep job's payload.
	Sweep *SweepResult `json:"sweep,omitempty"`
}
