package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/htc-align/htc/internal/core"
)

// -update regenerates the golden fixtures from the live server:
//
//	go test ./internal/server/ -run TestV1Golden -update
var update = flag.Bool("update", false, "rewrite golden API fixtures")

// volatileKeys are response fields that legitimately differ between runs
// or hosts (ids, wall-clock, CPU budget); the golden comparison replaces
// their values with placeholders. Everything else — field names, shapes,
// orderings, numerical results — is part of the locked contract.
var volatileKeys = map[string]any{
	"id":             "<id>",
	"submitted_at":   "<time>",
	"started_at":     "<time>",
	"finished_at":    "<time>",
	"timings_ms":     "<timings>",
	"workers_used":   "<workers>",
	"queue_position": "<position>",
	"uploaded_at":    "<time>",
	"refine_ms":      "<timings>",
}

// normalize walks decoded JSON and stubs the volatile fields.
func normalize(v any) any {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			if stub, ok := volatileKeys[k]; ok {
				x[k] = stub
				continue
			}
			x[k] = normalize(val)
		}
		return x
	case []any:
		for i := range x {
			x[i] = normalize(x[i])
		}
		return x
	default:
		return v
	}
}

// canonicalJSON renders a body with volatile fields stubbed and keys
// sorted, ready for byte comparison against a golden file.
func canonicalJSON(t *testing.T, blob []byte) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(blob, &v); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, blob)
	}
	out, err := json.MarshalIndent(normalize(v), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func checkGolden(t *testing.T, name string, body []byte) {
	t.Helper()
	got := canonicalJSON(t, body)
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: response deviates from the locked v1 contract.\n--- want\n%s\n--- got\n%s", name, want, got)
	}
}

func readFixture(t *testing.T, name string) string {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestV1GoldenAlign locks the wire contract of POST /v1/align and GET
// /v1/jobs/{id}: the API redesign (and any future one) must not change
// what existing single-config clients see.
func TestV1GoldenAlign(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	body := readFixture(t, "align_request.json")

	resp, err := http.Post(ts.URL+"/v1/align", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	submitBlob, _ := readAll(resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", resp.StatusCode, submitBlob)
	}
	checkGolden(t, "align_submit.golden", submitBlob)

	var info JobInfo
	if err := json.Unmarshal(submitBlob, &info); err != nil {
		t.Fatal(err)
	}
	waitFor(t, ts, info.ID, StatusDone)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	doneBlob, _ := readAll(resp)
	checkGolden(t, "align_job_done.golden", doneBlob)
}

// TestV1GoldenSweep locks the sweep job payload shape the same way.
func TestV1GoldenSweep(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	body := readFixture(t, "sweep_request.json")

	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	submitBlob, _ := readAll(resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", resp.StatusCode, submitBlob)
	}
	var info JobInfo
	if err := json.Unmarshal(submitBlob, &info); err != nil {
		t.Fatal(err)
	}
	waitFor(t, ts, info.ID, StatusDone)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	doneBlob, _ := readAll(resp)
	checkGolden(t, "sweep_job_done.golden", doneBlob)
}

// TestV1GoldenDatasets locks the wire contract of the dataset endpoints:
// upload metadata, the list shape, and the payload of an alignment
// resolved from an uploaded dataset (named pairs included). The graph
// ids in the fixture differ between upload and list fixtures only in
// volatile fields, so the whole dataset lifecycle is covered by three
// goldens.
func TestV1GoldenDatasets(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})

	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/bridge-pair",
		bytes.NewReader([]byte(readFixture(t, "dataset_put.json"))))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	putBlob, _ := readAll(resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: %d\n%s", resp.StatusCode, putBlob)
	}
	checkGolden(t, "dataset_put.golden", putBlob)

	resp, err = http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	listBlob, _ := readAll(resp)
	checkGolden(t, "dataset_list.golden", listBlob)

	resp, err = http.Post(ts.URL+"/v1/align", "application/json",
		bytes.NewReader([]byte(readFixture(t, "dataset_align_request.json"))))
	if err != nil {
		t.Fatal(err)
	}
	submitBlob, _ := readAll(resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", resp.StatusCode, submitBlob)
	}
	var info JobInfo
	if err := json.Unmarshal(submitBlob, &info); err != nil {
		t.Fatal(err)
	}
	waitFor(t, ts, info.ID, StatusDone)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	doneBlob, _ := readAll(resp)
	checkGolden(t, "dataset_align_job_done.golden", doneBlob)
}

// TestV1GoldenCapabilities locks the discovery payload: adding a backend
// or format is a deliberate fixture update, never an accident.
func TestV1GoldenCapabilities(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/capabilities")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capabilities: %d\n%s", resp.StatusCode, blob)
	}
	checkGolden(t, "capabilities.golden", blob)
}

// TestV1GoldenError locks the uniform error envelope every /v1 endpoint
// answers with: {"error":{"code","message"}}.
func TestV1GoldenError(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	body := `{"dataset":"synthetic","config":{"similarity":"dense","candidate_k":8}}`
	resp, err := http.Post(ts.URL+"/v1/align", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := readAll(resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("expected 400, got %d\n%s", resp.StatusCode, blob)
	}
	checkGolden(t, "error_bad_request.golden", blob)

	resp, err = http.Get(ts.URL + "/v1/jobs/nonexistent")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ = readAll(resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expected 404, got %d\n%s", resp.StatusCode, blob)
	}
	checkGolden(t, "error_not_found.golden", blob)
}

// TestV1GoldenRefine locks the wire contract of POST /v1/refine in both
// input shapes — a finished alignment job and an uploaded name-keyed
// matching — plus the job payload of an alignment that ran the stage-6
// refinement itself (refine_mnc trace, pre-refine evaluation).
func TestV1GoldenRefine(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})

	// Job-id input: refine the matching of a finished /v1/align job.
	resp, err := http.Post(ts.URL+"/v1/align", "application/json",
		bytes.NewReader([]byte(readFixture(t, "align_request.json"))))
	if err != nil {
		t.Fatal(err)
	}
	submitBlob, _ := readAll(resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", resp.StatusCode, submitBlob)
	}
	var info JobInfo
	if err := json.Unmarshal(submitBlob, &info); err != nil {
		t.Fatal(err)
	}
	waitFor(t, ts, info.ID, StatusDone)

	body := fmt.Sprintf(`{"job": %q, "refine_iters": 3}`, info.ID)
	resp, err = http.Post(ts.URL+"/v1/refine", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refine job: %d\n%s", resp.StatusCode, blob)
	}
	checkGolden(t, "refine_job.golden", blob)

	// Uploaded-matching input: a name-keyed matching over an uploaded
	// dataset, two of its pairs deliberately swapped.
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/bridge-pair",
		bytes.NewReader([]byte(readFixture(t, "dataset_put.json"))))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	putBlob, _ := readAll(resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: %d\n%s", resp.StatusCode, putBlob)
	}
	resp, err = http.Post(ts.URL+"/v1/refine", "application/json",
		bytes.NewReader([]byte(readFixture(t, "refine_dataset_request.json"))))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ = readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refine dataset: %d\n%s", resp.StatusCode, blob)
	}
	checkGolden(t, "refine_dataset.golden", blob)

	// An alignment whose own config enables refinement reports the MNC
	// trace and the pre-refine evaluation alongside the refined one.
	resp, err = http.Post(ts.URL+"/v1/align", "application/json",
		bytes.NewReader([]byte(readFixture(t, "refine_align_request.json"))))
	if err != nil {
		t.Fatal(err)
	}
	submitBlob, _ = readAll(resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit refine align: %d\n%s", resp.StatusCode, submitBlob)
	}
	if err := json.Unmarshal(submitBlob, &info); err != nil {
		t.Fatal(err)
	}
	waitFor(t, ts, info.ID, StatusDone)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	doneBlob, _ := readAll(resp)
	checkGolden(t, "refine_align_job_done.golden", doneBlob)
}

// TestV1GoldenRefineErrors locks the 400 envelopes for the ways a refine
// request can be wrong: a job the server has never seen, a dataset that
// was never uploaded, and an out-of-range token budget.
func TestV1GoldenRefineErrors(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		golden string
		body   string
	}{
		{"refine_error_unknown_job.golden", `{"job": "nonexistent"}`},
		{"refine_error_unknown_dataset.golden", `{"dataset": "never-uploaded", "matching": [["a", "x1"]]}`},
		{"refine_error_bad_token_k.golden", `{"job": "whatever", "refine_token_k": -3}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/refine", "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := readAll(resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: expected 400, got %d\n%s", c.golden, resp.StatusCode, blob)
		}
		checkGolden(t, c.golden, blob)
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// TestAlignRequestConfigsRoundTrip covers the sweep field of the request
// schema: a configs list survives JSON serialisation verbatim.
func TestAlignRequestConfigsRoundTrip(t *testing.T) {
	req := AlignRequest{
		Dataset: "synthetic", N: 80, DataSeed: 3,
		Configs: []core.Config{
			{Variant: core.Full, K: 4, Epochs: 5},
			{Variant: core.DiffusionFT, DiffusionAlpha: 0.3, Binary: true},
		},
		HitsAt: []int{1, 3},
	}
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back AlignRequest
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, back) {
		t.Errorf("round trip mismatch:\n in  %+v\n out %+v", req, back)
	}
}
