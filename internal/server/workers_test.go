package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/htc-align/htc/internal/core"
)

// TestPerJobWorkersNeverOversubscribes is the budgeting invariant: as long
// as the pool is no larger than the machine, the per-job budgets of a
// saturated pool must sum to at most GOMAXPROCS; larger pools bottom out
// at the 1-worker floor.
func TestPerJobWorkersNeverOversubscribes(t *testing.T) {
	for gmp := 1; gmp <= 16; gmp++ {
		for pool := 1; pool <= 16; pool++ {
			w := perJobWorkers(gmp, pool)
			if w < 1 {
				t.Fatalf("gomaxprocs=%d pool=%d: budget %d < 1", gmp, pool, w)
			}
			sum := w * pool
			if pool <= gmp && sum > gmp {
				t.Fatalf("gomaxprocs=%d pool=%d: budgets sum to %d > GOMAXPROCS", gmp, pool, sum)
			}
			if pool > gmp && w != 1 {
				t.Fatalf("gomaxprocs=%d pool=%d: over-full pool budget %d, want floor 1", gmp, pool, w)
			}
		}
	}
}

// TestJobConfigCapsWorkers pins how a request's config.workers interacts
// with the server budget: 0 means "take the full per-job share", smaller
// requests are honoured, larger ones are clamped.
func TestJobConfigCapsWorkers(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()
	budget := perJobWorkers(runtime.GOMAXPROCS(0), 2)

	if got := s.jobConfig(core.Config{}).Workers; got != budget {
		t.Fatalf("default config got %d workers, want budget %d", got, budget)
	}
	if got := s.jobConfig(core.Config{Workers: 1}).Workers; got != 1 {
		t.Fatalf("explicit 1 worker got %d", got)
	}
	if got := s.jobConfig(core.Config{Workers: budget + 7}).Workers; got != budget {
		t.Fatalf("oversized request got %d workers, want clamp to %d", got, budget)
	}
}

// TestConcurrentJobsStayWithinBudget floods a 2-worker server with jobs
// and asserts every completed job reports a per-job budget within the
// server's share — i.e. in-flight jobs cannot jointly exceed GOMAXPROCS.
func TestConcurrentJobsStayWithinBudget(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 16})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()
	budget := perJobWorkers(runtime.GOMAXPROCS(0), 2)

	submit := func(seed int) string {
		body := fmt.Sprintf(`{"dataset":"synthetic","n":30,"data_seed":%d,"config":{"epochs":3,"k":2}}`, seed)
		resp, err := http.Post(srv.URL+"/v1/align", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		var info JobInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		return info.ID
	}

	var ids []string
	for i := 0; i < 6; i++ {
		ids = append(ids, submit(i))
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			deadline := time.Now().Add(30 * time.Second)
			for time.Now().Before(deadline) {
				resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
				if err != nil {
					t.Error(err)
					return
				}
				var info JobInfo
				err = json.NewDecoder(resp.Body).Decode(&info)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				switch info.Status {
				case StatusDone:
					if info.Result.WorkersUsed > budget {
						t.Errorf("job %s used %d workers, budget %d", id, info.Result.WorkersUsed, budget)
					}
					return
				case StatusFailed, StatusCancelled:
					t.Errorf("job %s ended %s: %s", id, info.Status, info.Error)
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			t.Errorf("job %s did not finish", id)
		}(id)
	}
	wg.Wait()
}

// TestCacheKeyIgnoresWorkers: two requests that differ only in their CPU
// budget compute the same alignment, so they must share a cache entry.
func TestCacheKeyIgnoresWorkers(t *testing.T) {
	mk := func(workers int) *AlignRequest {
		return &AlignRequest{Dataset: "synthetic", N: 40, Config: core.Config{Workers: workers}}
	}
	k1, err := cacheKey(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := cacheKey(mk(8))
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("cache key depends on the worker budget")
	}
	k3, err := cacheKey(&AlignRequest{Dataset: "synthetic", N: 41, Config: core.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Fatal("cache key ignored a significant field")
	}
}
