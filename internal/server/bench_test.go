package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func decodeBench(b *testing.B, resp *http.Response, v any) {
	b.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServerRoundtrip measures one uncached submit→poll→result cycle
// over HTTP on a small synthetic pair — the serving-layer number the perf
// baseline (BENCH_server.json) tracks across PRs.
func BenchmarkServerRoundtrip(b *testing.B) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()

	for i := 0; i < b.N; i++ {
		// A distinct data_seed per iteration defeats the cache, so each
		// iteration pays for a full pipeline run.
		body := strings.NewReader(fmt.Sprintf(`{"dataset":"synthetic","n":80,"data_seed":%d,
			"config":{"variant":"HTC-L","epochs":5,"hidden":8,"embed":4,"m":5}}`, i+1))
		resp, err := http.Post(ts.URL+"/v1/align", "application/json", body)
		if err != nil {
			b.Fatal(err)
		}
		var info JobInfo
		decodeBench(b, resp, &info)
		for {
			r, err := http.Get(ts.URL + "/v1/jobs/" + info.ID)
			if err != nil {
				b.Fatal(err)
			}
			var polled JobInfo
			decodeBench(b, r, &polled)
			if polled.Status == StatusDone {
				break
			}
			if polled.Status == StatusFailed || polled.Status == StatusCancelled {
				b.Fatalf("job finished %s: %s", polled.Status, polled.Error)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// BenchmarkCacheHit measures the served-from-memory path: the same
// request over and over, only the first submission computing anything.
func BenchmarkCacheHit(b *testing.B) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()

	body := `{"dataset":"synthetic","n":80,"data_seed":5,
		"config":{"variant":"HTC-L","epochs":5,"hidden":8,"embed":4,"m":5}}`
	// Warm the cache.
	resp, err := http.Post(ts.URL+"/v1/align", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var info JobInfo
	decodeBench(b, resp, &info)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + info.ID)
		if err != nil {
			b.Fatal(err)
		}
		var polled JobInfo
		decodeBench(b, r, &polled)
		if polled.Status == StatusDone {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/align", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var hit JobInfo
		decodeBench(b, resp, &hit)
		if resp.StatusCode != http.StatusOK || hit.Result == nil || !hit.Result.Cached {
			b.Fatalf("expected cache hit, got %d %+v", resp.StatusCode, hit)
		}
	}
}

// BenchmarkCacheKey measures request hashing, the fixed cost every
// submission pays.
func BenchmarkCacheKey(b *testing.B) {
	edges := make([][2]int, 0, 4000)
	for i := 0; i < 4000; i++ {
		edges = append(edges, [2]int{i % 1000, (i*7 + 1) % 1000})
	}
	req := &AlignRequest{
		Source: &GraphSpec{Nodes: 1000, Edges: edges},
		Target: &GraphSpec{Nodes: 1000, Edges: edges},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cacheKey(req); err != nil {
			b.Fatal(err)
		}
	}
}
