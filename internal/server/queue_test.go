package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

// blockingRunner blocks until the job's context is cancelled, unless the
// request is marked fast (Dataset "fast"), and reports each start on
// started.
func blockingRunner(started chan<- *Job) Runner {
	return func(ctx context.Context, job *Job) (any, error) {
		started <- job
		if job.Req.Dataset == "fast" {
			return &AlignResult{}, nil
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
}

func waitStatus(t *testing.T, job *Job, want JobStatus) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if job.Status() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", job.ID, job.Status(), want)
}

// TestCancelReleasesWorker proves the core serving property: cancelling a
// running job frees its worker for the next queued job.
func TestCancelReleasesWorker(t *testing.T) {
	started := make(chan *Job, 8)
	m := &Metrics{}
	q := NewQueue(1, 4, blockingRunner(started), m)
	defer q.Close()

	hog, err := q.Submit(&AlignRequest{Dataset: "slow"}, "k1")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("hog job never started")
	}

	next, err := q.Submit(&AlignRequest{Dataset: "fast"}, "k2")
	if err != nil {
		t.Fatal(err)
	}
	// The single worker is occupied: next must not start yet.
	select {
	case j := <-started:
		t.Fatalf("job %s started while the worker was busy", j.ID)
	case <-time.After(50 * time.Millisecond):
	}

	hog.Cancel()
	waitStatus(t, hog, StatusCancelled)

	select {
	case <-started: // the released worker picked up `next`
	case <-time.After(5 * time.Second):
		t.Fatal("worker was not released by cancellation")
	}
	waitStatus(t, next, StatusDone)

	if got := m.JobsCancelled.Load(); got != 1 {
		t.Errorf("cancelled counter = %d, want 1", got)
	}
	if got := m.JobsCompleted.Load(); got != 1 {
		t.Errorf("completed counter = %d, want 1", got)
	}
}

func TestCancelWhileQueuedSkipsRun(t *testing.T) {
	started := make(chan *Job, 8)
	q := NewQueue(1, 4, blockingRunner(started), nil)
	defer q.Close()

	hog, _ := q.Submit(&AlignRequest{Dataset: "slow"}, "k1")
	<-started
	queued, _ := q.Submit(&AlignRequest{Dataset: "fast"}, "k2")

	queued.Cancel()
	if queued.Status() != StatusCancelled {
		t.Fatalf("queued job should cancel instantly, got %s", queued.Status())
	}

	hog.Cancel()
	waitStatus(t, hog, StatusCancelled)
	// Give the worker a moment: it must skip the cancelled job, not run it.
	select {
	case j := <-started:
		t.Fatalf("cancelled job %s was started anyway", j.ID)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestQueueFull(t *testing.T) {
	started := make(chan *Job, 8)
	q := NewQueue(1, 1, blockingRunner(started), nil)
	defer q.Close()

	hog, _ := q.Submit(&AlignRequest{Dataset: "slow"}, "k1")
	<-started // worker busy
	if _, err := q.Submit(&AlignRequest{Dataset: "slow"}, "k2"); err != nil {
		t.Fatalf("backlog slot should accept: %v", err)
	}
	if _, err := q.Submit(&AlignRequest{Dataset: "slow"}, "k3"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	hog.Cancel()
}

func TestSubmitAfterClose(t *testing.T) {
	q := NewQueue(1, 1, func(ctx context.Context, job *Job) (any, error) {
		return &AlignResult{}, nil
	}, nil)
	q.Close()
	if _, err := q.Submit(&AlignRequest{Dataset: "fast"}, "k"); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("got %v, want ErrQueueClosed", err)
	}
}

func TestFailedJobReportsError(t *testing.T) {
	boom := errors.New("boom")
	q := NewQueue(1, 1, func(ctx context.Context, job *Job) (any, error) {
		return nil, boom
	}, nil)
	defer q.Close()

	job, _ := q.Submit(&AlignRequest{Dataset: "x"}, "k")
	waitStatus(t, job, StatusFailed)
	info := job.Info()
	if info.Error != "boom" || info.Result != nil {
		t.Errorf("unexpected failed info: %+v", info)
	}
}

func TestRecordEviction(t *testing.T) {
	q := NewQueue(1, 1, func(ctx context.Context, job *Job) (any, error) {
		return &AlignResult{}, nil
	}, nil)
	defer q.Close()
	q.maxRecords = 3

	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		job := q.Record(&AlignRequest{}, "k", &AlignResult{Cached: true})
		ids = append(ids, job.ID)
	}
	if got := q.Len(); got != 3 {
		t.Fatalf("retained %d records, want 3", got)
	}
	if _, ok := q.Get(ids[0]); ok {
		t.Error("oldest record should be evicted")
	}
	if _, ok := q.Get(ids[5]); !ok {
		t.Error("newest record should be retained")
	}
}
