package baselines

import (
	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
)

// IsoRank implements the fixed-point similarity propagation of Singh,
// Xu & Berger (PNAS 2008): two nodes are similar when their neighbourhoods
// are similar. The update in matrix form is
//
//	M ← α·Wsᵀ·M·Wt + (1−α)·H
//
// with W the row-stochastic transition matrices and H the prior alignment
// matrix built from seed anchors (the paper feeds it 10% of ground truth)
// and, when available, attribute similarity. This is a faithful
// implementation of the original iteration.
type IsoRank struct {
	// Alpha balances propagation against the prior (default 0.82, the
	// value commonly used in the literature).
	Alpha float64
	// Iters is the number of fixed-point iterations (default 30).
	Iters int
}

// Name implements Aligner.
func (IsoRank) Name() string { return "IsoRank" }

// Align implements Aligner.
func (ir IsoRank) Align(gs, gt *graph.Graph, seeds []Anchor) (*dense.Matrix, error) {
	alpha := ir.Alpha
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.82
	}
	iters := ir.Iters
	if iters <= 0 {
		iters = 30
	}
	h := seedPrior(gs.N(), gt.N(), seeds, attrSimilarity(gs, gt))
	wsT := rowStochastic(gs).Transpose()
	wtT := rowStochastic(gt).Transpose()

	m := h.Clone()
	for it := 0; it < iters; it++ {
		// Wsᵀ·M·Wt = Wsᵀ·(Wtᵀ·Mᵀ)ᵀ, so two sparse×dense products suffice.
		mt := wtT.MulDense(m.T()) // nt×ns = Wtᵀ·Mᵀ
		next := wsT.MulDense(mt.T())
		next.Scale(alpha)
		next.AddScaled(h, 1-alpha)
		if norm := next.FrobNorm(); norm > 0 {
			next.Scale(1 / norm)
		}
		m = next
	}
	return m, nil
}
