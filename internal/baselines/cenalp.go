package baselines

import (
	"math/rand"
	"sort"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/gom"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/nn"
	"github.com/htc-align/htc/internal/sparse"
)

// CENALP implements the iterative joint alignment scheme of Du, Yan & Zha
// (IJCAI 2019): alignment and cross-graph structure reinforce each other —
// confident predictions become new anchors, anchors tie the two graphs
// together, and the embedding is recomputed on the coupled graph.
//
// Fidelity note: the original interleaves cross-graph random-walk
// skip-gram embeddings with a link-prediction module. This implementation
// keeps the defining iterative expansion loop but swaps the embedding for
// this repository's graph autoencoder over the *union graph* (both
// networks plus anchor coupling edges) and omits the intra-graph link
// prediction step. The loop structure is what dominates both its accuracy
// profile and its notoriously high runtime (paper Fig. 7 excludes it for
// being ~500× slower); the re-embedding-per-round cost model is preserved.
type CENALP struct {
	// Hidden and Embed are the encoder widths (defaults 32/16).
	Hidden, Embed int
	// Epochs and LR control each round's training (defaults 40, 0.02).
	Epochs int
	LR     float64
	// Rounds is the number of expansion rounds (default 5).
	Rounds int
	// AddPerRound is how many confident mutual pairs become anchors per
	// round (default max(4, n/20)).
	AddPerRound int
	// Seed drives initialisation.
	Seed int64
}

// Name implements Aligner.
func (CENALP) Name() string { return "CENALP" }

// Align implements Aligner.
func (c CENALP) Align(gs, gt *graph.Graph, seeds []Anchor) (*dense.Matrix, error) {
	hidden, embed := c.Hidden, c.Embed
	if hidden <= 0 {
		hidden = 32
	}
	if embed <= 0 {
		embed = 16
	}
	epochs := c.Epochs
	if epochs <= 0 {
		epochs = 40
	}
	lr := c.LR
	if lr <= 0 {
		lr = 0.02
	}
	rounds := c.Rounds
	if rounds <= 0 {
		rounds = 5
	}
	addPer := c.AddPerRound
	if addPer <= 0 {
		addPer = gs.N() / 20
		if addPer < 4 {
			addPer = 4
		}
	}

	ns, nt := gs.N(), gt.N()
	anchors := append([]Anchor(nil), seeds...)
	anchoredS := make(map[int]bool, len(anchors))
	anchoredT := make(map[int]bool, len(anchors))
	for _, a := range anchors {
		anchoredS[a.S] = true
		anchoredT[a.T] = true
	}

	var m *dense.Matrix
	for round := 0; round < rounds; round++ {
		hsFull := cenalpEmbed(gs, gt, anchors, hidden, embed, epochs, lr, c.Seed+int64(round))
		hs := dense.New(ns, embed)
		ht := dense.New(nt, embed)
		for i := 0; i < ns; i++ {
			copy(hs.Row(i), hsFull.Row(i))
		}
		for i := 0; i < nt; i++ {
			copy(ht.Row(i), hsFull.Row(ns+i))
		}
		hs.NormalizeRows()
		ht.NormalizeRows()
		m = dense.MulBT(hs, ht)

		// Expansion: the most confident mutual matches among unanchored
		// nodes become anchors for the next round.
		type cand struct {
			s, t  int
			score float64
		}
		var cands []cand
		rowBest := m.ArgmaxRows()
		for s, t := range rowBest {
			if anchoredS[s] || anchoredT[t] {
				continue
			}
			// Mutuality check: t's best row must be s.
			best, bestV := -1, -1.0
			for i := 0; i < ns; i++ {
				if v := m.At(i, t); v > bestV {
					best, bestV = i, v
				}
			}
			if best == s {
				cands = append(cands, cand{s, t, m.At(s, t)})
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
		if len(cands) > addPer {
			cands = cands[:addPer]
		}
		if len(cands) == 0 {
			break
		}
		for _, cd := range cands {
			anchors = append(anchors, Anchor{cd.s, cd.t})
			anchoredS[cd.s] = true
			anchoredT[cd.t] = true
		}
	}
	if m == nil {
		m = dense.New(ns, nt)
	}
	return m, nil
}

// cenalpEmbed embeds the union graph: source nodes 0..ns−1, target nodes
// ns..ns+nt−1, with anchor coupling edges tying the two sides together.
func cenalpEmbed(gs, gt *graph.Graph, anchors []Anchor, hidden, embed, epochs int, lr float64, seed int64) *dense.Matrix {
	ns, nt := gs.N(), gt.N()
	b := graph.NewBuilder(ns + nt)
	for _, e := range gs.Edges() {
		b.AddEdge(int(e[0]), int(e[1]))
	}
	for _, e := range gt.Edges() {
		b.AddEdge(ns+int(e[0]), ns+int(e[1]))
	}
	for _, a := range anchors {
		if a.S >= 0 && a.S < ns && a.T >= 0 && a.T < nt {
			b.AddEdge(a.S, ns+a.T)
		}
	}
	union := b.Build()

	var x *dense.Matrix
	if gs.Attrs() != nil && gt.Attrs() != nil && gs.Attrs().Cols == gt.Attrs().Cols {
		x = dense.New(ns+nt, gs.Attrs().Cols)
		for i := 0; i < ns; i++ {
			copy(x.Row(i), gs.Attrs().Row(i))
		}
		for i := 0; i < nt; i++ {
			copy(x.Row(ns+i), gt.Attrs().Row(i))
		}
	} else {
		x = paleStructFeatures(union)
	}

	lap := gom.LowOrder(union).Laplacians[0]
	enc := nn.NewEncoder(
		[]int{x.Cols, hidden, embed},
		[]nn.Activation{nn.Tanh{}, nn.Tanh{}},
		rand.New(rand.NewSource(seed)),
	)
	data := &nn.GraphData{Laps: []*sparse.CSR{lap}, X: x}
	nn.Train(enc, data, data, nn.TrainConfig{Epochs: epochs, LR: lr})
	return enc.Embed(lap, x)
}
