package baselines

import (
	"math/rand"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/gom"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/nn"
	"github.com/htc-align/htc/internal/sparse"
)

// GAlign implements the unsupervised multi-order GCN alignment of Trung et
// al. (ICDE 2020), the paper's strongest unsupervised competitor. Its two
// defining ideas are reproduced:
//
//  1. multi-order similarity — embeddings from *every* GCN layer
//     contribute to the alignment matrix, later layers weighted more;
//  2. augmentation adaptivity — the shared encoder is additionally trained
//     so that embeddings of a perturbed (edge-dropped) graph stay close to
//     those of the original, which is what buys GAlign its robustness to
//     structural noise.
//
// Fidelity note: the original refines the alignment with an augmentation-
// weighted consistency loss over three augmentations; this implementation
// uses one edge-drop augmentation per graph and a quadratic consistency
// penalty, trained jointly with the reconstruction objective.
type GAlign struct {
	// Hidden and Embed are the encoder widths (defaults 64/32).
	Hidden, Embed int
	// Epochs and LR control training (defaults 60, 0.02).
	Epochs int
	LR     float64
	// NoiseP is the augmentation edge-drop probability (default 0.2).
	NoiseP float64
	// ConsistencyWeight scales the augmentation loss (default 0.5).
	ConsistencyWeight float64
	// Seed drives initialisation and augmentation sampling.
	Seed int64
}

// Name implements Aligner.
func (GAlign) Name() string { return "GAlign" }

// Align implements Aligner. GAlign is unsupervised: seeds are ignored.
func (g GAlign) Align(gs, gt *graph.Graph, _ []Anchor) (*dense.Matrix, error) {
	hidden, embed := g.Hidden, g.Embed
	if hidden <= 0 {
		hidden = 64
	}
	if embed <= 0 {
		embed = 32
	}
	epochs := g.Epochs
	if epochs <= 0 {
		epochs = 60
	}
	lr := g.LR
	if lr <= 0 {
		lr = 0.02
	}
	noiseP := g.NoiseP
	if noiseP <= 0 || noiseP >= 1 {
		noiseP = 0.2
	}
	cw := g.ConsistencyWeight
	if cw <= 0 {
		cw = 0.5
	}

	rng := rand.New(rand.NewSource(g.Seed))
	xs, xt := galignFeatures(gs), galignFeatures(gt)
	lapS := gom.LowOrder(gs).Laplacians[0]
	lapT := gom.LowOrder(gt).Laplacians[0]
	augS := gom.LowOrder(dropEdges(gs, noiseP, rng)).Laplacians[0]
	augT := gom.LowOrder(dropEdges(gt, noiseP, rng)).Laplacians[0]

	enc := nn.NewEncoder(
		[]int{xs.Cols, hidden, embed},
		[]nn.Activation{nn.Tanh{}, nn.Tanh{}},
		rand.New(rand.NewSource(g.Seed+1)),
	)
	opt := nn.NewAdam(enc.W, lr)
	type side struct {
		lap, aug *sparse.CSR
		x        *dense.Matrix
	}
	sides := []side{{lapS, augS, xs}, {lapT, augT, xt}}
	for epoch := 0; epoch < epochs; epoch++ {
		grads := enc.ZeroGrads()
		for _, s := range sides {
			cache := enc.Forward(s.lap, s.x)
			augCache := enc.Forward(s.aug, s.x)
			// Reconstruction on the clean graph.
			_, dH := nn.ReconLoss(s.lap, cache.Output())
			// Consistency: ‖H − H_aug‖²; both passes receive gradient.
			diff := cache.Output().Clone()
			diff.Sub(augCache.Output())
			dH.AddScaled(diff, 2*cw)
			enc.Backward(cache, dH, grads)
			dAug := diff
			dAug.Scale(-2 * cw)
			enc.Backward(augCache, dAug, grads)
		}
		opt.Step(grads)
	}

	// Multi-order alignment: cosine similarity per layer, later layers
	// weighted more (weights l / Σl).
	cs := enc.Forward(lapS, xs)
	ct := enc.Forward(lapT, xt)
	layers := enc.Layers()
	var weightSum float64
	for l := 1; l <= layers; l++ {
		weightSum += float64(l)
	}
	m := dense.New(gs.N(), gt.N())
	for l := 0; l < layers; l++ {
		hs := cs.A[l].Clone()
		ht := ct.A[l].Clone()
		hs.NormalizeRows()
		ht.NormalizeRows()
		m.AddScaled(dense.MulBT(hs, ht), float64(l+1)/weightSum)
	}
	return m, nil
}

// dropEdges returns a copy of g with each edge independently removed with
// probability p — GAlign's structural augmentation.
func dropEdges(g *graph.Graph, p float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		if rng.Float64() >= p {
			b.AddEdge(int(e[0]), int(e[1]))
		}
	}
	out := b.Build()
	if g.Attrs() != nil {
		out = out.WithAttrs(g.Attrs())
	}
	return out
}

func galignFeatures(g *graph.Graph) *dense.Matrix {
	if g.Attrs() != nil {
		return g.Attrs()
	}
	return paleStructFeatures(g)
}
