package baselines

import (
	"math"
	"math/rand"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
)

// REGAL implements representation-learning based graph alignment (Heimann
// et al., CIKM 2018) via its xNetMF embedding: nodes are described by
// log-binned degree histograms of their k-hop neighbourhoods (discounted
// per hop) plus attribute distances; a landmark-based Nyström
// factorisation turns the implicit similarity matrix into explicit
// embeddings whose cosine similarity aligns the graphs. Unsupervised.
//
// Fidelity note: this follows the xNetMF construction (shared log-binning,
// hop discount δ, landmark pseudo-inverse) with the dense Jacobi
// eigensolver standing in for the original's truncated SVD — equivalent on
// the symmetric landmark block.
type REGAL struct {
	// MaxHops is the neighbourhood depth (default 2, as in the paper).
	MaxHops int
	// Discount is the per-hop discount δ (default 0.5).
	Discount float64
	// Landmarks is the landmark count p (default 10·log2(n), capped at n).
	Landmarks int
	// GammaStruct and GammaAttr weight structural and attribute distance
	// (default 1 and 1).
	GammaStruct, GammaAttr float64
	// Seed drives landmark selection.
	Seed int64
}

// Name implements Aligner.
func (REGAL) Name() string { return "REGAL" }

// Align implements Aligner. REGAL is unsupervised: seeds are ignored.
func (r REGAL) Align(gs, gt *graph.Graph, _ []Anchor) (*dense.Matrix, error) {
	maxHops := r.MaxHops
	if maxHops <= 0 {
		maxHops = 2
	}
	discount := r.Discount
	if discount <= 0 || discount > 1 {
		discount = 0.5
	}
	gammaS := r.GammaStruct
	if gammaS <= 0 {
		gammaS = 1
	}
	gammaA := r.GammaAttr
	if gammaA <= 0 {
		gammaA = 1
	}

	// Shared log-binning across both graphs keeps features comparable.
	maxDeg := gs.MaxDegree()
	if d := gt.MaxDegree(); d > maxDeg {
		maxDeg = d
	}
	bins := int(math.Floor(math.Log2(float64(maxDeg)+1))) + 1

	fs := xnetmfFeatures(gs, maxHops, discount, bins)
	ft := xnetmfFeatures(gt, maxHops, discount, bins)
	n := gs.N() + gt.N()

	// Stack the two graphs' features and attributes.
	feats := dense.New(n, bins)
	for i := 0; i < gs.N(); i++ {
		copy(feats.Row(i), fs.Row(i))
	}
	for i := 0; i < gt.N(); i++ {
		copy(feats.Row(gs.N()+i), ft.Row(i))
	}
	var attrs *dense.Matrix
	if gs.Attrs() != nil && gt.Attrs() != nil && gs.Attrs().Cols == gt.Attrs().Cols {
		attrs = dense.New(n, gs.Attrs().Cols)
		for i := 0; i < gs.N(); i++ {
			copy(attrs.Row(i), gs.Attrs().Row(i))
		}
		for i := 0; i < gt.N(); i++ {
			copy(attrs.Row(gs.N()+i), gt.Attrs().Row(i))
		}
	}

	p := r.Landmarks
	if p <= 0 {
		p = int(10 * math.Log2(float64(n)+1))
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	rng := rand.New(rand.NewSource(r.Seed))
	landmarks := rng.Perm(n)[:p]

	// C(i, l) = exp(−γs·‖f_i − f_l‖² − γa·attrDist).
	c := dense.New(n, p)
	for i := 0; i < n; i++ {
		fi := feats.Row(i)
		row := c.Row(i)
		for l, lm := range landmarks {
			fl := feats.Row(lm)
			var d2 float64
			for j := range fi {
				diff := fi[j] - fl[j]
				d2 += diff * diff
			}
			dist := gammaS * d2
			if attrs != nil {
				ai, al := attrs.Row(i), attrs.Row(lm)
				var a2 float64
				for j := range ai {
					diff := ai[j] - al[j]
					a2 += diff * diff
				}
				dist += gammaA * a2 / float64(len(ai))
			}
			row[l] = math.Exp(-dist)
		}
	}

	// Nyström: Wpp = C[landmarks, :]; Y = C·U·Σ^(−1/2).
	wpp := dense.New(p, p)
	for a, lm := range landmarks {
		copy(wpp.Row(a), c.Row(lm))
	}
	// Symmetrise against numerical asymmetry before the eigensolve.
	wppT := wpp.T()
	wpp.Add(wppT)
	wpp.Scale(0.5)
	vals, vecs := dense.SymEigen(wpp)
	proj := dense.New(p, p)
	for j := 0; j < p; j++ {
		var f float64
		if vals[j] > 1e-10 {
			f = 1 / math.Sqrt(vals[j])
		}
		for i := 0; i < p; i++ {
			proj.Set(i, j, vecs.At(i, j)*f)
		}
	}
	y := dense.Mul(c, proj)
	y.NormalizeRows()

	ys := dense.New(gs.N(), p)
	yt := dense.New(gt.N(), p)
	for i := 0; i < gs.N(); i++ {
		copy(ys.Row(i), y.Row(i))
	}
	for i := 0; i < gt.N(); i++ {
		copy(yt.Row(i), y.Row(gs.N()+i))
	}
	return dense.MulBT(ys, yt), nil
}

// xnetmfFeatures computes the discounted, log-binned degree histograms of
// every node's 1..maxHops neighbourhoods.
func xnetmfFeatures(g *graph.Graph, maxHops int, discount float64, bins int) *dense.Matrix {
	out := dense.New(g.N(), bins)
	visited := make([]int32, g.N())
	var frontier, next []int32
	for v := 0; v < g.N(); v++ {
		stamp := int32(v + 1)
		visited[v] = stamp
		frontier = frontier[:0]
		frontier = append(frontier, int32(v))
		row := out.Row(v)
		weight := 1.0
		for hop := 1; hop <= maxHops; hop++ {
			next = next[:0]
			for _, u := range frontier {
				for _, w := range g.Neighbors(int(u)) {
					if visited[w] != stamp {
						visited[w] = stamp
						next = append(next, w)
						bin := int(math.Floor(math.Log2(float64(g.Degree(int(w))) + 1)))
						if bin >= bins {
							bin = bins - 1
						}
						row[bin] += weight
					}
				}
			}
			frontier, next = next, frontier
			weight *= discount
		}
	}
	return out
}
