package baselines

import (
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/metrics"
)

// alignedPair builds a source graph with attributes and an isomorphic
// target under a random permutation.
func alignedPair(n int, seed int64) (*graph.Graph, *graph.Graph, []int) {
	rng := rand.New(rand.NewSource(seed))
	gs := graph.ErdosRenyi(n, 0.2, rng)
	x := dense.New(n, 5)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	gs = gs.WithAttrs(x)
	perm := graph.Permutation(n, rng)
	return gs, graph.Relabel(gs, perm), perm
}

func tenPercent(perm []int, seed int64) []Anchor {
	return SampleSeeds(perm, 0.1, seed)
}

func allAligners(seed int64) []Aligner {
	return []Aligner{
		IsoRank{Iters: 15},
		FINAL{Iters: 15},
		REGAL{Seed: seed},
		PALE{Epochs: 30, Seed: seed},
		CENALP{Epochs: 15, Rounds: 3, Seed: seed},
		GAlign{Epochs: 30, Seed: seed},
	}
}

func TestAllAlignersProduceValidMatrices(t *testing.T) {
	gs, gt, perm := alignedPair(25, 1)
	seeds := tenPercent(perm, 2)
	for _, a := range allAligners(3) {
		m, err := a.Align(gs, gt, seeds)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if m.Rows != 25 || m.Cols != 25 {
			t.Fatalf("%s: shape %dx%d", a.Name(), m.Rows, m.Cols)
		}
		for _, v := range m.Data {
			if v != v { // NaN check
				t.Fatalf("%s: NaN in alignment matrix", a.Name())
			}
		}
	}
}

func TestAlignersBeatsRandomOnEasyPair(t *testing.T) {
	// On a noise-free attributed pair every method must beat random
	// guessing (p@1 = 1/n) by a wide margin.
	gs, gt, perm := alignedPair(30, 4)
	seeds := tenPercent(perm, 5)
	truth := metrics.FromPerm(perm)
	// Random guessing scores 1/30 ≈ 0.033. Topology-only propagation
	// (IsoRank) is much weaker than attribute-aware methods on a
	// near-regular ER graph — mirroring its standing in the paper — so
	// its bar is lower.
	minP1 := map[string]float64{
		"IsoRank": 0.1, "FINAL": 0.2, "REGAL": 0.2,
		"PALE": 0.2, "CENALP": 0.2, "GAlign": 0.2,
	}
	for _, a := range allAligners(6) {
		m, err := a.Align(gs, gt, seeds)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		p1 := metrics.Evaluate(m, truth, 1).PrecisionAt[1]
		t.Logf("%s: p@1 = %.3f", a.Name(), p1)
		if p1 < minP1[a.Name()] {
			t.Errorf("%s: p@1 = %.3f, want ≥ %.2f on an easy pair", a.Name(), p1, minP1[a.Name()])
		}
	}
}

func TestIsoRankSeedsHelp(t *testing.T) {
	// With topology-only information and structural noise, supervision
	// must not hurt (the supervised prior pins the seeded rows).
	gs, gt, perm := alignedPair(40, 7)
	truth := metrics.FromPerm(perm)
	without, err := IsoRank{Iters: 20}.Align(gs, gt, nil)
	if err != nil {
		t.Fatal(err)
	}
	with, err := IsoRank{Iters: 20}.Align(gs, gt, SampleSeeds(perm, 0.3, 8))
	if err != nil {
		t.Fatal(err)
	}
	pWithout := metrics.Evaluate(without, truth, 1).PrecisionAt[1]
	pWith := metrics.Evaluate(with, truth, 1).PrecisionAt[1]
	t.Logf("IsoRank p@1: unsupervised %.3f, 30%% seeds %.3f", pWithout, pWith)
	if pWith+0.05 < pWithout {
		t.Errorf("seeds hurt IsoRank: %.3f vs %.3f", pWith, pWithout)
	}
}

func TestFINALUsesAttributes(t *testing.T) {
	// FINAL with informative attributes must beat IsoRank without them on
	// an attribute-rich pair (the headline claim of the FINAL paper).
	rng := rand.New(rand.NewSource(9))
	n := 40
	gs := graph.ErdosRenyi(n, 0.15, rng)
	// Highly discriminative attributes: near-orthogonal per node.
	x := dense.New(n, 16)
	for i := 0; i < n; i++ {
		x.Set(i, i%16, 1)
		x.Set(i, (i*7)%16, x.At(i, (i*7)%16)+0.5)
	}
	gs = gs.WithAttrs(x)
	perm := graph.Permutation(n, rng)
	gt := graph.Relabel(gs, perm)
	truth := metrics.FromPerm(perm)

	mFinal, err := FINAL{Iters: 20}.Align(gs, gt, nil)
	if err != nil {
		t.Fatal(err)
	}
	pFinal := metrics.Evaluate(mFinal, truth, 1).PrecisionAt[1]
	if pFinal < 0.3 {
		t.Errorf("FINAL p@1 = %.3f with near-unique attributes", pFinal)
	}
}

func TestREGALDeterministicPerSeed(t *testing.T) {
	gs, gt, _ := alignedPair(30, 10)
	m1, err := REGAL{Seed: 1}.Align(gs, gt, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := REGAL{Seed: 1}.Align(gs, gt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Equal(m2, 0) {
		t.Fatal("REGAL not deterministic for equal seeds")
	}
}

func TestREGALWorksWithoutAttributes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gs := graph.PreferentialAttachment(40, 3, rng)
	perm := graph.Permutation(40, rng)
	gt := graph.Relabel(gs, perm)
	m, err := REGAL{Seed: 2}.Align(gs, gt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 40 || m.Cols != 40 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
}

func TestPALENeedsSeeds(t *testing.T) {
	// PALE's independent embedding spaces are incomparable without a
	// learned mapping: seeded PALE must beat unseeded PALE on average.
	gs, gt, perm := alignedPair(35, 12)
	truth := metrics.FromPerm(perm)
	mNo, err := PALE{Epochs: 40, Seed: 13}.Align(gs, gt, nil)
	if err != nil {
		t.Fatal(err)
	}
	mYes, err := PALE{Epochs: 40, Seed: 13}.Align(gs, gt, SampleSeeds(perm, 0.3, 14))
	if err != nil {
		t.Fatal(err)
	}
	pNo := metrics.Evaluate(mNo, truth, 1).PrecisionAt[1]
	pYes := metrics.Evaluate(mYes, truth, 1).PrecisionAt[1]
	t.Logf("PALE p@1: unseeded %.3f, seeded %.3f", pNo, pYes)
	if pYes < pNo {
		t.Errorf("seeded PALE (%.3f) worse than unseeded (%.3f)", pYes, pNo)
	}
}

func TestCENALPAnchorsGrow(t *testing.T) {
	gs, gt, perm := alignedPair(30, 15)
	seeds := tenPercent(perm, 16)
	m, err := CENALP{Epochs: 10, Rounds: 2, AddPerRound: 3, Seed: 17}.Align(gs, gt, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 30 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
}

func TestGAlignUnsupervisedQuality(t *testing.T) {
	gs, gt, perm := alignedPair(30, 18)
	truth := metrics.FromPerm(perm)
	m, err := GAlign{Epochs: 60, Seed: 19}.Align(gs, gt, nil)
	if err != nil {
		t.Fatal(err)
	}
	p1 := metrics.Evaluate(m, truth, 1).PrecisionAt[1]
	t.Logf("GAlign p@1 = %.3f", p1)
	if p1 < 0.5 {
		t.Errorf("GAlign p@1 = %.3f on noise-free pair, want ≥ 0.5", p1)
	}
}

func TestSampleSeeds(t *testing.T) {
	truth := []int{5, 4, -1, 2, 1, 0}
	seeds := SampleSeeds(truth, 0.5, 1)
	if len(seeds) != 2 { // 5 anchored nodes → 2 seeds at 50%... floor(5*0.5)=2
		t.Fatalf("got %d seeds, want 2", len(seeds))
	}
	for _, s := range seeds {
		if truth[s.S] != s.T {
			t.Fatalf("seed %v not in truth", s)
		}
	}
	if got := SampleSeeds(truth, 0, 1); got != nil {
		t.Fatal("frac=0 must give no seeds")
	}
	if got := SampleSeeds(truth, 1, 1); len(got) != 5 {
		t.Fatalf("frac=1 must give all anchors, got %d", len(got))
	}
	// Tiny fraction still yields at least one seed.
	if got := SampleSeeds(truth, 0.01, 1); len(got) != 1 {
		t.Fatalf("tiny frac: got %d seeds, want 1", len(got))
	}
}

func TestSampleSeedsDeterministic(t *testing.T) {
	truth := []int{3, 2, 1, 0}
	a := SampleSeeds(truth, 0.5, 7)
	b := SampleSeeds(truth, 0.5, 7)
	if len(a) != len(b) {
		t.Fatal("nondeterministic seed count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic seed selection")
		}
	}
}

func TestSeedPriorShapes(t *testing.T) {
	h := seedPrior(3, 4, []Anchor{{0, 1}}, nil)
	if h.Rows != 3 || h.Cols != 4 {
		t.Fatalf("prior shape %dx%d", h.Rows, h.Cols)
	}
	// Seeded entry must dominate its row.
	if h.At(0, 1) <= h.At(0, 0) {
		t.Fatal("seed entry not boosted")
	}
}

func TestAttrSimilarityNilCases(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	plain := graph.ErdosRenyi(5, 0.5, rng)
	withAttrs := plain.WithAttrs(dense.New(5, 3))
	if attrSimilarity(plain, plain) != nil {
		t.Fatal("expected nil for attribute-less graphs")
	}
	if attrSimilarity(withAttrs, plain) != nil {
		t.Fatal("expected nil for one-sided attributes")
	}
	other := plain.WithAttrs(dense.New(5, 4))
	if attrSimilarity(withAttrs, other) != nil {
		t.Fatal("expected nil for mismatched dims")
	}
	if attrSimilarity(withAttrs, withAttrs) == nil {
		t.Fatal("expected similarity matrix")
	}
}

func TestDropEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graph.ErdosRenyi(30, 0.3, rng)
	dropped := dropEdges(g, 0.5, rng)
	if dropped.NumEdges() >= g.NumEdges() {
		t.Fatalf("dropEdges kept %d of %d edges", dropped.NumEdges(), g.NumEdges())
	}
	if dropped.N() != g.N() {
		t.Fatal("node count changed")
	}
	untouched := dropEdges(g, 0, rng)
	if untouched.NumEdges() != g.NumEdges() {
		t.Fatal("p=0 must keep all edges")
	}
}
