package baselines

import "math/rand"

// SampleSeeds draws a fraction of the ground-truth anchors as supervision
// for the supervised baselines, reproducing the paper's protocol of
// granting IsoRank, FINAL, PALE and CENALP 10% of ground truth.
// truth[s] = t (or −1 for unanchored source nodes).
func SampleSeeds(truth []int, frac float64, seed int64) []Anchor {
	var anchored []Anchor
	for s, t := range truth {
		if t >= 0 {
			anchored = append(anchored, Anchor{s, t})
		}
	}
	if frac >= 1 {
		return anchored
	}
	if frac <= 0 || len(anchored) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(anchored), func(i, j int) { anchored[i], anchored[j] = anchored[j], anchored[i] })
	n := int(float64(len(anchored)) * frac)
	if n < 1 {
		n = 1
	}
	return anchored[:n]
}
