package baselines

import (
	"math/rand"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/gom"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/nn"
	"github.com/htc-align/htc/internal/sparse"
)

// PALE implements "Predict Anchor Links via Embedding" (Man et al., IJCAI
// 2016): each network is embedded independently, then a mapping from the
// source embedding space to the target space is learned from observed
// anchor links (supervised; the paper's protocol grants it 10% of ground
// truth). Alignment scores are cosine similarities after mapping.
//
// Fidelity note: the original's skip-gram embedding is substituted by this
// repository's graph-autoencoder embedding (independently trained per
// graph, which preserves PALE's defining property that the two spaces are
// *not* aligned a priori); the original's linear mapping variant is used,
// fit by ridge regression. Without seeds no mapping can be learned and the
// identity map is used, reproducing the original's failure mode.
type PALE struct {
	// Hidden and Embed are the embedding network widths (defaults 32/16).
	Hidden, Embed int
	// Epochs and LR control embedding training (defaults 60, 0.02).
	Epochs int
	LR     float64
	// Lambda is the ridge regularisation of the mapping (default 1e-3).
	Lambda float64
	// Seed drives weight initialisation.
	Seed int64
}

// Name implements Aligner.
func (PALE) Name() string { return "PALE" }

// Align implements Aligner.
func (p PALE) Align(gs, gt *graph.Graph, seeds []Anchor) (*dense.Matrix, error) {
	hidden, embed := p.Hidden, p.Embed
	if hidden <= 0 {
		hidden = 32
	}
	if embed <= 0 {
		embed = 16
	}
	epochs := p.Epochs
	if epochs <= 0 {
		epochs = 60
	}
	lr := p.LR
	if lr <= 0 {
		lr = 0.02
	}
	lambda := p.Lambda
	if lambda <= 0 {
		lambda = 1e-3
	}

	hs := paleEmbed(gs, hidden, embed, epochs, lr, p.Seed)
	ht := paleEmbed(gt, hidden, embed, epochs, lr, p.Seed+1)

	mapped := hs
	if len(seeds) > 0 {
		src := dense.New(len(seeds), embed)
		dst := dense.New(len(seeds), embed)
		for i, a := range seeds {
			copy(src.Row(i), hs.Row(a.S))
			copy(dst.Row(i), ht.Row(a.T))
		}
		w, err := dense.SolveRidge(src, dst, lambda)
		if err != nil {
			return nil, err
		}
		mapped = dense.Mul(hs, w)
	}
	mapped = mapped.Clone()
	mapped.NormalizeRows()
	htn := ht.Clone()
	htn.NormalizeRows()
	return dense.MulBT(mapped, htn), nil
}

// paleEmbed trains an *independent* graph autoencoder for one graph — the
// decisive difference from HTC's shared encoder.
func paleEmbed(g *graph.Graph, hidden, embed, epochs int, lr float64, seed int64) *dense.Matrix {
	x := g.Attrs()
	if x == nil {
		x = paleStructFeatures(g)
	}
	lap := gom.LowOrder(g).Laplacians[0]
	enc := nn.NewEncoder(
		[]int{x.Cols, hidden, embed},
		[]nn.Activation{nn.Tanh{}, nn.Tanh{}},
		rand.New(rand.NewSource(seed)),
	)
	data := &nn.GraphData{Laps: []*sparse.CSR{lap}, X: x}
	// Training against itself twice doubles gradients harmlessly; reuse
	// the shared trainer with src = tgt = this graph.
	nn.Train(enc, data, data, nn.TrainConfig{Epochs: epochs, LR: lr})
	return enc.Embed(lap, x)
}

// paleStructFeatures provides degree-based surrogate features for graphs
// without attributes.
func paleStructFeatures(g *graph.Graph) *dense.Matrix {
	x := dense.New(g.N(), 2)
	maxDeg := float64(g.MaxDegree())
	if maxDeg == 0 {
		maxDeg = 1
	}
	for i := 0; i < g.N(); i++ {
		row := x.Row(i)
		row[0] = 1
		row[1] = float64(g.Degree(i)) / maxDeg
	}
	return x
}
