package baselines

import (
	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
)

// FINAL implements the attributed network alignment of Zhang & Tong (KDD
// 2016), in its node-attribute form (FINAL-N): the IsoRank-style
// propagation is gated elementwise by an attribute compatibility matrix N,
// so that score only flows between attribute-consistent node pairs:
//
//	M ← α·N ⊙ (Wsᵀ·M·Wt) + (1−α)·H
//
// Fidelity note: the original solves the equivalent linear system with a
// conjugate-gradient solver over Kronecker products; this implementation
// uses the same fixed-point iteration the paper derives (their Eq. 8),
// which converges to the same solution for α < 1.
type FINAL struct {
	// Alpha balances propagation against the prior (default 0.82).
	Alpha float64
	// Iters is the number of fixed-point iterations (default 30).
	Iters int
}

// Name implements Aligner.
func (FINAL) Name() string { return "FINAL" }

// Align implements Aligner.
func (f FINAL) Align(gs, gt *graph.Graph, seeds []Anchor) (*dense.Matrix, error) {
	alpha := f.Alpha
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.82
	}
	iters := f.Iters
	if iters <= 0 {
		iters = 30
	}
	attrs := attrSimilarity(gs, gt)
	h := seedPrior(gs.N(), gt.N(), seeds, attrs)

	// Attribute compatibility: shifted cosine in [0, 1]; all-ones when no
	// attributes exist (FINAL then degenerates to IsoRank, as in the
	// original paper).
	var compat *dense.Matrix
	if attrs != nil {
		compat = attrs.Clone()
		compat.Apply(func(v float64) float64 { return (v + 1) / 2 })
	}

	wsT := rowStochastic(gs).Transpose()
	wtT := rowStochastic(gt).Transpose()

	m := h.Clone()
	for it := 0; it < iters; it++ {
		mt := wtT.MulDense(m.T())
		next := wsT.MulDense(mt.T())
		if compat != nil {
			next.MulElem(compat)
		}
		next.Scale(alpha)
		next.AddScaled(h, 1-alpha)
		if norm := next.FrobNorm(); norm > 0 {
			next.Scale(1 / norm)
		}
		m = next
	}
	return m, nil
}
