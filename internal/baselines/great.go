package baselines

import (
	"math"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/orbit"
)

// GREAT implements a graphlet-edge-signature aligner in the spirit of
// Crawford & Milenković's GREAT (BIBM 2015) and the graphlet-degree-vector
// family (H-GRAAL, GraphletAlign) the paper cites as prior higher-order
// alignment work: every node is described by the *graphlet edge degree
// vector* — the orbit counts of its incident edges, aggregated — and nodes
// are matched by signature similarity. Unsupervised, embedding-free.
//
// This is the natural "higher-order but no learning" strawman: it uses the
// exact same 13 edge orbits as HTC but matches raw signatures instead of
// learned embeddings, which is what HTC's §II-B argues is insufficient.
type GREAT struct {
	// Orbits is the number of edge orbits in the signature (default 13).
	Orbits int
	// Gamma is the RBF width of the signature similarity (default 1).
	Gamma float64
	// AttrWeight blends attribute similarity into the score when both
	// graphs carry attributes (default 0.5).
	AttrWeight float64
}

// Name implements Aligner.
func (GREAT) Name() string { return "GREAT" }

// Align implements Aligner. GREAT is unsupervised: seeds are ignored.
func (g GREAT) Align(gs, gt *graph.Graph, _ []Anchor) (*dense.Matrix, error) {
	k := g.Orbits
	if k <= 0 || k > orbit.NumOrbits {
		k = orbit.NumOrbits
	}
	gamma := g.Gamma
	if gamma <= 0 {
		gamma = 1
	}
	aw := g.AttrWeight
	if aw <= 0 {
		aw = 0.5
	}

	fs := edgeDegreeVectors(gs, k)
	ft := edgeDegreeVectors(gt, k)
	// Log-scale and normalise: orbit counts span orders of magnitude.
	for _, f := range []*dense.Matrix{fs, ft} {
		f.Apply(math.Log1p)
	}

	m := dense.New(gs.N(), gt.N())
	for i := 0; i < gs.N(); i++ {
		fi := fs.Row(i)
		row := m.Row(i)
		for j := 0; j < gt.N(); j++ {
			fj := ft.Row(j)
			var d2 float64
			for c := range fi {
				diff := fi[c] - fj[c]
				d2 += diff * diff
			}
			row[j] = math.Exp(-gamma * d2 / float64(k))
		}
	}
	if attrs := attrSimilarity(gs, gt); attrs != nil {
		attrs.Apply(func(v float64) float64 { return (v + 1) / 2 })
		attrs.Scale(aw)
		m.Scale(1 - aw)
		m.Add(attrs)
	}
	return m, nil
}

// edgeDegreeVectors aggregates each node's incident-edge orbit counts into
// a per-node signature (the edge-GDV of the GREAT paper, summed over
// incident edges).
func edgeDegreeVectors(g *graph.Graph, k int) *dense.Matrix {
	counts := orbit.Count(g)
	out := dense.New(g.N(), k)
	for ei, e := range g.Edges() {
		row := counts.PerEdge[ei]
		for _, node := range e {
			dst := out.Row(int(node))
			for c := 0; c < k; c++ {
				dst[c] += float64(row[c])
			}
		}
	}
	return out
}
