package baselines

import (
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/metrics"
	"github.com/htc-align/htc/internal/orbit"
)

func TestGREATShapesAndRange(t *testing.T) {
	gs, gt, _ := alignedPair(25, 30)
	m, err := GREAT{}.Align(gs, gt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 25 || m.Cols != 25 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	for _, v := range m.Data {
		if v < 0 || v > 1+1e-9 {
			t.Fatalf("similarity %v outside [0,1]", v)
		}
	}
}

func TestGREATAlignsStructurallyDistinctGraph(t *testing.T) {
	// On a graph with strongly heterogeneous local structure the
	// signature alone should align most nodes of an isomorphic copy.
	rng := rand.New(rand.NewSource(31))
	gs := graph.PreferentialAttachment(50, 3, rng)
	perm := graph.Permutation(50, rng)
	gt := graph.Relabel(gs, perm)
	m, err := GREAT{}.Align(gs, gt, nil)
	if err != nil {
		t.Fatal(err)
	}
	p1 := metrics.Evaluate(m, metrics.FromPerm(perm), 1).PrecisionAt[1]
	t.Logf("GREAT p@1 = %.3f on isomorphic PA graph", p1)
	if p1 < 0.3 {
		t.Errorf("p@1 = %.3f, want ≥ 0.3", p1)
	}
}

func TestGREATIdenticalSignaturesScoreOne(t *testing.T) {
	// Two isomorphic stars: all leaves share a signature, so leaf–leaf
	// similarity must be exactly exp(0) = 1 (no attributes involved).
	mk := func() *graph.Graph {
		b := graph.NewBuilder(5)
		for i := 1; i < 5; i++ {
			b.AddEdge(0, i)
		}
		return b.Build()
	}
	m, err := GREAT{}.Align(mk(), mk(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 2) != 1 {
		t.Fatalf("leaf-leaf similarity = %v, want 1", m.At(1, 2))
	}
	// Hub vs leaf must score strictly lower.
	if m.At(0, 1) >= m.At(0, 0) {
		t.Fatalf("hub-leaf %v not below hub-hub %v", m.At(0, 1), m.At(0, 0))
	}
}

func TestGREATOrbitTruncation(t *testing.T) {
	gs, gt, _ := alignedPair(20, 32)
	for _, k := range []int{1, 5, orbit.NumOrbits, 99} {
		if _, err := (GREAT{Orbits: k}).Align(gs, gt, nil); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestEdgeDegreeVectors(t *testing.T) {
	// Triangle: each node has two incident edges, each on orbit 0 once
	// and orbit 2 once → signature [2, 0, 2, ...].
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	f := edgeDegreeVectors(b.Build(), 3)
	for i := 0; i < 3; i++ {
		if f.At(i, 0) != 2 || f.At(i, 1) != 0 || f.At(i, 2) != 2 {
			t.Fatalf("node %d signature = %v", i, f.Row(i))
		}
	}
}
