// Package baselines re-implements the six comparison methods of the
// paper's §V-A: IsoRank, FINAL, REGAL (xNetMF), PALE, CENALP and GAlign.
//
// Each implementation states its fidelity level in its doc comment. The
// originals range from a fixed-point iteration (IsoRank) to a full
// research system (CENALP); where the original depends on machinery
// outside this repository's scope (skip-gram training, cross-graph random
// walks), the closest equivalent built from this repo's substrates is used
// and the substitution is documented both here and in DESIGN.md.
package baselines

import (
	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/sparse"
)

// Anchor is one known source→target correspondence. Supervised baselines
// receive 10% of the ground truth as anchors, matching the paper's
// experimental protocol.
type Anchor struct {
	S, T int
}

// Aligner is the common interface of every alignment method in this
// repository, HTC included (via the root package's adapter).
type Aligner interface {
	// Name returns the method's display name as used in the paper's
	// tables.
	Name() string
	// Align computes an ns×nt alignment score matrix. seeds may be empty;
	// unsupervised methods ignore them.
	Align(gs, gt *graph.Graph, seeds []Anchor) (*dense.Matrix, error)
}

// attrSimilarity returns the cosine-similarity matrix between node
// attributes of the two graphs, or nil when either side lacks attributes.
// Several baselines use it as a prior or compatibility term.
func attrSimilarity(gs, gt *graph.Graph) *dense.Matrix {
	if gs.Attrs() == nil || gt.Attrs() == nil {
		return nil
	}
	if gs.Attrs().Cols != gt.Attrs().Cols {
		return nil
	}
	a, b := gs.Attrs().Clone(), gt.Attrs().Clone()
	a.NormalizeRows()
	b.NormalizeRows()
	return dense.MulBT(a, b)
}

// seedPrior builds the prior matrix H of the supervised fixed-point
// methods: seed entries carry weight 1, everything else a uniform mass so
// the iteration can spread scores beyond the seeds. When no seeds exist an
// attribute prior (or uniform prior) is used instead.
func seedPrior(ns, nt int, seeds []Anchor, attrs *dense.Matrix) *dense.Matrix {
	h := dense.New(ns, nt)
	if attrs != nil {
		h.CopyFrom(attrs)
		// Cosine similarities can be negative; shift into [0, 1] so the
		// prior stays a non-negative mass distribution.
		h.Apply(func(v float64) float64 { return (v + 1) / 2 })
	} else {
		h.Fill(1)
	}
	norm := h.FrobNorm()
	if norm > 0 {
		h.Scale(1 / norm)
	}
	if len(seeds) > 0 {
		boost := h.MaxAbs()
		if boost == 0 {
			boost = 1
		}
		for _, s := range seeds {
			if s.S >= 0 && s.S < ns && s.T >= 0 && s.T < nt {
				h.Set(s.S, s.T, 10*boost)
			}
		}
		h.Scale(1 / h.FrobNorm())
	}
	return h
}

// rowStochastic returns D⁻¹·A for a graph, the row-normalised transition
// matrix shared by IsoRank and FINAL.
func rowStochastic(g *graph.Graph) *sparse.CSR {
	inv := make([]float64, g.N())
	for i, d := range g.DegreeVector() {
		if d > 0 {
			inv[i] = 1 / d
		}
	}
	return g.Adjacency().DiagScale(inv, nil)
}
