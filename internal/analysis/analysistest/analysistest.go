// Package analysistest runs one analyzer over fixture packages and
// checks its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// alone (the offline build cannot fetch x/tools).
//
// Fixtures live under testdata/src/<path> relative to the calling test,
// one directory per package, GOPATH-style: the relative path is the
// package's import path, so fixture packages can import each other.
// A line expecting a diagnostic says:
//
//	sum += v // want "float accumulation"
//
// The quoted string is a regular expression matched against the
// diagnostics reported for that line. Every want must be matched by a
// diagnostic and every diagnostic by a want; either kind of leftover
// fails the test. Suppression directives (//lint:allow) are honoured
// exactly as in the real driver, so fixtures also lock the directive
// behaviour.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/htc-align/htc/internal/analysis"
)

// wantRE matches one expectation comment. Expectations use the
// analysistest syntax: `// want "regexp"` with optional extra quoted
// regexps for lines expecting several diagnostics.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads the fixture packages at the given testdata/src-relative
// paths as one program, runs the analyzer, and matches diagnostics
// against the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	pkgs, err := analysis.LoadDirs("testdata/src", pkgPaths...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", pkgPaths, err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for file, lines := range sources(pkg) {
			for i, text := range lines {
				m := wantRE.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				for _, pattern := range splitQuoted(t, file, i+1, m[1]) {
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, pattern, err)
					}
					wants[key{file, i + 1}] = append(wants[key{file, i + 1}], re)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

// sources exposes each fixture file's lines for want scanning.
func sources(pkg *analysis.Package) map[string][]string {
	return pkg.Sources()
}

// splitQuoted extracts the quoted regexps of one want comment.
func splitQuoted(t *testing.T, file string, line int, s string) []string {
	t.Helper()
	var patterns []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s:%d: malformed want comment: expectations must be quoted, got %q", file, line, s)
		}
		prefix, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s:%d: malformed want comment %q: %v", file, line, s, err)
		}
		unquoted, err := strconv.Unquote(prefix)
		if err != nil {
			t.Fatalf("%s:%d: malformed want comment %q: %v", file, line, s, err)
		}
		patterns = append(patterns, unquoted)
		s = strings.TrimSpace(s[len(prefix):])
	}
	if len(patterns) == 0 {
		t.Fatalf("%s:%d: want comment carries no expectations", file, line)
	}
	return patterns
}
