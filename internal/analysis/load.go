package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader resolves dependencies through compiled export data rather
// than by type-checking source transitively: `go list -export` hands
// back build-cache export files for every dependency, and the standard
// gc importer reads them. That keeps a whole-repo lint run to one `go
// list` invocation plus a source type-check of only the packages under
// analysis, works fully offline, and never disagrees with the compiler
// about what a dependency exports.

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -json` in dir over the patterns and
// decodes the stream.
func goList(dir string, extraArgs []string, patterns ...string) ([]*listedPackage, error) {
	args := []string{"list", "-e", "-export", "-json=ImportPath,Dir,Name,GoFiles,Export,DepOnly,Error"}
	args = append(args, extraArgs...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup resolves import paths to export-data readers for the gc
// importer. Paths missing from the pre-listed map (test-only
// dependencies, fixture imports) fall back to an on-demand `go list` of
// that single package.
type exportLookup struct {
	dir     string
	exports map[string]string
}

func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		pkgs, err := goList(l.dir, []string{"-deps"}, path)
		if err != nil {
			return nil, fmt.Errorf("resolving import %q: %w", path, err)
		}
		for _, p := range pkgs {
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
		}
		if file, ok = l.exports[path]; !ok {
			return nil, fmt.Errorf("no export data for import %q", path)
		}
	}
	return os.Open(file)
}

// newInfo allocates the fact tables every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Load lists the patterns relative to dir (the module root in normal
// use), parses and type-checks every matched package from source, and
// resolves their dependencies through export data. It is the loader
// behind `htc-lint ./...`.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, []string{"-deps"}, patterns...)
	if err != nil {
		return nil, err
	}
	lookup := &exportLookup{dir: dir, exports: make(map[string]string, len(listed))}
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			lookup.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && p.Name != "" {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no packages matched %s", strings.Join(patterns, " "))
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup.lookup)
	var pkgs []*Package
	for _, t := range targets {
		var files []string
		for _, gf := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, gf))
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDirs parses and type-checks one package per directory, resolving
// imports between the listed directories by import path and everything
// else through export data. It exists for the analysistest fixtures
// under testdata/src: root is the testdata/src directory, and each
// relative dir doubles as the fixture package's import path, mirroring
// the GOPATH layout x/tools' analysistest uses.
func LoadDirs(root string, dirs ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	lookup := &exportLookup{dir: root, exports: make(map[string]string)}
	imp := importer.ForCompiler(fset, "gc", lookup.lookup)
	// Fixture packages may import each other (knobcover's core/server
	// pair); resolve those source-to-source ahead of the gc importer.
	fix := &fixtureImporter{root: root, fset: fset, fallback: imp, cache: make(map[string]*types.Package)}
	var pkgs []*Package
	for _, dir := range dirs {
		full := filepath.Join(root, filepath.FromSlash(dir))
		files, err := goFilesIn(full)
		if err != nil {
			return nil, err
		}
		pkg, err := check(fset, fix, dir, full, files)
		if err != nil {
			return nil, err
		}
		fix.cache[dir] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// fixtureImporter resolves fixture-local import paths from source under
// root and defers everything else to the export-data importer.
type fixtureImporter struct {
	root     string
	fset     *token.FileSet
	fallback types.Importer
	cache    map[string]*types.Package
}

func (f *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := f.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(f.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		files, err := goFilesIn(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := check(f.fset, f, path, dir, files)
		if err != nil {
			return nil, err
		}
		f.cache[path] = pkg.Types
		return pkg.Types, nil
	}
	return f.fallback.Import(path)
}

// goFilesIn lists the non-test .go files of one directory, sorted.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

// check parses files and type-checks them as one package.
func check(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	pkg := &Package{Path: path, Dir: dir, Fset: fset, src: make(map[string][]string, len(files))}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, file, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", file, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.src[file] = strings.Split(string(src), "\n")
	}
	conf := types.Config{Importer: imp}
	info := newInfo()
	tpkg, err := conf.Check(path, fset, pkg.Files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}
