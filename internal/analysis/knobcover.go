package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// Knobcover enforces the config-threading contract across packages:
// every JSON-tagged field of core.Config is a user-visible knob, and a
// knob must be (a) actually read by pipeline code, (b) defaulted or
// validated when it is a bare numeric, (c) covered by the ignored-knob
// rejection when it only applies to some similarity backends, and
// (d) documented whenever it is excluded from the request-hash cache
// identity. PR 6 and PR 7 guarded each of these by hand-written tests
// per knob; this analyzer guards the whole class:
//
//   - dead knob: a JSON-tagged Config field no non-test code reads
//     would accept user input and silently ignore it.
//   - unvalidated numeric: a plain int/int64/float64 knob that appears
//     in neither withDefaults nor ValidateSimilarity ships whatever the
//     client sent straight into the pipeline (enum-typed knobs validate
//     through their UnmarshalText instead and are exempt).
//   - ignored-knob coverage: candidate_k and every ann_* knob must be
//     checked in ValidateSimilarity — the function behind the server's
//     ignored-knob 400s.
//   - cache-identity exclusions: a `json:"-"` field, and every field
//     canonicalConfig (the server's cache-key normaliser) overwrites,
//     is invisible to result caching; each such exclusion must carry a
//     //lint:allow knobcover <reason> directive explaining why caching
//     may ignore it. Structurally, cacheKey must go through
//     canonicalConfig and canonicalConfig through WithDefaults, so
//     equivalent configs keep hashing equal.
var Knobcover = &Analyzer{
	Name: "knobcover",
	Doc: "every JSON-tagged core.Config knob must be read by the pipeline, " +
		"defaulted/validated, covered by the ignored-knob check when " +
		"backend-conditional, and documented when excluded from cache identity",
	RunProgram: runKnobcover,
}

// knobField is one JSON-visible (or deliberately JSON-hidden) field of
// core.Config.
type knobField struct {
	name     string // Go field name
	jsonName string // first element of the json tag; "-" if hidden
	pos      token.Pos
	numeric  bool // bare (unnamed) int/int64/float64 etc.

	used       bool // read anywhere in the loaded program
	inDefaults bool // read inside withDefaults
	inValidate bool // read inside ValidateSimilarity
}

func runKnobcover(pass *ProgramPass) error {
	core := findPackage(pass, "core")
	if core == nil {
		return nil // partial load: nothing to check against
	}
	fields, structPos := configFields(core)
	if fields == nil {
		return nil
	}

	// Spans of core's normalisation/validation functions, so a use
	// inside them can be told apart from a use elsewhere.
	defaultsSpan := funcSpan(core, "withDefaults")
	validateSpan := funcSpan(core, "ValidateSimilarity")
	if !defaultsSpan.valid() {
		pass.Reportf(structPos, "core.Config has no withDefaults normaliser; the config-threading contract needs one")
		return nil
	}
	if !validateSpan.valid() {
		pass.Reportf(structPos, "core.Config has no ValidateSimilarity; the ignored-knob contract needs one")
		return nil
	}

	for _, pkg := range pass.Packages {
		markConfigUses(pkg, fields, defaultsSpan, validateSpan)
	}

	for _, f := range fields {
		if f.jsonName == "-" {
			pass.Reportf(f.pos,
				"Config.%s is excluded from JSON and so from cache identity; justify with //lint:allow knobcover <reason>", f.name)
			continue
		}
		if !f.used {
			pass.Reportf(f.pos,
				"Config.%s (%q) is a dead knob: no non-test code reads it, so user input would be silently ignored", f.name, f.jsonName)
			continue
		}
		if f.numeric && !f.inDefaults && !f.inValidate {
			pass.Reportf(f.pos,
				"Config.%s (%q) is a bare numeric knob referenced in neither withDefaults nor ValidateSimilarity: out-of-range client input reaches the pipeline unchecked", f.name, f.jsonName)
		}
		if (f.jsonName == "candidate_k" || strings.HasPrefix(f.jsonName, "ann_")) && !f.inValidate {
			pass.Reportf(f.pos,
				"Config.%s (%q) is backend-conditional but never checked in ValidateSimilarity: the server's ignored-knob 400 cannot cover it", f.name, f.jsonName)
		}
	}

	if server := findPackage(pass, "server"); server != nil {
		checkServerCacheKey(pass, server)
	}
	return nil
}

// findPackage returns the loaded package with the given package name,
// or nil.
func findPackage(pass *ProgramPass, name string) *Package {
	for _, pkg := range pass.Packages {
		if pkg.Types.Name() == name {
			return pkg
		}
	}
	return nil
}

// configFields reads core.Config's field roster from its struct
// declaration.
func configFields(core *Package) (map[string]*knobField, token.Pos) {
	var fields map[string]*knobField
	var structPos token.Pos
	for _, file := range core.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			spec, ok := n.(*ast.TypeSpec)
			if !ok || spec.Name.Name != "Config" {
				return true
			}
			st, ok := spec.Type.(*ast.StructType)
			if !ok {
				return true
			}
			structPos = spec.Pos()
			fields = make(map[string]*knobField)
			for _, field := range st.Fields.List {
				var tag string
				if field.Tag != nil {
					unquoted := strings.Trim(field.Tag.Value, "`")
					tag = reflect.StructTag(unquoted).Get("json")
				}
				jsonName, _, _ := strings.Cut(tag, ",")
				if jsonName == "" {
					continue // untagged fields are not knobs
				}
				for _, name := range field.Names {
					obj := core.Info.Defs[name]
					_, bare := obj.Type().(*types.Basic)
					numeric := false
					if basic, ok := obj.Type().Underlying().(*types.Basic); ok {
						numeric = bare && basic.Info()&types.IsNumeric != 0
					}
					fields[name.Name] = &knobField{
						name: name.Name, jsonName: jsonName, pos: name.Pos(), numeric: numeric,
					}
				}
			}
			return false
		})
	}
	return fields, structPos
}

// span is a position interval within the shared fileset.
type span struct{ from, to token.Pos }

func (s span) valid() bool               { return s.from.IsValid() }
func (s span) contains(p token.Pos) bool { return s.valid() && s.from <= p && p <= s.to }

// funcSpan locates the body span of the named function in pkg (any
// receiver).
func funcSpan(pkg *Package, name string) span {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Name.Name == name && fn.Body != nil {
				return span{from: fn.Body.Pos(), to: fn.Body.End()}
			}
		}
	}
	return span{}
}

// markConfigUses scans one package for reads of core.Config fields —
// selector expressions and keyed struct literals — and marks the
// matching knobs, noting which land inside withDefaults or
// ValidateSimilarity.
func markConfigUses(pkg *Package, fields map[string]*knobField, defaultsSpan, validateSpan span) {
	mark := func(name string, pos token.Pos) {
		f, ok := fields[name]
		if !ok {
			return
		}
		f.used = true
		if defaultsSpan.contains(pos) {
			f.inDefaults = true
		}
		if validateSpan.contains(pos) {
			f.inValidate = true
		}
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pkg.Info.Selections[n]; ok && sel.Kind() == types.FieldVal && isCoreConfig(sel.Recv()) {
					mark(n.Sel.Name, n.Sel.Pos())
				}
			case *ast.CompositeLit:
				if tv, ok := pkg.Info.Types[n]; ok && isCoreConfig(tv.Type) {
					for _, elt := range n.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							if key, ok := kv.Key.(*ast.Ident); ok {
								mark(key.Name, key.Pos())
							}
						}
					}
				}
			}
			return true
		})
	}
}

// isCoreConfig reports whether t is (a pointer to) the Config struct of
// a package named core.
func isCoreConfig(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Config" && obj.Pkg() != nil && obj.Pkg().Name() == "core"
}

// checkServerCacheKey verifies the server side of the contract: the
// cache key goes through canonicalConfig, canonicalConfig normalises
// through WithDefaults, and every field canonicalConfig overwrites (a
// deliberate cache-identity exclusion) is justified by a directive.
func checkServerCacheKey(pass *ProgramPass, server *Package) {
	canonical := findFuncDecl(server, "canonicalConfig")
	if canonical == nil {
		return // a server without a result cache has no contract to check
	}
	if cacheKey := findFuncDecl(server, "cacheKey"); cacheKey != nil {
		if !referencesFunc(server, cacheKey.Body, "canonicalConfig") {
			pass.Reportf(cacheKey.Pos(),
				"cacheKey does not normalise the config through canonicalConfig: equivalent configs would hash to different cache entries")
		}
	}
	callsWithDefaults := false
	ast.Inspect(canonical.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "WithDefaults" {
				callsWithDefaults = true
			}
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range n.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok {
					if s, ok := server.Info.Selections[sel]; ok && s.Kind() == types.FieldVal && isCoreConfig(s.Recv()) {
						pass.Reportf(n.Pos(),
							"canonicalConfig strips Config.%s from the cache key; justify with //lint:allow knobcover <reason>", sel.Sel.Name)
					}
				}
			}
		}
		return true
	})
	if !callsWithDefaults {
		pass.Reportf(canonical.Pos(),
			"canonicalConfig does not call WithDefaults: an unset knob and its explicit default would hash to different cache entries")
	}
}

// findFuncDecl locates a top-level function by name.
func findFuncDecl(pkg *Package, name string) *ast.FuncDecl {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Name.Name == name && fn.Body != nil {
				return fn
			}
		}
	}
	return nil
}

// referencesFunc reports whether body mentions the package-level
// function with the given name.
func referencesFunc(pkg *Package, body ast.Node, name string) bool {
	target := pkg.Types.Scope().Lookup(name)
	if target == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == target {
			found = true
			return false
		}
		return true
	})
	return found
}
