package analysis_test

import (
	"testing"

	"github.com/htc-align/htc/internal/analysis"
	"github.com/htc-align/htc/internal/analysis/analysistest"
)

func TestParamflow(t *testing.T) {
	analysistest.Run(t, analysis.Paramflow, "paramflow")
}

// TestParamflowANNRegression locks the PR 7 bug class: ANNCandidates
// accepted a workers budget and ran serial because the argument never
// reached the scratch walker.
func TestParamflowANNRegression(t *testing.T) {
	analysistest.Run(t, analysis.Paramflow, "annregression")
}

func TestDetrange(t *testing.T) {
	analysistest.Run(t, analysis.Detrange, "detrange")
}

func TestKnobcover(t *testing.T) {
	analysistest.Run(t, analysis.Knobcover, "knobcover/core", "knobcover/server")
}

func TestMetricdiscipline(t *testing.T) {
	analysistest.Run(t, analysis.Metricdiscipline, "metricdiscipline")
}

func TestShadow(t *testing.T) {
	analysistest.Run(t, analysis.Shadow, "shadow")
}

func TestNilness(t *testing.T) {
	analysistest.Run(t, analysis.Nilness, "nilness")
}
