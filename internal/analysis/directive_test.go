package analysis_test

import (
	"strings"
	"testing"

	"github.com/htc-align/htc/internal/analysis"
)

// TestDirectives drives the suppression grammar end to end: a
// well-formed //lint:allow absorbs its finding, while malformed or
// unknown directives surface as findings of their own. (The fixture
// cannot express these with want comments — the diagnostics land on
// the directive's own line, which is all comment.)
func TestDirectives(t *testing.T) {
	pkgs, err := analysis.LoadDirs("testdata/src", "directives")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{analysis.Detrange})
	if err != nil {
		t.Fatalf("running detrange: %v", err)
	}
	want := []string{
		`malformed //lint:allow`,
		`//lint:allow detrange needs a reason`,
		`names unknown analyzer "nosuchpass"`,
		`floating-point accumulation inside a map range`,
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(want), diags)
	}
	for _, sub := range want {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic contains %q; got:\n%v", sub, diags)
		}
	}
	// The suppressed function's finding must not survive: exactly one
	// detrange diagnostic, in reported().
	detrange := 0
	for _, d := range diags {
		if d.Analyzer == "detrange" {
			detrange++
		}
	}
	if detrange != 1 {
		t.Errorf("got %d detrange diagnostics, want 1 (the directive must absorb the other)", detrange)
	}
}
