package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// Metricdiscipline enforces the observability contract on the
// hand-rolled Prometheus layer: every collector — a sync/atomic counter
// field on a metrics struct — must be (a) incremented somewhere, or it
// forever exports zero and dashboards silently flatline; (b) exposed in
// the Prometheus rendering, or operators cannot see it at all; and
// (c) exported under a name carrying the htc_ prefix, so this service's
// series never collide with another job's in a shared Prometheus.
//
// "Exposed" is recognised structurally: a call whose arguments include
// both a string literal (the metric name/help text) and a Load() of the
// field — the shape of both the counter(...) helper and a direct
// fmt.Fprintf rendering.
var Metricdiscipline = &Analyzer{
	Name: "metricdiscipline",
	Doc: "atomic metrics counters must carry the htc_ prefix and be both " +
		"exposed in the Prometheus rendering and incremented somewhere",
	Run: runMetricdiscipline,
}

// metricNameRE matches a Prometheus series name token inside a string
// literal.
var metricNameRE = regexp.MustCompile(`[a-zA-Z_:][a-zA-Z0-9_:]*`)

func runMetricdiscipline(pass *Pass) error {
	collectors := metricCollectors(pass.Pkg)
	if len(collectors) == 0 {
		return nil
	}
	type usage struct {
		incremented bool
		exposed     bool
		badName     string
		badPos      token.Pos
	}
	uses := make(map[types.Object]*usage, len(collectors))
	for _, obj := range collectors {
		uses[obj] = &usage{}
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Increment: <struct>.<Field>.Add(...) — any Add (or Store,
			// for gauges) on a collector field counts, wherever it
			// happens.
			for _, method := range []string{"Add", "Store"} {
				if obj := atomicMethodTarget(pass.Pkg, call, method); obj != nil {
					if u, tracked := uses[obj]; tracked {
						u.incremented = true
					}
				}
			}
			// Exposure: a call carrying both string literals and
			// <Field>.Load() arguments renders the collector under the
			// literal's metric name.
			var loaded []types.Object
			var literals []string
			for _, arg := range call.Args {
				if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
					if obj := atomicMethodTarget(pass.Pkg, inner, "Load"); obj != nil {
						if _, tracked := uses[obj]; tracked {
							loaded = append(loaded, obj)
						}
					}
				}
				if lit, ok := ast.Unparen(arg).(*ast.BasicLit); ok && lit.Kind == token.STRING {
					if s, err := strconv.Unquote(lit.Value); err == nil {
						literals = append(literals, s)
					}
				}
			}
			if len(loaded) > 0 && len(literals) > 0 {
				name, prefixed := htcMetricName(literals)
				for _, obj := range loaded {
					u := uses[obj]
					u.exposed = true
					if !prefixed && u.badName == "" {
						u.badName = name
						u.badPos = call.Pos()
					}
				}
			}
			return true
		})
	}

	for _, obj := range collectors {
		u := uses[obj]
		switch {
		case !u.incremented && !u.exposed:
			pass.Reportf(obj.Pos(), "collector %s is neither incremented nor exposed: dead metric", obj.Name())
		case !u.incremented:
			pass.Reportf(obj.Pos(), "collector %s is exposed but never incremented: it will flatline at zero forever", obj.Name())
		case !u.exposed:
			pass.Reportf(obj.Pos(), "collector %s is incremented but never exposed in the Prometheus rendering", obj.Name())
		case u.badName != "":
			pass.Reportf(u.badPos, "collector %s is exposed under %q: metric names must carry the htc_ prefix", obj.Name(), u.badName)
		}
	}
	return nil
}

// metricCollectors finds every struct field of a sync/atomic integer
// type in the package — the collector roster, in declaration order.
func metricCollectors(pkg *Package) []types.Object {
	var collectors []types.Object
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					// Only exported fields are collectors by the
					// project's Metrics-struct convention; unexported
					// atomics are plain concurrency state (job ids,
					// queue sequence numbers).
					if !name.IsExported() {
						continue
					}
					obj := pkg.Info.Defs[name]
					if obj != nil && isAtomicCounter(obj.Type()) {
						collectors = append(collectors, obj)
					}
				}
			}
			return true
		})
	}
	return collectors
}

// isAtomicCounter reports whether t is one of sync/atomic's integer
// boxes.
func isAtomicCounter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch obj.Name() {
	case "Int32", "Int64", "Uint32", "Uint64":
		return true
	}
	return false
}

// atomicMethodTarget matches a call of the form <expr>.<Field>.<method>()
// and returns the collector field object, or nil.
func atomicMethodTarget(pkg *Package, call *ast.CallExpr, method string) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if fieldSel, ok := pkg.Info.Selections[inner]; ok && fieldSel.Kind() == types.FieldVal {
		return fieldSel.Obj()
	}
	return nil
}

// htcMetricName extracts the metric name the literals carry: the first
// identifier-shaped token starting with "htc_" wins; with none, the
// first plausible metric-name token is reported as the offender.
func htcMetricName(literals []string) (name string, prefixed bool) {
	fallback := ""
	for _, lit := range literals {
		for _, tok := range strings.Fields(lit) {
			m := metricNameRE.FindString(tok)
			if m == "" || m != tok {
				continue
			}
			if strings.HasPrefix(m, "htc_") {
				return m, true
			}
			if fallback == "" && strings.Contains(m, "_") {
				fallback = m
			}
		}
	}
	if fallback == "" && len(literals) > 0 {
		fallback = literals[0]
	}
	return fallback, false
}
