package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shadow is the project's stand-in for x/tools' shadow vet pass (the
// offline build cannot fetch that module). It reports the dangerous
// subset of variable shadowing: a `:=` or `var` declaration inside a
// nested scope reusing the name of a function-level variable whose
// outer value is then READ after the inner scope ends, before anything
// overwrites it. That is the `if x, err := f(); ...` class of bug —
// code updates the inner copy believing it updates the outer one, then
// consumes the stale outer value.
//
// Two deliberate exclusions keep the idiomatic cases legal: function
// and closure parameters never shadow (a parameter is a new binding at
// an explicit call boundary), and an outer variable whose first use
// after the scope is a plain reassignment is not reported (the stale
// value is dead, so nothing can read it).
var Shadow = &Analyzer{
	Name: "shadow",
	Doc: "a := or var declaration must not shadow a function-level variable " +
		"whose stale value is read after the inner scope ends",
	Run: runShadow,
}

func runShadow(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// First and subsequent uses of every object, split into reads
		// and plain-assignment writes, collected once per file.
		type use struct {
			pos   token.Pos
			write bool
		}
		usesOf := make(map[types.Object][]use)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					return true // compound assignment reads; fall through
				}
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							usesOf[obj] = append(usesOf[obj], use{id.Pos(), true})
						}
						continue
					}
					// A compound target (m[k] = v, s.f = v) reads the
					// variables inside it.
					ast.Inspect(lhs, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							if obj := info.Uses[id]; obj != nil {
								usesOf[obj] = append(usesOf[obj], use{id.Pos(), false})
							}
						}
						return true
					})
				}
				for _, rhs := range n.Rhs {
					ast.Inspect(rhs, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							if obj := info.Uses[id]; obj != nil {
								usesOf[obj] = append(usesOf[obj], use{id.Pos(), false})
							}
						}
						return true
					})
				}
				return false
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil {
					usesOf[obj] = append(usesOf[obj], use{n.Pos(), false})
				}
			}
			return true
		})

		report := func(id *ast.Ident) {
			inner, ok := info.Defs[id].(*types.Var)
			if !ok || id.Name == "_" {
				return
			}
			innerScope := inner.Parent()
			if innerScope == nil {
				return
			}
			outer := shadowedVar(pass.Pkg, innerScope, id.Name, id.Pos())
			if outer == nil || outer == inner {
				return
			}
			// Find the outer variable's first use after the inner scope
			// closes; only a READ consumes the potentially-stale value.
			var first *use
			for i := range usesOf[outer] {
				u := &usesOf[outer][i]
				if u.pos <= innerScope.End() {
					continue
				}
				if first == nil || u.pos < first.pos {
					first = u
				}
			}
			if first != nil && !first.write {
				pass.Reportf(id.Pos(),
					"declaration of %q shadows the variable declared at %s, whose stale value is read after this scope ends",
					id.Name, pass.Pkg.Fset.Position(outer.Pos()))
			}
		}

		// Only := and var declarations shadow dangerously; function and
		// closure parameters are new bindings by design and skipped.
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							report(id)
						}
					}
				}
			case *ast.RangeStmt:
				if n.Tok == token.DEFINE {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok {
							report(id)
						}
					}
				}
			case *ast.ValueSpec:
				for _, id := range n.Names {
					report(id)
				}
			}
			return true
		})
	}
	return nil
}

// shadowedVar looks the name up in the scopes enclosing the
// declaration's own scope and returns the function-level variable it
// shadows, or nil. Package-level and universe names are skipped —
// shadowing those is routine (err, min, max) and x/tools' pass skips
// them too.
func shadowedVar(pkg *Package, innerScope *types.Scope, name string, pos token.Pos) *types.Var {
	parent := innerScope.Parent()
	if parent == nil {
		return nil
	}
	scope, obj := parent.LookupParent(name, pos)
	if scope == nil || obj == nil {
		return nil
	}
	if scope == types.Universe || scope == pkg.Types.Scope() {
		return nil
	}
	outer, ok := obj.(*types.Var)
	if !ok || outer.IsField() {
		return nil
	}
	return outer
}
