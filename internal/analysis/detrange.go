package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detrange enforces the bit-identity contract against Go's randomized
// map iteration order. Ranging over a map is fine when the body is
// order-insensitive (counting, building another map, writing each key's
// own slot); it is a determinism bug the moment the body
//
//   - accumulates floating-point values (float addition does not
//     commute bit-for-bit, so the sum depends on visit order),
//   - appends to a slice declared outside the loop (the slice's element
//     order becomes random) without the slice being sorted afterwards
//     in the same function, or
//   - writes output directly (fmt printing, Write/WriteString methods,
//     hash updates) — bytes leave in random order.
//
// The sanctioned pattern is collect-keys → sort → range the sorted
// slice; an append whose result is visibly sorted later in the same
// function is recognised as exactly that idiom and not reported.
var Detrange = &Analyzer{
	Name: "detrange",
	Doc: "map iteration must not feed float accumulation, unsorted appends " +
		"or direct output: iteration order is randomized and would break " +
		"the pipeline's bit-identical-results guarantee",
	Run: runDetrange,
}

func runDetrange(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		// Walk function by function so the append-then-sort exemption
		// can see the statements following each range loop.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkMapRanges finds every map range in one function body and vets
// its loop body for order-sensitive sinks.
func checkMapRanges(pass *Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if rng.Key == nil && rng.Value == nil {
			// `for range m` only counts iterations; the body cannot
			// observe the order.
			return true
		}
		reportSinks(pass, rng, fnBody)
		return true
	})
}

// reportSinks walks one map-range body for order-sensitive operations.
func reportSinks(pass *Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	info := pass.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			switch stmt.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range stmt.Lhs {
					if isOrderSensitiveAccum(info, lhs) {
						pass.Reportf(stmt.Pos(),
							"%s accumulation inside a map range: iteration order changes the result bits; iterate sorted keys instead",
							accumKind(info, lhs))
					}
				}
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range stmt.Rhs {
					if i >= len(stmt.Lhs) {
						break
					}
					checkAppend(pass, rng, fnBody, stmt.Lhs[i], rhs)
					if stmt.Tok == token.ASSIGN && isSelfAccum(info, stmt.Lhs[i], rhs) {
						pass.Reportf(stmt.Pos(),
							"%s accumulation inside a map range: iteration order changes the result bits; iterate sorted keys instead",
							accumKind(info, stmt.Lhs[i]))
					}
				}
			}
		case *ast.CallExpr:
			if name, isOutput := outputCall(info, stmt); isOutput {
				pass.Reportf(stmt.Pos(),
					"%s inside a map range writes output in randomized order; iterate sorted keys instead", name)
			}
		}
		return true
	})
}

// isOrderSensitiveAccum reports whether compound-assigning into lhs is
// order-sensitive: float and complex addition/multiplication do not
// commute bit-for-bit, and string += concatenates in visit order.
// Integer accumulation commutes exactly and passes.
func isOrderSensitiveAccum(info *types.Info, lhs ast.Expr) bool {
	tv, ok := info.Types[lhs]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

func accumKind(info *types.Info, lhs ast.Expr) string {
	if tv, ok := info.Types[lhs]; ok {
		if basic, ok := tv.Type.Underlying().(*types.Basic); ok {
			switch {
			case basic.Info()&types.IsString != 0:
				return "string"
			case basic.Info()&types.IsComplex != 0:
				return "complex"
			}
		}
	}
	return "floating-point"
}

// isSelfAccum matches the spelled-out form `x = x + v` (and -, *, /)
// of an order-sensitive accumulation.
func isSelfAccum(info *types.Info, lhs ast.Expr, rhs ast.Expr) bool {
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	if !isOrderSensitiveAccum(info, lhs) {
		return false
	}
	lobj := exprObject(info, lhs)
	return lobj != nil && (exprObject(info, bin.X) == lobj || exprObject(info, bin.Y) == lobj)
}

// checkAppend flags `s = append(s, ...)` where s outlives the loop and
// is never sorted afterwards in the same function.
func checkAppend(pass *Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt, lhs ast.Expr, rhs ast.Expr) {
	info := pass.Pkg.Info
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return
	}
	if obj, isBuiltin := info.Uses[fun].(*types.Builtin); !isBuiltin || obj.Name() != "append" {
		return
	}
	obj := exprObject(info, lhs)
	if obj == nil {
		return
	}
	// A slice declared inside the loop body dies each iteration; its
	// order cannot leak.
	if rng.Body.Pos() <= obj.Pos() && obj.Pos() <= rng.Body.End() {
		return
	}
	if sortedAfter(info, fnBody, rng, obj) {
		return
	}
	pass.Reportf(call.Pos(),
		"append to %q inside a map range leaves its elements in randomized order; sort it afterwards or iterate sorted keys", obj.Name())
}

// sortedAfter reports whether obj is passed to a sort call after the
// range loop within the same function — the collect-then-sort idiom.
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if exprObject(info, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall matches calls into the sort and slices packages.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[pkgID].(*types.PkgName)
	if !ok {
		return false
	}
	switch pkgName.Imported().Path() {
	case "sort", "slices":
		return true
	}
	return false
}

// outputCall matches direct output from a loop body: fmt's Print family
// and Write/WriteString/WriteByte/WriteRune methods (io.Writer,
// strings.Builder, hash.Hash — anything where bytes leave in call
// order).
func outputCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkgID, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := info.Uses[pkgID].(*types.PkgName); ok {
			if pkgName.Imported().Path() == "fmt" {
				switch sel.Sel.Name {
				case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
					return "fmt." + sel.Sel.Name, true
				}
			}
			return "", false
		}
	}
	// Method form: anything that takes bytes in call order.
	if selection, ok := info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
		switch sel.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return sel.Sel.Name, true
		}
	}
	return "", false
}

// exprObject resolves an expression to the object it names, seeing
// through parens: plain identifiers and field selectors.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if selection, ok := info.Selections[e]; ok {
			return selection.Obj()
		}
		return info.Uses[e.Sel]
	}
	return nil
}
