package analysis_test

import (
	"testing"

	"github.com/htc-align/htc/internal/analysis"
)

// TestLoadRepoPackage drives the production loader — `go list -export`
// plus a source type-check — against a real repo package, the same path
// `htc-lint ./...` takes.
func TestLoadRepoPackage(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./internal/graph")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Types == nil || pkg.Types.Name() != "graph" {
		t.Fatalf("unexpected package: %+v", pkg.Types)
	}
	if len(pkg.Files) == 0 || pkg.Info == nil {
		t.Fatalf("package loaded without syntax or type info")
	}
}
