package analysis

import (
	"go/ast"
	"go/types"
)

// Paramflow enforces the worker-budget and cancellation threading
// contracts: a function that declares a `workers int` parameter or a
// `context.Context` parameter must read it — normally to pass it down
// to internal/par, a dense kernel, or a child call. A parameter that is
// declared but never used means a parallel stage silently running at
// the wrong width (PR 7's ANNCandidates took a workers argument and ran
// serial) or a cancellation that silently never propagates.
//
// Discarding on purpose is spelled `_` (for interface conformance the
// name cannot always change, so `//lint:allow paramflow <reason>` on
// the declaration works too).
var Paramflow = &Analyzer{
	Name: "paramflow",
	Doc: "workers/context parameters must be used or explicitly discarded: " +
		"a dropped `workers int` runs a parallel stage at the wrong width, " +
		"a dropped context.Context never observes cancellation",
	Run: runParamflow,
}

func runParamflow(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftype, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil || ftype.Params == nil {
				return true
			}
			for _, field := range ftype.Params.List {
				for _, name := range field.Names {
					if name.Name == "_" {
						continue
					}
					kind, ok := budgetParam(pass, name)
					if !ok {
						continue
					}
					if !usesObject(pass, body, pass.Pkg.Info.Defs[name]) {
						pass.Reportf(name.Pos(),
							"%s parameter %q is declared but never used: thread it down or discard it explicitly as _",
							kind, name.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// budgetParam classifies a parameter ident as one of the contract's
// tracked kinds: a worker budget (`workers int`, by name and type) or a
// cancellation context (any parameter of type context.Context, whatever
// its name).
func budgetParam(pass *Pass, name *ast.Ident) (kind string, ok bool) {
	obj := pass.Pkg.Info.Defs[name]
	if obj == nil {
		return "", false
	}
	t := obj.Type()
	if name.Name == "workers" {
		if basic, isBasic := t.(*types.Basic); isBasic && basic.Kind() == types.Int {
			return "worker-budget", true
		}
	}
	if named, isNamed := t.(*types.Named); isNamed {
		tn := named.Obj()
		if tn.Name() == "Context" && tn.Pkg() != nil && tn.Pkg().Path() == "context" {
			return "context", true
		}
	}
	return "", false
}

// usesObject reports whether any identifier inside body resolves to obj.
func usesObject(pass *Pass, body ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
