// Package metricdiscipline exercises the observability contract: every
// exported atomic counter field must be incremented, exposed in the
// Prometheus rendering, and exported under an htc_-prefixed name.
package metricdiscipline

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics is the fixture's collector roster.
type Metrics struct {
	Aligns   atomic.Int64
	Dead     atomic.Int64 // want `collector Dead is neither incremented nor exposed`
	Flatline atomic.Int64 // want `collector Flatline is exposed but never incremented`
	Hidden   atomic.Int64 // want `collector Hidden is incremented but never exposed`
	Renamed  atomic.Int64
	// Refines and RefineIters are the clean refine-counter pair:
	// incremented by the handler and exposed under htc_refine_* names.
	Refines     atomic.Int64
	RefineIters atomic.Int64

	// seq is unexported concurrency state, not a collector.
	seq atomic.Int64
}

func (m *Metrics) observe() {
	m.Aligns.Add(1)
	m.Hidden.Add(1)
	m.Renamed.Add(1)
	m.Refines.Add(1)
	m.RefineIters.Add(5)
	m.seq.Add(1)
}

func render(w io.Writer, m *Metrics) {
	counter(w, "htc_aligns_total", m.Aligns.Load())
	counter(w, "htc_flatline_total", m.Flatline.Load())
	counter(w, "htc_refine_runs_total", m.Refines.Load())
	counter(w, "htc_refine_iters_total", m.RefineIters.Load())
	fmt.Fprintf(w, "# HELP aligns_renamed_total renders\naligns_renamed_total %d\n", m.Renamed.Load()) // want `exposed under "aligns_renamed_total"`
}

func counter(w io.Writer, name string, v int64) {
	fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
}
