// Package paramflow exercises the worker-budget and context threading
// checks: a `workers int` or context.Context parameter must be read or
// explicitly discarded.
package paramflow

import "context"

// used threads its budget down; nothing to report.
func used(workers int) int {
	return workers * 2
}

func droppedWorkers(workers int) int { // want `worker-budget parameter "workers" is declared but never used`
	return 0
}

// discarded spells the discard explicitly; `_` is never tracked.
func discarded(_ int, k int) int {
	return k
}

func usedCtx(ctx context.Context) error {
	return ctx.Err()
}

func droppedCtx(ctx context.Context, k int) int { // want `context parameter "ctx" is declared but never used`
	return k
}

// closures are held to the same contract as declared functions.
func closure() func(int) int {
	return func(workers int) int { // want `worker-budget parameter "workers" is declared but never used`
		return 1
	}
}

// notBudget is untracked: the contract keys on `workers int` by name
// AND type.
func notBudget(workers string) string {
	return ""
}

// conformance keeps a fixed signature on purpose; the directive
// documents the exception and suppresses the finding.
//
//lint:allow paramflow interface conformance pins the signature; this stub never parallelises
func conformance(workers int) int {
	return 7
}
