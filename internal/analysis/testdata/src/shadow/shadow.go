// Package shadow exercises the stale-read shadowing check: an inner :=
// or var declaration reusing a function-level name is a finding only
// when the outer variable's stale value is read after the scope ends.
package shadow

var global = 1

func stale() int {
	v := 1
	if global > 0 {
		v := 2 // want `declaration of "v" shadows the variable declared at`
		_ = v
	}
	return v
}

// overwritten: the outer value is dead after the scope (first use is a
// plain reassignment), so nothing stale can be read.
func overwritten() int {
	v := 1
	if global > 0 {
		v := 2
		_ = v
	}
	v = 3
	return v
}

func rangeShadow(xs []int) int {
	i := 7
	for i := range xs { // want `declaration of "i" shadows the variable declared at`
		_ = i
	}
	return i
}

func varShadow() string {
	s := "outer"
	{
		var s = "inner" // want `declaration of "s" shadows the variable declared at`
		_ = s
	}
	return s
}

// paramOK: parameters are new bindings at an explicit call boundary,
// never shadowing.
func paramOK() int {
	n := 1
	double := func(n int) int { return n * 2 }
	return double(n) + n
}

// globalOK: package-level names (like err, min, max in real code) are
// routinely shadowed; the pass skips them.
func globalOK() int {
	global := 2
	return global
}

// innerOnly: the shadowed outer variable is never touched again, so the
// inner declaration is harmless.
func innerOnly() int {
	v := 1
	_ = v
	if global > 0 {
		v := 2
		return v
	}
	return 0
}
