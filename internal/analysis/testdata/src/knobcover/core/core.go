// Package core is the knobcover fixture's pipeline side: a Config with
// one field per contract clause — defaulted, validated, dead,
// unvalidated, backend-conditional, and two JSON-hidden fields (one
// justified, one not).
package core

// Observer receives progress callbacks.
type Observer func(stage string)

// Config mirrors the real pipeline config shape.
type Config struct {
	K          int     `json:"k"`
	Epochs     int     `json:"epochs"`
	CandidateK int     `json:"candidate_k"`
	AnnBits    int     `json:"ann_bits"` // want `backend-conditional but never checked in ValidateSimilarity`
	Loose      float64 `json:"loose"`    // want `referenced in neither withDefaults nor ValidateSimilarity`
	// Precision models the unvalidated-precision regression: a bare
	// numeric tier knob the pipeline reads but neither defaults nor
	// validates, so out-of-range client input would reach the kernels.
	Precision int `json:"precision"` // want `referenced in neither withDefaults nor ValidateSimilarity`
	// RefineIters is the clean refine knob: read by the pipeline and
	// range-checked in ValidateSimilarity.
	RefineIters int `json:"refine_iters"`
	// RefineTokenK models the unvalidated-refine regression: the pipeline
	// consumes the budget but nothing defaults or validates it, so a
	// negative budget from a client would reach the refinement loop.
	RefineTokenK int    `json:"refine_token_k"` // want `referenced in neither withDefaults nor ValidateSimilarity`
	Dead         int    `json:"dead"`           // want `dead knob`
	Name         string `json:"name"`
	Hidden       int    `json:"-"` // want `excluded from JSON and so from cache identity`
	//lint:allow knobcover progress callbacks observe the run and never influence the result
	Progress Observer `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 13
	}
	if c.Epochs <= 0 {
		c.Epochs = 40
	}
	if c.AnnBits <= 0 {
		c.AnnBits = 16
	}
	return c
}

// WithDefaults is the exported normaliser callers outside core use.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// ValidateSimilarity rejects knobs the selected backend ignores.
func ValidateSimilarity(c Config) error {
	if c.CandidateK < 0 {
		return errNegative
	}
	if c.RefineIters < 0 {
		return errNegative
	}
	return nil
}

type configError string

func (e configError) Error() string { return string(e) }

const errNegative = configError("candidate_k must be non-negative")

// Align consumes the knobs the way the real pipeline does.
func Align(c Config) float64 {
	c = c.withDefaults()
	v := c.Loose * float64(c.K)
	v += float64(c.Precision)
	for i := 0; i < c.RefineIters; i++ {
		v += float64(c.RefineTokenK)
	}
	if c.Name != "" {
		v++
	}
	for e := 0; e < c.Epochs; e++ {
		v += 1
	}
	return v
}
