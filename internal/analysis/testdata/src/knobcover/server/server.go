// Package server is the knobcover fixture's cache side: cacheKey must
// normalise through canonicalConfig, canonicalConfig must normalise
// through WithDefaults, and every field it strips from the cache
// identity needs a //lint:allow justification.
package server

import (
	"fmt"

	"knobcover/core"
)

// cacheKey hashes the canonical form of the request config.
func cacheKey(cfg core.Config) string {
	return fmt.Sprint(canonicalConfig(cfg))
}

// canonicalConfig normalises a config for hashing.
func canonicalConfig(cfg core.Config) core.Config {
	cfg = cfg.WithDefaults()
	cfg.Name = "" // want `strips Config.Name from the cache key`
	//lint:allow knobcover epochs beyond convergence do not change the fixture's result
	cfg.Epochs = 0
	cfg.RefineTokenK = 0 // want `strips Config.RefineTokenK from the cache key`
	return cfg
}
