// Package detrange exercises the determinism checks on map iteration:
// order-sensitive accumulation, unsorted appends and direct output
// inside a map range are findings; the collect-then-sort idiom and
// order-insensitive bodies are not.
package detrange

import (
	"fmt"
	"sort"
	"strings"
)

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation inside a map range`
	}
	return sum
}

// intAccumOK: integer addition commutes exactly, so order cannot leak.
func intAccumOK(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// selfAccum is the spelled-out form of the same bug.
func selfAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `floating-point accumulation inside a map range`
	}
	return total
}

func stringAccum(m map[string]string) string {
	out := ""
	for _, v := range m {
		out += v // want `string accumulation inside a map range`
	}
	return out
}

func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside a map range`
	}
	return keys
}

// sortedAppend is the sanctioned collect-then-sort idiom.
func sortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// loopLocalAppend: a slice born inside the loop dies each iteration.
func loopLocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

func output(m map[string]int, w *strings.Builder) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt.Println inside a map range writes output in randomized order`
		w.WriteString(k)  // want `WriteString inside a map range writes output in randomized order`
		_ = v
	}
}

// countOnly: a keyless range cannot observe iteration order.
func countOnly(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// allowed demonstrates a documented exception: the directive suppresses
// the finding on its own line.
func allowed(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v //lint:allow detrange this report tolerates last-bit drift by design
	}
	return sum
}
