// Package nilness exercises the guaranteed-panic check: dereferencing a
// variable inside a branch entered only when it is nil.
package nilness

type node struct {
	X    int
	next *node
}

func (n *node) count() int {
	if n == nil {
		return 0
	}
	return 1 + n.next.count()
}

func field(p *node) int {
	if p == nil {
		return p.X // want `field access p.X: p is nil here, this panics`
	}
	return p.X
}

func deref(p *int) int {
	if p != nil {
		return *p
	} else {
		return *p // want `dereference of p: it is nil here, this panics`
	}
}

func index(s []float64) float64 {
	if s == nil {
		return s[0] // want `index of s: it is a nil slice here, this panics`
	}
	return s[0]
}

func call(f func() int) int {
	if f == nil {
		return f() // want `call of f: it is a nil function here, this panics`
	}
	return f()
}

// reassigned: writing the variable inside the branch invalidates the
// nil fact, so the whole branch is skipped.
func reassigned(p *node) int {
	if p == nil {
		p = &node{}
		return p.X
	}
	return p.X
}

// methodOK: calling a method with a nil-tolerant pointer receiver is
// legal on a nil pointer.
func methodOK(p *node) int {
	if p == nil {
		return p.count()
	}
	return p.count()
}

// lenOK: len of a nil slice is zero, not a panic.
func lenOK(s []int) int {
	if s == nil {
		return len(s)
	}
	return len(s)
}
