// Package directives exercises the //lint:allow grammar: a well-formed
// directive suppresses its line, while a directive missing its
// analyzer, missing its reason, or naming an unknown analyzer is itself
// a finding.
package directives

//lint:allow
var missingAnalyzer = 1

//lint:allow detrange
var missingReason = 2

//lint:allow nosuchpass because the roster does not know it
var unknownAnalyzer = 3

// suppressed shows a well-formed directive absorbing a real finding.
func suppressed(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v //lint:allow detrange the fixture documents deliberate drift
	}
	return sum
}

// reported is the control: the same pattern without a directive must
// still be a finding.
func reported(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	return sum
}
