// Package annregression reproduces the PR 7 ANNCandidates bug in
// miniature: the entry point accepted a workers budget and silently ran
// the scan serial because the argument was never threaded into the
// scratch walker. Paramflow must flag exactly this shape.
package annregression

type matrix struct {
	rows, cols int
	data       []float64
}

type params struct {
	Tables int
	Bits   int
}

type candidates struct {
	K     int
	Lists [][]int32
}

type annScratch struct {
	p params
}

func (s *annScratch) topK(hs, ht *matrix, k, workers int) *candidates {
	if workers <= 0 {
		workers = 1
	}
	return &candidates{K: k, Lists: make([][]int32, hs.rows)}
}

// ANNCandidates mirrors the regression: the budget parameter exists so
// callers believe the scan parallelises, but the body passes a literal
// width to topK and never reads workers.
func ANNCandidates(hs, ht *matrix, k, workers int, p params) *candidates { // want `worker-budget parameter "workers" is declared but never used`
	s := &annScratch{p: p}
	return s.topK(hs, ht, k, 0)
}

// ANNCandidatesFixed is the corrected form: the budget reaches the
// walker.
func ANNCandidatesFixed(hs, ht *matrix, k, workers int, p params) *candidates {
	s := &annScratch{p: p}
	return s.topK(hs, ht, k, workers)
}
