// Package analysis hosts htc-lint: project-specific static analyzers
// that turn this repository's determinism, worker-budget and
// config-threading conventions into machine-checked contracts.
//
// The reproduction's core guarantee — bit-identical results at any
// worker count, across the dense/topk/ann backends — rests on rules no
// compiler enforces: a `workers int` parameter must actually reach the
// parallel stage it budgets, map iteration must never feed
// order-sensitive accumulation, every `core.Config` knob must be
// validated and cache-keyed, and every metrics counter must be both
// exposed and incremented. Each rule here has shipped at least one real
// bug (PR 7's ANNCandidates ran serial because its workers argument was
// silently dropped), so they are checked by machine, not review.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis
// vocabulary — Analyzer, Pass, Diagnostic, analysistest-style fixtures
// with `// want` comments — but is built on the standard library alone:
// the build environment is offline, so the x/tools module cannot be
// fetched. If that dependency ever becomes available, each analyzer's
// Run function ports to a real go/analysis.Analyzer mechanically.
//
// Deliberate exceptions are annotated in the source under review:
//
//	//lint:allow <analyzer> <reason>
//
// A directive suppresses that analyzer's diagnostics on its own line,
// or — when it is a standalone comment (or part of a doc-comment
// block) — on the first code line after the block. The reason is
// mandatory; a directive without one, or one naming an unknown
// analyzer, is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker. Exactly one of Run
// (per-package) and RunProgram (whole-program, for cross-package
// contracts like knobcover) is set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and directives.
	Name string
	// Doc is the one-paragraph contract description shown by -list.
	Doc string
	// Run, when set, checks one package at a time.
	Run func(*Pass) error
	// RunProgram, when set, checks the whole loaded package set at
	// once; analyzers whose contract spans packages use this form.
	RunProgram func(*ProgramPass) error
}

// A Package is one loaded, parsed and type-checked package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory its files were read from.
	Dir string
	// Fset maps positions; it is shared by every package of one load.
	Fset *token.FileSet
	// Files are the parsed sources, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's fact tables (Defs, Uses,
	// Selections, Scopes, Types).
	Info *types.Info
	// src maps a file name to its raw source lines, 0-indexed; the
	// directive scanner uses it to tell standalone comment lines from
	// trailing ones.
	src map[string][]string
}

// Sources returns the package's raw source lines per file name —
// analysistest scans them for `// want` expectations.
func (p *Package) Sources() map[string][]string { return p.src }

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one package through one per-package analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A ProgramPass carries the whole loaded package set through one
// whole-program analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Packages []*Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over the loaded packages and returns the
// surviving diagnostics — findings suppressed by a well-formed
// //lint:allow directive are dropped, malformed or unknown directives
// are reported — sorted by position. An analyzer returning an error
// aborts the run: analyzer bugs must not pass for clean code.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		switch {
		case a.Run != nil:
			for _, pkg := range pkgs {
				if err := a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags}); err != nil {
					return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
				}
			}
		case a.RunProgram != nil:
			if len(pkgs) == 0 {
				continue
			}
			pass := &ProgramPass{Analyzer: a, Fset: pkgs[0].Fset, Packages: pkgs, diags: &diags}
			if err := a.RunProgram(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		default:
			return nil, fmt.Errorf("analyzer %s has no Run function", a.Name)
		}
	}
	dirs, dirDiags := collectDirectives(pkgs, analyzers)
	kept := dirDiags
	for _, d := range diags {
		if !dirs.suppresses(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}
