package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// A directive is one parsed //lint:allow comment. It suppresses the
// named analyzer on the line it shares with code, or — for a standalone
// comment (including a line inside a doc-comment block) — on the first
// code line following its comment block.
type directive struct {
	file     string
	line     int // the comment's own line
	applies  int // the code line the directive covers
	analyzer string
}

const directivePrefix = "//lint:allow"

// directiveIndex answers "is this diagnostic allowed?" lookups.
type directiveIndex map[string]map[int]map[string]bool // file → line → analyzer

func (ix directiveIndex) suppresses(d Diagnostic) bool {
	return ix[d.Pos.Filename][d.Pos.Line][d.Analyzer]
}

func (ix directiveIndex) add(file string, line int, analyzer string) {
	byLine, ok := ix[file]
	if !ok {
		byLine = make(map[int]map[string]bool)
		ix[file] = byLine
	}
	byAnalyzer, ok := byLine[line]
	if !ok {
		byAnalyzer = make(map[string]bool)
		byLine[line] = byAnalyzer
	}
	byAnalyzer[analyzer] = true
}

// collectDirectives scans every comment of every package for
// //lint:allow directives, building the suppression index. Malformed
// directives (no reason) and directives naming an analyzer outside the
// running roster are reported as diagnostics themselves: a typo in a
// directive must not silently re-enable a finding.
func collectDirectives(pkgs []*Package, analyzers []*Analyzer) (directiveIndex, []Diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	ix := make(directiveIndex)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, group := range f.Comments {
				for _, c := range group.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, directivePrefix)
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						diags = append(diags, Diagnostic{Pos: pos, Analyzer: "directive",
							Message: "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\""})
						continue
					case len(fields) == 1:
						diags = append(diags, Diagnostic{Pos: pos, Analyzer: "directive",
							Message: "//lint:allow " + fields[0] + " needs a reason: deliberate exceptions are documented, not just waved through"})
						continue
					case !known[fields[0]]:
						diags = append(diags, Diagnostic{Pos: pos, Analyzer: "directive",
							Message: fmt.Sprintf("//lint:allow names unknown analyzer %q", fields[0])})
						continue
					}
					ix.add(pos.Filename, pos.Line, fields[0])
					if standalone(pkg, pos) {
						// A standalone comment (or doc-comment line)
						// covers the first code line after its block.
						end := pkg.Fset.Position(group.End())
						ix.add(pos.Filename, end.Line+1, fields[0])
					}
				}
			}
		}
	}
	return ix, diags
}

// standalone reports whether the comment starting at pos has nothing but
// whitespace before it on its line — i.e. it is not trailing code.
func standalone(pkg *Package, pos token.Position) bool {
	lines := pkg.src[pos.Filename]
	if pos.Line-1 >= len(lines) {
		return false
	}
	return strings.TrimSpace(lines[pos.Line-1][:pos.Column-1]) == ""
}
