package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nilness is the project's stand-in for x/tools' SSA-based nilness vet
// pass (the offline build cannot fetch that module). It proves the
// guaranteed-panic subset without SSA: inside a branch taken only when
// a variable is known nil — `if x == nil { ... }`, or the else arm of
// `if x != nil` — dereferencing that variable must panic. Reported
// dereferences are pointer field selection, pointer indirection,
// slice indexing and calling the variable as a function. Reads that are
// legal on nil values (map indexing, len/cap, method calls with
// nil-tolerant receivers, comparisons) stay legal.
//
// The branch is skipped as soon as it reassigns or takes the address of
// the variable: after that the nil fact no longer holds.
var Nilness = &Analyzer{
	Name: "nilness",
	Doc: "a branch entered only when a variable is nil must not dereference " +
		"it: the dereference is a guaranteed panic",
	Run: runNilness,
}

func runNilness(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ifStmt, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			obj, eq := nilComparison(info, ifStmt.Cond)
			if obj == nil {
				return true
			}
			if eq {
				checkNilBranch(pass, ifStmt.Body, obj)
			} else if els, ok := ifStmt.Else.(*ast.BlockStmt); ok {
				checkNilBranch(pass, els, obj)
			}
			return true
		})
	}
	return nil
}

// nilComparison decomposes `x == nil` / `x != nil` (either operand
// order) into the compared variable and the comparison's polarity.
// Only nil-able, dereferenceable types are interesting.
func nilComparison(info *types.Info, cond ast.Expr) (obj types.Object, eq bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNilIdent(info, y) {
		// x <op> nil
	} else if isNilIdent(info, x) {
		x = y
	} else {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil, false
	}
	switch v.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Signature:
		return v, bin.Op == token.EQL
	}
	return nil, false
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// checkNilBranch reports guaranteed dereferences of obj inside a branch
// where obj is known nil. Any reassignment or address-taking of obj in
// the branch invalidates the fact, so the whole branch is skipped.
func checkNilBranch(pass *Pass, branch *ast.BlockStmt, obj types.Object) {
	info := pass.Pkg.Info
	if reassigns(info, branch, obj) {
		return
	}
	ast.Inspect(branch, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The closure may run after obj was reassigned elsewhere.
			return false
		case *ast.SelectorExpr:
			if refersTo(info, n.X, obj) {
				// Field selection through a nil pointer panics; method
				// values/calls may be legal on nil receivers.
				if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					pass.Reportf(n.Pos(), "field access %s.%s: %s is nil here, this panics",
						obj.Name(), n.Sel.Name, obj.Name())
				}
			}
		case *ast.StarExpr:
			if refersTo(info, n.X, obj) {
				pass.Reportf(n.Pos(), "dereference of %s: it is nil here, this panics", obj.Name())
			}
		case *ast.IndexExpr:
			if refersTo(info, n.X, obj) {
				if _, isSlice := typeOf(info, n.X).Underlying().(*types.Slice); isSlice {
					pass.Reportf(n.Pos(), "index of %s: it is a nil slice here, this panics", obj.Name())
				}
			}
		case *ast.CallExpr:
			if refersTo(info, n.Fun, obj) {
				pass.Reportf(n.Pos(), "call of %s: it is a nil function here, this panics", obj.Name())
			}
		}
		return true
	})
}

// reassigns reports whether the branch writes obj or takes its address.
func reassigns(info *types.Info, branch ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(branch, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if refersTo(info, lhs, obj) {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && refersTo(info, n.X, obj) {
				found = true
			}
		case *ast.RangeStmt:
			if n.Key != nil && refersTo(info, n.Key, obj) || n.Value != nil && refersTo(info, n.Value, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

func refersTo(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}
