package analysis

// All lists every htc-lint analyzer, in the order diagnostics group
// most readably: the two determinism/threading contracts first, then
// the cross-package config contract, then observability, then the two
// stand-ins for x/tools vet passes the offline build cannot fetch.
func All() []*Analyzer {
	return []*Analyzer{Paramflow, Detrange, Knobcover, Metricdiscipline, Shadow, Nilness}
}
