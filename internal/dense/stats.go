package dense

import (
	"math"
	"math/rand"
)

// CenterRows subtracts each row's mean from its entries, in place.
// Row-centred matrices turn inner products into (unnormalised) covariance,
// the first step of the Pearson correlation used by LISI.
func (m *Matrix) CenterRows() {
	if m.Cols == 0 {
		return
	}
	inv := 1 / float64(m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean *= inv
		for j := range row {
			row[j] -= mean
		}
	}
}

// NormalizeRows scales each row to unit L2 norm, in place. Rows with norm
// below eps are left untouched (they would otherwise blow up to NaN).
func (m *Matrix) NormalizeRows() {
	const eps = 1e-12
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v * v
		}
		if s < eps {
			continue
		}
		inv := 1 / math.Sqrt(s)
		for j := range row {
			row[j] *= inv
		}
	}
}

// RowNorms returns the L2 norm of each row.
func (m *Matrix) RowNorms() []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v * v
		}
		out[i] = math.Sqrt(s)
	}
	return out
}

// ScaleRows multiplies row i of m by d[i], in place.
func (m *Matrix) ScaleRows(d []float64) {
	if len(d) != m.Rows {
		panic("dense: ScaleRows length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		f := d[i]
		row := m.Row(i)
		for j := range row {
			row[j] *= f
		}
	}
}

// ArgmaxRows returns, for each row, the column index of its maximum entry.
// Empty matrices return an empty slice; ties resolve to the lowest index.
func (m *Matrix) ArgmaxRows() []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best, bestV := 0, math.Inf(-1)
		for j, v := range row {
			if v > bestV {
				best, bestV = j, v
			}
		}
		out[i] = best
	}
	return out
}

// Xavier returns an r×c matrix with entries drawn uniformly from
// [−b, b] where b = sqrt(6/(r+c)), the Glorot/Xavier initialisation used
// for the GCN encoder weights. The rng makes initialisation reproducible.
func Xavier(r, c int, rng *rand.Rand) *Matrix {
	m := New(r, c)
	bound := math.Sqrt(6 / float64(r+c))
	for i := range m.Data {
		m.Data[i] = (2*rng.Float64() - 1) * bound
	}
	return m
}
