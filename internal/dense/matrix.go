// Package dense implements the dense linear-algebra kernel used throughout
// the HTC reproduction: row-major float64 matrices with parallel GEMM,
// elementwise operations, Gaussian solves and a Jacobi symmetric
// eigensolver. It depends only on the standard library.
//
// The package favours explicit, allocation-conscious APIs: operations that
// can work in place do so on the receiver, while operations that naturally
// produce a new matrix are package functions returning a fresh value.
package dense

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values. The zero value is
// not usable; construct matrices with New or the other constructors.
type Matrix struct {
	Rows, Cols int
	// Data holds the entries in row-major order: element (i, j) is
	// Data[i*Cols+j]. It is exported so hot loops can index directly.
	Data []float64
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equally sized rows. It copies
// the input.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("dense: ragged row %d: got %d entries, want %d", i, len(row), c))
		}
		copy(m.Row(i), row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Ensure returns m when it already has shape r×c, and a fresh zeroed
// matrix otherwise. It is the building block of scratch-buffer reuse: hot
// loops call Ensure once per round and allocate only when shapes change.
// The returned matrix's contents are unspecified (stale on reuse) — use it
// as the destination of an Into kernel.
func Ensure(m *Matrix, r, c int) *Matrix {
	if m != nil && m.Rows == r && m.Cols == c {
		return m
	}
	return New(r, c)
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice sharing the matrix's backing storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : i*m.Cols+m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies the contents of src into m. The shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.mustSameShape(src, "CopyFrom")
	copy(m.Data, src.Data)
}

// Fill sets every entry of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Zero sets every entry of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Scale multiplies every entry of m by alpha.
func (m *Matrix) Scale(alpha float64) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// Add adds b to m in place.
func (m *Matrix) Add(b *Matrix) {
	m.mustSameShape(b, "Add")
	for i, v := range b.Data {
		m.Data[i] += v
	}
}

// Sub subtracts b from m in place.
func (m *Matrix) Sub(b *Matrix) {
	m.mustSameShape(b, "Sub")
	for i, v := range b.Data {
		m.Data[i] -= v
	}
}

// AddScaled adds alpha*b to m in place.
func (m *Matrix) AddScaled(b *Matrix, alpha float64) {
	m.mustSameShape(b, "AddScaled")
	for i, v := range b.Data {
		m.Data[i] += alpha * v
	}
}

// MulElem multiplies m elementwise by b (Hadamard product) in place.
func (m *Matrix) MulElem(b *Matrix) {
	m.mustSameShape(b, "MulElem")
	for i, v := range b.Data {
		m.Data[i] *= v
	}
}

// Apply replaces every entry x of m with f(x).
func (m *Matrix) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// T returns a transposed copy of m.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	TransposeInto(t, m)
	return t
}

// transposeTile is the square block edge of the cache-blocked transpose:
// a 64×64 float64 tile is 32 KiB, so source rows and destination columns
// of one tile fit in L1 together.
const transposeTile = 64

// TransposeInto computes dst = srcᵀ, overwriting dst. The copy is
// cache-blocked: walking both matrices tile by tile keeps the strided
// destination writes inside one cache-resident block instead of touching
// dst.Rows distinct cache lines per source row.
func TransposeInto(dst, src *Matrix) {
	if dst.Rows != src.Cols || dst.Cols != src.Rows {
		panic(fmt.Sprintf("dense: TransposeInto shape mismatch dst=%dx%d src=%dx%d",
			dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for it := 0; it < src.Rows; it += transposeTile {
		iEnd := it + transposeTile
		if iEnd > src.Rows {
			iEnd = src.Rows
		}
		for jt := 0; jt < src.Cols; jt += transposeTile {
			jEnd := jt + transposeTile
			if jEnd > src.Cols {
				jEnd = src.Cols
			}
			for i := it; i < iEnd; i++ {
				row := src.Data[i*src.Cols : i*src.Cols+src.Cols]
				for j := jt; j < jEnd; j++ {
					dst.Data[j*dst.Cols+i] = row[j]
				}
			}
		}
	}
}

// Dot returns the elementwise inner product ⟨m, b⟩ = Σ m(i,j)·b(i,j).
func (m *Matrix) Dot(b *Matrix) float64 {
	m.mustSameShape(b, "Dot")
	var s float64
	for i, v := range m.Data {
		s += v * b.Data[i]
	}
	return s
}

// SumSquares returns Σ m(i,j)², the squared Frobenius norm.
func (m *Matrix) SumSquares() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return s
}

// FrobNorm returns the Frobenius norm of m.
func (m *Matrix) FrobNorm() float64 { return math.Sqrt(m.SumSquares()) }

// MaxAbs returns the largest absolute entry of m, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether m and b have the same shape and all entries within
// tol of each other.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging; large matrices are
// abbreviated to their shape.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("dense.Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("dense.Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

func (m *Matrix) mustSameShape(b *Matrix, op string) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("dense: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}
