package dense

import (
	"runtime"
	"sync"
)

// parallelRows splits the half-open range [0, n) across GOMAXPROCS workers
// and invokes fn(start, end) on each chunk. When the estimated per-row work
// (cost) is too small to amortise goroutine startup, fn runs serially.
func parallelRows(n, cost int, fn func(start, end int)) {
	const minWork = 1 << 15
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n*cost < minWork {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}
