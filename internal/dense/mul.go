package dense

import (
	"fmt"

	"github.com/htc-align/htc/internal/par"
)

// Mul returns the matrix product a·b. It panics if the inner dimensions do
// not match. The computation is parallelised across rows of the result.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("dense: Mul dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Cols)
	MulInto(c, a, b, 0)
	return c
}

// MulInto computes c = a·b, overwriting c, fanning out across at most
// `workers` goroutines (≤ 0 = GOMAXPROCS). The shapes must be compatible.
// Rows of c are written by exactly one goroutine each, so the result is
// bit-identical for every worker count.
func MulInto(c, a, b *Matrix, workers int) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MulInto dimension mismatch c=%dx%d a=%dx%d b=%dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	k, n := a.Cols, b.Cols
	c.Zero()
	par.For(workers, a.Rows, k*n, func(start, end int) {
		for i := start; i < end; i++ {
			ci := c.Data[i*n : i*n+n]
			ai := a.Data[i*k : i*k+k]
			for l, av := range ai {
				if av == 0 {
					continue
				}
				bl := b.Data[l*n : l*n+n]
				for j, bv := range bl {
					ci[j] += av * bv
				}
			}
		}
	})
}

// MulAT returns aᵀ·b for a (m×k) and b (m×n), producing a k×n matrix.
func MulAT(a, b *Matrix) *Matrix {
	c := New(a.Cols, b.Cols)
	MulATInto(c, a, b, 0)
	return c
}

// MulATInto computes c = aᵀ·b, overwriting c.
func MulATInto(c, a, b *Matrix, workers int) {
	c.Zero()
	MulATAccum(c, a, b, workers)
}

// MulATAccum accumulates c += aᵀ·b for a (m×k) and b (m×n) without any
// temporary — the gradient kernel of training, where every layer adds its
// weight gradient into a shared buffer.
//
// Parallelisation is over output rows; each output row l gathers the
// strided column l of a. For the small k used by embedding dimensions this
// is cache-acceptable and race-free.
func MulATAccum(c, a, b *Matrix, workers int) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MulATAccum dimension mismatch c=%dx%d a=%dx%d ᵀ· b=%dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	k, n := a.Cols, b.Cols
	par.For(workers, k, a.Rows*n, func(start, end int) {
		for l := start; l < end; l++ {
			cl := c.Data[l*n : l*n+n]
			for i := 0; i < a.Rows; i++ {
				av := a.Data[i*k+l]
				if av == 0 {
					continue
				}
				bi := b.Data[i*n : i*n+n]
				for j, bv := range bi {
					cl[j] += av * bv
				}
			}
		}
	})
}

// MulBT returns a·bᵀ for a (m×k) and b (n×k), producing an m×n matrix.
// Both operands are traversed along rows, which makes this the preferred
// kernel for similarity matrices between embedding sets.
func MulBT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MulBT dimension mismatch %dx%d · %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Rows)
	MulBTInto(c, a, b, 0)
	return c
}

// mulBTTile bounds the number of b entries (rows × k) held per cache
// block: 16384 float64s ≈ 128 KiB, sized to sit in L2 while a row of a
// stays in L1.
const mulBTTile = 1 << 14

// MulBTInto computes c = a·bᵀ, overwriting c. The kernel is cache-blocked:
// rows of b are processed in tiles small enough to stay resident in cache
// while the worker streams its rows of a over them, so b is fetched from
// memory once per tile instead of once per row of a. Every c entry is one
// sequential dot product, so results are bit-identical for every worker
// count and tile size.
func MulBTInto(c, a, b *Matrix, workers int) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("dense: MulBTInto dimension mismatch c=%dx%d a=%dx%d b=%dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	k := a.Cols
	if k == 0 {
		c.Zero()
		return
	}
	tile := mulBTTile / k
	if tile < 8 {
		tile = 8
	}
	par.For(workers, a.Rows, b.Rows*k, func(start, end int) {
		for jt := 0; jt < b.Rows; jt += tile {
			jEnd := jt + tile
			if jEnd > b.Rows {
				jEnd = b.Rows
			}
			for i := start; i < end; i++ {
				ai := a.Data[i*k : i*k+k]
				ci := c.Data[i*c.Cols : i*c.Cols+c.Cols]
				for j := jt; j < jEnd; j++ {
					bj := b.Data[j*k : j*k+k]
					var s float64
					for l, av := range ai {
						s += av * bj[l]
					}
					ci[j] = s
				}
			}
		}
	})
}

// MulVec returns a·x for a (m×n) and a vector x of length n.
func MulVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("dense: MulVec dimension mismatch %dx%d · %d", a.Rows, a.Cols, len(x)))
	}
	y := make([]float64, a.Rows)
	par.For(0, a.Rows, a.Cols, func(start, end int) {
		for i := start; i < end; i++ {
			row := a.Row(i)
			var s float64
			for j, v := range row {
				s += v * x[j]
			}
			y[i] = s
		}
	})
	return y
}
