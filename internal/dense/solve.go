package dense

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned by Solve and Inverse when the coefficient matrix
// is singular to working precision.
var ErrSingular = errors.New("dense: matrix is singular")

// Solve returns X such that a·X = b, using Gaussian elimination with
// partial pivoting. a must be square (n×n) and b must have n rows. Neither
// input is modified.
func Solve(a, b *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		panic(fmt.Sprintf("dense: Solve needs a square matrix, got %dx%d", a.Rows, a.Cols))
	}
	if b.Rows != n {
		panic(fmt.Sprintf("dense: Solve rhs has %d rows, want %d", b.Rows, n))
	}
	lu := a.Clone()
	x := b.Clone()
	m := x.Cols
	for col := 0; col < n; col++ {
		// Partial pivot: the row with the largest magnitude in this column.
		pivot, pivotAbs := col, math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(lu.At(r, col)); abs > pivotAbs {
				pivot, pivotAbs = r, abs
			}
		}
		if pivotAbs < 1e-13 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(lu, pivot, col)
			swapRows(x, pivot, col)
		}
		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) * inv
			if f == 0 {
				continue
			}
			lur, luc := lu.Row(r), lu.Row(col)
			for j := col; j < n; j++ {
				lur[j] -= f * luc[j]
			}
			xr, xc := x.Row(r), x.Row(col)
			for j := 0; j < m; j++ {
				xr[j] -= f * xc[j]
			}
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		inv := 1 / lu.At(col, col)
		xc := x.Row(col)
		for j := 0; j < m; j++ {
			xc[j] *= inv
		}
		for r := 0; r < col; r++ {
			f := lu.At(r, col)
			if f == 0 {
				continue
			}
			xr := x.Row(r)
			for j := 0; j < m; j++ {
				xr[j] -= f * xc[j]
			}
		}
	}
	return x, nil
}

// Inverse returns a⁻¹ for a square matrix a.
func Inverse(a *Matrix) (*Matrix, error) {
	return Solve(a, Identity(a.Rows))
}

// SolveRidge returns X minimising ‖a·X − b‖² + lambda·‖X‖², the ridge
// (Tikhonov) regularised least squares solution (aᵀa + λI)⁻¹aᵀb. It is
// used by the PALE baseline to learn the linear embedding mapping from
// seed anchors.
func SolveRidge(a, b *Matrix, lambda float64) (*Matrix, error) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("dense: SolveRidge row mismatch %d vs %d", a.Rows, b.Rows))
	}
	ata := MulAT(a, a)
	for i := 0; i < ata.Rows; i++ {
		ata.Data[i*ata.Cols+i] += lambda
	}
	atb := MulAT(a, b)
	return Solve(ata, atb)
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
