package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomMatrix(r, c int, rng *rand.Rand) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("FromRows content wrong: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty FromRows = %dx%d", m.Rows, m.Cols)
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At after Set = %v", m.At(1, 2))
	}
	row := m.Row(1)
	row[0] = 5 // Row must alias backing storage.
	if m.At(1, 0) != 5 {
		t.Fatal("Row does not alias backing storage")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	a.Add(b)
	if a.At(1, 1) != 44 {
		t.Fatalf("Add: %v", a)
	}
	a.Sub(b)
	if a.At(1, 1) != 4 {
		t.Fatalf("Sub: %v", a)
	}
	a.Scale(2)
	if a.At(0, 1) != 4 {
		t.Fatalf("Scale: %v", a)
	}
	a.AddScaled(b, 0.5)
	if a.At(0, 0) != 2+5 {
		t.Fatalf("AddScaled: %v", a)
	}
}

func TestMulElemApply(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {3, -4}})
	b := FromRows([][]float64{{2, 2}, {2, 2}})
	a.MulElem(b)
	if a.At(1, 1) != -8 {
		t.Fatalf("MulElem: %v", a)
	}
	a.Apply(math.Abs)
	if a.At(1, 1) != 8 || a.At(0, 1) != 4 {
		t.Fatalf("Apply: %v", a)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("T: %v", at)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(1+rng.Intn(8), 1+rng.Intn(8), rng)
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotAndNorms(t *testing.T) {
	a := FromRows([][]float64{{3, 4}})
	if a.FrobNorm() != 5 {
		t.Fatalf("FrobNorm = %v", a.FrobNorm())
	}
	if a.SumSquares() != 25 {
		t.Fatalf("SumSquares = %v", a.SumSquares())
	}
	b := FromRows([][]float64{{1, 2}})
	if a.Dot(b) != 11 {
		t.Fatalf("Dot = %v", a.Dot(b))
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
}

func TestEqualShapes(t *testing.T) {
	a := New(2, 2)
	b := New(2, 3)
	if a.Equal(b, 1) {
		t.Fatal("Equal must reject different shapes")
	}
}

func TestCopyFromAndFill(t *testing.T) {
	a := New(2, 2)
	b := FromRows([][]float64{{1, 2}, {3, 4}})
	a.CopyFrom(b)
	if !a.Equal(b, 0) {
		t.Fatal("CopyFrom mismatch")
	}
	a.Fill(7)
	if a.At(1, 0) != 7 {
		t.Fatal("Fill mismatch")
	}
	a.Zero()
	if a.MaxAbs() != 0 {
		t.Fatal("Zero mismatch")
	}
}

func TestCenterRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {10, 10, 10}})
	m.CenterRows()
	if !almostEqual(m.At(0, 0), -1, 1e-12) || !almostEqual(m.At(0, 2), 1, 1e-12) {
		t.Fatalf("CenterRows row0: %v", m.Row(0))
	}
	for j := 0; j < 3; j++ {
		if m.At(1, j) != 0 {
			t.Fatalf("CenterRows constant row: %v", m.Row(1))
		}
	}
}

func TestNormalizeRows(t *testing.T) {
	m := FromRows([][]float64{{3, 4}, {0, 0}})
	m.NormalizeRows()
	if !almostEqual(m.At(0, 0), 0.6, 1e-12) || !almostEqual(m.At(0, 1), 0.8, 1e-12) {
		t.Fatalf("NormalizeRows: %v", m.Row(0))
	}
	if m.At(1, 0) != 0 || m.At(1, 1) != 0 {
		t.Fatal("zero rows must stay zero")
	}
}

func TestRowNormsAndScaleRows(t *testing.T) {
	m := FromRows([][]float64{{3, 4}, {1, 0}})
	norms := m.RowNorms()
	if !almostEqual(norms[0], 5, 1e-12) || !almostEqual(norms[1], 1, 1e-12) {
		t.Fatalf("RowNorms = %v", norms)
	}
	m.ScaleRows([]float64{2, 3})
	if m.At(0, 1) != 8 || m.At(1, 0) != 3 {
		t.Fatalf("ScaleRows: %v", m)
	}
}

func TestArgmaxRows(t *testing.T) {
	m := FromRows([][]float64{{1, 9, 2}, {-5, -1, -9}})
	got := m.ArgmaxRows()
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("ArgmaxRows = %v", got)
	}
}

func TestXavierDeterministicAndBounded(t *testing.T) {
	a := Xavier(20, 30, rand.New(rand.NewSource(1)))
	b := Xavier(20, 30, rand.New(rand.NewSource(1)))
	if !a.Equal(b, 0) {
		t.Fatal("Xavier not deterministic for equal seeds")
	}
	bound := math.Sqrt(6.0 / 50.0)
	if a.MaxAbs() > bound {
		t.Fatalf("Xavier exceeds bound: %v > %v", a.MaxAbs(), bound)
	}
	if a.MaxAbs() == 0 {
		t.Fatal("Xavier produced all zeros")
	}
}
