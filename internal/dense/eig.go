package dense

import (
	"fmt"
	"math"
	"sort"
)

// SymEigen computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues in descending order and
// a matrix whose columns are the corresponding orthonormal eigenvectors.
// It is intended for the small matrices that arise in landmark methods
// (REGAL's p×p similarity block) and spectral feature extraction; the cost
// is O(n³) per sweep.
func SymEigen(a *Matrix) ([]float64, *Matrix) {
	n := a.Rows
	if a.Cols != n {
		panic(fmt.Sprintf("dense: SymEigen needs a square matrix, got %dx%d", a.Rows, a.Cols))
	}
	w := a.Clone()
	v := Identity(n)
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-12*(1+w.FrobNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				jacobiRotate(w, v, p, q)
			}
		}
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := New(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs
}

// jacobiRotate annihilates w(p,q) with a Givens rotation and accumulates
// the rotation into v.
func jacobiRotate(w, v *Matrix, p, q int) {
	n := w.Rows
	apq := w.At(p, q)
	app, aqq := w.At(p, p), w.At(q, q)
	theta := (aqq - app) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(theta*theta+1))
	} else {
		t = -1 / (-theta + math.Sqrt(theta*theta+1))
	}
	c := 1 / math.Sqrt(t*t+1)
	s := t * c
	tau := s / (1 + c)

	w.Set(p, p, app-t*apq)
	w.Set(q, q, aqq+t*apq)
	w.Set(p, q, 0)
	w.Set(q, p, 0)
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		aip, aiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, aip-s*(aiq+tau*aip))
		w.Set(p, i, w.At(i, p))
		w.Set(i, q, aiq+s*(aip-tau*aiq))
		w.Set(q, i, w.At(i, q))
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, vip-s*(viq+tau*vip))
		v.Set(i, q, viq+s*(vip-tau*viq))
	}
}

func offDiagNorm(w *Matrix) float64 {
	var s float64
	n := w.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := w.At(i, j)
			s += 2 * v * v
		}
	}
	return math.Sqrt(s)
}

// PseudoInverseSqrtSym returns M^(−1/2) for a symmetric positive
// semi-definite matrix, treating eigenvalues below tol as zero. REGAL's
// xNetMF embedding uses this to whiten the landmark similarity block.
func PseudoInverseSqrtSym(a *Matrix, tol float64) *Matrix {
	vals, vecs := SymEigen(a)
	n := a.Rows
	scaled := New(n, n)
	for j := 0; j < n; j++ {
		var f float64
		if vals[j] > tol {
			f = 1 / math.Sqrt(vals[j])
		}
		for i := 0; i < n; i++ {
			scaled.Set(i, j, vecs.At(i, j)*f)
		}
	}
	return MulBT(scaled, vecs)
}
