package dense

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := FromRows([][]float64{{3}, {5}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 3, x + 3y = 5 → x = 4/5, y = 7/5.
	if !almostEqual(x.At(0, 0), 0.8, 1e-10) || !almostEqual(x.At(1, 0), 1.4, 1e-10) {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randomMatrix(n, n, rng)
		// Diagonal dominance keeps the random system comfortably
		// non-singular.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		want := randomMatrix(n, 2, rng)
		b := Mul(a, want)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		return x.Equal(want, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, Identity(2)); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	b := FromRows([][]float64{{2}, {3}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x.At(0, 0), 3, 1e-12) || !almostEqual(x.At(1, 0), 2, 1e-12) {
		t.Fatalf("Solve with pivoting = %v", x)
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	b := FromRows([][]float64{{1}, {2}})
	aOrig, bOrig := a.Clone(), b.Clone()
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(aOrig, 0) || !b.Equal(bOrig, 0) {
		t.Fatal("Solve mutated its inputs")
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 8
	a := randomMatrix(n, n, rng)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+10)
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Mul(a, inv).Equal(Identity(n), 1e-8) {
		t.Fatal("A·A⁻¹ != I")
	}
}

func TestSolveRidgeRecoversMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := randomMatrix(6, 4, rng)
	a := randomMatrix(40, 6, rng)
	b := Mul(a, w)
	got, err := SolveRidge(a, b, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(w, 1e-5) {
		t.Fatal("ridge solution does not recover the exact mapping")
	}
}

func TestSolveRidgeRegularises(t *testing.T) {
	// A rank-deficient design matrix is solvable only thanks to λ > 0.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := FromRows([][]float64{{1}, {2}, {3}})
	x, err := SolveRidge(a, b, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetry of the problem forces both coefficients equal.
	if !almostEqual(x.At(0, 0), x.At(1, 0), 1e-10) {
		t.Fatalf("ridge solution not symmetric: %v", x)
	}
}
