// The float32 compute tier: a small mirror of the kernels on the
// post-training hot path (similarity projection, normalisation, row
// scans). Training stays float64 — Matrix32 exists for the fine-tuning
// stages, where embeddings are converted once at the training boundary
// and every further pass is memory-bandwidth-bound. Dot products
// accumulate in float64 so candidate rankings stay stable; only the
// stored values are half-width.
package dense

import (
	"fmt"
	"math"

	"github.com/htc-align/htc/internal/par"
)

// Matrix32 is a dense row-major matrix of float32 values — the reduced-
// precision sibling of Matrix. The zero value is not usable; construct
// with New32.
type Matrix32 struct {
	Rows, Cols int
	// Data holds the entries in row-major order: element (i, j) is
	// Data[i*Cols+j]. Exported so hot loops can index directly.
	Data []float32
}

// New32 returns a zeroed r×c float32 matrix.
func New32(r, c int) *Matrix32 {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: negative dimension %dx%d", r, c))
	}
	return &Matrix32{Rows: r, Cols: c, Data: make([]float32, r*c)}
}

// Ensure32 returns m when it already has shape r×c, and a fresh zeroed
// matrix otherwise — the float32 form of Ensure. The returned matrix's
// contents are unspecified on reuse; use it as the destination of an
// Into kernel.
func Ensure32(m *Matrix32, r, c int) *Matrix32 {
	if m != nil && m.Rows == r && m.Cols == c {
		return m
	}
	return New32(r, c)
}

// Row returns row i as a slice sharing the matrix's backing storage.
func (m *Matrix32) Row(i int) []float32 { return m.Data[i*m.Cols : i*m.Cols+m.Cols] }

// At returns element (i, j).
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// CopyFrom copies the contents of src into m. The shapes must match.
func (m *Matrix32) CopyFrom(src *Matrix32) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("dense: CopyFrom shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every entry of m to zero.
func (m *Matrix32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulBTInto32 computes c = a·bᵀ over float32 operands, overwriting c —
// the reduced-precision mirror of MulBTInto with the same cache blocking
// and the same sequential per-cell association. Every dot product
// accumulates in float64 and rounds once on store, so rankings derived
// from the scores are as stable as the float64 kernel's up to the final
// rounding, and results are bit-identical for every worker count.
func MulBTInto32(c, a, b *Matrix32, workers int) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("dense: MulBTInto32 dimension mismatch c=%dx%d a=%dx%d b=%dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	k := a.Cols
	if k == 0 {
		c.Zero()
		return
	}
	// Half-width entries: the same byte budget as mulBTTile holds twice
	// the values, so twice the rows of b stay cache-resident per tile.
	tile := 2 * mulBTTile / k
	if tile < 8 {
		tile = 8
	}
	par.For(workers, a.Rows, b.Rows*k, func(start, end int) {
		for jt := 0; jt < b.Rows; jt += tile {
			jEnd := jt + tile
			if jEnd > b.Rows {
				jEnd = b.Rows
			}
			for i := start; i < end; i++ {
				ai := a.Data[i*k : i*k+k]
				ci := c.Data[i*c.Cols : i*c.Cols+c.Cols]
				for j := jt; j < jEnd; j++ {
					bj := b.Data[j*k : j*k+k]
					var s float64
					for l, av := range ai {
						s += float64(av) * float64(bj[l])
					}
					ci[j] = float32(s)
				}
			}
		}
	})
}

// CenterNormalizeRowsInto fuses CopyFrom + CenterRows + NormalizeRows
// into one pass per row: src is read once, each row's mean is removed,
// and the centered row is scaled to unit L2 norm while still
// cache-resident. The arithmetic — mean accumulation order, the stored
// centered values, the sum of squares over those stored values, the
// eps = 1e-12 skip — is exactly the three-pass sequence's, so the fused
// kernel is bit-identical to it (locked by TestCenterNormalizeFusedBitIdentical).
// src is left untouched; dst must have src's shape.
func CenterNormalizeRowsInto(dst, src *Matrix) {
	dst.mustSameShape(src, "CenterNormalizeRowsInto")
	if src.Cols == 0 {
		return
	}
	const eps = 1e-12
	inv := 1 / float64(src.Cols)
	for i := 0; i < src.Rows; i++ {
		row := src.Row(i)
		out := dst.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean *= inv
		var s float64
		for j, v := range row {
			c := v - mean
			out[j] = c
			s += c * c
		}
		if s < eps {
			continue
		}
		f := 1 / math.Sqrt(s)
		for j := range out {
			out[j] *= f
		}
	}
}

// CenterNormalizeRowsInto32 is the precision-tier boundary: one fused
// pass that centers and row-normalises float64 embeddings into a float32
// destination. All reductions (mean, sum of squares) run in float64;
// only the stores narrow. The sum of squares is taken over the values as
// stored — widened float32 — so each output row is unit-norm in its own
// representation. dst must have src's shape.
func CenterNormalizeRowsInto32(dst *Matrix32, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("dense: CenterNormalizeRowsInto32 shape mismatch %dx%d vs %dx%d",
			dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	if src.Cols == 0 {
		return
	}
	const eps = 1e-12
	inv := 1 / float64(src.Cols)
	for i := 0; i < src.Rows; i++ {
		row := src.Row(i)
		out := dst.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean *= inv
		var s float64
		for j, v := range row {
			c := float32(v - mean)
			out[j] = c
			s += float64(c) * float64(c)
		}
		if s < eps {
			continue
		}
		f := 1 / math.Sqrt(s)
		for j, v := range out {
			out[j] = float32(float64(v) * f)
		}
	}
}

// MulBTMixed32Into computes c = a·bᵀ for float32 rows a against float64
// rows b, into a float64 destination — the projection kernel of the ANN
// index's float32 tier, where the data rows are half-width but the
// hyperplanes (small, reused) stay float64. Same blocking and sequential
// association as MulBTInto.
func MulBTMixed32Into(c *Matrix, a *Matrix32, b *Matrix, workers int) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("dense: MulBTMixed32Into dimension mismatch c=%dx%d a=%dx%d b=%dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	k := a.Cols
	if k == 0 {
		c.Zero()
		return
	}
	tile := mulBTTile / k
	if tile < 8 {
		tile = 8
	}
	par.For(workers, a.Rows, b.Rows*k, func(start, end int) {
		for jt := 0; jt < b.Rows; jt += tile {
			jEnd := jt + tile
			if jEnd > b.Rows {
				jEnd = b.Rows
			}
			for i := start; i < end; i++ {
				ai := a.Data[i*k : i*k+k]
				ci := c.Data[i*c.Cols : i*c.Cols+c.Cols]
				for j := jt; j < jEnd; j++ {
					bj := b.Data[j*k : j*k+k]
					var s float64
					for l, av := range ai {
						s += float64(av) * bj[l]
					}
					ci[j] = s
				}
			}
		}
	})
}
