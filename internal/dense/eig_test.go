package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSymmetric(n int, rng *rand.Rand) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestSymEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 1}})
	vals, vecs := SymEigen(a)
	if !almostEqual(vals[0], 3, 1e-10) || !almostEqual(vals[1], 1, 1e-10) {
		t.Fatalf("vals = %v", vals)
	}
	if math.Abs(vecs.At(0, 0)) != 1 && math.Abs(vecs.At(1, 0)) != 1 {
		t.Fatalf("vecs = %v", vecs)
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, _ := SymEigen(a)
	if !almostEqual(vals[0], 3, 1e-10) || !almostEqual(vals[1], 1, 1e-10) {
		t.Fatalf("vals = %v", vals)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randomSymmetric(n, rng)
		vals, vecs := SymEigen(a)
		// Rebuild A = V Λ Vᵀ.
		scaled := vecs.Clone()
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				scaled.Set(i, j, scaled.At(i, j)*vals[j])
			}
		}
		return MulBT(scaled, vecs).Equal(a, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSymEigenOrthonormalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSymmetric(10, rng)
	_, vecs := SymEigen(a)
	if !MulAT(vecs, vecs).Equal(Identity(10), 1e-8) {
		t.Fatal("eigenvectors are not orthonormal")
	}
}

func TestSymEigenDescendingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomSymmetric(12, rng)
	vals, _ := SymEigen(a)
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not descending: %v", vals)
		}
	}
}

func TestPseudoInverseSqrtSym(t *testing.T) {
	// For SPD M, (M^(−1/2))·M·(M^(−1/2)) = I.
	rng := rand.New(rand.NewSource(21))
	b := randomMatrix(6, 6, rng)
	m := MulBT(b, b) // SPD with probability 1
	for i := 0; i < 6; i++ {
		m.Set(i, i, m.At(i, i)+0.5)
	}
	half := PseudoInverseSqrtSym(m, 1e-10)
	got := Mul(Mul(half, m), half)
	if !got.Equal(Identity(6), 1e-7) {
		t.Fatalf("M^(-1/2) M M^(-1/2) != I: %v", got)
	}
}

func TestPseudoInverseSqrtSymRankDeficient(t *testing.T) {
	// Rank-1 matrix: pseudo-inverse sqrt must not blow up on the null
	// space.
	m := FromRows([][]float64{{4, 0}, {0, 0}})
	half := PseudoInverseSqrtSym(m, 1e-10)
	if !almostEqual(half.At(0, 0), 0.5, 1e-10) || !almostEqual(half.At(1, 1), 0, 1e-10) {
		t.Fatalf("pseudo-inverse sqrt = %v", half)
	}
}
