package dense

import (
	"math"
	"math/rand"
	"testing"
)

// seededMatrix fills an r×c matrix with unit gaussians, with a few rows
// made exactly constant so the zero-variance skip path is exercised.
func seededMatrix(r, c int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < r; i += 7 {
		row := m.Row(i)
		for j := range row {
			row[j] = 3.25
		}
	}
	return m
}

// TestCenterNormalizeFusedBitIdentical: the fused center+normalize pass
// must reproduce the separate CopyFrom → CenterRows → NormalizeRows
// sequence bit for bit — it is what lets the fusion replace the old
// three-pass code on the default float64 path without perturbing the
// pipeline's bit-identity contract.
func TestCenterNormalizeFusedBitIdentical(t *testing.T) {
	for _, tc := range []struct{ r, c int }{
		{1, 1}, {3, 0}, {7, 5}, {40, 16}, {129, 33},
	} {
		for seed := int64(1); seed <= 3; seed++ {
			src := seededMatrix(tc.r, tc.c, seed)
			want := New(tc.r, tc.c)
			want.CopyFrom(src)
			want.CenterRows()
			want.NormalizeRows()
			got := New(tc.r, tc.c)
			CenterNormalizeRowsInto(got, src)
			for i, v := range got.Data {
				if v != want.Data[i] {
					t.Fatalf("r=%d c=%d seed=%d: fused[%d] = %v, separate = %v",
						tc.r, tc.c, seed, i, v, want.Data[i])
				}
			}
		}
	}
}

// TestCenterNormalizeRowsInto32 checks the float32 variant against the
// float64 fused pass: each stored value must equal the float64 result
// computed through the same store-then-widen rounding (center rounded to
// float32, norm accumulated over the rounded values).
func TestCenterNormalizeRowsInto32(t *testing.T) {
	src := seededMatrix(41, 9, 4)
	got := New32(41, 9)
	CenterNormalizeRowsInto32(got, src)
	for i := 0; i < src.Rows; i++ {
		row := src.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(src.Cols)
		c := make([]float32, src.Cols)
		var s float64
		for j, v := range row {
			c[j] = float32(v - mean)
			s += float64(c[j]) * float64(c[j])
		}
		out := got.Row(i)
		if s < 1e-12 {
			for j := range out {
				if out[j] != c[j] {
					t.Fatalf("zero-variance row %d col %d: got %v, want centered %v", i, j, out[j], c[j])
				}
			}
			continue
		}
		f := 1 / math.Sqrt(s)
		for j := range out {
			want := float32(float64(c[j]) * f)
			if out[j] != want {
				t.Fatalf("row %d col %d: got %v, want %v", i, j, out[j], want)
			}
		}
	}
}

// TestMulBTInto32MatchesNaive: the float32 kernel must equal the naive
// sequential float64-accumulated product rounded to float32, at every
// worker count (the bit-identity-across-workers contract of the f64
// kernel, carried to the f32 tier).
func TestMulBTInto32MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fill := func(r, c int) *Matrix32 {
		m := New32(r, c)
		for i := range m.Data {
			m.Data[i] = float32(rng.NormFloat64())
		}
		return m
	}
	for _, tc := range []struct{ m, n, k int }{
		{1, 1, 1}, {5, 7, 3}, {17, 13, 0}, {33, 29, 40},
	} {
		a, b := fill(tc.m, tc.k), fill(tc.n, tc.k)
		want := New32(tc.m, tc.n)
		for i := 0; i < tc.m; i++ {
			for j := 0; j < tc.n; j++ {
				var s float64
				for l := 0; l < tc.k; l++ {
					s += float64(a.At(i, l)) * float64(b.At(j, l))
				}
				want.Data[i*tc.n+j] = float32(s)
			}
		}
		for _, workers := range []int{1, 2, 5} {
			got := New32(tc.m, tc.n)
			MulBTInto32(got, a, b, workers)
			for i, v := range got.Data {
				if v != want.Data[i] {
					t.Fatalf("m=%d n=%d k=%d workers=%d: cell %d = %v, want %v",
						tc.m, tc.n, tc.k, workers, i, v, want.Data[i])
				}
			}
		}
	}
}

// TestMulBTMixed32Into: the mixed-precision projection kernel (float32
// rows against float64 planes, float64 result) matches the naive product.
func TestMulBTMixed32Into(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := New32(23, 11)
	for i := range a.Data {
		a.Data[i] = float32(rng.NormFloat64())
	}
	b := New(6, 11)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	want := New(23, 6)
	for i := 0; i < 23; i++ {
		for j := 0; j < 6; j++ {
			var s float64
			for l := 0; l < 11; l++ {
				s += float64(a.At(i, l)) * b.At(j, l)
			}
			want.Data[i*6+j] = s
		}
	}
	for _, workers := range []int{1, 3} {
		got := New(23, 6)
		MulBTMixed32Into(got, a, b, workers)
		for i, v := range got.Data {
			if v != want.Data[i] {
				t.Fatalf("workers=%d: cell %d = %v, want %v", workers, i, v, want.Data[i])
			}
		}
	}
}

// TestMatrix32Basics covers the small-surface helpers: Ensure32 reuse,
// CopyFrom, Zero and the shape panic of the kernel.
func TestMatrix32Basics(t *testing.T) {
	m := New32(3, 4)
	if got := Ensure32(m, 3, 4); got != m {
		t.Fatal("Ensure32 reallocated a correctly-shaped matrix")
	}
	if got := Ensure32(m, 5, 2); got == m || got.Rows != 5 || got.Cols != 2 {
		t.Fatal("Ensure32 failed to reshape")
	}
	src := New32(2, 2)
	src.Data = []float32{1, 2, 3, 4}
	dst := New32(2, 2)
	dst.CopyFrom(src)
	if dst.At(1, 1) != 4 {
		t.Fatalf("CopyFrom: got %v", dst.At(1, 1))
	}
	dst.Zero()
	if dst.At(0, 0) != 0 || dst.At(1, 1) != 0 {
		t.Fatal("Zero left residue")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MulBTInto32 accepted mismatched shapes")
		}
	}()
	MulBTInto32(New32(2, 3), New32(2, 4), New32(3, 5), 1)
}
