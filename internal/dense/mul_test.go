package dense

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMul is the reference O(n³) product used to validate the parallel
// kernels.
func naiveMul(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func TestMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !c.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", c, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(17, 17, rng)
	if !Mul(a, Identity(17)).Equal(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !Mul(Identity(17), a).Equal(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMulMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := randomMatrix(m, k, rng)
		b := randomMatrix(k, n, rng)
		return Mul(a, b).Equal(naiveMul(a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMulATMatchesTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := randomMatrix(m, k, rng)
		b := randomMatrix(m, n, rng)
		return MulAT(a, b).Equal(naiveMul(a.T(), b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMulBTMatchesTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := randomMatrix(m, k, rng)
		b := randomMatrix(n, k, rng)
		return MulBT(a, b).Equal(naiveMul(a, b.T()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMulLargeParallelPath(t *testing.T) {
	// Large enough to cross the parallel threshold in parallelRows.
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(120, 90, rng)
	b := randomMatrix(90, 110, rng)
	if !Mul(a, b).Equal(naiveMul(a, b), 1e-8) {
		t.Fatal("parallel Mul disagrees with naive product")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := MulVec(a, []float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestMulDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestMulIntoReusesBuffer(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 1}})
	b := FromRows([][]float64{{2, 3}, {4, 5}})
	c := New(2, 2)
	c.Fill(99) // stale values must be overwritten
	MulInto(c, a, b, 0)
	if !c.Equal(b, 1e-12) {
		t.Fatalf("MulInto = %v, want %v", c, b)
	}
}

func TestMulBTIntoWorkerCountsAgree(t *testing.T) {
	// The cache-blocked kernel must produce bit-identical results for
	// every worker count — this is what makes Config.Workers a pure
	// performance knob.
	rng := rand.New(rand.NewSource(11))
	a := randomMatrix(333, 48, rng)
	b := randomMatrix(257, 48, rng)
	want := New(a.Rows, b.Rows)
	MulBTInto(want, a, b, 1)
	for _, w := range []int{2, 3, 8} {
		got := New(a.Rows, b.Rows)
		got.Fill(-1)
		MulBTInto(got, a, b, w)
		if !got.Equal(want, 0) {
			t.Fatalf("MulBTInto with %d workers diverged", w)
		}
	}
}

func TestMulATAccum(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomMatrix(40, 7, rng)
	b := randomMatrix(40, 9, rng)
	c := randomMatrix(7, 9, rng)
	want := c.Clone()
	want.Add(MulAT(a, b))
	MulATAccum(c, a, b, 0)
	if !c.Equal(want, 1e-12) {
		t.Fatal("MulATAccum != c + MulAT(a,b)")
	}
}

func TestTransposeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Dimensions straddling the tile size exercise the partial-tile edges.
	for _, dims := range [][2]int{{3, 5}, {64, 64}, {65, 63}, {1, 200}, {130, 70}} {
		m := randomMatrix(dims[0], dims[1], rng)
		tr := m.T()
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				if tr.At(j, i) != m.At(i, j) {
					t.Fatalf("%dx%d transpose wrong at (%d,%d)", dims[0], dims[1], i, j)
				}
			}
		}
	}
}

func BenchmarkMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomMatrix(256, 256, rng)
	y := randomMatrix(256, 256, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMulBT256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomMatrix(256, 64, rng)
	y := randomMatrix(256, 64, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulBT(x, y)
	}
}
