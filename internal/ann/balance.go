// Data-aware balancing of the LSH hash: the centering + whitening
// transform frozen at the first Fit, and the hierarchical re-hash of
// buckets that still come out oversized. Both exist for the same failure
// mode — GCN embeddings on low-signal graphs collapse toward a dominant
// direction, so raw sign-random-projection bits all follow that
// direction and a handful of hot buckets swallow most rows.
package ann

import (
	"math"
	"math/rand"

	"github.com/htc-align/htc/internal/dense"
)

// annSampleTarget bounds the rows used to estimate the data mean and
// covariance: a deterministic stride sample of ~2048 rows, so the
// transform costs O(sample·d²) regardless of n.
const annSampleTarget = 2048

const (
	// rehashFactor is the `cap` of the re-hash threshold cap·n/2^bits.
	// SRP bucket sizes are heavy-tailed even on isotropic data (codes of
	// nearby regions are correlated), so the factor is deliberately
	// high: only buckets a collapse actually inflated get a second-level
	// table — re-hashing the ordinary tail would prune true neighbours
	// for no balance gain.
	rehashFactor = 8
	// rehashMinRows floors the threshold so small inputs don't re-hash
	// ordinarily lumpy buckets.
	rehashMinRows = 64
	// maxSubBits caps a second-level table's width.
	maxSubBits = 12
)

// buildTransform freezes the index's hash geometry against the first
// fitted matrix: hyperplanes G are drawn from the seed, and — unless
// Params.Unbalanced — rotated through a whitening transform T of the
// sampled data covariance, with per-bit offsets μ·w̃ centering every
// hyperplane on the data mean. In the whitened view each effective
// hyperplane sees equalized variance in every direction, so each bit
// splits the rows roughly in half even under a dominant direction.
// rowAt yields row i widened to float64 — the data matrix's own rows on
// the float64 tier, a conversion through a reused buffer on the float32
// tier — so the frozen geometry is tier-independent float64 math.
func (ix *Index) buildTransform(d, rows int, rowAt func(int) []float64) {
	g := dense.New(ix.p.Bits, d)
	rng := rand.New(rand.NewSource(ix.p.Seed))
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	ix.bias = resize(ix.bias, ix.p.Bits)
	if ix.p.Unbalanced {
		ix.planes = g
		ix.xform = nil
		for j := range ix.bias {
			ix.bias[j] = 0
		}
		return
	}
	mu, t := whiteningTransform(rows, d, rowAt)
	ix.xform = t
	ix.planes = dense.New(ix.p.Bits, d)
	// T is symmetric, so G·Tᵀ = G·T: each effective plane w̃_j = T·g_j.
	dense.MulBTInto(ix.planes, g, t, 1)
	for j := 0; j < ix.p.Bits; j++ {
		ix.bias[j] = dot(mu, ix.planes.Row(j))
	}
}

// whiteningTransform estimates the data mean μ and a partial ZCA
// whitening transform T = V·diag(1/√(max(λ, λmed)+δ))·Vᵀ from a
// deterministic stride sample of the rows. Eigenvalues are floored at
// the spectrum's median before inversion: directions carrying more than
// their share of variance are shrunk down to the median's scale, the
// rest are left alone — equalize, never amplify. On a collapsed
// spectrum the dominant direction is flattened into the residual bulk
// (balancing the bits); on an already-isotropic spectrum T reduces to a
// harmless global scale, so the hash geometry the re-rank scores
// against is not distorted. Amplifying near-null directions — which
// would scramble the codes of near-identical rows with estimation noise
// — can never happen under the floor.
func whiteningTransform(rows, d int, rowAt func(int) []float64) (mu []float64, t *dense.Matrix) {
	stride := rows / annSampleTarget
	if stride < 1 {
		stride = 1
	}
	mu = make([]float64, d)
	cnt := 0
	for i := 0; i < rows; i += stride {
		for j, v := range rowAt(i) {
			mu[j] += v
		}
		cnt++
	}
	inv := 1 / float64(cnt)
	for j := range mu {
		mu[j] *= inv
	}
	cov := dense.New(d, d)
	for i := 0; i < rows; i += stride {
		row := rowAt(i)
		for a := 0; a < d; a++ {
			da := row[a] - mu[a]
			cr := cov.Row(a)
			for b := a; b < d; b++ {
				cr[b] += da * (row[b] - mu[b])
			}
		}
	}
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.At(a, b) * inv
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	vals, vecs := dense.SymEigen(cov)
	var lmax float64
	if len(vals) > 0 && vals[0] > 0 {
		lmax = vals[0]
	}
	// SymEigen orders eigenvalues descending, so the median floor is the
	// middle entry (clamped non-negative); δ guards a fully degenerate
	// spectrum.
	lmed := vals[d/2]
	if lmed < 0 {
		lmed = 0
	}
	delta := 1e-9*lmax + 1e-12
	scaled := dense.New(d, d)
	for j := 0; j < d; j++ {
		l := vals[j]
		if l < lmed {
			l = lmed
		}
		f := 1 / math.Sqrt(l+delta)
		for i := 0; i < d; i++ {
			scaled.Set(i, j, vecs.At(i, j)*f)
		}
	}
	return mu, dense.MulBT(scaled, vecs)
}

// subTable is the second-level hash of one re-hashed oversized bucket: a
// fresh, locally centered plane set splitting the bucket's segment of
// the order array into 2^bits contiguous sub-buckets, with start offsets
// relative to the segment.
type subTable struct {
	bits   int
	planes *dense.Matrix
	bias   []float64
	start  []int32
}

// buildSubs re-hashes every bucket whose occupancy exceeds
// max(rehashMinRows, rehashFactor·n/2^Bits) one level deeper: a fresh
// seed-derived plane set (whitened with the frozen transform, centered
// on the bucket's own mean) splits the bucket into sub-buckets sized
// back toward the mean occupancy, and the bucket's segment of the order
// array is regrouped in place. Queries then gather only their matching
// sub-bucket and defer the rest (see gather).
func (ix *Index) buildSubs() {
	nb := 1 << ix.p.Bits
	ix.subOf = growInt32s(ix.subOf, nb)
	for i := range ix.subOf[:nb] {
		ix.subOf[i] = -1
	}
	ix.subs = ix.subs[:0]
	ix.stats.Rehashed = 0
	if ix.p.Unbalanced {
		return
	}
	mean := ix.n >> uint(ix.p.Bits)
	if mean < 1 {
		mean = 1
	}
	threshold := rehashFactor * mean
	if threshold < rehashMinRows {
		threshold = rehashMinRows
	}
	// A probed re-hashed bucket contributes at most as many rows as the
	// largest allowed ordinary bucket, gathered in sub-probe margin
	// order (see gather).
	ix.subBudget = threshold
	var d int
	if ix.data32 != nil {
		d = ix.data32.Cols
	} else {
		d = ix.data.Cols
	}
	ix.subMean = resize(ix.subMean, d)
	for b := 0; b < nb; b++ {
		lo, hi := int(ix.start[b]), int(ix.start[b+1])
		size := hi - lo
		if size <= threshold {
			continue
		}
		sb := 1
		for sb < maxSubBits && size > mean<<uint(sb) {
			sb++
		}
		st := subTable{bits: sb, planes: dense.New(sb, d), bias: make([]float64, sb)}
		rng := rand.New(rand.NewSource(ix.p.Seed ^ (int64(b)+1)*0x2545f4914f6cdd1d))
		for i := range st.planes.Data {
			st.planes.Data[i] = rng.NormFloat64()
		}
		if ix.xform != nil {
			w := dense.New(sb, d)
			dense.MulBTInto(w, st.planes, ix.xform, 1)
			st.planes = w
		}
		// Center the sub-split on the bucket's own mean: rows landed here
		// because they look alike globally, so only local contrast splits
		// them.
		seg := ix.order[lo:hi]
		muB := ix.subMean
		for j := range muB {
			muB[j] = 0
		}
		if ix.data32 != nil {
			for _, r := range seg {
				for j, v := range ix.data32.Row(int(r)) {
					muB[j] += float64(v)
				}
			}
		} else {
			for _, r := range seg {
				for j, v := range ix.data.Row(int(r)) {
					muB[j] += v
				}
			}
		}
		for j := range muB {
			muB[j] /= float64(size)
		}
		for j := 0; j < sb; j++ {
			st.bias[j] = dot(muB, st.planes.Row(j))
		}
		// Stable counting sort of the segment by sub-code, in place.
		nsb := 1 << uint(sb)
		st.start = make([]int32, nsb+1)
		ix.subCode = growInt32sAsU32(ix.subCode, size)
		for si, r := range seg {
			var c uint32
			if ix.data32 != nil {
				row := ix.data32.Row(int(r))
				for j := 0; j < sb; j++ {
					if dot32(row, st.planes.Row(j))-st.bias[j] >= 0 {
						c |= 1 << uint(j)
					}
				}
			} else {
				row := ix.data.Row(int(r))
				for j := 0; j < sb; j++ {
					if dot(row, st.planes.Row(j))-st.bias[j] >= 0 {
						c |= 1 << uint(j)
					}
				}
			}
			ix.subCode[si] = c
			st.start[c+1]++
		}
		for c := 0; c < nsb; c++ {
			st.start[c+1] += st.start[c]
		}
		ix.subTmp = growInt32s(ix.subTmp, size)
		ix.subCursor = growInt32s(ix.subCursor, nsb)
		copy(ix.subCursor, st.start[:nsb])
		for si, r := range seg {
			c := ix.subCode[si]
			ix.subTmp[ix.subCursor[c]] = r
			ix.subCursor[c]++
		}
		copy(seg, ix.subTmp[:size])
		ix.subOf[b] = int32(len(ix.subs))
		ix.subs = append(ix.subs, st)
		ix.stats.Rehashed++
	}
}
