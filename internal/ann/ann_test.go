package ann

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/htc-align/htc/internal/dense"
)

// randRows builds an n×d matrix of unit-normalised gaussian rows.
func randRows(n, d int, seed int64) *dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := dense.New(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	m.NormalizeRows()
	return m
}

// bruteTopK is the reference: scores every row sequentially and sorts
// by (score desc, id asc).
func bruteTopK(queries, data *dense.Matrix, k int) *Result {
	if k > data.Rows {
		k = data.Rows
	}
	out := &Result{K: k, Idx: make([][]int32, queries.Rows), Score: make([][]float64, queries.Rows)}
	for i := 0; i < queries.Rows; i++ {
		q := queries.Row(i)
		type cand struct {
			id    int32
			score float64
		}
		all := make([]cand, data.Rows)
		for j := range all {
			var s float64
			for l, v := range q {
				s += v * data.Row(j)[l]
			}
			all[j] = cand{int32(j), s}
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].score != all[b].score {
				return all[a].score > all[b].score
			}
			return all[a].id < all[b].id
		})
		out.Idx[i] = make([]int32, k)
		out.Score[i] = make([]float64, k)
		for p := 0; p < k; p++ {
			out.Idx[i][p] = all[p].id
			out.Score[i][p] = all[p].score
		}
	}
	return out
}

// TestExactPathMatchesBruteForce: a full-probe index (the exactness
// escape hatch) reproduces the brute-force ranking bit for bit.
func TestExactPathMatchesBruteForce(t *testing.T) {
	data := randRows(90, 6, 1)
	queries := randRows(40, 6, 2)
	ix := New(Params{Bits: 4, Probes: 16, Seed: 7})
	if !ix.Params().Exact() {
		t.Fatal("probes = 2^bits should select the exact path")
	}
	ix.Fit(data, 1)
	got := ix.TopK(queries, 5, 1)
	want := bruteTopK(queries, data, 5)
	if !reflect.DeepEqual(got.Idx, want.Idx) || !reflect.DeepEqual(got.Score, want.Score) {
		t.Fatalf("exact index deviates from brute force\ngot  %v\nwant %v", got.Idx[:3], want.Idx[:3])
	}
}

// TestHashedFullGatherMatchesBruteForce: with k = n the hashed path must
// keep probing until the pool covers every row, so the multi-probe
// enumeration exercises every bucket and the output equals brute force —
// a structural test of the CSR buckets and the probe sequence.
func TestHashedFullGatherMatchesBruteForce(t *testing.T) {
	data := randRows(120, 5, 3)
	queries := randRows(30, 5, 4)
	ix := New(Params{Bits: 5, Probes: 1, Seed: 9})
	if ix.Params().Exact() {
		t.Fatal("1 probe of 32 buckets must be approximate")
	}
	ix.Fit(data, 1)
	got := ix.TopK(queries, data.Rows, 1)
	want := bruteTopK(queries, data, data.Rows)
	if !reflect.DeepEqual(got.Idx, want.Idx) || !reflect.DeepEqual(got.Score, want.Score) {
		t.Fatal("k = n forces a full gather; result must equal brute force")
	}
}

// TestDeterministicAcrossWorkers: worker count is a pure perf knob.
func TestDeterministicAcrossWorkers(t *testing.T) {
	data := randRows(400, 8, 5)
	queries := randRows(333, 8, 6)
	run := func(workers int) *Result {
		ix := New(Params{Bits: 6, Probes: 12, Seed: 11})
		ix.Fit(data, workers)
		return ix.TopK(queries, 10, workers)
	}
	base := run(1)
	for _, w := range []int{2, 3, 8} {
		got := run(w)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d changed the result", w)
		}
	}
}

// TestRefitReusesIndex: a loop re-fitting new data into one index (the
// fine-tuning pattern) must behave like a fresh index each time.
func TestRefitReusesIndex(t *testing.T) {
	ix := New(Params{Bits: 5, Probes: 8, Seed: 13})
	for round := int64(0); round < 3; round++ {
		data := randRows(150, 7, 20+round)
		queries := randRows(60, 7, 30+round)
		ix.Fit(data, 2)
		got := ix.TopK(queries, 6, 2)
		fresh := New(Params{Bits: 5, Probes: 8, Seed: 13})
		fresh.Fit(data, 1)
		want := fresh.TopK(queries, 6, 1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: reused index deviates from a fresh one", round)
		}
	}
}

// TestProbeFloorGuaranteesFullRows: even with a tiny probe floor every
// result row holds exactly k entries — queries keep probing until their
// pool reaches k.
func TestProbeFloorGuaranteesFullRows(t *testing.T) {
	data := randRows(200, 6, 8)
	queries := randRows(50, 6, 9)
	ix := New(Params{Bits: 7, Probes: 1, Seed: 3})
	ix.Fit(data, 1)
	k := 25
	res := ix.TopK(queries, k, 1)
	for i, row := range res.Idx {
		if len(row) != k {
			t.Fatalf("query %d gathered only %d of %d candidates", i, len(row), k)
		}
		seen := map[int32]bool{}
		for _, j := range row {
			if seen[j] {
				t.Fatalf("query %d: duplicate candidate %d", i, j)
			}
			seen[j] = true
		}
	}
}

// TestAutoParams pins the resolution rules the config layer documents.
func TestAutoParams(t *testing.T) {
	cases := []struct {
		n, bits int
	}{
		{1, 4}, {256, 4}, {300, 5}, {5000, 9}, {100000, 13}, {1 << 30, MaxBits},
	}
	for _, tc := range cases {
		if got := AutoBits(tc.n); got != tc.bits {
			t.Errorf("AutoBits(%d) = %d, want %d", tc.n, got, tc.bits)
		}
	}
	if got := AutoProbes(4); got != 16 {
		t.Errorf("AutoProbes(4) = %d, want 16 (capped at the bucket count)", got)
	}
	if got := AutoProbes(6); got != 64 {
		t.Errorf("AutoProbes(6) = %d, want 64 (capped at the bucket count)", got)
	}
	if got := AutoProbes(13); got != 208 {
		t.Errorf("AutoProbes(13) = %d, want 208", got)
	}
	if !(Params{Bits: 4, Probes: AutoProbes(4)}).Exact() {
		t.Error("auto probes at 4 bits should reach every bucket (exact)")
	}
}
