package ann

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/htc-align/htc/internal/dense"
)

// randRows builds an n×d matrix of unit-normalised gaussian rows.
func randRows(n, d int, seed int64) *dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := dense.New(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	m.NormalizeRows()
	return m
}

// bruteTopK is the reference: scores every row sequentially and sorts
// by (score desc, id asc).
func bruteTopK(queries, data *dense.Matrix, k int) *Result {
	if k > data.Rows {
		k = data.Rows
	}
	out := &Result{K: k, Idx: make([][]int32, queries.Rows), Score: make([][]float64, queries.Rows)}
	for i := 0; i < queries.Rows; i++ {
		q := queries.Row(i)
		type cand struct {
			id    int32
			score float64
		}
		all := make([]cand, data.Rows)
		for j := range all {
			var s float64
			for l, v := range q {
				s += v * data.Row(j)[l]
			}
			all[j] = cand{int32(j), s}
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].score != all[b].score {
				return all[a].score > all[b].score
			}
			return all[a].id < all[b].id
		})
		out.Idx[i] = make([]int32, k)
		out.Score[i] = make([]float64, k)
		for p := 0; p < k; p++ {
			out.Idx[i][p] = all[p].id
			out.Score[i][p] = all[p].score
		}
	}
	return out
}

// TestExactPathMatchesBruteForce: a full-probe index (the exactness
// escape hatch) reproduces the brute-force ranking bit for bit.
func TestExactPathMatchesBruteForce(t *testing.T) {
	data := randRows(90, 6, 1)
	queries := randRows(40, 6, 2)
	ix := New(Params{Bits: 4, Probes: 16, Seed: 7})
	if !ix.Params().Exact() {
		t.Fatal("probes = 2^bits should select the exact path")
	}
	ix.Fit(data, 1)
	got := ix.TopK(queries, 5, 1)
	want := bruteTopK(queries, data, 5)
	if !reflect.DeepEqual(got.Idx, want.Idx) || !reflect.DeepEqual(got.Score, want.Score) {
		t.Fatalf("exact index deviates from brute force\ngot  %v\nwant %v", got.Idx[:3], want.Idx[:3])
	}
}

// TestHashedFullGatherMatchesBruteForce: with k = n the hashed path must
// keep probing until the pool covers every row, so the multi-probe
// enumeration exercises every bucket and the output equals brute force —
// a structural test of the CSR buckets and the probe sequence.
func TestHashedFullGatherMatchesBruteForce(t *testing.T) {
	data := randRows(120, 5, 3)
	queries := randRows(30, 5, 4)
	ix := New(Params{Bits: 5, Probes: 1, Seed: 9})
	if ix.Params().Exact() {
		t.Fatal("1 probe of 32 buckets must be approximate")
	}
	ix.Fit(data, 1)
	got := ix.TopK(queries, data.Rows, 1)
	want := bruteTopK(queries, data, data.Rows)
	if !reflect.DeepEqual(got.Idx, want.Idx) || !reflect.DeepEqual(got.Score, want.Score) {
		t.Fatal("k = n forces a full gather; result must equal brute force")
	}
}

// TestDeterministicAcrossWorkers: worker count is a pure perf knob.
func TestDeterministicAcrossWorkers(t *testing.T) {
	data := randRows(400, 8, 5)
	queries := randRows(333, 8, 6)
	run := func(workers int) *Result {
		ix := New(Params{Bits: 6, Probes: 12, Seed: 11})
		ix.Fit(data, workers)
		return ix.TopK(queries, 10, workers)
	}
	base := run(1)
	for _, w := range []int{2, 3, 8} {
		got := run(w)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d changed the result", w)
		}
	}
}

// TestRefitReusesIndex: a loop re-fitting new data into one index (the
// fine-tuning pattern) must behave exactly like an index that replays
// the same fit sequence with reuse disabled (RefitEps < 0 recodes every
// row on every Fit). The hash geometry is frozen at the first Fit either
// way, so any deviation isolates the incremental-recode machinery.
func TestRefitReusesIndex(t *testing.T) {
	ix := New(Params{Bits: 5, Probes: 8, Seed: 13})
	full := New(Params{Bits: 5, Probes: 8, Seed: 13, RefitEps: -1})
	for round := int64(0); round < 3; round++ {
		data := randRows(150, 7, 20+round)
		queries := randRows(60, 7, 30+round)
		ix.Fit(data, 2)
		full.Fit(data, 1)
		got := ix.TopK(queries, 6, 2)
		want := full.TopK(queries, 6, 1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: reused index deviates from a full-recode replay", round)
		}
	}
}

// TestProbeFloorGuaranteesFullRows: even with a tiny probe floor every
// result row holds exactly k entries — queries keep probing until their
// pool reaches k.
func TestProbeFloorGuaranteesFullRows(t *testing.T) {
	data := randRows(200, 6, 8)
	queries := randRows(50, 6, 9)
	ix := New(Params{Bits: 7, Probes: 1, Seed: 3})
	ix.Fit(data, 1)
	k := 25
	res := ix.TopK(queries, k, 1)
	for i, row := range res.Idx {
		if len(row) != k {
			t.Fatalf("query %d gathered only %d of %d candidates", i, len(row), k)
		}
		seen := map[int32]bool{}
		for _, j := range row {
			if seen[j] {
				t.Fatalf("query %d: duplicate candidate %d", i, j)
			}
			seen[j] = true
		}
	}
}

// TestAutoParams pins the resolution rules the config layer documents.
func TestAutoParams(t *testing.T) {
	cases := []struct {
		n, bits int
	}{
		{1, 4}, {256, 4}, {300, 5}, {5000, 9}, {100000, 13}, {1 << 30, MaxBits},
	}
	for _, tc := range cases {
		if got := AutoBits(tc.n); got != tc.bits {
			t.Errorf("AutoBits(%d) = %d, want %d", tc.n, got, tc.bits)
		}
	}
	if got := AutoProbes(4); got != 16 {
		t.Errorf("AutoProbes(4) = %d, want 16 (capped at the bucket count)", got)
	}
	if got := AutoProbes(6); got != 64 {
		t.Errorf("AutoProbes(6) = %d, want 64 (capped at the bucket count)", got)
	}
	if got := AutoProbes(13); got != 208 {
		t.Errorf("AutoProbes(13) = %d, want 208", got)
	}
	if !(Params{Bits: 4, Probes: AutoProbes(4)}).Exact() {
		t.Error("auto probes at 4 bits should reach every bucket (exact)")
	}
}

// recallOf measures candidate recall: the fraction of the reference
// top-k ids the approximate result recovered, pooled over all queries.
func recallOf(got, want *Result) float64 {
	var hit, total int
	for i := range want.Idx {
		w := make(map[int32]bool, len(want.Idx[i]))
		for _, j := range want.Idx[i] {
			w[j] = true
		}
		for _, j := range got.Idx[i] {
			if w[j] {
				hit++
			}
		}
		total += len(want.Idx[i])
	}
	return float64(hit) / float64(total)
}

// normalizeRow scales one row to unit L2 norm in place.
func normalizeRow(row []float64) {
	var s float64
	for _, v := range row {
		s += v * v
	}
	if s == 0 {
		return
	}
	inv := 1 / math.Sqrt(s)
	for j := range row {
		row[j] *= inv
	}
}

// TestRefitBitStableWhenUnmoved: re-fitting the identical matrix must
// reuse every row's code and leave results bit-identical — the zero-rows
// -moved end of the incremental refit.
func TestRefitBitStableWhenUnmoved(t *testing.T) {
	data := randRows(500, 8, 17)
	queries := randRows(120, 8, 18)
	ix := New(Params{Bits: 6, Probes: 12, Seed: 5})
	ix.Fit(data, 2)
	want := ix.TopK(queries, 8, 2)
	ix.Fit(data, 2)
	got := ix.TopK(queries, 8, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("re-fitting unchanged data changed the results")
	}
	st := ix.Stats()
	if st.Reused != 500 {
		t.Fatalf("second fit of unchanged data reused %d of 500 rows", st.Reused)
	}
	if st.Recoded != 500 {
		t.Fatalf("recoded %d rows, want 500 (the first fit only)", st.Recoded)
	}
	if st.Fits != 2 || st.Rows != 1000 {
		t.Fatalf("stats miscounted fits/rows: %+v", st)
	}
}

// TestRefitPartialRecodeMatchesFullRecode is the refit property test:
// after some rows move far past the epsilon and the rest stay
// bit-identical, the partially recoded index must match a full-recode
// replay of the same fit sequence exactly, and the reuse counters must
// account for precisely the unmoved rows.
func TestRefitPartialRecodeMatchesFullRecode(t *testing.T) {
	for _, tc := range []struct {
		n, d int
		seed int64
	}{
		{300, 8, 21}, {1200, 12, 22}, {700, 5, 23},
	} {
		a := randRows(tc.n, tc.d, tc.seed)
		b := a.Clone()
		rng := rand.New(rand.NewSource(tc.seed + 100))
		moved := 0
		for i := 0; i < tc.n; i++ {
			if rng.Float64() < 0.3 {
				row := b.Row(i)
				for j := range row {
					row[j] += 0.5 * rng.NormFloat64()
				}
				normalizeRow(row)
				moved++
			}
		}
		queries := randRows(150, tc.d, tc.seed+200)
		inc := New(Params{Bits: 6, Probes: 10, Seed: 29})
		ref := New(Params{Bits: 6, Probes: 10, Seed: 29, RefitEps: -1})
		inc.Fit(a, 2)
		ref.Fit(a, 1)
		inc.Fit(b, 2)
		ref.Fit(b, 1)
		got := inc.TopK(queries, 9, 2)
		want := ref.TopK(queries, 9, 1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d seed=%d: partial recode deviates from full-recode replay", tc.n, tc.seed)
		}
		st := inc.Stats()
		if st.Reused != int64(tc.n-moved) || st.Recoded != int64(tc.n+moved) {
			t.Fatalf("n=%d: reused %d recoded %d, want %d / %d",
				tc.n, st.Reused, st.Recoded, tc.n-moved, tc.n+moved)
		}
		if ratio := st.ReuseRatio(); ratio <= 0 {
			t.Fatalf("reuse ratio = %v, want > 0", ratio)
		}
	}
}

// TestRefitDriftKeepsRecall: the default epsilon lets sub-epsilon drift
// accumulate stale marginal bits; multi-probe must absorb them. All rows
// drift slightly, a quarter move hard, and candidate recall against the
// exact ranking of the *new* data must hold.
func TestRefitDriftKeepsRecall(t *testing.T) {
	const n, d, k = 2000, 10, 16
	a := randRows(n, d, 31)
	b := a.Clone()
	rng := rand.New(rand.NewSource(131))
	for i := 0; i < n; i++ {
		row := b.Row(i)
		scale := 0.003
		if rng.Float64() < 0.25 {
			scale = 0.5
		}
		for j := range row {
			row[j] += scale * rng.NormFloat64()
		}
		normalizeRow(row)
	}
	queries := randRows(300, d, 32)
	ix := New(Params{Bits: 8, Probes: 128, Seed: 3})
	ix.Fit(a, 2)
	ix.Fit(b, 2)
	st := ix.Stats()
	if st.Reused == 0 {
		t.Fatal("sub-epsilon drift should have reused some codes")
	}
	if st.Recoded <= n {
		t.Fatal("hard-moved rows should have been recoded")
	}
	got := ix.TopK(queries, k, 2)
	want := bruteTopK(queries, b, k)
	if r := recallOf(got, want); r < 0.95 {
		t.Fatalf("recall after drift = %.3f, want >= 0.95", r)
	}
}

// TestPoolCapBoundsPool: a pool cap bounds every query's gathered pool
// at max(k, PoolCap) rows, result rows stay full and duplicate-free, and
// the margin-ordered truncation keeps recall high — the capped pool
// drops the most expensive buckets, not the nearest ones.
func TestPoolCapBoundsPool(t *testing.T) {
	const n, k, cap = 2000, 10, 600
	data := randRows(n, 8, 41)
	queries := randRows(250, 8, 42)
	capped := New(Params{Bits: 8, Probes: 128, PoolCap: cap, Seed: 7})
	capped.Fit(data, 2)
	got := capped.TopK(queries, k, 2)
	st := capped.Stats()
	if st.PoolRowsMax > cap {
		t.Fatalf("pool reached %d rows, cap is %d", st.PoolRowsMax, cap)
	}
	if st.PoolRowsMax == 0 || st.Queries != 250 {
		t.Fatalf("pool stats not recorded: %+v", st)
	}
	for i, row := range got.Idx {
		if len(row) != k {
			t.Fatalf("query %d returned %d of %d rows", i, len(row), k)
		}
		seen := map[int32]bool{}
		for _, j := range row {
			if seen[j] {
				t.Fatalf("query %d: duplicate candidate %d", i, j)
			}
			seen[j] = true
		}
	}
	if r := recallOf(got, bruteTopK(queries, data, k)); r < 0.95 {
		t.Fatalf("recall under pool cap = %.3f, want >= 0.95", r)
	}
	// A cap below k is lifted to k: rows must still come back full.
	tiny := New(Params{Bits: 6, Probes: 4, PoolCap: 1, Seed: 7})
	tiny.Fit(data, 1)
	res := tiny.TopK(queries, k, 1)
	for i, row := range res.Idx {
		if len(row) != k {
			t.Fatalf("cap < k: query %d returned %d of %d rows", i, len(row), k)
		}
	}
}

// skewPair mirrors the GCN collapse the balancing exists for: every row
// is ±√(1−ρ²)·v (one shared dominant direction) plus a ρ-scaled unit
// residual drawn from a rank-r subspace orthogonal to v — collapsed
// embeddings keep a dominant direction AND low effective rank. Raw SRP
// bits all follow sign(±v·g), so the unbalanced index piles most rows
// into a few hot buckets, while the ranking signal lives entirely in
// the residuals. Data and queries share the same v and subspace, as two
// fine-tune iterations of one embedding would.
func skewPair(n, nq, d, r int, rho float64, seed int64) (data, queries *dense.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	// Orthonormal basis: v plus r residual directions, by Gram-Schmidt.
	basis := make([][]float64, r+1)
	for b := range basis {
		u := make([]float64, d)
		for j := range u {
			u[j] = rng.NormFloat64()
		}
		for _, prev := range basis[:b] {
			var p float64
			for j := range u {
				p += u[j] * prev[j]
			}
			for j := range u {
				u[j] -= p * prev[j]
			}
		}
		normalizeRow(u)
		basis[b] = u
	}
	v := basis[0]
	a := math.Sqrt(1 - rho*rho)
	w := make([]float64, r)
	gen := func(rows int) *dense.Matrix {
		m := dense.New(rows, d)
		for i := 0; i < rows; i++ {
			c := a
			if rng.Intn(2) == 1 {
				c = -a
			}
			for l := range w {
				w[l] = rng.NormFloat64()
			}
			normalizeRow(w)
			row := m.Row(i)
			for j := range row {
				row[j] = c * v[j]
				for l, u := range basis[1:] {
					row[j] += rho * w[l] * u[j]
				}
			}
		}
		return m
	}
	return gen(n), gen(nq)
}

// TestSkewBalancedBeatsUnbalanced is the tentpole property, tested
// across sizes and seeds: on collapse-skewed rows the balanced index
// gathers ≥ 5× fewer pool rows per query than the unbalanced one at
// equal bits/probes, while keeping candidate recall ≥ 0.95 against the
// exact ranking.
func TestSkewBalancedBeatsUnbalanced(t *testing.T) {
	for _, tc := range []struct {
		n    int
		seed int64
	}{
		{5000, 51}, {8000, 52},
	} {
		const d, k = 16, 16
		data, queries := skewPair(tc.n, 400, d, 4, 0.2, tc.seed)
		p := Params{Bits: 11, Probes: 48, Seed: 19}
		balanced := New(p)
		balanced.Fit(data, 2)
		gotB := balanced.TopK(queries, k, 2)
		pu := p
		pu.Unbalanced = true
		unbalanced := New(pu)
		unbalanced.Fit(data, 2)
		unbalanced.TopK(queries, k, 2)
		mb := balanced.Stats().PoolRowsMean()
		mu := unbalanced.Stats().PoolRowsMean()
		if mb <= 0 || mu <= 0 {
			t.Fatalf("n=%d: pool stats missing (balanced %.1f, unbalanced %.1f)", tc.n, mb, mu)
		}
		if mu < 5*mb {
			t.Errorf("n=%d seed=%d: unbalanced mean pool %.1f not >= 5x balanced %.1f",
				tc.n, tc.seed, mu, mb)
		}
		if r := recallOf(gotB, bruteTopK(queries, data, k)); r < 0.95 {
			t.Errorf("n=%d seed=%d: balanced recall on skewed rows = %.3f, want >= 0.95",
				tc.n, tc.seed, r)
		}
		st := balanced.Stats()
		if st.Buckets != 1<<11 {
			t.Fatalf("stats report %d buckets, want %d", st.Buckets, 1<<11)
		}
		var occupied int64
		for _, c := range st.Occupancy {
			occupied += c
		}
		if occupied == 0 || occupied > int64(st.Buckets) {
			t.Fatalf("occupancy histogram inconsistent: %v", st.Occupancy)
		}
	}
}
