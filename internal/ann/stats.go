package ann

// Stats is an index's skew-observability block: how balanced the hash
// came out, how much work queries did, and how much of the fine-tuning
// refit work was reused. Fit and TopK accumulate into it; Index.Stats
// returns a copy, and Merge folds the stats of several indexes (the two
// directions of a fine-tune loop, the per-orbit runs of a pipeline) into
// one block. Counter sums are order-independent, so merged totals are
// deterministic regardless of worker count or merge order.
type Stats struct {
	// Fits counts Fit calls; Rows counts rows hashed across them (zero
	// on the exact path, which skips hashing).
	Fits int64
	Rows int64
	// Buckets and MaxBucket describe the last fit's table: bucket count
	// 2^Bits and the largest first-level bucket occupancy. Rehashed
	// counts the oversized buckets given a second-level table on the
	// last fit.
	Buckets   int
	MaxBucket int
	Rehashed  int64
	// Occupancy is the last fit's bucket-occupancy histogram in log2
	// bins: Occupancy[i] counts non-empty buckets holding [2^(i-1), 2^i)
	// rows (bin 1 = exactly 1 row). A balanced hash concentrates around
	// the mean-occupancy bin; a skewed one grows a long tail.
	Occupancy []int64
	// Reused and Recoded partition the rows of every non-fresh Fit: a
	// row is reused when it moved less than RefitEps since its last
	// recode and kept its code. The first Fit recodes everything.
	Reused  int64
	Recoded int64
	// Queries, PoolRows and PoolRowsMax describe query-side work: total
	// queries answered, total candidate rows gathered for re-ranking,
	// and the largest single pool. PoolRows/Queries is the mean pool —
	// the series the skew benchmark gates.
	Queries     int64
	PoolRows    int64
	PoolRowsMax int
}

// Merge folds o into s: counters add, maxima take the larger side, and
// the occupancy histograms add elementwise.
func (s *Stats) Merge(o Stats) {
	s.Fits += o.Fits
	s.Rows += o.Rows
	if o.Buckets > s.Buckets {
		s.Buckets = o.Buckets
	}
	if o.MaxBucket > s.MaxBucket {
		s.MaxBucket = o.MaxBucket
	}
	s.Rehashed += o.Rehashed
	if len(o.Occupancy) > 0 {
		if s.Occupancy == nil {
			s.Occupancy = make([]int64, len(o.Occupancy))
		}
		for i, v := range o.Occupancy {
			if i < len(s.Occupancy) {
				s.Occupancy[i] += v
			}
		}
	}
	s.Reused += o.Reused
	s.Recoded += o.Recoded
	s.Queries += o.Queries
	s.PoolRows += o.PoolRows
	if o.PoolRowsMax > s.PoolRowsMax {
		s.PoolRowsMax = o.PoolRowsMax
	}
}

// PoolRowsMean returns the mean candidate-pool size per query, 0 before
// any query ran.
func (s Stats) PoolRowsMean() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.PoolRows) / float64(s.Queries)
}

// ReuseRatio returns the fraction of fitted rows whose codes were reused
// instead of recomputed, 0 before any fit hashed rows.
func (s Stats) ReuseRatio() float64 {
	total := s.Reused + s.Recoded
	if total == 0 {
		return 0
	}
	return float64(s.Reused) / float64(total)
}
