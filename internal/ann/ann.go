// Package ann is the approximate candidate generator behind the "ann"
// similarity backend: a signed-random-projection LSH index over the rows
// of a dense matrix. Rows hash into 2^Bits buckets by the sign pattern of
// Bits random projections; a query scans its own bucket plus the
// cheapest perturbed buckets in multi-probe order (Lv et al., VLDB'07)
// and exactly re-ranks the gathered pool by inner product. Probing every
// bucket degrades gracefully into a brute-force scan, which is the
// exactness escape hatch: a full-probe index reproduces the blocked
// exact top-k scan bit for bit.
//
// The hash is data-aware: the index centers the fitted rows and draws
// its hyperplanes through a sampled-covariance whitening rotation, so
// every bit splits the data roughly in half even when the rows collapse
// toward a dominant direction (the GCN failure mode on low-signal
// graphs). Buckets that still come out oversized are re-hashed one level
// deeper with a fresh locally-centered plane set (see balance.go), and a
// per-query pool cap can bound the gathered candidate pool in
// margin-probe order. Params.Unbalanced restores the raw SRP index for
// A/B comparison.
//
// Refitting the same-shaped matrix into an index (the fine-tuning loop)
// is incremental: the planes and whitening are frozen at the first Fit,
// and only rows that moved beyond Params.RefitEps since their last
// recode are re-projected — unmoved rows keep their codes, and the
// bucket arrays are rebuilt in place.
//
// The package is metric-agnostic — it ranks by plain inner product — so
// the caller owns the metric: the align layer centers and row-normalises
// embeddings first, turning inner products into Pearson correlations.
// Everything is deterministic: the hyperplanes are drawn from the seed,
// bucket assembly is a stable counting sort, probe order breaks cost
// ties by perturbation mask, and re-ranking scores every candidate with
// the same sequential dot product as the dense kernel, so results are
// identical for every worker count.
package ann

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/par"
)

// MaxBits caps the code width: the bucket-offset table costs O(2^Bits),
// so 20 bits (1M buckets, 4 MB of offsets) is the widest code worth
// paying for before the table dominates the candidate structures.
const MaxBits = 20

// defaultRefitEps is the relative row movement below which a refit keeps
// a row's code instead of re-projecting it. A unit-norm row moving 2% in
// L2 tilts by about a degree — only bits whose margin is within that
// sliver can go stale, and those are exactly the buckets the multi-probe
// sequence visits first anyway, so candidate recall is unaffected (see
// TestRefitDriftKeepsRecall).
const defaultRefitEps = 0.02

// Params fix an index's geometry. The align/core layers resolve zero
// values to AutoBits/AutoProbes before building an index.
type Params struct {
	// Bits is the code width b ∈ [1, MaxBits]: rows hash into 2^b
	// buckets by the sign pattern of b random projections.
	Bits int
	// Probes is the minimum number of buckets scanned per query, visited
	// in multi-probe order (cheapest perturbations of the query's own
	// code first). A query keeps probing past this floor until it has
	// gathered at least k candidates, so result rows are always full.
	// Probes ≥ 2^Bits selects the brute-force exact path.
	Probes int
	// PoolCap, when positive, bounds the candidate pool gathered per
	// query to max(k, PoolCap) rows: buckets arrive in margin order
	// (cheapest perturbations first), so the cap truncates the
	// costliest, least promising buckets. 0 leaves the pool unbounded.
	PoolCap int
	// RefitEps tunes the incremental refit: re-fitting a same-shaped
	// matrix re-projects only the rows whose relative L2 movement since
	// their last recode exceeds the epsilon. 0 selects defaultRefitEps;
	// a negative value disables reuse entirely (every Fit recodes every
	// row — the reference the refit tests compare against).
	RefitEps float64
	// Unbalanced disables the data-aware balancing — centering, the
	// whitening rotation and the hierarchical re-hash of oversized
	// buckets — restoring the raw SRP index. Kept as the A/B baseline
	// for the skew benchmarks; leave it false in production.
	Unbalanced bool
	// Seed drives the hyperplane draw; equal seeds give identical
	// indexes.
	Seed int64
}

// Exact reports whether the parameters probe every bucket, i.e. select
// the brute-force scan that reproduces the exact top-k bit for bit.
func (p Params) Exact() bool { return p.Probes >= 1<<p.Bits }

// AutoBits picks a code width for n indexed rows, targeting a mean
// bucket occupancy of ~16 rows and clamping to [4, MaxBits].
func AutoBits(n int) int {
	b := 4
	for b < MaxBits && n > 16<<b {
		b++
	}
	return b
}

// AutoProbes picks a default probe count for a code width: 16·bits,
// capped at the bucket count. The linear-in-bits schedule keeps measured
// candidate recall ≥ 0.95 on embedding-like inputs while the probed
// bucket fraction shrinks as the input grows — every bucket at ≤ 6 bits
// (exact), ~28% at 9 bits, ~2.5% at 13 bits (100k rows).
func AutoProbes(bits int) int {
	p := 16 * bits
	if full := 1 << bits; p > full {
		p = full
	}
	return p
}

// Result holds every query's top-k ids and scores; rows are sorted by
// descending score with ties broken by lower id — the same order the
// exact blocked scan produces. All rows share two backing arrays, and
// the layout mirrors align.Candidates so that layer can adopt the
// slices without copying.
type Result struct {
	K     int
	Idx   [][]int32
	Score [][]float64
}

// Index is a signed-random-projection LSH index over the rows of one
// matrix. Fit hashes the rows; TopK answers batched queries. An Index is
// reusable across Fit calls (a fine-tuning loop re-fits each iteration's
// embeddings into the same scratch, incrementally) but not concurrently
// usable.
type Index struct {
	p      Params
	data   *dense.Matrix   // fitted rows (borrowed, not copied); nil on the f32 tier
	data32 *dense.Matrix32 // fitted rows of the f32 tier; exactly one of data/data32 is set
	n      int

	planes *dense.Matrix   // Bits×d effective hyperplanes: G·T, whitened unless Unbalanced
	bias   []float64       // per-bit centering offsets μ·w̃ (zero when Unbalanced)
	xform  *dense.Matrix   // d×d whitening transform T (nil when Unbalanced)
	snap   *dense.Matrix   // row values as of each row's last recode
	snap32 *dense.Matrix32 // f32-tier snapshot (mirrors snap)
	proj   *dense.Matrix   // n×Bits row projections (scratch)
	codes  []uint32        // per-row bucket code
	start  []int32         // CSR bucket offsets, len 2^Bits+1
	order  []int32         // row ids grouped by bucket, stable in row order
	cursor []int32         // counting-sort scratch

	subs      []subTable // second-level tables of re-hashed oversized buckets
	subOf     []int32    // per bucket: index into subs, or -1
	subBudget int        // max rows a probed re-hashed bucket contributes
	subCode   []uint32   // sub-rehash scratch
	subTmp    []int32
	subCursor []int32
	subMean   []float64

	workers []searcher // per-worker query scratch
	stats   Stats
}

// New validates the parameters and returns an empty index; Fit must run
// before TopK.
func New(p Params) *Index {
	if p.Bits < 1 || p.Bits > MaxBits {
		panic(fmt.Sprintf("ann: Bits = %d outside [1, %d]", p.Bits, MaxBits))
	}
	if p.Probes < 1 {
		panic(fmt.Sprintf("ann: Probes = %d < 1", p.Probes))
	}
	return &Index{p: p}
}

// Params returns the index geometry.
func (ix *Index) Params() Params { return ix.p }

// Stats returns a copy of the index's cumulative skew-observability
// counters (see Stats).
func (ix *Index) Stats() Stats {
	st := ix.stats
	st.Occupancy = append([]int64(nil), ix.stats.Occupancy...)
	return st
}

// Fit (re)hashes the rows of data into the index. The matrix is
// borrowed: it must stay unmodified until the next Fit. On the exact
// path hashing is skipped entirely — a full-probe query scans every row
// anyway.
//
// The first Fit freezes the hash geometry: hyperplanes are drawn from
// the seed and rotated/centered against the fitted data (see
// buildTransform). A later Fit of a same-shaped matrix is incremental —
// it re-projects only the rows that moved beyond RefitEps since their
// last recode, reuses every other code, and rebuilds the bucket arrays
// in place. A shape change rebuilds the index from scratch.
func (ix *Index) Fit(data *dense.Matrix, workers int) {
	ix.data = data
	ix.data32 = nil
	ix.n = data.Rows
	ix.stats.Fits++
	if ix.p.Exact() || ix.n == 0 {
		return
	}
	ix.stats.Rows += int64(ix.n)
	fresh := ix.planes == nil || ix.planes.Cols != data.Cols ||
		ix.snap == nil || ix.snap.Rows != ix.n
	if fresh {
		ix.buildTransform(data.Cols, data.Rows, data.Row)
	}
	ix.codes = growInt32sAsU32(ix.codes, ix.n)
	if fresh || ix.p.RefitEps < 0 {
		// Full (re)projection — the kernel is deterministic for every
		// worker count, so the codes are too.
		ix.proj = dense.Ensure(ix.proj, ix.n, ix.p.Bits)
		dense.MulBTInto(ix.proj, data, ix.planes, workers)
		par.For(workers, ix.n, ix.p.Bits, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var c uint32
				for j, v := range ix.proj.Row(i) {
					if v-ix.bias[j] >= 0 {
						c |= 1 << uint(j)
					}
				}
				ix.codes[i] = c
			}
		})
		ix.snap = dense.Ensure(ix.snap, ix.n, data.Cols)
		ix.snap.CopyFrom(data)
		ix.stats.Recoded += int64(ix.n)
	} else {
		ix.refit(data, workers)
	}
	ix.buildBuckets()
	ix.buildSubs()
}

// refit is the incremental path of Fit: rows whose relative movement
// since their last recode stays within the epsilon keep their codes;
// the rest are re-projected one by one with the same sequential dot
// product as the batch kernel, so a partial recode is bit-identical to
// a full one.
func (ix *Index) refit(data *dense.Matrix, workers int) {
	eps := ix.p.RefitEps
	if eps == 0 {
		eps = defaultRefitEps
	}
	eps2 := eps * eps
	nbits := ix.p.Bits
	var recoded atomic.Int64
	par.For(workers, ix.n, 2*data.Cols*(nbits+1), func(lo, hi int) {
		var rc int64
		for i := lo; i < hi; i++ {
			row, old := data.Row(i), ix.snap.Row(i)
			var d2, n2 float64
			for l, v := range row {
				dl := v - old[l]
				d2 += dl * dl
				n2 += v * v
			}
			if d2 <= eps2*n2 {
				continue
			}
			var c uint32
			for j := 0; j < nbits; j++ {
				if dot(row, ix.planes.Row(j))-ix.bias[j] >= 0 {
					c |= 1 << uint(j)
				}
			}
			ix.codes[i] = c
			copy(old, row)
			rc++
		}
		recoded.Add(rc)
	})
	rc := recoded.Load()
	ix.stats.Recoded += rc
	ix.stats.Reused += int64(ix.n) - rc
}

// Fit32 is Fit for the float32 compute tier: the same hash geometry and
// incremental-refit contract over half-width rows. Projections and
// movement tests accumulate in float64 (see dot32), so codes are exactly
// as deterministic as the float64 tier's. An index fitted with Fit32
// answers queries through TopK32.
func (ix *Index) Fit32(data *dense.Matrix32, workers int) {
	ix.data = nil
	ix.data32 = data
	ix.n = data.Rows
	ix.stats.Fits++
	if ix.p.Exact() || ix.n == 0 {
		return
	}
	ix.stats.Rows += int64(ix.n)
	fresh := ix.planes == nil || ix.planes.Cols != data.Cols ||
		ix.snap32 == nil || ix.snap32.Rows != ix.n
	if fresh {
		// The whitening sample reads ~annSampleTarget rows; widening them
		// through one reused buffer keeps the transform math — and hence
		// the frozen geometry — in float64 regardless of the tier.
		buf := make([]float64, data.Cols)
		ix.buildTransform(data.Cols, data.Rows, func(i int) []float64 {
			for j, v := range data.Row(i) {
				buf[j] = float64(v)
			}
			return buf
		})
	}
	ix.codes = growInt32sAsU32(ix.codes, ix.n)
	if fresh || ix.p.RefitEps < 0 {
		ix.proj = dense.Ensure(ix.proj, ix.n, ix.p.Bits)
		dense.MulBTMixed32Into(ix.proj, data, ix.planes, workers)
		par.For(workers, ix.n, ix.p.Bits, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var c uint32
				for j, v := range ix.proj.Row(i) {
					if v-ix.bias[j] >= 0 {
						c |= 1 << uint(j)
					}
				}
				ix.codes[i] = c
			}
		})
		ix.snap32 = dense.Ensure32(ix.snap32, ix.n, data.Cols)
		ix.snap32.CopyFrom(data)
		ix.stats.Recoded += int64(ix.n)
	} else {
		ix.refit32(data, workers)
	}
	ix.buildBuckets()
	ix.buildSubs()
}

// refit32 mirrors refit over float32 rows: movement and re-projection
// accumulate in float64, and a per-row recode is bit-identical to the
// batch mixed-precision projection.
func (ix *Index) refit32(data *dense.Matrix32, workers int) {
	eps := ix.p.RefitEps
	if eps == 0 {
		eps = defaultRefitEps
	}
	eps2 := eps * eps
	nbits := ix.p.Bits
	var recoded atomic.Int64
	par.For(workers, ix.n, 2*data.Cols*(nbits+1), func(lo, hi int) {
		var rc int64
		for i := lo; i < hi; i++ {
			row, old := data.Row(i), ix.snap32.Row(i)
			var d2, n2 float64
			for l, v := range row {
				dl := float64(v) - float64(old[l])
				d2 += dl * dl
				n2 += float64(v) * float64(v)
			}
			if d2 <= eps2*n2 {
				continue
			}
			var c uint32
			for j := 0; j < nbits; j++ {
				if dot32(row, ix.planes.Row(j))-ix.bias[j] >= 0 {
					c |= 1 << uint(j)
				}
			}
			ix.codes[i] = c
			copy(old, row)
			rc++
		}
		recoded.Add(rc)
	})
	rc := recoded.Load()
	ix.stats.Recoded += rc
	ix.stats.Reused += int64(ix.n) - rc
}

// buildBuckets (re)assembles the CSR buckets from the codes — a stable
// counting sort: offsets, then rows in ascending id order within each
// bucket — and refreshes the last-fit occupancy statistics.
func (ix *Index) buildBuckets() {
	nb := 1 << ix.p.Bits
	ix.start = growInt32s(ix.start, nb+1)
	ix.cursor = growInt32s(ix.cursor, nb)
	for i := range ix.start[:nb+1] {
		ix.start[i] = 0
	}
	for _, c := range ix.codes[:ix.n] {
		ix.start[c+1]++
	}
	for b := 0; b < nb; b++ {
		ix.start[b+1] += ix.start[b]
	}
	copy(ix.cursor, ix.start[:nb])
	ix.order = growInt32s(ix.order, ix.n)
	for i, c := range ix.codes[:ix.n] {
		ix.order[ix.cursor[c]] = int32(i)
		ix.cursor[c]++
	}
	ix.stats.Buckets = nb
	ix.stats.MaxBucket = 0
	if ix.stats.Occupancy == nil {
		ix.stats.Occupancy = make([]int64, 33)
	}
	for i := range ix.stats.Occupancy {
		ix.stats.Occupancy[i] = 0
	}
	for b := 0; b < nb; b++ {
		size := int(ix.start[b+1] - ix.start[b])
		if size > ix.stats.MaxBucket {
			ix.stats.MaxBucket = size
		}
		if size > 0 {
			ix.stats.Occupancy[bits.Len32(uint32(size))]++
		}
	}
}

// annBlockRows sizes the per-worker query batches of TopK.
const annBlockRows = 128

// TopK returns, for every query row, its k best fitted rows by inner
// product, each result row sorted descending (ties by lower id). k is
// clamped to the fitted row count; every result row then holds exactly k
// entries — queries keep probing past the Probes floor until their pool
// reaches k. Results are bit-identical for every worker count, and on
// the exact path bit-identical to the blocked exact scan.
func (ix *Index) TopK(queries *dense.Matrix, k, workers int) *Result {
	return ix.topk(queries.Rows, k, workers, func(s *searcher, r, kk int, outIdx []int32, outScore []float64) {
		ix.search(s, queries.Row(r), nil, kk, outIdx, outScore)
	})
}

// TopK32 answers batched queries on the float32 tier, against an index
// fitted with Fit32. The probe machinery is shared with TopK; only the
// three row-scoring points (query projection, sub-bucket projection,
// exact re-rank) read half-width values, each with a float64
// accumulator. Re-rank scores round to float32 before the final widen —
// the same store semantics as dense.MulBTInto32 — so a full-probe
// float32 index reproduces the blocked float32 top-k scan bit for bit.
func (ix *Index) TopK32(queries *dense.Matrix32, k, workers int) *Result {
	return ix.topk(queries.Rows, k, workers, func(s *searcher, r, kk int, outIdx []int32, outScore []float64) {
		ix.search(s, nil, queries.Row(r), kk, outIdx, outScore)
	})
}

// topk is the tier-agnostic batching wrapper behind TopK/TopK32: result
// allocation, pool-cap resolution, worker scratch, block sharding and
// the deterministic stats fold.
func (ix *Index) topk(nq, k, workers int, query func(s *searcher, r, k int, outIdx []int32, outScore []float64)) *Result {
	if k < 1 {
		panic(fmt.Sprintf("ann: TopK k = %d < 1", k))
	}
	if k > ix.n {
		k = ix.n
	}
	out := &Result{
		K:     k,
		Idx:   make([][]int32, nq),
		Score: make([][]float64, nq),
	}
	idxBack := make([]int32, nq*k)
	scoreBack := make([]float64, nq*k)
	for i := 0; i < nq; i++ {
		out.Idx[i] = idxBack[i*k : i*k+k : i*k+k]
		out.Score[i] = scoreBack[i*k : i*k+k : i*k+k]
	}
	if nq == 0 || k == 0 {
		return out
	}
	pcap := 0
	if ix.p.PoolCap > 0 {
		pcap = ix.p.PoolCap
		if pcap < k {
			pcap = k
		}
	}
	nBlocks := (nq + annBlockRows - 1) / annBlockRows
	w := par.Resolve(workers)
	if w > nBlocks {
		w = nBlocks
	}
	if len(ix.workers) < w {
		ix.workers = append(ix.workers, make([]searcher, w-len(ix.workers))...)
	}
	for i := 0; i < w; i++ {
		s := &ix.workers[i]
		s.cap = pcap
		s.queries, s.poolRows, s.maxPool = 0, 0, 0
	}
	par.Sharded(w, nBlocks, func(worker, blk int) {
		s := &ix.workers[worker]
		lo := blk * annBlockRows
		hi := lo + annBlockRows
		if hi > nq {
			hi = nq
		}
		for r := lo; r < hi; r++ {
			query(s, r, k, out.Idx[r], out.Score[r])
		}
	})
	// Fold the per-worker counters into the index stats. Integer sums
	// are order-independent, so the totals are deterministic for every
	// worker count.
	for i := 0; i < w; i++ {
		s := &ix.workers[i]
		ix.stats.Queries += s.queries
		ix.stats.PoolRows += s.poolRows
		if s.maxPool > ix.stats.PoolRowsMax {
			ix.stats.PoolRowsMax = s.maxPool
		}
	}
	return out
}

// searcher is one worker's private query scratch.
type searcher struct {
	z    []float64 // query projections (bias-adjusted)
	abs  []float64 // projection margins |z|
	perm []int     // bit positions sorted by ascending margin
	heap probeHeap // pending perturbation sets of the main probe loop
	pool []int32
	// deferred holds (lo, hi) pairs of order-array segments set aside by
	// sub-bucketed gathers: the parent-bucket rows beyond the sub-probe
	// budget, drained in probe order only if the pool falls short of k.
	deferred []int32
	// Sub-probe scratch: the same margin/heap machinery one level down,
	// over a re-hashed bucket's second-level table.
	subZ    []float64
	subAbs  []float64
	subPerm []int
	subHeap probeHeap
	visited []int32 // (lo, hi) sub-bucket spans taken from the current bucket

	q   []float64 // current query row (borrowed during one search; nil on the f32 tier)
	q32 []float32 // current f32-tier query row (exactly one of q/q32 is set)
	cap int       // effective pool cap for this TopK call (0 = none)
	sel selHeap

	queries  int64 // per-TopK stat accumulators
	poolRows int64
	maxPool  int
}

// take appends candidate rows to the pool, honouring the pool cap.
func (s *searcher) take(rows []int32) {
	if s.cap > 0 {
		if room := s.cap - len(s.pool); room < len(rows) {
			if room <= 0 {
				return
			}
			rows = rows[:room]
		}
	}
	s.pool = append(s.pool, rows...)
}

// wantMore reports whether the probe loop should keep visiting buckets:
// past the configured floor only while the pool is short of k, and never
// once the pool cap is reached.
func (s *searcher) wantMore(k, probed, floor int) bool {
	if s.cap > 0 && len(s.pool) >= s.cap {
		return false
	}
	return probed < floor || len(s.pool) < k
}

// search fills one query's k best rows. The approximate path hashes the
// query, walks buckets in multi-probe order until it has probed the
// configured count and gathered ≥ k candidates, and exactly re-ranks the
// pool; the exact path scans every row. Exactly one of q/q32 is non-nil
// and selects the precision tier — both tiers share every structural
// step and differ only where a row is scored.
func (ix *Index) search(s *searcher, q []float64, q32 []float32, k int, outIdx []int32, outScore []float64) {
	s.queries++
	if ix.p.Exact() {
		s.poolRows += int64(ix.n)
		if ix.n > s.maxPool {
			s.maxPool = ix.n
		}
		if q32 != nil {
			s.sel.selectRows32(outIdx, outScore, q32, ix.data32, nil, ix.n)
		} else {
			s.sel.selectRows(outIdx, outScore, q, ix.data, nil, ix.n)
		}
		return
	}
	s.q = q
	s.q32 = q32
	nbits := ix.p.Bits
	s.z = resize(s.z, nbits)
	s.abs = resize(s.abs, nbits)
	for j := 0; j < nbits; j++ {
		if q32 != nil {
			s.z[j] = dot32(q32, ix.planes.Row(j)) - ix.bias[j]
		} else {
			s.z[j] = dot(q, ix.planes.Row(j)) - ix.bias[j]
		}
		s.abs[j] = math.Abs(s.z[j])
	}
	var code uint32
	for j, v := range s.z {
		if v >= 0 {
			code |= 1 << uint(j)
		}
	}
	// Sort bit positions by ascending margin (ties by lower position):
	// flipping a near-zero projection is the cheapest perturbation.
	// Insertion sort — nbits ≤ 20.
	if cap(s.perm) < nbits {
		s.perm = make([]int, nbits)
	}
	s.perm = s.perm[:nbits]
	for j := range s.perm {
		s.perm[j] = j
	}
	for i := 1; i < nbits; i++ {
		p := s.perm[i]
		j := i
		for j > 0 && s.abs[p] < s.abs[s.perm[j-1]] {
			s.perm[j] = s.perm[j-1]
			j--
		}
		s.perm[j] = p
	}

	// Walk buckets in multi-probe order: the query's own bucket, then
	// perturbation sets popped cheapest-first, each pop seeding its
	// shift and expand successors (every non-empty set is generated
	// exactly once). Keep probing past the floor until the pool covers
	// k — the full enumeration reaches every bucket, and any rows a
	// sub-bucketed gather deferred are drained afterwards, so pool ≥ k
	// always terminates.
	s.heap.reset()
	s.pool = s.pool[:0]
	s.deferred = s.deferred[:0]
	ix.gather(s, code)
	s.heap.push(s.abs[s.perm[0]], 1)
	total := 1 << nbits
	for probed := 1; s.wantMore(k, probed, ix.p.Probes) && probed < total && s.heap.len() > 0; probed++ {
		cost, mask := s.heap.pop()
		var flip uint32
		for m := mask; m != 0; m &= m - 1 {
			flip |= 1 << uint(s.perm[bits.TrailingZeros32(m)])
		}
		ix.gather(s, code^flip)
		if top := bits.Len32(mask) - 1; top+1 < nbits {
			mTop := s.abs[s.perm[top]]
			mNext := s.abs[s.perm[top+1]]
			s.heap.push(cost-mTop+mNext, mask&^(1<<uint(top))|1<<uint(top+1)) // shift
			s.heap.push(cost+mNext, mask|1<<uint(top+1))                      // expand
		}
	}
	for di := 0; di+1 < len(s.deferred) && len(s.pool) < k; di += 2 {
		s.take(ix.order[s.deferred[di]:s.deferred[di+1]])
	}
	s.poolRows += int64(len(s.pool))
	if len(s.pool) > s.maxPool {
		s.maxPool = len(s.pool)
	}
	if q32 != nil {
		s.sel.selectRows32(outIdx, outScore, q32, ix.data32, s.pool, 0)
	} else {
		s.sel.selectRows(outIdx, outScore, q, ix.data, s.pool, 0)
	}
}

// gather appends one bucket's rows to the candidate pool. Buckets
// partition the rows, so the pool never holds duplicates. A bucket that
// was re-hashed one level deeper (see buildSubs) is walked through the
// same margin-ordered multi-probe one level down, and contributes at
// most subBudget rows — the size of the largest allowed ordinary bucket
// — so a hot bucket can't flood the pool; the unvisited remainder is
// deferred, to be drained after the probe loop only if the pool falls
// short of k.
func (ix *Index) gather(s *searcher, bucket uint32) {
	lo, hi := ix.start[bucket], ix.start[bucket+1]
	if lo == hi {
		return
	}
	si := int32(-1)
	if len(ix.subs) > 0 {
		si = ix.subOf[bucket]
	}
	if si < 0 {
		s.take(ix.order[lo:hi])
		return
	}
	st := &ix.subs[si]
	sb := st.bits
	s.subZ = resize(s.subZ, sb)
	s.subAbs = resize(s.subAbs, sb)
	var code uint32
	for j := 0; j < sb; j++ {
		var z float64
		if s.q32 != nil {
			z = dot32(s.q32, st.planes.Row(j)) - st.bias[j]
		} else {
			z = dot(s.q, st.planes.Row(j)) - st.bias[j]
		}
		s.subZ[j] = z
		s.subAbs[j] = math.Abs(z)
		if z >= 0 {
			code |= 1 << uint(j)
		}
	}
	if cap(s.subPerm) < sb {
		s.subPerm = make([]int, sb)
	}
	s.subPerm = s.subPerm[:sb]
	for j := range s.subPerm {
		s.subPerm[j] = j
	}
	for i := 1; i < sb; i++ {
		p := s.subPerm[i]
		j := i
		for j > 0 && s.subAbs[p] < s.subAbs[s.subPerm[j-1]] {
			s.subPerm[j] = s.subPerm[j-1]
			j--
		}
		s.subPerm[j] = p
	}
	taken := 0
	s.visited = s.visited[:0]
	probe := func(c uint32) {
		slo, shi := lo+st.start[c], lo+st.start[c+1]
		if slo == shi {
			return
		}
		s.take(ix.order[slo:shi])
		taken += int(shi - slo)
		s.visited = append(s.visited, slo, shi)
	}
	s.subHeap.reset()
	probe(code)
	s.subHeap.push(s.subAbs[s.subPerm[0]], 1)
	total := 1 << uint(sb)
	for probed := 1; taken < ix.subBudget && probed < total && s.subHeap.len() > 0; probed++ {
		cost, mask := s.subHeap.pop()
		var flip uint32
		for m := mask; m != 0; m &= m - 1 {
			flip |= 1 << uint(s.subPerm[bits.TrailingZeros32(m)])
		}
		probe(code ^ flip)
		if top := bits.Len32(mask) - 1; top+1 < sb {
			mTop := s.subAbs[s.subPerm[top]]
			mNext := s.subAbs[s.subPerm[top+1]]
			s.subHeap.push(cost-mTop+mNext, mask&^(1<<uint(top))|1<<uint(top+1))
			s.subHeap.push(cost+mNext, mask|1<<uint(top+1))
		}
	}
	// Defer the unvisited remainder. Sub-buckets are contiguous spans of
	// the parent segment, so the complement of the visited spans is a
	// handful of gaps: sort the visited spans positionally (they arrived
	// in margin order) and emit what lies between them.
	for i := 2; i < len(s.visited); i += 2 {
		vlo, vhi := s.visited[i], s.visited[i+1]
		j := i
		for j > 0 && vlo < s.visited[j-2] {
			s.visited[j], s.visited[j+1] = s.visited[j-2], s.visited[j-1]
			j -= 2
		}
		s.visited[j], s.visited[j+1] = vlo, vhi
	}
	prev := lo
	for i := 0; i < len(s.visited); i += 2 {
		if s.visited[i] > prev {
			s.deferred = append(s.deferred, prev, s.visited[i])
		}
		prev = s.visited[i+1]
	}
	if prev < hi {
		s.deferred = append(s.deferred, prev, hi)
	}
}

// probeHeap is a binary min-heap of pending perturbation sets, ordered
// by (cost, mask): cost is the summed margin of the flipped bits, the
// mask identifies the set over margin-sorted positions and breaks cost
// ties deterministically. The main probe loop and the sub-probe of a
// re-hashed bucket each run one.
type probeHeap struct {
	c []float64
	m []uint32
}

func (h *probeHeap) reset()   { h.c, h.m = h.c[:0], h.m[:0] }
func (h *probeHeap) len() int { return len(h.c) }

// push adds a pending perturbation set.
func (h *probeHeap) push(cost float64, mask uint32) {
	h.c = append(h.c, cost)
	h.m = append(h.m, mask)
	i := len(h.c) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !probeLess(h.c[i], h.m[i], h.c[p], h.m[p]) {
			return
		}
		h.c[i], h.c[p] = h.c[p], h.c[i]
		h.m[i], h.m[p] = h.m[p], h.m[i]
		i = p
	}
}

// pop removes and returns the cheapest pending perturbation set.
func (h *probeHeap) pop() (float64, uint32) {
	cost, mask := h.c[0], h.m[0]
	n := len(h.c) - 1
	h.c[0], h.m[0] = h.c[n], h.m[n]
	h.c = h.c[:n]
	h.m = h.m[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && probeLess(h.c[r], h.m[r], h.c[l], h.m[l]) {
			m = r
		}
		if !probeLess(h.c[m], h.m[m], h.c[i], h.m[i]) {
			break
		}
		h.c[i], h.c[m] = h.c[m], h.c[i]
		h.m[i], h.m[m] = h.m[m], h.m[i]
		i = m
	}
	return cost, mask
}

// probeLess orders perturbation sets by cost, ties by mask.
func probeLess(c1 float64, m1 uint32, c2 float64, m2 uint32) bool {
	if c1 != c2 {
		return c1 < c2
	}
	return m1 < m2
}

// selHeap selects the k best candidates of one query deterministically:
// a fixed-capacity min-heap ordered worse-first (smaller score, then
// larger id at the root), popped back-to-front into descending order —
// the same rule as the exact blocked scan, so equal pools give equal
// output.
type selHeap struct {
	idx   []int32
	score []float64
}

func (h *selHeap) worse(a, b int) bool {
	if h.score[a] != h.score[b] {
		return h.score[a] < h.score[b]
	}
	return h.idx[a] > h.idx[b]
}

func (h *selHeap) swap(a, b int) {
	h.idx[a], h.idx[b] = h.idx[b], h.idx[a]
	h.score[a], h.score[b] = h.score[b], h.score[a]
}

func (h *selHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.worse(i, p) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *selHeap) siftDown(i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.worse(r, l) {
			m = r
		}
		if !h.worse(m, i) {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// selectRows scores candidates against the query by sequential dot
// product — the same per-cell association as the dense kernel — and
// writes the k = len(outIdx) best into the output slices. Candidates
// come from pool when non-nil, or rows 0..scanN−1 otherwise (the exact
// full scan).
func (h *selHeap) selectRows(outIdx []int32, outScore []float64, q []float64, data *dense.Matrix, pool []int32, scanN int) {
	k := len(outIdx)
	if k == 0 {
		return
	}
	h.idx = h.idx[:0]
	h.score = h.score[:0]
	consider := func(j int32) {
		v := dot(q, data.Row(int(j)))
		if len(h.idx) < k {
			h.idx = append(h.idx, j)
			h.score = append(h.score, v)
			h.siftUp(len(h.idx) - 1)
			return
		}
		if v > h.score[0] || (v == h.score[0] && j < h.idx[0]) {
			h.idx[0], h.score[0] = j, v
			h.siftDown(0, k)
		}
	}
	if pool != nil {
		for _, j := range pool {
			consider(j)
		}
	} else {
		for j := 0; j < scanN; j++ {
			consider(int32(j))
		}
	}
	n := len(h.idx)
	for p := n - 1; p >= 0; p-- {
		outIdx[p], outScore[p] = h.idx[0], h.score[0]
		h.swap(0, n-1)
		n--
		h.siftDown(0, n)
	}
}

// selectRows32 is selectRows on the float32 tier. Scores accumulate in
// float64 per candidate, then round to float32 before the final widen —
// matching dense.MulBTInto32's store — so full-probe f32 results agree
// bit for bit with the blocked f32 top-k scan. The heap is duplicated
// rather than abstracted: this is the re-rank hot loop, and an
// interface or closure per candidate would cost the very bandwidth win
// the tier exists for.
func (h *selHeap) selectRows32(outIdx []int32, outScore []float64, q []float32, data *dense.Matrix32, pool []int32, scanN int) {
	k := len(outIdx)
	if k == 0 {
		return
	}
	h.idx = h.idx[:0]
	h.score = h.score[:0]
	consider := func(j int32) {
		row := data.Row(int(j))
		var s float64
		for i, qv := range q {
			s += float64(qv) * float64(row[i])
		}
		v := float64(float32(s))
		if len(h.idx) < k {
			h.idx = append(h.idx, j)
			h.score = append(h.score, v)
			h.siftUp(len(h.idx) - 1)
			return
		}
		if v > h.score[0] || (v == h.score[0] && j < h.idx[0]) {
			h.idx[0], h.score[0] = j, v
			h.siftDown(0, k)
		}
	}
	if pool != nil {
		for _, j := range pool {
			consider(j)
		}
	} else {
		for j := 0; j < scanN; j++ {
			consider(int32(j))
		}
	}
	n := len(h.idx)
	for p := n - 1; p >= 0; p-- {
		outIdx[p], outScore[p] = h.idx[0], h.score[0]
		h.swap(0, n-1)
		n--
		h.siftDown(0, n)
	}
}

// dot is the sequential inner product — the exact association the dense
// kernel uses per cell, which is what makes full-probe results
// bit-identical to the blocked scan, and a per-row incremental recode
// bit-identical to the batch projection.
func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// dot32 is the mixed-precision inner product of the f32 tier's hashing
// side: half-width row values against float64 hyperplanes, accumulated
// in float64 — bit-identical to dense.MulBTMixed32Into's per-cell
// association.
func dot32(a []float32, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += float64(v) * b[i]
	}
	return s
}

// resize returns a slice of exactly n elements, reusing capacity.
func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growInt32s returns an int32 slice of exactly n elements, reusing
// capacity.
func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// growInt32sAsU32 is growInt32s for uint32 slices.
func growInt32sAsU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}
