// Package ann is the approximate candidate generator behind the "ann"
// similarity backend: a signed-random-projection LSH index over the rows
// of a dense matrix. Rows hash into 2^Bits buckets by the sign pattern of
// Bits random projections; a query scans its own bucket plus the
// cheapest perturbed buckets in multi-probe order (Lv et al., VLDB'07)
// and exactly re-ranks the gathered pool by inner product. Probing every
// bucket degrades gracefully into a brute-force scan, which is the
// exactness escape hatch: a full-probe index reproduces the blocked
// exact top-k scan bit for bit.
//
// The package is metric-agnostic — it ranks by plain inner product — so
// the caller owns the metric: the align layer centers and row-normalises
// embeddings first, turning inner products into Pearson correlations.
// Everything is deterministic: the hyperplanes are drawn from the seed,
// bucket assembly is a stable counting sort, probe order breaks cost
// ties by perturbation mask, and re-ranking scores every candidate with
// the same sequential dot product as the dense kernel, so results are
// identical for every worker count.
package ann

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/par"
)

// MaxBits caps the code width: the bucket-offset table costs O(2^Bits),
// so 20 bits (1M buckets, 4 MB of offsets) is the widest code worth
// paying for before the table dominates the candidate structures.
const MaxBits = 20

// Params fix an index's geometry. The align/core layers resolve zero
// values to AutoBits/AutoProbes before building an index.
type Params struct {
	// Bits is the code width b ∈ [1, MaxBits]: rows hash into 2^b
	// buckets by the sign pattern of b random projections.
	Bits int
	// Probes is the minimum number of buckets scanned per query, visited
	// in multi-probe order (cheapest perturbations of the query's own
	// code first). A query keeps probing past this floor until it has
	// gathered at least k candidates, so result rows are always full.
	// Probes ≥ 2^Bits selects the brute-force exact path.
	Probes int
	// Seed drives the hyperplane draw; equal seeds give identical
	// indexes.
	Seed int64
}

// Exact reports whether the parameters probe every bucket, i.e. select
// the brute-force scan that reproduces the exact top-k bit for bit.
func (p Params) Exact() bool { return p.Probes >= 1<<p.Bits }

// AutoBits picks a code width for n indexed rows, targeting a mean
// bucket occupancy of ~16 rows and clamping to [4, MaxBits].
func AutoBits(n int) int {
	b := 4
	for b < MaxBits && n > 16<<b {
		b++
	}
	return b
}

// AutoProbes picks a default probe count for a code width: 16·bits,
// capped at the bucket count. The linear-in-bits schedule keeps measured
// candidate recall ≥ 0.95 on embedding-like inputs while the probed
// bucket fraction shrinks as the input grows — every bucket at ≤ 6 bits
// (exact), ~28% at 9 bits, ~2.5% at 13 bits (100k rows).
func AutoProbes(bits int) int {
	p := 16 * bits
	if full := 1 << bits; p > full {
		p = full
	}
	return p
}

// Result holds every query's top-k ids and scores; rows are sorted by
// descending score with ties broken by lower id — the same order the
// exact blocked scan produces. All rows share two backing arrays, and
// the layout mirrors align.Candidates so that layer can adopt the
// slices without copying.
type Result struct {
	K     int
	Idx   [][]int32
	Score [][]float64
}

// Index is a signed-random-projection LSH index over the rows of one
// matrix. Fit hashes the rows; TopK answers batched queries. An Index is
// reusable across Fit calls (a fine-tuning loop re-fits each iteration's
// embeddings into the same scratch) but not concurrently usable.
type Index struct {
	p    Params
	data *dense.Matrix // fitted rows (borrowed, not copied)
	n    int

	planes  *dense.Matrix // Bits×d hyperplanes, drawn once per dimension
	proj    *dense.Matrix // n×Bits row projections (scratch)
	codes   []uint32      // per-row bucket code
	start   []int32       // CSR bucket offsets, len 2^Bits+1
	order   []int32       // row ids grouped by bucket, stable in row order
	cursor  []int32       // counting-sort scratch
	workers []searcher    // per-worker query scratch
}

// New validates the parameters and returns an empty index; Fit must run
// before TopK.
func New(p Params) *Index {
	if p.Bits < 1 || p.Bits > MaxBits {
		panic(fmt.Sprintf("ann: Bits = %d outside [1, %d]", p.Bits, MaxBits))
	}
	if p.Probes < 1 {
		panic(fmt.Sprintf("ann: Probes = %d < 1", p.Probes))
	}
	return &Index{p: p}
}

// Params returns the index geometry.
func (ix *Index) Params() Params { return ix.p }

// Fit (re)hashes the rows of data into the index. The matrix is
// borrowed: it must stay unmodified until the next Fit. On the exact
// path hashing is skipped entirely — a full-probe query scans every row
// anyway.
func (ix *Index) Fit(data *dense.Matrix, workers int) {
	ix.data = data
	ix.n = data.Rows
	if ix.p.Exact() || ix.n == 0 {
		return
	}
	if ix.planes == nil || ix.planes.Cols != data.Cols {
		ix.planes = dense.New(ix.p.Bits, data.Cols)
		rng := rand.New(rand.NewSource(ix.p.Seed))
		for i := range ix.planes.Data {
			ix.planes.Data[i] = rng.NormFloat64()
		}
	}
	// Project all rows at once — the kernel is deterministic for every
	// worker count, so the codes are too.
	ix.proj = dense.Ensure(ix.proj, ix.n, ix.p.Bits)
	dense.MulBTInto(ix.proj, data, ix.planes, workers)
	ix.codes = growInt32sAsU32(ix.codes, ix.n)
	par.For(workers, ix.n, ix.p.Bits, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var c uint32
			for j, v := range ix.proj.Row(i) {
				if v >= 0 {
					c |= 1 << uint(j)
				}
			}
			ix.codes[i] = c
		}
	})
	// Stable counting sort into CSR buckets: offsets, then rows in
	// ascending id order within each bucket.
	nb := 1 << ix.p.Bits
	ix.start = growInt32s(ix.start, nb+1)
	ix.cursor = growInt32s(ix.cursor, nb)
	for i := range ix.start[:nb+1] {
		ix.start[i] = 0
	}
	for _, c := range ix.codes {
		ix.start[c+1]++
	}
	for b := 0; b < nb; b++ {
		ix.start[b+1] += ix.start[b]
	}
	copy(ix.cursor, ix.start[:nb])
	ix.order = growInt32s(ix.order, ix.n)
	for i, c := range ix.codes {
		ix.order[ix.cursor[c]] = int32(i)
		ix.cursor[c]++
	}
}

// annBlockRows sizes the per-worker query batches of TopK.
const annBlockRows = 128

// TopK returns, for every query row, its k best fitted rows by inner
// product, each result row sorted descending (ties by lower id). k is
// clamped to the fitted row count; every result row then holds exactly k
// entries — queries keep probing past the Probes floor until their pool
// reaches k. Results are bit-identical for every worker count, and on
// the exact path bit-identical to the blocked exact scan.
func (ix *Index) TopK(queries *dense.Matrix, k, workers int) *Result {
	if k < 1 {
		panic(fmt.Sprintf("ann: TopK k = %d < 1", k))
	}
	if k > ix.n {
		k = ix.n
	}
	nq := queries.Rows
	out := &Result{
		K:     k,
		Idx:   make([][]int32, nq),
		Score: make([][]float64, nq),
	}
	idxBack := make([]int32, nq*k)
	scoreBack := make([]float64, nq*k)
	for i := 0; i < nq; i++ {
		out.Idx[i] = idxBack[i*k : i*k+k : i*k+k]
		out.Score[i] = scoreBack[i*k : i*k+k : i*k+k]
	}
	if nq == 0 || k == 0 {
		return out
	}
	nBlocks := (nq + annBlockRows - 1) / annBlockRows
	w := par.Resolve(workers)
	if w > nBlocks {
		w = nBlocks
	}
	if len(ix.workers) < w {
		ix.workers = append(ix.workers, make([]searcher, w-len(ix.workers))...)
	}
	par.Sharded(w, nBlocks, func(worker, blk int) {
		s := &ix.workers[worker]
		lo := blk * annBlockRows
		hi := lo + annBlockRows
		if hi > nq {
			hi = nq
		}
		for r := lo; r < hi; r++ {
			ix.search(s, queries.Row(r), k, out.Idx[r], out.Score[r])
		}
	})
	return out
}

// searcher is one worker's private query scratch.
type searcher struct {
	z    []float64 // query projections
	abs  []float64 // projection margins |z|
	perm []int     // bit positions sorted by ascending margin
	// Pending perturbation sets, a binary min-heap ordered by (cost,
	// mask): cost is the summed margin of the flipped bits, the mask
	// identifies the set over sorted positions and breaks cost ties
	// deterministically.
	heapC []float64
	heapM []uint32
	pool  []int32
	sel   selHeap
}

// search fills one query's k best rows. The approximate path hashes the
// query, walks buckets in multi-probe order until it has probed the
// configured count and gathered ≥ k candidates, and exactly re-ranks the
// pool; the exact path scans every row.
func (ix *Index) search(s *searcher, q []float64, k int, outIdx []int32, outScore []float64) {
	if ix.p.Exact() {
		s.sel.selectRows(outIdx, outScore, q, ix.data, nil, ix.n)
		return
	}
	nbits := ix.p.Bits
	s.z = resize(s.z, nbits)
	s.abs = resize(s.abs, nbits)
	for j := 0; j < nbits; j++ {
		s.z[j] = dot(q, ix.planes.Row(j))
		s.abs[j] = math.Abs(s.z[j])
	}
	var code uint32
	for j, v := range s.z {
		if v >= 0 {
			code |= 1 << uint(j)
		}
	}
	// Sort bit positions by ascending margin (ties by lower position):
	// flipping a near-zero projection is the cheapest perturbation.
	// Insertion sort — nbits ≤ 20.
	if cap(s.perm) < nbits {
		s.perm = make([]int, nbits)
	}
	s.perm = s.perm[:nbits]
	for j := range s.perm {
		s.perm[j] = j
	}
	for i := 1; i < nbits; i++ {
		p := s.perm[i]
		j := i
		for j > 0 && s.abs[p] < s.abs[s.perm[j-1]] {
			s.perm[j] = s.perm[j-1]
			j--
		}
		s.perm[j] = p
	}

	// Walk buckets in multi-probe order: the query's own bucket, then
	// perturbation sets popped cheapest-first, each pop seeding its
	// shift and expand successors (every non-empty set is generated
	// exactly once). Keep probing past the floor until the pool covers
	// k — the full enumeration reaches every bucket, so pool ≥ k always
	// terminates.
	s.heapC = s.heapC[:0]
	s.heapM = s.heapM[:0]
	s.pool = s.pool[:0]
	ix.gather(s, code)
	s.pushProbe(s.abs[s.perm[0]], 1)
	total := 1 << nbits
	for probed := 1; (probed < ix.p.Probes || len(s.pool) < k) && probed < total && len(s.heapC) > 0; probed++ {
		cost, mask := s.popProbe()
		var flip uint32
		for m := mask; m != 0; m &= m - 1 {
			flip |= 1 << uint(s.perm[bits.TrailingZeros32(m)])
		}
		ix.gather(s, code^flip)
		if top := bits.Len32(mask) - 1; top+1 < nbits {
			mTop := s.abs[s.perm[top]]
			mNext := s.abs[s.perm[top+1]]
			s.pushProbe(cost-mTop+mNext, mask&^(1<<uint(top))|1<<uint(top+1)) // shift
			s.pushProbe(cost+mNext, mask|1<<uint(top+1))                      // expand
		}
	}
	s.sel.selectRows(outIdx, outScore, q, ix.data, s.pool, 0)
}

// gather appends one bucket's rows to the candidate pool. Buckets
// partition the rows, so the pool never holds duplicates.
func (ix *Index) gather(s *searcher, bucket uint32) {
	lo, hi := ix.start[bucket], ix.start[bucket+1]
	s.pool = append(s.pool, ix.order[lo:hi]...)
}

// pushProbe adds a pending perturbation set to the min-heap.
func (s *searcher) pushProbe(cost float64, mask uint32) {
	s.heapC = append(s.heapC, cost)
	s.heapM = append(s.heapM, mask)
	i := len(s.heapC) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !probeLess(s.heapC[i], s.heapM[i], s.heapC[p], s.heapM[p]) {
			return
		}
		s.heapC[i], s.heapC[p] = s.heapC[p], s.heapC[i]
		s.heapM[i], s.heapM[p] = s.heapM[p], s.heapM[i]
		i = p
	}
}

// popProbe removes and returns the cheapest pending perturbation set.
func (s *searcher) popProbe() (float64, uint32) {
	cost, mask := s.heapC[0], s.heapM[0]
	n := len(s.heapC) - 1
	s.heapC[0], s.heapM[0] = s.heapC[n], s.heapM[n]
	s.heapC = s.heapC[:n]
	s.heapM = s.heapM[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && probeLess(s.heapC[r], s.heapM[r], s.heapC[l], s.heapM[l]) {
			m = r
		}
		if !probeLess(s.heapC[m], s.heapM[m], s.heapC[i], s.heapM[i]) {
			break
		}
		s.heapC[i], s.heapC[m] = s.heapC[m], s.heapC[i]
		s.heapM[i], s.heapM[m] = s.heapM[m], s.heapM[i]
		i = m
	}
	return cost, mask
}

// probeLess orders perturbation sets by cost, ties by mask.
func probeLess(c1 float64, m1 uint32, c2 float64, m2 uint32) bool {
	if c1 != c2 {
		return c1 < c2
	}
	return m1 < m2
}

// selHeap selects the k best candidates of one query deterministically:
// a fixed-capacity min-heap ordered worse-first (smaller score, then
// larger id at the root), popped back-to-front into descending order —
// the same rule as the exact blocked scan, so equal pools give equal
// output.
type selHeap struct {
	idx   []int32
	score []float64
}

func (h *selHeap) worse(a, b int) bool {
	if h.score[a] != h.score[b] {
		return h.score[a] < h.score[b]
	}
	return h.idx[a] > h.idx[b]
}

func (h *selHeap) swap(a, b int) {
	h.idx[a], h.idx[b] = h.idx[b], h.idx[a]
	h.score[a], h.score[b] = h.score[b], h.score[a]
}

func (h *selHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.worse(i, p) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *selHeap) siftDown(i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.worse(r, l) {
			m = r
		}
		if !h.worse(m, i) {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// selectRows scores candidates against the query by sequential dot
// product — the same per-cell association as the dense kernel — and
// writes the k = len(outIdx) best into the output slices. Candidates
// come from pool when non-nil, or rows 0..scanN−1 otherwise (the exact
// full scan).
func (h *selHeap) selectRows(outIdx []int32, outScore []float64, q []float64, data *dense.Matrix, pool []int32, scanN int) {
	k := len(outIdx)
	if k == 0 {
		return
	}
	h.idx = h.idx[:0]
	h.score = h.score[:0]
	consider := func(j int32) {
		v := dot(q, data.Row(int(j)))
		if len(h.idx) < k {
			h.idx = append(h.idx, j)
			h.score = append(h.score, v)
			h.siftUp(len(h.idx) - 1)
			return
		}
		if v > h.score[0] || (v == h.score[0] && j < h.idx[0]) {
			h.idx[0], h.score[0] = j, v
			h.siftDown(0, k)
		}
	}
	if pool != nil {
		for _, j := range pool {
			consider(j)
		}
	} else {
		for j := 0; j < scanN; j++ {
			consider(int32(j))
		}
	}
	n := len(h.idx)
	for p := n - 1; p >= 0; p-- {
		outIdx[p], outScore[p] = h.idx[0], h.score[0]
		h.swap(0, n-1)
		n--
		h.siftDown(0, n)
	}
}

// dot is the sequential inner product — the exact association the dense
// kernel uses per cell, which is what makes full-probe results
// bit-identical to the blocked scan.
func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// resize returns a slice of exactly n elements, reusing capacity.
func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growInt32s returns an int32 slice of exactly n elements, reusing
// capacity.
func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// growInt32sAsU32 is growInt32s for uint32 slices.
func growInt32sAsU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}
