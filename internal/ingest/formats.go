package ingest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
)

// splitEdgeLine tokenises one edge-list data line into exactly two
// fields without allocating: CSV when a comma is present, whitespace
// otherwise. It is the reader's hot path — a million-edge file calls it
// a million times.
func splitEdgeLine(line []byte) (a, b []byte, ok bool) {
	if i := bytes.IndexByte(line, ','); i >= 0 {
		rest := line[i+1:]
		if bytes.IndexByte(rest, ',') >= 0 {
			return nil, nil, false // three or more CSV fields
		}
		a = bytes.TrimSpace(line[:i])
		b = bytes.TrimSpace(rest)
		return a, b, len(a) > 0 && len(b) > 0
	}
	isSpace := func(c byte) bool { return c == ' ' || c == '\t' }
	i := 0
	for i < len(line) && !isSpace(line[i]) {
		i++
	}
	a = line[:i]
	for i < len(line) && isSpace(line[i]) {
		i++
	}
	j := i
	for j < len(line) && !isSpace(line[j]) {
		j++
	}
	b = line[i:j]
	for ; j < len(line); j++ {
		if !isSpace(line[j]) {
			return nil, nil, false // trailing third field
		}
	}
	return a, b, len(a) > 0 && len(b) > 0
}

func init() {
	// Sniff order: self-identifying formats first, the permissive edge
	// list last so it only catches what nothing else claims.
	Register(htcGraphFormat{})
	Register(jsonFormat{})
	Register(adjListFormat{})
	Register(edgeListFormat{})
}

// firstDataLine returns the first non-blank, non-comment line of head
// (possibly truncated mid-line — good enough for sniffing).
func firstDataLine(head []byte) string {
	for _, line := range strings.Split(string(head), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || isComment(line) {
			continue
		}
		return line
	}
	return ""
}

// ---------------------------------------------------------------- htc-graph

// htcGraphFormat adapts the library's own text format (graph.Read/Write)
// to the registry. Node ids are the indices themselves.
type htcGraphFormat struct{}

func (htcGraphFormat) Name() string { return "htc-graph" }

func (htcGraphFormat) Detect(head []byte) bool {
	return strings.HasPrefix(firstDataLine(head), "htc-graph")
}

func (htcGraphFormat) Read(r io.Reader, opts Options) (*Loaded, error) {
	g, err := graph.ReadLimited(r, graph.Limits{
		MaxNodes: opts.MaxNodes, MaxEdges: opts.MaxEdges, MaxAttrDim: opts.MaxAttrDim,
		Strict: opts.Strict,
	})
	if err != nil {
		return nil, err
	}
	return &Loaded{Graph: g, Nodes: Identity(g.N())}, nil
}

func (htcGraphFormat) Write(w io.Writer, g *graph.Graph, nodes *NodeMap) error {
	if nodes != nil && !nodes.IsIdentity() {
		return fmt.Errorf("ingest: htc-graph format cannot carry node names; use json or adjlist")
	}
	return graph.Write(w, g)
}

// ---------------------------------------------------------------- json

// jsonFormat reads a GraphSpec document: {"nodes": n, "edges": [[u,v],
// ...], "attrs": [...], "ids": [...]}. Without ids the map is the
// identity; with ids the spec names its nodes.
type jsonFormat struct{}

func (jsonFormat) Name() string { return "json" }

func (jsonFormat) Detect(head []byte) bool {
	return strings.HasPrefix(strings.TrimSpace(string(head)), "{")
}

func (jsonFormat) Read(r io.Reader, opts Options) (*Loaded, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec GraphSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("ingest: json: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("ingest: json: trailing data after graph document")
	}
	if opts.MaxEdges > 0 && len(spec.Edges) > opts.MaxEdges {
		return nil, fmt.Errorf("ingest: json: %d edges, limit is %d", len(spec.Edges), opts.MaxEdges)
	}
	g, err := spec.build(opts.MaxNodes, opts.MaxAttrDim, opts.Strict)
	if err != nil {
		return nil, fmt.Errorf("ingest: json: %w", err)
	}
	nodes, err := spec.nodeMap()
	if err != nil {
		return nil, fmt.Errorf("ingest: json: %w", err)
	}
	return &Loaded{Graph: g, Nodes: nodes}, nil
}

func (jsonFormat) Write(w io.Writer, g *graph.Graph, nodes *NodeMap) error {
	blob, err := json.MarshalIndent(SpecFromGraph(g, nodes), "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}

// ---------------------------------------------------------------- edgelist

// edgeListFormat reads SNAP-style edge lists: one "u v" pair per line,
// whitespace or comma separated, ids are arbitrary whitespace-free
// strings interned in order of first appearance. # and % mark comments.
type edgeListFormat struct{}

func (edgeListFormat) Name() string { return "edgelist" }

func (edgeListFormat) Detect(head []byte) bool {
	line := firstDataLine(head)
	return line != "" && len(splitFields(line)) == 2
}

func (edgeListFormat) Read(r io.Reader, opts Options) (*Loaded, error) {
	sc := newScanner(r)
	nodes := NewNodeMap()
	var edges [][2]int
	var seen map[uint64]struct{}
	if opts.Strict {
		seen = make(map[uint64]struct{})
	}
	lineno := 0
	for sc.Scan() {
		lineno++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' || line[0] == '%' {
			continue
		}
		a, bTok, ok := splitEdgeLine(line)
		if !ok {
			return nil, fmt.Errorf("ingest: edgelist line %d: want 2 fields in %q", lineno, line)
		}
		u := nodes.internBytes(a)
		v := nodes.internBytes(bTok)
		if opts.MaxNodes > 0 && nodes.Len() > opts.MaxNodes {
			return nil, fmt.Errorf("ingest: edgelist line %d: more than %d nodes", lineno, opts.MaxNodes)
		}
		if u == v {
			if opts.Strict {
				return nil, fmt.Errorf("ingest: edgelist line %d (%q): %w", lineno, line, graph.ErrSelfLoop)
			}
			continue
		}
		if opts.Strict {
			key := graph.EdgeKey(u, v)
			if _, dup := seen[key]; dup {
				return nil, fmt.Errorf("ingest: edgelist line %d (%q): %w", lineno, line, graph.ErrDupEdge)
			}
			seen[key] = struct{}{}
		}
		edges = append(edges, [2]int{u, v})
		if opts.MaxEdges > 0 && len(edges) > opts.MaxEdges {
			return nil, fmt.Errorf("ingest: edgelist line %d: more than %d edges", lineno, opts.MaxEdges)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ingest: edgelist line %d: %w", lineno+1, err)
	}
	b := graph.NewBuilder(nodes.Len())
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return &Loaded{Graph: b.Build(), Nodes: nodes}, nil
}

// Write emits one "u v" line per edge. Edge lists cannot carry
// attributes; writing an attributed graph is an error rather than silent
// data loss.
func (edgeListFormat) Write(w io.Writer, g *graph.Graph, nodes *NodeMap) error {
	if g.Attrs() != nil && g.Attrs().Cols > 0 {
		return fmt.Errorf("ingest: edgelist format cannot carry attributes; use htc-graph, json or adjlist")
	}
	if nodes == nil {
		nodes = Identity(g.N())
	}
	if err := checkWritableIDs(nodes); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%s %s\n", nodes.ID(int(e[0])), nodes.ID(int(e[1]))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ---------------------------------------------------------------- adjlist

// adjListFormat reads adjacency lists with optional attributes:
//
//	id: nbr1 nbr2 ... | a0 a1 ...
//
// Every node must head exactly one line (so attribute rows are total);
// the "| attrs" suffix is all-or-nothing across the file. Listing an
// edge from both endpoints is the format's natural redundancy, so
// duplicate edges are always tolerated; Strict still rejects self-loops.
type adjListFormat struct{}

func (adjListFormat) Name() string { return "adjlist" }

func (adjListFormat) Detect(head []byte) bool {
	line := firstDataLine(head)
	if line == "" || strings.HasPrefix(line, "{") {
		return false
	}
	colon := strings.IndexByte(line, ':')
	if colon <= 0 {
		return false
	}
	// The id before the colon must be a single token.
	return len(strings.Fields(line[:colon])) == 1
}

func (adjListFormat) Read(r io.Reader, opts Options) (*Loaded, error) {
	sc := newScanner(r)
	nodes := NewNodeMap()
	headed := make(map[int]bool) // node → has its own adjacency line
	attrs := make(map[int][]float64)
	attrDim := -1 // -1 = undecided, 0 = attr-free file
	var edges [][2]int
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || isComment(line) {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			return nil, fmt.Errorf("ingest: adjlist line %d: want \"id: neighbours...\", got %q", lineno, line)
		}
		idTok := strings.TrimSpace(line[:colon])
		if len(strings.Fields(idTok)) != 1 {
			return nil, fmt.Errorf("ingest: adjlist line %d: bad node id %q", lineno, idTok)
		}
		rest := line[colon+1:]
		var attrPart string
		hasAttrs := false
		if bar := strings.IndexByte(rest, '|'); bar >= 0 {
			attrPart, rest = rest[bar+1:], rest[:bar]
			hasAttrs = true
		}
		switch {
		case attrDim == -1:
			if hasAttrs {
				attrDim = len(strings.Fields(attrPart))
				if attrDim == 0 {
					return nil, fmt.Errorf("ingest: adjlist line %d: empty attribute block", lineno)
				}
			} else {
				attrDim = 0
			}
		case (attrDim > 0) != hasAttrs:
			return nil, fmt.Errorf("ingest: adjlist line %d: attribute blocks must appear on every line or none", lineno)
		}
		u := nodes.Intern(idTok)
		if headed[u] {
			return nil, fmt.Errorf("ingest: adjlist line %d: node %q heads two lines", lineno, idTok)
		}
		headed[u] = true
		if attrDim > 0 {
			vals := strings.Fields(attrPart)
			if len(vals) != attrDim {
				return nil, fmt.Errorf("ingest: adjlist line %d: %d attributes, want %d", lineno, len(vals), attrDim)
			}
			if opts.MaxAttrDim > 0 && attrDim > opts.MaxAttrDim {
				return nil, fmt.Errorf("ingest: adjlist line %d: %d attribute dims, limit is %d", lineno, attrDim, opts.MaxAttrDim)
			}
			row := make([]float64, attrDim)
			for j, s := range vals {
				v, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return nil, fmt.Errorf("ingest: adjlist line %d: bad attribute %q", lineno, s)
				}
				row[j] = v
			}
			attrs[u] = row
		}
		for _, nbTok := range strings.Fields(rest) {
			v := nodes.Intern(nbTok)
			if u == v {
				if opts.Strict {
					return nil, fmt.Errorf("ingest: adjlist line %d (%q): %w", lineno, line, graph.ErrSelfLoop)
				}
				continue
			}
			edges = append(edges, [2]int{u, v})
			if opts.MaxEdges > 0 && len(edges) > opts.MaxEdges {
				return nil, fmt.Errorf("ingest: adjlist line %d: more than %d edges", lineno, opts.MaxEdges)
			}
		}
		if opts.MaxNodes > 0 && nodes.Len() > opts.MaxNodes {
			return nil, fmt.Errorf("ingest: adjlist line %d: more than %d nodes", lineno, opts.MaxNodes)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ingest: adjlist line %d: %w", lineno+1, err)
	}
	n := nodes.Len()
	if attrDim > 0 {
		for i := 0; i < n; i++ {
			if !headed[i] {
				return nil, fmt.Errorf("ingest: adjlist: node %q is only ever a neighbour, so its attributes are unknown", nodes.ID(i))
			}
		}
	}
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1]) // mutual listings dedupe here
	}
	g := b.Build()
	if attrDim > 0 {
		x := dense.New(n, attrDim)
		for i := 0; i < n; i++ {
			copy(x.Row(i), attrs[i])
		}
		g = g.WithAttrs(x)
	}
	return &Loaded{Graph: g, Nodes: nodes}, nil
}

func (adjListFormat) Write(w io.Writer, g *graph.Graph, nodes *NodeMap) error {
	if nodes == nil {
		nodes = Identity(g.N())
	}
	if err := checkWritableIDs(nodes); err != nil {
		return err
	}
	attrs := g.Attrs()
	bw := bufio.NewWriter(w)
	for i := 0; i < g.N(); i++ {
		if _, err := fmt.Fprintf(bw, "%s:", nodes.ID(i)); err != nil {
			return err
		}
		// Emitting only the higher-indexed neighbours halves the file;
		// the reader reunites both directions.
		for _, nb := range g.Neighbors(i) {
			if int(nb) > i {
				if _, err := fmt.Fprintf(bw, " %s", nodes.ID(int(nb))); err != nil {
					return err
				}
			}
		}
		if attrs != nil && attrs.Cols > 0 {
			if _, err := bw.WriteString(" |"); err != nil {
				return err
			}
			for _, v := range attrs.Row(i) {
				if _, err := fmt.Fprintf(bw, " %s", strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
					return err
				}
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// checkWritableIDs rejects id dictionaries the line-oriented formats
// cannot represent unambiguously.
func checkWritableIDs(nodes *NodeMap) error {
	if nodes.IsIdentity() {
		return nil
	}
	for i, n := 0, nodes.Len(); i < n; i++ {
		id := nodes.ID(i)
		if id == "" || strings.ContainsAny(id, " \t\n\r:|,") || isComment(id) {
			return fmt.Errorf("ingest: node id %q cannot be written to a line-oriented format", id)
		}
	}
	return nil
}
