package ingest

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
)

// TestGoldenFixtures locks each registered format against a checked-in
// sample: sniffed format name, node-id dictionary and graph shape.
func TestGoldenFixtures(t *testing.T) {
	cases := []struct {
		file, format string
		ids          []string
		edges        int
		attrDim      int
	}{
		{"sample.edgelist", "edgelist", []string{"alice", "bob", "carol", "dave"}, 4, 0},
		{"sample.adjlist", "adjlist", []string{"a", "b", "c", "d"}, 4, 2},
		{"sample.json", "json", []string{"x", "y", "z"}, 2, 0},
		{"sample.htc-graph", "htc-graph", []string{"0", "1", "2"}, 2, 0},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			loaded, err := LoadFile(filepath.Join("testdata", c.file), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Format != c.format {
				t.Errorf("sniffed format %q, want %q", loaded.Format, c.format)
			}
			if got := loaded.Nodes.IDs(); !equalStrings(got, c.ids) {
				t.Errorf("ids = %v, want %v", got, c.ids)
			}
			if loaded.Graph.N() != len(c.ids) || loaded.Graph.NumEdges() != c.edges {
				t.Errorf("graph %v, want n=%d e=%d", loaded.Graph, len(c.ids), c.edges)
			}
			gotDim := 0
			if loaded.Graph.Attrs() != nil {
				gotDim = loaded.Graph.Attrs().Cols
			}
			if gotDim != c.attrDim {
				t.Errorf("attr dim %d, want %d", gotDim, c.attrDim)
			}
			// Explicitly naming the format must agree with sniffing.
			named, err := LoadFile(filepath.Join("testdata", c.file), Options{Format: c.format})
			if err != nil {
				t.Fatal(err)
			}
			if named.Graph.NumEdges() != c.edges {
				t.Errorf("named load drifted from sniffed load")
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEdgeListCSVAndComments(t *testing.T) {
	in := "% matrix-market style comment\nu1,u2\nu2 , u3\n# plain comment\nu3\tu1\n"
	loaded, err := Load(strings.NewReader(in), Options{Format: "edgelist"})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Graph.N() != 3 || loaded.Graph.NumEdges() != 3 {
		t.Fatalf("got %v", loaded.Graph)
	}
	if id := loaded.Nodes.ID(0); id != "u1" {
		t.Fatalf("first interned id %q", id)
	}
}

func TestEdgeListTolerantVsStrict(t *testing.T) {
	in := "a b\na a\na b\nb a\n" // self-loop + two duplicates
	loaded, err := Load(strings.NewReader(in), Options{Format: "edgelist"})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Graph.NumEdges() != 1 {
		t.Fatalf("tolerant load kept %d edges, want 1", loaded.Graph.NumEdges())
	}
	if _, err := Load(strings.NewReader("a a\n"), Options{Format: "edgelist", Strict: true}); !errors.Is(err, graph.ErrSelfLoop) {
		t.Fatalf("strict self-loop error = %v, want ErrSelfLoop", err)
	}
	if _, err := Load(strings.NewReader("a b\nb a\n"), Options{Format: "edgelist", Strict: true}); !errors.Is(err, graph.ErrDupEdge) {
		t.Fatalf("strict duplicate error = %v, want ErrDupEdge", err)
	}
}

func TestHTCGraphStrict(t *testing.T) {
	// Strict must reach the htc-graph reader like every other format.
	if _, err := Load(strings.NewReader("htc-graph 3 1 0\n1 1\n"), Options{Format: "htc-graph", Strict: true}); !errors.Is(err, graph.ErrSelfLoop) {
		t.Errorf("strict self-loop error = %v, want ErrSelfLoop", err)
	}
	if _, err := Load(strings.NewReader("htc-graph 3 2 0\n0 1\n1 0\n"), Options{Format: "htc-graph", Strict: true}); !errors.Is(err, graph.ErrDupEdge) {
		t.Errorf("strict duplicate error = %v, want ErrDupEdge", err)
	}
	if _, err := Load(strings.NewReader("htc-graph 3 2 0\n0 1\n1 0\n"), Options{Format: "htc-graph"}); err != nil {
		t.Errorf("tolerant duplicate rejected: %v", err)
	}
}

func TestJSONSpecValidation(t *testing.T) {
	for name, in := range map[string]string{
		"edge range":     `{"nodes": 2, "edges": [[0, 5]]}`,
		"bad ids len":    `{"nodes": 2, "edges": [], "ids": ["a"]}`,
		"dup ids":        `{"nodes": 2, "edges": [], "ids": ["a", "a"]}`,
		"unknown field":  `{"nodes": 2, "edges": [], "bogus": 1}`,
		"trailing":       `{"nodes": 2, "edges": []}{"nodes": 1}`,
		"non-finite":     `{"nodes": 1, "edges": [], "attrs": [[1e999]]}`,
		"negative nodes": `{"nodes": -3, "edges": []}`,
	} {
		if _, err := Load(strings.NewReader(in), Options{Format: "json"}); err == nil {
			t.Errorf("%s: accepted %s", name, in)
		}
	}
	// The range error carries the shared sentinel.
	_, err := Load(strings.NewReader(`{"nodes": 2, "edges": [[0, 5]]}`), Options{Format: "json"})
	if !errors.Is(err, graph.ErrEdgeRange) {
		t.Errorf("edge-range error = %v, want ErrEdgeRange", err)
	}
}

func TestAdjListValidation(t *testing.T) {
	for name, in := range map[string]string{
		"no colon":          "a b c\n",
		"dup head":          "a: b\na: c\n",
		"ragged attrs":      "a: b | 1 2\nb: | 1\n",
		"mixed attrs":       "a: b | 1\nb:\n",
		"bad attr float":    "a: | x\n",
		"neighbour no line": "a: b | 1\n", // b never heads a line but attrs are in play
	} {
		if _, err := Load(strings.NewReader(in), Options{Format: "adjlist"}); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	// Mutual listing is fine, even strict; self-loops are not.
	if _, err := Load(strings.NewReader("a: b\nb: a\n"), Options{Format: "adjlist", Strict: true}); err != nil {
		t.Errorf("mutual listing rejected: %v", err)
	}
	if _, err := Load(strings.NewReader("a: a\n"), Options{Format: "adjlist", Strict: true}); !errors.Is(err, graph.ErrSelfLoop) {
		t.Errorf("strict self-loop error = %v, want ErrSelfLoop", err)
	}
}

func TestLoadLimits(t *testing.T) {
	cases := []struct {
		format, in string
		opts       Options
	}{
		{"edgelist", "a b\nb c\nc d\n", Options{MaxNodes: 2}},
		{"edgelist", "a b\nb c\nc d\n", Options{MaxEdges: 2}},
		{"adjlist", "a: b c d\n", Options{MaxNodes: 2}},
		{"adjlist", "a: b c d\n", Options{MaxEdges: 2}},
		{"adjlist", "a: | 1 2 3\n", Options{MaxAttrDim: 2}},
		{"json", `{"nodes": 999999, "edges": []}`, Options{MaxNodes: 10}},
		{"json", `{"nodes": 3, "edges": [[0,1],[1,2]]}`, Options{MaxEdges: 1}},
		{"htc-graph", "htc-graph 999999999999 0 0\n", Options{MaxNodes: 10}},
	}
	for _, c := range cases {
		c.opts.Format = c.format
		if _, err := Load(strings.NewReader(c.in), c.opts); err == nil {
			t.Errorf("%s with %+v accepted %q", c.format, c.opts, c.in)
		}
	}
}

// TestWriteReadRoundTrip drives every writable format over random
// attributed graphs (attribute-free for edgelist) and requires the graph
// and id dictionary to survive unchanged.
func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, format := range []string{"htc-graph", "json", "adjlist", "edgelist"} {
		t.Run(format, func(t *testing.T) {
			for trial := 0; trial < 25; trial++ {
				n := 1 + rng.Intn(12)
				b := graph.NewBuilder(n)
				if format == "edgelist" {
					// An edge list cannot represent isolated nodes; thread a
					// path through all of them so every node appears.
					for i := 1; i < n; i++ {
						b.AddEdge(i-1, i)
					}
				}
				for i := 0; i < 2*n; i++ {
					b.AddEdge(rng.Intn(n), rng.Intn(n))
				}
				g := b.Build()
				var nodes *NodeMap
				if format == "htc-graph" {
					nodes = Identity(n)
				} else {
					nodes = NewNodeMap()
					for i := 0; i < n; i++ {
						nodes.Intern(strings.Repeat("n", 1+i%3) + string(rune('a'+i)))
					}
				}
				withAttrs := format != "edgelist" && format != "htc-graph" && rng.Intn(2) == 0
				if withAttrs {
					attrs := dense.New(n, 2)
					for i := range attrs.Data {
						attrs.Data[i] = rng.NormFloat64()
					}
					g = g.WithAttrs(attrs)
				}
				var buf bytes.Buffer
				if err := Write(&buf, g, nodes, format); err != nil {
					t.Fatalf("trial %d: write: %v", trial, err)
				}
				loaded, err := Load(bytes.NewReader(buf.Bytes()), Options{Format: format})
				if err != nil {
					t.Fatalf("trial %d: read back: %v\n%s", trial, err, buf.String())
				}
				if loaded.Graph.N() != g.N() || loaded.Graph.NumEdges() != g.NumEdges() {
					t.Fatalf("trial %d: shape drifted: %v vs %v\n%s", trial, loaded.Graph, g, buf.String())
				}
				for _, e := range g.Edges() {
					u, _ := loaded.Nodes.Index(nodes.ID(int(e[0])))
					v, _ := loaded.Nodes.Index(nodes.ID(int(e[1])))
					if !loaded.Graph.HasEdge(u, v) {
						t.Fatalf("trial %d: lost edge %s-%s", trial, nodes.ID(int(e[0])), nodes.ID(int(e[1])))
					}
				}
				if withAttrs {
					a := loaded.Graph.Attrs()
					if a == nil || a.Cols != 2 {
						t.Fatalf("trial %d: attrs lost", trial)
					}
					for i := 0; i < n; i++ {
						j, _ := loaded.Nodes.Index(nodes.ID(i))
						for k, w := range g.Attrs().Row(i) {
							if a.Row(j)[k] != w {
								t.Fatalf("trial %d: attr drifted for node %s", trial, nodes.ID(i))
							}
						}
					}
				}
			}
		})
	}
	// Writer refusals: edgelist cannot carry attrs, htc-graph cannot carry names.
	g := graph.NewBuilder(2)
	g.AddEdge(0, 1)
	attributed := g.Build().WithAttrs(dense.New(2, 1))
	if err := Write(&bytes.Buffer{}, attributed, Identity(2), "edgelist"); err == nil {
		t.Error("edgelist accepted an attributed graph")
	}
	named := NewNodeMap()
	named.Intern("a")
	named.Intern("b")
	if err := Write(&bytes.Buffer{}, g.Build(), named, "htc-graph"); err == nil {
		t.Error("htc-graph accepted a named graph")
	}
	bad := NewNodeMap()
	bad.Intern("has space")
	bad.Intern("ok")
	if err := Write(&bytes.Buffer{}, g.Build(), bad, "edgelist"); err == nil {
		t.Error("edgelist accepted an id with whitespace")
	}
}

func TestReadTruth(t *testing.T) {
	src, err := LoadFile(filepath.Join("testdata", "sample.edgelist"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := LoadFile(filepath.Join("testdata", "sample.json"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := ReadTruthFile(filepath.Join("testdata", "sample.truth"), src.Nodes, tgt.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != src.Graph.N() || truth.NumAnchors() != 2 {
		t.Fatalf("truth = %v", truth)
	}
	a, _ := src.Nodes.Index("alice")
	x, _ := tgt.Nodes.Index("x")
	if truth[a] != x {
		t.Fatalf("alice → %d, want %d", truth[a], x)
	}
	for name, in := range map[string]string{
		"unknown source": "nobody x\n",
		"unknown target": "alice nothing\n",
		"conflict":       "alice x\nalice y\n",
		"bad fields":     "alice\n",
	} {
		if _, err := ReadTruth(strings.NewReader(in), src.Nodes, tgt.Nodes); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	// Round trip through WriteTruth.
	var buf bytes.Buffer
	if err := WriteTruth(&buf, truth, src.Nodes, tgt.Nodes); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTruth(&buf, src.Nodes, tgt.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if back[i] != truth[i] {
			t.Fatalf("truth round trip drifted at %d: %d vs %d", i, back[i], truth[i])
		}
	}
}

func TestNodeMapIdentity(t *testing.T) {
	m := Identity(3)
	if !m.IsIdentity() || m.Len() != 3 || m.ID(2) != "2" {
		t.Fatalf("identity map misbehaves: %v", m)
	}
	if i, ok := m.Index("1"); !ok || i != 1 {
		t.Fatalf("Index(1) = %d,%v", i, ok)
	}
	for _, bad := range []string{"3", "-1", "x", ""} {
		if _, ok := m.Index(bad); ok {
			t.Errorf("identity Index(%q) resolved", bad)
		}
	}
	if got := m.IDs(); !equalStrings(got, []string{"0", "1", "2"}) {
		t.Fatalf("IDs() = %v", got)
	}
}

func TestDetectFormatUnrecognised(t *testing.T) {
	if _, err := DetectFormat([]byte("one two three\n")); err == nil {
		t.Error("three-token line sniffed as a known format")
	}
	if _, err := Load(strings.NewReader(""), Options{}); err == nil {
		t.Error("empty input sniffed as a known format")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("parquet"); err == nil {
		t.Error("unknown format resolved")
	}
	if _, err := Load(strings.NewReader("a b\n"), Options{Format: "parquet"}); err == nil {
		t.Error("load with unknown format succeeded")
	}
}
