package ingest

import (
	"fmt"
	"math"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
)

// GraphSpec is the JSON graph document shared by the ingest "json" format
// and the alignment server's inline request bodies: an edge list over
// nodes 0..Nodes−1, an optional attribute matrix (one row per node), and
// an optional index-ordered id list naming the nodes. Self-loops and
// duplicate edges are skipped, out-of-range endpoints are errors —
// graph.Builder's uniform validation policy.
type GraphSpec struct {
	Nodes int         `json:"nodes"`
	Edges [][2]int    `json:"edges"`
	Attrs [][]float64 `json:"attrs,omitempty"`
	// IDs optionally names node i IDs[i]; when present it must list
	// exactly Nodes distinct non-empty ids.
	IDs []string `json:"ids,omitempty"`
}

// Build validates the spec and constructs the immutable graph. maxNodes
// bounds admission (0 = unlimited).
func (g *GraphSpec) Build(maxNodes int) (*graph.Graph, error) {
	return g.build(maxNodes, 0, false)
}

func (g *GraphSpec) build(maxNodes, maxAttrDim int, strict bool) (*graph.Graph, error) {
	if g.Nodes <= 0 {
		return nil, fmt.Errorf("graph needs a positive node count, got %d", g.Nodes)
	}
	if maxNodes > 0 && g.Nodes > maxNodes {
		return nil, fmt.Errorf("graph has %d nodes, limit is %d", g.Nodes, maxNodes)
	}
	if len(g.IDs) > 0 && len(g.IDs) != g.Nodes {
		return nil, fmt.Errorf("ids list has %d entries for %d nodes", len(g.IDs), g.Nodes)
	}
	b := graph.NewBuilder(g.Nodes)
	for i, e := range g.Edges {
		var err error
		if strict {
			err = b.AddStrict(e[0], e[1])
		} else {
			err = b.Add(e[0], e[1])
		}
		if err != nil {
			return nil, fmt.Errorf("edge %d: %w", i, err)
		}
	}
	built := b.Build()
	if len(g.Attrs) == 0 {
		return built, nil
	}
	if len(g.Attrs) != g.Nodes {
		return nil, fmt.Errorf("attrs have %d rows for %d nodes", len(g.Attrs), g.Nodes)
	}
	cols := len(g.Attrs[0])
	if cols == 0 {
		return nil, fmt.Errorf("attrs rows must be non-empty")
	}
	if maxAttrDim > 0 && cols > maxAttrDim {
		return nil, fmt.Errorf("attrs have %d dims, limit is %d", cols, maxAttrDim)
	}
	x := dense.New(g.Nodes, cols)
	for i, row := range g.Attrs {
		if len(row) != cols {
			return nil, fmt.Errorf("attrs row %d has %d values, want %d", i, len(row), cols)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("attrs[%d][%d] is not finite", i, j)
			}
		}
		copy(x.Row(i), row)
	}
	return built.WithAttrs(x), nil
}

// nodeMap returns the spec's id dictionary: FromIDs when the spec names
// its nodes, the identity otherwise.
func (g *GraphSpec) nodeMap() (*NodeMap, error) {
	if len(g.IDs) == 0 {
		return Identity(g.Nodes), nil
	}
	return FromIDs(g.IDs)
}

// NodeMap returns the spec's validated id dictionary.
func (g *GraphSpec) NodeMap() (*NodeMap, error) { return g.nodeMap() }

// SpecFromGraph renders a built graph (and its id dictionary) back into
// the JSON document form.
func SpecFromGraph(g *graph.Graph, nodes *NodeMap) *GraphSpec {
	spec := &GraphSpec{Nodes: g.N(), Edges: make([][2]int, 0, g.NumEdges())}
	for _, e := range g.Edges() {
		spec.Edges = append(spec.Edges, [2]int{int(e[0]), int(e[1])})
	}
	if attrs := g.Attrs(); attrs != nil && attrs.Cols > 0 {
		spec.Attrs = make([][]float64, attrs.Rows)
		for i := range spec.Attrs {
			spec.Attrs[i] = append([]float64(nil), attrs.Row(i)...)
		}
	}
	if nodes != nil && !nodes.IsIdentity() {
		spec.IDs = nodes.IDs()
	}
	return spec
}
