package ingest

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/htc-align/htc/internal/metrics"
)

// ReadTruth parses ID-keyed ground truth — one "sourceID targetID" pair
// per line, whitespace or comma separated, with #/% comments — and
// resolves it through the pair's node maps into the index-keyed Truth the
// evaluator consumes. Unknown ids and conflicting duplicate pairs are
// errors; source nodes never mentioned stay at −1 ("no anchor"), matching
// partially aligned datasets.
func ReadTruth(r io.Reader, src, tgt *NodeMap) (metrics.Truth, error) {
	sc := newScanner(r)
	var pairs [][2]string
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || isComment(line) {
			continue
		}
		toks := splitFields(line)
		if len(toks) != 2 {
			return nil, fmt.Errorf("ingest: truth line %d: want 2 fields, got %d in %q", lineno, len(toks), line)
		}
		pairs = append(pairs, [2]string{toks[0], toks[1]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ingest: truth line %d: %w", lineno+1, err)
	}
	truth, err := metrics.TruthFromPairs(pairs, src, tgt)
	if err != nil {
		return nil, fmt.Errorf("ingest: truth: %w", err)
	}
	return truth, nil
}

// ReadTruthFile is ReadTruth over a file path.
func ReadTruthFile(path string, src, tgt *NodeMap) (metrics.Truth, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	truth, err := ReadTruth(f, src, tgt)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return truth, nil
}

// WriteTruth renders an index-keyed truth map back into the ID-keyed pair
// format, one line per known anchor.
func WriteTruth(w io.Writer, truth metrics.Truth, src, tgt *NodeMap) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# source target"); err != nil {
		return err
	}
	for s, t := range truth {
		if t < 0 {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%s %s\n", src.ID(s), tgt.ID(t)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
