package ingest

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// buildEdgeList renders a random m-edge SNAP-style edge list over
// string-keyed nodes, the workload of BENCH_io.json.
func buildEdgeList(n, m int) string {
	rng := rand.New(rand.NewSource(11))
	var sb strings.Builder
	sb.Grow(m * 16)
	sb.WriteString("# synthetic benchmark edge list\n")
	for i := 1; i < n; i++ {
		fmt.Fprintf(&sb, "v%d v%d\n", rng.Intn(i), i)
	}
	for i := n - 1; i < m; i++ {
		fmt.Fprintf(&sb, "v%d v%d\n", rng.Intn(n), rng.Intn(n))
	}
	return sb.String()
}

// BenchmarkEdgeList1M measures the streaming edge-list reader on a
// 1M-edge, 100k-node input — the ingestion hot path for real SNAP-scale
// datasets. Snapshotted into BENCH_io.json and gated by bench_check.sh.
func BenchmarkEdgeList1M(b *testing.B) {
	in := buildEdgeList(100_000, 1_000_000)
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded, err := Load(strings.NewReader(in), Options{Format: "edgelist"})
		if err != nil {
			b.Fatal(err)
		}
		if loaded.Graph.N() != 100_000 {
			b.Fatalf("parsed %d nodes", loaded.Graph.N())
		}
	}
}

// BenchmarkTruth100K measures ID-keyed ground-truth resolution.
func BenchmarkTruth100K(b *testing.B) {
	const n = 100_000
	nodes := NewNodeMap()
	var sb strings.Builder
	for i := 0; i < n; i++ {
		nodes.Intern(fmt.Sprintf("v%d", i))
		fmt.Fprintf(&sb, "v%d v%d\n", i, i)
	}
	in := sb.String()
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		truth, err := ReadTruth(strings.NewReader(in), nodes, nodes)
		if err != nil {
			b.Fatal(err)
		}
		if truth.NumAnchors() != n {
			b.Fatal("anchors lost")
		}
	}
}
