// Package ingest loads real-world network files into the contiguous
// int-indexed graphs the HTC pipeline consumes. It is the identity layer
// of the stack: real datasets (SNAP edge lists, adjacency dumps, JSON
// specs) key their nodes by external string IDs, while everything
// downstream — orbit counting, training, matching, evaluation — speaks
// dense indices. Every reader therefore returns the graph *and* a
// NodeMap, the bidirectional ID↔index dictionary that lets callers load
// ground truth by name and read predictions back by name.
//
// Formats are pluggable: each implements Format, registers itself, and
// participates in content sniffing (DetectFormat), so callers can say
// "load this file" without naming a format at all. The built-in roster:
//
//	htc-graph   the library's own text format (ids are the indices)
//	json        a GraphSpec document, optionally carrying node ids
//	adjlist     adjacency lists with optional attributes ("id: n1 n2 | a0 a1")
//	edgelist    SNAP-style whitespace/CSV pairs of arbitrary string ids
//
// Readers are streaming and hardened: Options bounds what a reader will
// allocate before the data justifies it, malformed input always returns
// an error (never a panic), and edge validation shares the graph
// package's sentinel vocabulary (graph.ErrEdgeRange, graph.ErrSelfLoop,
// graph.ErrDupEdge) across every format.
package ingest

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/htc-align/htc/internal/graph"
)

// sniffLen is how many leading bytes DetectFormat inspects.
const sniffLen = 4096

// maxLineBytes bounds a single input line; a "line" beyond this is far
// more likely a binary blob or an attack than a graph, and erroring beats
// buffering it whole.
const maxLineBytes = 1 << 22

// NodeMap is the bidirectional dictionary between external node IDs and
// the contiguous indices 0..n−1 the pipeline runs on. The zero-cost
// special case is the identity map (Identity), where node i's ID is
// simply the decimal string of i — the htc-graph and plain-JSON formats
// use it so million-node index-keyed files don't pay for a string table.
type NodeMap struct {
	n   int            // identity domain size when ids == nil
	ids []string       // index → id (nil for identity maps)
	idx map[string]int // id → index (nil for identity maps)
}

// NewNodeMap returns an empty map ready to Intern ids.
func NewNodeMap() *NodeMap {
	return &NodeMap{ids: []string{}, idx: make(map[string]int)}
}

// Identity returns the identity map on n nodes: ID(i) = "i".
func Identity(n int) *NodeMap { return &NodeMap{n: n} }

// FromIDs builds a map from an explicit index-ordered id list, rejecting
// empty and duplicate ids.
func FromIDs(ids []string) (*NodeMap, error) {
	m := NewNodeMap()
	for i, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("ingest: node %d has an empty id", i)
		}
		if _, dup := m.idx[id]; dup {
			return nil, fmt.Errorf("ingest: duplicate node id %q", id)
		}
		m.idx[id] = i
		m.ids = append(m.ids, id)
	}
	return m, nil
}

// IsIdentity reports whether the map is an identity map (ids are the
// decimal indices themselves).
func (m *NodeMap) IsIdentity() bool { return m.ids == nil }

// Len returns the number of mapped nodes.
func (m *NodeMap) Len() int {
	if m.ids == nil {
		return m.n
	}
	return len(m.ids)
}

// Intern returns the index of id, assigning the next free index on first
// sight. It must not be called on an identity map.
func (m *NodeMap) Intern(id string) int {
	if i, ok := m.idx[id]; ok {
		return i
	}
	i := len(m.ids)
	m.idx[id] = i
	m.ids = append(m.ids, id)
	return i
}

// internBytes is Intern for a byte token: the map lookup with a
// string-converted key compiles allocation-free, so re-seeing a known id
// (the overwhelmingly common case in a long edge list) costs nothing.
func (m *NodeMap) internBytes(tok []byte) int {
	if i, ok := m.idx[string(tok)]; ok {
		return i
	}
	id := string(tok)
	i := len(m.ids)
	m.idx[id] = i
	m.ids = append(m.ids, id)
	return i
}

// Index resolves an external id to its index. On identity maps the id is
// parsed as a decimal index and checked against the domain.
func (m *NodeMap) Index(id string) (int, bool) {
	if m.ids == nil {
		i, err := strconv.Atoi(id)
		if err != nil || i < 0 || i >= m.n {
			return 0, false
		}
		return i, true
	}
	i, ok := m.idx[id]
	return i, ok
}

// ID returns the external id of index i. It panics when i is outside the
// mapped domain, mirroring slice indexing.
func (m *NodeMap) ID(i int) string {
	if m.ids == nil {
		if i < 0 || i >= m.n {
			panic(fmt.Sprintf("ingest: index %d outside identity domain [0,%d)", i, m.n))
		}
		return strconv.Itoa(i)
	}
	return m.ids[i]
}

// IDs returns the index-ordered id list (materialised for identity maps).
func (m *NodeMap) IDs() []string {
	if m.ids == nil {
		out := make([]string, m.n)
		for i := range out {
			out[i] = strconv.Itoa(i)
		}
		return out
	}
	return append([]string(nil), m.ids...)
}

// Options tunes a load. The zero value sniffs the format and accepts
// inputs of any size.
type Options struct {
	// Format names the reader to use; empty means sniff via DetectFormat.
	Format string
	// MaxNodes, MaxEdges and MaxAttrDim bound what a reader will
	// allocate (0 = unlimited). Servers ingesting untrusted uploads set
	// them so a 30-byte header cannot commit gigabytes.
	MaxNodes   int
	MaxEdges   int
	MaxAttrDim int
	// Strict promotes skipped input — self-loops and (for the formats
	// where a repeat is not inherent, i.e. everything but adjlist)
	// duplicate edges — into errors wrapping graph.ErrSelfLoop /
	// graph.ErrDupEdge.
	Strict bool
}

// Loaded is one ingested network: the contiguous-index graph, the
// ID↔index dictionary, and the format that produced them.
type Loaded struct {
	Graph  *graph.Graph
	Nodes  *NodeMap
	Format string
}

// Pair is a ready-to-align loaded graph pair with both identity
// dictionaries.
type Pair struct {
	Source, Target             *graph.Graph
	SourceIDs, TargetIDs       *NodeMap
	SourceFormat, TargetFormat string
}

// Format is one pluggable graph file format.
type Format interface {
	// Name is the registry key ("edgelist", "json", ...).
	Name() string
	// Detect reports whether head — the first bytes of an input — looks
	// like this format.
	Detect(head []byte) bool
	// Read parses one graph from r under the given options.
	Read(r io.Reader, opts Options) (*Loaded, error)
}

// GraphWriter is the optional write capability of a Format.
type GraphWriter interface {
	Format
	// Write serialises g (with its id dictionary) in this format.
	Write(w io.Writer, g *graph.Graph, nodes *NodeMap) error
}

// registry holds the formats in sniff order: most self-identifying first,
// the permissive edge list last.
var registry []Format

// Register appends a format to the registry. Built-ins register at init;
// external callers may add their own before loading.
func Register(f Format) { registry = append(registry, f) }

// Formats returns the registered format names in sniff order.
func Formats() []string {
	names := make([]string, len(registry))
	for i, f := range registry {
		names[i] = f.Name()
	}
	return names
}

// Lookup resolves a format name (case-insensitive).
func Lookup(name string) (Format, error) {
	for _, f := range registry {
		if strings.EqualFold(f.Name(), name) {
			return f, nil
		}
	}
	return nil, fmt.Errorf("ingest: unknown format %q (registered: %s)", name, strings.Join(Formats(), ", "))
}

// DetectFormat sniffs the format of an input from its leading bytes.
func DetectFormat(head []byte) (Format, error) {
	for _, f := range registry {
		if f.Detect(head) {
			return f, nil
		}
	}
	return nil, fmt.Errorf("ingest: unrecognised graph format (registered: %s)", strings.Join(Formats(), ", "))
}

// Load reads one graph from r, sniffing the format unless opts.Format
// names one.
func Load(r io.Reader, opts Options) (*Loaded, error) {
	br := bufio.NewReaderSize(r, sniffLen)
	var f Format
	if opts.Format != "" {
		var err error
		if f, err = Lookup(opts.Format); err != nil {
			return nil, err
		}
	} else {
		head, err := br.Peek(sniffLen)
		if len(head) == 0 && err != nil && err != io.EOF {
			return nil, fmt.Errorf("ingest: %w", err)
		}
		if f, err = DetectFormat(head); err != nil {
			return nil, err
		}
	}
	loaded, err := f.Read(br, opts)
	if err != nil {
		return nil, err
	}
	loaded.Format = f.Name()
	return loaded, nil
}

// LoadFile is Load over a file path.
func LoadFile(path string, opts Options) (*Loaded, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	loaded, err := Load(file, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return loaded, nil
}

// LoadPair loads a source and target network under one set of options —
// the usual entry point for aligning real datasets.
func LoadPair(sourcePath, targetPath string, opts Options) (*Pair, error) {
	src, err := LoadFile(sourcePath, opts)
	if err != nil {
		return nil, err
	}
	tgt, err := LoadFile(targetPath, opts)
	if err != nil {
		return nil, err
	}
	return &Pair{
		Source: src.Graph, Target: tgt.Graph,
		SourceIDs: src.Nodes, TargetIDs: tgt.Nodes,
		SourceFormat: src.Format, TargetFormat: tgt.Format,
	}, nil
}

// Write serialises a graph in the named format, which must support
// writing.
func Write(w io.Writer, g *graph.Graph, nodes *NodeMap, format string) error {
	f, err := Lookup(format)
	if err != nil {
		return err
	}
	gw, ok := f.(GraphWriter)
	if !ok {
		return fmt.Errorf("ingest: format %q does not support writing", f.Name())
	}
	return gw.Write(w, g, nodes)
}

// isComment reports whether a trimmed line is a comment under the shared
// line grammar (# and % both mark comments; SNAP uses the former, many
// Matrix Market-adjacent dumps the latter).
func isComment(line string) bool {
	return strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%")
}

// splitFields tokenises a data line: CSV when a comma is present,
// whitespace otherwise.
func splitFields(line string) []string {
	if strings.Contains(line, ",") {
		parts := strings.Split(line, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts
	}
	return strings.Fields(line)
}

// newScanner builds a line scanner with the shared per-line size cap.
func newScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), maxLineBytes)
	return sc
}
