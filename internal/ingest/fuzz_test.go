package ingest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fuzzOpts caps what a fuzzed reader may allocate, mirroring how a server
// ingests untrusted uploads. Within these caps a reader must either parse
// or error — never panic, never allocate past the caps on the strength of
// unbacked header claims.
var fuzzOpts = Options{MaxNodes: 1 << 12, MaxEdges: 1 << 14, MaxAttrDim: 64}

// fuzzFormat is the shared fuzz body: parse tolerantly and strictly, and
// when a parse succeeds check the graph/NodeMap invariants.
func fuzzFormat(t *testing.T, format string, data []byte) {
	t.Helper()
	for _, strict := range []bool{false, true} {
		opts := fuzzOpts
		opts.Format = format
		opts.Strict = strict
		loaded, err := Load(strings.NewReader(string(data)), opts)
		if err != nil {
			continue
		}
		g, nodes := loaded.Graph, loaded.Nodes
		if g.N() != nodes.Len() {
			t.Fatalf("%s (strict=%v): graph has %d nodes but map has %d", format, strict, g.N(), nodes.Len())
		}
		if opts.MaxNodes > 0 && g.N() > opts.MaxNodes {
			t.Fatalf("%s: %d nodes exceeds the cap %d", format, g.N(), opts.MaxNodes)
		}
		if opts.MaxEdges > 0 && g.NumEdges() > opts.MaxEdges {
			t.Fatalf("%s: %d edges exceeds the cap %d", format, g.NumEdges(), opts.MaxEdges)
		}
		for i := 0; i < g.N(); i++ {
			idx, ok := nodes.Index(nodes.ID(i))
			if !ok || idx != i {
				t.Fatalf("%s: node map not bijective at %d (%q → %d, %v)", format, i, nodes.ID(i), idx, ok)
			}
		}
	}
}

// seedCorpus adds the checked-in fixture of a format plus shared
// adversarial snippets.
func seedCorpus(f *testing.F, fixture string, extra ...string) {
	if blob, err := os.ReadFile(filepath.Join("testdata", fixture)); err == nil {
		f.Add(blob)
	}
	for _, s := range extra {
		f.Add([]byte(s))
	}
}

func FuzzEdgeList(f *testing.F) {
	seedCorpus(f, "sample.edgelist",
		"a b\nb c\n", "a,b\n", "a a\n", "x\ty\n", "# c\n\n1 2\n", strings.Repeat("a b\n", 50))
	f.Fuzz(func(t *testing.T, data []byte) { fuzzFormat(t, "edgelist", data) })
}

func FuzzAdjList(f *testing.F) {
	seedCorpus(f, "sample.adjlist",
		"a: b c\n", "a: b | 1 2\nb: | 3 4\n", "a:\n", "a: a\n", ": b\n", "a: b | x\n")
	f.Fuzz(func(t *testing.T, data []byte) { fuzzFormat(t, "adjlist", data) })
}

func FuzzJSON(f *testing.F) {
	seedCorpus(f, "sample.json",
		`{"nodes": 2, "edges": [[0,1]]}`,
		`{"nodes": 999999999999, "edges": []}`,
		`{"nodes": 1, "edges": [], "attrs": [[1.5]]}`,
		`{"nodes": 2, "edges": [[0,1]], "ids": ["a","b"]}`)
	f.Fuzz(func(t *testing.T, data []byte) { fuzzFormat(t, "json", data) })
}

func FuzzHTCGraph(f *testing.F) {
	seedCorpus(f, "sample.htc-graph",
		"htc-graph 2 1 0\n0 1\n",
		"htc-graph 999999999999 0 0\n",
		"htc-graph 2 1 2\n0 1\n0.5 1\n1 2\n",
		"htc-graph 1 0 123456789\n")
	f.Fuzz(func(t *testing.T, data []byte) { fuzzFormat(t, "htc-graph", data) })
}

// FuzzSniff drives the whole sniff-then-parse path, the exact surface an
// upload endpoint exposes.
func FuzzSniff(f *testing.F) {
	seedCorpus(f, "sample.edgelist")
	seedCorpus(f, "sample.adjlist")
	seedCorpus(f, "sample.json")
	seedCorpus(f, "sample.htc-graph")
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(strings.NewReader(string(data)), fuzzOpts)
		if err == nil && loaded.Graph.N() != loaded.Nodes.Len() {
			t.Fatalf("sniffed %s: node map size mismatch", loaded.Format)
		}
	})
}

// FuzzTruth hardens the ground-truth parser against the same classes of
// malformed input.
func FuzzTruth(f *testing.F) {
	seedCorpus(f, "sample.truth", "a x\n", "a\n", "a x y\n", "a,x\n")
	src := NewNodeMap()
	src.Intern("a")
	src.Intern("alice")
	src.Intern("bob")
	tgt := Identity(4)
	f.Fuzz(func(t *testing.T, data []byte) {
		truth, err := ReadTruth(strings.NewReader(string(data)), src, tgt)
		if err == nil && len(truth) != src.Len() {
			t.Fatalf("truth has %d rows for %d sources", len(truth), src.Len())
		}
	})
}
