package par

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(7); got != 7 {
		t.Fatalf("Resolve(7) = %d", got)
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 7, 256, 1000} {
			seen := make([]int32, n)
			For(workers, n, 1<<20, func(start, end int) {
				for i := start; i < end; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestForHugeCostDoesNotOverflow is the regression test for the old
// n*cost work estimate: with cost near MaxInt the product wrapped negative
// and the comparison against the serial threshold became meaningless.
// The division-based estimate must still decide "parallel" and cover the
// range exactly once.
func TestForHugeCostDoesNotOverflow(t *testing.T) {
	n := 64
	var covered atomic.Int64
	var calls atomic.Int64
	For(4, n, math.MaxInt, func(start, end int) {
		calls.Add(1)
		covered.Add(int64(end - start))
	})
	if covered.Load() != int64(n) {
		t.Fatalf("covered %d of %d items", covered.Load(), n)
	}
	// A huge per-item cost must justify the fan-out (when >1 worker is
	// allowed): the old overflowing estimate would collapse to one call
	// even on many-core machines. With GOMAXPROCS possibly 1 we can only
	// assert it did not crash and covered everything; with more cores we
	// additionally expect a real split.
	if Resolve(4) > 1 && runtime.GOMAXPROCS(0) > 1 && calls.Load() < 2 {
		t.Fatalf("huge cost did not fan out (calls=%d)", calls.Load())
	}
}

func TestForSmallWorkRunsInline(t *testing.T) {
	var calls atomic.Int64
	For(8, 4, 1, func(start, end int) { calls.Add(1) })
	if calls.Load() != 1 {
		t.Fatalf("tiny job split into %d calls, want 1", calls.Load())
	}
}

func TestTasksRunsAllDeterministically(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		n := 37
		ran := make([]int32, n)
		Tasks(workers, n, func(task int) { atomic.AddInt32(&ran[task], 1) })
		for i, c := range ran {
			if c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDo(t *testing.T) {
	var a, b atomic.Bool
	Do(2, func() { a.Store(true) }, func() { b.Store(true) })
	if !a.Load() || !b.Load() {
		t.Fatal("Do skipped a task")
	}
	Do(2) // no tasks: must not hang
}

func TestSplit2(t *testing.T) {
	a, b := Split2(8, 3, 1)
	if a+b != 8 || a < 1 || b < 1 {
		t.Fatalf("Split2(8,3,1) = %d,%d", a, b)
	}
	if a <= b {
		t.Fatalf("proportional split inverted: %d,%d", a, b)
	}
	a, b = Split2(1, 10, 1)
	if a != 1 || b != 1 {
		t.Fatalf("Split2(1,…) = %d,%d, want 1,1", a, b)
	}
	a, b = Split2(2, 1000000, 1)
	if a != 1 || b != 1 {
		t.Fatalf("Split2(2, heavy, light) = %d,%d, want 1,1", a, b)
	}
}
