// Package par is the pipeline's worker-budget engine: every parallel
// stage — orbit counting, training fan-out, per-orbit fine-tuning and the
// dense/sparse kernels underneath — routes its goroutine fan-out through
// this package so that one explicit worker count (core.Config.Workers,
// divided among jobs by the server) bounds the whole pipeline instead of
// every layer independently grabbing GOMAXPROCS.
package par

import (
	"runtime"
	"sync"
)

// Resolve normalises a worker budget: values ≤ 0 mean "use every CPU"
// (GOMAXPROCS); anything else is returned unchanged.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// minWork is the estimated amount of per-call work (in rough "inner loop
// iterations") below which goroutine startup costs more than it saves.
const minWork = 1 << 15

// worthIt reports whether n items of the given per-item cost justify a
// fan-out. The comparison is done by division, not multiplication: n*cost
// overflows int for large matrices (n and cost can each exceed 2³²), which
// used to flip the sign of the estimate and silently serialise — or
// mis-parallelise — the kernel.
func worthIt(n, cost int) bool {
	if n <= 0 {
		return false
	}
	if cost < 1 {
		cost = 1
	}
	// n*cost > minWork  ⟺  n > minWork/cost (integer floor division).
	return n > minWork/cost
}

// For splits the half-open range [0, n) into contiguous chunks across at
// most `workers` goroutines (≤ 0 = GOMAXPROCS) and invokes fn(start, end)
// on each chunk. cost estimates the per-item work so that small jobs run
// inline. Each index is covered by exactly one chunk, so fn invocations
// write disjoint output ranges and the result is deterministic for every
// worker count.
func For(workers, n, cost int, fn func(start, end int)) {
	w := Resolve(workers)
	if w > n {
		w = n
	}
	if w <= 1 || !worthIt(n, cost) {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}

// Tasks runs n independent tasks with at most `workers` of them in flight
// (≤ 0 = GOMAXPROCS). Tasks are claimed in index order by a static stride
// schedule — worker w runs tasks w, w+W, w+2W, … — so the task→goroutine
// assignment is deterministic and per-task state never needs locking.
func Tasks(workers, n int, fn func(task int)) {
	w := Resolve(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for t := 0; t < n; t++ {
			fn(t)
		}
		return
	}
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for t := g; t < n; t += w {
				fn(t)
			}
		}(g)
	}
	wg.Wait()
}

// Sharded is Tasks with the worker index exposed: fn(worker, task) runs
// task on the goroutine whose stable id is worker ∈ [0, W). Callers use
// the id to give each goroutine private scratch buffers that persist
// across its tasks. The task→worker assignment is the same static stride
// schedule as Tasks, so it is deterministic. It returns W, the number of
// worker slots actually used, so callers can size per-worker state.
func Sharded(workers, n int, fn func(worker, task int)) int {
	w := Resolve(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for t := 0; t < n; t++ {
			fn(0, t)
		}
		return 1
	}
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for t := g; t < n; t += w {
				fn(g, t)
			}
		}(g)
	}
	wg.Wait()
	return w
}

// Do runs the given functions concurrently, bounded by workers (≤ 0 =
// GOMAXPROCS), and waits for all of them.
func Do(workers int, fns ...func()) {
	Tasks(workers, len(fns), func(t int) { fns[t]() })
}

// SplitOuterInner divides a budget between fanning out across n
// independent tasks (outer) and parallelising inside each task (inner):
// outer = min(budget, n) goroutines run tasks, and any budget left over
// (fewer tasks than workers) multiplies into inner, the per-task kernel
// fan-out. Both results are at least 1, including for n = 0.
func SplitOuterInner(budget, n int) (outer, inner int) {
	budget = Resolve(budget)
	outer = budget
	if outer > n {
		outer = n
	}
	if outer < 1 {
		outer = 1
	}
	inner = budget / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// Split2 divides a worker budget between two concurrent subtasks
// proportionally to their load estimates. Both shares are at least 1, so
// the subtasks can always run concurrently; their sum never exceeds
// max(workers, 2).
func Split2(workers, loadA, loadB int) (int, int) {
	w := Resolve(workers)
	if w < 2 {
		return 1, 1
	}
	if loadA < 1 {
		loadA = 1
	}
	if loadB < 1 {
		loadB = 1
	}
	a := w * loadA / (loadA + loadB)
	if a < 1 {
		a = 1
	}
	if a > w-1 {
		a = w - 1
	}
	return a, w - a
}
