package gom

import (
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/orbit"
)

// The stage benchmarks below mirror the Fig. 8 decomposition at the
// component level: GOM construction is expected to be a small fraction of
// orbit counting, which itself is small next to training.

func BenchmarkBuildAllOrbits(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.PreferentialAttachment(1000, 4, rng)
	counts := orbit.Count(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, counts, orbit.NumOrbits, false)
	}
}

func BenchmarkNormalize(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := graph.PreferentialAttachment(2000, 4, rng)
	om := g.Adjacency()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Normalize(om)
	}
}
