package gom

import (
	"math"
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/orbit"
	"github.com/htc-align/htc/internal/sparse"
)

func triangleWithTails() *graph.Graph {
	// The Fig. 5 graph: triangle {0,1,2} with pendants 3←1 and 4←2.
	b := graph.NewBuilder(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 4}} {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func TestBuildOrbit0IsAdjacency(t *testing.T) {
	g := triangleWithTails()
	s := Build(g, orbit.Count(g), 5, false)
	adj := g.Adjacency()
	if !s.Orbits[0].ToDense().Equal(adj.ToDense(), 0) {
		t.Fatal("orbit-0 GOM must equal the adjacency matrix")
	}
}

func TestBuildWeightedVsBinary(t *testing.T) {
	g := triangleWithTails()
	counts := orbit.Count(g)
	weighted := Build(g, counts, 5, false)
	binary := Build(g, counts, 5, true)

	// Orbit 1 of edge (1,2) is 2 in the weighted form, clamped to 1 in
	// the binary form (the paper's Fig. 5 discussion).
	if weighted.Orbits[1].At(1, 2) != 2 {
		t.Fatalf("weighted O1(1,2) = %v, want 2", weighted.Orbits[1].At(1, 2))
	}
	if binary.Orbits[1].At(1, 2) != 1 {
		t.Fatalf("binary O1(1,2) = %v, want 1", binary.Orbits[1].At(1, 2))
	}
}

func TestBuildSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.ErdosRenyi(40, 0.2, rng)
	s := Build(g, orbit.Count(g), orbit.NumOrbits, false)
	for k, om := range s.Orbits {
		d := om.ToDense()
		if !d.Equal(d.T(), 0) {
			t.Fatalf("orbit %d matrix not symmetric", k)
		}
		l := s.Laplacians[k].ToDense()
		if !l.Equal(l.T(), 1e-12) {
			t.Fatalf("orbit %d Laplacian not symmetric", k)
		}
	}
}

func TestSelfConnection(t *testing.T) {
	// Row maxima become the diagonal; empty rows get 1 (Eq. 3).
	om := sparse.FromEntries(3, 3, []sparse.Entry{
		{Row: 0, Col: 1, Val: 4}, {Row: 1, Col: 0, Val: 4},
		{Row: 0, Col: 2, Val: 2}, {Row: 2, Col: 0, Val: 2},
	})
	diag := SelfConnection(om)
	if diag[0] != 4 || diag[1] != 4 || diag[2] != 2 {
		t.Fatalf("SelfConnection = %v", diag)
	}
	empty := sparse.FromEntries(2, 2, nil)
	diag = SelfConnection(empty)
	if diag[0] != 1 || diag[1] != 1 {
		t.Fatalf("isolated nodes must self-connect with 1, got %v", diag)
	}
}

func TestNormalizeRowSumsOfIsolatedNode(t *testing.T) {
	// An isolated node's Laplacian row must be exactly [.. 1 ..]: its
	// only mass is the unit self-connection, normalised by itself.
	om := sparse.FromEntries(3, 3, []sparse.Entry{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
	})
	l := Normalize(om)
	if math.Abs(l.At(2, 2)-1) > 1e-12 {
		t.Fatalf("isolated node diagonal = %v, want 1", l.At(2, 2))
	}
}

func TestNormalizeSpectralRadius(t *testing.T) {
	// Symmetric normalisation bounds every entry by 1 and keeps row sums
	// ≤ 1 in the frequency norm; a loose but useful sanity check is that
	// all entries lie in [0, 1].
	rng := rand.New(rand.NewSource(7))
	g := graph.ErdosRenyi(30, 0.3, rng)
	s := Build(g, orbit.Count(g), orbit.NumOrbits, false)
	for k, l := range s.Laplacians {
		for _, v := range l.Val {
			if v < 0 || v > 1+1e-12 {
				t.Fatalf("orbit %d Laplacian entry %v out of [0,1]", k, v)
			}
		}
	}
}

func TestNormalizeSpectralRadiusBound(t *testing.T) {
	// The symmetric normalisation L̃ = F̃^(−1/2)·Õ·F̃^(−1/2) with
	// non-negative Õ and row sums F̃ has spectral radius ≤ 1 — the
	// property that prevents exploding activations in deep stacks.
	rng := rand.New(rand.NewSource(23))
	g := graph.ErdosRenyi(25, 0.3, rng)
	s := Build(g, orbit.Count(g), 6, false)
	for k, l := range s.Laplacians {
		vals, _ := dense.SymEigen(l.ToDense())
		if vals[0] > 1+1e-9 {
			t.Fatalf("orbit %d spectral radius %v > 1", k, vals[0])
		}
		if vals[len(vals)-1] < -1-1e-9 {
			t.Fatalf("orbit %d smallest eigenvalue %v < -1", k, vals[len(vals)-1])
		}
	}
}

func TestHigherOrbitsSparser(t *testing.T) {
	// The paper's Fig. 10a discussion: higher-order orbit matrices are
	// generally sparser than orbit 0 on sparse graphs.
	rng := rand.New(rand.NewSource(11))
	g := graph.PreferentialAttachment(200, 2, rng)
	s := Build(g, orbit.Count(g), orbit.NumOrbits, false)
	if s.Orbits[12].NNZ() > s.Orbits[0].NNZ() {
		t.Fatalf("K4 orbit denser than adjacency: %d > %d", s.Orbits[12].NNZ(), s.Orbits[0].NNZ())
	}
}

func TestLowOrder(t *testing.T) {
	g := triangleWithTails()
	s := LowOrder(g)
	if s.K() != 1 {
		t.Fatalf("LowOrder K = %d", s.K())
	}
	if !s.Orbits[0].ToDense().Equal(g.Adjacency().ToDense(), 0) {
		t.Fatal("LowOrder orbit must be the adjacency matrix")
	}
	full := Build(g, orbit.Count(g), 1, false)
	if !s.Laplacians[0].ToDense().Equal(full.Laplacians[0].ToDense(), 1e-12) {
		t.Fatal("LowOrder Laplacian must match Build(.., 1, ..)")
	}
}

func TestFromMatrices(t *testing.T) {
	m := sparse.FromEntries(2, 2, []sparse.Entry{
		{Row: 0, Col: 1, Val: 3}, {Row: 1, Col: 0, Val: 3},
	})
	s := FromMatrices([]*sparse.CSR{m})
	if s.K() != 1 || s.Laplacians[0] == nil {
		t.Fatal("FromMatrices did not normalise")
	}
	// Õ = [[3,3],[3,3]] (self-connection = row max = 3), F̃ = 6 → every
	// entry of L̃ is 0.5.
	l := s.Laplacians[0]
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(l.At(i, j)-0.5) > 1e-12 {
				t.Fatalf("L(%d,%d) = %v, want 0.5", i, j, l.At(i, j))
			}
		}
	}
}

func TestBuildPanicsOnBadK(t *testing.T) {
	g := triangleWithTails()
	counts := orbit.Count(g)
	for _, k := range []int{0, orbit.NumOrbits + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d: expected panic", k)
				}
			}()
			Build(g, counts, k, false)
		}()
	}
}

func TestBuildPanicsOnForeignCounts(t *testing.T) {
	g1 := triangleWithTails()
	g2 := triangleWithTails()
	counts := orbit.Count(g1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for counts of a different graph")
		}
	}()
	Build(g2, counts, 3, false)
}
