// Package gom builds Graphlet Orbit Matrices (GOMs) and the modified,
// symmetrically normalised Laplacians that drive HTC's orbit-weighted GCN
// aggregation (paper §IV-A/B).
//
// For each orbit k, the GOM Ok holds the number of times every edge occurs
// on orbit k (Eq. 1). The matrix is made self-connected with the modified
// diagonal Ck of Eq. 3 — a node attends to itself as strongly as to its
// most important neighbour — and normalised into
// L̃k = F̃k^(−1/2)·(Ok+Ck)·F̃k^(−1/2) where F̃k is the diagonal frequency
// matrix.
package gom

import (
	"fmt"
	"math"

	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/orbit"
	"github.com/htc-align/htc/internal/sparse"
)

// Set bundles the per-orbit matrices of one graph.
type Set struct {
	// Orbits[k] is the weighted (or binary) orbit adjacency Ok without
	// self-connections.
	Orbits []*sparse.CSR
	// Laplacians[k] is the modified normalised Laplacian L̃k used for GCN
	// aggregation.
	Laplacians []*sparse.CSR
}

// K returns the number of orbits in the set.
func (s *Set) K() int { return len(s.Laplacians) }

// Build constructs the first k orbit matrices and Laplacians of g from
// precomputed edge-orbit counts. With binary set, orbit occurrences are
// clamped to 1 (the paper's weaker binary GOM variant).
func Build(g *graph.Graph, counts *orbit.Counts, k int, binary bool) *Set {
	if k < 1 || k > orbit.NumOrbits {
		panic(fmt.Sprintf("gom: k = %d out of range [1,%d]", k, orbit.NumOrbits))
	}
	if counts.G != g {
		panic("gom: counts were computed for a different graph")
	}
	s := &Set{
		Orbits:     make([]*sparse.CSR, k),
		Laplacians: make([]*sparse.CSR, k),
	}
	edges := g.Edges()
	for o := 0; o < k; o++ {
		entries := make([]sparse.Entry, 0, 2*len(edges))
		for i, e := range edges {
			c := counts.PerEdge[i][o]
			if c == 0 {
				continue
			}
			w := float64(c)
			if binary {
				w = 1
			}
			entries = append(entries,
				sparse.Entry{Row: e[0], Col: e[1], Val: w},
				sparse.Entry{Row: e[1], Col: e[0], Val: w})
		}
		om := sparse.FromEntries(g.N(), g.N(), entries)
		s.Orbits[o] = om
		s.Laplacians[o] = Normalize(om)
	}
	return s
}

// SelfConnection returns the modified self-connection diagonal of Eq. 3:
// Ck(i,i) is the largest orbit weight among i's edges, or 1 when node i has
// no orbit-k edges at all.
func SelfConnection(om *sparse.CSR) []float64 {
	diag := om.RowMax()
	for i, v := range diag {
		if v == 0 {
			diag[i] = 1
		}
	}
	return diag
}

// Normalize returns the modified symmetric normalised Laplacian
// L̃ = F̃^(−1/2)·(O+C)·F̃^(−1/2) for an orbit matrix O.
func Normalize(om *sparse.CSR) *sparse.CSR {
	n := om.Rows
	diag := SelfConnection(om)
	// Õ = O + C: append the diagonal to the orbit entries.
	entries := make([]sparse.Entry, 0, om.NNZ()+n)
	for i := 0; i < n; i++ {
		for p := om.RowPtr[i]; p < om.RowPtr[i+1]; p++ {
			entries = append(entries, sparse.Entry{Row: int32(i), Col: om.ColIdx[p], Val: om.Val[p]})
		}
		entries = append(entries, sparse.Entry{Row: int32(i), Col: int32(i), Val: diag[i]})
	}
	modified := sparse.FromEntries(n, n, entries)
	// Symmetric normalisation by the frequency diagonal F̃(i,i) = Σ_j Õ(i,j).
	freq := modified.RowSums()
	inv := make([]float64, n)
	for i, f := range freq {
		if f > 0 {
			inv[i] = 1 / math.Sqrt(f)
		}
	}
	return modified.DiagScale(inv, inv)
}

// LowOrder builds the single orbit-0 set (plain adjacency), the ablation
// variant HTC-L uses. It avoids counting higher orbits entirely.
func LowOrder(g *graph.Graph) *Set {
	edges := g.Edges()
	entries := make([]sparse.Entry, 0, 2*len(edges))
	for _, e := range edges {
		entries = append(entries,
			sparse.Entry{Row: e[0], Col: e[1], Val: 1},
			sparse.Entry{Row: e[1], Col: e[0], Val: 1})
	}
	om := sparse.FromEntries(g.N(), g.N(), entries)
	return &Set{
		Orbits:     []*sparse.CSR{om},
		Laplacians: []*sparse.CSR{Normalize(om)},
	}
}

// FromMatrices wraps arbitrary aggregation matrices (for example diffusion
// matrices in the HTC-DT ablation) as a Set, normalising each one the same
// way orbit matrices are normalised.
func FromMatrices(ms []*sparse.CSR) *Set {
	s := &Set{
		Orbits:     ms,
		Laplacians: make([]*sparse.CSR, len(ms)),
	}
	for i, m := range ms {
		s.Laplacians[i] = Normalize(m)
	}
	return s
}
