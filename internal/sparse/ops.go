package sparse

import (
	"fmt"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/par"
)

// MulDense returns c·x for a CSR matrix c (m×k) and dense x (k×n). This is
// the aggregation kernel of the orbit-weighted GCN: every layer computes
// L̃·(H·W) through it. Rows of the result are computed in parallel.
func (c *CSR) MulDense(x *dense.Matrix) *dense.Matrix {
	out := dense.New(c.Rows, x.Cols)
	c.MulDenseInto(out, x, 0)
	return out
}

// MulDenseInto computes dst = c·x, overwriting dst, fanning out across at
// most `workers` goroutines (≤ 0 = GOMAXPROCS). Each dst row is written by
// exactly one goroutine, so the result is bit-identical for every worker
// count.
func (c *CSR) MulDenseInto(dst, x *dense.Matrix, workers int) {
	if c.Cols != x.Rows || dst.Rows != c.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: MulDense dimension mismatch %s · %dx%d -> %dx%d",
			c, x.Rows, x.Cols, dst.Rows, dst.Cols))
	}
	n := x.Cols
	dst.Zero()
	par.For(workers, c.Rows, avgRowCost(c)*n, func(start, end int) {
		for i := start; i < end; i++ {
			di := dst.Row(i)
			for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
				v := c.Val[p]
				xj := x.Row(int(c.ColIdx[p]))
				for q, xv := range xj {
					di[q] += v * xv
				}
			}
		}
	})
}

// MulVec returns c·x for a vector x of length c.Cols.
func (c *CSR) MulVec(x []float64) []float64 {
	if c.Cols != len(x) {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch %s · %d", c, len(x)))
	}
	out := make([]float64, c.Rows)
	for i := 0; i < c.Rows; i++ {
		var s float64
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			s += c.Val[p] * x[c.ColIdx[p]]
		}
		out[i] = s
	}
	return out
}

// DotDense returns Σ_(i,j) c(i,j)·x(i,j), the inner product between the
// sparse matrix and a dense one. The reconstruction loss uses it to
// evaluate tr(L̃ᵀ·HHᵀ) without forming the n×n reconstruction.
func (c *CSR) DotDense(x *dense.Matrix) float64 {
	if c.Rows != x.Rows || c.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: DotDense shape mismatch %s vs %dx%d", c, x.Rows, x.Cols))
	}
	var s float64
	for i := 0; i < c.Rows; i++ {
		xi := x.Row(i)
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			s += c.Val[p] * xi[c.ColIdx[p]]
		}
	}
	return s
}

func avgRowCost(c *CSR) int {
	if c.Rows == 0 {
		return 1
	}
	return 1 + c.NNZ()/c.Rows
}
