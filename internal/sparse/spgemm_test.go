package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/htc-align/htc/internal/dense"
)

func TestSparseMulMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := randomSparseDense(m, k, 0.3, rng)
		b := randomSparseDense(k, n, 0.3, rng)
		got := Mul(FromDense(a), FromDense(b)).ToDense()
		return got.Equal(dense.Mul(a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSparseMulRowsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := FromDense(randomSparseDense(20, 20, 0.3, rng))
	c := Mul(a, a)
	for i := 0; i < c.Rows; i++ {
		for p := c.RowPtr[i] + 1; p < c.RowPtr[i+1]; p++ {
			if c.ColIdx[p-1] >= c.ColIdx[p] {
				t.Fatalf("row %d columns not strictly sorted", i)
			}
		}
	}
}

func TestSparseMulDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(FromEntries(2, 3, nil), FromEntries(2, 3, nil))
}

func TestSparseAddMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(12), 1+rng.Intn(12)
		a := randomSparseDense(m, n, 0.3, rng)
		b := randomSparseDense(m, n, 0.3, rng)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		got := Add(FromDense(a), FromDense(b), alpha, beta).ToDense()
		want := dense.New(m, n)
		want.AddScaled(a, alpha)
		want.AddScaled(b, beta)
		return got.Equal(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSparseAddCancellation(t *testing.T) {
	a := FromEntries(1, 2, []Entry{{0, 0, 2}, {0, 1, 3}})
	c := Add(a, a, 1, -1)
	if c.NNZ() != 0 {
		t.Fatalf("a − a has %d stored entries, want 0", c.NNZ())
	}
}

func TestSparseAddShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(FromEntries(1, 2, nil), FromEntries(2, 1, nil), 1, 1)
}

func TestSparseMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := FromDense(randomSparseDense(15, 15, 0.3, rng))
	var id []Entry
	for i := int32(0); i < 15; i++ {
		id = append(id, Entry{i, i, 1})
	}
	eye := FromEntries(15, 15, id)
	if !Mul(a, eye).ToDense().Equal(a.ToDense(), 1e-12) {
		t.Fatal("A·I != A")
	}
	if !Mul(eye, a).ToDense().Equal(a.ToDense(), 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestSortInt32(t *testing.T) {
	xs := []int32{5, 1, 4, 1, 3}
	sortInt32(xs)
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			t.Fatalf("not sorted: %v", xs)
		}
	}
	sortInt32(nil) // must not panic
}
