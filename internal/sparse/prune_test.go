package sparse

import (
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/dense"
)

func TestIdentity(t *testing.T) {
	id := Identity(5)
	if id.NNZ() != 5 {
		t.Fatalf("identity nnz = %d", id.NNZ())
	}
	if !id.ToDense().Equal(dense.Identity(5), 0) {
		t.Fatal("Identity(5) is not the identity")
	}
	if Identity(0).NNZ() != 0 {
		t.Fatal("Identity(0) has entries")
	}
}

func TestPrune(t *testing.T) {
	m := FromEntries(3, 3, []Entry{
		{0, 0, 1e-6}, {0, 1, 0.5}, {1, 1, -1e-6}, {1, 2, -0.5}, {2, 0, 0.2},
	})
	p := m.Prune(1e-3, false)
	if p.NNZ() != 3 {
		t.Fatalf("pruned nnz = %d, want 3", p.NNZ())
	}
	if p.At(0, 1) != 0.5 || p.At(1, 2) != -0.5 || p.At(2, 0) != 0.2 {
		t.Fatal("prune dropped a surviving entry")
	}

	// keepDiag retains tiny diagonals.
	kd := m.Prune(1e-3, true)
	if kd.At(0, 0) != 1e-6 || kd.At(1, 1) != -1e-6 {
		t.Fatal("keepDiag did not keep the diagonal")
	}
	if kd.NNZ() != 5 {
		t.Fatalf("keepDiag nnz = %d, want 5", kd.NNZ())
	}

	// eps = 0 keeps everything.
	if m.Prune(0, false).NNZ() != m.NNZ() {
		t.Fatal("Prune(0) changed the support")
	}
}

func TestDiagScaleIntoMatchesDiagScale(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	entries := make([]Entry, 0, 60)
	for k := 0; k < 60; k++ {
		entries = append(entries, Entry{
			Row: int32(rng.Intn(12)), Col: int32(rng.Intn(10)), Val: rng.NormFloat64(),
		})
	}
	c := FromEntries(12, 10, entries)
	left := make([]float64, 12)
	right := make([]float64, 10)
	for i := range left {
		left[i] = rng.Float64() + 0.5
	}
	for i := range right {
		right[i] = rng.Float64() + 0.5
	}
	want := c.DiagScale(left, right)
	dst := c.Clone()
	// Two rounds through the same buffer: values must come from c each
	// time, not accumulate.
	c.DiagScaleInto(dst, left, right)
	c.DiagScaleInto(dst, left, right)
	if !dst.ToDense().Equal(want.ToDense(), 0) {
		t.Fatal("DiagScaleInto diverged from DiagScale")
	}
}
