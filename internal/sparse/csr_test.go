package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/htc-align/htc/internal/dense"
)

func randomSparseDense(r, c int, density float64, rng *rand.Rand) *dense.Matrix {
	m := dense.New(r, c)
	for i := range m.Data {
		if rng.Float64() < density {
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

func TestFromEntriesBasics(t *testing.T) {
	m := FromEntries(3, 3, []Entry{
		{0, 1, 2}, {1, 2, 3}, {2, 0, 4}, {0, 1, 5}, // duplicate (0,1) sums to 7
	})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if m.At(0, 1) != 7 {
		t.Fatalf("At(0,1) = %v, want 7 (summed duplicates)", m.At(0, 1))
	}
	if m.At(0, 0) != 0 {
		t.Fatalf("At(0,0) = %v, want 0", m.At(0, 0))
	}
}

func TestFromEntriesDropsCancellingDuplicates(t *testing.T) {
	m := FromEntries(2, 2, []Entry{{0, 0, 1}, {0, 0, -1}, {1, 1, 5}})
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (cancelled duplicate kept)", m.NNZ())
	}
}

func TestFromEntriesOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds entry")
		}
	}()
	FromEntries(2, 2, []Entry{{5, 0, 1}})
}

func TestDenseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		d := randomSparseDense(r, c, 0.4, rng)
		return FromDense(d).ToDense().Equal(d, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTransposeMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		d := randomSparseDense(r, c, 0.4, rng)
		return FromDense(d).Transpose().ToDense().Equal(d.T(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMulDenseMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := randomSparseDense(m, k, 0.35, rng)
		x := randomSparseDense(k, n, 1.0, rng)
		got := FromDense(a).MulDense(x)
		want := dense.Mul(a, x)
		return got.Equal(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMulDenseLargeParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomSparseDense(300, 300, 0.05, rng)
	x := randomSparseDense(300, 40, 1.0, rng)
	got := FromDense(a).MulDense(x)
	if !got.Equal(dense.Mul(a, x), 1e-8) {
		t.Fatal("parallel sparse MulDense disagrees with dense product")
	}
}

func TestMulVec(t *testing.T) {
	a := FromEntries(2, 3, []Entry{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}})
	y := a.MulVec([]float64{1, 2, 3})
	if y[0] != 7 || y[1] != 6 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestDotDense(t *testing.T) {
	a := FromEntries(2, 2, []Entry{{0, 1, 2}, {1, 0, 3}})
	x := dense.FromRows([][]float64{{10, 20}, {30, 40}})
	// 2*20 + 3*30 = 130.
	if got := a.DotDense(x); got != 130 {
		t.Fatalf("DotDense = %v, want 130", got)
	}
}

func TestRowSumsRowMax(t *testing.T) {
	a := FromEntries(3, 3, []Entry{{0, 0, 1}, {0, 2, 5}, {2, 1, -2}})
	sums := a.RowSums()
	if sums[0] != 6 || sums[1] != 0 || sums[2] != -2 {
		t.Fatalf("RowSums = %v", sums)
	}
	maxes := a.RowMax()
	if maxes[0] != 5 || maxes[1] != 0 || maxes[2] != -2 {
		t.Fatalf("RowMax = %v", maxes)
	}
}

func TestDiagScale(t *testing.T) {
	a := FromEntries(2, 2, []Entry{{0, 0, 1}, {0, 1, 2}, {1, 1, 3}})
	scaled := a.DiagScale([]float64{2, 3}, []float64{5, 7})
	if scaled.At(0, 0) != 10 || scaled.At(0, 1) != 28 || scaled.At(1, 1) != 63 {
		t.Fatalf("DiagScale = %v", scaled.ToDense())
	}
	// Original must be untouched.
	if a.At(0, 0) != 1 {
		t.Fatal("DiagScale mutated its receiver")
	}
}

func TestDiagScaleNilIsIdentity(t *testing.T) {
	a := FromEntries(2, 2, []Entry{{0, 1, 4}})
	if !a.DiagScale(nil, nil).ToDense().Equal(a.ToDense(), 0) {
		t.Fatal("DiagScale(nil, nil) changed the matrix")
	}
	left := a.DiagScale([]float64{2, 2}, nil)
	if left.At(0, 1) != 8 {
		t.Fatalf("left-only DiagScale = %v", left.At(0, 1))
	}
}

func TestFrobNorm(t *testing.T) {
	a := FromEntries(2, 2, []Entry{{0, 0, 3}, {1, 1, 4}})
	if math.Abs(a.FrobNorm()-5) > 1e-12 {
		t.Fatalf("FrobNorm = %v", a.FrobNorm())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromEntries(1, 1, []Entry{{0, 0, 1}})
	b := a.Clone()
	b.Val[0] = 99
	if a.Val[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestAtEmptyRow(t *testing.T) {
	a := FromEntries(3, 3, []Entry{{0, 0, 1}})
	if a.At(1, 1) != 0 {
		t.Fatal("At on empty row should be 0")
	}
}

func BenchmarkMulDense(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := FromDense(randomSparseDense(1000, 1000, 0.01, rng))
	x := randomSparseDense(1000, 64, 1.0, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulDense(x)
	}
}
