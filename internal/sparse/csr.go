// Package sparse implements compressed sparse row (CSR) matrices and the
// handful of operations the HTC pipeline needs: sparse×dense products for
// GCN aggregation, diagonal scaling for trusted-pair reinforcement
// (R·L̃·R), transposition and norms. Matrices are immutable after
// construction, which makes them safe to share across goroutines.
package sparse

import (
	"fmt"
	"math"
	"sort"

	"github.com/htc-align/htc/internal/dense"
)

// Entry is one coordinate-format (COO) element used to build a CSR matrix.
type Entry struct {
	Row, Col int32
	Val      float64
}

// CSR is a compressed sparse row matrix. Construct it with FromEntries or
// FromDense; the zero value is an empty 0×0 matrix.
type CSR struct {
	Rows, Cols int
	// RowPtr has length Rows+1; row i occupies ColIdx[RowPtr[i]:RowPtr[i+1]].
	RowPtr []int32
	// ColIdx holds the column of each stored value, sorted within a row.
	ColIdx []int32
	// Val holds the stored values, parallel to ColIdx.
	Val []float64
}

// FromEntries builds a CSR matrix from coordinate entries. Duplicate
// (row, col) entries are summed; explicit zeros are kept out of the result.
// The input slice is not modified.
func FromEntries(rows, cols int, entries []Entry) *CSR {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimension %dx%d", rows, cols))
	}
	es := make([]Entry, len(entries))
	copy(es, entries)
	sort.Slice(es, func(i, j int) bool {
		if es[i].Row != es[j].Row {
			return es[i].Row < es[j].Row
		}
		return es[i].Col < es[j].Col
	})
	c := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for i := 0; i < len(es); {
		e := es[i]
		if e.Row < 0 || int(e.Row) >= rows || e.Col < 0 || int(e.Col) >= cols {
			panic(fmt.Sprintf("sparse: entry (%d,%d) out of bounds for %dx%d", e.Row, e.Col, rows, cols))
		}
		sum := e.Val
		j := i + 1
		for j < len(es) && es[j].Row == e.Row && es[j].Col == e.Col {
			sum += es[j].Val
			j++
		}
		if sum != 0 {
			c.ColIdx = append(c.ColIdx, e.Col)
			c.Val = append(c.Val, sum)
			c.RowPtr[e.Row+1]++
		}
		i = j
	}
	for i := 0; i < rows; i++ {
		c.RowPtr[i+1] += c.RowPtr[i]
	}
	return c
}

// Identity returns the n×n identity matrix in CSR form.
func Identity(n int) *CSR {
	if n < 0 {
		panic(fmt.Sprintf("sparse: negative dimension %d", n))
	}
	c := &CSR{
		Rows: n, Cols: n,
		RowPtr: make([]int32, n+1),
		ColIdx: make([]int32, n),
		Val:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		c.RowPtr[i+1] = int32(i + 1)
		c.ColIdx[i] = int32(i)
		c.Val[i] = 1
	}
	return c
}

// Prune returns a copy of c without the entries whose magnitude is below
// eps. With keepDiag set, diagonal entries survive regardless of size —
// the invariant diffusion matrices need so every node stays
// self-connected. The result is sized exactly: surviving entries are
// counted first, so no append-doubling garbage is produced.
func (c *CSR) Prune(eps float64, keepDiag bool) *CSR {
	keep := func(i int, p int32) bool {
		v := c.Val[p]
		return v >= eps || -v >= eps || (keepDiag && int(c.ColIdx[p]) == i)
	}
	nnz := 0
	for i := 0; i < c.Rows; i++ {
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			if keep(i, p) {
				nnz++
			}
		}
	}
	out := &CSR{
		Rows: c.Rows, Cols: c.Cols,
		RowPtr: make([]int32, c.Rows+1),
		ColIdx: make([]int32, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
	for i := 0; i < c.Rows; i++ {
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			if keep(i, p) {
				out.ColIdx = append(out.ColIdx, c.ColIdx[p])
				out.Val = append(out.Val, c.Val[p])
			}
		}
		out.RowPtr[i+1] = int32(len(out.Val))
	}
	return out
}

// FromDense converts a dense matrix to CSR, dropping exact zeros.
func FromDense(m *dense.Matrix) *CSR {
	var entries []Entry
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if v != 0 {
				entries = append(entries, Entry{Row: int32(i), Col: int32(j), Val: v})
			}
		}
	}
	return FromEntries(m.Rows, m.Cols, entries)
}

// ToDense materialises the matrix densely. Intended for tests and small
// matrices only.
func (c *CSR) ToDense() *dense.Matrix {
	m := dense.New(c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			m.Set(i, int(c.ColIdx[p]), c.Val[p])
		}
	}
	return m
}

// NNZ returns the number of stored (non-zero) entries.
func (c *CSR) NNZ() int { return len(c.Val) }

// At returns element (i, j) using binary search within row i.
func (c *CSR) At(i, j int) float64 {
	lo, hi := int(c.RowPtr[i]), int(c.RowPtr[i+1])
	pos := lo + sort.Search(hi-lo, func(k int) bool { return c.ColIdx[lo+k] >= int32(j) })
	if pos < hi && c.ColIdx[pos] == int32(j) {
		return c.Val[pos]
	}
	return 0
}

// Clone returns a deep copy of c.
func (c *CSR) Clone() *CSR {
	cp := &CSR{
		Rows: c.Rows, Cols: c.Cols,
		RowPtr: append([]int32(nil), c.RowPtr...),
		ColIdx: append([]int32(nil), c.ColIdx...),
		Val:    append([]float64(nil), c.Val...),
	}
	return cp
}

// Transpose returns cᵀ as a new CSR matrix.
func (c *CSR) Transpose() *CSR {
	t := &CSR{
		Rows: c.Cols, Cols: c.Rows,
		RowPtr: make([]int32, c.Cols+1),
		ColIdx: make([]int32, c.NNZ()),
		Val:    make([]float64, c.NNZ()),
	}
	for _, j := range c.ColIdx {
		t.RowPtr[j+1]++
	}
	for i := 0; i < t.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int32(nil), t.RowPtr...)
	for i := 0; i < c.Rows; i++ {
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			j := c.ColIdx[p]
			pos := next[j]
			next[j]++
			t.ColIdx[pos] = int32(i)
			t.Val[pos] = c.Val[p]
		}
	}
	return t
}

// RowSums returns the sum of each row's stored values (the degree vector
// of a weighted adjacency matrix).
func (c *CSR) RowSums() []float64 {
	out := make([]float64, c.Rows)
	for i := 0; i < c.Rows; i++ {
		var s float64
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			s += c.Val[p]
		}
		out[i] = s
	}
	return out
}

// RowMax returns the maximum stored value of each row, or 0 for empty rows.
// Negative-only rows also report their true maximum. This feeds the
// modified self-connection of HTC Eq. (3).
func (c *CSR) RowMax() []float64 {
	out := make([]float64, c.Rows)
	for i := 0; i < c.Rows; i++ {
		if c.RowPtr[i] == c.RowPtr[i+1] {
			continue
		}
		mx := math.Inf(-1)
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			if c.Val[p] > mx {
				mx = c.Val[p]
			}
		}
		out[i] = mx
	}
	return out
}

// SumSquares returns Σ v², the squared Frobenius norm of the stored values.
func (c *CSR) SumSquares() float64 {
	var s float64
	for _, v := range c.Val {
		s += v * v
	}
	return s
}

// FrobNorm returns the Frobenius norm of c.
func (c *CSR) FrobNorm() float64 { return math.Sqrt(c.SumSquares()) }

// DiagScale returns diag(left)·c·diag(right) as a new matrix: entry (i, j)
// becomes left[i]·v·right[j]. Either vector may be nil, meaning identity.
// The HTC fine-tuning step uses this to apply the reinforcement matrices
// (Eq. 14) without mutating the trained Laplacians.
func (c *CSR) DiagScale(left, right []float64) *CSR {
	if left != nil && len(left) != c.Rows {
		panic(fmt.Sprintf("sparse: DiagScale left length %d, want %d", len(left), c.Rows))
	}
	if right != nil && len(right) != c.Cols {
		panic(fmt.Sprintf("sparse: DiagScale right length %d, want %d", len(right), c.Cols))
	}
	out := c.Clone()
	c.DiagScaleInto(out, left, right)
	return out
}

// DiagScaleInto writes diag(left)·c·diag(right) into dst, which must share
// c's sparsity pattern (typically a Clone made once). The fine-tuning loop
// rescales the same Laplacian every iteration; reusing dst avoids
// re-cloning the index arrays each round.
func (c *CSR) DiagScaleInto(dst *CSR, left, right []float64) {
	if left != nil && len(left) != c.Rows {
		panic(fmt.Sprintf("sparse: DiagScaleInto left length %d, want %d", len(left), c.Rows))
	}
	if right != nil && len(right) != c.Cols {
		panic(fmt.Sprintf("sparse: DiagScaleInto right length %d, want %d", len(right), c.Cols))
	}
	if dst.Rows != c.Rows || dst.Cols != c.Cols || len(dst.Val) != len(c.Val) {
		panic(fmt.Sprintf("sparse: DiagScaleInto dst %s does not match src %s", dst, c))
	}
	for i := 0; i < c.Rows; i++ {
		lf := 1.0
		if left != nil {
			lf = left[i]
		}
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			v := c.Val[p] * lf
			if right != nil {
				v *= right[c.ColIdx[p]]
			}
			dst.Val[p] = v
		}
	}
}

// String renders the shape and density for debugging.
func (c *CSR) String() string {
	return fmt.Sprintf("sparse.CSR(%dx%d, nnz=%d)", c.Rows, c.Cols, c.NNZ())
}
