package sparse

import (
	"fmt"
	"slices"
)

// Mul returns the sparse product a·b as a new CSR matrix, computed with
// Gustavson's row-wise algorithm: O(Σ flops of non-zero pairings). It is
// the tool for composing aggregation operators (for example diffusion
// powers) without densifying.
func Mul(a, b *CSR) *CSR {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: Mul dimension mismatch %s · %s", a, b))
	}
	out := &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int32, a.Rows+1)}
	acc := make([]float64, b.Cols)   // dense accumulator for one row
	touched := make([]int32, 0, 256) // columns written this row
	mark := make([]bool, b.Cols)

	for i := 0; i < a.Rows; i++ {
		touched = touched[:0]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			av := a.Val[p]
			k := a.ColIdx[p]
			for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
				j := b.ColIdx[q]
				if !mark[j] {
					mark[j] = true
					touched = append(touched, j)
				}
				acc[j] += av * b.Val[q]
			}
		}
		// Emit the row in sorted column order (CSR invariant). Dense rows
		// (diffusion powers fill up fast) are emitted by scanning the
		// accumulator once instead of sorting a near-n column list.
		if len(touched) >= b.Cols/4 {
			for j := range acc {
				if mark[j] {
					if acc[j] != 0 {
						out.ColIdx = append(out.ColIdx, int32(j))
						out.Val = append(out.Val, acc[j])
					}
					acc[j] = 0
					mark[j] = false
				}
			}
		} else {
			sortInt32(touched)
			for _, j := range touched {
				if acc[j] != 0 {
					out.ColIdx = append(out.ColIdx, j)
					out.Val = append(out.Val, acc[j])
				}
				acc[j] = 0
				mark[j] = false
			}
		}
		out.RowPtr[i+1] = int32(len(out.Val))
	}
	return out
}

// Add returns alpha·a + beta·b for same-shaped sparse matrices.
func Add(a, b *CSR, alpha, beta float64) *CSR {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("sparse: Add shape mismatch %s vs %s", a, b))
	}
	out := &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int32, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		pa, pb := a.RowPtr[i], b.RowPtr[i]
		ea, eb := a.RowPtr[i+1], b.RowPtr[i+1]
		for pa < ea || pb < eb {
			var col int32
			var val float64
			switch {
			case pb >= eb || (pa < ea && a.ColIdx[pa] < b.ColIdx[pb]):
				col, val = a.ColIdx[pa], alpha*a.Val[pa]
				pa++
			case pa >= ea || b.ColIdx[pb] < a.ColIdx[pa]:
				col, val = b.ColIdx[pb], beta*b.Val[pb]
				pb++
			default: // equal columns
				col, val = a.ColIdx[pa], alpha*a.Val[pa]+beta*b.Val[pb]
				pa++
				pb++
			}
			if val != 0 {
				out.ColIdx = append(out.ColIdx, col)
				out.Val = append(out.Val, val)
			}
		}
		out.RowPtr[i+1] = int32(len(out.Val))
	}
	return out
}

// sortInt32 sorts a touched-column list: insertion sort for the short,
// nearly sorted lists typical of sparse rows, falling back to the stdlib
// sort beyond that (insertion sort goes quadratic on the long, shuffled
// lists the diffusion powers produce).
func sortInt32(xs []int32) {
	if len(xs) > 48 {
		slices.Sort(xs)
		return
	}
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}
