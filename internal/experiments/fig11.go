package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/htc-align/htc/internal/core"
	"github.com/htc-align/htc/internal/datasets"
	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/tsne"
)

// TSNEResult holds one orbit's visualisation data for the paper's Fig. 11:
// 2-D t-SNE layouts of sampled anchor embeddings before and after
// alignment, plus a quantitative overlap proxy.
type TSNEResult struct {
	Orbit int
	// Before and After are (2·Sample)×2 coordinate matrices: rows
	// 0..Sample−1 are source anchors, rows Sample..2·Sample−1 their
	// target counterparts, in the same anchor order.
	Before, After *dense.Matrix
	// Sample is the number of anchor pairs visualised.
	Sample int
	// MRRBefore and MRRAfter quantify the figure's visual overlap as a
	// retrieval problem: for every source anchor embedding, the
	// reciprocal rank of its true counterpart among all sampled target
	// anchor embeddings (by Euclidean distance), averaged. Random
	// embeddings score ≈ ln(s)/s; perfectly overlapping anchor clouds
	// score 1.
	MRRBefore, MRRAfter float64
}

// Fig11 regenerates the visualisation analysis on the Douban pair: anchor
// embeddings per orbit before alignment (encoder almost untrained) and
// after the full HTC pipeline.
func Fig11(o Options) ([]TSNEResult, string, error) {
	o = o.withDefaults()
	pair := datasets.Douban(o.size(450), o.Seed+1)

	// Both runs share one prepared pair: the trained (Full) and untrained
	// (HighOrder) passes use the same orbit counts and Laplacians.
	afterCfg := o.htcConfig()
	afterCfg.KeepEmbeddings = true
	prep, err := core.Prepare(pair.Source, pair.Target, afterCfg)
	if err != nil {
		return nil, "", fmt.Errorf("fig11 prepare: %w", err)
	}
	after, err := prep.Align(afterCfg)
	if err != nil {
		return nil, "", fmt.Errorf("fig11 trained run: %w", err)
	}
	beforeCfg := afterCfg
	beforeCfg.Epochs = 1 // essentially the random initialisation
	beforeCfg.Variant = core.HighOrder
	before, err := prep.Align(beforeCfg)
	if err != nil {
		return nil, "", fmt.Errorf("fig11 untrained run: %w", err)
	}

	// Sample up to 150 anchors, as in the paper.
	var anchors [][2]int
	for s, t := range pair.Truth {
		if t >= 0 {
			anchors = append(anchors, [2]int{s, t})
		}
	}
	if len(anchors) > 150 {
		anchors = anchors[:150]
	}

	orbits := []int{0, 1, 3, 5, 7}
	var out []TSNEResult
	for _, k := range orbits {
		if k >= len(after.SourceEmbeddings) {
			continue
		}
		res := TSNEResult{Orbit: k, Sample: len(anchors)}
		res.Before, res.MRRBefore = layout(before.SourceEmbeddings[k], before.TargetEmbeddings[k], anchors, o.Seed)
		res.After, res.MRRAfter = layout(after.SourceEmbeddings[k], after.TargetEmbeddings[k], anchors, o.Seed)
		out = append(out, res)
	}

	var b strings.Builder
	b.WriteString("== Fig 11: anchor embedding overlap (retrieval MRR within sample; higher = more aligned) ==\n")
	fmt.Fprintf(&b, "%-8s %12s %12s\n", "orbit", "before", "after")
	for _, r := range out {
		fmt.Fprintf(&b, "%-8d %12.4f %12.4f\n", r.Orbit, r.MRRBefore, r.MRRAfter)
	}
	return out, b.String(), nil
}

// layout stacks the sampled anchor embeddings of both graphs, computes the
// 2-D t-SNE coordinates, and measures the cross-graph retrieval MRR: for
// every source anchor, the reciprocal rank of its true target among all
// sampled target anchors by embedding distance.
func layout(hs, ht *dense.Matrix, anchors [][2]int, seed int64) (*dense.Matrix, float64) {
	s := len(anchors)
	d := hs.Cols
	stack := dense.New(2*s, d)
	for i, a := range anchors {
		copy(stack.Row(i), hs.Row(a[0]))
		copy(stack.Row(s+i), ht.Row(a[1]))
	}
	// Row-normalise so distances compare across training stages.
	stack.NormalizeRows()

	var mrr float64
	for i := 0; i < s; i++ {
		trueDist := euclid(stack.Row(i), stack.Row(s+i))
		rank := 1
		for j := 0; j < s; j++ {
			if j != i && euclid(stack.Row(i), stack.Row(s+j)) < trueDist {
				rank++
			}
		}
		mrr += 1 / float64(rank)
	}
	mrr /= float64(s)

	coords := tsne.Embed(stack, tsne.Config{Iters: 250, Perplexity: 20, Seed: seed})
	return coords, mrr
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
