package experiments

import (
	"strings"
	"testing"
)

// tiny returns options small enough for CI: ~60–180 node datasets and
// short training.
func tiny() Options { return Options{Scale: 0.12, Seed: 7, Epochs: 8} }

func TestTable1(t *testing.T) {
	rows, text := Table1(tiny())
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 networks", len(rows))
	}
	for _, r := range rows {
		if r.Nodes <= 0 || r.Edges <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	if !strings.Contains(text, "Douban Online") {
		t.Fatal("rendering missing dataset names")
	}
}

func TestTable2AndFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("full method roster is slow")
	}
	cells, text, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 7*3 {
		t.Fatalf("cells = %d, want 21 (7 methods × 3 pairs)", len(cells))
	}
	for _, c := range cells {
		if c.P1 < 0 || c.P1 > 1 || c.Seconds < 0 {
			t.Fatalf("bad cell %+v", c)
		}
	}
	if !strings.Contains(text, "HTC") || !strings.Contains(text, "GAlign") {
		t.Fatal("rendering missing methods")
	}
	fig7 := Fig7(cells)
	if !strings.Contains(fig7, "runtime comparison") {
		t.Fatal("Fig7 rendering broken")
	}
}

func TestTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation roster is slow")
	}
	cells, text, err := Table3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6*2 {
		t.Fatalf("cells = %d, want 12 (6 variants × 2 datasets)", len(cells))
	}
	for _, c := range cells {
		if c.P1 < 0 || c.P1 > 1 {
			t.Fatalf("bad cell %+v", c)
		}
	}
	if !strings.Contains(text, "HTC-DT") {
		t.Fatal("rendering missing variants")
	}
}

// TestTable3Refined covers the refinement face of the ablation table: a
// nonzero RefineIters runs the RefiNA stage on every variant and adds
// the unrefined p@1 column to the rendering.
func TestTable3Refined(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation roster is slow")
	}
	o := tiny()
	o.RefineIters = 3
	cells, text, err := Table3(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if !c.Refined {
			t.Fatalf("cell %+v not marked Refined with RefineIters = 3", c)
		}
		if c.P1Unrefined < 0 || c.P1Unrefined > 1 {
			t.Fatalf("bad unrefined p@1 in %+v", c)
		}
	}
	if !strings.Contains(text, "p@1 raw") {
		t.Fatal("refined rendering missing the unrefined column")
	}
}

func TestFig6(t *testing.T) {
	rows, text, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 datasets", len(rows))
	}
	for _, r := range rows {
		var sum float64
		for _, g := range r.Gamma {
			sum += g
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("%s gammas sum to %v", r.Dataset, sum)
		}
	}
	if !strings.Contains(text, "orbit") {
		t.Fatal("rendering broken")
	}
}

func TestFig8(t *testing.T) {
	rows, text, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Timings.Total <= 0 {
			t.Fatalf("no total time for %s", r.Dataset)
		}
	}
	if !strings.Contains(text, "finetune") {
		t.Fatal("rendering broken")
	}
}

func TestFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("robustness sweep is slow")
	}
	points, text, err := Fig9(Options{Scale: 0.06, Seed: 7, Epochs: 6})
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets × 5 ratios × 7 methods.
	if len(points) != 70 {
		t.Fatalf("points = %d, want 70", len(points))
	}
	if !strings.Contains(text, "Econ") || !strings.Contains(text, "BN") {
		t.Fatal("rendering broken")
	}
}

func TestFig9Additive(t *testing.T) {
	if testing.Short() {
		t.Skip("robustness sweep is slow")
	}
	points, text, err := Fig9Additive(Options{Scale: 0.06, Seed: 7, Epochs: 6})
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets × 3 ratios × 7 methods.
	if len(points) != 42 {
		t.Fatalf("points = %d, want 42", len(points))
	}
	if !strings.Contains(text, "Econ+add") {
		t.Fatal("rendering broken")
	}
}

func TestFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("hyperparameter sweep is slow")
	}
	points, text, err := Fig10(Options{Scale: 0.15, Seed: 7, Epochs: 6})
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets × (7 K + 5 d + 4 m + 4 β) = 40 points.
	if len(points) != 40 {
		t.Fatalf("points = %d, want 40", len(points))
	}
	params := map[string]bool{}
	for _, p := range points {
		params[p.Param] = true
	}
	for _, want := range []string{"K", "d", "m", "beta"} {
		if !params[want] {
			t.Fatalf("missing sweep %q", want)
		}
	}
	if !strings.Contains(text, "beta") {
		t.Fatal("rendering broken")
	}
}

func TestFig11(t *testing.T) {
	rows, text, err := Fig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no orbits visualised")
	}
	var mrrBefore, mrrAfter float64
	for _, r := range rows {
		if r.Before == nil || r.After == nil {
			t.Fatalf("orbit %d missing layouts", r.Orbit)
		}
		if r.Before.Rows != 2*r.Sample || r.Before.Cols != 2 {
			t.Fatalf("orbit %d layout shape %dx%d", r.Orbit, r.Before.Rows, r.Before.Cols)
		}
		mrrBefore += r.MRRBefore
		mrrAfter += r.MRRAfter
	}
	// Training must tighten the anchor clouds on average (the point of
	// Fig. 11): after-alignment retrieval must beat the untrained
	// encoder.
	if mrrAfter <= mrrBefore {
		t.Errorf("mean MRR after (%.3f) not above before (%.3f)",
			mrrAfter/float64(len(rows)), mrrBefore/float64(len(rows)))
	}
	if !strings.Contains(text, "before") {
		t.Fatal("rendering broken")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 {
		t.Fatalf("scale default = %v", o.Scale)
	}
	if n := (Options{Scale: 0.001}).size(800); n != 60 {
		t.Fatalf("size floor = %d, want 60", n)
	}
}
