package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/htc-align/htc/internal/core"
	"github.com/htc-align/htc/internal/datasets"
	"github.com/htc-align/htc/internal/metrics"
)

// Custom runs the full variant roster over one externally loaded pair —
// the htc-experiments face of the real-data ingestion API (-source /
// -target / -format / -truth). The pair is Prepared once and every
// variant aligns over the shared artifacts, exactly like the Table III
// sweep; accuracy columns are reported when the pair carries ground
// truth and omitted otherwise.
func Custom(pair *datasets.Pair, o Options) ([]Cell, string, error) {
	o = o.withDefaults()
	type variantDef struct {
		name    string
		variant core.Variant
		binary  bool
	}
	variants := []variantDef{
		{"HTC-L", core.LowOrder, false},
		{"HTC-H", core.HighOrder, false},
		{"HTC-LT", core.LowOrderFT, false},
		{"HTC-DT", core.DiffusionFT, false},
		{"HTC-B", core.Full, true},
		{"HTC", core.Full, false},
	}
	prep, err := core.Prepare(pair.Source, pair.Target, o.htcConfig())
	if err != nil {
		return nil, "", fmt.Errorf("preparing %s: %w", pair.Name, err)
	}
	hasTruth := pair.Truth.NumAnchors() > 0
	var cells []Cell
	for _, v := range variants {
		cfg := o.htcConfig()
		cfg.Variant = v.variant
		cfg.Binary = v.binary
		start := time.Now()
		res, err := prep.Align(cfg)
		if err != nil {
			return nil, "", fmt.Errorf("%s on %s: %w", v.name, pair.Name, err)
		}
		cell := Cell{Method: v.name, Dataset: pair.Name, Seconds: time.Since(start).Seconds()}
		if hasTruth {
			rep := metrics.EvaluateSim(res.Sim, pair.Truth, 1, 10)
			cell.P1, cell.P10, cell.MRR = rep.PrecisionAt[1], rep.PrecisionAt[10], rep.MRR
			if res.PreRefineSim != nil {
				pre := metrics.EvaluateSim(res.PreRefineSim, pair.Truth, 1)
				cell.P1Unrefined = pre.PrecisionAt[1]
				cell.Refined = true
			}
		}
		cells = append(cells, cell)
	}

	refined := hasTruth && o.RefineIters > 0
	var b strings.Builder
	fmt.Fprintf(&b, "== custom pair %s: source %v, target %v, %d anchors ==\n",
		pair.Name, pair.Source, pair.Target, pair.Truth.NumAnchors())
	if refined {
		fmt.Fprintf(&b, "%-8s %8s %8s %8s %8s %9s\n", "variant", "p@1", "p@1 raw", "p@10", "MRR", "seconds")
		for _, c := range cells {
			fmt.Fprintf(&b, "%-8s %8.4f %8.4f %8.4f %8.4f %9.2f\n", c.Method, c.P1, c.P1Unrefined, c.P10, c.MRR, c.Seconds)
		}
	} else if hasTruth {
		fmt.Fprintf(&b, "%-8s %8s %8s %8s %9s\n", "variant", "p@1", "p@10", "MRR", "seconds")
		for _, c := range cells {
			fmt.Fprintf(&b, "%-8s %8.4f %8.4f %8.4f %9.2f\n", c.Method, c.P1, c.P10, c.MRR, c.Seconds)
		}
	} else {
		b.WriteString("(no ground truth loaded: pass -truth to report accuracy)\n")
		fmt.Fprintf(&b, "%-8s %9s\n", "variant", "seconds")
		for _, c := range cells {
			fmt.Fprintf(&b, "%-8s %9.2f\n", c.Method, c.Seconds)
		}
	}
	return cells, b.String(), nil
}
