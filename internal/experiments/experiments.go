// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V) on the simulated datasets. Each driver returns a
// structured result plus a text rendering, so the same code backs the
// htc-experiments CLI, the root benchmark harness, and EXPERIMENTS.md.
//
// Scale note: a Scale of 1.0 runs the laptop-sized defaults documented in
// DESIGN.md; smaller scales shrink the datasets proportionally for quick
// runs and benchmarks. The *shape* of each result (method ordering,
// crossovers, factors) is the reproduction target, not absolute numbers.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	htc "github.com/htc-align/htc"
	"github.com/htc-align/htc/internal/align"
	"github.com/htc-align/htc/internal/baselines"
	"github.com/htc-align/htc/internal/core"
	"github.com/htc-align/htc/internal/datasets"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/metrics"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies the default dataset sizes (default 1.0; benchmark
	// presets use ≈ 0.3).
	Scale float64
	// Seed drives dataset generation and model initialisation.
	Seed int64
	// Epochs overrides training epochs (0 = method defaults).
	Epochs int
	// Progress, when non-nil, observes every HTC pipeline run of the
	// experiment (the htc-experiments -progress flag feeds it to a
	// stderr logger). Baseline methods don't report progress.
	Progress core.Observer
	// Similarity selects the similarity backend every HTC run uses
	// (auto/dense/topk/ann; the htc-experiments -sim flag). Baselines are
	// untouched — the knob exists to measure the top-k and ANN
	// approximations against the paper numbers.
	Similarity core.SimBackend
	// CandidateK is the top-k candidate count (0 = automatic).
	CandidateK int
	// AnnBits and AnnProbes tune the ANN backend's LSH index (0 =
	// automatic; the htc-experiments -ann-bits/-ann-probes flags).
	AnnBits   int
	AnnProbes int
	// AnnPoolCap bounds the ANN backend's per-query re-rank pool (0 =
	// unbounded; the htc-experiments -ann-pool-cap flag).
	AnnPoolCap int
	// Precision selects the fine-tune compute tier of every HTC run
	// (auto/f64/f32; the htc-experiments -precision flag) — the knob to
	// measure the float32 tier against the paper numbers.
	Precision core.Precision
	// RefineIters runs that many RefiNA refinement iterations after every
	// HTC integration (0 = no refinement; the htc-experiments
	// -refine-iters flag). Refined runs report both the refined and the
	// unrefined accuracy, so the refinement lift is visible per variant.
	RefineIters int
	// RefineTokenK bounds the refinement token-match budget per row (0 =
	// automatic; the htc-experiments -refine-token-k flag).
	RefineTokenK int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	return o
}

func (o Options) size(base int) int {
	n := int(float64(base) * o.Scale)
	if n < 60 {
		n = 60
	}
	return n
}

// htcConfig is the shared HTC configuration for all experiments.
func (o Options) htcConfig() core.Config {
	return core.Config{
		Hidden: 64, Embed: 32, Epochs: o.Epochs, Seed: o.Seed, Progress: o.Progress,
		Similarity: o.Similarity, CandidateK: o.CandidateK,
		AnnBits: o.AnnBits, AnnProbes: o.AnnProbes, AnnPoolCap: o.AnnPoolCap,
		Precision:   o.Precision,
		RefineIters: o.RefineIters, RefineTokenK: o.RefineTokenK,
	}
}

// realWorldPairs generates the three "real-world" pairs at the requested
// scale.
func (o Options) realWorldPairs() []*datasets.Pair {
	return []*datasets.Pair{
		datasets.AllmovieImdb(o.size(800), o.Seed),
		datasets.Douban(o.size(900), o.Seed+1),
		datasets.FlickrMyspace(o.size(1000), o.Seed+2),
	}
}

// aligners builds the method roster of Table II. Supervised methods are
// flagged so the driver can hand them 10% of ground truth.
type method struct {
	aligner    baselines.Aligner
	supervised bool
}

func (o Options) methods() []method {
	epochs := o.Epochs
	return []method{
		{htc.HTC{Config: o.htcConfig()}, false},
		{baselines.GAlign{Epochs: epochs, Seed: o.Seed}, false},
		{baselines.FINAL{}, true},
		{baselines.PALE{Epochs: epochs, Seed: o.Seed}, true},
		{baselines.CENALP{Epochs: epochs, Rounds: 3, Seed: o.Seed}, true},
		{baselines.IsoRank{}, true},
		{baselines.REGAL{Seed: o.Seed}, false},
	}
}

// Cell is one method-on-dataset measurement.
type Cell struct {
	Method  string
	Dataset string
	P1, P10 float64
	MRR     float64
	Seconds float64
	// P1Unrefined is the pre-refinement p@1 of an HTC run whose config
	// enabled the RefiNA stage; Refined marks such runs (other cells
	// leave both zero).
	P1Unrefined float64
	Refined     bool
}

// simAligner is the optional richer face of an Aligner: it returns the
// backend's native similarity representation, so top-k runs are
// evaluated over candidate lists (pruned anchors = misses) instead of a
// floored dense materialisation that would inflate their ranks.
type simAligner interface {
	AlignSim(gs, gt *graph.Graph, seeds []baselines.Anchor) (align.Sim, error)
}

// runMethod executes one aligner on one pair and evaluates it.
func runMethod(m method, pair *datasets.Pair, seed int64) (Cell, error) {
	var seeds []baselines.Anchor
	if m.supervised {
		seeds = baselines.SampleSeeds(pair.Truth, 0.10, seed)
	}
	start := time.Now()
	var sim align.Sim
	if sa, ok := m.aligner.(simAligner); ok {
		s, err := sa.AlignSim(pair.Source, pair.Target, seeds)
		if err != nil {
			return Cell{}, fmt.Errorf("%s on %s: %w", m.aligner.Name(), pair.Name, err)
		}
		sim = s
	} else {
		matrix, err := m.aligner.Align(pair.Source, pair.Target, seeds)
		if err != nil {
			return Cell{}, fmt.Errorf("%s on %s: %w", m.aligner.Name(), pair.Name, err)
		}
		sim = align.DenseSim{M: matrix}
	}
	elapsed := time.Since(start)
	rep := metrics.EvaluateSim(sim, pair.Truth, 1, 10)
	return Cell{
		Method: m.aligner.Name(), Dataset: pair.Name,
		P1: rep.PrecisionAt[1], P10: rep.PrecisionAt[10], MRR: rep.MRR,
		Seconds: elapsed.Seconds(),
	}, nil
}

// renderTable renders cells grouped per dataset.
func renderTable(title string, cells []Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	byDataset := map[string][]Cell{}
	var order []string
	for _, c := range cells {
		if _, seen := byDataset[c.Dataset]; !seen {
			order = append(order, c.Dataset)
		}
		byDataset[c.Dataset] = append(byDataset[c.Dataset], c)
	}
	for _, ds := range order {
		fmt.Fprintf(&b, "\n-- %s --\n", ds)
		fmt.Fprintf(&b, "%-8s %8s %8s %8s %9s\n", "method", "p@1", "p@10", "MRR", "time(s)")
		group := byDataset[ds]
		sort.SliceStable(group, func(i, j int) bool { return group[i].P1 > group[j].P1 })
		for _, c := range group {
			fmt.Fprintf(&b, "%-8s %8.4f %8.4f %8.4f %9.2f\n", c.Method, c.P1, c.P10, c.MRR, c.Seconds)
		}
	}
	return b.String()
}
