package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/htc-align/htc/internal/core"
	"github.com/htc-align/htc/internal/datasets"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/metrics"
	"github.com/htc-align/htc/internal/orbit"
)

// OrbitImportance holds one dataset's posterior orbit weights (Fig. 6).
type OrbitImportance struct {
	Dataset string
	// Gamma[k] is orbit k's weight γk.
	Gamma []float64
}

// Fig6 regenerates the orbit-importance analysis: run full HTC on the
// three real-world pairs and report the γ distribution over orbits.
func Fig6(o Options) ([]OrbitImportance, string, error) {
	o = o.withDefaults()
	var rows []OrbitImportance
	for _, pair := range o.realWorldPairs() {
		res, err := core.Align(pair.Source, pair.Target, o.htcConfig())
		if err != nil {
			return nil, "", fmt.Errorf("HTC on %s: %w", pair.Name, err)
		}
		gamma := make([]float64, len(res.PerOrbit))
		for _, oc := range res.PerOrbit {
			gamma[oc.Orbit] = oc.Gamma
		}
		rows = append(rows, OrbitImportance{Dataset: pair.Name, Gamma: gamma})
	}
	var b strings.Builder
	b.WriteString("== Fig 6: orbit importance (γ of Eq. 15) ==\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "\n-- %s --\n", r.Dataset)
		idx := make([]int, len(r.Gamma))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return r.Gamma[idx[i]] > r.Gamma[idx[j]] })
		for rank, k := range idx {
			bar := strings.Repeat("█", int(r.Gamma[k]*200))
			fmt.Fprintf(&b, "#%2d orbit %2d %-15s γ=%.4f %s\n", rank+1, k, orbit.Names[k], r.Gamma[k], bar)
		}
	}
	return rows, b.String(), nil
}

// RobustnessPoint is one (dataset, removal ratio, method) accuracy sample
// of the Fig. 9 study.
type RobustnessPoint struct {
	Dataset string
	Ratio   float64
	Method  string
	P1      float64
}

// Fig9 regenerates the robustness study: targets derived from Econ and BN
// with 10–50% edge removal, all methods evaluated at each level.
func Fig9(o Options) ([]RobustnessPoint, string, error) {
	o = o.withDefaults()
	sources := []struct {
		name string
		g    *graph.Graph
	}{
		{"Econ", datasets.Econ(o.size(1258), o.Seed+3)},
		{"BN", datasets.BN(o.size(1781), o.Seed+4)},
	}
	ratios := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	var points []RobustnessPoint
	for _, src := range sources {
		for _, ratio := range ratios {
			target, truth := datasets.MakeTarget(src.g, ratio, o.Seed+int64(ratio*100))
			pair := &datasets.Pair{Name: src.name, Source: src.g, Target: target, Truth: truth}
			for _, m := range o.methods() {
				cell, err := runMethod(m, pair, o.Seed+200)
				if err != nil {
					return nil, "", err
				}
				points = append(points, RobustnessPoint{
					Dataset: src.name, Ratio: ratio, Method: cell.Method, P1: cell.P1,
				})
			}
		}
	}
	return points, renderFig9(points), nil
}

func renderFig9(points []RobustnessPoint) string {
	var b strings.Builder
	b.WriteString("== Fig 9: robustness against topological noise (p@1) ==\n")
	byDataset := map[string]map[string]map[float64]float64{}
	methodsSeen := map[string]bool{}
	var methodOrder []string
	ratioSet := map[float64]bool{}
	for _, p := range points {
		if byDataset[p.Dataset] == nil {
			byDataset[p.Dataset] = map[string]map[float64]float64{}
		}
		if byDataset[p.Dataset][p.Method] == nil {
			byDataset[p.Dataset][p.Method] = map[float64]float64{}
		}
		byDataset[p.Dataset][p.Method][p.Ratio] = p.P1
		if !methodsSeen[p.Method] {
			methodsSeen[p.Method] = true
			methodOrder = append(methodOrder, p.Method)
		}
		ratioSet[p.Ratio] = true
	}
	var ratios []float64
	for r := range ratioSet {
		ratios = append(ratios, r)
	}
	sort.Float64s(ratios)
	// Print dataset sections in sorted order: ranging the map directly
	// rendered the report in a different order every run (htc-lint
	// detrange catch).
	datasets := make([]string, 0, len(byDataset))
	for ds := range byDataset {
		datasets = append(datasets, ds)
	}
	sort.Strings(datasets)
	for _, ds := range datasets {
		methods := byDataset[ds]
		fmt.Fprintf(&b, "\n-- %s --\n%-8s", ds, "method")
		for _, r := range ratios {
			fmt.Fprintf(&b, " %7.1f", r)
		}
		b.WriteString("\n")
		for _, m := range methodOrder {
			fmt.Fprintf(&b, "%-8s", m)
			for _, r := range ratios {
				fmt.Fprintf(&b, " %7.4f", methods[m][r])
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Fig9Additive is an extension of the robustness study: targets carry
// combined noise — a fraction of edges removed AND the same fraction of
// spurious random edges added (outright consistency violation, the
// harsher model GAlign's augmentations anticipate). It answers whether
// HTC's multi-orbit training also tolerates structure that was never in
// the source.
func Fig9Additive(o Options) ([]RobustnessPoint, string, error) {
	o = o.withDefaults()
	sources := []struct {
		name string
		g    *graph.Graph
	}{
		{"Econ+add", datasets.Econ(o.size(1258), o.Seed+3)},
		{"BN+add", datasets.BN(o.size(1781), o.Seed+4)},
	}
	ratios := []float64{0.1, 0.3, 0.5}
	var points []RobustnessPoint
	for _, src := range sources {
		for _, ratio := range ratios {
			target, truth := datasets.MakeTargetNoise(src.g, ratio, ratio, o.Seed+int64(ratio*100))
			pair := &datasets.Pair{Name: src.name, Source: src.g, Target: target, Truth: truth}
			for _, m := range o.methods() {
				cell, err := runMethod(m, pair, o.Seed+300)
				if err != nil {
					return nil, "", err
				}
				points = append(points, RobustnessPoint{
					Dataset: src.name, Ratio: ratio, Method: cell.Method, P1: cell.P1,
				})
			}
		}
	}
	return points, renderFig9(points), nil
}

// HyperPoint is one hyperparameter-sweep sample of the Fig. 10 study.
type HyperPoint struct {
	Dataset string
	Param   string
	Value   float64
	P1      float64
}

// Fig10 regenerates the hyperparameter study: sweeps of the orbit count K,
// embedding dimension d, neighbourhood size m and reinforcement rate β on
// Douban and Allmovie–Imdb. The whole grid runs over one Prepared per
// pair: the 13-orbit counts are shared by every point (including the K
// sweep — counting always covers all orbits), and the d/m/β sweeps
// additionally share one set of Laplacians.
func Fig10(o Options) ([]HyperPoint, string, error) {
	o = o.withDefaults()
	pairs := []*datasets.Pair{
		datasets.Douban(o.size(450), o.Seed+1),
		datasets.AllmovieImdb(o.size(400), o.Seed),
	}
	var points []HyperPoint
	preps := make(map[*datasets.Pair]*core.Prepared, len(pairs))
	for _, pair := range pairs {
		prep, err := core.Prepare(pair.Source, pair.Target, o.htcConfig())
		if err != nil {
			return nil, "", fmt.Errorf("preparing %s: %w", pair.Name, err)
		}
		preps[pair] = prep
	}
	run := func(pair *datasets.Pair, param string, value float64, cfg core.Config) error {
		res, err := preps[pair].Align(cfg)
		if err != nil {
			return fmt.Errorf("%s sweep on %s: %w", param, pair.Name, err)
		}
		p1 := metrics.EvaluateSim(res.Sim, pair.Truth, 1).PrecisionAt[1]
		points = append(points, HyperPoint{Dataset: pair.Name, Param: param, Value: value, P1: p1})
		return nil
	}
	for _, pair := range pairs {
		for _, k := range []int{1, 3, 5, 7, 9, 11, 13} {
			cfg := o.htcConfig()
			cfg.K = k
			if err := run(pair, "K", float64(k), cfg); err != nil {
				return nil, "", err
			}
		}
		for _, d := range []int{8, 16, 32, 64, 128} {
			cfg := o.htcConfig()
			cfg.Embed = d
			if err := run(pair, "d", float64(d), cfg); err != nil {
				return nil, "", err
			}
		}
		for _, m := range []int{5, 10, 20, 50} {
			cfg := o.htcConfig()
			cfg.M = m
			if err := run(pair, "m", float64(m), cfg); err != nil {
				return nil, "", err
			}
		}
		for _, beta := range []float64{1.1, 1.3, 1.5, 2.0} {
			cfg := o.htcConfig()
			cfg.Beta = beta
			if err := run(pair, "beta", beta, cfg); err != nil {
				return nil, "", err
			}
		}
	}
	var b strings.Builder
	b.WriteString("== Fig 10: hyperparameter study (p@1) ==\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%-16s %-5s %7.2f %8.4f\n", p.Dataset, p.Param, p.Value, p.P1)
	}
	return points, b.String(), nil
}
