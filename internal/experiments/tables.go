package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/htc-align/htc/internal/core"
	"github.com/htc-align/htc/internal/datasets"
	"github.com/htc-align/htc/internal/metrics"
)

// Table1 regenerates the dataset-statistics table (paper Table I) at the
// requested scale.
func Table1(o Options) ([]datasets.Stats, string) {
	o = o.withDefaults()
	movie := datasets.AllmovieImdb(o.size(800), o.Seed)
	douban := datasets.Douban(o.size(900), o.Seed+1)
	flickr := datasets.FlickrMyspace(o.size(1000), o.Seed+2)
	econ := datasets.Econ(o.size(1258), o.Seed+3)
	bn := datasets.BN(o.size(1781), o.Seed+4)
	rows := []datasets.Stats{
		datasets.StatsOf("Allmovie", movie.Source),
		datasets.StatsOf("Imdb", movie.Target),
		datasets.StatsOf("Douban Online", douban.Source),
		datasets.StatsOf("Douban Offline", douban.Target),
		datasets.StatsOf("Flickr", flickr.Source),
		datasets.StatsOf("Myspace", flickr.Target),
		datasets.StatsOf("Econ", econ),
		datasets.StatsOf("BN", bn),
	}
	var b strings.Builder
	b.WriteString("== Table I: dataset statistics ==\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%v\n", r)
	}
	return rows, b.String()
}

// Table2 regenerates the overall-effectiveness comparison (paper Table
// II): every method on the three real-world pairs, supervised baselines
// receiving 10% of ground truth.
func Table2(o Options) ([]Cell, string, error) {
	o = o.withDefaults()
	var cells []Cell
	for _, pair := range o.realWorldPairs() {
		for _, m := range o.methods() {
			cell, err := runMethod(m, pair, o.Seed+100)
			if err != nil {
				return nil, "", err
			}
			cells = append(cells, cell)
		}
	}
	return cells, renderTable("Table II: overall effectiveness", cells), nil
}

// Fig7 renders the runtime comparison of the paper's Fig. 7 from Table II
// cells (the same runs; the paper excludes CENALP from the plot for being
// off-scale, we keep it with a note).
func Fig7(cells []Cell) string {
	var b strings.Builder
	b.WriteString("== Fig 7: runtime comparison (seconds) ==\n")
	byDataset := map[string][]Cell{}
	var order []string
	for _, c := range cells {
		if _, ok := byDataset[c.Dataset]; !ok {
			order = append(order, c.Dataset)
		}
		byDataset[c.Dataset] = append(byDataset[c.Dataset], c)
	}
	for _, ds := range order {
		fmt.Fprintf(&b, "\n-- %s --\n", ds)
		for _, c := range byDataset[ds] {
			bar := strings.Repeat("█", 1+int(c.Seconds))
			fmt.Fprintf(&b, "%-8s %8.2fs %s\n", c.Method, c.Seconds, bar)
		}
	}
	return b.String()
}

// AblationCell is one variant-on-dataset measurement of Table III.
type AblationCell struct {
	Variant string
	Dataset string
	P1, MRR float64
	// P1Unrefined is the pre-refinement p@1 of runs that enabled the
	// RefiNA stage; Refined marks such runs.
	P1Unrefined float64
	Refined     bool
}

// Table3 regenerates the ablation study (paper Table III): the five
// pipeline variants on Douban and Allmovie–Imdb, extended with the binary
// GOM variant ("HTC-B") the paper's §IV-A argues is weaker than the
// weighted form. The sweep runs on the staged API: each pair is Prepared
// once and every variant aligns over the shared artifacts, so the
// dominant orbit-counting cost is paid once per pair instead of once per
// variant (the results are bit-identical to one-shot runs).
func Table3(o Options) ([]AblationCell, string, error) {
	o = o.withDefaults()
	pairs := []*datasets.Pair{
		datasets.Douban(o.size(900), o.Seed+1),
		datasets.AllmovieImdb(o.size(800), o.Seed),
	}
	type variantDef struct {
		name    string
		variant core.Variant
		binary  bool
	}
	variants := []variantDef{
		{"HTC-L", core.LowOrder, false},
		{"HTC-H", core.HighOrder, false},
		{"HTC-LT", core.LowOrderFT, false},
		{"HTC-DT", core.DiffusionFT, false},
		{"HTC-B", core.Full, true},
		{"HTC", core.Full, false},
	}
	var cells []AblationCell
	for _, pair := range pairs {
		prep, err := core.Prepare(pair.Source, pair.Target, o.htcConfig())
		if err != nil {
			return nil, "", fmt.Errorf("preparing %s: %w", pair.Name, err)
		}
		for _, v := range variants {
			cfg := o.htcConfig()
			cfg.Variant = v.variant
			cfg.Binary = v.binary
			res, err := prep.Align(cfg)
			if err != nil {
				return nil, "", fmt.Errorf("%v on %s: %w", v.name, pair.Name, err)
			}
			rep := metrics.EvaluateSim(res.Sim, pair.Truth, 1)
			cell := AblationCell{
				Variant: v.name, Dataset: pair.Name,
				P1: rep.PrecisionAt[1], MRR: rep.MRR,
			}
			if res.PreRefineSim != nil {
				pre := metrics.EvaluateSim(res.PreRefineSim, pair.Truth, 1)
				cell.P1Unrefined = pre.PrecisionAt[1]
				cell.Refined = true
			}
			cells = append(cells, cell)
		}
	}
	refined := o.RefineIters > 0
	var b strings.Builder
	b.WriteString("== Table III: ablation test ==\n")
	if refined {
		b.WriteString(fmt.Sprintf("%-8s %-16s %8s %8s %8s\n", "variant", "dataset", "p@1", "p@1 raw", "MRR"))
	} else {
		b.WriteString(fmt.Sprintf("%-8s %-16s %8s %8s\n", "variant", "dataset", "p@1", "MRR"))
	}
	for _, c := range cells {
		if refined {
			fmt.Fprintf(&b, "%-8s %-16s %8.4f %8.4f %8.4f\n", c.Variant, c.Dataset, c.P1, c.P1Unrefined, c.MRR)
		} else {
			fmt.Fprintf(&b, "%-8s %-16s %8.4f %8.4f\n", c.Variant, c.Dataset, c.P1, c.MRR)
		}
	}
	return cells, b.String(), nil
}

// Decomposition is one dataset's stage-timing breakdown (paper Fig. 8).
type Decomposition struct {
	Dataset string
	Timings core.StageTimings
}

// Fig8 regenerates the runtime decomposition of HTC into its pipeline
// stages on the three real-world pairs.
func Fig8(o Options) ([]Decomposition, string, error) {
	o = o.withDefaults()
	var rows []Decomposition
	for _, pair := range o.realWorldPairs() {
		res, err := core.Align(pair.Source, pair.Target, o.htcConfig())
		if err != nil {
			return nil, "", fmt.Errorf("HTC on %s: %w", pair.Name, err)
		}
		rows = append(rows, Decomposition{Dataset: pair.Name, Timings: res.Timings})
	}
	var b strings.Builder
	b.WriteString("== Fig 8: runtime decomposition of HTC ==\n")
	fmt.Fprintf(&b, "%-16s %9s %9s %9s %9s %9s %9s\n",
		"dataset", "orbit", "laplace", "train", "finetune", "integrate", "other")
	for _, r := range rows {
		t := r.Timings
		fmt.Fprintf(&b, "%-16s %9s %9s %9s %9s %9s %9s\n", r.Dataset,
			round(t.OrbitCounting), round(t.Laplacians), round(t.Training),
			round(t.FineTuning), round(t.Integration), round(t.Other()))
	}
	return rows, b.String(), nil
}

func round(d time.Duration) string { return d.Round(time.Millisecond).String() }
