package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/htc-align/htc/internal/dense"
)

func pathGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(4)
	if !b.AddEdge(0, 1) {
		t.Fatal("first AddEdge(0,1) must report true")
	}
	if b.AddEdge(1, 0) {
		t.Fatal("reversed duplicate must report false")
	}
	if b.AddEdge(2, 2) {
		t.Fatal("self loop must report false")
	}
	if b.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", b.NumEdges())
	}
	g := b.Build()
	if g.NumEdges() != 1 || g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("graph = %v", g)
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestNeighborsSortedAndSymmetric(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(3, 1)
	b.AddEdge(3, 0)
	b.AddEdge(3, 4)
	g := b.Build()
	nbrs := g.Neighbors(3)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatalf("neighbours not sorted: %v", nbrs)
		}
	}
	if !g.HasEdge(1, 3) || !g.HasEdge(3, 1) {
		t.Fatal("HasEdge must be symmetric")
	}
	if g.HasEdge(0, 1) || g.HasEdge(2, 2) {
		t.Fatal("HasEdge false positives")
	}
}

func TestEdgesCanonical(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(3, 2)
	b.AddEdge(1, 0)
	g := b.Build()
	edges := g.Edges()
	if edges[0] != [2]int32{0, 1} || edges[1] != [2]int32{2, 3} {
		t.Fatalf("edges not canonical/sorted: %v", edges)
	}
}

func TestDegreeStats(t *testing.T) {
	g := pathGraph(4) // degrees 1,2,2,1
	if g.AvgDegree() != 1.5 {
		t.Fatalf("AvgDegree = %v", g.AvgDegree())
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %v", g.MaxDegree())
	}
	dv := g.DegreeVector()
	if dv[0] != 1 || dv[1] != 2 {
		t.Fatalf("DegreeVector = %v", dv)
	}
}

func TestAdjacencyMatrix(t *testing.T) {
	g := pathGraph(3)
	a := g.Adjacency()
	if a.At(0, 1) != 1 || a.At(1, 0) != 1 || a.At(1, 2) != 1 {
		t.Fatal("Adjacency missing entries")
	}
	if a.At(0, 2) != 0 || a.At(0, 0) != 0 {
		t.Fatal("Adjacency has spurious entries")
	}
	if a.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", a.NNZ())
	}
}

func TestWithAttrs(t *testing.T) {
	g := pathGraph(3)
	attrs := dense.FromRows([][]float64{{1}, {2}, {3}})
	g2 := g.WithAttrs(attrs)
	if g.Attrs() != nil {
		t.Fatal("WithAttrs mutated the original")
	}
	if g2.Attrs().At(2, 0) != 3 {
		t.Fatal("attrs not attached")
	}
}

func TestWithAttrsWrongRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong attr rows")
		}
	}()
	pathGraph(3).WithAttrs(dense.New(2, 4))
}

func TestEdgeIndex(t *testing.T) {
	g := pathGraph(4)
	idx := g.EdgeIndex()
	if len(idx) != 3 {
		t.Fatalf("index size = %d", len(idx))
	}
	for i, e := range g.Edges() {
		if idx[EdgeKey(int(e[0]), int(e[1]))] != i {
			t.Fatalf("EdgeIndex wrong for %v", e)
		}
		if idx[EdgeKey(int(e[1]), int(e[0]))] != i {
			t.Fatalf("EdgeIndex not canonical for reversed %v", e)
		}
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := ErdosRenyi(200, 0.1, rng)
	want := 0.1 * 199.0 // expected average degree
	if g.AvgDegree() < want*0.7 || g.AvgDegree() > want*1.3 {
		t.Fatalf("ER avg degree = %v, want ≈ %v", g.AvgDegree(), want)
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if g := ErdosRenyi(20, 0, rng); g.NumEdges() != 0 {
		t.Fatal("p=0 must give empty graph")
	}
	if g := ErdosRenyi(20, 1, rng); g.NumEdges() != 20*19/2 {
		t.Fatal("p=1 must give complete graph")
	}
}

func TestPreferentialAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := PreferentialAttachment(300, 2, rng)
	if g.N() != 300 {
		t.Fatalf("N = %d", g.N())
	}
	// Roughly m·n edges and a hub much larger than the average degree.
	if g.NumEdges() < 500 || g.NumEdges() > 650 {
		t.Fatalf("edges = %d, want ≈ 600", g.NumEdges())
	}
	if float64(g.MaxDegree()) < 3*g.AvgDegree() {
		t.Fatalf("no hub: max=%d avg=%.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		g := ErdosRenyi(n, 0.3, rng)
		perm := Permutation(n, rng)
		h := Relabel(g, perm)
		if h.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if !h.HasEdge(perm[e[0]], perm[e[1]]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRelabelMovesAttrs(t *testing.T) {
	g := pathGraph(3).WithAttrs(dense.FromRows([][]float64{{10}, {20}, {30}}))
	h := Relabel(g, []int{2, 0, 1})
	if h.Attrs().At(2, 0) != 10 || h.Attrs().At(0, 0) != 20 || h.Attrs().At(1, 0) != 30 {
		t.Fatalf("attrs not moved: %v", h.Attrs())
	}
}
