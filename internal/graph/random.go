package graph

import (
	"math/rand"

	"github.com/htc-align/htc/internal/dense"
)

// ErdosRenyi samples a G(n, p) random graph. Every unordered node pair is
// connected independently with probability p.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// PreferentialAttachment grows a Barabási–Albert style graph: nodes arrive
// one at a time and attach m edges to existing nodes chosen proportionally
// to their current degree (plus one, so isolated seeds stay reachable).
// The result has roughly m·n edges and a power-law degree tail — the
// regime of the Douban social networks.
func PreferentialAttachment(n, m int, rng *rand.Rand) *Graph {
	if m < 1 {
		m = 1
	}
	b := NewBuilder(n)
	// Repeated-node list: node i appears deg(i)+1 times, so sampling a
	// uniform index implements degree-proportional selection.
	targets := make([]int32, 0, 2*m*n)
	for v := 0; v < n && v <= m; v++ {
		for u := 0; u < v; u++ {
			b.AddEdge(u, v)
			targets = append(targets, int32(u), int32(v))
		}
	}
	start := m + 1
	if start < 1 {
		start = 1
	}
	for v := start; v < n; v++ {
		added := 0
		for attempts := 0; added < m && attempts < 50*m; attempts++ {
			var u int
			if len(targets) == 0 {
				u = rng.Intn(v)
			} else {
				u = int(targets[rng.Intn(len(targets))])
			}
			if u != v && b.AddEdge(u, v) {
				targets = append(targets, int32(u), int32(v))
				added++
			}
		}
	}
	return b.Build()
}

// Permutation returns a random permutation of 0..n−1 drawn from rng.
func Permutation(n int, rng *rand.Rand) []int {
	return rng.Perm(n)
}

// Relabel returns a copy of g whose node i has been renamed perm[i], with
// attributes moved accordingly. It is the tool used to hide the identity
// alignment when constructing a target network from a source network.
func Relabel(g *Graph, perm []int) *Graph {
	if len(perm) != g.N() {
		panic("graph: Relabel permutation length mismatch")
	}
	b := NewBuilder(g.N())
	for _, e := range g.Edges() {
		b.AddEdge(perm[e[0]], perm[e[1]])
	}
	out := b.Build()
	if g.Attrs() != nil {
		attrs := g.Attrs()
		moved := dense.New(attrs.Rows, attrs.Cols)
		for i := 0; i < attrs.Rows; i++ {
			copy(moved.Row(perm[i]), attrs.Row(i))
		}
		out = out.WithAttrs(moved)
	}
	return out
}

// attrsForRows copies the attribute rows of the listed nodes, in list
// order.
func attrsForRows(attrs *dense.Matrix, nodes []int) *dense.Matrix {
	out := dense.New(len(nodes), attrs.Cols)
	for i, v := range nodes {
		copy(out.Row(i), attrs.Row(v))
	}
	return out
}
