package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/htc-align/htc/internal/dense"
)

// The text format is line-oriented:
//
//	htc-graph <n> <m> <d>
//	u v          (m edge lines)
//	x0 x1 ... xd (n attribute lines, only when d > 0)
//
// Lines starting with '#' are comments and blank lines are skipped.

const ioMagic = "htc-graph"

// Write serialises g in the package's text format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	d := 0
	if g.Attrs() != nil {
		d = g.Attrs().Cols
	}
	if _, err := fmt.Fprintf(bw, "%s %d %d %d\n", ioMagic, g.N(), g.NumEdges(), d); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	if d > 0 {
		attrs := g.Attrs()
		for i := 0; i < attrs.Rows; i++ {
			row := attrs.Row(i)
			for j, v := range row {
				if j > 0 {
					if err := bw.WriteByte(' '); err != nil {
						return err
					}
				}
				if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
					return err
				}
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Limits bounds what a reader is willing to allocate before it has seen
// the data backing a header's claims; the zero value means unlimited. A
// malicious "htc-graph 999999999999 0 0" header would otherwise commit
// gigabytes on the strength of a 30-byte file.
type Limits struct {
	MaxNodes   int // largest accepted node count (0 = unlimited)
	MaxEdges   int // largest accepted edge count (0 = unlimited)
	MaxAttrDim int // largest accepted attribute dimension (0 = unlimited)
	// Strict rejects self-loop and duplicate edge lines (with
	// ErrSelfLoop / ErrDupEdge) instead of skipping them.
	Strict bool
}

// check validates a header's claimed sizes against the limits.
func (l Limits) check(n, m, d int) error {
	if l.MaxNodes > 0 && n > l.MaxNodes {
		return fmt.Errorf("graph: header claims %d nodes, limit is %d", n, l.MaxNodes)
	}
	if l.MaxEdges > 0 && m > l.MaxEdges {
		return fmt.Errorf("graph: header claims %d edges, limit is %d", m, l.MaxEdges)
	}
	if l.MaxAttrDim > 0 && d > l.MaxAttrDim {
		return fmt.Errorf("graph: header claims %d attribute dims, limit is %d", d, l.MaxAttrDim)
	}
	return nil
}

// Read parses a graph in the package's text format with no size limits.
func Read(r io.Reader) (*Graph, error) { return ReadLimited(r, Limits{}) }

// ReadLimited parses a graph in the package's text format, rejecting
// inputs whose header claims sizes beyond the given limits before any
// proportional allocation happens.
func ReadLimited(r io.Reader, lim Limits) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	header, err := nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: missing header: %w", err)
	}
	fields := strings.Fields(header)
	if len(fields) != 4 || fields[0] != ioMagic {
		return nil, fmt.Errorf("graph: bad header %q", header)
	}
	n, err1 := strconv.Atoi(fields[1])
	m, err2 := strconv.Atoi(fields[2])
	d, err3 := strconv.Atoi(fields[3])
	if err1 != nil || err2 != nil || err3 != nil || n < 0 || m < 0 || d < 0 {
		return nil, fmt.Errorf("graph: bad header %q", header)
	}
	if err := lim.check(n, m, d); err != nil {
		return nil, err
	}
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		line, err := nextLine(sc)
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
		toks := strings.Fields(line)
		if len(toks) != 2 {
			return nil, fmt.Errorf("graph: edge %d: bad line %q (want \"u v\")", i, line)
		}
		u, err1 := strconv.Atoi(toks[0])
		v, err2 := strconv.Atoi(toks[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: edge %d: bad line %q (want \"u v\")", i, line)
		}
		add := b.Add
		if lim.Strict {
			add = b.AddStrict
		}
		if err := add(u, v); err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
	}
	g := b.Build()
	if d > 0 {
		attrs := dense.New(n, d)
		for i := 0; i < n; i++ {
			line, err := nextLine(sc)
			if err != nil {
				return nil, fmt.Errorf("graph: attr row %d: %w", i, err)
			}
			vals := strings.Fields(line)
			if len(vals) != d {
				return nil, fmt.Errorf("graph: attr row %d has %d values, want %d", i, len(vals), d)
			}
			row := attrs.Row(i)
			for j, s := range vals {
				v, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return nil, fmt.Errorf("graph: attr row %d: %w", i, err)
				}
				row[j] = v
			}
		}
		g = g.WithAttrs(attrs)
	}
	return g, nil
}

func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}
