package graph

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/dense"
)

// trickyFloats are attribute values whose text formatting is easy to get
// wrong: shortest-representation corner cases, subnormals, signed zero,
// extreme magnitudes and infinities. NaN is excluded — it never compares
// equal and the pipeline rejects it at validation anyway.
var trickyFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.1, 1.0 / 3.0, 2.0 / 3.0,
	math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
	-math.SmallestNonzeroFloat64, 1e-308, 5e-324, 1e308, 1e-15,
	math.Pi, math.Nextafter(1, 2), math.Nextafter(1, 0),
	math.Inf(1), math.Inf(-1), 123456789.123456789, 1e17 + 1,
}

// randomGraph draws an attributed graph: node count, edge density and
// attribute dimension all vary, and attribute values mix tricky constants
// with uniform draws.
func randomGraph(rng *rand.Rand) *Graph {
	n := rng.Intn(41) // 0..40 nodes
	b := NewBuilder(n)
	if n > 1 {
		m := rng.Intn(2 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n)) // self-loops/dups ignored
		}
	}
	g := b.Build()
	d := rng.Intn(5) // 0..4 attribute dims; 0 means no attrs
	if d == 0 {
		return g
	}
	attrs := dense.New(n, d)
	for i := 0; i < n; i++ {
		row := attrs.Row(i)
		for j := range row {
			if rng.Intn(2) == 0 {
				row[j] = trickyFloats[rng.Intn(len(trickyFloats))]
			} else {
				row[j] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(40)-20))
			}
		}
	}
	return g.WithAttrs(attrs)
}

// TestWriteReadRoundTrip is the property test of the Write/Read pair:
// over random attributed graphs nothing may drift — node count, the exact
// edge set, and every attribute bit (signed zero included, which plain ==
// would miss).
func TestWriteReadRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		g := randomGraph(rng)
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: read: %v\n%s", trial, err, buf.String())
		}
		if got.N() != g.N() || got.NumEdges() != g.NumEdges() {
			t.Fatalf("trial %d: got n=%d e=%d, want n=%d e=%d",
				trial, got.N(), got.NumEdges(), g.N(), g.NumEdges())
		}
		for i, e := range g.Edges() {
			if got.Edges()[i] != e {
				t.Fatalf("trial %d: edge %d drifted: got %v want %v", trial, i, got.Edges()[i], e)
			}
		}
		wantAttrs, gotAttrs := g.Attrs(), got.Attrs()
		if (wantAttrs == nil) != (gotAttrs == nil) {
			t.Fatalf("trial %d: attrs presence drifted: got %v want %v", trial, gotAttrs, wantAttrs)
		}
		if wantAttrs == nil {
			continue
		}
		if gotAttrs.Rows != wantAttrs.Rows || gotAttrs.Cols != wantAttrs.Cols {
			t.Fatalf("trial %d: attrs shape drifted: got %dx%d want %dx%d",
				trial, gotAttrs.Rows, gotAttrs.Cols, wantAttrs.Rows, wantAttrs.Cols)
		}
		for i := 0; i < wantAttrs.Rows; i++ {
			for j, w := range wantAttrs.Row(i) {
				if math.Float64bits(gotAttrs.Row(i)[j]) != math.Float64bits(w) {
					t.Fatalf("trial %d: attr[%d][%d] drifted: got %x want %x (%v vs %v)",
						trial, i, j, math.Float64bits(gotAttrs.Row(i)[j]), math.Float64bits(w),
						gotAttrs.Row(i)[j], w)
				}
			}
		}
	}
}

// TestReadRejectsMalformedEdges locks the strict edge-line grammar: the
// old Sscanf-based parser silently accepted trailing tokens, which the
// round-trip property can never produce.
func TestReadRejectsMalformedEdges(t *testing.T) {
	for _, in := range []string{
		"htc-graph 3 1 0\n0 1 junk\n",
		"htc-graph 3 1 0\n0 1 2\n",
		"htc-graph 3 1 0\n0\n",
		"htc-graph 3 1 0\n0 x\n",
	} {
		if _, err := Read(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("Read(%q) accepted a malformed edge line", in)
		}
	}
}

// TestReadLimited locks the allocation guard: header claims beyond the
// limits must fail before the reader commits memory.
func TestReadLimited(t *testing.T) {
	cases := []struct {
		in  string
		lim Limits
	}{
		{"htc-graph 1000000000000 0 0\n", Limits{MaxNodes: 100}},
		{"htc-graph 10 999999999 0\n", Limits{MaxEdges: 100}},
		{"htc-graph 10 0 123456789\n", Limits{MaxAttrDim: 16}},
	}
	for _, c := range cases {
		if _, err := ReadLimited(bytes.NewReader([]byte(c.in)), c.lim); err == nil {
			t.Errorf("ReadLimited(%q, %+v) accepted an oversized header", c.in, c.lim)
		}
	}
	// Within limits the reader behaves exactly like Read.
	g, err := ReadLimited(bytes.NewReader([]byte("htc-graph 3 1 0\n0 2\n")), Limits{MaxNodes: 3, MaxEdges: 1})
	if err != nil || g.N() != 3 || g.NumEdges() != 1 {
		t.Fatalf("ReadLimited in-bounds parse failed: %v %v", g, err)
	}
}
