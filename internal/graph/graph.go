// Package graph provides the undirected attributed graph substrate of the
// HTC reproduction. Graphs are immutable after construction: build them
// with a Builder (which deduplicates edges and rejects self-loops), then
// query sorted adjacency, degrees and attributes from any goroutine.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/sparse"
)

// Shared edge-validation vocabulary. Every ingestion surface — the
// Builder, the text reader, the server's GraphSpec and the
// internal/ingest format readers — classifies a bad edge with these
// sentinels, so callers can errors.Is uniformly across the stack.
var (
	// ErrEdgeRange marks an edge endpoint outside [0, n).
	ErrEdgeRange = errors.New("graph: edge endpoint out of range")
	// ErrSelfLoop marks an edge joining a node to itself.
	ErrSelfLoop = errors.New("graph: self-loop edge")
	// ErrDupEdge marks an edge that was already recorded.
	ErrDupEdge = errors.New("graph: duplicate edge")
)

// Graph is an immutable undirected graph with optional node attributes.
type Graph struct {
	n     int
	adj   [][]int32 // sorted neighbour lists
	edges [][2]int32
	attrs *dense.Matrix // nil when the graph carries no attributes
}

// Builder accumulates edges for a graph with a fixed node count.
type Builder struct {
	n     int
	seen  map[uint64]struct{}
	edges [][2]int32
}

// NewBuilder returns a builder for a graph on n nodes (ids 0..n−1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Builder{n: n, seen: make(map[uint64]struct{})}
}

func edgeKey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// AddEdge records the undirected edge (u, v). Self-loops and duplicates are
// ignored; the return value reports whether a new edge was added.
func (b *Builder) AddEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return false
	}
	key := edgeKey(int32(u), int32(v))
	if _, dup := b.seen[key]; dup {
		return false
	}
	b.seen[key] = struct{}{}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
	return true
}

// Add records the undirected edge (u, v) like AddEdge, but validates
// instead of panicking: out-of-range endpoints return an error wrapping
// ErrEdgeRange. Self-loops and duplicate edges are skipped silently —
// the uniform tolerant-ingestion policy shared by every reader (real
// edge lists are full of both). Strict callers use AddStrict.
func (b *Builder) Add(u, v int) error {
	if err := b.checkRange(u, v); err != nil {
		return err
	}
	b.AddEdge(u, v)
	return nil
}

// AddStrict records the undirected edge (u, v), rejecting out-of-range
// endpoints, self-loops and duplicates with the shared sentinel errors.
func (b *Builder) AddStrict(u, v int) error {
	if err := b.checkRange(u, v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("edge (%d,%d): %w", u, v, ErrSelfLoop)
	}
	if b.HasEdge(u, v) {
		return fmt.Errorf("edge (%d,%d): %w", u, v, ErrDupEdge)
	}
	b.AddEdge(u, v)
	return nil
}

func (b *Builder) checkRange(u, v int) error {
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		return fmt.Errorf("edge (%d,%d) outside [0,%d): %w", u, v, b.n, ErrEdgeRange)
	}
	return nil
}

// HasEdge reports whether (u, v) has been added to the builder.
func (b *Builder) HasEdge(u, v int) bool {
	_, ok := b.seen[edgeKey(int32(u), int32(v))]
	return ok
}

// NumEdges returns the number of distinct edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build finalises the graph. The builder can keep accepting edges and
// build again; each Build returns an independent graph.
func (b *Builder) Build() *Graph {
	g := &Graph{n: b.n, adj: make([][]int32, b.n)}
	deg := make([]int, b.n)
	for _, e := range b.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	for i := range g.adj {
		g.adj[i] = make([]int32, 0, deg[i])
	}
	g.edges = make([][2]int32, len(b.edges))
	copy(g.edges, b.edges)
	sort.Slice(g.edges, func(i, j int) bool {
		if g.edges[i][0] != g.edges[j][0] {
			return g.edges[i][0] < g.edges[j][0]
		}
		return g.edges[i][1] < g.edges[j][1]
	})
	for _, e := range g.edges {
		g.adj[e[0]] = append(g.adj[e[0]], e[1])
		g.adj[e[1]] = append(g.adj[e[1]], e[0])
	}
	for i := range g.adj {
		sort.Slice(g.adj[i], func(a, b int) bool { return g.adj[i][a] < g.adj[i][b] })
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Degree returns the degree of node i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// Neighbors returns the sorted neighbour list of node i. The slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(i int) []int32 { return g.adj[i] }

// Edges returns all edges as (u, v) pairs with u < v, sorted
// lexicographically. The slice is shared with the graph and must not be
// modified.
func (g *Graph) Edges() [][2]int32 { return g.edges }

// HasEdge reports whether nodes u and v are adjacent, by binary search in
// the smaller adjacency list.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a, v = g.adj[v], u
	}
	idx := sort.Search(len(a), func(k int) bool { return a[k] >= int32(v) })
	return idx < len(a) && a[idx] == int32(v)
}

// Attrs returns the node attribute matrix (n×d) or nil if the graph has no
// attributes. The matrix is shared and must not be modified.
func (g *Graph) Attrs() *dense.Matrix { return g.attrs }

// WithAttrs returns a copy of g carrying the given attribute matrix, which
// must have exactly N rows. The adjacency structure is shared with g.
func (g *Graph) WithAttrs(attrs *dense.Matrix) *Graph {
	if attrs != nil && attrs.Rows != g.n {
		panic(fmt.Sprintf("graph: attrs have %d rows, want %d", attrs.Rows, g.n))
	}
	cp := *g
	cp.attrs = attrs
	return &cp
}

// AvgDegree returns the mean degree 2·|E|/n, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(len(g.edges)) / float64(g.n)
}

// MaxDegree returns the largest degree in the graph.
func (g *Graph) MaxDegree() int {
	mx := 0
	for _, a := range g.adj {
		if len(a) > mx {
			mx = len(a)
		}
	}
	return mx
}

// Adjacency returns the binary adjacency matrix of g in CSR form.
func (g *Graph) Adjacency() *sparse.CSR {
	entries := make([]sparse.Entry, 0, 2*len(g.edges))
	for _, e := range g.edges {
		entries = append(entries,
			sparse.Entry{Row: e[0], Col: e[1], Val: 1},
			sparse.Entry{Row: e[1], Col: e[0], Val: 1})
	}
	return sparse.FromEntries(g.n, g.n, entries)
}

// DegreeVector returns every node's degree as float64s, convenient for
// normalisation matrices.
func (g *Graph) DegreeVector() []float64 {
	out := make([]float64, g.n)
	for i, a := range g.adj {
		out[i] = float64(len(a))
	}
	return out
}

// EdgeIndex returns a map from the canonical (u<v) edge key to the edge's
// position in Edges(). Orbit counting uses it to address per-edge count
// rows.
func (g *Graph) EdgeIndex() map[uint64]int {
	idx := make(map[uint64]int, len(g.edges))
	for i, e := range g.edges {
		idx[edgeKey(e[0], e[1])] = i
	}
	return idx
}

// EdgeKey returns the canonical map key for the undirected edge (u, v),
// matching EdgeIndex.
func EdgeKey(u, v int) uint64 { return edgeKey(int32(u), int32(v)) }

// String summarises the graph.
func (g *Graph) String() string {
	d := 0
	if g.attrs != nil {
		d = g.attrs.Cols
	}
	return fmt.Sprintf("graph.Graph(n=%d, e=%d, attrs=%d)", g.n, len(g.edges), d)
}
