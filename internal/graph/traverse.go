package graph

import "fmt"

// Components labels the connected components of g: the result maps every
// node to a component id in 0..k−1, ids assigned in order of first
// appearance. The second return value is k.
func Components(g *Graph) ([]int, int) {
	comp := make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var queue []int32
	for start := 0; start < g.N(); start++ {
		if comp[start] >= 0 {
			continue
		}
		comp[start] = next
		queue = append(queue[:0], int32(start))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(int(v)) {
				if comp[w] < 0 {
					comp[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	return comp, next
}

// LargestComponent returns the node ids of g's largest connected
// component, in increasing order. Ties resolve to the lowest component id.
func LargestComponent(g *Graph) []int {
	comp, k := Components(g)
	if k == 0 {
		return nil
	}
	sizes := make([]int, k)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c := 1; c < k; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	out := make([]int, 0, sizes[best])
	for v, c := range comp {
		if c == best {
			out = append(out, v)
		}
	}
	return out
}

// BFSDistances returns the hop distance from start to every node, with −1
// for unreachable nodes.
func BFSDistances(g *Graph, start int) []int {
	if start < 0 || start >= g.N() {
		panic(fmt.Sprintf("graph: BFS start %d out of range [0,%d)", start, g.N()))
	}
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []int32{int32(start)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// InducedSubgraph returns the subgraph of g induced on the given nodes
// (which must be distinct and in range), together with the mapping from
// new node ids to original ids (= the input slice, copied). Attributes
// are carried over.
func InducedSubgraph(g *Graph, nodes []int) (*Graph, []int) {
	newID := make([]int, g.N())
	for i := range newID {
		newID[i] = -1
	}
	for i, v := range nodes {
		if v < 0 || v >= g.N() {
			panic(fmt.Sprintf("graph: induced node %d out of range [0,%d)", v, g.N()))
		}
		if newID[v] >= 0 {
			panic(fmt.Sprintf("graph: induced node %d listed twice", v))
		}
		newID[v] = i
	}
	b := NewBuilder(len(nodes))
	for _, e := range g.Edges() {
		u, v := newID[e[0]], newID[e[1]]
		if u >= 0 && v >= 0 {
			b.AddEdge(u, v)
		}
	}
	sub := b.Build()
	if attrs := g.Attrs(); attrs != nil {
		subAttrs := attrsForRows(attrs, nodes)
		sub = sub.WithAttrs(subAttrs)
	}
	return sub, append([]int(nil), nodes...)
}

// Triangles returns the number of triangles in g, counting each once.
func Triangles(g *Graph) int {
	tri := 0
	for _, e := range g.Edges() {
		u, v := int(e[0]), int(e[1])
		// Count common neighbours above v so each triangle is charged to
		// its lexicographically smallest edge.
		for _, w := range g.Neighbors(u) {
			if int(w) > v && g.HasEdge(int(w), v) {
				tri++
			}
		}
	}
	return tri
}
