package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/htc-align/htc/internal/dense"
)

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	comp, k := Components(g)
	if k != 3 {
		t.Fatalf("k = %d, want 3", k)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("first component split: %v", comp)
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Fatalf("second component wrong: %v", comp)
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatalf("isolate merged: %v", comp)
	}
}

func TestComponentsEmptyGraph(t *testing.T) {
	comp, k := Components(NewBuilder(0).Build())
	if len(comp) != 0 || k != 0 {
		t.Fatalf("empty graph: comp=%v k=%d", comp, k)
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 2)
	g := b.Build()
	lc := LargestComponent(g)
	if len(lc) != 3 || lc[0] != 2 || lc[1] != 3 || lc[2] != 4 {
		t.Fatalf("largest component = %v", lc)
	}
}

func TestBFSDistances(t *testing.T) {
	g := pathGraph(5)
	dist := BFSDistances(g, 0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Fatalf("dist = %v", dist)
		}
	}
	// Unreachable nodes get −1.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	dist = BFSDistances(b.Build(), 0)
	if dist[2] != -1 {
		t.Fatalf("unreachable distance = %d", dist[2])
	}
}

func TestBFSDistancesOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BFSDistances(pathGraph(3), 9)
}

func TestInducedSubgraph(t *testing.T) {
	g := pathGraph(5).WithAttrs(dense.FromRows([][]float64{{0}, {1}, {2}, {3}, {4}}))
	sub, ids := InducedSubgraph(g, []int{1, 2, 4})
	if sub.N() != 3 {
		t.Fatalf("n = %d", sub.N())
	}
	// Only edge (1,2) survives; (2,3) and (3,4) lose node 3.
	if sub.NumEdges() != 1 || !sub.HasEdge(0, 1) {
		t.Fatalf("edges = %d", sub.NumEdges())
	}
	if sub.Attrs().At(2, 0) != 4 {
		t.Fatalf("attrs not carried: %v", sub.Attrs())
	}
	if len(ids) != 3 || ids[2] != 4 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestInducedSubgraphValidation(t *testing.T) {
	g := pathGraph(4)
	for _, nodes := range [][]int{{0, 9}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("nodes %v: expected panic", nodes)
				}
			}()
			InducedSubgraph(g, nodes)
		}()
	}
}

func TestComponentsPartitionProperty(t *testing.T) {
	// Every edge joins same-component nodes; component count + edges
	// within a forest bound.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(5+rng.Intn(30), 0.08, rng)
		comp, k := Components(g)
		if k < 1 && g.N() > 0 {
			return false
		}
		for _, e := range g.Edges() {
			if comp[e[0]] != comp[e[1]] {
				return false
			}
		}
		// Spanning-forest inequality: n − k ≤ |E|.
		return g.N()-k <= g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTriangles(t *testing.T) {
	b := NewBuilder(5)
	// Two triangles sharing edge (0,1).
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(0, 3)
	g := b.Build()
	if got := Triangles(g); got != 2 {
		t.Fatalf("Triangles = %d, want 2", got)
	}
	if Triangles(pathGraph(5)) != 0 {
		t.Fatal("path has no triangles")
	}
}

func TestTrianglesMatchesComplete(t *testing.T) {
	// K5 has C(5,3) = 10 triangles.
	b := NewBuilder(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
		}
	}
	if got := Triangles(b.Build()); got != 10 {
		t.Fatalf("K5 triangles = %d, want 10", got)
	}
}
