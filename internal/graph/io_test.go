package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/htc-align/htc/internal/dense"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := ErdosRenyi(30, 0.2, rng)
	attrs := dense.New(30, 3)
	for i := range attrs.Data {
		attrs.Data[i] = rng.NormFloat64()
	}
	g = g.WithAttrs(attrs)

	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip shape: %v vs %v", got, g)
	}
	for _, e := range g.Edges() {
		if !got.HasEdge(int(e[0]), int(e[1])) {
			t.Fatalf("missing edge %v after round trip", e)
		}
	}
	if !got.Attrs().Equal(g.Attrs(), 1e-12) {
		t.Fatal("attrs differ after round trip")
	}
}

func TestRoundTripNoAttrs(t *testing.T) {
	g := pathGraph(5)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attrs() != nil {
		t.Fatal("expected nil attrs")
	}
	if got.NumEdges() != 4 {
		t.Fatalf("edges = %d", got.NumEdges())
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nhtc-graph 3 1 0\n# edge below\n0 2\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 2) {
		t.Fatal("edge not parsed")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad magic":      "nope 1 0 0\n",
		"bad counts":     "htc-graph x 0 0\n",
		"missing edge":   "htc-graph 3 2 0\n0 1\n",
		"edge range":     "htc-graph 2 1 0\n0 9\n",
		"short attrs":    "htc-graph 2 1 2\n0 1\n0.5\n0.1 0.2\n",
		"missing attrs":  "htc-graph 2 0 1\n0.5\n",
		"non-float attr": "htc-graph 1 0 1\nzz\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
