// Package orbit counts edge orbits of 2–4-node graphlets, the higher-order
// topological signal at the heart of HTC (Sun et al., ICDE 2023).
//
// Every connected induced subgraph on 2–4 nodes is one of 9 graphlets, and
// the edges of each graphlet split into automorphism orbits — 13 in total,
// matching the paper's Fig. 4:
//
//	 0  single edge
//	 1  two-edge chain P3 (either edge)
//	 2  triangle
//	 3  three-edge chain P4, end edge
//	 4  three-edge chain P4, middle (bridge) edge
//	 5  star K1,3
//	 6  quadrangle C4
//	 7  tailed triangle, tail (pendant) edge
//	 8  tailed triangle, triangle edge incident to the tailed vertex
//	 9  tailed triangle, triangle edge opposite the tail
//	10  diamond (K4 minus an edge), outer edge
//	11  diamond, central (diagonal) edge
//	12  clique K4
//
// Count produces exact per-edge counts with a combinatorial scheme in the
// spirit of Orca/PGD, costing O(Σ_e Σ_{x∈N(u)∪N(v)} deg(x)). CountBrute is
// an exponential reference enumerator used to validate Count in tests.
package orbit

import (
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/par"
)

// NumOrbits is the number of edge orbits on 2–4-node graphlets.
const NumOrbits = 13

// Names labels each orbit for reports and figures.
var Names = [NumOrbits]string{
	"edge", "P3", "triangle", "P4-end", "P4-mid", "star",
	"C4", "paw-tail", "paw-near", "paw-far", "diamond-outer",
	"diamond-central", "K4",
}

// Counts holds, for every edge of a graph, how many times that edge occurs
// on each orbit. Rows are aligned with graph.Edges().
type Counts struct {
	G *graph.Graph
	// PerEdge[i][k] is the number of times edge i occurs on orbit k.
	PerEdge [][NumOrbits]int64
}

// Of returns the orbit-count row for the edge (u, v), or nil when the edge
// does not exist. idx must come from g.EdgeIndex().
func (c *Counts) Of(idx map[uint64]int, u, v int) []int64 {
	i, ok := idx[graph.EdgeKey(u, v)]
	if !ok {
		return nil
	}
	return c.PerEdge[i][:]
}

// Totals sums each orbit's count over all edges. Useful as a cheap global
// graph signature and for test invariants (for example,
// Totals()[2] = 3 × number of triangles).
func (c *Counts) Totals() [NumOrbits]int64 {
	var t [NumOrbits]int64
	for i := range c.PerEdge {
		for k := 0; k < NumOrbits; k++ {
			t[k] += c.PerEdge[i][k]
		}
	}
	return t
}

// Count computes exact edge-orbit counts for every edge of g. Edges are
// independent, so the work is sharded across GOMAXPROCS goroutines; the
// result is deterministic.
func Count(g *graph.Graph) *Counts { return CountN(g, 0) }

// CountN is Count with an explicit worker budget (≤ 0 = GOMAXPROCS), so
// the pipeline can divide CPUs between the source and target graph — or a
// server between concurrent jobs — instead of both counts grabbing every
// core. Each edge's counts are written by exactly one goroutine, so the
// result is identical for every worker count.
func CountN(g *graph.Graph, workers int) *Counts {
	edges := g.Edges()
	out := &Counts{G: g, PerEdge: make([][NumOrbits]int64, len(edges))}
	// Orbit counting costs a couple hundred neighbour probes per edge on
	// typical graphs; 1<<8 per edge makes par's threshold split anything
	// beyond a few hundred edges.
	par.For(workers, len(edges), 1<<8, func(start, end int) {
		countRange(g, out, start, end)
	})
	return out
}

// countRange fills the orbit counts of edges [from, to). Each worker owns
// its mark arrays, so ranges can run concurrently.
func countRange(g *graph.Graph, out *Counts, from, to int) {
	n := g.N()
	edges := g.Edges()

	// Stamp arrays avoid clearing per-edge neighbourhood marks: markU[x]
	// equals the current stamp iff x ∈ N(u).
	markU := make([]int32, n)
	markV := make([]int32, n)
	var su, sv, tri []int32

	for ei := from; ei < to; ei++ {
		e := edges[ei]
		u, v := int(e[0]), int(e[1])
		stamp := int32(ei + 1)
		for _, x := range g.Neighbors(u) {
			markU[x] = stamp
		}
		for _, x := range g.Neighbors(v) {
			markV[x] = stamp
		}
		su, sv, tri = su[:0], sv[:0], tri[:0]
		for _, x := range g.Neighbors(u) {
			if int(x) == v {
				continue
			}
			if markV[x] == stamp {
				tri = append(tri, x)
			} else {
				su = append(su, x)
			}
		}
		for _, x := range g.Neighbors(v) {
			if int(x) == u || markU[x] == stamp {
				continue
			}
			sv = append(sv, x)
		}
		nSu, nSv, nT := int64(len(su)), int64(len(sv)), int64(len(tri))

		// One pass over the neighbourhoods of Su, Sv and Tri classifies
		// every second-hop node y by membership in N(u)/N(v).
		var eSu2, eSv2, cross, o3 int64
		for _, x := range su {
			for _, y := range g.Neighbors(int(x)) {
				if int(y) == u || int(y) == v {
					continue
				}
				inU, inV := markU[y] == stamp, markV[y] == stamp
				switch {
				case inU && !inV:
					eSu2++ // Su-internal edge, seen from both ends
				case !inU && inV:
					cross++ // Su–Sv edge, seen once (from the Su side)
				case !inU && !inV:
					o3++ // extends v–u–x into an induced P4
				}
			}
		}
		for _, x := range sv {
			for _, y := range g.Neighbors(int(x)) {
				if int(y) == u || int(y) == v {
					continue
				}
				inU, inV := markU[y] == stamp, markV[y] == stamp
				switch {
				case inV && !inU:
					eSv2++
				case !inU && !inV:
					o3++
				}
			}
		}
		var triAdj2, o10, o9 int64
		for _, w := range tri {
			for _, y := range g.Neighbors(int(w)) {
				if int(y) == u || int(y) == v {
					continue
				}
				inU, inV := markU[y] == stamp, markV[y] == stamp
				switch {
				case inU && inV:
					triAdj2++ // Tri-internal edge, seen from both ends
				case inU || inV:
					o10++ // diamond with central edge (u,w) or (v,w)
				default:
					o9++ // tail hanging off the opposite triangle vertex
				}
			}
		}

		eSu, eSv, triAdj := eSu2/2, eSv2/2, triAdj2/2
		row := &out.PerEdge[ei]
		row[0] = 1
		row[1] = nSu + nSv
		row[2] = nT
		row[3] = o3
		row[4] = nSu*nSv - cross
		row[5] = choose2(nSu) - eSu + choose2(nSv) - eSv
		row[6] = cross
		row[7] = eSu + eSv
		row[8] = nT*(nSu+nSv) - o10
		row[9] = o9
		row[10] = o10
		row[11] = choose2(nT) - triAdj
		row[12] = triAdj
	}
}

func choose2(n int64) int64 { return n * (n - 1) / 2 }
