package orbit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/htc-align/htc/internal/graph"
)

func nodeRow(t *testing.T, c *NodeCounts, v int) []int64 {
	t.Helper()
	return c.PerNode[v][:]
}

func wantNodeRow(t *testing.T, got []int64, want [NumNodeOrbits]int64, label string) {
	t.Helper()
	for k := 0; k < NumNodeOrbits; k++ {
		if got[k] != want[k] {
			t.Fatalf("%s node orbit %d (%s): got %d, want %d (full row %v)",
				label, k, NodeNames[k], got[k], want[k], got)
		}
	}
}

func TestCountNodesPath(t *testing.T) {
	// P4 0-1-2-3: ends are orbit 4, mids orbit 5; every node also sits
	// on P3s.
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	c := CountNodes(g)
	wantNodeRow(t, nodeRow(t, c, 0), [NumNodeOrbits]int64{0: 1, 1: 1, 4: 1}, "P4 end")
	wantNodeRow(t, nodeRow(t, c, 1), [NumNodeOrbits]int64{0: 2, 1: 1, 2: 1, 5: 1}, "P4 mid")
}

func TestCountNodesStar(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	c := CountNodes(g)
	wantNodeRow(t, nodeRow(t, c, 0), [NumNodeOrbits]int64{0: 3, 2: 3, 7: 1}, "star center")
	wantNodeRow(t, nodeRow(t, c, 1), [NumNodeOrbits]int64{0: 1, 1: 2, 6: 1}, "star leaf")
}

func TestCountNodesTriangle(t *testing.T) {
	g := buildGraph(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	c := CountNodes(g)
	wantNodeRow(t, nodeRow(t, c, 0), [NumNodeOrbits]int64{0: 2, 3: 1}, "K3")
}

func TestCountNodesPaw(t *testing.T) {
	// Triangle {0,1,2} with tail 3 on 0.
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}})
	c := CountNodes(g)
	if c.PerNode[3][9] != 1 {
		t.Fatalf("tail node: %v", c.PerNode[3])
	}
	if c.PerNode[0][11] != 1 {
		t.Fatalf("center node: %v", c.PerNode[0])
	}
	if c.PerNode[1][10] != 1 || c.PerNode[2][10] != 1 {
		t.Fatalf("rim nodes: %v / %v", c.PerNode[1], c.PerNode[2])
	}
}

func TestCountNodesDiamondAndK4(t *testing.T) {
	diamond := buildGraph(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}})
	c := CountNodes(diamond)
	if c.PerNode[0][13] != 1 || c.PerNode[1][13] != 1 {
		t.Fatalf("hubs: %v / %v", c.PerNode[0], c.PerNode[1])
	}
	if c.PerNode[2][12] != 1 || c.PerNode[3][12] != 1 {
		t.Fatalf("rims: %v / %v", c.PerNode[2], c.PerNode[3])
	}
	k4 := completeGraph(4)
	c = CountNodes(k4)
	for v := 0; v < 4; v++ {
		if c.PerNode[v][14] != 1 {
			t.Fatalf("K4 node %d: %v", v, c.PerNode[v])
		}
	}
}

func TestCountNodesC4(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	c := CountNodes(g)
	for v := 0; v < 4; v++ {
		if c.PerNode[v][8] != 1 {
			t.Fatalf("C4 node %d: %v", v, c.PerNode[v])
		}
	}
}

func TestCountNodesMatchesBruteNamed(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"fig5":     buildGraph(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 4}}),
		"bull":     buildGraph(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}, {1, 4}}),
		"k5":       completeGraph(5),
		"petersen": petersen(),
		"twoComp":  buildGraph(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}}),
	}
	for name, g := range graphs {
		fast, brute := CountNodes(g), CountNodesBrute(g)
		for v := range fast.PerNode {
			if fast.PerNode[v] != brute.PerNode[v] {
				t.Errorf("%s node %d: fast %v != brute %v", name, v, fast.PerNode[v], brute.PerNode[v])
			}
		}
	}
}

func TestCountNodesMatchesBruteRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(12)
		p := 0.15 + 0.5*rng.Float64()
		g := graph.ErdosRenyi(n, p, rng)
		fast, brute := CountNodes(g), CountNodesBrute(g)
		for v := range fast.PerNode {
			if fast.PerNode[v] != brute.PerNode[v] {
				t.Logf("seed %d node %d: fast %v brute %v", seed, v, fast.PerNode[v], brute.PerNode[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNodeTotalsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.ErdosRenyi(35, 0.25, rng)
	nt := CountNodes(g).Totals()
	et := Count(g).Totals()

	// Each graphlet occurrence distributes its nodes across the node
	// orbits in fixed proportions tied to the edge orbits.
	if nt[0] != 2*et[0] {
		t.Fatalf("degree total %d != 2×edges %d", nt[0], et[0])
	}
	if nt[3] != et[2] { // triangle: 3 nodes ↔ 3 edges per triangle
		t.Fatalf("triangle nodes %d != triangle edge slots %d", nt[3], et[2])
	}
	if nt[5] != 2*et[4] { // P4: 2 mids per mid edge
		t.Fatalf("P4 mids %d != 2×mid edges %d", nt[5], et[4])
	}
	if nt[7]*3 != et[5] { // star: 3 edge slots per centre
		t.Fatalf("star centres %d vs star edges %d", nt[7], et[5])
	}
	if nt[8] != et[6] { // C4: 4 nodes ↔ 4 edges
		t.Fatalf("C4 nodes %d != C4 edges %d", nt[8], et[6])
	}
	if nt[9] != et[7] { // paw: 1 tail node ↔ 1 tail edge
		t.Fatalf("paw tails %d != tail edges %d", nt[9], et[7])
	}
	if nt[13] != 2*et[11] { // diamond: 2 hubs per central edge
		t.Fatalf("diamond hubs %d != 2×central edges %d", nt[13], et[11])
	}
	if nt[14]*6 != 4*et[12] { // K4: 4 nodes, 6 edges
		t.Fatalf("K4 nodes %d vs K4 edges %d", nt[14], et[12])
	}
}

func TestCountNodesFromForeignCountsPanics(t *testing.T) {
	g1 := completeGraph(4)
	g2 := completeGraph(4)
	counts := Count(g1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CountNodesFrom(g2, counts)
}

func BenchmarkCountNodesER1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyi(1000, 0.01, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountNodes(g)
	}
}
