package orbit

import (
	"github.com/htc-align/htc/internal/graph"
)

// CountBrute computes edge-orbit counts by exhaustively enumerating every
// 2-, 3- and 4-node subset and classifying its induced subgraph. It is
// exponentially slower than Count and exists as the ground-truth oracle
// for tests; keep it for graphs with at most a few dozen nodes.
func CountBrute(g *graph.Graph) *Counts {
	n := g.N()
	idx := g.EdgeIndex()
	out := &Counts{G: g, PerEdge: make([][NumOrbits]int64, g.NumEdges())}

	bump := func(u, v int, orbit int) {
		out.PerEdge[idx[graph.EdgeKey(u, v)]][orbit]++
	}

	// Orbit 0: every edge occurs once as graphlet G0.
	for _, e := range g.Edges() {
		bump(int(e[0]), int(e[1]), 0)
	}

	// 3-node subsets: triangle (orbit 2) or two-edge chain (orbit 1).
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				ab, ac, bc := g.HasEdge(a, b), g.HasEdge(a, c), g.HasEdge(b, c)
				switch countTrue(ab, ac, bc) {
				case 3:
					bump(a, b, 2)
					bump(a, c, 2)
					bump(b, c, 2)
				case 2:
					if ab {
						bump(a, b, 1)
					}
					if ac {
						bump(a, c, 1)
					}
					if bc {
						bump(b, c, 1)
					}
				}
			}
		}
	}

	// 4-node subsets.
	nodes := [4]int{}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				for d := c + 1; d < n; d++ {
					nodes = [4]int{a, b, c, d}
					classifyQuad(g, nodes, bump)
				}
			}
		}
	}
	return out
}

// classifyQuad identifies the induced graphlet on four nodes and assigns
// each of its edges to the correct orbit.
func classifyQuad(g *graph.Graph, nodes [4]int, bump func(u, v, orbit int)) {
	var edges [][2]int
	var deg [4]int
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if g.HasEdge(nodes[i], nodes[j]) {
				edges = append(edges, [2]int{i, j})
				deg[i]++
				deg[j]++
			}
		}
	}
	switch len(edges) {
	case 3:
		// A 3-edge subgraph on 4 nodes is connected iff it spans all
		// four nodes (otherwise it is a triangle plus an isolate,
		// already counted at the 3-subset level).
		for _, d := range deg {
			if d == 0 {
				return
			}
		}
		if deg[0] == 3 || deg[1] == 3 || deg[2] == 3 || deg[3] == 3 {
			for _, e := range edges { // star K1,3
				bump(nodes[e[0]], nodes[e[1]], 5)
			}
			return
		}
		for _, e := range edges { // path P4
			if deg[e[0]] == 1 || deg[e[1]] == 1 {
				bump(nodes[e[0]], nodes[e[1]], 3)
			} else {
				bump(nodes[e[0]], nodes[e[1]], 4)
			}
		}
	case 4:
		// Four edges on four nodes are always connected: C4 (all degree
		// 2) or the tailed triangle (degrees 1,2,2,3).
		maxDeg := 0
		for _, d := range deg {
			if d > maxDeg {
				maxDeg = d
			}
		}
		if maxDeg == 2 {
			for _, e := range edges { // quadrangle
				bump(nodes[e[0]], nodes[e[1]], 6)
			}
			return
		}
		for _, e := range edges { // tailed triangle
			du, dv := deg[e[0]], deg[e[1]]
			switch {
			case du == 1 || dv == 1:
				bump(nodes[e[0]], nodes[e[1]], 7) // tail edge
			case du+dv == 5:
				bump(nodes[e[0]], nodes[e[1]], 8) // hub–rim edge
			default:
				bump(nodes[e[0]], nodes[e[1]], 9) // edge opposite the tail
			}
		}
	case 5:
		for _, e := range edges { // diamond
			if deg[e[0]] == 3 && deg[e[1]] == 3 {
				bump(nodes[e[0]], nodes[e[1]], 11) // central diagonal
			} else {
				bump(nodes[e[0]], nodes[e[1]], 10)
			}
		}
	case 6:
		for _, e := range edges { // clique K4
			bump(nodes[e[0]], nodes[e[1]], 12)
		}
	}
}

func countTrue(bs ...bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
