package orbit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/htc-align/htc/internal/graph"
)

func buildGraph(n int, edges [][2]int) *graph.Graph {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func row(t *testing.T, c *Counts, u, v int) []int64 {
	t.Helper()
	r := c.Of(c.G.EdgeIndex(), u, v)
	if r == nil {
		t.Fatalf("edge (%d,%d) missing", u, v)
	}
	return r
}

func wantRow(t *testing.T, got []int64, want [NumOrbits]int64, label string) {
	t.Helper()
	for k := 0; k < NumOrbits; k++ {
		if got[k] != want[k] {
			t.Fatalf("%s orbit %d (%s): got %d, want %d (full row %v)",
				label, k, Names[k], got[k], want[k], got)
		}
	}
}

// TestFigure5Example reproduces the worked example of the paper's Fig. 5:
// a triangle {a,b,c} with pendant d attached to b and pendant e attached
// to c. The paper's table gives the first five orbit counts of (a,b) as
// (1,1,1,0,0) and of (b,c) as (1,2,1,0,1).
func TestFigure5Example(t *testing.T) {
	const a, b, c, d, e = 0, 1, 2, 3, 4
	g := buildGraph(5, [][2]int{{a, b}, {b, c}, {a, c}, {b, d}, {c, e}})
	counts := Count(g)

	ab := row(t, counts, a, b)
	for k, want := range []int64{1, 1, 1, 0, 0} {
		if ab[k] != want {
			t.Fatalf("(a,b) orbit %d = %d, want %d", k, ab[k], want)
		}
	}
	bc := row(t, counts, b, c)
	for k, want := range []int64{1, 2, 1, 0, 1} {
		if bc[k] != want {
			t.Fatalf("(b,c) orbit %d = %d, want %d", k, bc[k], want)
		}
	}
}

func TestSingleEdge(t *testing.T) {
	g := buildGraph(2, [][2]int{{0, 1}})
	counts := Count(g)
	wantRow(t, row(t, counts, 0, 1), [NumOrbits]int64{0: 1}, "K2")
}

func TestTriangle(t *testing.T) {
	g := buildGraph(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	counts := Count(g)
	wantRow(t, row(t, counts, 0, 1), [NumOrbits]int64{0: 1, 2: 1}, "K3")
}

func TestPathP4(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	counts := Count(g)
	wantRow(t, row(t, counts, 0, 1), [NumOrbits]int64{0: 1, 1: 1, 3: 1}, "P4 end")
	wantRow(t, row(t, counts, 1, 2), [NumOrbits]int64{0: 1, 1: 2, 4: 1}, "P4 mid")
}

func TestStar(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	counts := Count(g)
	wantRow(t, row(t, counts, 0, 1), [NumOrbits]int64{0: 1, 1: 2, 5: 1}, "K1,3")
}

func TestCycleC4(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	counts := Count(g)
	wantRow(t, row(t, counts, 0, 1), [NumOrbits]int64{0: 1, 1: 2, 6: 1}, "C4")
}

func TestPaw(t *testing.T) {
	// Triangle {0,1,2} with tail 3 attached to 0.
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}})
	counts := Count(g)
	wantRow(t, row(t, counts, 0, 3), [NumOrbits]int64{0: 1, 1: 2, 7: 1}, "paw tail")
	wantRow(t, row(t, counts, 0, 1), [NumOrbits]int64{0: 1, 1: 1, 2: 1, 8: 1}, "paw near")
	// Edge (1,2) has no induced P3: node 0 is adjacent to both endpoints
	// and node 3 to neither, so orbit 1 is 0.
	wantRow(t, row(t, counts, 1, 2), [NumOrbits]int64{0: 1, 2: 1, 9: 1}, "paw far")
}

func TestDiamond(t *testing.T) {
	// K4 minus edge (2,3): hubs 0,1; rim 2,3.
	g := buildGraph(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}})
	counts := Count(g)
	wantRow(t, row(t, counts, 0, 1), [NumOrbits]int64{0: 1, 2: 2, 11: 1}, "diamond central")
	wantRow(t, row(t, counts, 0, 2), [NumOrbits]int64{0: 1, 1: 1, 2: 1, 10: 1}, "diamond outer")
}

func TestK4(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	counts := Count(g)
	wantRow(t, row(t, counts, 0, 1), [NumOrbits]int64{0: 1, 2: 2, 12: 1}, "K4")
}

func TestFastMatchesBruteOnNamedGraphs(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"fig5":     buildGraph(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 4}}),
		"bull":     buildGraph(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}, {1, 4}}),
		"k5":       completeGraph(5),
		"petersen": petersen(),
		"empty":    buildGraph(4, nil),
		"twoComp":  buildGraph(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}}),
	}
	for name, g := range graphs {
		fast, brute := Count(g), CountBrute(g)
		for i := range fast.PerEdge {
			if fast.PerEdge[i] != brute.PerEdge[i] {
				t.Errorf("%s edge %v: fast %v != brute %v",
					name, g.Edges()[i], fast.PerEdge[i], brute.PerEdge[i])
			}
		}
	}
}

func completeGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func petersen() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, (i+1)%5)     // outer cycle
		b.AddEdge(i+5, (i+2)%5+5) // inner pentagram
		b.AddEdge(i, i+5)         // spokes
	}
	return b.Build()
}

func TestFastMatchesBruteRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(14)
		p := 0.15 + 0.4*rng.Float64()
		g := graph.ErdosRenyi(n, p, rng)
		fast, brute := Count(g), CountBrute(g)
		for i := range fast.PerEdge {
			if fast.PerEdge[i] != brute.PerEdge[i] {
				t.Logf("seed %d edge %v: fast %v brute %v", seed, g.Edges()[i], fast.PerEdge[i], brute.PerEdge[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTotalsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := graph.ErdosRenyi(40, 0.2, rng)
	totals := Count(g).Totals()

	if totals[0] != int64(g.NumEdges()) {
		t.Fatalf("orbit0 total = %d, want %d", totals[0], g.NumEdges())
	}
	// Each triangle contributes its 3 edges to orbit 2.
	if totals[2]%3 != 0 {
		t.Fatalf("orbit2 total %d not divisible by 3", totals[2])
	}
	// Each P3 contributes both edges to orbit 1.
	if totals[1]%2 != 0 {
		t.Fatalf("orbit1 total %d not divisible by 2", totals[1])
	}
	// Each P4 has two end edges and one middle edge.
	if totals[3] != 2*totals[4] {
		t.Fatalf("P4 end/mid mismatch: %d vs %d", totals[3], totals[4])
	}
	// Each star has 3 edges; each C4 contributes 4 edges.
	if totals[5]%3 != 0 || totals[6]%4 != 0 {
		t.Fatalf("star/C4 divisibility: %d, %d", totals[5], totals[6])
	}
	// Each paw: one tail, two near, one far.
	if totals[8] != 2*totals[7] || totals[9] != totals[7] {
		t.Fatalf("paw role mismatch: tail=%d near=%d far=%d", totals[7], totals[8], totals[9])
	}
	// Each diamond: four outer, one central. Each K4 has six edges.
	if totals[10] != 4*totals[11] {
		t.Fatalf("diamond role mismatch: outer=%d central=%d", totals[10], totals[11])
	}
	if totals[12]%6 != 0 {
		t.Fatalf("K4 total %d not divisible by 6", totals[12])
	}
}

func TestParallelPathMatchesBrute(t *testing.T) {
	// ER(60, 0.6) has well over 256 edges, forcing the sharded path.
	rng := rand.New(rand.NewSource(77))
	g := graph.ErdosRenyi(60, 0.6, rng)
	if g.NumEdges() < 256 {
		t.Fatalf("test graph too small (%d edges) to exercise the parallel path", g.NumEdges())
	}
	fast, brute := Count(g), CountBrute(g)
	for i := range fast.PerEdge {
		if fast.PerEdge[i] != brute.PerEdge[i] {
			t.Fatalf("edge %v: fast %v != brute %v", g.Edges()[i], fast.PerEdge[i], brute.PerEdge[i])
		}
	}
}

func TestCountDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	g := graph.ErdosRenyi(200, 0.1, rng)
	a, b := Count(g), Count(g)
	for i := range a.PerEdge {
		if a.PerEdge[i] != b.PerEdge[i] {
			t.Fatal("parallel counting not deterministic")
		}
	}
}

func TestOfMissingEdge(t *testing.T) {
	g := buildGraph(3, [][2]int{{0, 1}})
	counts := Count(g)
	if counts.Of(g.EdgeIndex(), 0, 2) != nil {
		t.Fatal("Of must return nil for a missing edge")
	}
}

func TestCountEmptyGraph(t *testing.T) {
	g := buildGraph(5, nil)
	counts := Count(g)
	if len(counts.PerEdge) != 0 {
		t.Fatal("empty graph must produce no rows")
	}
}

func BenchmarkCountER1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyi(1000, 0.01, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(g)
	}
}

func BenchmarkCountDense300(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := graph.ErdosRenyi(300, 0.15, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(g)
	}
}

// BenchmarkCountWorkers measures the stage-1 kernel under an explicit
// worker budget — the serial/parallel pair the pipeline benchmark
// decomposes into.
func BenchmarkCountWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := graph.ErdosRenyi(800, 0.02, rng)
	for _, w := range []struct {
		label   string
		workers int
	}{{"1", 1}, {"max", 0}} {
		b.Run("workers="+w.label, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				CountN(g, w.workers)
			}
		})
	}
}
