package orbit

import (
	"github.com/htc-align/htc/internal/graph"
)

// NumNodeOrbits is the number of node orbits on 2–4-node graphlets (the
// graphlet degree vector length of Pržulj's GDV for graphlets G0–G8).
const NumNodeOrbits = 15

// NodeNames labels each node orbit.
var NodeNames = [NumNodeOrbits]string{
	"degree", "P3-end", "P3-mid", "triangle", "P4-end", "P4-mid",
	"star-leaf", "star-center", "C4", "paw-tail", "paw-rim", "paw-center",
	"diamond-rim", "diamond-hub", "K4",
}

// NodeCounts holds, for every node, how many times it occurs on each node
// orbit — its graphlet degree vector.
type NodeCounts struct {
	G *graph.Graph
	// PerNode[v][k] is the number of times node v occurs on orbit k.
	PerNode [][NumNodeOrbits]int64
}

// CountNodes computes the graphlet degree vector of every node. Instead of
// a second counting pass, the 4-node orbits are derived from the edge
// orbits through exact combinatorial identities — every 4-node graphlet
// contributes a fixed number of each edge orbit to each of its node
// orbits:
//
//	o3  = Σ_e∋v O2 / 2          (each triangle at v has 2 edges at v)
//	o5  = Σ_e∋v O4              (a P4 mid node touches its mid edge once)
//	o4  = Σ_e∋v O3 − o5         (end edges touch one end + one mid node)
//	o8  = Σ_e∋v O6 / 2          (a C4 node touches 2 cycle edges)
//	o10 = Σ_e∋v O9              (paw rim nodes touch the far edge once)
//	o11 = (Σ_e∋v O8 − o10) / 2  (hub touches both hub–rim edges)
//	o9  = Σ_e∋v O7 − o11        (the tail edge touches tail + hub)
//	o13 = Σ_e∋v O11             (the diamond diagonal joins the two hubs)
//	o12 = (Σ_e∋v O10 − 2·o13)/2 (hubs and rims each touch 2 outer edges)
//	o14 = Σ_e∋v O12 / 3         (a K4 node touches 3 clique edges)
//
// The star centre needs one extra identity (independent neighbour triples
// by inclusion–exclusion over the neighbourhood's internal edges):
//
//	o7 = C(d,3) − t·(d−2) + Σ_{u∈N(v)} C(O2(v,u), 2) − o14
//	o6 = Σ_e∋v O5 − 3·o7
//
// CountNodesFrom validates against CountNodesBrute in the tests.
func CountNodes(g *graph.Graph) *NodeCounts {
	return CountNodesFrom(g, Count(g))
}

// CountNodesFrom derives node-orbit counts from precomputed edge-orbit
// counts (sharing the expensive pass with gom construction).
func CountNodesFrom(g *graph.Graph, counts *Counts) *NodeCounts {
	if counts.G != g {
		panic("orbit: counts were computed for a different graph")
	}
	n := g.N()
	out := &NodeCounts{G: g, PerNode: make([][NumNodeOrbits]int64, n)}

	// Edge-orbit sums per node, plus the Σ C(O2(v,u), 2) term.
	var sums [NumOrbits][]int64
	for k := range sums {
		sums[k] = make([]int64, n)
	}
	pairsOfTriangles := make([]int64, n) // Σ_{u∈N(v)} C(O2(v,u), 2)
	for ei, e := range g.Edges() {
		row := counts.PerEdge[ei]
		for k := 0; k < NumOrbits; k++ {
			sums[k][e[0]] += row[k]
			sums[k][e[1]] += row[k]
		}
		c2 := choose2(row[2])
		pairsOfTriangles[e[0]] += c2
		pairsOfTriangles[e[1]] += c2
	}

	for v := 0; v < n; v++ {
		d := int64(g.Degree(v))
		t := sums[2][v] / 2 // triangles at v
		row := &out.PerNode[v]
		row[0] = d
		// P3: v is the mid of C(d,2)−t induced two-edge chains; ends are
		// counted from neighbours' spare degrees minus closed wedges.
		var endP3 int64
		for _, u := range g.Neighbors(v) {
			endP3 += int64(g.Degree(int(u))) - 1
		}
		row[1] = endP3 - 2*t
		row[2] = choose2(d) - t
		row[3] = t
		row[5] = sums[4][v]
		row[4] = sums[3][v] - row[5]
		row[8] = sums[6][v] / 2
		row[10] = sums[9][v]
		row[11] = (sums[8][v] - row[10]) / 2
		row[9] = sums[7][v] - row[11]
		row[13] = sums[11][v]
		row[12] = (sums[10][v] - 2*row[13]) / 2
		row[14] = sums[12][v] / 3
		row[7] = choose3(d) - t*(d-2) + pairsOfTriangles[v] - row[14]
		row[6] = sums[5][v] - 3*row[7]
	}
	return out
}

// Totals sums each node orbit over all nodes.
func (c *NodeCounts) Totals() [NumNodeOrbits]int64 {
	var t [NumNodeOrbits]int64
	for i := range c.PerNode {
		for k := 0; k < NumNodeOrbits; k++ {
			t[k] += c.PerNode[i][k]
		}
	}
	return t
}

// CountNodesBrute computes node-orbit counts by exhaustive subset
// enumeration; the test oracle for CountNodes.
func CountNodesBrute(g *graph.Graph) *NodeCounts {
	n := g.N()
	out := &NodeCounts{G: g, PerNode: make([][NumNodeOrbits]int64, n)}
	bump := func(v, orbit int) { out.PerNode[v][orbit]++ }

	for _, e := range g.Edges() {
		bump(int(e[0]), 0)
		bump(int(e[1]), 0)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				ab, ac, bc := g.HasEdge(a, b), g.HasEdge(a, c), g.HasEdge(b, c)
				switch countTrue(ab, ac, bc) {
				case 3:
					bump(a, 3)
					bump(b, 3)
					bump(c, 3)
				case 2:
					// The mid node is on both edges.
					switch {
					case ab && ac:
						bump(a, 2)
						bump(b, 1)
						bump(c, 1)
					case ab && bc:
						bump(b, 2)
						bump(a, 1)
						bump(c, 1)
					default: // ac && bc
						bump(c, 2)
						bump(a, 1)
						bump(b, 1)
					}
				}
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				for d := c + 1; d < n; d++ {
					classifyQuadNodes(g, [4]int{a, b, c, d}, bump)
				}
			}
		}
	}
	return out
}

// classifyQuadNodes assigns the node orbits of one induced 4-node
// subgraph.
func classifyQuadNodes(g *graph.Graph, nodes [4]int, bump func(v, orbit int)) {
	var deg [4]int
	edges := 0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if g.HasEdge(nodes[i], nodes[j]) {
				deg[i]++
				deg[j]++
				edges++
			}
		}
	}
	switch edges {
	case 3:
		for _, dd := range deg {
			if dd == 0 {
				return // triangle + isolate: not a connected 4-graphlet
			}
		}
		star := deg[0] == 3 || deg[1] == 3 || deg[2] == 3 || deg[3] == 3
		for i, dd := range deg {
			switch {
			case star && dd == 3:
				bump(nodes[i], 7)
			case star:
				bump(nodes[i], 6)
			case dd == 1:
				bump(nodes[i], 4)
			default:
				bump(nodes[i], 5)
			}
		}
	case 4:
		maxDeg := 0
		for _, dd := range deg {
			if dd > maxDeg {
				maxDeg = dd
			}
		}
		if maxDeg == 2 { // C4
			for i := range deg {
				bump(nodes[i], 8)
			}
			return
		}
		for i, dd := range deg { // paw
			switch dd {
			case 1:
				bump(nodes[i], 9)
			case 2:
				bump(nodes[i], 10)
			default:
				bump(nodes[i], 11)
			}
		}
	case 5:
		for i, dd := range deg { // diamond
			if dd == 3 {
				bump(nodes[i], 13)
			} else {
				bump(nodes[i], 12)
			}
		}
	case 6:
		for i := range deg {
			bump(nodes[i], 14)
		}
	}
}

func choose3(n int64) int64 { return n * (n - 1) * (n - 2) / 6 }
