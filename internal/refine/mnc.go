package refine

import (
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/par"
)

// MNC computes the matched neighborhood consistency of a hard alignment
// (match[s] = t, −1 unmatched): the mean, over all source nodes, of the
// Jaccard similarity between the matched images of a node's neighbors
// and the neighborhood of the node's own match — the objective RefiNA
// iterations climb. An unmatched node, or one whose comparison sets are
// both empty, contributes 0, so MNC ∈ [0, 1] and is 1 exactly when the
// alignment maps every neighborhood onto its counterpart.
func MNC(match []int, gs, gt *graph.Graph, workers int) float64 {
	n := gs.N()
	if n == 0 {
		return 0
	}
	per := make([]float64, n)
	type mncScratch struct {
		inB  []int // stamp: target is a neighbor of match[i]
		seen []int // stamp: matched image already counted for A
		gen  int
	}
	scratches := make([]*mncScratch, par.Resolve(workers))
	par.Sharded(workers, n, func(w, i int) {
		sc := scratches[w]
		if sc == nil {
			sc = &mncScratch{inB: make([]int, gt.N()), seen: make([]int, gt.N())}
			scratches[w] = sc
		}
		m := match[i]
		if m < 0 {
			return
		}
		sc.gen++
		nb := gt.Neighbors(m)
		for _, j := range nb {
			sc.inB[j] = sc.gen
		}
		// A = {match[u] : u ∈ N₁(i), matched}, deduplicated.
		sizeA, inter := 0, 0
		for _, u := range gs.Neighbors(i) {
			t := match[u]
			if t < 0 || sc.seen[t] == sc.gen {
				continue
			}
			sc.seen[t] = sc.gen
			sizeA++
			if sc.inB[t] == sc.gen {
				inter++
			}
		}
		union := sizeA + len(nb) - inter
		if union > 0 {
			per[i] = float64(inter) / float64(union)
		}
	})
	// Deterministic reduction: per-row values sum in index order
	// regardless of which worker produced them.
	var sum float64
	for _, v := range per {
		sum += v
	}
	return sum / float64(n)
}
