// Package refine implements RefiNA-style iterative refinement of a
// network alignment (Heimann et al., "Refining Network Alignment to
// Improve Matched Neighborhood Consistency"): starting from any
// similarity structure over two graphs, each iteration boosts the score
// of pairs whose neighbors agree with the current alignment
// (M ← M ⊙ A₁MA₂), adds a small token-match mass so promising pairs
// outside the current support can enter, and renormalises rows then
// columns. A few iterations lift Hits@1 for any aligner's output.
//
// One implementation serves both align.Sim backend families. Rows are
// candidate lists throughout: the dense path carries full rows (every
// column a candidate, no pruning), the sparse path carries top-k rows
// pruned back to the candidate budget after every update, so a
// 100k-node alignment refines in O(n·k·deg) per iteration instead of
// the dense O(n²·deg). Because both paths run the exact same
// accumulation orders, refining a dense matrix and refining a full
// (k ≥ nt) candidate list are bit-identical.
package refine

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/htc-align/htc/internal/align"
	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/par"
)

// Options configures a refinement run.
type Options struct {
	// Iters is the number of refinement iterations. 0 returns the input
	// unchanged (with only the initial MNC measured).
	Iters int
	// TokenK bounds the token-match budget: per source row, only the
	// TokenK strongest neighbor-supported columns receive the additive
	// token mass that lets new candidates enter the support. 0 resolves
	// to the row budget (every column on the dense path, the candidate
	// budget k on the sparse path), the exact-RefiNA behaviour.
	TokenK int
	// Workers bounds the goroutine fan-out (≤ 0 = all CPUs). The result
	// is identical for every worker count.
	Workers int
	// Ctx, when non-nil, cancels the run between iterations.
	Ctx context.Context
	// OnIter, when non-nil, observes each completed iteration and the
	// matched-neighborhood consistency reached after it.
	OnIter func(iter int, mnc float64)
}

// Result is the outcome of a refinement run.
type Result struct {
	// Sim is the refined similarity, in the input's representation
	// (dense in → dense out, candidate list in → candidate list out).
	// The input representation is never mutated.
	Sim align.Sim
	// MNC records the matched neighborhood consistency trajectory:
	// MNC[0] is the input alignment's score, MNC[t] the score after
	// iteration t (length Iters+1).
	MNC []float64
	// TokenK is the resolved token-match budget.
	TokenK int
}

// Refine runs Options.Iters RefiNA iterations of sim over the graph
// pair. sim's shape must match the graphs. The input sim is not
// mutated; rows that receive no neighbor signal in an iteration (an
// isolated node, or empty neighbor rows) pass through unchanged.
func Refine(sim align.Sim, gs, gt *graph.Graph, opts Options) (*Result, error) {
	if sim == nil {
		return nil, fmt.Errorf("refine: nil similarity")
	}
	rows, cols := sim.Dims()
	if rows != gs.N() || cols != gt.N() {
		return nil, fmt.Errorf("refine: similarity is %d×%d but the pair is %d×%d", rows, cols, gs.N(), gt.N())
	}
	if opts.Iters < 0 {
		return nil, fmt.Errorf("refine: iterations must be ≥ 0 (got %d)", opts.Iters)
	}
	if opts.TokenK < 0 {
		return nil, fmt.Errorf("refine: token budget must be ≥ 0 (got %d)", opts.TokenK)
	}

	st := newState(sim, cols)
	tokenK := opts.TokenK
	if tokenK == 0 {
		tokenK = st.k
	}
	workers := par.Resolve(opts.Workers)

	res := &Result{TokenK: tokenK, MNC: make([]float64, 0, opts.Iters+1)}
	res.MNC = append(res.MNC, MNC(st.argmaxRows(workers), gs, gt, workers))
	if opts.Iters == 0 {
		res.Sim = sim
		return res, nil
	}

	st.softAssignRows()
	// The RefiNA token mass: small enough never to outrank genuine
	// neighbor agreement after normalisation, large enough to keep
	// token-matched pairs strictly above zero.
	eps := 1 / (float64(rows) * float64(cols))
	for it := 1; it <= opts.Iters; it++ {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		st = st.step(gs, gt, eps, tokenK, workers)
		mnc := MNC(st.argmaxRows(workers), gs, gt, workers)
		res.MNC = append(res.MNC, mnc)
		if opts.OnIter != nil {
			opts.OnIter(it, mnc)
		}
	}
	res.Sim = st.toSim()
	return res, nil
}

// FromMatching lifts a hard matching (match[s] = t, −1 unmatched) into
// a one-hot candidate-list Sim over cols target columns, the form
// Refine accepts for alignments produced outside the pipeline. k sets
// the candidate budget refinement may grow each row to (clamped to at
// least 1).
func FromMatching(match []int, cols, k int) (*align.TopKSim, error) {
	if k < 1 {
		k = 1
	}
	c := &align.Candidates{K: k, Idx: make([][]int32, len(match)), Score: make([][]float64, len(match))}
	for i, t := range match {
		if t < 0 {
			continue
		}
		if t >= cols {
			return nil, fmt.Errorf("refine: matching sends node %d to target %d outside %d columns", i, t, cols)
		}
		c.Idx[i] = []int32{int32(t)}
		c.Score[i] = []float64{1}
	}
	return &align.TopKSim{C: c, Cols: cols}, nil
}

// state is the working representation both backends refine through:
// per-row candidate lists (the dense path's rows are simply full).
// Rows are never mutated in place across an update — each iteration
// double-buffers — so neighbor reads always see the previous iterate.
type state struct {
	idx   [][]int32
	score [][]float64
	rows  int
	cols  int
	// k is the per-row candidate budget rows are pruned back to after
	// every update (cols on the dense path: no pruning).
	k     int
	dense bool
}

func newState(sim align.Sim, cols int) *state {
	rows, _ := sim.Dims()
	st := &state{rows: rows, cols: cols, idx: make([][]int32, rows), score: make([][]float64, rows)}
	switch s := sim.(type) {
	case align.DenseSim:
		st.dense = true
		st.k = cols
		for i := 0; i < rows; i++ {
			idx := make([]int32, cols)
			for j := range idx {
				idx[j] = int32(j)
			}
			st.idx[i] = idx
			st.score[i] = append([]float64(nil), s.M.Row(i)...)
		}
	case *align.TopKSim:
		st.k = s.C.K
		if st.k < 1 {
			st.k = 1
		}
		for i := 0; i < rows; i++ {
			st.idx[i] = append([]int32(nil), s.C.Idx[i]...)
			st.score[i] = append([]float64(nil), s.C.Score[i]...)
		}
	default:
		// An unknown Sim implementation: materialise through Scan.
		st.k = cols
		for i := 0; i < rows; i++ {
			sim.Scan(i, func(j int, v float64) {
				st.idx[i] = append(st.idx[i], int32(j))
				st.score[i] = append(st.score[i], v)
			})
		}
	}
	return st
}

// softAssignRows converts each row into the peaked non-negative soft
// assignment the multiplicative RefiNA update needs: score'(c) =
// exp((score(c) − rowMax)/T) with the scale-invariant temperature
// T = (rowMax − rowMin)/ln(cols), so a row's best entry maps to 1, its
// worst to 1/cols, and every within-row ranking is preserved. The
// temperature choice is what makes refinement safe on arbitrary score
// families (Pearson and LISI scores are negative with heavy near-uniform
// background): it bounds a full row's background mass at O(1), the same
// order as one true match, so the update M ⊙ A₁MA₂ measures neighbor
// agreement rather than degree products. Constant rows (including the
// one-hot rows of FromMatching) map to all-ones.
func (s *state) softAssignRows() {
	logC := math.Log(float64(s.cols))
	for i := 0; i < s.rows; i++ {
		row := s.score[i]
		if len(row) == 0 {
			continue
		}
		max, min := row[0], row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
			if v < min {
				min = v
			}
		}
		if max == min || logC <= 0 {
			for c := range row {
				row[c] = 1
			}
			continue
		}
		invT := logC / (max - min)
		for c := range row {
			row[c] = math.Exp((row[c] - max) * invT)
		}
	}
}

// toSim converts the final state back into the input's representation.
func (s *state) toSim() align.Sim {
	if s.dense {
		m := dense.New(s.rows, s.cols)
		for i := 0; i < s.rows; i++ {
			row := m.Row(i)
			sc := s.score[i]
			for c, j := range s.idx[i] {
				row[j] = sc[c]
			}
		}
		return align.DenseSim{M: m}
	}
	c := &align.Candidates{K: s.k, Idx: s.idx, Score: s.score}
	return &align.TopKSim{C: c, Cols: s.cols}
}

// argmaxRows extracts the current hard alignment: per row the best
// (score desc, column asc) candidate, −1 for empty rows.
func (s *state) argmaxRows(workers int) []int {
	out := make([]int, s.rows)
	par.Tasks(workers, s.rows, func(i int) {
		best := -1
		var bestScore float64
		for c, j := range s.idx[i] {
			v := s.score[i][c]
			if best < 0 || v > bestScore || (v == bestScore && int(j) < best) {
				best, bestScore = int(j), v
			}
		}
		out[i] = best
	})
	return out
}

// scratch is one worker's private per-row buffers: generation-stamped
// accumulators over target columns, so a row update never pays an
// O(cols) clear.
type scratch struct {
	accV   []float64 // agreement mass per intermediate target node v
	stampV []int
	accU   []float64 // the update vector U = (A₁MA₂)[i,·]
	stampU []int
	val    []float64 // the old row's scores by column
	stampR []int
	token  []int // stamp marking token-matched columns
	gen    int
	vm     []int32 // support of accV
	um     []int32 // support of accU
	rm     []int32 // new row support
	ord    []int32 // token-selection ordering buffer
}

func newScratch(cols int) *scratch {
	return &scratch{
		accV: make([]float64, cols), stampV: make([]int, cols),
		accU: make([]float64, cols), stampU: make([]int, cols),
		val: make([]float64, cols), stampR: make([]int, cols),
		token: make([]int, cols),
	}
}

// step runs one RefiNA iteration and returns the next iterate. Rows fan
// out across workers with per-row output slots and a deterministic
// column-sum reduction, so the result is identical for every worker
// count and schedule.
func (s *state) step(gs, gt *graph.Graph, eps float64, tokenK, workers int) *state {
	next := &state{
		rows: s.rows, cols: s.cols, k: s.k, dense: s.dense,
		idx: make([][]int32, s.rows), score: make([][]float64, s.rows),
	}
	scratches := make([]*scratch, par.Resolve(workers))
	par.Sharded(workers, s.rows, func(w, i int) {
		sc := scratches[w]
		if sc == nil {
			sc = newScratch(s.cols)
			scratches[w] = sc
		}
		idx, score := sc.updateRow(i, s, gs, gt, eps, tokenK)
		if idx == nil {
			// No neighbor signal reached this row: pass it through. The
			// slices are read-only from here on, so aliasing the old
			// iterate is safe.
			idx, score = s.idx[i], s.score[i]
		}
		next.idx[i], next.score[i] = idx, score
	})

	// L1 column normalisation over the represented entries. The sums
	// accumulate serially in ascending row order — each worker writing
	// into a shared vector would make the addition order (and thus the
	// float64 result) schedule-dependent.
	colSum := make([]float64, s.cols)
	for i := 0; i < next.rows; i++ {
		sc := next.score[i]
		for c, j := range next.idx[i] {
			colSum[j] += sc[c]
		}
	}
	par.Tasks(workers, next.rows, func(i int) {
		sc := next.score[i]
		for c, j := range next.idx[i] {
			if v := colSum[j]; v > 0 {
				sc[c] /= v
			}
		}
	})
	return next
}

// updateRow computes row i's next iterate: score'(j) = M(i,j)·U(j) + ε
// for token-matched j, where U = (A₁MA₂)[i,·] restricted to the
// represented entries, then prunes to the candidate budget and
// L1-normalises. A nil return means the row received no signal and the
// caller keeps the previous iterate.
func (sc *scratch) updateRow(i int, s *state, gs, gt *graph.Graph, eps float64, tokenK int) ([]int32, []float64) {
	sc.gen++
	gen := sc.gen

	// Agreement mass per intermediate target node: accV[v] = Σ_{u∈N₁(i)} M(u,v).
	// Neighbor lists are sorted ascending and each (u,v) contributes
	// once, so the accumulation order is independent of row layout.
	vm := sc.vm[:0]
	for _, u := range gs.Neighbors(i) {
		ridx, rsc := s.idx[u], s.score[u]
		for c, v := range ridx {
			if sc.stampV[v] != gen {
				sc.stampV[v] = gen
				sc.accV[v] = 0
				vm = append(vm, v)
			}
			sc.accV[v] += rsc[c]
		}
	}
	sc.vm = vm
	// Second hop in ascending v so U's accumulation order never depends
	// on which neighbor row introduced a column.
	sort.Slice(vm, func(a, b int) bool { return vm[a] < vm[b] })

	um := sc.um[:0]
	for _, v := range vm {
		a := sc.accV[v]
		for _, j := range gt.Neighbors(int(v)) {
			if sc.stampU[j] != gen {
				sc.stampU[j] = gen
				sc.accU[j] = 0
				um = append(um, j)
			}
			sc.accU[j] += a
		}
	}
	sc.um = um

	// Token matches: the tokenK strongest entries of U (ties to the
	// lower column) receive the additive ε, which is what lets a column
	// outside the current support become a candidate.
	tm := um
	if tokenK < len(um) {
		ord := append(sc.ord[:0], um...)
		sort.Slice(ord, func(a, b int) bool {
			ja, jb := ord[a], ord[b]
			if sc.accU[ja] != sc.accU[jb] {
				return sc.accU[ja] > sc.accU[jb]
			}
			return ja < jb
		})
		sc.ord = ord
		tm = ord[:tokenK]
	}
	for _, j := range tm {
		sc.token[j] = gen
	}

	// New support: the old row plus the token matches, scored in
	// ascending column order.
	rm := sc.rm[:0]
	osc := s.score[i]
	for c, j := range s.idx[i] {
		sc.stampR[j] = gen
		sc.val[j] = osc[c]
		rm = append(rm, j)
	}
	for _, j := range tm {
		if sc.stampR[j] != gen {
			sc.stampR[j] = gen
			sc.val[j] = 0
			rm = append(rm, j)
		}
	}
	sc.rm = rm
	if len(rm) == 0 {
		return nil, nil
	}
	sort.Slice(rm, func(a, b int) bool { return rm[a] < rm[b] })

	idx := make([]int32, len(rm))
	copy(idx, rm)
	score := make([]float64, len(rm))
	for c, j := range idx {
		var u float64
		if sc.stampU[j] == gen {
			u = sc.accU[j]
		}
		v := sc.val[j] * u
		if sc.token[j] == gen {
			v += eps
		}
		score[c] = v
	}

	align.SortRowDesc(idx, score)
	if len(idx) > s.k {
		idx, score = idx[:s.k], score[:s.k]
	}
	var sum float64
	for _, v := range score {
		sum += v
	}
	if sum <= 0 {
		return nil, nil
	}
	inv := 1 / sum
	for c := range score {
		score[c] *= inv
	}
	return idx, score
}
