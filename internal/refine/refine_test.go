package refine

import (
	"math/rand"
	"testing"

	"github.com/htc-align/htc/internal/align"
	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/graph"
	"github.com/htc-align/htc/internal/metrics"
)

// testPair builds a source graph and an isomorphic target hiding the
// permutation perm (target node perm[i] plays source node i).
func testPair(n int, p float64, seed int64) (*graph.Graph, *graph.Graph, []int) {
	rng := rand.New(rand.NewSource(seed))
	gs := graph.ErdosRenyi(n, p, rng)
	perm := rng.Perm(n)
	gt := graph.Relabel(gs, perm)
	return gs, gt, perm
}

// noisySim scores the true pair highest in most rows but corrupts a
// fraction of rows so their argmax points at a wrong target — the shape
// of an imperfect aligner's output that refinement should repair.
func noisySim(n int, perm []int, corrupt float64, seed int64) *dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := dense.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, 0.1*rng.Float64())
		}
		m.Set(i, perm[i], 1+0.1*rng.Float64())
		if rng.Float64() < corrupt {
			m.Set(i, rng.Intn(n), 2)
		}
	}
	return m
}

// fullTopK wraps the same scores as a candidate-list Sim with k = n —
// the configuration under which the sparse path must be bit-identical
// to the dense one.
func fullTopK(m *dense.Matrix) *align.TopKSim {
	c := &align.Candidates{K: m.Cols, Idx: make([][]int32, m.Rows), Score: make([][]float64, m.Rows)}
	for i := 0; i < m.Rows; i++ {
		idx := make([]int32, m.Cols)
		score := make([]float64, m.Cols)
		for j := 0; j < m.Cols; j++ {
			idx[j] = int32(j)
			score[j] = m.At(i, j)
		}
		align.SortRowDesc(idx, score)
		c.Idx[i] = idx
		c.Score[i] = score
	}
	return &align.TopKSim{C: c, Cols: m.Cols}
}

func TestDenseAndFullCandidateListAgreeBitwise(t *testing.T) {
	gs, gt, perm := testPair(40, 0.12, 3)
	m := noisySim(40, perm, 0.3, 4)
	// Mix in negative scores to exercise the non-negativity shift.
	for i := range m.Data {
		m.Data[i] -= 0.05
	}

	dres, err := Refine(align.DenseSim{M: m.Clone()}, gs, gt, Options{Iters: 4})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := Refine(fullTopK(m), gs, gt, Options{Iters: 4})
	if err != nil {
		t.Fatal(err)
	}
	dm := dres.Sim.(align.DenseSim).M
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			sv, ok := sres.Sim.At(i, j)
			if !ok {
				t.Fatalf("pair (%d,%d) missing from the full candidate list after refinement", i, j)
			}
			if sv != dm.At(i, j) {
				t.Fatalf("refined score (%d,%d): dense %v, candidate list %v", i, j, dm.At(i, j), sv)
			}
		}
	}
	for it := range dres.MNC {
		if dres.MNC[it] != sres.MNC[it] {
			t.Fatalf("MNC[%d]: dense %v, candidate list %v", it, dres.MNC[it], sres.MNC[it])
		}
	}
}

func TestZeroItersReturnsInputUnchanged(t *testing.T) {
	gs, gt, perm := testPair(30, 0.15, 5)
	m := noisySim(30, perm, 0.2, 6)
	in := align.DenseSim{M: m}
	before := append([]float64(nil), m.Data...)

	res, err := Refine(in, gs, gt, Options{Iters: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim != align.Sim(in) {
		t.Error("0 iterations must return the input Sim itself")
	}
	for i, v := range m.Data {
		if v != before[i] {
			t.Fatalf("0 iterations mutated the input at flat index %d", i)
		}
	}
	if len(res.MNC) != 1 {
		t.Fatalf("0 iterations should report only the initial MNC, got %v", res.MNC)
	}
}

// TestMNCNonDecreasing checks the RefiNA objective climbs across
// iterations. Monotonicity is an empirical property, not a theorem —
// the update is a heuristic ascent — so a decrease of up to 1e-9
// (float renormalisation jitter) is tolerated; real regressions show up
// orders of magnitude larger.
func TestMNCNonDecreasing(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		gs, gt, perm := testPair(60, 0.1, seed)
		m := noisySim(60, perm, 0.35, seed+10)
		res, err := Refine(align.DenseSim{M: m}, gs, gt, Options{Iters: 6})
		if err != nil {
			t.Fatal(err)
		}
		for it := 1; it < len(res.MNC); it++ {
			if res.MNC[it] < res.MNC[it-1]-1e-9 {
				t.Errorf("seed %d: MNC decreased at iteration %d: %v", seed, it, res.MNC)
			}
		}
		if last := res.MNC[len(res.MNC)-1]; last <= res.MNC[0] {
			t.Errorf("seed %d: refinement never improved MNC: %v", seed, res.MNC)
		}
	}
}

func TestRefineImprovesHitsAt1(t *testing.T) {
	gs, gt, perm := testPair(80, 0.1, 7)
	m := noisySim(80, perm, 0.3, 8)
	truth := metrics.FromPerm(perm)

	before := metrics.EvaluateSim(align.DenseSim{M: m}, truth, 1)
	res, err := Refine(align.DenseSim{M: m}, gs, gt, Options{Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	after := metrics.EvaluateSim(res.Sim, truth, 1)
	if after.PrecisionAt[1] <= before.PrecisionAt[1] {
		t.Errorf("Hits@1 did not improve: %.4f -> %.4f", before.PrecisionAt[1], after.PrecisionAt[1])
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	gs, gt, perm := testPair(50, 0.12, 9)
	m := noisySim(50, perm, 0.3, 10)
	base, err := Refine(fullTopK(m), gs, gt, Options{Iters: 3, TokenK: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 7} {
		got, err := Refine(fullTopK(m), gs, gt, Options{Iters: 3, TokenK: 8, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		bs := base.Sim.(*align.TopKSim)
		gsim := got.Sim.(*align.TopKSim)
		for i := range bs.C.Idx {
			if len(bs.C.Idx[i]) != len(gsim.C.Idx[i]) {
				t.Fatalf("workers=%d: row %d length differs", w, i)
			}
			for c := range bs.C.Idx[i] {
				if bs.C.Idx[i][c] != gsim.C.Idx[i][c] || bs.C.Score[i][c] != gsim.C.Score[i][c] {
					t.Fatalf("workers=%d: row %d entry %d differs", w, i, c)
				}
			}
		}
	}
}

// TestTokenBudgetGrowsSparseSupport verifies the mechanism that makes
// sparse refinement more than a reweighting: a one-hot matching (k-
// budgeted) gains neighbor-supported candidates through token matches.
func TestTokenBudgetGrowsSparseSupport(t *testing.T) {
	gs, gt, perm := testPair(40, 0.15, 11)
	match := make([]int, 40)
	copy(match, perm)
	// Corrupt a quarter of the matching.
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 10; i++ {
		match[rng.Intn(40)] = rng.Intn(40)
	}
	sim, err := FromMatching(match, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Refine(sim, gs, gt, Options{Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	refined := res.Sim.(*align.TopKSim)
	grew := false
	for i := range refined.C.Idx {
		if len(refined.C.Idx[i]) > 1 {
			grew = true
		}
		if len(refined.C.Idx[i]) > 8 {
			t.Fatalf("row %d exceeded the candidate budget: %d entries", i, len(refined.C.Idx[i]))
		}
	}
	if !grew {
		t.Error("token matches never grew any row beyond its one-hot support")
	}
	if res.MNC[len(res.MNC)-1] <= res.MNC[0] {
		t.Errorf("refining the corrupted matching did not raise MNC: %v", res.MNC)
	}
}

func TestValidation(t *testing.T) {
	gs, gt, perm := testPair(20, 0.2, 13)
	m := noisySim(20, perm, 0, 14)
	sim := align.DenseSim{M: m}
	cases := []struct {
		name string
		sim  align.Sim
		opts Options
	}{
		{"nil sim", nil, Options{Iters: 1}},
		{"negative iters", sim, Options{Iters: -1}},
		{"negative token budget", sim, Options{Iters: 1, TokenK: -2}},
		{"shape mismatch", align.DenseSim{M: dense.New(5, 20)}, Options{Iters: 1}},
	}
	for _, tc := range cases {
		if _, err := Refine(tc.sim, gs, gt, tc.opts); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
	if _, err := FromMatching([]int{0, 25}, 20, 4); err == nil {
		t.Error("FromMatching accepted an out-of-range target")
	}
}

func TestMNCPerfectAlignmentIsOne(t *testing.T) {
	gs, gt, perm := testPair(30, 0.2, 15)
	if got := MNC(perm, gs, gt, 1); got != 1 {
		t.Errorf("MNC of the true isomorphism = %v, want 1", got)
	}
	unmatched := make([]int, 30)
	for i := range unmatched {
		unmatched[i] = -1
	}
	if got := MNC(unmatched, gs, gt, 1); got != 0 {
		t.Errorf("MNC of an empty matching = %v, want 0", got)
	}
}
