package align

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/htc-align/htc/internal/ann"
	"github.com/htc-align/htc/internal/dense"
)

// embeddingPair fabricates embedding-like inputs: a random source matrix
// and a target that is the same rows under mild gaussian noise — the
// shape FineTune's candidate generators actually see, where every row
// has a clearly most-similar counterpart plus a tail of moderately
// similar ones.
func embeddingPair(ns, nt, d int, seed int64) (*dense.Matrix, *dense.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	hs := dense.New(ns, d)
	for i := range hs.Data {
		hs.Data[i] = rng.NormFloat64()
	}
	ht := dense.New(nt, d)
	for i := 0; i < nt; i++ {
		src := hs.Row(i % ns)
		dst := ht.Row(i)
		for j := range dst {
			dst[j] = src[j] + 0.25*rng.NormFloat64()
		}
	}
	return hs, ht
}

// TestANNExactnessEscapeHatch: with Probes ≥ 2^Bits the LSH generator is
// bit-identical to the blocked exact scan, across sizes and seeds.
func TestANNExactnessEscapeHatch(t *testing.T) {
	for _, n := range []int{1, 17, 64, 150} {
		for seed := int64(1); seed <= 3; seed++ {
			hs, ht := embeddingPair(n, n, 6, seed)
			k := 12
			if k > n {
				k = n
			}
			exact := TopKCandidates(hs, ht, k)
			hatch := ANNCandidates(hs, ht, k, ann.Params{Bits: 4, Probes: 1 << 4, Seed: seed}, 2)
			if !reflect.DeepEqual(exact, hatch) {
				t.Fatalf("n=%d seed=%d: full-probe ANN deviates from exact top-k", n, seed)
			}
		}
	}
}

// TestANNRecallProperty sweeps graph sizes and seeds and asserts the
// approximate candidate lists recover ≥ 0.95 of the exact top-k pairs —
// the measured recall-vs-dense metric of the approximate backend, on
// auto-resolved parameters exactly as the pipeline would run them.
func TestANNRecallProperty(t *testing.T) {
	worst := 1.0
	for _, tc := range []struct{ ns, nt, seeds int }{
		// ≤ 1024 rows the auto probe budget covers every bucket (exact);
		// the larger sizes probe 88% and 50% of the buckets respectively.
		{120, 120, 4}, {300, 280, 4}, {600, 600, 4}, {900, 1000, 4},
		{1600, 1500, 2}, {2600, 2800, 2},
	} {
		for seed := int64(1); seed <= int64(tc.seeds); seed++ {
			hs, ht := embeddingPair(tc.ns, tc.nt, 8, seed)
			k := 32
			bits := ann.AutoBits(tc.nt)
			p := ann.Params{Bits: bits, Probes: ann.AutoProbes(bits), Seed: seed}
			exact := TopKCandidates(hs, ht, k)
			approx := ANNCandidates(hs, ht, k, p, 0)
			rec := CandidateRecall(approx, exact)
			if rec < worst {
				worst = rec
			}
			if rec < 0.95 {
				t.Errorf("ns=%d nt=%d seed=%d bits=%d probes=%d: recall %.4f < 0.95",
					tc.ns, tc.nt, seed, p.Bits, p.Probes, rec)
			}
		}
	}
	t.Logf("worst-case ANN candidate recall vs exact top-k: %.4f", worst)
}

// TestANNRecallApproximatePath pins the genuinely approximate regime —
// probe counts well below the bucket count — where recall comes from the
// margin-ordered multi-probe sequence rather than exhaustive coverage.
func TestANNRecallApproximatePath(t *testing.T) {
	hs, ht := embeddingPair(5000, 5000, 8, 3)
	k := 32
	p := ann.Params{Bits: 9, Probes: 144, Seed: 3} // 144 of 512 buckets
	exact := TopKCandidates(hs, ht, k)
	approx := ANNCandidates(hs, ht, k, p, 2)
	rec := CandidateRecall(approx, exact)
	t.Logf("approximate-path recall (144/512 buckets probed): %.4f", rec)
	if rec < 0.95 {
		t.Errorf("recall %.4f < 0.95 on the approximate path", rec)
	}
	if p.Exact() {
		t.Fatal("test misconfigured: probes cover every bucket")
	}
}

// skewEmbeddings fabricates GCN-collapse-shaped embeddings: every row is
// ±√(1−ρ²)·v for one shared dominant direction v plus a ρ-scaled unit
// residual from a rank-r subspace orthogonal to v. Raw SRP codes of such
// rows pile into a few hot buckets; the ranking signal lives in the
// residuals. Source and target share v and the subspace, like the two
// sides of one fine-tune iteration.
func skewEmbeddings(ns, nt, d, r int, rho float64, seed int64) (*dense.Matrix, *dense.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	basis := make([][]float64, r+1)
	for b := range basis {
		u := make([]float64, d)
		for j := range u {
			u[j] = rng.NormFloat64()
		}
		for _, prev := range basis[:b] {
			var p float64
			for j := range u {
				p += u[j] * prev[j]
			}
			for j := range u {
				u[j] -= p * prev[j]
			}
		}
		var nrm float64
		for _, x := range u {
			nrm += x * x
		}
		nrm = 1 / math.Sqrt(nrm)
		for j := range u {
			u[j] *= nrm
		}
		basis[b] = u
	}
	v := basis[0]
	a := math.Sqrt(1 - rho*rho)
	w := make([]float64, r)
	gen := func(rows int) *dense.Matrix {
		m := dense.New(rows, d)
		for i := 0; i < rows; i++ {
			c := a
			if rng.Intn(2) == 1 {
				c = -a
			}
			var nw float64
			for l := range w {
				w[l] = rng.NormFloat64()
				nw += w[l] * w[l]
			}
			nw = 1 / math.Sqrt(nw)
			row := m.Row(i)
			for j := range row {
				row[j] = c * v[j]
				for l, u := range basis[1:] {
					row[j] += rho * w[l] * nw * u[j]
				}
			}
		}
		return m
	}
	return gen(nt), gen(ns)
}

// TestANNSkewBalancedPoolAndRecall is the align-level skew property,
// swept across sizes and seeds: on collapse-skewed embeddings the
// balanced index gathers ≥ 5× fewer pool rows per query than the
// unbalanced index at equal bits/probes, while CandidateRecall against
// the exact top-k stays ≥ 0.95.
func TestANNSkewBalancedPoolAndRecall(t *testing.T) {
	for _, tc := range []struct {
		n    int
		seed int64
	}{
		{5000, 63}, {6000, 64},
	} {
		hs, ht := skewEmbeddings(tc.n, tc.n, 16, 4, 0.2, tc.seed)
		k := 16
		p := ann.Params{Bits: 11, Probes: 48, Seed: 23}
		exact := TopKCandidates(hs, ht, k)
		approx, stBal := ANNCandidatesStats(hs, ht, k, p, 0)
		pu := p
		pu.Unbalanced = true
		_, stUnb := ANNCandidatesStats(hs, ht, k, pu, 0)
		mb, mu := stBal.PoolRowsMean(), stUnb.PoolRowsMean()
		if mb <= 0 || mu <= 0 {
			t.Fatalf("n=%d: pool stats missing (balanced %.1f, unbalanced %.1f)", tc.n, mb, mu)
		}
		if mu < 5*mb {
			t.Errorf("n=%d seed=%d: unbalanced mean pool %.1f not >= 5x balanced %.1f",
				tc.n, tc.seed, mu, mb)
		}
		if rec := CandidateRecall(approx, exact); rec < 0.95 {
			t.Errorf("n=%d seed=%d: balanced recall on skewed embeddings %.4f < 0.95",
				tc.n, tc.seed, rec)
		}
	}
}

// TestCandidateRecall pins the metric itself.
func TestCandidateRecall(t *testing.T) {
	want := &Candidates{K: 2, Idx: [][]int32{{1, 2}, {3, 4}}, Score: [][]float64{{1, 1}, {1, 1}}}
	got := &Candidates{K: 2, Idx: [][]int32{{2, 9}, {3, 4}}, Score: [][]float64{{1, 1}, {1, 1}}}
	if rec := CandidateRecall(got, want); rec != 0.75 {
		t.Fatalf("recall = %v, want 0.75", rec)
	}
	if rec := CandidateRecall(want, want); rec != 1 {
		t.Fatalf("self recall = %v, want 1", rec)
	}
	empty := &Candidates{}
	if rec := CandidateRecall(empty, empty); rec != 1 {
		t.Fatalf("empty recall = %v, want 1", rec)
	}
}

// TestFineTuneANNExactMatchesTopK: the full fine-tuning loop under a
// full-probe ANN generator reproduces the exact top-k loop bit for bit —
// Sim contents, trusted-pair counts, iteration counts.
func TestFineTuneANNExactMatchesTopK(t *testing.T) {
	gs, gt, _ := buildAlignedPair(30, 21)
	enc, src, tgt := trainEncoder(gs, gt, 2, 22)

	base := FineTuneConfig{M: 5, Beta: 1.1, MaxIters: 4, TopK: 10, Workers: 2}
	exact := FineTune(enc, src.Laps[0], tgt.Laps[0], src.X, tgt.X, base)

	annCfg := base
	annCfg.Ann = ann.Params{Bits: 4, Probes: 1 << 4, Seed: 1}
	hatch := FineTune(enc, src.Laps[0], tgt.Laps[0], src.X, tgt.X, annCfg)

	if exact.Trusted != hatch.Trusted || exact.Iters != hatch.Iters {
		t.Fatalf("loop outcomes differ: trusted %d vs %d, iters %d vs %d",
			exact.Trusted, hatch.Trusted, exact.Iters, hatch.Iters)
	}
	es, hs := exact.Sim.(*TopKSim), hatch.Sim.(*TopKSim)
	if !reflect.DeepEqual(es.C, hs.C) || es.Cols != hs.Cols {
		t.Fatal("full-probe ANN fine-tuning deviates from the exact top-k loop")
	}
}
