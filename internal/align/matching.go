package align

import (
	"math"
	"sort"

	"github.com/htc-align/htc/internal/dense"
)

// GreedyMatch extracts a one-to-one matching from an alignment matrix by
// repeatedly taking the highest-scoring unmatched pair. It returns
// match[s] = t (or −1 for unmatched source nodes). The result is the
// standard greedy 1/2-approximation of the maximum-weight matching and is
// the cheap way to turn HTC's score matrix into a hard assignment.
// Ties resolve deterministically: higher score first, then lower source,
// then lower target.
func GreedyMatch(m *dense.Matrix) []int { return greedyDense(m) }

// GreedyMatchSim is the backend-generic greedy matcher: the dense path
// sorts packed cell indices (8 bytes per pair instead of a 24-byte entry
// struct), the top-k path sorts only the O(n·k) candidate pairs. Both use
// the same (score desc, source asc, target asc) order, so with k ≥ nt the
// two backends produce identical matchings.
func GreedyMatchSim(s Sim) []int {
	if d, ok := s.(DenseSim); ok {
		return greedyDense(d.M)
	}
	return greedyCandidates(s)
}

// greedyAssign is the shared greedy-assignment core: walk n pairs in
// descending-preference order (pair(i) yields the i-th best) and take
// every pair whose source and target are both still free. Exactly one
// copy of the skip/assign/termination logic exists, so the two backends'
// matchings cannot drift apart.
func greedyAssign(rows, cols, n int, pair func(i int) (s, t int)) []int {
	match := make([]int, rows)
	for i := range match {
		match[i] = -1
	}
	usedT := make([]bool, cols)
	remaining := rows
	if cols < remaining {
		remaining = cols
	}
	for i := 0; i < n && remaining > 0; i++ {
		s, t := pair(i)
		if match[s] >= 0 || usedT[t] {
			continue
		}
		match[s] = t
		usedT[t] = true
		remaining--
	}
	return match
}

// greedyDense is the allocation-lean dense greedy matcher: one packed
// int64 key (i·cols + j) per cell, sorted by score with ties broken by
// the key itself (which is exactly (i asc, j asc)).
func greedyDense(m *dense.Matrix) []int {
	if m.Rows == 0 || m.Cols == 0 {
		return greedyAssign(m.Rows, m.Cols, 0, nil)
	}
	keys := make([]int64, m.Rows*m.Cols)
	for i := range keys {
		keys[i] = int64(i)
	}
	data := m.Data
	sort.Slice(keys, func(a, b int) bool {
		if data[keys[a]] != data[keys[b]] {
			return data[keys[a]] > data[keys[b]]
		}
		return keys[a] < keys[b]
	})
	cols := int64(m.Cols)
	return greedyAssign(m.Rows, m.Cols, len(keys), func(i int) (int, int) {
		return int(keys[i] / cols), int(keys[i] % cols)
	})
}

// greedyCandidates runs the greedy matcher over a sparse representation:
// only represented pairs can match, so the sort handles O(n·k) entries
// instead of O(n²). Source rows whose candidates are all taken stay
// unmatched (−1), the honest answer under a candidate restriction.
func greedyCandidates(s Sim) []int {
	rows, cols := s.Dims()
	type entry struct {
		s, t  int32
		score float64
	}
	var entries []entry
	for i := 0; i < rows; i++ {
		s.Scan(i, func(j int, score float64) {
			entries = append(entries, entry{int32(i), int32(j), score})
		})
	}
	sort.Slice(entries, func(a, b int) bool {
		ea, eb := entries[a], entries[b]
		if ea.score != eb.score {
			return ea.score > eb.score
		}
		if ea.s != eb.s {
			return ea.s < eb.s
		}
		return ea.t < eb.t
	})
	return greedyAssign(rows, cols, len(entries), func(i int) (int, int) {
		return int(entries[i].s), int(entries[i].t)
	})
}

// HungarianMatch computes a maximum-weight one-to-one assignment from an
// alignment matrix with the Hungarian algorithm (Kuhn–Munkres, O(n³) in
// the Jonker–Volgenant potentials formulation). Rectangular matrices are
// handled by implicit zero padding; unmatched source nodes (when
// rows > cols) get −1. Scores may be negative.
func HungarianMatch(m *dense.Matrix) []int {
	rows, cols := m.Rows, m.Cols
	if rows == 0 || cols == 0 {
		out := make([]int, rows)
		for i := range out {
			out[i] = -1
		}
		return out
	}
	// The classic JV formulation solves min-cost on a rows ≤ cols matrix;
	// negate for max-weight and transpose when rows > cols.
	transposed := rows > cols
	a := m
	if transposed {
		a = m.T()
		rows, cols = cols, rows
	}

	// 1-indexed potentials u (rows), v (cols) and column matches p.
	u := make([]float64, rows+1)
	v := make([]float64, cols+1)
	p := make([]int, cols+1)   // p[j] = row matched to column j (0 = none)
	way := make([]int, cols+1) // way[j] = previous column on the augmenting path
	for i := 1; i <= rows; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, cols+1)
		used := make([]bool, cols+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= cols; j++ {
				if used[j] {
					continue
				}
				// Costs are negated scores.
				cur := -a.At(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= cols; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	if !transposed {
		out := make([]int, rows)
		for i := range out {
			out[i] = -1
		}
		for j := 1; j <= cols; j++ {
			if p[j] != 0 {
				out[p[j]-1] = j - 1
			}
		}
		return out
	}
	// The transposed solve matched every target column; invert it.
	out := make([]int, m.Rows)
	for i := range out {
		out[i] = -1
	}
	for j := 1; j <= cols; j++ {
		if p[j] != 0 {
			// In transposed space: row p[j] is a target node, column j a
			// source node.
			out[j-1] = p[j] - 1
		}
	}
	return out
}

// MatchScore sums the matrix entries selected by a matching, the objective
// both matchers maximise.
func MatchScore(m *dense.Matrix, match []int) float64 {
	var s float64
	for i, j := range match {
		if j >= 0 {
			s += m.At(i, j)
		}
	}
	return s
}

// MatchScoreSim is MatchScore over any similarity representation. Matched
// pairs outside a sparse representation contribute nothing (a candidate
// matcher never selects them, but a caller may score a foreign matching).
func MatchScoreSim(sim Sim, match []int) float64 {
	var s float64
	for i, j := range match {
		if j < 0 {
			continue
		}
		if v, ok := sim.At(i, j); ok {
			s += v
		}
	}
	return s
}
