package align

import (
	"math"
	"sort"

	"github.com/htc-align/htc/internal/dense"
)

// GreedyMatch extracts a one-to-one matching from an alignment matrix by
// repeatedly taking the highest-scoring unmatched pair. It returns
// match[s] = t (or −1 for unmatched source nodes). The result is the
// standard greedy 1/2-approximation of the maximum-weight matching and is
// the cheap way to turn HTC's score matrix into a hard assignment.
func GreedyMatch(m *dense.Matrix) []int {
	type entry struct {
		s, t  int
		score float64
	}
	entries := make([]entry, 0, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			entries = append(entries, entry{i, j, v})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].score > entries[j].score })
	match := make([]int, m.Rows)
	for i := range match {
		match[i] = -1
	}
	usedT := make([]bool, m.Cols)
	remaining := m.Rows
	if m.Cols < remaining {
		remaining = m.Cols
	}
	for _, e := range entries {
		if remaining == 0 {
			break
		}
		if match[e.s] >= 0 || usedT[e.t] {
			continue
		}
		match[e.s] = e.t
		usedT[e.t] = true
		remaining--
	}
	return match
}

// HungarianMatch computes a maximum-weight one-to-one assignment from an
// alignment matrix with the Hungarian algorithm (Kuhn–Munkres, O(n³) in
// the Jonker–Volgenant potentials formulation). Rectangular matrices are
// handled by implicit zero padding; unmatched source nodes (when
// rows > cols) get −1. Scores may be negative.
func HungarianMatch(m *dense.Matrix) []int {
	rows, cols := m.Rows, m.Cols
	if rows == 0 || cols == 0 {
		out := make([]int, rows)
		for i := range out {
			out[i] = -1
		}
		return out
	}
	// The classic JV formulation solves min-cost on a rows ≤ cols matrix;
	// negate for max-weight and transpose when rows > cols.
	transposed := rows > cols
	a := m
	if transposed {
		a = m.T()
		rows, cols = cols, rows
	}

	// 1-indexed potentials u (rows), v (cols) and column matches p.
	u := make([]float64, rows+1)
	v := make([]float64, cols+1)
	p := make([]int, cols+1)   // p[j] = row matched to column j (0 = none)
	way := make([]int, cols+1) // way[j] = previous column on the augmenting path
	for i := 1; i <= rows; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, cols+1)
		used := make([]bool, cols+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= cols; j++ {
				if used[j] {
					continue
				}
				// Costs are negated scores.
				cur := -a.At(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= cols; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	if !transposed {
		out := make([]int, rows)
		for i := range out {
			out[i] = -1
		}
		for j := 1; j <= cols; j++ {
			if p[j] != 0 {
				out[p[j]-1] = j - 1
			}
		}
		return out
	}
	// The transposed solve matched every target column; invert it.
	out := make([]int, m.Rows)
	for i := range out {
		out[i] = -1
	}
	for j := 1; j <= cols; j++ {
		if p[j] != 0 {
			// In transposed space: row p[j] is a target node, column j a
			// source node.
			out[j-1] = p[j] - 1
		}
	}
	return out
}

// MatchScore sums the matrix entries selected by a matching, the objective
// both matchers maximise.
func MatchScore(m *dense.Matrix, match []int) float64 {
	var s float64
	for i, j := range match {
		if j >= 0 {
			s += m.At(i, j)
		}
	}
	return s
}
