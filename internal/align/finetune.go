package align

import (
	"context"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/nn"
	"github.com/htc-align/htc/internal/sparse"
)

// FineTuneConfig controls the trusted-pair based refinement loop.
type FineTuneConfig struct {
	// M is the neighbourhood size of the hubness estimate (paper: 20).
	M int
	// Beta is the reinforcement rate β > 1 applied to the aggregation
	// coefficients of trusted nodes (paper: 1.1).
	Beta float64
	// MaxIters caps the refinement loop as a safety net; Algorithm 2's
	// natural termination (no growth in trusted pairs) usually fires
	// first. Zero means the default of 30.
	MaxIters int
	// KnownPairs are anchor links known a priori. Proposition 2 covers
	// "trusted (or known) anchor nodes" uniformly: known anchors are
	// reinforced before the first iteration, seeding the discovery of
	// potential anchors around them (the semi-supervised HTC-S mode).
	KnownPairs [][2]int
	// Workers bounds the goroutine fan-out of the embedding and
	// similarity kernels inside this orbit's loop (≤ 0 = GOMAXPROCS).
	// When the pipeline fine-tunes many orbits concurrently it hands each
	// orbit a slice of the budget; results are identical for every count.
	Workers int
	// KeepEmbeddings snapshots the best iteration's Hs/Ht into the
	// result. Off by default: the copies are two n×d matrices per
	// improving iteration, and most callers only want M.
	KeepEmbeddings bool
	// Ctx, when non-nil, is checked before each refinement iteration;
	// once cancelled the loop stops early and returns the best result
	// found so far (possibly with a nil M when cancelled immediately).
	Ctx context.Context
	// OnIter, when non-nil, observes each refinement iteration as it
	// starts (1-based). The pipeline's progress reporting hangs off it;
	// it never influences the loop.
	OnIter func(iter int)
}

func (c FineTuneConfig) withDefaults() FineTuneConfig {
	if c.M <= 0 {
		c.M = 20
	}
	if c.Beta <= 1 {
		c.Beta = 1.1
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 30
	}
	return c
}

// FineTuneResult reports the outcome of one orbit's refinement.
type FineTuneResult struct {
	// M is the alignment matrix of the best iteration (the one that
	// identified the most trusted pairs).
	M *dense.Matrix
	// Trusted is that maximal trusted-pair count Tmax.
	Trusted int
	// Iters is the number of loop iterations executed.
	Iters int
	// Hs and Ht are the source/target embeddings of the best iteration,
	// used by downstream analyses (the paper's Fig. 11 visualisation).
	// They are populated only when FineTuneConfig.KeepEmbeddings is set.
	Hs, Ht *dense.Matrix
}

// FineTune runs Algorithm 2 for a single orbit: compute LISI, identify
// trusted pairs, reinforce their aggregation coefficients (Eq. 13), re-embed
// through the reinforced Laplacians (Eq. 14), and repeat while the number
// of trusted pairs keeps growing. The encoder weights are never modified —
// only the aggregation coefficients are tuned.
func FineTune(enc *nn.Encoder, lapS, lapT *sparse.CSR, xs, xt *dense.Matrix, cfg FineTuneConfig) *FineTuneResult {
	cfg = cfg.withDefaults()
	w := cfg.Workers
	rs := ones(lapS.Rows)
	rt := ones(lapT.Rows)
	for _, p := range cfg.KnownPairs {
		if p[0] >= 0 && p[0] < lapS.Rows && p[1] >= 0 && p[1] < lapT.Rows {
			rs[p[0]] *= cfg.Beta
			rt[p[1]] *= cfg.Beta
		}
	}

	// The loop's whole working set is allocated once and reused across
	// iterations: the reinforced Laplacians share the original sparsity
	// pattern (DiagScaleInto rescales values in place, and the clones are
	// only made once reinforcement actually changes rs/rt — single-pass
	// callers embed straight through the originals), the embeddings live
	// in two forward caches, and the ns×nt similarity matrices sit in the
	// simScratch.
	var scaledS, scaledT *sparse.CSR
	var cacheS, cacheT nn.Cache
	sim := &simScratch{}
	reinforced := len(cfg.KnownPairs) > 0
	embed := func() (hs, ht *dense.Matrix) {
		if reinforced {
			if scaledS == nil {
				scaledS, scaledT = lapS.Clone(), lapT.Clone()
			}
			lapS.DiagScaleInto(scaledS, rs, rs)
			lapT.DiagScaleInto(scaledT, rt, rt)
			enc.ForwardReuse(&cacheS, scaledS, xs, w)
			enc.ForwardReuse(&cacheT, scaledT, xt, w)
		} else {
			enc.ForwardReuse(&cacheS, lapS, xs, w)
			enc.ForwardReuse(&cacheT, lapT, xt, w)
		}
		return cacheS.Output(), cacheT.Output()
	}
	hs, ht := embed()

	res := &FineTuneResult{Trusted: -1}
	for iter := 0; iter < cfg.MaxIters; iter++ {
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			break
		}
		res.Iters = iter + 1
		if cfg.OnIter != nil {
			cfg.OnIter(iter + 1)
		}
		m := sim.lisiInto(sim.corrInto(hs, ht, w), cfg.M, w)
		pairs := TrustedPairs(m)
		if len(pairs) <= res.Trusted {
			break
		}
		// Snapshot the new best iteration: the loop keeps overwriting its
		// buffers, so the result owns copies.
		res.M = dense.Ensure(res.M, m.Rows, m.Cols)
		res.M.CopyFrom(m)
		res.Trusted = len(pairs)
		if cfg.KeepEmbeddings {
			res.Hs = dense.Ensure(res.Hs, hs.Rows, hs.Cols)
			res.Hs.CopyFrom(hs)
			res.Ht = dense.Ensure(res.Ht, ht.Rows, ht.Cols)
			res.Ht.CopyFrom(ht)
		}
		for _, p := range pairs {
			rs[p[0]] *= cfg.Beta
			rt[p[1]] *= cfg.Beta
		}
		if len(pairs) > 0 {
			reinforced = true
		}
		hs, ht = embed()
	}
	return res
}

// ones returns an all-one reinforcement vector (Algorithm 2, line 1).
func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Integrate combines per-orbit alignment matrices with the posterior
// importance weights of Eq. 15: γk = Tk / Σ Ti, where Tk is the trusted-
// pair count of orbit k. It returns the final alignment matrix and the
// weights. When no orbit found any trusted pair the weights fall back to
// uniform.
func Integrate(ms []*dense.Matrix, trusted []int) (*dense.Matrix, []float64) {
	if len(ms) == 0 || len(ms) != len(trusted) {
		panic("align: Integrate needs one trusted count per matrix")
	}
	var total int
	for _, t := range trusted {
		total += t
	}
	gammas := make([]float64, len(ms))
	for k := range gammas {
		if total > 0 {
			gammas[k] = float64(trusted[k]) / float64(total)
		} else {
			gammas[k] = 1 / float64(len(ms))
		}
	}
	out := dense.New(ms[0].Rows, ms[0].Cols)
	for k, m := range ms {
		out.AddScaled(m, gammas[k])
	}
	return out, gammas
}
