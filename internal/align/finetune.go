package align

import (
	"context"

	"github.com/htc-align/htc/internal/ann"
	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/nn"
	"github.com/htc-align/htc/internal/sparse"
)

// FineTuneConfig controls the trusted-pair based refinement loop.
type FineTuneConfig struct {
	// M is the neighbourhood size of the hubness estimate (paper: 20).
	M int
	// Beta is the reinforcement rate β > 1 applied to the aggregation
	// coefficients of trusted nodes (paper: 1.1).
	Beta float64
	// MaxIters caps the refinement loop as a safety net; Algorithm 2's
	// natural termination (no growth in trusted pairs) usually fires
	// first. Zero means the default of 30.
	MaxIters int
	// KnownPairs are anchor links known a priori. Proposition 2 covers
	// "trusted (or known) anchor nodes" uniformly: known anchors are
	// reinforced before the first iteration, seeding the discovery of
	// potential anchors around them (the semi-supervised HTC-S mode).
	KnownPairs [][2]int
	// Workers bounds the goroutine fan-out of the embedding and
	// similarity kernels inside this orbit's loop (≤ 0 = GOMAXPROCS).
	// When the pipeline fine-tunes many orbits concurrently it hands each
	// orbit a slice of the budget; results are identical for every count.
	Workers int
	// TopK selects the similarity backend: 0 runs the dense ns×nt path;
	// k ≥ 1 runs the blocked top-k candidate path, holding O(n·k) scores
	// instead of O(n²). With k ≥ nt (and k ≥ ns for the backward
	// direction) the two backends are bit-identical; smaller k trades
	// exactness for bounded memory.
	TopK int
	// Ann, when its Bits are positive (and TopK ≥ 1), swaps the blocked
	// exact candidate scan for the LSH generator of internal/ann:
	// compute drops from O(ns·nt) score cells to hashing plus an exact
	// re-rank of each node's probed pool. Everything downstream —
	// hubness, LISI, trusted pairs, integration — runs unchanged on the
	// candidate lists, and with Probes ≥ 2^Bits the loop is
	// bit-identical to the exact top-k path.
	Ann ann.Params
	// F32 runs the candidate generators on the float32 compute tier:
	// each iteration's embeddings are converted once (fused with the
	// center/normalize pass) into half-width copies, and projection,
	// hashing and re-rank read float32 values with float64 accumulators.
	// Candidate scores widen monotonically back to float64, so the loop
	// body is tier-independent. Only meaningful with TopK ≥ 1 — the
	// dense backend has no float32 tier (core validation rejects the
	// combination before it gets here).
	F32 bool
	// KeepEmbeddings snapshots the best iteration's Hs/Ht into the
	// result. Off by default: the copies are two n×d matrices per
	// improving iteration, and most callers only want M.
	KeepEmbeddings bool
	// Ctx, when non-nil, is checked before each refinement iteration;
	// once cancelled the loop stops early and returns the best result
	// found so far (possibly with a nil similarity when cancelled
	// immediately).
	Ctx context.Context
	// OnIter, when non-nil, observes each refinement iteration as it
	// starts (1-based). The pipeline's progress reporting hangs off it;
	// it never influences the loop.
	OnIter func(iter int)
}

func (c FineTuneConfig) withDefaults() FineTuneConfig {
	if c.M <= 0 {
		c.M = 20
	}
	if c.Beta <= 1 {
		c.Beta = 1.1
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 30
	}
	if c.TopK < 0 {
		c.TopK = 0
	}
	return c
}

// FineTuneResult reports the outcome of one orbit's refinement.
type FineTuneResult struct {
	// Sim is the alignment representation of the best iteration (the one
	// that identified the most trusted pairs): a DenseSim on the dense
	// backend, a *TopKSim on the top-k backend. Nil only when the loop
	// was cancelled before completing a single iteration.
	Sim Sim
	// M is the dense alignment matrix of the best iteration; nil on the
	// top-k backend, whose whole point is never materialising it.
	M *dense.Matrix
	// Trusted is that maximal trusted-pair count Tmax.
	Trusted int
	// Iters is the number of loop iterations executed.
	Iters int
	// Hs and Ht are the source/target embeddings of the best iteration,
	// used by downstream analyses (the paper's Fig. 11 visualisation).
	// They are populated only when FineTuneConfig.KeepEmbeddings is set.
	Hs, Ht *dense.Matrix
	// AnnStats is the merged skew-observability block of the two LSH
	// indices (forward and backward direction) accumulated over every
	// iteration of the loop. Nil unless the ANN backend ran.
	AnnStats *ann.Stats
}

// FineTune runs Algorithm 2 for a single orbit: compute the similarity
// under the configured backend, identify trusted pairs, reinforce their
// aggregation coefficients (Eq. 13), re-embed through the reinforced
// Laplacians (Eq. 14), and repeat while the number of trusted pairs keeps
// growing. The encoder weights are never modified — only the aggregation
// coefficients are tuned.
func FineTune(enc *nn.Encoder, lapS, lapT *sparse.CSR, xs, xt *dense.Matrix, cfg FineTuneConfig) *FineTuneResult {
	cfg = cfg.withDefaults()
	w := cfg.Workers
	rs := ones(lapS.Rows)
	rt := ones(lapT.Rows)
	for _, p := range cfg.KnownPairs {
		if p[0] >= 0 && p[0] < lapS.Rows && p[1] >= 0 && p[1] < lapT.Rows {
			rs[p[0]] *= cfg.Beta
			rt[p[1]] *= cfg.Beta
		}
	}

	// The loop's whole working set is allocated once and reused across
	// iterations: the reinforced Laplacians share the original sparsity
	// pattern (DiagScaleInto rescales values in place, and the clones are
	// only made once reinforcement actually changes rs/rt — single-pass
	// callers embed straight through the originals), the embeddings live
	// in two forward caches, and the similarity working set sits in the
	// backend's scratch (simScratch for dense, two topkScratches for the
	// blocked candidate path).
	var scaledS, scaledT *sparse.CSR
	var cacheS, cacheT nn.Cache
	reinforced := len(cfg.KnownPairs) > 0
	embed := func() (hs, ht *dense.Matrix) {
		if reinforced {
			if scaledS == nil {
				scaledS, scaledT = lapS.Clone(), lapT.Clone()
			}
			lapS.DiagScaleInto(scaledS, rs, rs)
			lapT.DiagScaleInto(scaledT, rt, rt)
			enc.ForwardReuse(&cacheS, scaledS, xs, w)
			enc.ForwardReuse(&cacheT, scaledT, xt, w)
		} else {
			enc.ForwardReuse(&cacheS, lapS, xs, w)
			enc.ForwardReuse(&cacheT, lapT, xt, w)
		}
		return cacheS.Output(), cacheT.Output()
	}
	hs, ht := embed()

	// score computes one iteration's alignment representation and its
	// trusted pairs; keep snapshots the iteration as the new best. The
	// dense backend scores into reused scratch, so keep must copy; the
	// top-k backend's candidates are freshly allocated each iteration
	// (only the block scratch is reused), so keep can adopt them.
	res := &FineTuneResult{Trusted: -1}
	var score func(hs, ht *dense.Matrix) (Sim, [][2]int)
	var keep func(Sim)
	if cfg.TopK > 0 {
		// Both candidate generators emit the same structure under the
		// same ordering contract, so the loop body below serves the
		// exact blocked scan and the LSH index alike — each direction
		// keeps its own scratch across iterations.
		var fwdGen, bwdGen func(a, b *dense.Matrix) *Candidates
		switch {
		case cfg.Ann.Bits > 0 && cfg.F32:
			fa := &annScratch32{p: cfg.Ann}
			ba := &annScratch32{p: cfg.Ann}
			fwdGen = func(a, b *dense.Matrix) *Candidates { return fa.topK(a, b, cfg.TopK, w) }
			bwdGen = func(a, b *dense.Matrix) *Candidates { return ba.topK(a, b, cfg.TopK, w) }
			defer func() {
				st := fa.stats()
				st.Merge(ba.stats())
				res.AnnStats = &st
			}()
		case cfg.Ann.Bits > 0:
			fa := &annScratch{p: cfg.Ann}
			ba := &annScratch{p: cfg.Ann}
			fwdGen = func(a, b *dense.Matrix) *Candidates { return fa.topK(a, b, cfg.TopK, w) }
			bwdGen = func(a, b *dense.Matrix) *Candidates { return ba.topK(a, b, cfg.TopK, w) }
			defer func() {
				st := fa.stats()
				st.Merge(ba.stats())
				res.AnnStats = &st
			}()
		case cfg.F32:
			var fs, bs topkScratch32
			fwdGen = func(a, b *dense.Matrix) *Candidates { return fs.topK(a, b, cfg.TopK, w) }
			bwdGen = func(a, b *dense.Matrix) *Candidates { return bs.topK(a, b, cfg.TopK, w) }
		default:
			var fs, bs topkScratch
			fwdGen = func(a, b *dense.Matrix) *Candidates { return fs.topK(a, b, cfg.TopK, w) }
			bwdGen = func(a, b *dense.Matrix) *Candidates { return bs.topK(a, b, cfg.TopK, w) }
		}
		var dt, ds []float64
		score = func(hs, ht *dense.Matrix) (Sim, [][2]int) {
			fwd := fwdGen(hs, ht)
			bwd := bwdGen(ht, hs)
			dt = topMeansInto(dt, fwd, cfg.M)
			ds = topMeansInto(ds, bwd, cfg.M)
			pairs := trustedPairsCands(fwd, bwd, dt, ds)
			lisiTransform(fwd, dt, ds)
			return &TopKSim{C: fwd, Cols: ht.Rows}, pairs
		}
		keep = func(s Sim) { res.Sim = s }
	} else {
		sim := &simScratch{}
		score = func(hs, ht *dense.Matrix) (Sim, [][2]int) {
			m := sim.lisiInto(sim.corrInto(hs, ht, w), cfg.M, w)
			return DenseSim{M: m}, TrustedPairs(m)
		}
		keep = func(s Sim) {
			m := s.(DenseSim).M
			res.M = dense.Ensure(res.M, m.Rows, m.Cols)
			res.M.CopyFrom(m)
			res.Sim = DenseSim{M: res.M}
		}
	}

	for iter := 0; iter < cfg.MaxIters; iter++ {
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			break
		}
		res.Iters = iter + 1
		if cfg.OnIter != nil {
			cfg.OnIter(iter + 1)
		}
		s, pairs := score(hs, ht)
		if len(pairs) <= res.Trusted {
			break
		}
		keep(s)
		res.Trusted = len(pairs)
		if cfg.KeepEmbeddings {
			res.Hs = dense.Ensure(res.Hs, hs.Rows, hs.Cols)
			res.Hs.CopyFrom(hs)
			res.Ht = dense.Ensure(res.Ht, ht.Rows, ht.Cols)
			res.Ht.CopyFrom(ht)
		}
		for _, p := range pairs {
			rs[p[0]] *= cfg.Beta
			rt[p[1]] *= cfg.Beta
		}
		if len(pairs) > 0 {
			reinforced = true
		}
		hs, ht = embed()
	}
	return res
}

// ones returns an all-one reinforcement vector (Algorithm 2, line 1).
func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Integrate combines per-orbit alignment matrices with the posterior
// importance weights of Eq. 15: γk = Tk / Σ Ti, where Tk is the trusted-
// pair count of orbit k. It returns the final alignment matrix and the
// weights. When no orbit found any trusted pair the weights fall back to
// uniform. IntegrateSims is the backend-generic form.
func Integrate(ms []*dense.Matrix, trusted []int) (*dense.Matrix, []float64) {
	if len(ms) == 0 || len(ms) != len(trusted) {
		panic("align: Integrate needs one trusted count per matrix")
	}
	gammas := integrationWeights(trusted)
	out := dense.New(ms[0].Rows, ms[0].Cols)
	for k, m := range ms {
		out.AddScaled(m, gammas[k])
	}
	return out, gammas
}
