// Package align implements HTC's alignment machinery on top of node
// embeddings: the Pearson similarity matrix (Eq. 9), hubness degrees and
// the locally isolated similarity index LISI (Eq. 10–11), mutual-nearest
// trusted pairs (Eq. 12), the trusted-pair fine-tuning loop of Algorithm 2
// (Eq. 13–14) and the posterior importance integration of Eq. 15.
package align

import (
	"fmt"
	"sort"

	"github.com/htc-align/htc/internal/dense"
	"github.com/htc-align/htc/internal/par"
)

// simScratch holds the similarity working set of one fine-tuning loop: the
// centered embedding copies, the ns×nt correlation and LISI matrices and
// the nt×ns transposed view. Algorithm 2 recomputes all of them every
// iteration; keeping them in one reusable bundle turns ~6 large
// allocations per iteration into zero after the first.
type simScratch struct {
	a, b   *dense.Matrix // centered + row-normalised embedding copies
	corr   *dense.Matrix // ns×nt Pearson similarity
	corrT  *dense.Matrix // nt×ns transposed similarity (column-scan buffer)
	lisi   *dense.Matrix // ns×nt LISI
	dt, ds []float64     // hubness degrees
}

func ensureVec(v []float64, n int) []float64 {
	if len(v) == n {
		return v
	}
	return make([]float64, n)
}

// Corr returns the Pearson correlation matrix between the rows of hs
// (ns×d) and ht (nt×d): entry (i, j) is corr(hs_i, ht_j) per Eq. 9.
// Constant (zero-variance) embeddings correlate 0 with everything.
func Corr(hs, ht *dense.Matrix) *dense.Matrix {
	s := &simScratch{}
	return s.corrInto(hs, ht, 0)
}

// corrInto computes the Pearson similarity into the scratch's corr buffer.
// workers bounds the kernel fan-out (≤ 0 = GOMAXPROCS).
func (s *simScratch) corrInto(hs, ht *dense.Matrix, workers int) *dense.Matrix {
	if hs.Cols != ht.Cols {
		panic(fmt.Sprintf("align: embedding dims differ: %d vs %d", hs.Cols, ht.Cols))
	}
	s.a = dense.Ensure(s.a, hs.Rows, hs.Cols)
	s.b = dense.Ensure(s.b, ht.Rows, ht.Cols)
	dense.CenterNormalizeRowsInto(s.a, hs)
	dense.CenterNormalizeRowsInto(s.b, ht)
	s.corr = dense.Ensure(s.corr, hs.Rows, ht.Rows)
	dense.MulBTInto(s.corr, s.a, s.b, workers)
	return s.corr
}

// topMean returns the mean of the m largest values in xs. When xs has
// fewer than m entries the mean of all of them is returned; m ≤ 0 yields
// 0. The selected values are summed in descending order: float addition
// is order-sensitive, and the top-k backend's candidate scores arrive
// pre-sorted, so a shared summation order is what makes the two backends
// bit-identical (equal values commute, so ties cannot perturb the sum).
func topMean(xs []float64, m int, buf []float64) float64 {
	if m <= 0 || len(xs) == 0 {
		return 0
	}
	buf = append(buf[:0], xs...)
	if m >= len(xs) {
		m = len(xs)
	} else {
		quickSelectDesc(buf, m)
	}
	sort.Float64s(buf[:m])
	var s float64
	for i := m - 1; i >= 0; i-- {
		s += buf[i]
	}
	return s / float64(m)
}

// quickSelectDesc partially sorts xs so that its first m entries are the m
// largest (in arbitrary order).
func quickSelectDesc(xs []float64, m int) {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		p := partitionDesc(xs, lo, hi)
		switch {
		case p == m-1:
			return
		case p < m-1:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

func partitionDesc(xs []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three pivot defends against adversarial (sorted) input.
	if xs[mid] > xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] > xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] > xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	pivot := xs[mid]
	xs[mid], xs[hi] = xs[hi], xs[mid]
	store := lo
	for i := lo; i < hi; i++ {
		if xs[i] > pivot {
			xs[i], xs[store] = xs[store], xs[i]
			store++
		}
	}
	xs[store], xs[hi] = xs[hi], xs[store]
	return store
}

// HubnessDegrees computes Dt (per source node: mean similarity to its m
// nearest target neighbours) and Ds (per target node, symmetric) from a
// similarity matrix, per Eq. 10.
func HubnessDegrees(corr *dense.Matrix, m int) (dt, ds []float64) {
	s := &simScratch{}
	return s.hubness(corr, m, 0)
}

// hubness fills the scratch's dt/ds vectors. The per-target degrees Ds
// need the columns of corr; instead of the old element-by-element strided
// gather (one cache line fetched per entry), the matrix is transposed once
// with the cache-blocked TransposeInto and Ds becomes a sequential row
// scan like Dt.
func (s *simScratch) hubness(corr *dense.Matrix, m, workers int) (dt, ds []float64) {
	s.dt = ensureVec(s.dt, corr.Rows)
	s.ds = ensureVec(s.ds, corr.Cols)
	s.corrT = dense.Ensure(s.corrT, corr.Cols, corr.Rows)
	dense.TransposeInto(s.corrT, corr)
	dt, ds = s.dt, s.ds
	par.For(workers, corr.Rows, corr.Cols, func(start, end int) {
		buf := make([]float64, corr.Cols)
		for i := start; i < end; i++ {
			dt[i] = topMean(corr.Row(i), m, buf)
		}
	})
	corrT := s.corrT
	par.For(workers, corrT.Rows, corrT.Cols, func(start, end int) {
		buf := make([]float64, corrT.Cols)
		for j := start; j < end; j++ {
			ds[j] = topMean(corrT.Row(j), m, buf)
		}
	})
	return dt, ds
}

// LISI converts a similarity matrix into the locally isolated similarity
// index of Eq. 11: LISI(i,j) = 2·corr(i,j) − Dt(i) − Ds(j). High values
// mark pairs that are mutually similar yet locally isolated, which
// suppresses hub nodes.
func LISI(corr *dense.Matrix, m int) *dense.Matrix {
	s := &simScratch{}
	return s.lisiInto(corr, m, 0)
}

// lisiInto computes LISI into the scratch's lisi buffer, reusing the
// hubness vectors and the transposed similarity.
func (s *simScratch) lisiInto(corr *dense.Matrix, m, workers int) *dense.Matrix {
	dt, ds := s.hubness(corr, m, workers)
	s.lisi = dense.Ensure(s.lisi, corr.Rows, corr.Cols)
	out := s.lisi
	par.For(workers, corr.Rows, corr.Cols, func(start, end int) {
		for i := start; i < end; i++ {
			src := corr.Row(i)
			dst := out.Row(i)
			di := dt[i]
			for j, v := range src {
				dst[j] = 2*v - di - ds[j]
			}
		}
	})
	return out
}

// TrustedPairs returns the mutual-nearest-neighbour pairs of an alignment
// matrix (Eq. 12): (i, j) is trusted iff j = argmax_j M(i,·) and
// i = argmax_i M(·,j). Pairs are returned in increasing source order.
func TrustedPairs(m *dense.Matrix) [][2]int {
	if m.Rows == 0 || m.Cols == 0 {
		return nil
	}
	rowBest := m.ArgmaxRows()
	colBest := make([]int, m.Cols)
	colVal := make([]float64, m.Cols)
	for j := range colVal {
		colVal[j] = m.At(0, j)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if v > colVal[j] {
				colVal[j] = v
				colBest[j] = i
			}
		}
	}
	var pairs [][2]int
	for i, j := range rowBest {
		if colBest[j] == i {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return pairs
}
