// Package align implements HTC's alignment machinery on top of node
// embeddings: the Pearson similarity matrix (Eq. 9), hubness degrees and
// the locally isolated similarity index LISI (Eq. 10–11), mutual-nearest
// trusted pairs (Eq. 12), the trusted-pair fine-tuning loop of Algorithm 2
// (Eq. 13–14) and the posterior importance integration of Eq. 15.
package align

import (
	"fmt"

	"github.com/htc-align/htc/internal/dense"
)

// Corr returns the Pearson correlation matrix between the rows of hs
// (ns×d) and ht (nt×d): entry (i, j) is corr(hs_i, ht_j) per Eq. 9.
// Constant (zero-variance) embeddings correlate 0 with everything.
func Corr(hs, ht *dense.Matrix) *dense.Matrix {
	if hs.Cols != ht.Cols {
		panic(fmt.Sprintf("align: embedding dims differ: %d vs %d", hs.Cols, ht.Cols))
	}
	a, b := hs.Clone(), ht.Clone()
	a.CenterRows()
	a.NormalizeRows()
	b.CenterRows()
	b.NormalizeRows()
	return dense.MulBT(a, b)
}

// topMean returns the mean of the m largest values in xs. When xs has
// fewer than m entries the mean of all of them is returned; m ≤ 0 yields
// 0.
func topMean(xs []float64, m int, buf []float64) float64 {
	if m <= 0 || len(xs) == 0 {
		return 0
	}
	if m >= len(xs) {
		var s float64
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	buf = append(buf[:0], xs...)
	quickSelectDesc(buf, m)
	var s float64
	for _, v := range buf[:m] {
		s += v
	}
	return s / float64(m)
}

// quickSelectDesc partially sorts xs so that its first m entries are the m
// largest (in arbitrary order).
func quickSelectDesc(xs []float64, m int) {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		p := partitionDesc(xs, lo, hi)
		switch {
		case p == m-1:
			return
		case p < m-1:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

func partitionDesc(xs []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three pivot defends against adversarial (sorted) input.
	if xs[mid] > xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] > xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] > xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	pivot := xs[mid]
	xs[mid], xs[hi] = xs[hi], xs[mid]
	store := lo
	for i := lo; i < hi; i++ {
		if xs[i] > pivot {
			xs[i], xs[store] = xs[store], xs[i]
			store++
		}
	}
	xs[store], xs[hi] = xs[hi], xs[store]
	return store
}

// HubnessDegrees computes Dt (per source node: mean similarity to its m
// nearest target neighbours) and Ds (per target node, symmetric) from a
// similarity matrix, per Eq. 10.
func HubnessDegrees(corr *dense.Matrix, m int) (dt, ds []float64) {
	dt = make([]float64, corr.Rows)
	ds = make([]float64, corr.Cols)
	buf := make([]float64, corr.Cols)
	for i := 0; i < corr.Rows; i++ {
		dt[i] = topMean(corr.Row(i), m, buf)
	}
	col := make([]float64, corr.Rows)
	if len(col) > len(buf) {
		buf = make([]float64, len(col))
	}
	for j := 0; j < corr.Cols; j++ {
		for i := 0; i < corr.Rows; i++ {
			col[i] = corr.At(i, j)
		}
		ds[j] = topMean(col, m, buf)
	}
	return dt, ds
}

// LISI converts a similarity matrix into the locally isolated similarity
// index of Eq. 11: LISI(i,j) = 2·corr(i,j) − Dt(i) − Ds(j). High values
// mark pairs that are mutually similar yet locally isolated, which
// suppresses hub nodes.
func LISI(corr *dense.Matrix, m int) *dense.Matrix {
	dt, ds := HubnessDegrees(corr, m)
	out := dense.New(corr.Rows, corr.Cols)
	for i := 0; i < corr.Rows; i++ {
		src := corr.Row(i)
		dst := out.Row(i)
		di := dt[i]
		for j, v := range src {
			dst[j] = 2*v - di - ds[j]
		}
	}
	return out
}

// TrustedPairs returns the mutual-nearest-neighbour pairs of an alignment
// matrix (Eq. 12): (i, j) is trusted iff j = argmax_j M(i,·) and
// i = argmax_i M(·,j). Pairs are returned in increasing source order.
func TrustedPairs(m *dense.Matrix) [][2]int {
	if m.Rows == 0 || m.Cols == 0 {
		return nil
	}
	rowBest := m.ArgmaxRows()
	colBest := make([]int, m.Cols)
	colVal := make([]float64, m.Cols)
	for j := range colVal {
		colVal[j] = m.At(0, j)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if v > colVal[j] {
				colVal[j] = v
				colBest[j] = i
			}
		}
	}
	var pairs [][2]int
	for i, j := range rowBest {
		if colBest[j] == i {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return pairs
}
