package align

import (
	"fmt"
	"sort"

	"github.com/htc-align/htc/internal/dense"
)

// Backend names for Sim implementations (mirrored into configs, results
// and the server's JSON contract).
const (
	BackendDense = "dense"
	BackendTopK  = "topk"
)

// Sim is the similarity-representation abstraction of the alignment
// stack: an alignment-score structure over source rows × target columns
// that is either a full dense matrix or a memory-bounded top-k candidate
// structure. Every consumer of alignment scores — matching, integration,
// evaluation, the CLIs and the server — speaks this interface, so the
// O(ns·nt) dense matrix is one representation among several rather than
// a structural assumption.
//
// A pair (i, j) outside a sparse representation has no score: it is
// "not a candidate", which consumers treat as strictly worse than every
// represented pair. With k ≥ nt the top-k representation holds every
// pair and is bit-identical to the dense one.
type Sim interface {
	// Dims returns the represented shape (source rows, target columns).
	Dims() (rows, cols int)
	// At returns the score of pair (i, j) and whether the pair is
	// represented.
	At(i, j int) (float64, bool)
	// Scan calls fn for every represented pair of row i, in descending
	// score order (ties in ascending column order).
	Scan(i int, fn func(j int, score float64))
	// Predict returns, per source row, the best-scoring target column
	// (ties to the lowest column; −1 for rows with no candidates).
	Predict() []int
	// Dense materialises the representation as a dense matrix.
	// Unrepresented pairs get a finite floor strictly below every
	// candidate score (scores can be negative, so zero would not do).
	// On a dense backend this returns the underlying matrix itself.
	Dense() *dense.Matrix
	// Backend names the representation (BackendDense or BackendTopK).
	Backend() string
}

// DenseSim adapts a full ns×nt score matrix to the Sim interface.
type DenseSim struct{ M *dense.Matrix }

// Dims implements Sim.
func (d DenseSim) Dims() (int, int) { return d.M.Rows, d.M.Cols }

// At implements Sim; every pair is represented.
func (d DenseSim) At(i, j int) (float64, bool) { return d.M.At(i, j), true }

// Scan implements Sim, visiting the row's entries best-first.
func (d DenseSim) Scan(i int, fn func(j int, score float64)) {
	row := d.M.Row(i)
	order := make([]int, len(row))
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool { return row[order[a]] > row[order[b]] })
	for _, j := range order {
		fn(j, row[j])
	}
}

// Predict implements Sim.
func (d DenseSim) Predict() []int { return d.M.ArgmaxRows() }

// Dense implements Sim, returning the wrapped matrix itself.
func (d DenseSim) Dense() *dense.Matrix { return d.M }

// Backend implements Sim.
func (d DenseSim) Backend() string { return BackendDense }

// TopKSim is the sparse Sim: per source row, up to K candidate target
// columns with scores, each row in descending score order (ties by lower
// column). Cols records the full target count, which a candidate list
// cannot see on its own.
type TopKSim struct {
	C    *Candidates
	Cols int
}

// Dims implements Sim.
func (t *TopKSim) Dims() (int, int) { return len(t.C.Idx), t.Cols }

// At implements Sim: a linear scan over the row's ≤ K candidates.
func (t *TopKSim) At(i, j int) (float64, bool) {
	for c, idx := range t.C.Idx[i] {
		if int(idx) == j {
			return t.C.Score[i][c], true
		}
	}
	return 0, false
}

// Scan implements Sim; candidate rows are already sorted best-first.
func (t *TopKSim) Scan(i int, fn func(j int, score float64)) {
	for c, idx := range t.C.Idx[i] {
		fn(int(idx), t.C.Score[i][c])
	}
}

// Predict implements Sim: the head of each sorted candidate row.
func (t *TopKSim) Predict() []int {
	out := make([]int, len(t.C.Idx))
	for i, cands := range t.C.Idx {
		if len(cands) == 0 {
			out[i] = -1
			continue
		}
		out[i] = int(cands[0])
	}
	return out
}

// Dense implements Sim: candidates keep their scores, absent pairs get a
// floor strictly below the smallest candidate score, so argmax-style
// consumers never prefer a non-candidate.
func (t *TopKSim) Dense() *dense.Matrix {
	rows, cols := t.Dims()
	m := dense.New(rows, cols)
	floor := 0.0
	for _, scores := range t.C.Score {
		for _, s := range scores {
			if s < floor {
				floor = s
			}
		}
	}
	floor--
	m.Fill(floor)
	for i, cands := range t.C.Idx {
		row := m.Row(i)
		for c, j := range cands {
			row[j] = t.C.Score[i][c]
		}
	}
	return m
}

// Backend implements Sim.
func (t *TopKSim) Backend() string { return BackendTopK }

// IntegrateSims combines per-orbit alignment representations with the
// posterior importance weights of Eq. 15, the backend-generic form of
// Integrate. All inputs must share one backend and shape. The dense path
// is exactly Integrate; the top-k path merges candidate lists per row —
// a pair's integrated score sums γk·score over the orbits that list it,
// accumulated in orbit order like the dense AddScaled loop, so with
// k ≥ nt the two backends are bit-identical.
func IntegrateSims(sims []Sim, trusted []int) (Sim, []float64) {
	if len(sims) == 0 || len(sims) != len(trusted) {
		panic("align: IntegrateSims needs one trusted count per sim")
	}
	if _, ok := sims[0].(DenseSim); ok {
		ms := make([]*dense.Matrix, len(sims))
		for i, s := range sims {
			dd, ok := s.(DenseSim)
			if !ok {
				panic("align: IntegrateSims inputs mix backends")
			}
			ms[i] = dd.M
		}
		m, gammas := Integrate(ms, trusted)
		return DenseSim{M: m}, gammas
	}

	ts := make([]*TopKSim, len(sims))
	for i, s := range sims {
		tt, ok := s.(*TopKSim)
		if !ok {
			panic("align: IntegrateSims inputs mix backends")
		}
		ts[i] = tt
	}
	gammas := integrationWeights(trusted)
	rows, cols := ts[0].Dims()
	for _, t := range ts {
		r, c := t.Dims()
		if r != rows || c != cols {
			panic(fmt.Sprintf("align: IntegrateSims shape mismatch %dx%d vs %dx%d", r, c, rows, cols))
		}
	}

	out := &Candidates{Idx: make([][]int32, rows), Score: make([][]float64, rows)}
	// Per-row merge scratch: accumulated scores plus a generation stamp
	// that marks which columns the current row has touched (avoiding an
	// O(cols) clear per row).
	acc := make([]float64, cols)
	stamp := make([]int, cols)
	gen := 0
	maxK := 0
	for i := 0; i < rows; i++ {
		gen++
		members := make([]int32, 0, 8)
		for k, t := range ts {
			g := gammas[k]
			idx := t.C.Idx[i]
			scores := t.C.Score[i]
			for c, j := range idx {
				if stamp[j] != gen {
					stamp[j] = gen
					acc[j] = 0
					members = append(members, j)
				}
				acc[j] += g * scores[c]
			}
		}
		score := make([]float64, len(members))
		// Deterministic merge order: sort members ascending first so the
		// final (score desc, column asc) order never depends on which
		// orbit introduced a column.
		sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
		for c, j := range members {
			score[c] = acc[j]
		}
		sortRowDesc(members, score)
		out.Idx[i] = members
		out.Score[i] = score
		if len(members) > maxK {
			maxK = len(members)
		}
	}
	out.K = maxK
	return &TopKSim{C: out, Cols: cols}, gammas
}

// integrationWeights computes the γk of Eq. 15 from trusted-pair counts,
// falling back to uniform when no orbit found any pair.
func integrationWeights(trusted []int) []float64 {
	var total int
	for _, t := range trusted {
		total += t
	}
	gammas := make([]float64, len(trusted))
	for k := range gammas {
		if total > 0 {
			gammas[k] = float64(trusted[k]) / float64(total)
		} else {
			gammas[k] = 1 / float64(len(trusted))
		}
	}
	return gammas
}

// candRow sorts a candidate row in place: descending score, ties by
// ascending column index (the dense argmax tie rule). The comparator is a
// strict total order, so an unstable sort is deterministic.
type candRow struct {
	idx   []int32
	score []float64
}

func (r candRow) Len() int { return len(r.idx) }
func (r candRow) Less(a, b int) bool {
	if r.score[a] != r.score[b] {
		return r.score[a] > r.score[b]
	}
	return r.idx[a] < r.idx[b]
}
func (r candRow) Swap(a, b int) {
	r.idx[a], r.idx[b] = r.idx[b], r.idx[a]
	r.score[a], r.score[b] = r.score[b], r.score[a]
}

// sortRowDesc orders one candidate row best-first in place.
func sortRowDesc(idx []int32, score []float64) {
	sort.Sort(candRow{idx: idx, score: score})
}

// SortRowDesc orders a candidate row best-first in place: descending
// score, ties by ascending column — the one tie rule every sparse
// consumer (matching, evaluation, refinement) shares, exported so other
// packages producing candidate rows cannot drift from it.
func SortRowDesc(idx []int32, score []float64) { sortRowDesc(idx, score) }
